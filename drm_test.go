package drm_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	drm "repro"
)

// TestFacadeEndToEnd drives the whole public API the way the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	ex := drm.Example1()
	log := drm.NewMemLog()
	for _, e := range ex.Log {
		if err := log.Append(drm.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	aud, err := drm.NewAuditor(ex.Corpus, log)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Equations != 10 {
		t.Errorf("report = %+v", rep)
	}
	if g := aud.Gain(); math.Abs(g-3.1) > 0.001 {
		t.Errorf("gain = %v, want 3.1", g)
	}
	if gr := drm.GroupsOf(ex.Corpus); gr.NumGroups() != 2 {
		t.Errorf("groups = %d, want 2", gr.NumGroups())
	}
}

func TestFacadeSchemaAndEngine(t *testing.T) {
	tax := drm.World()
	schema, err := drm.NewSchema(
		drm.Axis{Name: "period", Kind: drm.KindInterval},
		drm.Axis{Name: "region", Kind: drm.KindSet, Universe: tax.NumLeaves()},
	)
	if err != nil {
		t.Fatal(err)
	}
	period, err := drm.DateRange("01/06/26", "30/06/26")
	if err != nil {
		t.Fatal(err)
	}
	rect, err := drm.NewRect(schema,
		drm.IntervalValue(period),
		drm.SetValue(tax.MustResolve("Asia")),
	)
	if err != nil {
		t.Fatal(err)
	}
	d := drm.NewDistributor("d", schema, drm.ModeOnline, drm.NewMemLog())
	if _, err := d.AddRedistribution(&drm.License{
		Name: "L1", Kind: drm.Redistribution, Content: "K",
		Permission: drm.Play, Rect: rect, Aggregate: 100,
	}); err != nil {
		t.Fatal(err)
	}
	usage, err := drm.NewRect(schema,
		drm.IntervalValue(drm.NewInterval(period.Lo, period.Lo+3)),
		drm.SetValue(tax.MustResolve("Japan")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Issue(drm.Usage, usage, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Issue(drm.Usage, usage, 60); !errors.Is(err, drm.ErrAggregateExhausted) {
		t.Errorf("err = %v, want ErrAggregateExhausted", err)
	}
	rep, _, err := d.Audit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("violations: %v", rep.Violations)
	}
}

func TestFacadeWorkloadAndCodec(t *testing.T) {
	cfg := drm.DefaultWorkload(6)
	cfg.Groups = 2
	cfg.RecordsPerLicense = 20
	w, err := drm.GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := drm.EncodeCorpus(&buf, w.Corpus); err != nil {
		t.Fatal(err)
	}
	back, err := drm.DecodeCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 6 {
		t.Errorf("decoded corpus len = %d", back.Len())
	}
	if gr := drm.GroupsOf(back); gr.NumGroups() != 2 {
		t.Errorf("groups after round-trip = %d, want 2", gr.NumGroups())
	}
}

func TestFacadeEquationAllocator(t *testing.T) {
	alloc, err := drm.NewEquationAllocator([]int64{2000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Example 1's motivating sequence.
	if err := alloc.Allocate(drm.Mask(0b11), 800); err != nil {
		t.Fatal(err)
	}
	if err := alloc.Allocate(drm.Mask(0b10), 400); err != nil {
		t.Errorf("equation allocator rejected L_U^2: %v", err)
	}
}

func TestFacadeForecastAndCuts(t *testing.T) {
	ex := drm.Example1()
	// L1 is the only cut license (fig 3's star centre).
	if cuts := drm.CutLicenses(ex.Corpus); cuts != drm.Mask(0b00001) {
		t.Errorf("CutLicenses = %v, want {1}", cuts)
	}
	steps, err := drm.ExpiryTimeline(ex.Corpus, "period")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("steps = %d, want 6", len(steps))
	}
	if !steps[1].Split {
		t.Error("L1's expiry must split its group")
	}
}

func TestFacadeSignatures(t *testing.T) {
	pub, priv, err := drm.GenerateIssuerKey()
	if err != nil {
		t.Fatal(err)
	}
	ex := drm.Example1()
	l := ex.Corpus.License(0)
	sig, err := drm.SignLicense(l, priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := drm.VerifyLicense(l, pub, sig); err != nil {
		t.Fatal(err)
	}
	tampered := *l
	tampered.Aggregate++
	if err := drm.VerifyLicense(&tampered, pub, sig); !errors.Is(err, drm.ErrBadSignature) {
		t.Errorf("tampered license verified: %v", err)
	}
	var buf bytes.Buffer
	if err := drm.WriteSignedCorpus(&buf, ex.Corpus, priv); err != nil {
		t.Fatal(err)
	}
	corpus, _, err := drm.ReadSignedCorpus(&buf, pub)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 5 {
		t.Errorf("corpus len = %d", corpus.Len())
	}
}
