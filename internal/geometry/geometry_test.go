package geometry

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/interval"
)

// testSchema returns a 2-axis schema mirroring fig 2 of the paper: a time
// interval and a region set over a 6-leaf universe.
func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Axis{Name: "period", Kind: KindInterval},
		Axis{Name: "region", Kind: KindSet, Universe: 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rect(t *testing.T, s *Schema, lo, hi int64, regions ...int) Rect {
	t.Helper()
	r, err := NewRect(s,
		IntervalValue(interval.New(lo, hi)),
		SetValue(bitset.SetOf(6, regions...)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		axes []Axis
	}{
		{"empty name", []Axis{{Name: "", Kind: KindInterval}}},
		{"dup name", []Axis{{Name: "a", Kind: KindInterval}, {Name: "a", Kind: KindInterval}}},
		{"set without universe", []Axis{{Name: "r", Kind: KindSet}}},
		{"interval with universe", []Axis{{Name: "t", Kind: KindInterval, Universe: 5}}},
		{"bad kind", []Axis{{Name: "x", Kind: Kind(9)}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.axes...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestNewRectErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := NewRect(s, IntervalValue(interval.New(0, 1))); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := NewRect(s,
		SetValue(bitset.SetOf(6, 1)),
		SetValue(bitset.SetOf(6, 1))); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := NewRect(s,
		IntervalValue(interval.New(0, 1)),
		SetValue(bitset.SetOf(7, 1))); err == nil {
		t.Error("universe mismatch accepted")
	}
}

func TestContainsBothAxes(t *testing.T) {
	s := testSchema(t)
	big := rect(t, s, 0, 100, 0, 1, 2)
	inner := rect(t, s, 10, 20, 1)
	if !big.Contains(inner) {
		t.Error("big should contain inner")
	}
	// Time inside but region outside.
	regionOut := rect(t, s, 10, 20, 3)
	if big.Contains(regionOut) {
		t.Error("containment must require every axis")
	}
	// Region inside but time outside.
	timeOut := rect(t, s, 90, 110, 1)
	if big.Contains(timeOut) {
		t.Error("containment must require every axis")
	}
	if inner.Contains(big) {
		t.Error("containment is not symmetric here")
	}
	if !big.Contains(big) {
		t.Error("containment must be reflexive")
	}
}

func TestOverlapsRequiresEveryAxis(t *testing.T) {
	s := testSchema(t)
	a := rect(t, s, 0, 10, 0, 1)
	b := rect(t, s, 5, 15, 1, 2)  // overlaps on both axes
	c := rect(t, s, 5, 15, 3)     // overlaps in time only
	d := rect(t, s, 50, 60, 0, 1) // overlaps in region only
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a,b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("time-only overlap must not count (paper §3.2)")
	}
	if a.Overlaps(d) {
		t.Error("region-only overlap must not count")
	}
}

func TestIntersectAndEmpty(t *testing.T) {
	s := testSchema(t)
	a := rect(t, s, 0, 10, 0, 1)
	b := rect(t, s, 5, 15, 1, 2)
	got := a.Intersect(b)
	want := rect(t, s, 5, 10, 1)
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got.Empty() {
		t.Error("non-degenerate intersection reported empty")
	}
	c := rect(t, s, 50, 60, 1)
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection not empty")
	}
}

func TestCommonRegionTheorem1Setup(t *testing.T) {
	// Mirrors fig 2: L1, L2, L3 have no common region even though L1-L2
	// overlap pairwise; so C[{1,2,3}] must be structurally impossible.
	s := testSchema(t)
	l1 := rect(t, s, 0, 10, 0, 1) // Asia+Europe style
	l2 := rect(t, s, 5, 15, 0)    // Asia
	l3 := rect(t, s, 5, 20, 2)    // America
	if !CommonRegion(l1, l2) {
		t.Error("l1,l2 should share a region")
	}
	if CommonRegion(l1, l2, l3) {
		t.Error("l1,l2,l3 must not share a region")
	}
	if CommonRegion() {
		t.Error("no rectangles should mean no common region")
	}
	if !CommonRegion(l1) {
		t.Error("single non-empty rect is its own common region")
	}
}

func TestPairwiseOverlapWithoutCommonRegion(t *testing.T) {
	// With a categorical axis, pairwise overlap does NOT imply a common
	// region: sets {0,1}, {1,2}, {0,2} intersect pairwise but share no
	// element. This is why Theorem 1 is strictly stronger than checking the
	// overlap graph for a clique.
	s := testSchema(t)
	a := rect(t, s, 0, 10, 0, 1)
	b := rect(t, s, 0, 10, 1, 2)
	c := rect(t, s, 0, 10, 0, 2)
	if !a.Overlaps(b) || !b.Overlaps(c) || !a.Overlaps(c) {
		t.Fatal("setup: pairs must overlap")
	}
	if CommonRegion(a, b, c) {
		t.Error("pairwise-overlapping set constraints must not share a common region here")
	}
}

func TestIntervalAxesHaveHellyProperty(t *testing.T) {
	// For pure interval schemas, axis-aligned boxes DO satisfy Helly:
	// pairwise overlap implies a common region (1-D Helly applied per axis).
	// Documented here because Theorem 1's extra power comes only from
	// categorical axes or from pairs that don't all overlap.
	s := MustSchema(
		Axis{Name: "x", Kind: KindInterval},
		Axis{Name: "y", Kind: KindInterval},
	)
	mk := func(x0, x1, y0, y1 int64) Rect {
		return MustRect(s,
			IntervalValue(interval.New(x0, x1)),
			IntervalValue(interval.New(y0, y1)))
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		boxes := make([]Rect, 3)
		for i := range boxes {
			x0 := r.Int63n(40)
			y0 := r.Int63n(40)
			boxes[i] = mk(x0, x0+r.Int63n(30), y0, y0+r.Int63n(30))
		}
		pairwise := boxes[0].Overlaps(boxes[1]) &&
			boxes[1].Overlaps(boxes[2]) &&
			boxes[0].Overlaps(boxes[2])
		if pairwise && !CommonRegion(boxes...) {
			t.Fatalf("Helly violated for interval boxes: %v", boxes)
		}
	}
}

func TestEmptyRectContainment(t *testing.T) {
	s := testSchema(t)
	full := rect(t, s, 0, 10, 0, 1)
	empty := rect(t, s, 5, 4) // empty interval and empty region set
	if !full.Contains(empty) {
		t.Error("every rect contains an empty rect")
	}
	if empty.Contains(full) {
		t.Error("empty rect contains a non-empty one")
	}
	if empty.Overlaps(full) || full.Overlaps(empty) {
		t.Error("empty rect overlaps something")
	}
	if !empty.Empty() {
		t.Error("Empty() = false for empty rect")
	}
}

func TestRectStringAndAccessors(t *testing.T) {
	s := testSchema(t)
	r := rect(t, s, 1, 2, 0)
	if r.Schema() != s {
		t.Error("Schema accessor broken")
	}
	if r.Value(0).Kind() != KindInterval || r.Value(1).Kind() != KindSet {
		t.Error("Value kinds wrong")
	}
	if got := r.String(); got != "period=[1,2], region={0}" {
		t.Errorf("String = %q", got)
	}
	if !(Rect{}).IsZero() {
		t.Error("zero Rect not IsZero")
	}
	if (Rect{}).String() != "<zero rect>" {
		t.Error("zero Rect String")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	iv := IntervalValue(interval.New(0, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set() on interval value did not panic")
			}
		}()
		iv.Set()
	}()
	sv := SetValue(bitset.SetOf(3, 1))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Interval() on set value did not panic")
			}
		}()
		sv.Interval()
	}()
}

func TestSchemaMismatchPanics(t *testing.T) {
	s1 := testSchema(t)
	s2 := testSchema(t)
	a := rect(t, s1, 0, 1, 0)
	b := rect(t, s2, 0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("cross-schema Contains did not panic")
		}
	}()
	a.Contains(b)
}

func randRect(r *rand.Rand, s *Schema) Rect {
	lo := r.Int63n(100)
	hi := lo + r.Int63n(30)
	set := bitset.NewSet(6)
	for i := 0; i < 6; i++ {
		if r.Intn(2) == 0 {
			set.Add(i)
		}
	}
	if set.Empty() {
		set.Add(r.Intn(6))
	}
	return MustRect(s, IntervalValue(interval.New(lo, hi)), SetValue(set))
}

func TestRectLawsQuick(t *testing.T) {
	s := MustSchema(
		Axis{Name: "period", Kind: KindInterval},
		Axis{Name: "region", Kind: KindSet, Universe: 6},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randRect(r, s), randRect(r, s), randRect(r, s)
		// Overlaps ⇔ non-empty intersection.
		if a.Overlaps(b) != !a.Intersect(b).Empty() {
			return false
		}
		// Intersection commutes.
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		// Containment transitivity.
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		// Contains(b) implies Overlaps(b) for non-empty b.
		if !b.Empty() && a.Contains(b) && !a.Overlaps(b) {
			return false
		}
		// Both operands contain their intersection.
		ab := a.Intersect(b)
		if !a.Contains(ab) || !b.Contains(ab) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoundAndEnlargement(t *testing.T) {
	s := testSchema(t)
	a := rect(t, s, 0, 10, 0, 1)
	b := rect(t, s, 20, 30, 2)
	hull := a.Bound(b)
	want := rect(t, s, 0, 30, 0, 1, 2)
	if !hull.Equal(want) {
		t.Errorf("Bound = %v, want %v", hull, want)
	}
	// Bound covers both operands.
	if !hull.Contains(a) || !hull.Contains(b) {
		t.Error("Bound does not cover its operands")
	}
	// Enlargement: growing a to cover b adds 20 interval points
	// ([0,10]→[0,30]) plus 1 set element ({0,1}→{0,1,2}).
	if got := a.Enlargement(b); got != 20+1 {
		t.Errorf("Enlargement = %d, want 21", got)
	}
	// Covering something already inside costs nothing.
	inner := rect(t, s, 2, 3, 1)
	if got := a.Enlargement(inner); got != 0 {
		t.Errorf("Enlargement(inner) = %d, want 0", got)
	}
}

func TestBoundQuickLaws(t *testing.T) {
	s := MustSchema(
		Axis{Name: "period", Kind: KindInterval},
		Axis{Name: "region", Kind: KindSet, Universe: 6},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRect(r, s), randRect(r, s)
		h := a.Bound(b)
		if !h.Contains(a) || !h.Contains(b) {
			return false
		}
		// Commutative.
		if !h.Equal(b.Bound(a)) {
			return false
		}
		// Enlargement is non-negative and zero iff already covered.
		e := a.Enlargement(b)
		if e < 0 {
			return false
		}
		if a.Contains(b) && e != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.Axis(0).Name != "period" || s.Axis(1).Kind != KindSet {
		t.Error("Axis accessor wrong")
	}
	if i, ok := s.AxisIndex("region"); !ok || i != 1 {
		t.Errorf("AxisIndex(region) = %d,%v", i, ok)
	}
	if _, ok := s.AxisIndex("nope"); ok {
		t.Error("AxisIndex resolved unknown name")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustSchema did not panic")
			}
		}()
		MustSchema(Axis{Name: "", Kind: KindInterval})
	}()
	s := testSchema(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRect did not panic")
			}
		}()
		MustRect(s) // wrong arity
	}()
}

func TestKindString(t *testing.T) {
	if KindInterval.String() != "interval" || KindSet.String() != "set" {
		t.Error("kind strings wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Error("unknown kind string wrong")
	}
}

func TestRectEqualCrossSchema(t *testing.T) {
	a := rect(t, testSchema(t), 0, 1, 0)
	b := rect(t, testSchema(t), 0, 1, 0)
	if a.Equal(b) {
		t.Error("rects over different schema pointers reported Equal")
	}
}
