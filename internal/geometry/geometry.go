// Package geometry implements the M-dimensional hyper-rectangles at the
// heart of the paper's approach (§3.1): every license is a hyper-rectangle
// whose axes are its instance-based constraints.
//
// Two axis kinds cover the constraint types the paper describes:
//
//   - KindInterval — range constraints (validity period, resolution, ...),
//     backed by interval.Interval;
//   - KindSet — categorical constraints (allowed regions), backed by leaf
//     bitsets from a region taxonomy (or any fixed categorical universe).
//
// A Schema fixes the ordered list of axes for a content item; every Rect is
// interpreted against its schema. The two relations everything else is built
// from are:
//
//   - Rect.Contains — instance-based validation (§3.1): an issued license
//     belongs to a redistribution license iff the latter's rectangle fully
//     contains the former's;
//   - Rect.Overlaps — the overlap-graph edge predicate (§3.2): two licenses
//     overlap iff *all* axes overlap.
package geometry

import (
	"fmt"
	"strings"

	"repro/internal/bitset"
	"repro/internal/interval"
)

// Kind identifies the value type of a schema axis.
type Kind uint8

const (
	// KindInterval axes hold closed int64 intervals.
	KindInterval Kind = iota
	// KindSet axes hold bitsets over a fixed categorical universe.
	KindSet
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInterval:
		return "interval"
	case KindSet:
		return "set"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Axis describes one instance-based constraint dimension.
type Axis struct {
	// Name identifies the constraint, e.g. "period" or "region".
	Name string
	// Kind selects interval or set semantics.
	Kind Kind
	// Universe is the categorical universe width for KindSet axes
	// (e.g. the taxonomy's NumLeaves). Zero for KindInterval axes.
	Universe int
}

// Schema is the ordered list of constraint axes for a content item. The
// paper's experiments use M=4 instance-based constraints; the schema makes M
// explicit and keeps rectangles self-consistent.
type Schema struct {
	axes   []Axis
	byName map[string]int
}

// NewSchema builds a schema from the given axes. Axis names must be unique
// and non-empty; KindSet axes must declare a positive universe.
func NewSchema(axes ...Axis) (*Schema, error) {
	s := &Schema{axes: append([]Axis(nil), axes...), byName: make(map[string]int, len(axes))}
	for i, a := range axes {
		if a.Name == "" {
			return nil, fmt.Errorf("geometry: axis %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("geometry: duplicate axis name %q", a.Name)
		}
		switch a.Kind {
		case KindInterval:
			if a.Universe != 0 {
				return nil, fmt.Errorf("geometry: interval axis %q must have zero universe", a.Name)
			}
		case KindSet:
			if a.Universe <= 0 {
				return nil, fmt.Errorf("geometry: set axis %q needs a positive universe", a.Name)
			}
		default:
			return nil, fmt.Errorf("geometry: axis %q has unknown kind %v", a.Name, a.Kind)
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for trusted literals; it panics on error.
func MustSchema(axes ...Axis) *Schema {
	s, err := NewSchema(axes...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns M, the number of axes.
func (s *Schema) Dims() int { return len(s.axes) }

// Axis returns the i-th axis descriptor.
func (s *Schema) Axis(i int) Axis { return s.axes[i] }

// AxisIndex resolves an axis name to its position.
func (s *Schema) AxisIndex(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// Value is one axis value of a rectangle: an interval or a categorical set,
// depending on the axis kind.
type Value struct {
	kind Kind
	iv   interval.Interval
	set  bitset.Set
}

// IntervalValue wraps an interval as an axis value.
func IntervalValue(iv interval.Interval) Value {
	return Value{kind: KindInterval, iv: iv}
}

// SetValue wraps a categorical set as an axis value.
func SetValue(s bitset.Set) Value {
	return Value{kind: KindSet, set: s}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Interval returns the interval payload; it panics for set values.
func (v Value) Interval() interval.Interval {
	if v.kind != KindInterval {
		panic("geometry: Interval() on a set value")
	}
	return v.iv
}

// Set returns the set payload; it panics for interval values.
func (v Value) Set() bitset.Set {
	if v.kind != KindSet {
		panic("geometry: Set() on an interval value")
	}
	return v.set
}

// Empty reports whether the value denotes an empty constraint range.
func (v Value) Empty() bool {
	if v.kind == KindInterval {
		return v.iv.IsEmpty()
	}
	return v.set.Empty()
}

// contains reports whether v fully contains o (same kind assumed).
func (v Value) contains(o Value) bool {
	if v.kind == KindInterval {
		return v.iv.Contains(o.iv)
	}
	return o.set.SubsetOf(v.set)
}

// overlaps reports whether v ∩ o ≠ ∅ (same kind assumed).
func (v Value) overlaps(o Value) bool {
	if v.kind == KindInterval {
		return v.iv.Overlaps(o.iv)
	}
	return v.set.Intersects(o.set)
}

// intersect returns v ∩ o (same kind assumed).
func (v Value) intersect(o Value) Value {
	if v.kind == KindInterval {
		return IntervalValue(v.iv.Intersect(o.iv))
	}
	return SetValue(v.set.Intersect(o.set))
}

// hull returns the smallest value covering both v and o (same kind
// assumed): interval hull or set union.
func (v Value) hull(o Value) Value {
	if v.kind == KindInterval {
		return IntervalValue(v.iv.Hull(o.iv))
	}
	return SetValue(v.set.Union(o.set))
}

// equal reports whether v and o denote the same range (same kind assumed).
func (v Value) equal(o Value) bool {
	if v.kind == KindInterval {
		return v.iv.Equal(o.iv)
	}
	return v.set.Equal(o.set)
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.kind == KindInterval {
		return v.iv.String()
	}
	return v.set.String()
}

// Rect is an M-dimensional hyper-rectangle bound to a schema: one Value per
// axis. Rects are immutable by convention; nothing in this package mutates
// a Rect after construction.
type Rect struct {
	schema *Schema
	vals   []Value
}

// NewRect builds a rectangle over the schema from one value per axis, in
// schema order. It validates kinds and set universes.
func NewRect(s *Schema, vals ...Value) (Rect, error) {
	if len(vals) != s.Dims() {
		return Rect{}, fmt.Errorf("geometry: rect has %d values, schema wants %d", len(vals), s.Dims())
	}
	for i, v := range vals {
		ax := s.axes[i]
		if v.kind != ax.Kind {
			return Rect{}, fmt.Errorf("geometry: axis %q: value kind %v, want %v", ax.Name, v.kind, ax.Kind)
		}
		if ax.Kind == KindSet && v.set.Universe() != ax.Universe {
			return Rect{}, fmt.Errorf("geometry: axis %q: set universe %d, want %d",
				ax.Name, v.set.Universe(), ax.Universe)
		}
	}
	return Rect{schema: s, vals: append([]Value(nil), vals...)}, nil
}

// MustRect is NewRect for trusted literals; it panics on error.
func MustRect(s *Schema, vals ...Value) Rect {
	r, err := NewRect(s, vals...)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the rectangle's schema.
func (r Rect) Schema() *Schema { return r.schema }

// Value returns the value on axis i.
func (r Rect) Value(i int) Value { return r.vals[i] }

// IsZero reports whether r is the zero Rect (no schema).
func (r Rect) IsZero() bool { return r.schema == nil }

// Empty reports whether any axis range is empty, i.e. the rectangle encloses
// no points at all.
func (r Rect) Empty() bool {
	for _, v := range r.vals {
		if v.Empty() {
			return true
		}
	}
	return false
}

func (r Rect) sameSchema(o Rect) {
	if r.schema != o.schema {
		panic("geometry: rects from different schemas")
	}
}

// Contains reports whether o lies entirely within r on every axis — the
// instance-based validation predicate of §3.1. An empty o is contained
// everywhere; an empty r contains only empty rectangles.
func (r Rect) Contains(o Rect) bool {
	r.sameSchema(o)
	for i, v := range r.vals {
		if !v.contains(o.vals[i]) {
			return false
		}
	}
	return true
}

// Overlaps reports whether r and o intersect on *every* axis — the paper's
// overlapping-licenses predicate (§3.2): I_m^j ∩ I_m^k ≠ ∅ for all m ≤ M.
func (r Rect) Overlaps(o Rect) bool {
	r.sameSchema(o)
	for i, v := range r.vals {
		if !v.overlaps(o.vals[i]) {
			return false
		}
	}
	return true
}

// Intersect returns the axis-wise intersection r ∩ o; the result is Empty if
// any axis intersection is empty. Theorem 1 rests on this: a set of licenses
// has a common region iff the fold of Intersect over the set is non-empty.
func (r Rect) Intersect(o Rect) Rect {
	r.sameSchema(o)
	vals := make([]Value, len(r.vals))
	for i, v := range r.vals {
		vals[i] = v.intersect(o.vals[i])
	}
	return Rect{schema: r.schema, vals: vals}
}

// Equal reports whether r and o have identical ranges on every axis.
func (r Rect) Equal(o Rect) bool {
	if r.schema != o.schema {
		return false
	}
	for i, v := range r.vals {
		if !v.equal(o.vals[i]) {
			return false
		}
	}
	return true
}

// Bound returns the smallest rectangle covering both r and o (axis-wise
// interval hull / set union) — the MBR operation spatial indexes need.
func (r Rect) Bound(o Rect) Rect {
	r.sameSchema(o)
	vals := make([]Value, len(r.vals))
	for i, v := range r.vals {
		vals[i] = v.hull(o.vals[i])
	}
	return Rect{schema: r.schema, vals: vals}
}

// Enlargement returns a scalar measure of how much r must grow to cover o:
// the sum over axes of added interval length plus added set cardinality.
// Spatial indexes use it to choose insertion subtrees; the absolute scale
// is irrelevant, only comparisons matter.
func (r Rect) Enlargement(o Rect) int64 {
	r.sameSchema(o)
	var total int64
	for i, v := range r.vals {
		h := v.hull(o.vals[i])
		if v.kind == KindInterval {
			total += h.iv.Len() - v.iv.Len()
		} else {
			total += int64(h.set.Len() - v.set.Len())
		}
	}
	return total
}

// CommonRegion reports whether all rectangles share a common non-empty
// region — the hypothesis of Theorem 1. With zero rectangles it returns
// false.
func CommonRegion(rects ...Rect) bool {
	if len(rects) == 0 {
		return false
	}
	acc := rects[0]
	for _, r := range rects[1:] {
		acc = acc.Intersect(r)
		if acc.Empty() {
			return false
		}
	}
	return !acc.Empty()
}

// String renders the rectangle as "name=value" pairs in schema order.
func (r Rect) String() string {
	if r.IsZero() {
		return "<zero rect>"
	}
	var b strings.Builder
	for i, v := range r.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.schema.axes[i].Name)
		b.WriteByte('=')
		b.WriteString(v.String())
	}
	return b.String()
}
