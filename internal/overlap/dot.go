package overlap

import (
	"fmt"
	"io"
)

// WriteDOT renders the overlap graph in Graphviz DOT format, one subgraph
// cluster per disconnected group (the visual of the paper's fig 3). labels
// supplies node names; nil falls back to the paper's L1..LN numbering.
func WriteDOT(w io.Writer, adj Adjacency, gr Grouping, labels []string) error {
	name := func(i int) string {
		if labels != nil && i < len(labels) && labels[i] != "" {
			return labels[i]
		}
		return fmt.Sprintf("L%d", i+1)
	}
	if _, err := fmt.Fprintln(w, "graph overlap {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  node [shape=circle];")
	for k, g := range gr.Groups {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", k)
		fmt.Fprintf(w, "    label=\"group %d\";\n", k+1)
		g.Members.ForEach(func(i int) bool {
			fmt.Fprintf(w, "    n%d [label=%q];\n", i, name(i))
			return true
		})
		fmt.Fprintln(w, "  }")
	}
	for i := range adj {
		for j := i + 1; j < len(adj); j++ {
			if adj[i][j] {
				fmt.Fprintf(w, "  n%d -- n%d;\n", i, j)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
