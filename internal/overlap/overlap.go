// Package overlap implements §3.3: the overlap graph over redistribution
// licenses and the identification of disconnected groups.
//
// Vertices are corpus indexes; an edge joins i and j iff the two licenses'
// hyper-rectangles overlap on every constraint axis (geometry.Rect.Overlaps).
// The connected components of this graph are the paper's groups: by
// Corollary 1.1 no issued license can ever belong to licenses from two
// different components, so validation equations spanning components are
// redundant (Theorem 2) and the validation tree can be divided per group.
//
// Two group finders are provided:
//
//   - Groups — the paper's Algorithm 3: depth-first search over an N×N
//     adjacency matrix;
//   - Grouper — an incremental union-find structure supporting the paper's
//     fig-6 discussion (adding a license can keep, raise, or collapse the
//     group count) without recomputing from scratch.
//
// Both produce identical partitions (property-tested).
package overlap

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/license"
)

// Adjacency is the symmetric boolean overlap matrix of a corpus: the
// paper's Adj, with Adj[i][j] == true iff licenses i and j overlap. The
// diagonal is false by convention.
type Adjacency [][]bool

// BuildAdjacency computes the overlap matrix of the corpus with the
// pairwise geometric test of §3.2.
func BuildAdjacency(c *license.Corpus) Adjacency {
	n := c.Len()
	adj := make(Adjacency, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.License(i).Rect.Overlaps(c.License(j).Rect) {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	return adj
}

// Group is one connected component: the member set and its size N_k.
type Group struct {
	// Members is the component as a corpus-index mask (a row of the
	// paper's Group array).
	Members bitset.Mask
	// Size is N_k = |Members| (the paper's GroupSize[k]).
	Size int
}

// Grouping is a partition of corpus indexes into disconnected groups,
// ordered by smallest member (the order Algorithm 3 discovers them in).
type Grouping struct {
	// Groups lists the components; Groups[k].Members partition [0, N).
	Groups []Group
	// N is the number of licenses partitioned.
	N int
}

// NumGroups returns g, the number of disconnected groups.
func (gr Grouping) NumGroups() int { return len(gr.Groups) }

// GroupOf returns the index k of the group containing license i, or -1.
func (gr Grouping) GroupOf(i int) int {
	for k, g := range gr.Groups {
		if g.Members.Has(i) {
			return k
		}
	}
	return -1
}

// Sizes returns the N_k sequence.
func (gr Grouping) Sizes() []int {
	out := make([]int, len(gr.Groups))
	for k, g := range gr.Groups {
		out[k] = g.Size
	}
	return out
}

// Validate checks that the grouping is a partition of [0, N).
func (gr Grouping) Validate() error {
	var seen bitset.Mask
	for k, g := range gr.Groups {
		if g.Members.Empty() {
			return fmt.Errorf("overlap: group %d is empty", k)
		}
		if g.Size != g.Members.Len() {
			return fmt.Errorf("overlap: group %d size %d != |members| %d", k, g.Size, g.Members.Len())
		}
		if seen.Intersects(g.Members) {
			return fmt.Errorf("overlap: group %d overlaps earlier groups", k)
		}
		seen = seen.Union(g.Members)
	}
	if seen != bitset.FullMask(gr.N) {
		return fmt.Errorf("overlap: groups cover %v, want all %d licenses", seen, gr.N)
	}
	return nil
}

// String renders like "[{1,2,4} {3,5}]" with one-based license numbers.
func (gr Grouping) String() string {
	s := "["
	for k, g := range gr.Groups {
		if k > 0 {
			s += " "
		}
		s += g.Members.String()
	}
	return s + "]"
}

// Groups runs the paper's Algorithm 3: DFS over the adjacency matrix,
// emitting components in order of their smallest member.
func Groups(adj Adjacency) Grouping {
	n := len(adj)
	visited := make([]bool, n)
	gr := Grouping{N: n}
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		var members bitset.Mask
		// Iterative DFS (the paper's Depth_first subroutine, without the
		// recursion depth hazard).
		stack := []int{i}
		visited[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = members.With(v)
			for j := 0; j < n; j++ {
				if adj[v][j] && !visited[j] {
					visited[j] = true
					stack = append(stack, j)
				}
			}
		}
		gr.Groups = append(gr.Groups, Group{Members: members, Size: members.Len()})
	}
	return gr
}

// GroupsOf is the common composition: adjacency + DFS in one call.
func GroupsOf(c *license.Corpus) Grouping {
	return Groups(BuildAdjacency(c))
}

// MaskAdjacency is the overlap matrix with bitset rows: row i is the mask
// of licenses overlapping license i. It enables word-parallel component
// finding (GroupsMask) — 64 adjacency bits per machine word instead of
// one bool per byte.
type MaskAdjacency []bitset.Mask

// BuildMaskAdjacency computes the bitset-row overlap matrix.
func BuildMaskAdjacency(c *license.Corpus) MaskAdjacency {
	n := c.Len()
	adj := make(MaskAdjacency, n)
	for i := 0; i < n; i++ {
		ri := c.License(i).Rect
		for j := i + 1; j < n; j++ {
			if ri.Overlaps(c.License(j).Rect) {
				adj[i] = adj[i].With(j)
				adj[j] = adj[j].With(i)
			}
		}
	}
	return adj
}

// GroupsMask finds connected components by mask closure: starting from a
// seed license, repeatedly union the adjacency rows of every member until
// the frontier empties — each iteration absorbs a whole neighbour set with
// word-wide ORs. Produces exactly the partition Groups produces
// (property-tested).
func GroupsMask(adj MaskAdjacency) Grouping {
	n := len(adj)
	gr := Grouping{N: n}
	var assigned bitset.Mask
	for i := 0; i < n; i++ {
		if assigned.Has(i) {
			continue
		}
		members := bitset.MaskOf(i)
		frontier := bitset.MaskOf(i)
		for !frontier.Empty() {
			var next bitset.Mask
			frontier.ForEach(func(v int) bool {
				next = next.Union(adj[v])
				return true
			})
			frontier = next.Diff(members)
			members = members.Union(next)
		}
		assigned = assigned.Union(members)
		gr.Groups = append(gr.Groups, Group{Members: members, Size: members.Len()})
	}
	return gr
}

// CutLicenses returns the articulation licenses of each group: members
// whose removal (expiry, revocation) would split their group into two or
// more groups, making validation strictly cheaper (eq. 3's denominator
// drops). Computed with Tarjan's articulation-point algorithm per
// component. The result is a mask over all corpus indexes.
func CutLicenses(adj Adjacency) bitset.Mask {
	n := len(adj)
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
		disc[i] = -1
	}
	var cuts bitset.Mask
	timer := 0
	var dfs func(u int)
	dfs = func(u int) {
		timer++
		disc[u] = timer
		low[u] = timer
		children := 0
		for v := 0; v < n; v++ {
			if !adj[u][v] {
				continue
			}
			if disc[v] == -1 {
				children++
				parent[v] = u
				dfs(v)
				if low[v] < low[u] {
					low[u] = low[v]
				}
				if parent[u] != -1 && low[v] >= disc[u] {
					cuts = cuts.With(u)
				}
			} else if v != parent[u] && disc[v] < low[u] {
				low[u] = disc[v]
			}
		}
		if parent[u] == -1 && children > 1 {
			cuts = cuts.With(u)
		}
	}
	for i := 0; i < n; i++ {
		if disc[i] == -1 {
			dfs(i)
		}
	}
	return cuts
}

// Grouper maintains groups incrementally with union-find as licenses are
// added one at a time — the fig-6 scenario ("let a new redistribution
// license L_D^6 be added"). Adding a license unions it with every existing
// license it overlaps; the group count then stays, grows by one, or drops.
type Grouper struct {
	corpus *license.Corpus
	parent []int
	rank   []int
}

// NewGrouper returns a Grouper over an empty or pre-filled corpus. Existing
// corpus licenses are incorporated immediately.
func NewGrouper(c *license.Corpus) *Grouper {
	g := &Grouper{corpus: c}
	for i := 0; i < c.Len(); i++ {
		g.attach(i)
	}
	return g
}

// Add appends the license to the underlying corpus and merges groups as
// dictated by its overlaps. It returns the license's corpus index.
func (g *Grouper) Add(l *license.License) (int, error) {
	idx, err := g.corpus.Add(l)
	if err != nil {
		return 0, err
	}
	g.attach(idx)
	return idx, nil
}

// attach registers index i and unions it with all overlapping predecessors.
func (g *Grouper) attach(i int) {
	g.parent = append(g.parent, i)
	g.rank = append(g.rank, 0)
	ri := g.corpus.License(i).Rect
	for j := 0; j < i; j++ {
		if g.corpus.License(j).Rect.Overlaps(ri) {
			g.union(i, j)
		}
	}
}

func (g *Grouper) find(x int) int {
	for g.parent[x] != x {
		g.parent[x] = g.parent[g.parent[x]] // path halving
		x = g.parent[x]
	}
	return x
}

func (g *Grouper) union(a, b int) {
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		return
	}
	if g.rank[ra] < g.rank[rb] {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.rank[ra] == g.rank[rb] {
		g.rank[ra]++
	}
}

// findRead resolves x's root without path halving, so concurrent readers
// holding only a read lock (e.g. drmserver's stats endpoint) never write.
func (g *Grouper) findRead(x int) int {
	for g.parent[x] != x {
		x = g.parent[x]
	}
	return x
}

// RootOf returns the root license index of i's overlap component — a
// cheap, stable group label for per-group accounting on the issuance
// hot path (Grouping() materialises maps and slices; this is a pointer
// walk). Read-only on the union-find, safe under a shared lock.
func (g *Grouper) RootOf(i int) int { return g.findRead(i) }

// NumGroups returns the current number of groups. It is read-only on the
// union-find state and therefore safe under a shared (read) lock alongside
// other readers; Add still requires exclusive access.
func (g *Grouper) NumGroups() int {
	n := 0
	for i := range g.parent {
		if g.findRead(i) == i {
			n++
		}
	}
	return n
}

// SameGroup reports whether licenses i and j are currently connected.
func (g *Grouper) SameGroup(i, j int) bool { return g.find(i) == g.find(j) }

// Grouping materialises the current partition in canonical order (groups
// sorted by smallest member), matching what Algorithm 3 produces.
func (g *Grouper) Grouping() Grouping {
	byRoot := make(map[int]bitset.Mask)
	for i := range g.parent {
		r := g.find(i)
		byRoot[r] = byRoot[r].With(i)
	}
	gr := Grouping{N: len(g.parent)}
	for _, m := range byRoot {
		gr.Groups = append(gr.Groups, Group{Members: m, Size: m.Len()})
	}
	sort.Slice(gr.Groups, func(a, b int) bool {
		return gr.Groups[a].Members.Min() < gr.Groups[b].Members.Min()
	})
	return gr
}
