package overlap

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
)

func TestExample1Adjacency(t *testing.T) {
	// Fig 3's matrix: edges L1-L2, L1-L4, L3-L5 only.
	ex := license.NewExample1()
	adj := BuildAdjacency(ex.Corpus)
	wantEdges := map[[2]int]bool{{0, 1}: true, {0, 3}: true, {2, 4}: true}
	for i := 0; i < 5; i++ {
		if adj[i][i] {
			t.Errorf("diagonal Adj[%d][%d] set", i, i)
		}
		for j := i + 1; j < 5; j++ {
			want := wantEdges[[2]int{i, j}]
			if adj[i][j] != want || adj[j][i] != want {
				t.Errorf("Adj[%d][%d] = %v, want %v", i, j, adj[i][j], want)
			}
		}
	}
}

func TestExample1Groups(t *testing.T) {
	// Fig 3: groups (L1,L2,L4) and (L3,L5) — Group rows (1,1,0,1,0) and
	// (0,0,1,0,1).
	ex := license.NewExample1()
	gr := GroupsOf(ex.Corpus)
	if gr.NumGroups() != 2 {
		t.Fatalf("groups = %d, want 2", gr.NumGroups())
	}
	if gr.Groups[0].Members != bitset.MaskOf(0, 1, 3) {
		t.Errorf("group 1 = %v, want {1,2,4}", gr.Groups[0].Members)
	}
	if gr.Groups[1].Members != bitset.MaskOf(2, 4) {
		t.Errorf("group 2 = %v, want {3,5}", gr.Groups[1].Members)
	}
	if got := gr.Sizes(); got[0] != 3 || got[1] != 2 {
		t.Errorf("sizes = %v, want [3 2]", got)
	}
	if err := gr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if got := gr.String(); got != "[{1,2,4} {3,5}]" {
		t.Errorf("String = %q", got)
	}
}

func TestGroupOf(t *testing.T) {
	ex := license.NewExample1()
	gr := GroupsOf(ex.Corpus)
	want := []int{0, 0, 1, 0, 1}
	for i, w := range want {
		if got := gr.GroupOf(i); got != w {
			t.Errorf("GroupOf(%d) = %d, want %d", i, got, w)
		}
	}
	if gr.GroupOf(99) != -1 {
		t.Error("GroupOf(out of range) != -1")
	}
}

func TestGroupsEmptyAndSingleton(t *testing.T) {
	gr := Groups(Adjacency{})
	if gr.NumGroups() != 0 || gr.Validate() != nil {
		t.Errorf("empty grouping = %+v", gr)
	}
	gr = Groups(Adjacency{{false}})
	if gr.NumGroups() != 1 || gr.Groups[0].Members != bitset.MaskOf(0) {
		t.Errorf("singleton grouping = %+v", gr)
	}
}

func TestGroupsChainConnectivity(t *testing.T) {
	// 0-1, 1-2 connected without a 0-2 edge: connectivity is transitive,
	// clique-ness is not required (this mirrors L2,L1,L4 in the example:
	// L2 and L4 don't overlap yet share a group through L1).
	adj := Adjacency{
		{false, true, false},
		{true, false, true},
		{false, true, false},
	}
	gr := Groups(adj)
	if gr.NumGroups() != 1 {
		t.Errorf("chain groups = %d, want 1", gr.NumGroups())
	}
}

func TestValidateCatchesBadGroupings(t *testing.T) {
	bad := []Grouping{
		{N: 2, Groups: []Group{{Members: bitset.MaskOf(0), Size: 1}}},                                          // misses 1
		{N: 1, Groups: []Group{{Members: 0, Size: 0}}},                                                         // empty group
		{N: 2, Groups: []Group{{Members: bitset.MaskOf(0, 1), Size: 1}}},                                       // bad size
		{N: 2, Groups: []Group{{Members: bitset.MaskOf(0, 1), Size: 2}, {Members: bitset.MaskOf(1), Size: 1}}}, // overlap
	}
	for i, gr := range bad {
		if gr.Validate() == nil {
			t.Errorf("bad grouping %d accepted", i)
		}
	}
}

// lineCorpus builds a corpus of 1-D interval licenses from (lo,hi) pairs —
// the cheapest way to script arbitrary overlap structure.
func lineCorpus(t testing.TB, spans ...[2]int64) *license.Corpus {
	t.Helper()
	schema := geometry.MustSchema(geometry.Axis{Name: "x", Kind: geometry.KindInterval})
	c := license.NewCorpus(schema)
	for _, s := range spans {
		c.MustAdd(&license.License{
			Name:       "L",
			Kind:       license.Redistribution,
			Content:    "K",
			Permission: license.Play,
			Rect:       geometry.MustRect(schema, geometry.IntervalValue(interval.New(s[0], s[1]))),
			Aggregate:  100,
		})
	}
	return c
}

func TestGrouperIncrementalScenarios(t *testing.T) {
	// The fig-6 discussion: adding a license can keep, raise, or collapse
	// the group count.
	schema := geometry.MustSchema(geometry.Axis{Name: "x", Kind: geometry.KindInterval})
	mk := func(lo, hi int64) *license.License {
		return &license.License{
			Name: "L", Kind: license.Redistribution, Content: "K",
			Permission: license.Play,
			Rect:       geometry.MustRect(schema, geometry.IntervalValue(interval.New(lo, hi))),
			Aggregate:  100,
		}
	}
	g := NewGrouper(license.NewCorpus(schema))
	if _, err := g.Add(mk(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(mk(100, 110)); err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Fatalf("after two disjoint adds: groups = %d, want 2", g.NumGroups())
	}
	// Same count: new license overlaps only group 1.
	if _, err := g.Add(mk(5, 15)); err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Errorf("overlap-one add: groups = %d, want 2", g.NumGroups())
	}
	// Increase: disjoint from everything.
	if _, err := g.Add(mk(1000, 1010)); err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 3 {
		t.Errorf("disjoint add: groups = %d, want 3", g.NumGroups())
	}
	// Decrease: bridges the first two groups.
	if _, err := g.Add(mk(8, 105)); err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 2 {
		t.Errorf("bridging add: groups = %d, want 2", g.NumGroups())
	}
	if !g.SameGroup(0, 1) {
		t.Error("bridged licenses not in the same group")
	}
	if g.SameGroup(0, 3) {
		t.Error("isolated license merged erroneously")
	}
}

func TestGrouperMatchesDFSQuick(t *testing.T) {
	// DESIGN.md invariant 4: union-find and Algorithm 3 agree.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		spans := make([][2]int64, n)
		for i := range spans {
			lo := r.Int63n(100)
			spans[i] = [2]int64{lo, lo + r.Int63n(15)}
		}
		c := lineCorpus(t, spans...)
		dfs := GroupsOf(c)
		uf := NewGrouper(c).Grouping()
		if dfs.Validate() != nil || uf.Validate() != nil {
			return false
		}
		if len(dfs.Groups) != len(uf.Groups) {
			return false
		}
		for k := range dfs.Groups {
			if dfs.Groups[k].Members != uf.Groups[k].Members {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGroupsAreMaximallyDisconnected(t *testing.T) {
	// Property: licenses in different groups never overlap; every group of
	// size >1 is connected (each member overlaps some other member).
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(15)
		spans := make([][2]int64, n)
		for i := range spans {
			lo := r.Int63n(60)
			spans[i] = [2]int64{lo, lo + r.Int63n(10)}
		}
		c := lineCorpus(t, spans...)
		adj := BuildAdjacency(c)
		gr := Groups(adj)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if gr.GroupOf(i) != gr.GroupOf(j) && adj[i][j] {
					t.Fatalf("cross-group overlap %d-%d", i, j)
				}
			}
		}
		for _, g := range gr.Groups {
			if g.Size == 1 {
				continue
			}
			g.Members.ForEach(func(i int) bool {
				connected := false
				g.Members.ForEach(func(j int) bool {
					if i != j && adj[i][j] {
						connected = true
						return false
					}
					return true
				})
				if !connected {
					t.Fatalf("license %d isolated inside group %v", i, g.Members)
				}
				return true
			})
		}
	}
}

func TestWriteDOT(t *testing.T) {
	ex := license.NewExample1()
	adj := BuildAdjacency(ex.Corpus)
	gr := Groups(adj)
	var buf strings.Builder
	names := make([]string, ex.Corpus.Len())
	for i := range names {
		names[i] = ex.Corpus.License(i).Name
	}
	if err := WriteDOT(&buf, adj, gr, names); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph overlap {",
		"subgraph cluster_0",
		"subgraph cluster_1",
		`label="L_D^1"`,
		"n0 -- n1;", // L1-L2
		"n0 -- n3;", // L1-L4
		"n2 -- n4;", // L3-L5
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Exactly the fig-3 edges, no others.
	if got := strings.Count(out, " -- "); got != 3 {
		t.Errorf("edge count = %d, want 3", got)
	}
	// Nil labels fall back to paper numbering.
	buf.Reset()
	if err := WriteDOT(&buf, adj, gr, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="L1"`) {
		t.Error("fallback labels missing")
	}
}

func TestGroupsMaskMatchesDFSQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		spans := make([][2]int64, n)
		for i := range spans {
			lo := r.Int63n(120)
			spans[i] = [2]int64{lo, lo + r.Int63n(15)}
		}
		c := lineCorpus(t, spans...)
		dfs := GroupsOf(c)
		mask := GroupsMask(BuildMaskAdjacency(c))
		if mask.Validate() != nil || len(dfs.Groups) != len(mask.Groups) {
			return false
		}
		for k := range dfs.Groups {
			if dfs.Groups[k].Members != mask.Groups[k].Members {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCutLicensesExample1(t *testing.T) {
	// Fig 3: group (L1,L2,L4) is a star centred on L1 — removing L1 splits
	// it; L2, L4 are leaves. Group (L3,L5) is an edge — no cut vertex.
	ex := license.NewExample1()
	cuts := CutLicenses(BuildAdjacency(ex.Corpus))
	if cuts != bitset.MaskOf(0) {
		t.Errorf("cut licenses = %v, want {1}", cuts)
	}
}

func TestCutLicensesChainAndCycle(t *testing.T) {
	// Chain 0-1-2: the middle is a cut vertex.
	chain := Adjacency{
		{false, true, false},
		{true, false, true},
		{false, true, false},
	}
	if got := CutLicenses(chain); got != bitset.MaskOf(1) {
		t.Errorf("chain cuts = %v, want {2}", got)
	}
	// Triangle: no cut vertices.
	tri := Adjacency{
		{false, true, true},
		{true, false, true},
		{true, true, false},
	}
	if got := CutLicenses(tri); !got.Empty() {
		t.Errorf("triangle cuts = %v, want none", got)
	}
	// Empty and singleton graphs.
	if got := CutLicenses(Adjacency{}); !got.Empty() {
		t.Errorf("empty cuts = %v", got)
	}
	if got := CutLicenses(Adjacency{{false}}); !got.Empty() {
		t.Errorf("singleton cuts = %v", got)
	}
}

func TestCutLicensesMatchRemovalOracle(t *testing.T) {
	// A vertex is a cut vertex iff removing it increases the component
	// count among the remaining vertices of its group.
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(12)
		adj := make(Adjacency, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					adj[i][j], adj[j][i] = true, true
				}
			}
		}
		cuts := CutLicenses(adj)
		base := Groups(adj)
		for v := 0; v < n; v++ {
			// Remove v: blank its row/column.
			sub := make(Adjacency, n)
			for i := range sub {
				sub[i] = append([]bool(nil), adj[i]...)
			}
			for i := 0; i < n; i++ {
				sub[v][i], sub[i][v] = false, false
			}
			after := Groups(sub)
			// Removing a non-isolated v always isolates it, adding one
			// singleton group; growth beyond that (+2 or more total) means
			// v held its group together. Already-isolated vertices change
			// nothing.
			isCut := after.NumGroups() >= base.NumGroups()+2
			if cuts.Has(v) != isCut {
				t.Fatalf("trial %d: vertex %d cut=%v oracle=%v (base=%d after=%d)\nadj=%v",
					trial, v, cuts.Has(v), isCut, base.NumGroups(), after.NumGroups(), adj)
			}
		}
	}
}
