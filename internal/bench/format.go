package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"
	"time"
)

// fmtDur renders durations compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
}

// WriteFig6 renders fig 6 rows as an aligned text table.
func WriteFig6(w io.Writer, rows []Fig6Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "N\tgroups\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t\n", r.N, r.Groups)
	}
	return tw.Flush()
}

// WriteFig7 renders fig 7 rows: original V_T, proposed V_T, V_T + D_T.
func WriteFig7(w io.Writer, rows []Fig7Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "N\tgroups\toriginal V_T\tproposed V_T\tproposed V_T+D_T\t")
	for _, r := range rows {
		orig := fmtDur(r.Original)
		if r.OriginalSkipped {
			orig = "skipped"
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\t\n",
			r.N, r.Groups, orig, fmtDur(r.Proposed), fmtDur(r.Proposed+r.Division))
	}
	return tw.Flush()
}

// WriteFig8 renders fig 8 rows: theoretical vs experimental gain.
func WriteFig8(w io.Writer, rows []Fig8Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "N\ttheoretical G\texperimental G\t")
	for _, r := range rows {
		exp := "skipped"
		if !r.Skipped {
			exp = fmt.Sprintf("%.2f", r.Experimental)
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%s\t\n", r.N, r.Theoretical, exp)
	}
	return tw.Flush()
}

// WriteFig9 renders fig 9 rows: per-record insertion vs division time.
func WriteFig9(w io.Writer, rows []Fig9Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "N\trecords\tinsert 1 record\tbuild C_T\tdivision D_T\tD_T/insert\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\t%.1fx\t\n",
			r.N, r.Records, fmtDur(r.InsertPerRecord), fmtDur(r.Construction),
			fmtDur(r.Division), r.Ratio)
	}
	return tw.Flush()
}

// WriteFig10 renders fig 10 rows: storage before and after division.
func WriteFig10(w io.Writer, rows []Fig10Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "N\toriginal nodes\tdivided nodes\toriginal bytes\tdivided bytes\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t\n",
			r.N, r.OriginalNodes, r.DividedNodes, r.OriginalBytes, r.DividedBytes)
	}
	return tw.Flush()
}

// WriteIntraGroup renders fig 12 rows: serial vs sharded single-group V_T.
func WriteIntraGroup(w io.Writer, rows []IntraGroupRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "N\tequations\tserial V_T\tsharded V_T\tworkers\tspeed-up\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%d\t%.2fx\t\n",
			r.N, r.Equations, fmtDur(r.Serial), fmtDur(r.Sharded), r.Workers, r.Speedup)
	}
	return tw.Flush()
}

// csvWriter emits one experiment as RFC-4180 CSV via encoding/csv, for
// plotting pipelines (drmbench -format csv).
func csvWriter(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig6CSV renders fig 6 rows as CSV.
func WriteFig6CSV(w io.Writer, rows []Fig6Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{strconv.Itoa(r.N), strconv.Itoa(r.Groups)}
	}
	return csvWriter(w, []string{"n", "groups"}, out)
}

// WriteFig7CSV renders fig 7 rows as CSV (times in nanoseconds; empty
// original cell when skipped).
func WriteFig7CSV(w io.Writer, rows []Fig7Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		orig := ""
		if !r.OriginalSkipped {
			orig = strconv.FormatInt(r.Original.Nanoseconds(), 10)
		}
		out[i] = []string{
			strconv.Itoa(r.N), strconv.Itoa(r.Groups), orig,
			strconv.FormatInt(r.Proposed.Nanoseconds(), 10),
			strconv.FormatInt(r.Division.Nanoseconds(), 10),
		}
	}
	return csvWriter(w, []string{"n", "groups", "original_ns", "proposed_ns", "division_ns"}, out)
}

// WriteFig8CSV renders fig 8 rows as CSV (empty experimental cell when
// skipped).
func WriteFig8CSV(w io.Writer, rows []Fig8Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		exp := ""
		if !r.Skipped {
			exp = strconv.FormatFloat(r.Experimental, 'f', 4, 64)
		}
		out[i] = []string{
			strconv.Itoa(r.N),
			strconv.FormatFloat(r.Theoretical, 'f', 4, 64),
			exp,
		}
	}
	return csvWriter(w, []string{"n", "theoretical_gain", "experimental_gain"}, out)
}

// WriteFig9CSV renders fig 9 rows as CSV (times in nanoseconds).
func WriteFig9CSV(w io.Writer, rows []Fig9Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.N), strconv.Itoa(r.Records),
			strconv.FormatInt(int64(r.InsertPerRecord), 10),
			strconv.FormatInt(int64(r.Construction), 10),
			strconv.FormatInt(int64(r.Division), 10),
		}
	}
	return csvWriter(w, []string{"n", "records", "insert_per_record_ns", "construction_ns", "division_ns"}, out)
}

// WriteFig10CSV renders fig 10 rows as CSV.
func WriteFig10CSV(w io.Writer, rows []Fig10Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.N),
			strconv.Itoa(r.OriginalNodes), strconv.Itoa(r.DividedNodes),
			strconv.FormatInt(r.OriginalBytes, 10), strconv.FormatInt(r.DividedBytes, 10),
		}
	}
	return csvWriter(w, []string{"n", "original_nodes", "divided_nodes", "original_bytes", "divided_bytes"}, out)
}

// WriteIntraGroupCSV renders fig 12 rows as CSV (times in nanoseconds).
func WriteIntraGroupCSV(w io.Writer, rows []IntraGroupRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.N),
			strconv.FormatInt(r.Equations, 10),
			strconv.FormatInt(r.Serial.Nanoseconds(), 10),
			strconv.FormatInt(r.Sharded.Nanoseconds(), 10),
			strconv.Itoa(r.Workers),
			strconv.FormatFloat(r.Speedup, 'f', 4, 64),
		}
	}
	return csvWriter(w, []string{"n", "equations", "serial_ns", "sharded_ns", "workers", "speedup"}, out)
}

// WritePoliciesCSV renders the policy experiment as CSV.
func WritePoliciesCSV(w io.Writer, rows []PolicyRow) error {
	header := []string{"n", "requests"}
	header = append(header, policyOrder...)
	out := make([][]string, len(rows))
	for i, r := range rows {
		row := []string{strconv.Itoa(r.N), strconv.Itoa(r.Requests)}
		for _, p := range policyOrder {
			row = append(row, strconv.FormatInt(r.Granted[p], 10))
		}
		out[i] = row
	}
	return csvWriter(w, header, out)
}
