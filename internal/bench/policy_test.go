package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestPoliciesEquationNeverLoses(t *testing.T) {
	rows, err := Policies([]int{4, 8, 12}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		eq := r.Granted["equation"]
		if eq <= 0 {
			t.Fatalf("N=%d: equation policy granted nothing", r.N)
		}
		for _, p := range []string{"random-pick", "first-fit", "best-fit"} {
			if r.Granted[p] > eq {
				t.Errorf("N=%d: %s granted %d > equation %d", r.N, p, r.Granted[p], eq)
			}
			if r.Accepted[p] == 0 {
				t.Errorf("N=%d: %s accepted nothing", r.N, p)
			}
		}
	}
}

func TestPoliciesPressureExists(t *testing.T) {
	// The tightened budgets must actually exhaust: the equation policy
	// should reject some requests too, otherwise the comparison is vacuous.
	rows, err := Policies([]int{8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Accepted["equation"] == r.Requests {
		t.Error("no exhaustion pressure: every request accepted")
	}
}

func TestWritePolicies(t *testing.T) {
	rows, err := Policies([]int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePolicies(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"equation", "random-pick", "worst loss", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
