package bench

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/workload"
)

// PolicyRow quantifies the Example 1 phenomenon at scale: how many
// permission counts each online issuance policy manages to grant out of
// the same request stream. The equation-based policy is loss-free with
// respect to the validation equations; single-pick policies strand budget
// by charging the wrong license.
type PolicyRow struct {
	N        int
	Requests int
	// Granted maps policy name to total permission counts granted.
	Granted map[string]int64
	// Accepted maps policy name to accepted request counts.
	Accepted map[string]int
}

// groupedAllocator adapts core.IncrementalAuditor into an online policy:
// accept an issuance iff it fits the GROUP-LOCAL equation headroom. This is
// the paper's geometric contribution applied online — the global headroom
// check enumerates 2^(N−k) equations per request and is infeasible beyond
// N ≈ 20, while the grouped check only touches the belongs-to set's group.
type groupedAllocator struct {
	ia *core.IncrementalAuditor
}

// Allocate implements baseline.Allocator.
func (g *groupedAllocator) Allocate(set bitset.Mask, count int64) error {
	room, err := g.ia.Headroom(set)
	if err != nil {
		return err
	}
	if count > room {
		return fmt.Errorf("%w: count %d exceeds grouped headroom %d", baseline.ErrRejected, count, room)
	}
	return g.ia.Append(logstore.Record{Set: set, Count: count})
}

// Name implements baseline.Allocator.
func (g *groupedAllocator) Name() string { return "equation" }

// Policies sweeps N, replaying each workload's request stream through all
// four allocators. Budgets are tightened (relative to §5 defaults) so
// exhaustion pressure actually differentiates the policies. The equation
// policy uses group-local headroom (see groupedAllocator), so the sweep
// stays tractable at every N.
func Policies(ns []int, seed int64) ([]PolicyRow, error) {
	rows := make([]PolicyRow, 0, len(ns))
	for _, n := range ns {
		cfg := workload.Default(n)
		cfg.Seed = seed
		// Budgets low enough that the stream overruns them, and counts
		// coarse enough that charging the wrong license strands a
		// meaningful fraction of a budget (Example 1's granularity: one
		// request was 80% of a license).
		cfg.AggregateLo, cfg.AggregateHi = 500, 2000
		cfg.CountLo, cfg.CountHi = 100, 400
		cfg.RecordsPerLicense = 200
		w, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		agg := w.Corpus.Aggregates()
		ia, err := core.NewIncrementalAuditor(w.Corpus)
		if err != nil {
			return nil, err
		}
		policies := []baseline.Allocator{
			&groupedAllocator{ia: ia},
			baseline.NewRandomPick(agg, seed),
			baseline.NewFirstFit(agg),
			baseline.NewBestFit(agg),
		}
		row := PolicyRow{
			N:        n,
			Requests: len(w.Records),
			Granted:  make(map[string]int64, len(policies)),
			Accepted: make(map[string]int, len(policies)),
		}
		for _, p := range policies {
			accepted, granted := baseline.Replay(p, w.Requests())
			row.Accepted[p.Name()] = accepted
			row.Granted[p.Name()] = granted
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// policyOrder fixes the column order for rendering.
var policyOrder = []string{"equation", "best-fit", "first-fit", "random-pick"}

// WritePolicies renders policy rows with one granted-counts column per
// policy plus each pick policy's loss relative to the equation policy.
func WritePolicies(w io.Writer, rows []PolicyRow) error {
	tw := newTable(w)
	fmt.Fprint(tw, "N\trequests\t")
	for _, p := range policyOrder {
		fmt.Fprintf(tw, "%s\t", p)
	}
	fmt.Fprintln(tw, "worst loss\t")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t", r.N, r.Requests)
		for _, p := range policyOrder {
			fmt.Fprintf(tw, "%d\t", r.Granted[p])
		}
		base := r.Granted["equation"]
		var worst int64
		for _, p := range policyOrder[1:] {
			if loss := base - r.Granted[p]; loss > worst {
				worst = loss
			}
		}
		pct := 0.0
		if base > 0 {
			pct = 100 * float64(worst) / float64(base)
		}
		fmt.Fprintf(tw, "%.1f%%\t\n", pct)
	}
	return tw.Flush()
}
