// Package bench drives the paper's evaluation (§5): one runner per figure,
// each returning typed rows that cmd/drmbench renders and the repository's
// top-level benchmarks exercise. All runners consume the synthetic §5
// workloads from internal/workload, so every experiment is seeded and
// reproducible.
//
// Scope notes recorded in EXPERIMENTS.md:
//
//   - the original (undivided) validator evaluates 2^N−1 equations, so the
//     fig 7/8 runners cap the N at which they run it (MaxOriginalN) exactly
//     as wall-clock forced the authors onto a log-scale axis;
//   - absolute times are this machine's, not the paper's 2009 Java
//     testbed; the comparisons reproduce shapes and ratios.
package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/overlap"
	"repro/internal/vtree"
	"repro/internal/workload"
)

// DefaultNs is the sweep the paper's x-axes cover (N = 1..35).
func DefaultNs() []int {
	ns := make([]int, 0, 35)
	for n := 1; n <= 35; n++ {
		ns = append(ns, n)
	}
	return ns
}

// DefaultMaxOriginalN bounds the undivided 2^N−1-equation validator in the
// comparative figures. 2^22 ≈ 4.2M equations keeps a full sweep in seconds;
// beyond it the original validator's cost is extrapolable as ×2 per step.
const DefaultMaxOriginalN = 22

// instance bundles everything the runners need for one N.
type instance struct {
	w        *workload.Workload
	tree     *vtree.Tree // undivided tree (kept intact)
	grouping overlap.Grouping
	trees    []*core.GroupTree
	buildNs  time.Duration // C_T for the whole log
	groupNs  time.Duration // grouping part of D_T
	divideNs time.Duration // division part of D_T
}

// prepare generates the workload for n and stages both validators.
func prepare(n int, seed int64) (*instance, error) {
	cfg := workload.Default(n)
	cfg.Seed = seed
	w, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	inst := &instance{w: w}

	start := time.Now()
	tree, err := vtree.BuildRecords(n, w.Records)
	if err != nil {
		return nil, err
	}
	inst.buildNs = time.Since(start)
	inst.tree = tree

	start = time.Now()
	inst.grouping = overlap.GroupsOf(w.Corpus)
	inst.groupNs = time.Since(start)

	start = time.Now()
	trees, err := core.Divide(tree.Clone(), inst.grouping, w.Corpus.Aggregates())
	if err != nil {
		return nil, err
	}
	inst.divideNs = time.Since(start)
	inst.trees = trees
	return inst, nil
}

// Fig6Row is one point of "Variation of number of groups" (fig 6).
type Fig6Row struct {
	N      int
	Groups int
}

// Fig6 sweeps N and reports the number of disconnected groups the overlap
// machinery finds on the §5 workloads.
func Fig6(ns []int, seed int64) ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(ns))
	for _, n := range ns {
		cfg := workload.Default(n)
		cfg.Seed = seed
		// Group discovery only needs the corpus; a light log suffices.
		cfg.RecordsPerLicense = 1
		w, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		gr := overlap.GroupsOf(w.Corpus)
		rows = append(rows, Fig6Row{N: n, Groups: gr.NumGroups()})
	}
	return rows, nil
}

// Fig7Row is one point of "Validation Time Complexity" (fig 7): V_T for
// the original validator, V_T and V_T + D_T for the proposed one.
type Fig7Row struct {
	N int
	// Original is the undivided validator's V_T; zero when skipped.
	Original time.Duration
	// OriginalSkipped marks rows where N exceeded MaxOriginalN.
	OriginalSkipped bool
	// Proposed is the grouped validator's V_T.
	Proposed time.Duration
	// Division is D_T (grouping + tree division), the one-time overhead
	// plotted as V_T + D_T.
	Division time.Duration
	// Groups echoes the group count (context for the row).
	Groups int
}

// validationRepeats is how many times each timed validation runs; the
// minimum is reported, suppressing scheduler and allocator noise on
// microsecond-scale measurements.
const validationRepeats = 5

// minTime runs fn repeats times and returns the fastest wall-clock run.
func minTime(repeats int, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Fig7 sweeps N, timing both validators on identical workloads.
func Fig7(ns []int, maxOriginalN int, seed int64) ([]Fig7Row, error) {
	rows := make([]Fig7Row, 0, len(ns))
	for _, n := range ns {
		inst, err := prepare(n, seed)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{
			N:        n,
			Division: inst.groupNs + inst.divideNs,
			Groups:   inst.grouping.NumGroups(),
		}
		row.Proposed, err = minTime(validationRepeats, func() error {
			_, err := core.Validate(inst.trees)
			return err
		})
		if err != nil {
			return nil, err
		}

		if n <= maxOriginalN {
			// The original validator is expensive; repeat only while cheap.
			repeats := validationRepeats
			if n > 18 {
				repeats = 1
			}
			row.Original, err = minTime(repeats, func() error {
				_, err := inst.tree.ValidateAll(inst.w.Corpus.Aggregates())
				return err
			})
			if err != nil {
				return nil, err
			}
		} else {
			row.OriginalSkipped = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Row is one point of "Theoretical Vs. Experimental Gain" (fig 8).
type Fig8Row struct {
	N int
	// Theoretical is eq. 3's G.
	Theoretical float64
	// Experimental is original V_T / proposed V_T; zero when the original
	// run was skipped.
	Experimental float64
	Skipped      bool
}

// Fig8 computes theoretical and measured gains on the fig 7 sweep.
func Fig8(ns []int, maxOriginalN int, seed int64) ([]Fig8Row, error) {
	f7, err := Fig7(ns, maxOriginalN, seed)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, 0, len(f7))
	for _, r := range f7 {
		cfg := workload.Default(r.N)
		cfg.Seed = seed
		cfg.RecordsPerLicense = 1
		w, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{N: r.N, Theoretical: core.Gain(overlap.GroupsOf(w.Corpus))}
		if r.OriginalSkipped || r.Proposed <= 0 {
			row.Skipped = true
		} else {
			row.Experimental = float64(r.Original) / float64(r.Proposed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig9Row is one point of "Insertion time complexity" (fig 9): the cost of
// inserting a single log record into the validation tree versus the
// one-time cost of dividing it.
type Fig9Row struct {
	N int
	// Records is the log size the construction amortises over.
	Records int
	// InsertPerRecord is C_T divided by the number of log records.
	InsertPerRecord time.Duration
	// Construction is C_T, the full log replay.
	Construction time.Duration
	// Division is D_T.
	Division time.Duration
	// Ratio is Division / InsertPerRecord. The paper reports 3–4× on its
	// Java testbed; the absolute ratio is implementation-dependent, but
	// the conclusion it supports — division costs a vanishing fraction of
	// building the tree — is checked via Division ≪ Construction.
	Ratio float64
}

// Fig9 sweeps N measuring per-record insertion versus division cost. Both
// measurements are min-of-repeats: a single division takes microseconds,
// well inside scheduler-noise territory.
func Fig9(ns []int, seed int64) ([]Fig9Row, error) {
	rows := make([]Fig9Row, 0, len(ns))
	for _, n := range ns {
		inst, err := prepare(n, seed)
		if err != nil {
			return nil, err
		}
		build, err := minTime(validationRepeats, func() error {
			_, err := vtree.BuildRecords(n, inst.w.Records)
			return err
		})
		if err != nil {
			return nil, err
		}
		// Division consumes its tree, so clone outside the timed region.
		clones := make([]*vtree.Tree, validationRepeats)
		for i := range clones {
			clones[i] = inst.tree.Clone()
		}
		next := 0
		div, err := minTime(validationRepeats, func() error {
			gr := overlap.GroupsOf(inst.w.Corpus)
			_, err := core.Divide(clones[next], gr, inst.w.Corpus.Aggregates())
			next++
			return err
		})
		if err != nil {
			return nil, err
		}
		per := build / time.Duration(len(inst.w.Records))
		row := Fig9Row{
			N:               n,
			Records:         len(inst.w.Records),
			InsertPerRecord: per,
			Construction:    build,
			Division:        div,
		}
		if per > 0 {
			row.Ratio = float64(div) / float64(per)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// IntraGroupRow is one point of the intra-group sharding ablation (fig 12):
// a single-group corpus validated serially versus with the mask space
// sharded across workers. Group division cannot help here — there is only
// one group — so any speed-up is attributable to FlatTree.ValidateAllSharded.
type IntraGroupRow struct {
	N int
	// Equations is 2^N−1, the single group's equation count.
	Equations int64
	// Serial is V_T with one worker (the paper's algorithm over the flat
	// layout).
	Serial time.Duration
	// Sharded is V_T with the mask space split across Workers shards.
	Sharded time.Duration
	// Workers is the worker budget the sharded run used.
	Workers int
	// Speedup is Serial / Sharded. It approaches the core count when
	// shards run truly in parallel and ~1.0 on a single-CPU machine (the
	// report is identical either way).
	Speedup float64
}

// IntraGroup sweeps N on single-group workloads, timing serial versus
// sharded validation with the given worker budget.
func IntraGroup(ns []int, workers int, seed int64) ([]IntraGroupRow, error) {
	if workers < 1 {
		workers = 1
	}
	rows := make([]IntraGroupRow, 0, len(ns))
	for _, n := range ns {
		cfg := workload.Default(n)
		cfg.Seed = seed
		cfg.Groups = 1
		// The cost under study is per-equation validation, not log replay;
		// a light log keeps the sweep fast without changing the equation
		// count.
		cfg.RecordsPerLicense = 50
		w, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		tree, err := vtree.BuildRecords(n, w.Records)
		if err != nil {
			return nil, err
		}
		trees, err := core.Divide(tree, overlap.GroupsOf(w.Corpus), w.Corpus.Aggregates())
		if err != nil {
			return nil, err
		}
		row := IntraGroupRow{N: n, Workers: workers}
		var rep core.Report
		row.Serial, err = minTime(validationRepeats, func() error {
			r, err := core.ValidateParallel(trees, 1)
			rep = r
			return err
		})
		if err != nil {
			return nil, err
		}
		row.Equations = rep.Equations
		row.Sharded, err = minTime(validationRepeats, func() error {
			_, err := core.ValidateParallel(trees, workers)
			return err
		})
		if err != nil {
			return nil, err
		}
		if row.Sharded > 0 {
			row.Speedup = float64(row.Serial) / float64(row.Sharded)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10Row is one point of "Storage space complexity" (fig 10): bytes and
// nodes of the original tree versus the sum over divided trees.
type Fig10Row struct {
	N             int
	OriginalNodes int
	DividedNodes  int
	OriginalBytes int64
	DividedBytes  int64
}

// Fig10 sweeps N comparing storage before and after division.
func Fig10(ns []int, seed int64) ([]Fig10Row, error) {
	rows := make([]Fig10Row, 0, len(ns))
	for _, n := range ns {
		inst, err := prepare(n, seed)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{N: n}
		st := inst.tree.Stats()
		row.OriginalNodes, row.OriginalBytes = st.Nodes, st.Bytes
		for _, gt := range inst.trees {
			st := gt.Tree.Stats()
			row.DividedNodes += st.Nodes
			row.DividedBytes += st.Bytes
		}
		rows = append(rows, row)
	}
	return rows, nil
}
