package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// smallNs keeps unit tests fast; the full sweep runs in cmd/drmbench and
// the top-level benchmarks.
func smallNs() []int { return []int{1, 2, 4, 6, 8, 10, 12} }

func TestFig6Shapes(t *testing.T) {
	rows, err := Fig6(smallNs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(smallNs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Groups < 1 || r.Groups > 5 || r.Groups > r.N {
			t.Errorf("N=%d: groups=%d out of the paper's 1–5 band", r.N, r.Groups)
		}
	}
}

func TestFig7ProposedBeatsOriginalAtScale(t *testing.T) {
	rows, err := Fig7([]int{14, 16}, DefaultMaxOriginalN, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OriginalSkipped {
			t.Fatalf("N=%d unexpectedly skipped", r.N)
		}
		if r.Groups <= 1 {
			continue // no gain possible with one group
		}
		if r.Proposed >= r.Original {
			t.Errorf("N=%d groups=%d: proposed %v !< original %v",
				r.N, r.Groups, r.Proposed, r.Original)
		}
	}
}

func TestFig7SkipsBeyondCap(t *testing.T) {
	rows, err := Fig7([]int{5, 9}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].OriginalSkipped || !rows[1].OriginalSkipped {
		t.Errorf("skip flags wrong: %+v", rows)
	}
	if rows[1].Original != 0 {
		t.Error("skipped row has a time")
	}
}

func TestFig8ExperimentalAtLeastTheoreticalTrend(t *testing.T) {
	// The paper observes experimental ≥ theoretical. Timing noise at tiny
	// N makes a per-row assertion flaky, so assert it where work is
	// substantial (N ≥ 12) and with slack.
	rows, err := Fig8([]int{12, 14, 16}, DefaultMaxOriginalN, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Skipped {
			t.Fatalf("N=%d skipped", r.N)
		}
		if r.Theoretical < 1 {
			t.Errorf("N=%d: theoretical gain %v < 1", r.N, r.Theoretical)
		}
		if r.Theoretical > 1.5 && r.Experimental < 0.5*r.Theoretical {
			t.Errorf("N=%d: experimental %v far below theoretical %v",
				r.N, r.Experimental, r.Theoretical)
		}
	}
}

func TestFig9RatioIsSmall(t *testing.T) {
	rows, err := Fig9(smallNs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.InsertPerRecord <= 0 {
			t.Errorf("N=%d: non-positive insert time", r.N)
		}
		// The paper's conclusion: the one-time division is negligible
		// against replaying the log (thousands of insertions). The exact
		// division/insert ratio is implementation-dependent.
		if r.Division >= r.Construction {
			t.Errorf("N=%d: division %v not smaller than construction %v",
				r.N, r.Division, r.Construction)
		}
	}
}

func TestIntraGroupShapes(t *testing.T) {
	rows, err := IntraGroup([]int{8, 12}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if want := int64(1)<<uint(r.N) - 1; r.Equations != want {
			t.Errorf("N=%d: equations = %d, want %d (single group)", r.N, r.Equations, want)
		}
		if r.Workers != 4 {
			t.Errorf("N=%d: workers = %d", r.N, r.Workers)
		}
		if r.Serial <= 0 || r.Sharded <= 0 || r.Speedup <= 0 {
			t.Errorf("N=%d: non-positive timings: %+v", r.N, r)
		}
	}
}

func TestIntraGroupClampsWorkers(t *testing.T) {
	rows, err := IntraGroup([]int{6}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Workers != 1 {
		t.Errorf("workers = %d, want clamped to 1", rows[0].Workers)
	}
}

func TestFig10StorageUnchanged(t *testing.T) {
	rows, err := Fig10(smallNs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DividedNodes != r.OriginalNodes {
			t.Errorf("N=%d: node counts differ: %d vs %d", r.N, r.DividedNodes, r.OriginalNodes)
		}
		// Only the g extra root sentinels (and child-slice capacity noise)
		// differ; bytes must match within 1% or 1 KiB, whichever is looser
		// — tiny trees make the sentinels a visible fraction.
		diff := r.DividedBytes - r.OriginalBytes
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > r.OriginalBytes && diff > 1024 {
			t.Errorf("N=%d: byte sizes diverge: %d vs %d", r.N, r.DividedBytes, r.OriginalBytes)
		}
	}
}

func TestWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig6(&buf, []Fig6Row{{N: 3, Groups: 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "groups") {
		t.Error("fig6 header missing")
	}
	buf.Reset()
	if err := WriteFig7(&buf, []Fig7Row{
		{N: 3, Groups: 2, Original: time.Millisecond, Proposed: time.Microsecond, Division: time.Microsecond},
		{N: 30, Groups: 4, OriginalSkipped: true, Proposed: time.Microsecond},
	}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "skipped") || !strings.Contains(out, "1.00ms") {
		t.Errorf("fig7 rendering: %q", out)
	}
	buf.Reset()
	if err := WriteFig8(&buf, []Fig8Row{{N: 5, Theoretical: 3.1, Experimental: 4.0}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.10") {
		t.Errorf("fig8 rendering: %q", buf.String())
	}
	buf.Reset()
	if err := WriteFig9(&buf, []Fig9Row{{N: 5, InsertPerRecord: 800, Division: 2800, Ratio: 3.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3.5x") {
		t.Errorf("fig9 rendering: %q", buf.String())
	}
	buf.Reset()
	if err := WriteFig10(&buf, []Fig10Row{{N: 5, OriginalNodes: 10, DividedNodes: 10}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "divided nodes") {
		t.Errorf("fig10 rendering: %q", buf.String())
	}
	buf.Reset()
	if err := WriteIntraGroup(&buf, []IntraGroupRow{
		{N: 16, Equations: 65535, Serial: 4 * time.Millisecond, Sharded: time.Millisecond, Workers: 4, Speedup: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4.00x") || !strings.Contains(buf.String(), "65535") {
		t.Errorf("intra-group rendering: %q", buf.String())
	}
}

func TestDefaultNs(t *testing.T) {
	ns := DefaultNs()
	if len(ns) != 35 || ns[0] != 1 || ns[34] != 35 {
		t.Errorf("DefaultNs = %v", ns)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		0:               "-",
		500:             "500ns",
		1500:            "1.5µs",
		2_500_000:       "2.50ms",
		3 * time.Second: "3.00s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig6CSV(&buf, []Fig6Row{{N: 3, Groups: 2}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "n,groups\n3,2\n" {
		t.Errorf("fig6 csv = %q", buf.String())
	}
	buf.Reset()
	if err := WriteFig7CSV(&buf, []Fig7Row{
		{N: 3, Groups: 2, Original: 1000, Proposed: 10, Division: 5},
		{N: 30, Groups: 4, OriginalSkipped: true, Proposed: 10, Division: 5},
	}); err != nil {
		t.Fatal(err)
	}
	want := "n,groups,original_ns,proposed_ns,division_ns\n3,2,1000,10,5\n30,4,,10,5\n"
	if buf.String() != want {
		t.Errorf("fig7 csv = %q, want %q", buf.String(), want)
	}
	buf.Reset()
	if err := WriteFig8CSV(&buf, []Fig8Row{{N: 5, Theoretical: 3.1, Experimental: 4, Skipped: false}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "5,3.1000,4.0000") {
		t.Errorf("fig8 csv = %q", buf.String())
	}
	buf.Reset()
	if err := WriteFig9CSV(&buf, []Fig9Row{{N: 2, Records: 10, InsertPerRecord: 7, Construction: 70, Division: 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2,10,7,70,3") {
		t.Errorf("fig9 csv = %q", buf.String())
	}
	buf.Reset()
	if err := WriteFig10CSV(&buf, []Fig10Row{{N: 2, OriginalNodes: 3, DividedNodes: 3, OriginalBytes: 99, DividedBytes: 98}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2,3,3,99,98") {
		t.Errorf("fig10 csv = %q", buf.String())
	}
	buf.Reset()
	rows := []PolicyRow{{
		N: 2, Requests: 10,
		Granted:  map[string]int64{"equation": 9, "best-fit": 8, "first-fit": 7, "random-pick": 6},
		Accepted: map[string]int{},
	}}
	if err := WritePoliciesCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2,10,9,8,7,6") {
		t.Errorf("policies csv = %q", buf.String())
	}
	buf.Reset()
	if err := WriteIntraGroupCSV(&buf, []IntraGroupRow{
		{N: 16, Equations: 65535, Serial: 4000, Sharded: 1000, Workers: 4, Speedup: 4},
	}); err != nil {
		t.Fatal(err)
	}
	want2 := "n,equations,serial_ns,sharded_ns,workers,speedup\n16,65535,4000,1000,4,4.0000\n"
	if buf.String() != want2 {
		t.Errorf("intra-group csv = %q, want %q", buf.String(), want2)
	}
}
