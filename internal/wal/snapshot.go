package wal

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/drmerr"
	"repro/internal/fsx"
	"repro/internal/logstore"
	"repro/internal/trace"
)

// snapshotFile is the checkpoint document's name inside the WAL dir.
// There is at most one; installs atomically replace it (fsx).
const snapshotFile = "snapshot.json"

// snapshotDoc is the persisted checkpoint: the log compacted to per-set
// counts (at most 2^{N_k}−1 entries per overlap group) plus the
// watermark (Segment, Offset, Seq) up to which those counts aggregate
// the segment stream. CRC is CRC32C over the canonical binary rendering
// of the other fields (crcOf), so a torn or bit-rotted snapshot is
// detected rather than trusted.
type snapshotDoc struct {
	Version int               `json:"version"`
	Seq     uint64            `json:"seq"`
	Segment uint64            `json:"segment"`
	Offset  int64             `json:"offset"`
	Records []logstore.Record `json:"records"`
	CRC     uint32            `json:"crc"`
}

// snapshotVersion is the version new snapshots are written at. Version
// 1 (pre-lifecycle, kindless records) remains loadable; its CRC covers
// only (set, count) per record, version 2 also covers kind and expiry.
const snapshotVersion = 2

// crcOf checksums the semantic content of a snapshot document, using
// the rendering of the document's own version.
func (d *snapshotDoc) crcOf() uint32 {
	buf := make([]byte, 0, 24+33*len(d.Records))
	buf = binary.LittleEndian.AppendUint64(buf, d.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, d.Segment)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Offset))
	for _, r := range d.Records {
		if d.Version >= snapshotVersion {
			buf = append(buf, byte(r.Kind))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Set))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Count))
		if d.Version >= snapshotVersion {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Expiry))
		}
	}
	return crc32.Checksum(buf, castagnoli)
}

// loadSnapshot reads and verifies the checkpoint, returning nil when the
// store has none.
func loadSnapshot(dir string) (*snapshotDoc, error) {
	path := filepath.Join(dir, snapshotFile)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: open snapshot: %w", err)
	}
	return decodeSnapshot(data, path)
}

// decodeSnapshot verifies and decodes raw snapshot document bytes; path
// only labels errors. InstallBootstrap validates shipped snapshots with
// the same code that guards local recovery.
func decodeSnapshot(data []byte, path string) (*snapshotDoc, error) {
	var doc snapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, drmerr.Wrapf(drmerr.KindStoreCorrupt, "wal.snapshot", err,
			"wal: %s: undecodable snapshot", path)
	}
	if doc.Version != 1 && doc.Version != snapshotVersion {
		return nil, drmerr.New(drmerr.KindStoreCorrupt, "wal.snapshot",
			"wal: %s: unsupported snapshot version %d", path, doc.Version)
	}
	if got := doc.crcOf(); got != doc.CRC {
		return nil, drmerr.New(drmerr.KindStoreCorrupt, "wal.snapshot",
			"wal: %s: snapshot checksum mismatch (stored %08x, computed %08x)", path, doc.CRC, got)
	}
	for _, r := range doc.Records {
		if err := r.Validate(); err != nil {
			return nil, drmerr.Wrapf(drmerr.KindStoreCorrupt, "wal.snapshot", err,
				"wal: %s: invalid snapshot record", path)
		}
	}
	if doc.Segment == 0 || doc.Offset < segmentHeaderSize {
		return nil, drmerr.New(drmerr.KindStoreCorrupt, "wal.snapshot",
			"wal: %s: nonsensical watermark (segment %d, offset %d)", path, doc.Segment, doc.Offset)
	}
	return &doc, nil
}

// SnapshotInfo describes an installed checkpoint.
type SnapshotInfo struct {
	// Records is the compacted entry count; Seq the records it covers.
	Records int    `json:"records"`
	Seq     uint64 `json:"seq"`
	// Segment and Offset are the watermark replay resumes from.
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
	// Duration is the checkpoint's wall time.
	Duration time.Duration `json:"duration_ns"`
}

// Snapshot checkpoints the store: fsync the active segment (the
// watermark invariant — the watermark never points past durable bytes),
// compact snapshot+tail into per-set counts, atomically install the new
// snapshot document, and retire fully covered segments in the background.
// Appends proceed as soon as the method returns; the store stays open
// throughout.
func (s *Store) Snapshot() (SnapshotInfo, error) {
	return s.SnapshotContext(context.Background())
}

// SnapshotContext is Snapshot with a context for tracing: a traced
// request records a "wal.snapshot" span (with compacted record count and
// watermark attrs) covering the fsync, compaction, and atomic install.
// The context does not cancel a snapshot mid-install.
func (s *Store) SnapshotContext(ctx context.Context) (SnapshotInfo, error) {
	ctx, sp := trace.Start(ctx, "wal.snapshot")
	s.mu.Lock()
	info, err := s.snapshotLocked(ctx)
	s.mu.Unlock()
	if sp != nil {
		sp.SetInt("records", int64(info.Records))
		sp.SetInt("seq", int64(info.Seq))
		sp.Fail(err)
		sp.End()
	}
	return info, err
}

func (s *Store) snapshotLocked(ctx context.Context) (SnapshotInfo, error) {
	if err := s.stateErrLocked(); err != nil {
		return SnapshotInfo{}, err
	}
	start := time.Now()
	if err := s.syncLocked(ctx); err != nil {
		return SnapshotInfo{}, err
	}
	merged := s.snap
	if len(s.tail) > 0 {
		both := make([]logstore.Record, 0, len(s.snap)+len(s.tail))
		both = append(both, s.snap...)
		both = append(both, s.tail...)
		merged = logstore.Compact(both)
	}
	doc := snapshotDoc{Version: snapshotVersion, Seq: s.seq, Segment: s.segIdx, Offset: s.size, Records: merged}
	doc.CRC = doc.crcOf()
	path := filepath.Join(s.dir, snapshotFile)
	if err := fsx.WriteFileAtomic(path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&doc)
	}); err != nil {
		// A failed install leaves the previous snapshot intact; the store
		// is still consistent, so this is not a poisoning failure.
		return SnapshotInfo{}, fmt.Errorf("wal: installing snapshot: %w", err)
	}
	s.snap = merged
	s.tail = nil
	// Compaction clamps TTL buckets that revokes partially consumed
	// (logstore.Compact's earliest-first budget rule); rebuilding the
	// ledger from the merged records keeps this store's expiry schedule
	// identical to the one a recovery from the new snapshot would build.
	s.ledger = *logstore.LedgerOf(merged)
	s.snapSeq = s.seq
	s.snapSeg = s.segIdx
	s.snapOff = s.size
	s.sinceSnap = 0
	s.lastSnap = time.Now()
	info := SnapshotInfo{
		Records: len(merged), Seq: s.seq,
		Segment: s.segIdx, Offset: s.size,
		Duration: time.Since(start),
	}
	M.Snapshots.Inc()
	M.SnapshotSeconds.Observe(info.Duration.Seconds())
	M.SnapshotRecords.Set(int64(len(merged)))
	M.SnapshotUnix.Set(s.lastSnap.Unix())
	// Online compaction: segments wholly below the watermark are now
	// redundant; retire them without blocking appenders.
	s.compactWG.Add(1)
	go func() {
		defer s.compactWG.Done()
		s.Compact()
	}()
	return info, nil
}

// LastSnapshot returns the in-process time of the latest checkpoint
// (zero if none was taken by this process).
func (s *Store) LastSnapshot() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSnap
}

// SnapshotSeq returns the watermark sequence of the installed snapshot.
func (s *Store) SnapshotSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// Compact removes segment files wholly covered by the installed
// snapshot — every segment with an index below the watermark segment —
// and returns how many were retired. Snapshot schedules this in the
// background; calling it directly is safe and idempotent.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	watermark := s.snapSeg
	s.mu.Unlock()
	if watermark == 0 {
		return 0, nil
	}
	segs, err := listSegments(s.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, idx := range segs {
		if idx >= watermark {
			break
		}
		if err := os.Remove(segmentPath(s.dir, idx)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, fmt.Errorf("wal: retiring segment %d: %w", idx, err)
		}
		removed++
	}
	if removed > 0 {
		if err := fsx.SyncDir(s.dir); err != nil {
			return removed, err
		}
		M.SegmentsCompacted.Add(int64(removed))
	}
	s.updateSegmentsGauge()
	return removed, nil
}
