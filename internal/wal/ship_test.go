package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/drmerr"
	"repro/internal/logstore"
)

// shipAll tails leader into follower with a small window until the
// follower reaches the leader's durable frontier, returning the number
// of fetch rounds. It mirrors the cluster follower's fetch loop.
func shipAll(t *testing.T, leader, follower *Store, maxBytes int) int {
	t.Helper()
	cur := follower.DurableCursor()
	rounds := 0
	for {
		rounds++
		if rounds > 100000 {
			t.Fatal("shipAll: no convergence")
		}
		batch, err := leader.ReadFrames(cur, maxBytes)
		if err != nil {
			t.Fatalf("ReadFrames at %v: %v", cur, err)
		}
		if len(batch.Data) == 0 && batch.Next == batch.Start {
			return rounds
		}
		next, _, err := follower.IngestFrames(batch.Start, batch.Data)
		if err != nil {
			t.Fatalf("IngestFrames at %v: %v", batch.Start, err)
		}
		if next != batch.Next {
			t.Fatalf("ingest frontier %v, leader said %v", next, batch.Next)
		}
		cur = batch.Next
	}
}

// segmentBytesOf reads every segment file in dir, keyed by name.
func segmentBytesOf(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), segmentSuffix) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestShipRotationBoundaryByteIdentical tails a leader across several
// rotation boundaries with a window smaller than a segment and checks
// the follower's directory is a byte-for-byte mirror — headers, frame
// layout, segment boundaries and all — and that reopening the mirror
// recovers the same records.
func TestShipRotationBoundaryByteIdentical(t *testing.T) {
	opts := Options{SegmentBytes: 256}
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, err := Open(leaderDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := Open(followerDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, records := crashWorkload(t)
	// Interleave shipping with appends so fetches land mid-segment, at
	// sealed boundaries, and on the empty just-rotated segment.
	for i, r := range records {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			shipAll(t, leader, follower, 64)
		}
	}
	shipAll(t, leader, follower, 64)
	if got, want := follower.Seq(), leader.Seq(); got != want {
		t.Fatalf("follower seq %d, leader %d", got, want)
	}
	lb, fb := segmentBytesOf(t, leaderDir), segmentBytesOf(t, followerDir)
	if !reflect.DeepEqual(lb, fb) {
		t.Fatalf("mirror diverged: leader has %d segments, follower %d", len(lb), len(fb))
	}
	// The mirror must recover through the ordinary Open path.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(followerDir, opts)
	if err != nil {
		t.Fatalf("reopening mirror: %v", err)
	}
	defer reopened.Close()
	if !equalSums(sums(collect(t, reopened)), sums(collect(t, leader))) {
		t.Fatal("recovered mirror sums differ from leader")
	}
}

// TestShipTornTailStopsAtWatermark crashes the leader mid-frame and
// checks the follower drains exactly the durable prefix: the torn frame
// never ships, the follower's frontier equals the leader's synced seq,
// and the audit over the promoted mirror equals the audit over an
// uninterrupted store holding the acked prefix.
func TestShipTornTailStopsAtWatermark(t *testing.T) {
	corpus, records := crashWorkload(t)
	opts := Options{SegmentBytes: 512}
	total := measureWrittenBytes(t, opts, records)
	// Cut the budget mid-stream at a deliberately frame-misaligned byte.
	b := &crashBudget{remaining: total/2 + 13}
	opts.OpenSegFile = crashHook(b)
	leaderDir := t.TempDir()
	leader, err := Open(leaderDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for _, r := range records {
		if err := leader.Append(r); err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("append: %v", err)
			}
			break
		}
		acked++
	}
	if acked == 0 || acked == len(records) {
		t.Fatalf("budget missed the stream: acked %d of %d", acked, len(records))
	}
	// The leader store is poisoned, but its read path must still serve
	// the durable prefix — that is what a failover drains.
	follower, err := Open(t.TempDir(), Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	shipAll(t, leader, follower, 4096)
	if got := follower.Seq(); got != uint64(acked) {
		t.Fatalf("follower drained %d records, leader acked %d", got, acked)
	}
	if got, want := follower.Seq(), leader.SyncedSeq(); got != want {
		t.Fatalf("follower seq %d, leader synced %d", got, want)
	}
	// No torn bytes ingested: the follower's active segment ends exactly
	// at the leader's durable boundary.
	if fc, lc := follower.DurableCursor(), leader.DurableCursor(); fc != lc {
		t.Fatalf("follower frontier %v, leader durable %v", fc, lc)
	}
	mem := &logstore.Mem{}
	for _, r := range records[:acked] {
		if err := mem.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := auditReport(t, corpus, follower), auditReport(t, corpus, mem); !reflect.DeepEqual(got, want) {
		t.Fatal("audit over drained mirror differs from uninterrupted store")
	}
}

// TestShipMixedFramesFreshFollower ships a v1/v2 mixed-frame log (plain
// issues, TTL issue, revoke, transfer, expire) to a fresh follower and
// checks records, ledger state, and bytes all survive the trip.
func TestShipMixedFramesFreshFollower(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, err := Open(leaderDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	want := lifecycleRecords()
	for _, r := range want {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	follower, err := Open(followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shipAll(t, leader, follower, 50) // window smaller than two v2 frames
	if got := collect(t, follower); !reflect.DeepEqual(got, want) {
		t.Fatalf("shipped records = %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(segmentBytesOf(t, leaderDir), segmentBytesOf(t, followerDir)) {
		t.Fatal("mixed-frame mirror is not byte-identical")
	}
	if !reflect.DeepEqual(leader.LedgerSnapshot(), follower.LedgerSnapshot()) {
		t.Fatal("follower ledger state differs from leader")
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(followerDir, Options{})
	if err != nil {
		t.Fatalf("reopening mixed-frame mirror: %v", err)
	}
	defer reopened.Close()
	if got := collect(t, reopened); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered mirror records = %+v, want %+v", got, want)
	}
}

// TestShipBootstrapAfterCompaction covers the fresh-follower path when
// the leader has snapshotted and compacted: genesis tailing reports
// ErrCompacted, and InstallBootstrap + Open + tail converges to the
// leader's full state through the ordinary recovery path.
func TestShipBootstrapAfterCompaction(t *testing.T) {
	corpus, records := crashWorkload(t)
	opts := Options{SegmentBytes: 512}
	leader, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	half := len(records) / 2
	for _, r := range records[:half] {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, r := range records[half:] {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := leader.Snapshot(); err != nil { // moves the watermark to the last segment
		t.Fatal(err)
	}
	if _, err := leader.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.ReadFrames(StartCursor(), 4096); !errors.Is(err, ErrCompacted) {
		t.Fatalf("genesis tail after compaction: err = %v, want ErrCompacted", err)
	}
	doc, err := leader.Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Snapshot == nil {
		t.Fatal("leader with installed snapshot shipped a snapshotless bootstrap")
	}
	followerDir := t.TempDir()
	if err := InstallBootstrap(followerDir, doc); err != nil {
		t.Fatal(err)
	}
	follower, err := Open(followerDir, opts)
	if err != nil {
		t.Fatalf("opening bootstrapped follower: %v", err)
	}
	defer follower.Close()
	if got, want := follower.Seq(), doc.Start.Seq; got != want {
		t.Fatalf("bootstrapped follower seq %d, watermark %d", got, want)
	}
	shipAll(t, leader, follower, 4096)
	if got, want := auditReport(t, corpus, follower), auditReport(t, corpus, leader); !reflect.DeepEqual(got, want) {
		t.Fatal("audit over bootstrapped follower differs from leader")
	}
	// Installing over existing state must be refused.
	if err := InstallBootstrap(followerDir, doc); drmerr.KindOf(err) != drmerr.KindInvalidInput {
		t.Fatalf("reinstall over existing state: err = %v, want invalid_input", err)
	}
}

// TestIngestRefusesMismatchAndCorruption checks a follower cannot be
// desynchronized: a batch at the wrong frontier and a batch with a
// flipped byte are both refused whole, leaving the store appendable.
func TestIngestRefusesMismatchAndCorruption(t *testing.T) {
	leader, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	for _, r := range testRecords(4) {
		if err := leader.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	follower, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	batch, err := leader.ReadFrames(follower.DurableCursor(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	wrong := batch.Start
	wrong.Seq += 3
	if _, _, err := follower.IngestFrames(wrong, batch.Data); drmerr.KindOf(err) != drmerr.KindInvalidInput {
		t.Fatalf("mismatched start: err = %v, want invalid_input", err)
	}
	bad := append([]byte(nil), batch.Data...)
	bad[len(bad)-3] ^= 0x40
	if _, _, err := follower.IngestFrames(batch.Start, bad); drmerr.KindOf(err) != drmerr.KindStoreCorrupt {
		t.Fatalf("corrupt batch: err = %v, want store_corrupt", err)
	}
	if got := follower.Seq(); got != 0 {
		t.Fatalf("refused batches advanced the frontier to %d", got)
	}
	if _, _, err := follower.IngestFrames(batch.Start, batch.Data); err != nil {
		t.Fatalf("clean batch after refusals: %v", err)
	}
	if got, want := follower.Seq(), uint64(batch.Records); got != want {
		t.Fatalf("follower seq %d, want %d", got, want)
	}
}
