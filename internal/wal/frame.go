package wal

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// Frame layout (little-endian), one per ledger record. Two payload
// versions coexist, distinguished by the length prefix:
//
// v1 (plain issue records, and every frame written before the lifecycle
// ledger existed):
//
//	offset  size  field
//	0       4     payload length (uint32; recordPayloadSize)
//	4       4     CRC32C (Castagnoli) of the payload bytes
//	8       8     belongs-to set (bitset.Mask as uint64)
//	16      8     permission count (int64, positive)
//
// v2 (any record carrying a kind or expiry metadata):
//
//	offset  size  field
//	0       4     payload length (uint32; ledgerPayloadSize)
//	4       4     CRC32C (Castagnoli) of the payload bytes
//	8       1     kind byte (logstore.Kind)
//	9       8     belongs-to set (bitset.Mask as uint64)
//	17      8     signed effective count (int64): positive for issues
//	              and transfers, negative for revokes and expiries; the
//	              sign must agree with the kind byte or the frame is
//	              corrupt
//	25      8     expiry (int64 unix seconds, 0 = none)
//
// Plain issues keep the v1 encoding, so a log that never uses lifecycle
// records is byte-identical to one written by the pre-lifecycle store —
// and v1 segments replay as implicit issue records with no migration.
// The length prefix makes the format self-delimiting; the CRC detects
// both bit rot and — unlike JSONL — tails torn at a byte position that
// still happens to parse. A frame is valid iff its length names a known
// version, the payload is fully present, the CRC matches, the kind and
// count sign agree, and the decoded record passes logstore validation.
const (
	frameHeaderSize   = 8
	recordPayloadSize = 16
	recordFrameSize   = frameHeaderSize + recordPayloadSize
	ledgerPayloadSize = 25
	ledgerFrameSize   = frameHeaderSize + ledgerPayloadSize

	// maxPayloadSize bounds the length prefix a reader will trust, so a
	// corrupt length cannot make recovery skip gigabytes.
	maxPayloadSize = 1 << 16
)

// castagnoli is the CRC32C table (the polynomial with hardware support
// on amd64/arm64, and the one storage formats conventionally use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameSize returns the encoded size of r's frame.
func frameSize(r logstore.Record) int64 {
	if r.Kind == logstore.KindIssue && r.Expiry == 0 {
		return recordFrameSize
	}
	return ledgerFrameSize
}

// appendFrame appends r's frame to buf and returns the extended slice.
func appendFrame(buf []byte, r logstore.Record) []byte {
	if r.Kind == logstore.KindIssue && r.Expiry == 0 {
		var payload [recordPayloadSize]byte
		binary.LittleEndian.PutUint64(payload[0:8], uint64(r.Set))
		binary.LittleEndian.PutUint64(payload[8:16], uint64(r.Count))
		buf = binary.LittleEndian.AppendUint32(buf, recordPayloadSize)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload[:], castagnoli))
		return append(buf, payload[:]...)
	}
	stored := r.Effective()
	if r.Kind == logstore.KindTransfer {
		stored = r.Count
	}
	var payload [ledgerPayloadSize]byte
	payload[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(payload[1:9], uint64(r.Set))
	binary.LittleEndian.PutUint64(payload[9:17], uint64(stored))
	binary.LittleEndian.PutUint64(payload[17:25], uint64(r.Expiry))
	buf = binary.LittleEndian.AppendUint32(buf, ledgerPayloadSize)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload[:], castagnoli))
	return append(buf, payload[:]...)
}

// frameStatus classifies one parse attempt.
type frameStatus int

const (
	// frameOK: a valid frame was decoded.
	frameOK frameStatus = iota
	// frameShort: b ends before the frame does — at the end of the last
	// segment this is a torn tail, elsewhere it is corruption.
	frameShort
	// frameCorrupt: the bytes are structurally wrong (absurd length, CRC
	// mismatch, unknown kind, kind/count sign mismatch, or an invalid
	// decoded record).
	frameCorrupt
)

// parseFrame decodes the frame at the start of b, returning the record
// and the bytes consumed when status is frameOK.
func parseFrame(b []byte) (rec logstore.Record, n int, status frameStatus) {
	if len(b) < frameHeaderSize {
		return rec, 0, frameShort
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length != recordPayloadSize && length != ledgerPayloadSize {
		// An unknown (future) payload size is corruption for this reader
		// version: we cannot check its record invariants. Absurd lengths
		// (beyond maxPayloadSize) are corruption outright.
		return rec, 0, frameCorrupt
	}
	if len(b) < frameHeaderSize+int(length) {
		return rec, 0, frameShort
	}
	payload := b[frameHeaderSize : frameHeaderSize+length]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return rec, 0, frameCorrupt
	}
	switch length {
	case recordPayloadSize:
		rec = logstore.Record{
			Set:   bitset.Mask(binary.LittleEndian.Uint64(payload[0:8])),
			Count: int64(binary.LittleEndian.Uint64(payload[8:16])),
		}
	case ledgerPayloadSize:
		kind := logstore.Kind(payload[0])
		if !kind.Valid() {
			return logstore.Record{}, 0, frameCorrupt
		}
		stored := int64(binary.LittleEndian.Uint64(payload[9:17]))
		count := stored
		switch kind {
		case logstore.KindRevoke, logstore.KindExpire:
			// Debits store their effective (negative) count; a positive
			// stored count contradicts the kind byte.
			if stored >= 0 {
				return logstore.Record{}, 0, frameCorrupt
			}
			count = -stored
		default:
			if stored <= 0 {
				return logstore.Record{}, 0, frameCorrupt
			}
		}
		rec = logstore.Record{
			Kind:  kind,
			Set:   bitset.Mask(binary.LittleEndian.Uint64(payload[1:9])),
			Count: count,
			Meta:  logstore.Meta{Expiry: int64(binary.LittleEndian.Uint64(payload[17:25]))},
		}
	}
	if rec.Validate() != nil {
		return logstore.Record{}, 0, frameCorrupt
	}
	return rec, frameHeaderSize + int(length), frameOK
}
