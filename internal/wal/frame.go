package wal

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// Frame layout (little-endian), one per issuance record:
//
//	offset  size  field
//	0       4     payload length (uint32; recordPayloadSize for v1 frames)
//	4       4     CRC32C (Castagnoli) of the payload bytes
//	8       8     belongs-to set (bitset.Mask as uint64)
//	16      8     permission count (int64)
//
// The length prefix makes the format self-delimiting (future frame kinds
// can carry longer payloads without a segment-version bump); the CRC
// detects both bit rot and — unlike JSONL — tails torn at a byte position
// that still happens to parse. A frame is valid iff its length is known,
// the payload is fully present, the CRC matches, and the decoded record
// passes logstore validation.

const (
	frameHeaderSize   = 8
	recordPayloadSize = 16
	recordFrameSize   = frameHeaderSize + recordPayloadSize

	// maxPayloadSize bounds the length prefix a reader will trust, so a
	// corrupt length cannot make recovery skip gigabytes.
	maxPayloadSize = 1 << 16
)

// castagnoli is the CRC32C table (the polynomial with hardware support
// on amd64/arm64, and the one storage formats conventionally use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends r's frame to buf and returns the extended slice.
func appendFrame(buf []byte, r logstore.Record) []byte {
	var payload [recordPayloadSize]byte
	binary.LittleEndian.PutUint64(payload[0:8], uint64(r.Set))
	binary.LittleEndian.PutUint64(payload[8:16], uint64(r.Count))
	buf = binary.LittleEndian.AppendUint32(buf, recordPayloadSize)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload[:], castagnoli))
	return append(buf, payload[:]...)
}

// frameStatus classifies one parse attempt.
type frameStatus int

const (
	// frameOK: a valid frame was decoded.
	frameOK frameStatus = iota
	// frameShort: b ends before the frame does — at the end of the last
	// segment this is a torn tail, elsewhere it is corruption.
	frameShort
	// frameCorrupt: the bytes are structurally wrong (absurd length, CRC
	// mismatch, or an invalid decoded record).
	frameCorrupt
)

// parseFrame decodes the frame at the start of b, returning the record
// and the bytes consumed when status is frameOK.
func parseFrame(b []byte) (rec logstore.Record, n int, status frameStatus) {
	if len(b) < frameHeaderSize {
		return rec, 0, frameShort
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length != recordPayloadSize {
		if length > maxPayloadSize {
			return rec, 0, frameCorrupt
		}
		// An unknown (future) payload size is corruption for this reader
		// version: we cannot check its record invariants.
		return rec, 0, frameCorrupt
	}
	if len(b) < frameHeaderSize+int(length) {
		return rec, 0, frameShort
	}
	payload := b[frameHeaderSize : frameHeaderSize+length]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return rec, 0, frameCorrupt
	}
	rec = logstore.Record{
		Set:   bitset.Mask(binary.LittleEndian.Uint64(payload[0:8])),
		Count: int64(binary.LittleEndian.Uint64(payload[8:16])),
	}
	if rec.Validate() != nil {
		return rec, 0, frameCorrupt
	}
	return rec, frameHeaderSize + int(length), frameOK
}
