package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment files are named <index>.seg with a fixed-width decimal index so
// lexicographic order is numeric order; indexes start at 1 and never
// reuse. Each segment opens with a 16-byte header:
//
//	offset  size  field
//	0       8     magic "DRMWAL1\n"
//	8       8     base sequence number (records appended before this
//	              segment, uint64 LE) — self-describing, and recovery
//	              cross-checks it against the running replay count
//
// followed by frames (frame.go) until EOF.

const (
	segmentSuffix     = ".seg"
	segmentHeaderSize = 16
)

var segmentMagic = [8]byte{'D', 'R', 'M', 'W', 'A', 'L', '1', '\n'}

// segmentName formats the file name of segment index i.
func segmentName(i uint64) string {
	return fmt.Sprintf("%016d%s", i, segmentSuffix)
}

// segmentPath is the full path of segment index i in dir.
func segmentPath(dir string, i uint64) string {
	return filepath.Join(dir, segmentName(i))
}

// parseSegmentName extracts the index from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	stem, ok := strings.CutSuffix(name, segmentSuffix)
	if !ok || len(stem) != 16 {
		return 0, false
	}
	i, err := strconv.ParseUint(stem, 10, 64)
	if err != nil || i == 0 {
		return 0, false
	}
	return i, true
}

// listSegments returns the indexes of all segment files in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var out []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if i, ok := parseSegmentName(e.Name()); ok {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// encodeSegmentHeader renders the header for a segment whose first frame
// holds record number baseSeq (0-based).
func encodeSegmentHeader(baseSeq uint64) []byte {
	h := make([]byte, segmentHeaderSize)
	copy(h[:8], segmentMagic[:])
	binary.LittleEndian.PutUint64(h[8:16], baseSeq)
	return h
}

// parseSegmentHeader validates the magic and extracts the base sequence.
func parseSegmentHeader(b []byte) (baseSeq uint64, ok bool) {
	if len(b) < segmentHeaderSize || [8]byte(b[:8]) != segmentMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[8:16]), true
}
