package wal

import "repro/internal/obs"

// M holds the package's metric hooks, nil until Instrument is called;
// obs metric methods are no-ops on nil receivers, so uninstrumented
// stores record nothing and allocate nothing.
var M Metrics

// Metrics are the durability signals of the WAL: append/fsync
// throughput and latency, segment economy, snapshot freshness, and
// recovery cost.
type Metrics struct {
	// Appends counts records appended; Fsyncs counts fsync calls and
	// FsyncSeconds their latency (the group-commit economy is
	// Appends/Fsyncs).
	Appends      *obs.Counter
	Fsyncs       *obs.Counter
	FsyncSeconds *obs.Histogram
	// Rotations counts segment rolls; Segments is the live segment-file
	// count; SegmentsCompacted counts files retired by compaction.
	Rotations         *obs.Counter
	Segments          *obs.Gauge
	SegmentsCompacted *obs.Counter
	// Snapshots counts checkpoints, SnapshotSeconds their wall time,
	// SnapshotRecords the compacted entry count of the latest one, and
	// SnapshotUnix its install time (age = now − SnapshotUnix).
	Snapshots       *obs.Counter
	SnapshotSeconds *obs.Histogram
	SnapshotRecords *obs.Gauge
	SnapshotUnix    *obs.Gauge
	// RecoverySeconds is the last Open's recovery wall time;
	// TruncatedBytes counts torn-tail bytes removed across recoveries.
	RecoverySeconds *obs.FloatGauge
	TruncatedBytes  *obs.Counter
}

// Instrument registers the WAL metric families on reg and points the
// hooks at them.
func Instrument(reg *obs.Registry) {
	M = Metrics{
		Appends: reg.Counter("drm_wal_appends_total",
			"Issuance records appended to WAL stores."),
		Fsyncs: reg.Counter("drm_wal_fsyncs_total",
			"Fsyncs of active WAL segments."),
		FsyncSeconds: reg.Histogram("drm_wal_fsync_seconds",
			"Latency of one WAL segment fsync.", nil),
		Rotations: reg.Counter("drm_wal_segment_rotations_total",
			"WAL segment rotations."),
		Segments: reg.Gauge("drm_wal_segments",
			"Live WAL segment files."),
		SegmentsCompacted: reg.Counter("drm_wal_segments_compacted_total",
			"WAL segment files retired by online compaction."),
		Snapshots: reg.Counter("drm_wal_snapshots_total",
			"WAL snapshots installed."),
		SnapshotSeconds: reg.Histogram("drm_wal_snapshot_seconds",
			"Wall time of one WAL snapshot install.", nil),
		SnapshotRecords: reg.Gauge("drm_wal_snapshot_records",
			"Compacted record count of the latest WAL snapshot."),
		SnapshotUnix: reg.Gauge("drm_wal_snapshot_timestamp_seconds",
			"Unix time of the latest WAL snapshot install."),
		RecoverySeconds: reg.FloatGauge("drm_wal_recovery_seconds",
			"Wall time of the last WAL open (snapshot load + tail replay + repair)."),
		TruncatedBytes: reg.Counter("drm_wal_truncated_bytes_total",
			"Torn-tail bytes removed during WAL recovery."),
	}
}
