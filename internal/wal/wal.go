// Package wal is the durable issuance-log subsystem: an append-only,
// segmented write-ahead log of issuance records with per-frame CRC32C
// checksums, a configurable fsync policy, checkpoint snapshots, crash
// recovery, and online segment compaction.
//
// Motivation (DESIGN.md §8): the paper's aggregate validation replays the
// entire offline issuance log to rebuild the validation tree, so at
// production scale log durability and restart time become the bottleneck.
// The JSONL logstore.File is buffered with no fsync, no checksums, and no
// torn-tail handling, and every open replays O(issued licenses). This
// store bounds restart work to O(distinct sets) + the tail since the last
// snapshot:
//
//   - Appends write binary frames (frame.go) into numbered segment files
//     (segment.go), rotating at Options.SegmentBytes.
//   - Durability follows Options.Fsync: FsyncAlways fsyncs before an
//     append is acknowledged; FsyncInterval group-commits — a background
//     syncer fsyncs at most once per Options.Interval, covering every
//     append in the window with one fsync; FsyncOS leaves flushing to the
//     page cache.
//   - A snapshot persists the compacted per-set counts (at most 2^{N_k}−1
//     per overlap group, Table 2's compacted form) plus the watermark
//     (segment, offset, seq) up to which they aggregate the log. Open
//     loads the snapshot and replays only the tail beyond the watermark.
//   - Recovery scans frames, verifies checksums, truncates a torn tail
//     (the suffix a crashed append leaves), and surfaces mid-log
//     corruption — a bad frame with valid frames after it — as a typed
//     drmerr.KindStoreCorrupt error instead of guessing.
//   - Compaction retires segments wholly covered by the snapshot in the
//     background, without closing the store.
//
// Invariants:
//
//   - Watermark invariant: the snapshot watermark never points past
//     fsynced bytes (Snapshot syncs the active segment before computing
//     it), so a loaded snapshot's replay start always lands on durable,
//     frame-aligned data.
//   - Recovery ≡ uninterrupted audit: the records a recovered store
//     replays are a compaction-equivalent prefix of the records appended,
//     containing every fsync-acknowledged record, inventing none; the
//     audit report over the recovered store is identical to the report an
//     uninterrupted store holding that prefix produces (crash_test.go
//     proves this at every injected failure offset).
//
// Store implements logstore.Store (and logstore.Durable), so the engine,
// catalog, server, and CLI tools use it interchangeably with the JSONL
// backend.
package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/drmerr"
	"repro/internal/fsx"
	"repro/internal/logstore"
	"repro/internal/trace"
)

// FsyncPolicy selects when appended frames are made durable.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs before Append returns: an acknowledged record is
	// durable. The safest and slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval group-commits: a background syncer fsyncs the active
	// segment at most once per Options.Interval when there are unsynced
	// appends, so concurrent appenders share one fsync. Acknowledged
	// records may be lost to a crash within the window.
	FsyncInterval
	// FsyncOS never fsyncs: appends reach the OS page cache on write and
	// survive process crashes, but not power loss.
	FsyncOS
)

// String returns the policy's flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOS:
		return "os"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsync parses a -fsync flag value: "always", "os", "interval", or
// "interval=<duration>" (e.g. "interval=20ms").
func ParseFsync(s string) (FsyncPolicy, time.Duration, error) {
	switch {
	case s == "always":
		return FsyncAlways, 0, nil
	case s == "os":
		return FsyncOS, 0, nil
	case s == "interval":
		return FsyncInterval, 0, nil // Options default
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: bad fsync interval %q", s)
		}
		return FsyncInterval, d, nil
	default:
		return 0, 0, fmt.Errorf("wal: unknown fsync policy %q (want always, os, interval[=d])", s)
	}
}

// Options configure a Store. The zero value is usable: 64 MiB segments,
// FsyncAlways, manual snapshots only.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size.
	// Default 64 MiB.
	SegmentBytes int64
	// Fsync is the durability policy.
	Fsync FsyncPolicy
	// Interval is the FsyncInterval group-commit period. Default 50ms.
	Interval time.Duration
	// SnapshotEvery, when positive, writes a snapshot automatically after
	// that many appends since the last one. 0 = snapshot only on demand.
	SnapshotEvery int

	// OpenSegFile lets tests substitute a failing writer to inject
	// crashes at arbitrary byte offsets (the crash-injection harness and
	// the cluster failover property test both use it); nil means
	// os.OpenFile.
	OpenSegFile func(path string, flag int) (SegFile, error)
}

// SegFile is the writable handle of the active segment; the indirection
// exists for crash injection.
type SegFile interface {
	io.Writer
	io.Closer
	Sync() error
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.OpenSegFile == nil {
		o.OpenSegFile = func(path string, flag int) (SegFile, error) {
			return os.OpenFile(path, flag, 0o644)
		}
	}
	return o
}

// RecoveryStats describes what Open found and fixed.
type RecoveryStats struct {
	// SnapshotRecords is the compacted entry count loaded from the
	// snapshot (0 when none); TailRecords counts frames replayed beyond
	// the watermark.
	SnapshotRecords int
	TailRecords     int
	// SegmentsScanned counts segment files read; TruncatedBytes is the
	// torn tail removed, if any.
	SegmentsScanned int
	TruncatedBytes  int64
	// Duration is the wall time of Open.
	Duration time.Duration
}

// Store is a durable, segmented, checksummed issuance log. All methods
// are safe for concurrent use. The in-memory state mirrors the durable
// one — compacted snapshot entries plus the tail since the watermark — so
// ForEach replays without touching disk.
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	f          SegFile
	size       int64  // active segment size, bytes (header included)
	segIdx     uint64 // active segment index
	seq        uint64 // records appended over the store's lifetime
	synced     uint64 // records covered by a completed fsync
	syncedSize int64  // active segment bytes covered by a completed fsync
	dirty      bool   // unsynced bytes in the active segment
	failed     error  // sticky: a failed write, sync, or snapshot poisons the store
	closed     bool

	snap      []logstore.Record // compacted records covered by the snapshot
	snapSeq   uint64            // watermark: records snap aggregates
	snapSeg   uint64            // watermark segment of the installed snapshot
	snapOff   int64             // watermark byte offset of the installed snapshot
	tail      []logstore.Record // records appended after the watermark
	ledger    logstore.Ledger   // lifecycle state over snap+tail, checked on append
	sinceSnap int               // appends since the last snapshot
	lastSnap  time.Time

	buf []byte // frame scratch, reused across appends

	stopSync  chan struct{}
	syncDone  chan struct{}
	compactWG sync.WaitGroup

	rec RecoveryStats
}

// Open opens (creating if needed) the WAL in dir and recovers its state:
// load the snapshot if present, replay segment frames beyond the
// watermark verifying checksums, truncate a torn tail, and resume
// appending. Mid-log corruption — a bad frame with valid frames after
// it, or a checksum-failing snapshot — surfaces as a
// drmerr.KindStoreCorrupt error.
func Open(dir string, opts Options) (*Store, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.rec.Duration = time.Since(start)
	M.RecoverySeconds.Set(s.rec.Duration.Seconds())
	M.TruncatedBytes.Add(s.rec.TruncatedBytes)
	s.updateSegmentsGauge()
	if opts.Fsync == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// RecoveryStats returns what Open found and fixed.
func (s *Store) RecoveryStats() RecoveryStats { return s.rec }

// Dir returns the WAL directory.
func (s *Store) Dir() string { return s.dir }

// recover rebuilds in-memory state from the snapshot and segments,
// repairing a torn tail, and leaves the store ready to append.
func (s *Store) recover() error {
	doc, err := loadSnapshot(s.dir)
	if err != nil {
		return err
	}
	if doc != nil {
		s.snap = doc.Records
		s.seq = uint64(doc.Seq)
		s.snapSeq = uint64(doc.Seq)
		s.snapSeg = doc.Segment
		s.snapOff = doc.Offset
		s.rec.SnapshotRecords = len(doc.Records)
	}
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	// With a snapshot, segments before the watermark are fully aggregated
	// into it — compaction fodder, not replay input.
	replay := segs
	if doc != nil {
		replay = replay[:0:0]
		for _, idx := range segs {
			if idx >= doc.Segment {
				replay = append(replay, idx)
			}
		}
		if len(replay) == 0 || replay[0] != doc.Segment {
			return drmerr.New(drmerr.KindStoreCorrupt, "wal.open",
				"wal: %s: snapshot watermark names segment %d, which is missing", s.dir, doc.Segment)
		}
	}
	for i, idx := range replay {
		last := i == len(replay)-1
		startOff := int64(segmentHeaderSize)
		if doc != nil && idx == doc.Segment {
			startOff = doc.Offset
		}
		if err := s.replaySegment(idx, startOff, i == 0, doc, last); err != nil {
			return err
		}
		s.rec.SegmentsScanned++
	}
	s.rec.TailRecords = len(s.tail)
	// Rebuild the lifecycle ledger over the recovered state. The append
	// path admits every record before writing it, so an unsound sequence
	// here means the segments were tampered with after the fact.
	for _, r := range s.snap {
		if err := s.ledger.Observe(r); err != nil {
			return drmerr.Wrap(drmerr.KindStoreCorrupt, "wal.open", err)
		}
	}
	for _, r := range s.tail {
		if err := s.ledger.Observe(r); err != nil {
			return drmerr.Wrap(drmerr.KindStoreCorrupt, "wal.open", err)
		}
	}
	if s.segIdx == 0 {
		// Fresh store, or the only segment was a headerless stub (the
		// watermark segment always replays, so doc == nil here).
		return s.createSegmentLocked(1)
	}
	// Resume appending to the recovered last segment.
	f, err := s.opts.OpenSegFile(segmentPath(s.dir, s.segIdx), os.O_WRONLY|os.O_APPEND)
	if err != nil {
		return fmt.Errorf("wal: reopening segment %d: %w", s.segIdx, err)
	}
	s.f = f
	s.synced = s.seq // everything recovered came off durable media
	s.syncedSize = s.size
	return nil
}

// replaySegment reads segment idx from startOff, appending valid frames
// to the tail. first marks the first replayed segment (whose base
// sequence cannot be cross-checked exactly); last marks the final one,
// the only place a torn tail is legal.
func (s *Store) replaySegment(idx uint64, startOff int64, first bool, doc *snapshotDoc, last bool) error {
	path := segmentPath(s.dir, idx)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: reading segment %d: %w", idx, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: reading segment %d: %w", idx, err)
	}
	size := fi.Size()
	corrupt := func(off int64, format string, args ...any) error {
		return drmerr.New(drmerr.KindStoreCorrupt, "wal.open",
			"wal: %s: byte offset %d: %s", path, off, fmt.Sprintf(format, args...))
	}
	var hdr [segmentHeaderSize]byte
	hn, err := f.ReadAt(hdr[:], 0)
	if err != nil && err != io.EOF {
		return fmt.Errorf("wal: reading segment %d: %w", idx, err)
	}
	baseSeq, ok := parseSegmentHeader(hdr[:hn])
	if !ok {
		if doc != nil && idx == doc.Segment {
			// The watermark segment's header was synced before the
			// snapshot was installed; a bad one is real corruption.
			return corrupt(0, "bad segment header under snapshot watermark")
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: reading segment %d: %w", idx, err)
		}
		if !last || anyValidFrame(data) {
			return corrupt(0, "bad segment header")
		}
		// A crash during segment creation left a headerless stub as the
		// newest segment: discard it.
		s.rec.TruncatedBytes += size
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: removing stub segment %d: %w", idx, err)
		}
		return fsx.SyncDir(s.dir)
	}
	switch {
	case first && doc != nil:
		if baseSeq > uint64(doc.Seq) {
			return corrupt(0, "segment base seq %d beyond snapshot watermark seq %d", baseSeq, doc.Seq)
		}
	case first:
		if baseSeq != 0 {
			return corrupt(0, "first segment base seq %d, want 0 (earlier segments removed without a snapshot?)", baseSeq)
		}
	default:
		if baseSeq != s.seq {
			return corrupt(0, "segment base seq %d does not continue the log at seq %d", baseSeq, s.seq)
		}
	}
	if size < startOff {
		// The watermark invariant says bytes below the watermark were
		// fsynced before the snapshot existed; a shorter file is damage.
		return corrupt(size, "segment shorter than snapshot watermark offset %d", startOff)
	}
	// Read only from the replay start: below a snapshot watermark the bytes
	// are already aggregated into the snapshot, and skipping them is what
	// makes snapshot+tail recovery O(tail) instead of O(segment).
	data := make([]byte, size-startOff)
	if n, err := f.ReadAt(data, startOff); err != nil && !(err == io.EOF && int64(n) == size-startOff) {
		return fmt.Errorf("wal: reading segment %d: %w", idx, err)
	}
	var off int64
	for off < int64(len(data)) {
		rec, n, status := parseFrame(data[off:])
		if status == frameOK {
			s.tail = append(s.tail, rec)
			s.seq++
			off += int64(n)
			continue
		}
		if !last || anyValidFrame(data[off+1:]) {
			return corrupt(startOff+off, "invalid frame with valid frames after it (mid-log corruption)")
		}
		// Torn tail: everything from off on is the debris of an append
		// that never completed. Truncate it away, durably.
		s.rec.TruncatedBytes += int64(len(data)) - off
		if err := truncateSegment(path, startOff+off); err != nil {
			return err
		}
		break
	}
	s.segIdx = idx
	s.size = startOff + off
	return nil
}

// anyValidFrame reports whether a valid frame parses at any byte offset
// of b — the recovery test distinguishing a torn tail (pure debris) from
// mid-log corruption (real records beyond the damage).
func anyValidFrame(b []byte) bool {
	for off := 0; off+recordFrameSize <= len(b); off++ {
		if _, _, status := parseFrame(b[off:]); status == frameOK {
			return true
		}
	}
	return false
}

// truncateSegment durably cuts a segment file to size.
func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening %s for truncation: %w", path, err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncated %s: %w", path, err)
	}
	return nil
}

// createSegmentLocked creates segment idx with a header and makes the
// creation durable, installing it as the active segment.
func (s *Store) createSegmentLocked(idx uint64) error {
	path := segmentPath(s.dir, idx)
	f, err := s.opts.OpenSegFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC)
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", idx, err)
	}
	if _, err := f.Write(encodeSegmentHeader(s.seq)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment %d header: %w", idx, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing segment %d header: %w", idx, err)
	}
	if err := fsx.SyncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.f = f
	s.segIdx = idx
	s.size = segmentHeaderSize
	s.syncedSize = segmentHeaderSize
	s.dirty = false
	return nil
}

// rotateLocked seals the active segment (final fsync regardless of
// policy, bounding any loss window to one segment) and opens the next.
func (s *Store) rotateLocked(ctx context.Context) error {
	if err := s.syncLocked(ctx); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %d: %w", s.segIdx, err)
	}
	if err := s.createSegmentLocked(s.segIdx + 1); err != nil {
		return err
	}
	M.Rotations.Inc()
	s.updateSegmentsGauge()
	return nil
}

// Append implements logstore.Store. Durability of the acknowledgment
// follows Options.Fsync; see the policy docs. Any write or sync failure
// poisons the store — later appends fail fast — because the on-disk tail
// is no longer in a state this process can reason about (recovery on the
// next Open is).
func (s *Store) Append(r logstore.Record) error {
	return s.AppendContext(context.Background(), r)
}

// AppendContext is Append with a context for tracing: a traced request
// records a "wal.append" span covering the frame write and, when the
// policy fsyncs inline, a "wal.fsync" child covering the sync wait. The
// context does not cancel the append — a half-written frame is worse
// than a completed one — it only carries the active span; untraced
// contexts take the exact Append path. It implements
// logstore.ContextAppender.
func (s *Store) AppendContext(ctx context.Context, r logstore.Record) error {
	if err := r.Validate(); err != nil {
		return drmerr.Wrap(drmerr.KindInvalidInput, "wal.append", err)
	}
	ctx, sp := trace.Start(ctx, "wal.append")
	s.mu.Lock()
	err := s.appendLocked(ctx, r)
	if sp != nil {
		sp.SetInt("seq", int64(s.seq))
		sp.SetAttr("segment", fmt.Sprintf("%06d", s.segIdx))
	}
	s.mu.Unlock()
	if sp != nil {
		sp.Fail(err)
		sp.End()
	}
	return err
}

// AppendBatch appends records with one write (and, under FsyncAlways,
// one fsync) — the bulk path migrations and generators use.
func (s *Store) AppendBatch(recs []logstore.Record) error {
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			return drmerr.Wrap(drmerr.KindInvalidInput, "wal.append", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Admit the whole batch up front (debits may consume credits from
	// earlier records in the same batch); an unsound batch is refused
	// atomically before any frame is written.
	if err := s.ledger.ObserveAll(recs); err != nil {
		return err
	}
	for len(recs) > 0 {
		if err := s.stateErrLocked(); err != nil {
			return err
		}
		if s.size >= s.opts.SegmentBytes && s.size > segmentHeaderSize {
			if err := s.rotateLocked(context.Background()); err != nil {
				return err
			}
		}
		// Fill the active segment up to the rotation threshold.
		room := int((s.opts.SegmentBytes - s.size + recordFrameSize - 1) / recordFrameSize)
		n := min(max(room, 1), len(recs))
		s.buf = s.buf[:0]
		for _, r := range recs[:n] {
			s.buf = appendFrame(s.buf, r)
		}
		if err := s.writeLocked(s.buf); err != nil {
			return err
		}
		s.seq += uint64(n)
		s.tail = append(s.tail, recs[:n]...)
		s.sinceSnap += n
		M.Appends.Add(int64(n))
		recs = recs[n:]
	}
	return s.commitLocked(context.Background())
}

func (s *Store) appendLocked(ctx context.Context, r logstore.Record) error {
	if err := s.stateErrLocked(); err != nil {
		return err
	}
	if err := s.ledger.Admit(r); err != nil {
		return err
	}
	if s.size >= s.opts.SegmentBytes && s.size > segmentHeaderSize {
		if err := s.rotateLocked(ctx); err != nil {
			return err
		}
	}
	s.buf = appendFrame(s.buf[:0], r)
	if err := s.writeLocked(s.buf); err != nil {
		return err
	}
	s.ledger.Apply(r)
	s.seq++
	s.tail = append(s.tail, r)
	s.sinceSnap++
	M.Appends.Inc()
	return s.commitLocked(ctx)
}

// stateErrLocked reports the sticky failure or closed state.
func (s *Store) stateErrLocked() error {
	if s.closed {
		return errors.New("wal: store closed")
	}
	if s.failed != nil {
		return fmt.Errorf("wal: store failed: %w", s.failed)
	}
	return nil
}

// writeLocked writes frame bytes to the active segment, accounting for
// partial writes and poisoning the store on failure.
func (s *Store) writeLocked(b []byte) error {
	n, err := s.f.Write(b)
	s.size += int64(n)
	if err != nil {
		s.failed = err
		return fmt.Errorf("wal: append: %w", err)
	}
	s.dirty = true
	return nil
}

// commitLocked applies the post-append durability policy and the
// auto-snapshot trigger.
func (s *Store) commitLocked(ctx context.Context) error {
	if s.opts.Fsync == FsyncAlways {
		if err := s.syncLocked(ctx); err != nil {
			return err
		}
	}
	if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
		if _, err := s.snapshotLocked(ctx); err != nil {
			return err
		}
	}
	return nil
}

// syncLocked fsyncs the active segment if it has unsynced bytes,
// advancing the synced watermark. A traced ctx records the sync wait as
// a "wal.fsync" span — under FsyncAlways this is the durability cost a
// request actually pays, the number the tracer exists to expose.
func (s *Store) syncLocked(ctx context.Context) error {
	if !s.dirty {
		s.synced = s.seq
		s.syncedSize = s.size
		return nil
	}
	_, sp := trace.Start(ctx, "wal.fsync")
	start := time.Now()
	err := s.f.Sync()
	M.Fsyncs.Inc()
	M.FsyncSeconds.ObserveSince(start)
	if err != nil {
		if sp != nil {
			sp.Fail(err)
			sp.End()
		}
		s.failed = err
		return fmt.Errorf("wal: fsync: %w", err)
	}
	sp.End()
	s.dirty = false
	s.synced = s.seq
	s.syncedSize = s.size
	return nil
}

// Sync forces an fsync of the active segment now, whatever the policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stateErrLocked(); err != nil {
		return err
	}
	return s.syncLocked(context.Background())
}

// syncLoop is the FsyncInterval group-committer: one fsync per interval
// covers every append of the window.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.failed == nil && s.dirty {
				// Poisons the store on failure; appenders see it.
				s.syncLocked(context.Background())
			}
			s.mu.Unlock()
		}
	}
}

// SyncedSeq returns the number of records covered by a completed fsync
// (== Seq under FsyncAlways).
func (s *Store) SyncedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.synced
}

// Seq returns the number of records appended over the store's lifetime,
// snapshot-covered records included.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Backlog returns the number of appended records not yet covered by a
// completed fsync — the durability lag an interval or OS fsync policy
// accumulates (always 0 under FsyncAlways). The runtime telemetry
// collector exposes it as drm_wal_fsync_backlog.
func (s *Store) Backlog() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.seq - s.synced)
}

// Len implements logstore.Store: the record count a ForEach replay
// yields — compacted snapshot entries plus the tail.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snap) + len(s.tail)
}

// ForEach implements logstore.Store, replaying the compacted snapshot
// entries then the tail. The aggregation this store's snapshots apply is
// exactly the one the validation tree applies anyway (summing counts per
// belongs-to set), so audits over a snapshotted store equal audits over
// the raw append sequence.
func (s *Store) ForEach(fn func(logstore.Record) error) error {
	s.mu.Lock()
	snap, tail := s.snap, s.tail
	s.mu.Unlock()
	for _, r := range snap {
		if err := fn(r); err != nil {
			return err
		}
	}
	for _, r := range tail {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements logstore.Durable. WAL appends are write-through to
// the OS (there is no user-space buffer), so Flush has nothing to do;
// durability against power loss is Sync's job.
func (s *Store) Flush() error { return nil }

// LedgerSnapshot implements logstore.LedgerReader.
func (s *Store) LedgerSnapshot() *logstore.Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.Clone()
}

// Close seals the store: final fsync, stop the group-committer, wait for
// background compaction, close the active segment.
func (s *Store) Close() error {
	s.mu.Lock()
	var syncErr error
	if !s.closed && s.failed == nil {
		syncErr = s.syncLocked(context.Background())
	}
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if alreadyClosed {
		return errors.New("wal: store closed")
	}
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	s.compactWG.Wait()
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return syncErr
}

// updateSegmentsGauge refreshes the live segment-count metric.
func (s *Store) updateSegmentsGauge() {
	if M.Segments == nil {
		return
	}
	if segs, err := listSegments(s.dir); err == nil {
		M.Segments.Set(int64(len(segs)))
	}
}
