package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/drmerr"
	"repro/internal/logstore"
)

// smallSeg keeps 4 frames per segment so snapshots and compaction have
// several files to work over.
var smallSeg = Options{SegmentBytes: segmentHeaderSize + 4*recordFrameSize}

func TestSnapshotAndTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, smallSeg)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(30)
	for _, r := range recs[:22] {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	info, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 22 {
		t.Errorf("snapshot Seq = %d, want 22", info.Seq)
	}
	if info.Records >= 22 {
		t.Errorf("snapshot Records = %d, want compacted (< 22)", info.Records)
	}
	for _, r := range recs[22:] {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	wantSums := sums(recs)
	if !equalSums(sums(collect(t, s)), wantSums) {
		t.Error("live store sums diverge after snapshot")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, smallSeg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if s2.Seq() != 30 {
		t.Errorf("recovered Seq = %d, want 30", s2.Seq())
	}
	st := s2.RecoveryStats()
	if st.SnapshotRecords != info.Records {
		t.Errorf("recovery SnapshotRecords = %d, want %d", st.SnapshotRecords, info.Records)
	}
	if st.TailRecords != 8 {
		t.Errorf("recovery TailRecords = %d, want 8", st.TailRecords)
	}
	if !equalSums(sums(collect(t, s2)), wantSums) {
		t.Error("recovered store sums diverge from full history")
	}
	// Appends continue past the recovered watermark.
	if err := s2.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != 31 {
		t.Errorf("Seq after post-recovery append = %d, want 31", s2.Seq())
	}
}

func TestCompactionRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, smallSeg)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(20) // 5 segments
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.compactWG.Wait()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != s.snapSeg {
		t.Errorf("segments after compaction = %v, want only watermark segment %d", segs, s.snapSeg)
	}
	// Idempotent.
	if n, err := s.Compact(); err != nil || n != 0 {
		t.Errorf("second Compact = %d, %v; want 0, nil", n, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, smallSeg)
	if err != nil {
		t.Fatalf("recovery after compaction failed: %v", err)
	}
	defer s2.Close()
	if s2.Seq() != 20 {
		t.Errorf("Seq = %d, want 20", s2.Seq())
	}
	if !equalSums(sums(collect(t, s2)), sums(recs)) {
		t.Error("compacted store sums diverge from full history")
	}
}

func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := smallSeg
	opts.SnapshotEvery = 10
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, r := range testRecords(25) {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.SnapshotSeq(); got != 20 {
		t.Errorf("SnapshotSeq = %d, want 20 (auto-snapshot every 10)", got)
	}
	if s.LastSnapshot().IsZero() {
		t.Error("LastSnapshot is zero after auto-snapshots")
	}
}

func TestCorruptSnapshotSurfaces(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(6) {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapshotFile)
	for name, mutate := range map[string]func([]byte) []byte{
		"garbage":   func(b []byte) []byte { return []byte("not json at all") },
		"torn":      func(b []byte) []byte { return b[:len(b)/2] },
		"bad crc":   func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"empty doc": func(b []byte) []byte { return []byte("{}\n") },
	} {
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, drmerr.ErrStoreCorrupt) {
			t.Errorf("%s snapshot: open err = %v, want store corrupt", name, err)
		}
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Sanity: restored snapshot opens fine.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestSnapshotMissingWatermarkSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, smallSeg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(10) {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.compactWG.Wait()
	watermark := s.snapSeg
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Deleting the watermark segment loses records the snapshot does not
	// cover; recovery must refuse rather than silently shorten the log.
	if err := os.Remove(segmentPath(dir, watermark)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, smallSeg); !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("open without watermark segment: err = %v, want store corrupt", err)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	info, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || info.Seq != 0 {
		t.Errorf("empty snapshot info = %+v", info)
	}
	if err := s.Append(logstore.Record{Set: 1, Count: 2}); err != nil {
		t.Fatal(err)
	}
}
