package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"testing"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/logstore"
)

// lifecycleRecords is a sound mixed-kind sequence: plain issues (v1
// frames), a TTL issue, a revoke, a transfer, and an expire debiting
// the TTL bucket (v2 frames).
func lifecycleRecords() []logstore.Record {
	set := bitset.MaskOf(0, 1)
	return []logstore.Record{
		{Set: set, Count: 10},
		{Set: set, Count: 10},
		{Kind: logstore.KindIssue, Set: set, Count: 7, Meta: logstore.Meta{Expiry: 5000}},
		{Kind: logstore.KindRevoke, Set: set, Count: 5},
		{Kind: logstore.KindTransfer, Set: set, Count: 4},
		{Kind: logstore.KindExpire, Set: set, Count: 7, Meta: logstore.Meta{Expiry: 5000}},
	}
}

func TestLifecycleRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := lifecycleRecords()
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
	got := collect(t, s)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery over mixed-kind frames: %v", err)
	}
	defer s2.Close()
	got = collect(t, s2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reopened record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	led := s2.LedgerSnapshot()
	set := bitset.MaskOf(0, 1)
	if n := led.Net(set); n != 15 { // 10+10+7 − 5 − 7
		t.Errorf("recovered net = %d, want 15", n)
	}
	if x := led.Transferred(set); x != 4 {
		t.Errorf("recovered transfer total = %d, want 4", x)
	}
}

func TestLifecycleSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := lifecycleRecords()
	for _, r := range recs[:4] {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot over signed deltas: %v", err)
	}
	for _, r := range recs[4:] {
		if err := s.Append(r); err != nil {
			t.Fatalf("append after snapshot %+v: %v", r, err)
		}
	}
	set := bitset.MaskOf(0, 1)
	wantNet := s.LedgerSnapshot().Net(set)
	wantXfer := s.LedgerSnapshot().Transferred(set)
	wantDue := len(s.LedgerSnapshot().Due(1 << 40))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery from v2 snapshot + tail: %v", err)
	}
	defer s2.Close()
	led := s2.LedgerSnapshot()
	if led.Net(set) != wantNet || led.Transferred(set) != wantXfer {
		t.Errorf("recovered ledger (net %d, xfer %d), want (%d, %d)",
			led.Net(set), led.Transferred(set), wantNet, wantXfer)
	}
	if got := len(led.Due(1 << 40)); got != wantDue {
		t.Errorf("recovered due buckets = %d, want %d", got, wantDue)
	}
}

// writeLifecycleSegment appends issues then a revoke then one more
// issue, closes the store, and returns the segment path plus the byte
// offset of the revoke's v2 frame. Layout: 16-byte header, two 24-byte
// v1 frames, the 33-byte revoke frame, one trailing 24-byte frame.
func writeLifecycleSegment(t *testing.T) (string, int) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set := bitset.MaskOf(0, 1)
	for _, r := range []logstore.Record{
		{Set: set, Count: 10},
		{Set: set, Count: 10},
		{Kind: logstore.KindRevoke, Set: set, Count: 5},
		{Set: set, Count: 3},
	} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return segmentPath(dir, 1), segmentHeaderSize + 2*recordFrameSize
}

// rewriteFrame applies mutate to the payload of the frame at off and
// recomputes its CRC, so the corruption is semantic (kind byte, count
// sign), not detectable as bit rot.
func rewriteFrame(t *testing.T, path string, off int, mutate func(payload []byte)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	length := binary.LittleEndian.Uint32(data[off : off+4])
	payload := data[off+frameHeaderSize : off+frameHeaderSize+int(length)]
	mutate(payload)
	binary.LittleEndian.PutUint32(data[off+4:off+8], crc32.Checksum(payload, castagnoli))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownKindByteRefused plants a CRC-valid frame whose kind byte
// names no known lifecycle kind mid-log: recovery must answer a typed
// store-corrupt error — never panic, never silently skip the frame.
func TestUnknownKindByteRefused(t *testing.T) {
	path, off := writeLifecycleSegment(t)
	rewriteFrame(t, path, off, func(payload []byte) { payload[0] = 9 })
	_, err := Open(segDir(path), Options{})
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("open over unknown kind byte: err = %v, want store corrupt", err)
	}
}

// TestKindSignMismatchRefused flips a revoke frame's stored effective
// count positive (CRC fixed up): the sign contradicts the kind byte,
// which recovery must treat as corruption.
func TestKindSignMismatchRefused(t *testing.T) {
	path, off := writeLifecycleSegment(t)
	rewriteFrame(t, path, off, func(payload []byte) {
		stored := int64(binary.LittleEndian.Uint64(payload[9:17]))
		binary.LittleEndian.PutUint64(payload[9:17], uint64(-stored))
	})
	_, err := Open(segDir(path), Options{})
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("open over kind/count sign mismatch: err = %v, want store corrupt", err)
	}
}

// TestUnsoundTailRefused rewrites the revoke's debit deeper than the
// credits before it (CRC valid, frame well-formed): the append-time
// soundness invariant no longer holds on disk — tampering — so
// recovery must refuse rather than replay a negative-net ledger.
func TestUnsoundTailRefused(t *testing.T) {
	path, off := writeLifecycleSegment(t)
	rewriteFrame(t, path, off, func(payload []byte) {
		stored := int64(-1000)
		binary.LittleEndian.PutUint64(payload[9:17], uint64(stored))
	})
	_, err := Open(segDir(path), Options{})
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("open over unsound ledger: err = %v, want store corrupt", err)
	}
}

// TestTornLedgerFrameTruncated leaves a partial v2 frame at the tail: a
// torn lifecycle append repairs exactly like a torn issue append.
func TestTornLedgerFrameTruncated(t *testing.T) {
	path, _ := writeLifecycleSegment(t)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	debris := []byte{ledgerPayloadSize, 0, 0, 0, 0xca, 0xfe, byte(logstore.KindRevoke)}
	if _, err := f.Write(debris); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := Open(segDir(path), Options{})
	if err != nil {
		t.Fatalf("recovery over torn ledger frame: %v", err)
	}
	defer s.Close()
	if got := len(collect(t, s)); got != 4 {
		t.Fatalf("recovered %d records, want 4", got)
	}
	if tb := s.RecoveryStats().TruncatedBytes; tb != int64(len(debris)) {
		t.Errorf("TruncatedBytes = %d, want %d", tb, len(debris))
	}
}

// segDir recovers the WAL directory from a segment path.
func segDir(path string) string {
	return path[:len(path)-len("/"+segmentName(1))]
}

// FuzzParseFrame hammers the frame parser with arbitrary bytes: it must
// never panic, and every accepted frame must decode to a record that
// passes logstore validation with a plausible consumed length.
func FuzzParseFrame(f *testing.F) {
	var valid []byte
	for _, r := range lifecycleRecords() {
		f.Add(appendFrame(nil, r))
		valid = appendFrame(valid, r)
	}
	f.Add(valid)
	f.Add([]byte{16, 0, 0, 0})
	f.Add([]byte{25, 0, 0, 0, 1, 2, 3, 4, 9})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, status := parseFrame(b)
		switch status {
		case frameOK:
			if n != recordFrameSize && n != ledgerFrameSize {
				t.Fatalf("accepted frame consumed %d bytes", n)
			}
			if err := rec.Validate(); err != nil {
				t.Fatalf("accepted invalid record %+v: %v", rec, err)
			}
		case frameShort, frameCorrupt:
			if n != 0 {
				t.Fatalf("rejected frame consumed %d bytes", n)
			}
		default:
			t.Fatalf("unknown frame status %d", status)
		}
	})
}
