package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/logstore"
)

// Store must satisfy the durable log-store contract.
var _ logstore.Durable = (*Store)(nil)

// testRecords builds n deterministic valid records over an 8-license
// universe, with enough set variety that compaction has work to do.
func testRecords(n int) []logstore.Record {
	sets := []bitset.Mask{
		bitset.MaskOf(0), bitset.MaskOf(1), bitset.MaskOf(0, 1),
		bitset.MaskOf(2, 3), bitset.MaskOf(4), bitset.MaskOf(5, 6, 7),
	}
	out := make([]logstore.Record, n)
	for i := range out {
		out[i] = logstore.Record{Set: sets[i%len(sets)], Count: int64(1 + i%9)}
	}
	return out
}

func collect(t *testing.T, s logstore.Store) []logstore.Record {
	t.Helper()
	recs, err := logstore.Collect(s)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return recs
}

// sums aggregates records per set — the audit-relevant view, invariant
// under compaction.
func sums(recs []logstore.Record) map[bitset.Mask]int64 {
	m := make(map[bitset.Mask]int64)
	for _, r := range recs {
		m[r.Set] += r.Count
	}
	return m
}

func equalSums(a, b map[bitset.Mask]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(25)
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 25 {
		t.Errorf("Len = %d, want 25", s.Len())
	}
	if s.SyncedSeq() != 25 { // FsyncAlways is the default
		t.Errorf("SyncedSeq = %d, want 25", s.SyncedSeq())
	}
	got := collect(t, s)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 25 || s2.Len() != 25 {
		t.Errorf("reopened Seq/Len = %d/%d, want 25/25", s2.Seq(), s2.Len())
	}
	got = collect(t, s2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reopened record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	st := s2.RecoveryStats()
	if st.TailRecords != 25 || st.SnapshotRecords != 0 || st.TruncatedBytes != 0 {
		t.Errorf("recovery stats = %+v", st)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	// Room for 4 frames per segment.
	opts := Options{SegmentBytes: segmentHeaderSize + 4*recordFrameSize}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(19)
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 { // ceil(19/4)
		t.Errorf("segments = %v, want 5 files", segs)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(t, s2)
	if len(got) != len(want) {
		t.Fatalf("reopened %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Appending after reopen continues the same log.
	extra := logstore.Record{Set: bitset.MaskOf(3), Count: 7}
	if err := s2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if s2.Seq() != 20 {
		t.Errorf("Seq after append = %d, want 20", s2.Seq())
	}
}

func TestAppendBatchMatchesAppend(t *testing.T) {
	recs := testRecords(37)
	opts := Options{SegmentBytes: segmentHeaderSize + 5*recordFrameSize}

	one := t.TempDir()
	s1, err := Open(one, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s1.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()

	batch := t.TempDir()
	s2, err := Open(batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	r1, err := Open(one, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := Open(batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	a, b := collect(t, r1), collect(t, r2)
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestFsyncInterval(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, r := range testRecords(10) {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The group-committer must cover all 10 appends within a few periods.
	deadline := time.Now().Add(2 * time.Second)
	for s.SyncedSeq() != 10 {
		if time.Now().After(deadline) {
			t.Fatalf("SyncedSeq = %d after waiting, want 10", s.SyncedSeq())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFsyncOSExplicitSync(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncOS})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, r := range testRecords(5) {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.SyncedSeq() != 0 {
		t.Errorf("SyncedSeq = %d before Sync, want 0", s.SyncedSeq())
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.SyncedSeq() != 5 {
		t.Errorf("SyncedSeq = %d after Sync, want 5", s.SyncedSeq())
	}
}

func TestRejectsInvalidAndClosed(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(logstore.Record{Set: 0, Count: 1}); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("empty-set append: err = %v, want invalid input", err)
	}
	if err := s.Append(logstore.Record{Set: 1, Count: 0}); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("zero-count append: err = %v, want invalid input", err)
	}
	if s.Len() != 0 {
		t.Errorf("invalid records counted: Len = %d", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(logstore.Record{Set: 1, Count: 1}); err == nil {
		t.Error("append on closed store accepted")
	}
	if err := s.Close(); err == nil {
		t.Error("double close accepted")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(8)
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crashed append leaves a partial frame at the end.
	path := segmentPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	debris := []byte{16, 0, 0, 0, 0xde, 0xad} // length prefix + partial CRC
	if _, err := f.Write(debris); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	got := collect(t, s2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if tb := s2.RecoveryStats().TruncatedBytes; tb != int64(len(debris)) {
		t.Errorf("TruncatedBytes = %d, want %d", tb, len(debris))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if wantSize := int64(segmentHeaderSize + 8*recordFrameSize); fi.Size() != wantSize {
		t.Errorf("segment size after repair = %d, want %d", fi.Size(), wantSize)
	}
}

func TestMidLogCorruptionSurfaces(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(8) {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the segment: the frame's CRC
	// fails while valid frames follow — truncation would lose records, so
	// recovery must refuse.
	path := segmentPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := segmentHeaderSize + 2*recordFrameSize + frameHeaderSize + 3
	data[off] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{})
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("open over mid-log corruption: err = %v, want store corrupt", err)
	}
}

func TestHeaderlessStubDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SegmentBytes: segmentHeaderSize + 4*recordFrameSize})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords(6) // spans two segments
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash during rotation can leave the next segment as a short,
	// headerless stub.
	if err := os.WriteFile(segmentPath(dir, 3), []byte{'D', 'R', 'M'}, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if got := collect(t, s2); len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	if _, err := os.Stat(segmentPath(dir, 3)); !errors.Is(err, os.ErrNotExist) {
		t.Error("stub segment not removed")
	}
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in     string
		policy FsyncPolicy
		d      time.Duration
		ok     bool
	}{
		{"always", FsyncAlways, 0, true},
		{"os", FsyncOS, 0, true},
		{"interval", FsyncInterval, 0, true},
		{"interval=20ms", FsyncInterval, 20 * time.Millisecond, true},
		{"interval=0s", 0, 0, false},
		{"interval=banana", 0, 0, false},
		{"never", 0, 0, false},
	}
	for _, c := range cases {
		p, d, err := ParseFsync(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseFsync(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (p != c.policy || d != c.d) {
			t.Errorf("ParseFsync(%q) = %v, %v", c.in, p, d)
		}
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	// fsx temp litter and unrelated files must not confuse recovery.
	if err := os.WriteFile(filepath.Join(dir, ".snapshot.json.tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(logstore.Record{Set: 1, Count: 1}); err != nil {
		t.Fatal(err)
	}
}
