package wal

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/workload"
)

// The crash-injection harness: every segment write goes through a shared
// byte budget; the write that would exceed it is cut short (a torn frame,
// exactly what a power cut mid-write leaves) and every later write and
// fsync fails. Sweeping the budget over every region of the byte stream
// drives recovery through all of its cases — mid-header, mid-frame,
// frame-aligned, mid-rotation — and after each simulated crash the
// recovered store must satisfy:
//
//	acked ⊆ recovered ⊆ attempted  (no synced record lost, none invented)
//
// and produce an audit Report identical to an uninterrupted store holding
// the same records.

var errInjected = errors.New("wal_test: injected crash")

// crashBudget is the shared fault state: remaining bytes before the
// "power cut", and whether it has happened.
type crashBudget struct {
	mu        sync.Mutex
	remaining int64
	tripped   bool
	written   int64
}

// crashFile passes writes through to the real file until the budget
// trips; from then on the disk is gone.
type crashFile struct {
	f *os.File
	b *crashBudget
}

func (c *crashFile) Write(p []byte) (int, error) {
	c.b.mu.Lock()
	defer c.b.mu.Unlock()
	if c.b.tripped {
		return 0, errInjected
	}
	n := len(p)
	if int64(n) > c.b.remaining {
		n = int(c.b.remaining)
		c.b.tripped = true
	}
	c.b.remaining -= int64(n)
	if n > 0 {
		if _, err := c.f.Write(p[:n]); err != nil {
			return 0, err
		}
		c.b.written += int64(n)
	}
	if c.b.tripped {
		return n, errInjected
	}
	return n, nil
}

func (c *crashFile) Sync() error {
	c.b.mu.Lock()
	tripped := c.b.tripped
	c.b.mu.Unlock()
	if tripped {
		return errInjected
	}
	return c.f.Sync()
}

func (c *crashFile) Close() error { return c.f.Close() }

func crashHook(b *crashBudget) func(string, int) (SegFile, error) {
	return func(path string, flag int) (SegFile, error) {
		f, err := os.OpenFile(path, flag, 0o644)
		if err != nil {
			return nil, err
		}
		return &crashFile{f: f, b: b}, nil
	}
}

// crashWorkload builds a small but realistic corpus and record stream:
// real licenses, real overlap groups, so the audit reports below exercise
// the full grouped validation path.
func crashWorkload(t *testing.T) (*license.Corpus, []logstore.Record) {
	t.Helper()
	cfg := workload.Default(8)
	cfg.RecordsPerLicense = 8 // 64 records: enough for several segments
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w.Corpus, w.Records
}

func auditReport(t *testing.T, corpus *license.Corpus, log logstore.Store) core.Report {
	t.Helper()
	aud, err := core.NewAuditor(corpus, log)
	if err != nil {
		t.Fatalf("auditor: %v", err)
	}
	rep, err := aud.Audit()
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	return rep
}

// runToCrash appends records into dir until the injected crash (or the
// records run out), returning how many appends were acknowledged and how
// many were attempted.
func runToCrash(t *testing.T, dir string, opts Options, records []logstore.Record) (acked, attempted int) {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		// The crash landed inside Open's own segment creation: zero
		// appends were even attempted.
		if !errors.Is(err, errInjected) {
			t.Fatalf("open under injection: %v", err)
		}
		return 0, 0
	}
	for _, r := range records {
		attempted++
		if err := s.Append(r); err != nil {
			if !errors.Is(err, errInjected) {
				t.Fatalf("append under injection: unexpected error %v", err)
			}
			break
		}
		acked++
	}
	// No Close: the process just died. (Release the fd, ignoring errors.)
	if s.f != nil {
		s.f.Close()
	}
	return acked, attempted
}

// measureWrittenBytes runs the full workload with an unlimited budget and
// returns the total bytes the WAL writes — the sweep range.
func measureWrittenBytes(t *testing.T, opts Options, records []logstore.Record) int64 {
	t.Helper()
	b := &crashBudget{remaining: math.MaxInt64}
	opts.OpenSegFile = crashHook(b)
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return b.written
}

func TestCrashRecoveryEveryOffset(t *testing.T) {
	corpus, records := crashWorkload(t)
	opts := Options{SegmentBytes: segmentHeaderSize + 5*recordFrameSize} // FsyncAlways
	total := measureWrittenBytes(t, opts, records)

	// Reference reports for every possible prefix length, computed once
	// from an uninterrupted in-memory store.
	refReport := make(map[int]core.Report)
	report := func(n int) core.Report {
		rep, ok := refReport[n]
		if !ok {
			mem := logstore.NewMem(n)
			for _, r := range records[:n] {
				if err := mem.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			rep = auditReport(t, corpus, mem)
			refReport[n] = rep
		}
		return rep
	}

	step := total / 120
	if step < 1 {
		step = 1
	}
	root := t.TempDir()
	offsets := 0
	for off := int64(0); off <= total; off += step {
		offsets++
		dir := filepath.Join(root, fmt.Sprintf("crash-%06d", off))
		b := &crashBudget{remaining: off}
		inj := opts
		inj.OpenSegFile = crashHook(b)
		acked, attempted := runToCrash(t, dir, inj, records)

		s, err := Open(dir, opts) // clean reopen: the restart after the crash
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		got := collect(t, s)
		n := len(got)
		if n < acked {
			t.Fatalf("offset %d: lost synced records: recovered %d < acked %d", off, n, acked)
		}
		if n > attempted {
			t.Fatalf("offset %d: invented records: recovered %d > attempted %d", off, n, attempted)
		}
		for i := range got {
			if got[i] != records[i] {
				t.Fatalf("offset %d: record %d = %+v, want %+v (not a prefix)", off, i, got[i], records[i])
			}
		}
		if gotRep := auditReport(t, corpus, s); !reflect.DeepEqual(gotRep, report(n)) {
			t.Fatalf("offset %d: audit report after recovery differs from uninterrupted store with %d records", off, n)
		}
		// The recovered store must accept new appends.
		if err := s.Append(records[0]); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", off, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("offset %d: close after recovery: %v", off, err)
		}
	}
	if offsets < 100 {
		t.Fatalf("swept only %d injection offsets, want >= 100", offsets)
	}
}

// TestCrashRecoveryWithSnapshots repeats the sweep with auto-snapshots
// and compaction in play. Snapshots compact the history, so the prefix
// check gives way to its aggregate form: per-set sums (what the
// validation tree consumes) must match the uninterrupted prefix, and the
// audit report must still be identical.
func TestCrashRecoveryWithSnapshots(t *testing.T) {
	corpus, records := crashWorkload(t)
	opts := Options{
		SegmentBytes:  segmentHeaderSize + 5*recordFrameSize,
		SnapshotEvery: 7,
	}
	total := measureWrittenBytes(t, opts, records)

	step := total / 40
	if step < 1 {
		step = 1
	}
	root := t.TempDir()
	for off := int64(0); off <= total; off += step {
		dir := filepath.Join(root, fmt.Sprintf("crash-%06d", off))
		b := &crashBudget{remaining: off}
		inj := opts
		inj.OpenSegFile = crashHook(b)
		acked, attempted := runToCrash(t, dir, inj, records)

		s, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("offset %d: recovery failed: %v", off, err)
		}
		n := int(s.Seq())
		if n < acked || n > attempted {
			t.Fatalf("offset %d: recovered seq %d outside [acked %d, attempted %d]", off, n, acked, attempted)
		}
		if got, want := sums(collect(t, s)), sums(records[:n]); !equalSums(got, want) {
			t.Fatalf("offset %d: per-set sums diverge from uninterrupted prefix of %d", off, n)
		}
		mem := logstore.NewMem(n)
		for _, r := range records[:n] {
			if err := mem.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(auditReport(t, corpus, s), auditReport(t, corpus, mem)) {
			t.Fatalf("offset %d: audit report after recovery differs from uninterrupted store", off)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("offset %d: close after recovery: %v", off, err)
		}
	}
}

// syncCrashFile lets writes through but fails every fsync from the k-th
// on: the "disk lies about durability" case. Written-but-unsynced frames
// may legitimately survive, so recovery may return MORE than was acked —
// never less.
type syncCrashFile struct {
	f *os.File
	b *syncBudget
}

type syncBudget struct {
	mu        sync.Mutex
	remaining int
}

func (c *syncCrashFile) Write(p []byte) (int, error) { return c.f.Write(p) }
func (c *syncCrashFile) Close() error                { return c.f.Close() }
func (c *syncCrashFile) Sync() error {
	c.b.mu.Lock()
	defer c.b.mu.Unlock()
	if c.b.remaining <= 0 {
		return errInjected
	}
	c.b.remaining--
	return c.f.Sync()
}

func TestCrashRecoveryFailedFsync(t *testing.T) {
	corpus, records := crashWorkload(t)
	opts := Options{SegmentBytes: segmentHeaderSize + 5*recordFrameSize}
	for k := 0; k < 12; k++ {
		dir := filepath.Join(t.TempDir(), "wal")
		b := &syncBudget{remaining: k}
		inj := opts
		inj.OpenSegFile = func(path string, flag int) (SegFile, error) {
			f, err := os.OpenFile(path, flag, 0o644)
			if err != nil {
				return nil, err
			}
			return &syncCrashFile{f: f, b: b}, nil
		}
		acked, attempted := runToCrash(t, dir, inj, records)

		s, err := Open(dir, opts)
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		got := collect(t, s)
		if len(got) < acked || len(got) > attempted {
			t.Fatalf("k=%d: recovered %d outside [acked %d, attempted %d]", k, len(got), acked, attempted)
		}
		for i := range got {
			if got[i] != records[i] {
				t.Fatalf("k=%d: record %d not a prefix", k, i)
			}
		}
		mem := logstore.NewMem(len(got))
		for _, r := range records[:len(got)] {
			if err := mem.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(auditReport(t, corpus, s), auditReport(t, corpus, mem)) {
			t.Fatalf("k=%d: audit report after recovery differs from uninterrupted store", k)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}
	}
}
