package wal

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/drmerr"
	"repro/internal/fsx"
	"repro/internal/logstore"
)

// Log shipping (DESIGN.md §13): a follower mirrors a leader's WAL
// byte-for-byte by pulling durable frame ranges from a (segment, offset,
// seq) cursor. The leader side is ReadFrames + Bootstrap; the follower
// side is InstallBootstrap + IngestFrames. Because the mirror is
// byte-identical from the bootstrap watermark on, a follower restart —
// and promotion to leader — goes through the ordinary Open recovery
// path: there is no replica-specific persistence format to reason about.
//
// Shipping invariants:
//
//   - Only durable bytes ship. ReadFrames never serves past the fsync
//     boundary of the active segment, so a torn tail on the leader (a
//     crashed append's debris) is invisible to followers: the follower
//     stops at the watermark rather than ingesting the torn frame.
//   - Only whole, parse-valid frames ship. The durable boundary is
//     frame-aligned by construction (syncs cover completed writes); a
//     frame that fails to parse below it is surfaced as store corruption,
//     never forwarded.
//   - A batch lands exactly at the follower's frontier or not at all.
//     IngestFrames verifies the start cursor against (segIdx, size, seq)
//     — with a one-step rotation when the batch opens the next segment —
//     and rejects the whole batch if any frame is invalid or the ledger
//     refuses the sequence, so a confused leader cannot desynchronize a
//     follower silently.

// Cursor is a replication watermark into the segment stream: Segment and
// Offset locate the next byte to read, Seq counts the records encoded
// before that byte. The zero Cursor is invalid; tailing a store from its
// genesis starts at {Segment: 1, Offset: segment header size, Seq: 0}.
type Cursor struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
	Seq     uint64 `json:"seq"`
}

// String renders the cursor for logs and errors.
func (c Cursor) String() string {
	return fmt.Sprintf("(seg %d, off %d, seq %d)", c.Segment, c.Offset, c.Seq)
}

// Before reports whether c is strictly behind other in the segment
// stream.
func (c Cursor) Before(other Cursor) bool {
	if c.Segment != other.Segment {
		return c.Segment < other.Segment
	}
	return c.Offset < other.Offset
}

// StartCursor is where tailing a store with no snapshot begins.
func StartCursor() Cursor {
	return Cursor{Segment: 1, Offset: segmentHeaderSize}
}

// ErrCompacted reports a ship cursor pointing below the leader's
// installed snapshot watermark: the segment it names has been (or may at
// any moment be) retired by compaction. The follower's only move is to
// discard its mirror and re-bootstrap from the current snapshot.
var ErrCompacted = errors.New("wal: ship cursor below snapshot watermark (segment compacted)")

// Batch is one shipped frame range. Start is where Data begins — equal
// to the requested cursor unless the read advanced across one or more
// sealed segment boundaries — and Next is the cursor after Data. Data
// never spans a segment boundary. An empty Data with Next == Start
// means the follower is caught up to the leader's durable frontier.
type Batch struct {
	Start   Cursor `json:"start"`
	Next    Cursor `json:"next"`
	Records int    `json:"records"`
	Data    []byte `json:"data,omitempty"`
}

// DurableCursor returns the store's durable frontier: the cursor just
// past the last fsync-covered byte. ReadFrames never serves beyond it.
func (s *Store) DurableCursor() Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Cursor{Segment: s.segIdx, Offset: s.syncedSize, Seq: s.synced}
}

// ReadFrames reads up to maxBytes of durable, whole-frame bytes starting
// at cur. It works on failed (poisoned) and closed stores — the read
// path is what a failover drains after the leader's write path dies — and
// returns ErrCompacted (wrapped) when cur falls below the snapshot
// watermark. maxBytes is clamped to at least one maximal frame.
func (s *Store) ReadFrames(cur Cursor, maxBytes int) (Batch, error) {
	if maxBytes < ledgerFrameSize {
		maxBytes = ledgerFrameSize
	}
	for {
		s.mu.Lock()
		segIdx, syncedSize, syncedSeq, snapSeg := s.segIdx, s.syncedSize, s.synced, s.snapSeg
		s.mu.Unlock()
		if cur.Segment == 0 || cur.Offset < segmentHeaderSize {
			return Batch{}, drmerr.New(drmerr.KindInvalidInput, "wal.ship",
				"wal: invalid ship cursor %v", cur)
		}
		if snapSeg != 0 && cur.Segment < snapSeg {
			return Batch{}, fmt.Errorf("wal: ship cursor %v: %w", cur, ErrCompacted)
		}
		if cur.Segment > segIdx {
			return Batch{}, drmerr.New(drmerr.KindInvalidInput, "wal.ship",
				"wal: ship cursor %v beyond active segment %d", cur, segIdx)
		}
		var limit int64
		if cur.Segment == segIdx {
			limit = syncedSize
		} else {
			// A sealed segment is durable in full (rotation fsyncs before
			// closing); its size is the limit. Vanishing under us means
			// compaction retired it between the watermark check and here.
			fi, err := os.Stat(segmentPath(s.dir, cur.Segment))
			if errors.Is(err, os.ErrNotExist) {
				return Batch{}, fmt.Errorf("wal: ship cursor %v: %w", cur, ErrCompacted)
			}
			if err != nil {
				return Batch{}, fmt.Errorf("wal: ship read: %w", err)
			}
			limit = fi.Size()
		}
		if cur.Offset > limit {
			return Batch{}, drmerr.New(drmerr.KindInvalidInput, "wal.ship",
				"wal: ship cursor %v beyond durable boundary %d of segment %d", cur, limit, cur.Segment)
		}
		if cur.Offset == limit {
			if cur.Segment < segIdx {
				cur = Cursor{Segment: cur.Segment + 1, Offset: segmentHeaderSize, Seq: cur.Seq}
				continue
			}
			// Caught up to the durable frontier; the cursor's record count
			// must agree with ours or the follower is tailing a different
			// history (e.g. a re-created leader directory).
			if cur.Seq != syncedSeq {
				return Batch{}, drmerr.New(drmerr.KindInvalidInput, "wal.ship",
					"wal: ship cursor %v at durable frontier but synced seq is %d (divergent history?)", cur, syncedSeq)
			}
			return Batch{Start: cur, Next: cur}, nil
		}
		n := limit - cur.Offset
		if n > int64(maxBytes) {
			n = int64(maxBytes)
		}
		buf := make([]byte, n)
		f, err := os.Open(segmentPath(s.dir, cur.Segment))
		if errors.Is(err, os.ErrNotExist) {
			return Batch{}, fmt.Errorf("wal: ship cursor %v: %w", cur, ErrCompacted)
		}
		if err != nil {
			return Batch{}, fmt.Errorf("wal: ship read: %w", err)
		}
		rn, err := f.ReadAt(buf, cur.Offset)
		f.Close()
		if err != nil && !(err == io.EOF && int64(rn) == n) {
			return Batch{}, fmt.Errorf("wal: ship read segment %d: %w", cur.Segment, err)
		}
		// Trim to whole frames. A short parse at the window edge just means
		// maxBytes cut a frame; a short or corrupt parse at the durable
		// boundary is damage we must not forward.
		windowEdge := cur.Offset+n < limit
		var off, recs int
		for off < len(buf) {
			_, fn, status := parseFrame(buf[off:])
			if status == frameOK {
				off += fn
				recs++
				continue
			}
			if status == frameShort && windowEdge {
				break
			}
			return Batch{}, drmerr.New(drmerr.KindStoreCorrupt, "wal.ship",
				"wal: segment %d: invalid frame at durable offset %d", cur.Segment, cur.Offset+int64(off))
		}
		next := Cursor{Segment: cur.Segment, Offset: cur.Offset + int64(off), Seq: cur.Seq + uint64(recs)}
		return Batch{Start: cur, Next: next, Records: recs, Data: buf[:off]}, nil
	}
}

// IngestFrames appends a shipped batch to a follower store as raw frame
// bytes, keeping the mirror byte-identical to the leader. start must
// name the follower's exact frontier (segIdx, size, seq) — or open the
// next segment at its header boundary, in which case the follower
// rotates first, reproducing the leader's segment layout. Every frame is
// parse-validated and the whole batch is admitted by the lifecycle
// ledger before any byte is written; a refused batch leaves the store
// untouched. The decoded records are returned so the caller can keep
// derived state (headroom cache, stats) warm without re-reading the log.
func (s *Store) IngestFrames(start Cursor, data []byte) (next Cursor, recs []logstore.Record, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stateErrLocked(); err != nil {
		return start, nil, err
	}
	var off int
	for off < len(data) {
		rec, n, status := parseFrame(data[off:])
		if status != frameOK {
			return start, nil, drmerr.New(drmerr.KindStoreCorrupt, "wal.ingest",
				"wal: shipped batch: invalid frame at byte %d of %d", off, len(data))
		}
		recs = append(recs, rec)
		off += n
	}
	rotate := false
	switch {
	case start.Segment == s.segIdx && start.Offset == s.size && start.Seq == s.seq:
	case start.Segment == s.segIdx+1 && start.Offset == segmentHeaderSize && start.Seq == s.seq:
		rotate = true
	default:
		return start, nil, drmerr.New(drmerr.KindInvalidInput, "wal.ingest",
			"wal: shipped batch start %v does not match local frontier (seg %d, off %d, seq %d)",
			start, s.segIdx, s.size, s.seq)
	}
	if err := s.ledger.ObserveAll(recs); err != nil {
		return start, nil, drmerr.Wrap(drmerr.KindStoreCorrupt, "wal.ingest", err)
	}
	if rotate {
		if err := s.rotateLocked(context.Background()); err != nil {
			return start, nil, err
		}
	}
	if len(data) > 0 {
		if err := s.writeLocked(data); err != nil {
			return start, nil, err
		}
		s.seq += uint64(len(recs))
		s.tail = append(s.tail, recs...)
		s.sinceSnap += len(recs)
		M.Appends.Add(int64(len(recs)))
	}
	if err := s.commitLocked(context.Background()); err != nil {
		return start, nil, err
	}
	return Cursor{Segment: s.segIdx, Offset: s.size, Seq: s.seq}, recs, nil
}

// BootstrapDoc carries everything a fresh follower needs to start
// tailing a leader without replaying its full history: the installed
// snapshot document, the watermark segment's byte prefix up to the
// watermark offset (header included, so the mirror's watermark segment
// is byte-complete for recovery), and the cursor tailing resumes from.
// A leader with no snapshot ships only the genesis cursor and the
// follower replicates every segment from the beginning.
type BootstrapDoc struct {
	Snapshot      []byte `json:"snapshot,omitempty"`
	SegmentPrefix []byte `json:"segment_prefix,omitempty"`
	Start         Cursor `json:"start"`
}

// Bootstrap captures the leader's installed snapshot and watermark
// segment prefix for shipping to a fresh follower. It retries if a
// concurrent snapshot+compaction moves the watermark mid-capture.
func (s *Store) Bootstrap() (*BootstrapDoc, error) {
	const attempts = 5
	var lastErr error
	for range attempts {
		path := filepath.Join(s.dir, snapshotFile)
		data, err := os.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			return &BootstrapDoc{Start: StartCursor()}, nil
		}
		if err != nil {
			return nil, fmt.Errorf("wal: bootstrap: %w", err)
		}
		doc, err := decodeSnapshot(data, path)
		if err != nil {
			return nil, err
		}
		prefix := make([]byte, doc.Offset)
		f, err := os.Open(segmentPath(s.dir, doc.Segment))
		if errors.Is(err, os.ErrNotExist) {
			// The snapshot advanced and compaction retired the segment we
			// just decoded a watermark into; re-read the newer snapshot.
			lastErr = err
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("wal: bootstrap: %w", err)
		}
		n, err := f.ReadAt(prefix, 0)
		f.Close()
		if err != nil && !(err == io.EOF && int64(n) == doc.Offset) {
			lastErr = fmt.Errorf("wal: bootstrap: reading segment %d prefix: %w", doc.Segment, err)
			continue
		}
		return &BootstrapDoc{
			Snapshot:      data,
			SegmentPrefix: prefix,
			Start:         Cursor{Segment: doc.Segment, Offset: doc.Offset, Seq: doc.Seq},
		}, nil
	}
	return nil, fmt.Errorf("wal: bootstrap: watermark kept moving: %w", lastErr)
}

// InstallBootstrap materializes a shipped BootstrapDoc into an empty
// directory, after which wal.Open recovers through the ordinary
// snapshot+tail path and IngestFrames continues from doc.Start. The doc
// is fully verified first — snapshot checksum, watermark consistency,
// segment header, and every prefix frame — so a corrupt bootstrap is
// refused before any file is written.
func InstallBootstrap(dir string, doc *BootstrapDoc) error {
	const op = "wal.bootstrap"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	if _, statErr := os.Stat(filepath.Join(dir, snapshotFile)); len(segs) > 0 || statErr == nil {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"wal: %s is not empty; refusing to install a bootstrap over existing state", dir)
	}
	if doc.Snapshot == nil {
		if doc.Start != StartCursor() {
			return drmerr.New(drmerr.KindInvalidInput, op,
				"wal: snapshotless bootstrap must start at genesis, got %v", doc.Start)
		}
		return nil
	}
	sdoc, err := decodeSnapshot(doc.Snapshot, "shipped snapshot")
	if err != nil {
		return err
	}
	want := Cursor{Segment: sdoc.Segment, Offset: sdoc.Offset, Seq: sdoc.Seq}
	if doc.Start != want {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"wal: bootstrap start %v disagrees with snapshot watermark %v", doc.Start, want)
	}
	if int64(len(doc.SegmentPrefix)) != sdoc.Offset {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"wal: bootstrap segment prefix is %d bytes, watermark offset is %d", len(doc.SegmentPrefix), sdoc.Offset)
	}
	baseSeq, ok := parseSegmentHeader(doc.SegmentPrefix)
	if !ok {
		return drmerr.New(drmerr.KindStoreCorrupt, op, "wal: bootstrap segment prefix has a bad header")
	}
	if baseSeq > sdoc.Seq {
		return drmerr.New(drmerr.KindStoreCorrupt, op,
			"wal: bootstrap segment base seq %d beyond watermark seq %d", baseSeq, sdoc.Seq)
	}
	frames := uint64(0)
	for off := segmentHeaderSize; off < len(doc.SegmentPrefix); {
		_, n, status := parseFrame(doc.SegmentPrefix[off:])
		if status != frameOK {
			return drmerr.New(drmerr.KindStoreCorrupt, op,
				"wal: bootstrap segment prefix: invalid frame at byte %d", off)
		}
		off += n
		frames++
	}
	if baseSeq+frames != sdoc.Seq {
		return drmerr.New(drmerr.KindStoreCorrupt, op,
			"wal: bootstrap segment prefix holds %d frames over base %d, watermark seq is %d", frames, baseSeq, sdoc.Seq)
	}
	segPath := segmentPath(dir, sdoc.Segment)
	if err := writeFileSynced(segPath, doc.SegmentPrefix); err != nil {
		return err
	}
	if err := fsx.WriteFileAtomic(filepath.Join(dir, snapshotFile), func(w io.Writer) error {
		_, err := w.Write(doc.Snapshot)
		return err
	}); err != nil {
		return fmt.Errorf("wal: installing bootstrap snapshot: %w", err)
	}
	return fsx.SyncDir(dir)
}

// writeFileSynced writes path with an fsync, as segment creation does.
func writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing %s: %w", path, err)
	}
	return f.Close()
}
