package wal

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// benchRecords mirrors a long-lived issuance log: many records over a
// small population of belongs-to sets.
func benchRecords(n int) []logstore.Record {
	sets := []bitset.Mask{
		bitset.MaskOf(0), bitset.MaskOf(1), bitset.MaskOf(0, 1),
		bitset.MaskOf(2), bitset.MaskOf(2, 3), bitset.MaskOf(4, 5),
		bitset.MaskOf(6), bitset.MaskOf(6, 7),
	}
	out := make([]logstore.Record, n)
	for i := range out {
		out[i] = logstore.Record{Set: sets[i%len(sets)], Count: int64(1 + i%25)}
	}
	return out
}

// BenchmarkRecovery measures Open on a 10^6-record WAL (10^5 under
// -short): FullReplay with no snapshot, SnapshotTail with a snapshot
// covering all but a 1% tail. The acceptance bar is SnapshotTail ≥10×
// faster; EXPERIMENTS.md records the measured ratio.
func BenchmarkRecovery(b *testing.B) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	recs := benchRecords(n)
	opts := Options{Fsync: FsyncOS}

	build := func(b *testing.B, snapshot bool) string {
		b.Helper()
		dir := b.TempDir()
		s, err := Open(dir, opts)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.AppendBatch(recs); err != nil {
			b.Fatal(err)
		}
		if snapshot {
			if _, err := s.Snapshot(); err != nil {
				b.Fatal(err)
			}
			if err := s.AppendBatch(recs[:n/100]); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	bench := func(snapshot bool) func(*testing.B) {
		return func(b *testing.B) {
			dir := build(b, snapshot)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
	}
	b.Run("FullReplay", bench(false))
	b.Run("SnapshotTail", bench(true))
}
