package license

import (
	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/region"
)

// Example1 is the paper's running example (Example 1, fig 1–5, Table 2)
// materialised as a fixture shared by tests, examples, and documentation:
// five redistribution licenses for the Play permission with a validity
// period and a region constraint.
type Example1 struct {
	// Taxonomy is the region universe the example resolves against.
	Taxonomy *region.Taxonomy
	// Schema is the 2-axis constraint schema (period, region).
	Schema *geometry.Schema
	// Corpus holds L_D^1..L_D^5 at indexes 0..4.
	Corpus *Corpus
	// Usage1 and Usage2 are the paper's L_U^1 (valid, belongs to {L1,L2})
	// and L_U^2 (belongs to {L2} only).
	Usage1, Usage2 *License
	// Log mirrors Table 2: the belongs-to sets and counts of L_U^1..L_U^6.
	// Note the paper's Table 2 is an *illustrative* log: its record
	// {L1,L2,L4} cannot arise from the example's actual rectangles (Asia ∩
	// Europe = ∅, so no usage rectangle lies inside L2 and L4 at once). The
	// validation-tree machinery operates on logs as given, so the fixture
	// reproduces the table verbatim.
	Log []LogEntry
}

// LogEntry is one row of Table 2: the belongs-to set (as a corpus-index
// mask) and the permission count of one issued license.
type LogEntry struct {
	Set   bitset.Mask
	Count int64
}

// NewExample1 constructs the fixture. It panics only on programmer error in
// the fixture literals themselves.
func NewExample1() *Example1 {
	tax := region.World()
	schema := geometry.MustSchema(
		geometry.Axis{Name: "period", Kind: geometry.KindInterval},
		geometry.Axis{Name: "region", Kind: geometry.KindSet, Universe: tax.NumLeaves()},
	)
	mk := func(name, from, to string, agg int64, regions ...string) *License {
		return &License{
			Name:       name,
			Kind:       Redistribution,
			Content:    "K",
			Permission: Play,
			Rect: geometry.MustRect(schema,
				geometry.IntervalValue(interval.MustDateRange(from, to)),
				geometry.SetValue(tax.MustResolve(regions...)),
			),
			Aggregate: agg,
		}
	}
	corpus := NewCorpus(schema)
	corpus.MustAdd(mk("L_D^1", "10/03/09", "20/03/09", 2000, "Asia", "Europe"))
	corpus.MustAdd(mk("L_D^2", "15/03/09", "25/03/09", 1000, "Asia"))
	corpus.MustAdd(mk("L_D^3", "15/03/09", "30/03/09", 3000, "America"))
	corpus.MustAdd(mk("L_D^4", "15/03/09", "15/04/09", 4000, "Europe"))
	corpus.MustAdd(mk("L_D^5", "25/03/09", "10/04/09", 2000, "America"))

	usage := func(name, from, to string, count int64, regions ...string) *License {
		return &License{
			Name:       name,
			Kind:       Usage,
			Content:    "K",
			Permission: Play,
			Rect: geometry.MustRect(schema,
				geometry.IntervalValue(interval.MustDateRange(from, to)),
				geometry.SetValue(tax.MustResolve(regions...)),
			),
			Aggregate: count,
		}
	}

	return &Example1{
		Taxonomy: tax,
		Schema:   schema,
		Corpus:   corpus,
		Usage1:   usage("L_U^1", "15/03/09", "19/03/09", 800, "India"),
		Usage2:   usage("L_U^2", "21/03/09", "24/03/09", 400, "Japan"),
		Log: []LogEntry{
			{Set: bitset.MaskOf(0, 1), Count: 800},   // L_U^1 → {L1,L2}
			{Set: bitset.MaskOf(1), Count: 400},      // L_U^2 → {L2}
			{Set: bitset.MaskOf(0, 1), Count: 40},    // L_U^3 → {L1,L2}
			{Set: bitset.MaskOf(0, 1, 3), Count: 30}, // L_U^4 → {L1,L2,L4}
			{Set: bitset.MaskOf(2, 4), Count: 800},   // L_U^5 → {L3,L5}
			{Set: bitset.MaskOf(4), Count: 20},       // L_U^6 → {L5}
		},
	}
}
