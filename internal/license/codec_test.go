package license

import (
	"bytes"
	"strings"
	"testing"
)

func TestCorpusCodecRoundTripExample1(t *testing.T) {
	ex := NewExample1()
	var buf bytes.Buffer
	if err := EncodeCorpus(&buf, ex.Corpus); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ex.Corpus.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), ex.Corpus.Len())
	}
	for i := 0; i < back.Len(); i++ {
		orig, got := ex.Corpus.License(i), back.License(i)
		if got.Name != orig.Name || got.Aggregate != orig.Aggregate ||
			got.Content != orig.Content || got.Permission != orig.Permission {
			t.Errorf("license %d metadata differs: %+v vs %+v", i, got, orig)
		}
		if got.Rect.String() != orig.Rect.String() {
			t.Errorf("license %d rect = %s, want %s", i, got.Rect, orig.Rect)
		}
	}
}

func TestCorpusCodecRoundTripIntervalOnly(t *testing.T) {
	s := simpleSchema()
	c := NewCorpus(s)
	c.MustAdd(simpleLicense(s, "L1", 0, 100, 5000))
	c.MustAdd(simpleLicense(s, "L2", 50, 200, 12000))
	c.MustAdd(simpleLicense(s, "L3", -30, -1, 20000))
	var buf bytes.Buffer
	if err := EncodeCorpus(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Fatalf("len mismatch")
	}
	for i := 0; i < back.Len(); i++ {
		if back.License(i).Rect.String() != c.License(i).Rect.String() {
			t.Errorf("license %d rect differs", i)
		}
	}
	// Double round-trip is byte-stable (canonical encoding).
	var buf2 bytes.Buffer
	if err := EncodeCorpus(&buf2, back); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := EncodeCorpus(&buf1, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("encoding not canonical across a round-trip")
	}
}

func TestEncodeEmptyCorpusFails(t *testing.T) {
	c := NewCorpus(simpleSchema())
	var buf bytes.Buffer
	if err := EncodeCorpus(&buf, c); err == nil {
		t.Error("empty corpus encoded")
	}
}

func TestDecodeCorpusErrors(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"bad version":     `{"version":9,"axes":[],"licenses":[]}`,
		"bad axis kind":   `{"version":1,"axes":[{"name":"x","kind":"weird"}],"licenses":[]}`,
		"value arity":     `{"version":1,"content":"K","permission":"play","axes":[{"name":"x","kind":"interval"}],"licenses":[{"name":"L","aggregate":5,"values":[]}]}`,
		"missing lo/hi":   `{"version":1,"content":"K","permission":"play","axes":[{"name":"x","kind":"interval"}],"licenses":[{"name":"L","aggregate":5,"values":[{}]}]}`,
		"set out of univ": `{"version":1,"content":"K","permission":"play","axes":[{"name":"r","kind":"set","universe":3}],"licenses":[{"name":"L","aggregate":5,"values":[{"set":[7]}]}]}`,
		"invalid license": `{"version":1,"content":"K","permission":"play","axes":[{"name":"x","kind":"interval"}],"licenses":[{"name":"L","aggregate":-5,"values":[{"lo":0,"hi":1}]}]}`,
	}
	for name, doc := range cases {
		if _, err := DecodeCorpus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
