// Package license defines the license model of the DRM system: the
// (K; P; I_1..I_M; A) tuples of the paper, for both redistribution licenses
// (issued down the distribution chain, with range constraints and an
// aggregate permission-count budget) and usage licenses (issued to
// consumers).
//
// A Corpus is the set of redistribution licenses a distributor holds for one
// (content, permission) pair — the paper's S^N — with stable zero-based
// indexes that the validation machinery (bitset.Mask elements, validation
// tree node labels) refers to.
package license

import (
	"errors"
	"fmt"

	"repro/internal/geometry"
)

// Permission is the right a license grants (the paper's P).
type Permission string

// Common permissions from the DRM literature ([4], [9]).
const (
	Play       Permission = "play"
	Copy       Permission = "copy"
	Rip        Permission = "rip"
	Distribute Permission = "distribute"
)

// Kind distinguishes redistribution from usage licenses.
type Kind uint8

const (
	// Redistribution licenses let a distributor generate further licenses.
	Redistribution Kind = iota
	// Usage licenses let a consumer exercise the permission directly.
	Usage
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Redistribution:
		return "redistribution"
	case Usage:
		return "usage"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// License is one license: content identifier, permission, instance-based
// constraints (as a hyper-rectangle over the corpus schema), and the
// aggregate permission-count constraint.
type License struct {
	// Name is a human-readable identifier, e.g. "L_D^1".
	Name string
	// Kind says whether this is a redistribution or usage license.
	Kind Kind
	// Content identifies the content item K.
	Content string
	// Permission is the granted right P.
	Permission Permission
	// Rect holds the instance-based constraints I_1..I_M.
	Rect geometry.Rect
	// Aggregate is the aggregate constraint A: the total permission count
	// this license may hand out (redistribution) or consume (usage).
	Aggregate int64
}

// Validate checks structural well-formedness. It does not perform instance
// or aggregate validation against other licenses.
func (l *License) Validate() error {
	switch {
	case l == nil:
		return errors.New("license: nil license")
	case l.Name == "":
		return errors.New("license: empty name")
	case l.Content == "":
		return fmt.Errorf("license %s: empty content", l.Name)
	case l.Permission == "":
		return fmt.Errorf("license %s: empty permission", l.Name)
	case l.Rect.IsZero():
		return fmt.Errorf("license %s: missing constraint rectangle", l.Name)
	case l.Rect.Empty():
		return fmt.Errorf("license %s: empty constraint range", l.Name)
	case l.Aggregate < 0:
		return fmt.Errorf("license %s: negative aggregate %d", l.Name, l.Aggregate)
	}
	return nil
}

// String renders a compact one-line description.
func (l *License) String() string {
	return fmt.Sprintf("%s(%s; %s; %s; A=%d)", l.Name, l.Kind, l.Permission, l.Rect, l.Aggregate)
}

// Corpus is the ordered set of redistribution licenses a distributor holds
// for one (content, permission) pair: the paper's S^N. Index i in the corpus
// is element i of every bitset.Mask used by the validators; the paper's
// one-based L_D^j is index j-1.
type Corpus struct {
	schema   *geometry.Schema
	licenses []*License
}

// NewCorpus creates an empty corpus over the given constraint schema.
func NewCorpus(schema *geometry.Schema) *Corpus {
	return &Corpus{schema: schema}
}

// ErrTooManyLicenses is returned when a corpus would exceed the 64-license
// limit imposed by the Mask representation. The validation-equation approach
// is 2^N anyway, so the limit is never the binding constraint in practice.
var ErrTooManyLicenses = errors.New("license: corpus exceeds 64 redistribution licenses")

// Add appends a redistribution license and returns its index. The license
// must be structurally valid, of Redistribution kind, and over the corpus
// schema; content and permission must match the corpus' first license.
func (c *Corpus) Add(l *License) (int, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if l.Kind != Redistribution {
		return 0, fmt.Errorf("license %s: corpus accepts only redistribution licenses", l.Name)
	}
	if l.Rect.Schema() != c.schema {
		return 0, fmt.Errorf("license %s: rectangle uses a different schema", l.Name)
	}
	if len(c.licenses) >= 64 {
		return 0, ErrTooManyLicenses
	}
	if len(c.licenses) > 0 {
		first := c.licenses[0]
		if l.Content != first.Content || l.Permission != first.Permission {
			return 0, fmt.Errorf("license %s: corpus holds (%s,%s) licenses, got (%s,%s)",
				l.Name, first.Content, first.Permission, l.Content, l.Permission)
		}
	}
	c.licenses = append(c.licenses, l)
	return len(c.licenses) - 1, nil
}

// MustAdd is Add for trusted fixtures; it panics on error.
func (c *Corpus) MustAdd(l *License) int {
	i, err := c.Add(l)
	if err != nil {
		panic(err)
	}
	return i
}

// Len returns N, the number of redistribution licenses.
func (c *Corpus) Len() int { return len(c.licenses) }

// Schema returns the constraint schema shared by all licenses.
func (c *Corpus) Schema() *geometry.Schema { return c.schema }

// License returns the license at index i.
func (c *Corpus) License(i int) *License { return c.licenses[i] }

// Licenses returns the backing slice; callers must not modify it.
func (c *Corpus) Licenses() []*License { return c.licenses }

// Aggregates returns the paper's array A: Aggregates()[j] is the aggregate
// constraint value of the license at index j. A fresh slice is returned.
func (c *Corpus) Aggregates() []int64 {
	out := make([]int64, len(c.licenses))
	for i, l := range c.licenses {
		out[i] = l.Aggregate
	}
	return out
}

// TopUp raises the aggregate budget of the license at index i by extra —
// the remediation path when an audit finds (or forecasts) a violated
// equation: the owner sells the distributor additional counts. extra must
// be positive; budgets never shrink (issued counts cannot be recalled).
func (c *Corpus) TopUp(i int, extra int64) error {
	if i < 0 || i >= len(c.licenses) {
		return fmt.Errorf("license: top-up index %d outside corpus of %d", i, len(c.licenses))
	}
	if extra <= 0 {
		return fmt.Errorf("license: top-up of %d; budgets only grow", extra)
	}
	c.licenses[i].Aggregate += extra
	return nil
}

// BelongsTo computes the belongs-to set of an issued license: the indexes of
// all corpus licenses whose rectangles fully contain the issued rectangle
// (§3.1). An empty result means the issued license fails instance-based
// validation against every redistribution license and is invalid (like
// L_U^2 in fig 2).
func (c *Corpus) BelongsTo(issued geometry.Rect) []int {
	var out []int
	for i, l := range c.licenses {
		if l.Rect.Contains(issued) {
			out = append(out, i)
		}
	}
	return out
}
