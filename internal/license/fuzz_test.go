package license

import (
	"bytes"
	"testing"
)

// FuzzDecodeCorpus checks that arbitrary corpus documents never panic the
// decoder, and that every accepted document re-encodes canonically
// (decode → encode → decode is a fixed point).
func FuzzDecodeCorpus(f *testing.F) {
	// Seed with a real document...
	ex := NewExample1()
	var buf bytes.Buffer
	if err := EncodeCorpus(&buf, ex.Corpus); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// ...and structured near-misses.
	for _, s := range []string{
		``,
		`{}`,
		`{"version":1,"content":"K","permission":"play","axes":[],"licenses":[]}`,
		`{"version":1,"content":"K","permission":"play","axes":[{"name":"x","kind":"interval"}],"licenses":[{"name":"L","aggregate":1,"values":[{"lo":0,"hi":5}]}]}`,
		`{"version":1,"axes":[{"name":"r","kind":"set","universe":4}],"licenses":[{"name":"L","aggregate":1,"values":[{"set":[0,3]}]}]}`,
		`{"version":2}`,
		`[1,2,3]`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCorpus(bytes.NewReader(data))
		if err != nil {
			return
		}
		if c.Len() == 0 {
			return // empty corpora cannot re-encode (content unknown)
		}
		var first bytes.Buffer
		if err := EncodeCorpus(&first, c); err != nil {
			t.Fatalf("accepted corpus does not encode: %v", err)
		}
		c2, err := DecodeCorpus(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		var second bytes.Buffer
		if err := EncodeCorpus(&second, c2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("encode → decode → encode is not a fixed point")
		}
	})
}
