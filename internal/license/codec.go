package license

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
)

// The corpus wire format is a single JSON document carrying the schema and
// all redistribution licenses, so a corpus file is self-describing and
// round-trips without external context. cmd/drmgen writes it; cmd/drmaudit
// and cmd/drmserver read it.

const corpusCodecVersion = 1

type corpusDoc struct {
	Version    int          `json:"version"`
	Content    string       `json:"content"`
	Permission Permission   `json:"permission"`
	Axes       []axisDoc    `json:"axes"`
	Licenses   []licenseDoc `json:"licenses"`
}

type axisDoc struct {
	Name string `json:"name"`
	// Kind is "interval" or "set".
	Kind string `json:"kind"`
	// Universe is the categorical width for set axes.
	Universe int `json:"universe,omitempty"`
}

type licenseDoc struct {
	Name      string     `json:"name"`
	Aggregate int64      `json:"aggregate"`
	Values    []ValueDoc `json:"values"`
}

// ValueDoc is the wire form of one axis value: lo/hi for interval axes, a
// sorted element list for set axes. It is exported so network services can
// accept constraint rectangles in the same shape corpus files use.
type ValueDoc struct {
	// Lo/Hi carry interval axes.
	Lo *int64 `json:"lo,omitempty"`
	Hi *int64 `json:"hi,omitempty"`
	// Set carries set axes as sorted element lists.
	Set []int `json:"set,omitempty"`
}

// BuildRect materialises a wire-form value list into a rectangle over the
// schema, validating kinds, arity, and set universes.
func BuildRect(schema *geometry.Schema, docs []ValueDoc) (geometry.Rect, error) {
	if len(docs) != schema.Dims() {
		return geometry.Rect{}, fmt.Errorf("license: %d values, schema wants %d", len(docs), schema.Dims())
	}
	vals := make([]geometry.Value, len(docs))
	for i, vd := range docs {
		ax := schema.Axis(i)
		switch ax.Kind {
		case geometry.KindInterval:
			if vd.Lo == nil || vd.Hi == nil {
				return geometry.Rect{}, fmt.Errorf("license: axis %q missing lo/hi", ax.Name)
			}
			vals[i] = geometry.IntervalValue(interval.New(*vd.Lo, *vd.Hi))
		case geometry.KindSet:
			set := bitset.NewSet(ax.Universe)
			for _, e := range vd.Set {
				if e < 0 || e >= ax.Universe {
					return geometry.Rect{}, fmt.Errorf("license: axis %q element %d outside universe %d",
						ax.Name, e, ax.Universe)
				}
				set.Add(e)
			}
			vals[i] = geometry.SetValue(set)
		}
	}
	return geometry.NewRect(schema, vals...)
}

// EncodeCorpus writes the corpus as a single JSON document. Empty corpora
// are rejected: without a license the content/permission pair is unknown.
func EncodeCorpus(w io.Writer, c *Corpus) error {
	if c.Len() == 0 {
		return fmt.Errorf("license: cannot encode empty corpus")
	}
	first := c.License(0)
	doc := corpusDoc{
		Version:    corpusCodecVersion,
		Content:    first.Content,
		Permission: first.Permission,
	}
	schema := c.Schema()
	for i := 0; i < schema.Dims(); i++ {
		ax := schema.Axis(i)
		ad := axisDoc{Name: ax.Name}
		switch ax.Kind {
		case geometry.KindInterval:
			ad.Kind = "interval"
		case geometry.KindSet:
			ad.Kind = "set"
			ad.Universe = ax.Universe
		}
		doc.Axes = append(doc.Axes, ad)
	}
	for _, l := range c.Licenses() {
		ld := licenseDoc{Name: l.Name, Aggregate: l.Aggregate}
		for i := 0; i < schema.Dims(); i++ {
			v := l.Rect.Value(i)
			if v.Kind() == geometry.KindInterval {
				iv := v.Interval()
				lo, hi := iv.Lo, iv.Hi
				ld.Values = append(ld.Values, ValueDoc{Lo: &lo, Hi: &hi})
			} else {
				ld.Values = append(ld.Values, ValueDoc{Set: v.Set().Elems()})
			}
		}
		doc.Licenses = append(doc.Licenses, ld)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("license: encode corpus: %w", err)
	}
	return bw.Flush()
}

// DecodeCorpus reads a document produced by EncodeCorpus, rebuilding the
// schema and corpus.
func DecodeCorpus(r io.Reader) (*Corpus, error) {
	var doc corpusDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("license: decode corpus: %w", err)
	}
	if doc.Version != corpusCodecVersion {
		return nil, fmt.Errorf("license: unsupported corpus version %d", doc.Version)
	}
	axes := make([]geometry.Axis, len(doc.Axes))
	for i, ad := range doc.Axes {
		axes[i] = geometry.Axis{Name: ad.Name}
		switch ad.Kind {
		case "interval":
			axes[i].Kind = geometry.KindInterval
		case "set":
			axes[i].Kind = geometry.KindSet
			axes[i].Universe = ad.Universe
		default:
			return nil, fmt.Errorf("license: axis %q has unknown kind %q", ad.Name, ad.Kind)
		}
	}
	schema, err := geometry.NewSchema(axes...)
	if err != nil {
		return nil, err
	}
	c := NewCorpus(schema)
	for _, ld := range doc.Licenses {
		rect, err := BuildRect(schema, ld.Values)
		if err != nil {
			return nil, fmt.Errorf("license: %s: %w", ld.Name, err)
		}
		_, err = c.Add(&License{
			Name:       ld.Name,
			Kind:       Redistribution,
			Content:    doc.Content,
			Permission: doc.Permission,
			Rect:       rect,
			Aggregate:  ld.Aggregate,
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}
