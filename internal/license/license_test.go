package license

import (
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/interval"
)

func simpleSchema() *geometry.Schema {
	return geometry.MustSchema(geometry.Axis{Name: "period", Kind: geometry.KindInterval})
}

func simpleLicense(s *geometry.Schema, name string, lo, hi int64, agg int64) *License {
	return &License{
		Name:       name,
		Kind:       Redistribution,
		Content:    "K",
		Permission: Play,
		Rect:       geometry.MustRect(s, geometry.IntervalValue(interval.New(lo, hi))),
		Aggregate:  agg,
	}
}

func TestLicenseValidate(t *testing.T) {
	s := simpleSchema()
	good := simpleLicense(s, "L", 0, 10, 100)
	if err := good.Validate(); err != nil {
		t.Errorf("valid license rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*License)
	}{
		{"empty name", func(l *License) { l.Name = "" }},
		{"empty content", func(l *License) { l.Content = "" }},
		{"empty permission", func(l *License) { l.Permission = "" }},
		{"zero rect", func(l *License) { l.Rect = geometry.Rect{} }},
		{"empty range", func(l *License) {
			l.Rect = geometry.MustRect(s, geometry.IntervalValue(interval.Empty()))
		}},
		{"negative aggregate", func(l *License) { l.Aggregate = -1 }},
	}
	for _, c := range cases {
		l := simpleLicense(s, "L", 0, 10, 100)
		c.mutate(l)
		if err := l.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	var nilL *License
	if err := nilL.Validate(); err == nil {
		t.Error("nil license accepted")
	}
}

func TestCorpusAddRules(t *testing.T) {
	s := simpleSchema()
	c := NewCorpus(s)
	idx, err := c.Add(simpleLicense(s, "L1", 0, 10, 100))
	if err != nil || idx != 0 {
		t.Fatalf("Add = (%d, %v)", idx, err)
	}
	// Usage licenses are rejected.
	u := simpleLicense(s, "U", 0, 5, 10)
	u.Kind = Usage
	if _, err := c.Add(u); err == nil {
		t.Error("usage license accepted into corpus")
	}
	// Mismatched schema rejected.
	other := simpleSchema()
	if _, err := c.Add(simpleLicense(other, "L2", 0, 10, 100)); err == nil {
		t.Error("foreign-schema license accepted")
	}
	// Mismatched content rejected.
	l3 := simpleLicense(s, "L3", 0, 10, 100)
	l3.Content = "K2"
	if _, err := c.Add(l3); err == nil {
		t.Error("foreign-content license accepted")
	}
	// Mismatched permission rejected.
	l4 := simpleLicense(s, "L4", 0, 10, 100)
	l4.Permission = Copy
	if _, err := c.Add(l4); err == nil {
		t.Error("foreign-permission license accepted")
	}
}

func TestCorpusCapacity(t *testing.T) {
	s := simpleSchema()
	c := NewCorpus(s)
	for i := 0; i < 64; i++ {
		if _, err := c.Add(simpleLicense(s, "L", 0, 10, 100)); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	if _, err := c.Add(simpleLicense(s, "L65", 0, 10, 100)); err != ErrTooManyLicenses {
		t.Errorf("expected ErrTooManyLicenses, got %v", err)
	}
}

func TestCorpusAggregates(t *testing.T) {
	s := simpleSchema()
	c := NewCorpus(s)
	c.MustAdd(simpleLicense(s, "L1", 0, 10, 11))
	c.MustAdd(simpleLicense(s, "L2", 0, 10, 22))
	a := c.Aggregates()
	if len(a) != 2 || a[0] != 11 || a[1] != 22 {
		t.Errorf("Aggregates = %v", a)
	}
	a[0] = 999 // must not alias corpus state
	if c.License(0).Aggregate != 11 {
		t.Error("Aggregates aliases corpus state")
	}
}

func TestBelongsToSimple(t *testing.T) {
	s := simpleSchema()
	c := NewCorpus(s)
	c.MustAdd(simpleLicense(s, "L1", 0, 10, 1))
	c.MustAdd(simpleLicense(s, "L2", 5, 20, 1))
	c.MustAdd(simpleLicense(s, "L3", 50, 60, 1))
	q := geometry.MustRect(s, geometry.IntervalValue(interval.New(6, 9)))
	got := c.BelongsTo(q)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("BelongsTo = %v, want [0 1]", got)
	}
	far := geometry.MustRect(s, geometry.IntervalValue(interval.New(100, 101)))
	if got := c.BelongsTo(far); got != nil {
		t.Errorf("BelongsTo(far) = %v, want nil", got)
	}
}

func TestKindAndLicenseString(t *testing.T) {
	if Redistribution.String() != "redistribution" || Usage.String() != "usage" {
		t.Error("Kind.String wrong")
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind String = %q", got)
	}
	s := simpleSchema()
	l := simpleLicense(s, "L_D^1", 0, 10, 2000)
	str := l.String()
	for _, want := range []string{"L_D^1", "redistribution", "play", "A=2000"} {
		if !strings.Contains(str, want) {
			t.Errorf("String %q missing %q", str, want)
		}
	}
}

func TestExample1Fixture(t *testing.T) {
	ex := NewExample1()
	if ex.Corpus.Len() != 5 {
		t.Fatalf("corpus has %d licenses, want 5", ex.Corpus.Len())
	}
	for i := 0; i < 5; i++ {
		if err := ex.Corpus.License(i).Validate(); err != nil {
			t.Errorf("license %d invalid: %v", i, err)
		}
	}
	// Aggregates per Example 1.
	want := []int64{2000, 1000, 3000, 4000, 2000}
	for i, w := range want {
		if got := ex.Corpus.License(i).Aggregate; got != w {
			t.Errorf("A[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestExample1BelongsTo(t *testing.T) {
	ex := NewExample1()
	// "L_U^1 satisfies all instance based constraints for L_D^1 and L_D^2."
	got := ex.Corpus.BelongsTo(ex.Usage1.Rect)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("BelongsTo(L_U^1) = %v, want [0 1]", got)
	}
	// "L_U^2 satisfies all the instance based constraints only for L_D^2."
	got = ex.Corpus.BelongsTo(ex.Usage2.Rect)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("BelongsTo(L_U^2) = %v, want [1]", got)
	}
}

func TestExample1OverlapStructure(t *testing.T) {
	// Fig 2/3: groups (L1,L2,L4) and (L3,L5); edges L1-L2, L1-L4, L3-L5.
	ex := NewExample1()
	l := func(i int) *License { return ex.Corpus.License(i) }
	type pair struct{ a, b int }
	overlapping := map[pair]bool{
		{0, 1}: true, {0, 3}: true, {2, 4}: true,
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			want := overlapping[pair{i, j}]
			if got := l(i).Rect.Overlaps(l(j).Rect); got != want {
				t.Errorf("Overlaps(L%d,L%d) = %v, want %v", i+1, j+1, got, want)
			}
		}
	}
}

func TestExample1LogTotals(t *testing.T) {
	ex := NewExample1()
	var total int64
	for _, e := range ex.Log {
		total += e.Count
	}
	if total != 800+400+40+30+800+20 {
		t.Errorf("log total = %d", total)
	}
}

func TestTopUp(t *testing.T) {
	s := simpleSchema()
	c := NewCorpus(s)
	c.MustAdd(simpleLicense(s, "L1", 0, 10, 100))
	if err := c.TopUp(0, 50); err != nil {
		t.Fatal(err)
	}
	if got := c.License(0).Aggregate; got != 150 {
		t.Errorf("aggregate = %d, want 150", got)
	}
	if err := c.TopUp(0, 0); err == nil {
		t.Error("zero top-up accepted")
	}
	if err := c.TopUp(0, -5); err == nil {
		t.Error("negative top-up accepted")
	}
	if err := c.TopUp(5, 10); err == nil {
		t.Error("out-of-range index accepted")
	}
}
