// Package baseline implements the comparison points the paper argues
// against or builds upon:
//
//   - online single-license allocators (RandomPick, FirstFit, BestFit) that
//     pick ONE redistribution license from the belongs-to set and decrement
//     its budget — the naive strategy whose pitfall Example 1 demonstrates;
//   - the equation-based online validator (Headroom over the validation
//     tree), which accepts an issuance iff no validation equation can ever
//     be violated by it — the loss-free strategy the equations enable;
//   - offline equation evaluators that bypass the validation tree: Direct
//     (per-equation log scan) and SOS (a 2^N subset-sum dynamic program),
//     used as ablations of the tree's pruned traversal.
//
// All offline evaluators agree exactly with vtree.ValidateAll; the property
// tests in this package pin that down.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/logstore"
	"repro/internal/vtree"
)

// ErrRejected is returned by allocators when an issuance cannot be granted.
var ErrRejected = errors.New("baseline: issuance rejected")

// Allocator is an online issuance policy: offered the belongs-to set of a
// new license and its permission count, it either accepts (recording the
// consumption) or rejects. Implementations are stateful.
type Allocator interface {
	// Allocate processes one issuance request. It returns ErrRejected (or
	// a wrapping error) when the request cannot be granted; state is
	// unchanged on rejection.
	Allocate(belongsTo bitset.Mask, count int64) error
	// Name identifies the policy in reports.
	Name() string
}

// pickAllocator is the common machinery of the single-license policies:
// per-license remaining budgets plus a pluggable choice function over the
// affordable candidates.
type pickAllocator struct {
	name      string
	remaining []int64
	choose    func(candidates []int) int
}

// Allocate implements Allocator: it restricts the belongs-to set to
// licenses that can still afford the count, asks the policy to choose one,
// and decrements that license's budget.
func (p *pickAllocator) Allocate(belongsTo bitset.Mask, count int64) error {
	if count <= 0 {
		return fmt.Errorf("baseline: non-positive count %d", count)
	}
	var candidates []int
	belongsTo.ForEach(func(j int) bool {
		if j < len(p.remaining) && p.remaining[j] >= count {
			candidates = append(candidates, j)
		}
		return true
	})
	if len(candidates) == 0 {
		return fmt.Errorf("%w: no license in %v can afford %d", ErrRejected, belongsTo, count)
	}
	p.remaining[p.choose(candidates)] -= count
	return nil
}

// Name implements Allocator.
func (p *pickAllocator) Name() string { return p.name }

// Remaining exposes the per-license budgets left (for tests and reports).
func (p *pickAllocator) Remaining() []int64 {
	return append([]int64(nil), p.remaining...)
}

// PickAllocator is the interface satisfied by the single-license policies,
// adding budget introspection to Allocator.
type PickAllocator interface {
	Allocator
	Remaining() []int64
}

// NewRandomPick returns the policy Example 1 warns about: choose uniformly
// at random (seeded, reproducible) among the affordable licenses of the
// belongs-to set.
func NewRandomPick(aggregates []int64, seed int64) PickAllocator {
	r := rand.New(rand.NewSource(seed))
	return &pickAllocator{
		name:      "random-pick",
		remaining: append([]int64(nil), aggregates...),
		choose:    func(c []int) int { return c[r.Intn(len(c))] },
	}
}

// NewFirstFit returns the lowest-index policy: always consume from the
// first affordable license.
func NewFirstFit(aggregates []int64) PickAllocator {
	return &pickAllocator{
		name:      "first-fit",
		remaining: append([]int64(nil), aggregates...),
		choose:    func(c []int) int { return c[0] },
	}
}

// NewBestFit returns the most-remaining policy: consume from the affordable
// license with the largest remaining budget, a sensible greedy heuristic
// that still loses to the equation approach on adversarial sequences.
func NewBestFit(aggregates []int64) PickAllocator {
	p := &pickAllocator{
		name:      "best-fit",
		remaining: append([]int64(nil), aggregates...),
	}
	p.choose = func(c []int) int {
		best := c[0]
		for _, j := range c[1:] {
			if p.remaining[j] > p.remaining[best] {
				best = j
			}
		}
		return best
	}
	return p
}

// EquationAllocator is the loss-free online policy enabled by the
// validation equations: accept an issuance iff its count fits within the
// Headroom of its belongs-to set, i.e. iff no validation equation is
// violated now or implied to be violated later. Accepted issuances are
// recorded in the validation tree.
type EquationAllocator struct {
	tree       *vtree.Tree
	aggregates []int64
}

// NewEquationAllocator builds the policy over n licenses with their
// aggregate budgets.
func NewEquationAllocator(aggregates []int64) (*EquationAllocator, error) {
	t, err := vtree.New(len(aggregates))
	if err != nil {
		return nil, err
	}
	return &EquationAllocator{tree: t, aggregates: append([]int64(nil), aggregates...)}, nil
}

// Allocate implements Allocator.
func (e *EquationAllocator) Allocate(belongsTo bitset.Mask, count int64) error {
	room, err := e.tree.Headroom(belongsTo, e.aggregates)
	if err != nil {
		return err
	}
	if count > room {
		return fmt.Errorf("%w: count %d exceeds headroom %d for %v", ErrRejected, count, room, belongsTo)
	}
	return e.tree.Insert(belongsTo, count)
}

// Name implements Allocator.
func (e *EquationAllocator) Name() string { return "equation" }

// Tree exposes the underlying validation tree (read-only use).
func (e *EquationAllocator) Tree() *vtree.Tree { return e.tree }

// Replay feeds a sequence of (set, count) requests to an allocator and
// reports how many were accepted and the total permission counts granted.
func Replay(a Allocator, requests []logstore.Record) (accepted int, granted int64) {
	for _, r := range requests {
		if err := a.Allocate(r.Set, r.Count); err == nil {
			accepted++
			granted += r.Count
		}
	}
	return accepted, granted
}

// DirectValidate evaluates all 2^N−1 validation equations straight off the
// log, without building a validation tree — the pre-[10] strawman used as
// the tree's ablation baseline. Records must all be within [0, n).
func DirectValidate(n int, records []logstore.Record, a []int64) (vtree.Result, error) {
	if n < 0 || n > bitset.MaxMaskElems {
		return vtree.Result{}, fmt.Errorf("baseline: invalid n %d", n)
	}
	if len(a) != n {
		return vtree.Result{}, fmt.Errorf("baseline: aggregate array has %d entries, want %d", len(a), n)
	}
	full := bitset.FullMask(n)
	for _, r := range records {
		if !r.Set.SubsetOf(full) {
			return vtree.Result{}, fmt.Errorf("baseline: record set %v outside universe", r.Set)
		}
	}
	if n == 0 {
		return vtree.Result{}, nil
	}
	var res vtree.Result
	for s := bitset.Mask(1); ; s++ {
		var cv int64
		for _, r := range records {
			if r.Set.SubsetOf(s) {
				cv += r.Count
			}
		}
		var av int64
		s.ForEach(func(e int) bool { av += a[e]; return true })
		res.Equations++
		if cv > av {
			res.Violations = append(res.Violations, vtree.Violation{Set: s, CV: cv, AV: av})
		}
		if s == full {
			break
		}
	}
	return res, nil
}

// maxSOSBits caps the subset-sum DP's 2^N table at 512 MiB of int64s.
const maxSOSBits = 26

// SOSValidate evaluates all validation equations with a sum-over-subsets
// dynamic program (zeta transform): O(N·2^N) time, O(2^N) memory. It is
// asymptotically optimal when most of the 2^N sets occur in the log, and an
// interesting ablation of the tree's pruned traversal, but its memory makes
// it unusable past N ≈ 26 — one reason the paper's tree + grouping approach
// matters.
func SOSValidate(n int, records []logstore.Record, a []int64) (vtree.Result, error) {
	if n < 0 || n > maxSOSBits {
		return vtree.Result{}, fmt.Errorf("baseline: SOS supports n in [0,%d], got %d", maxSOSBits, n)
	}
	if len(a) != n {
		return vtree.Result{}, fmt.Errorf("baseline: aggregate array has %d entries, want %d", len(a), n)
	}
	size := 1 << uint(n)
	full := bitset.Mask(size - 1)
	cv := make([]int64, size)
	for _, r := range records {
		if !r.Set.SubsetOf(full) {
			return vtree.Result{}, fmt.Errorf("baseline: record set %v outside universe", r.Set)
		}
		cv[r.Set] += r.Count
	}
	// Zeta transform: after pass j, cv[s] sums counts over subsets that
	// may differ from s only in bits <= j.
	for j := 0; j < n; j++ {
		bit := 1 << uint(j)
		for s := 0; s < size; s++ {
			if s&bit != 0 {
				cv[s] += cv[s^bit]
			}
		}
	}
	av := make([]int64, size)
	for s := 1; s < size; s++ {
		low := s & (-s)
		av[s] = av[s^low] + a[bitset.Mask(low).Min()]
	}
	var res vtree.Result
	for s := 1; s < size; s++ {
		res.Equations++
		if cv[s] > av[s] {
			res.Violations = append(res.Violations, vtree.Violation{
				Set: bitset.Mask(s), CV: cv[s], AV: av[s],
			})
		}
	}
	return res, nil
}
