package baseline

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/logstore"
	"repro/internal/vtree"
)

// example1Aggregates is A = (2000, 1000, 3000, 4000, 2000).
func example1Aggregates() []int64 {
	return []int64{2000, 1000, 3000, 4000, 2000}
}

func TestExample1RandomPickPitfall(t *testing.T) {
	// Example 1: L_U^1 (800 counts, belongs {L1,L2}) then L_U^2 (400,
	// belongs {L2}). If the authority picks L2 for the first request, the
	// second must be rejected — the loss the paper motivates with.
	agg := example1Aggregates()

	// Find a seed that picks L2 first (both candidates afford 800).
	var lossy PickAllocator
	for seed := int64(0); seed < 64; seed++ {
		a := NewRandomPick(agg, seed)
		if err := a.Allocate(bitset.MaskOf(0, 1), 800); err != nil {
			t.Fatal(err)
		}
		if a.Remaining()[1] == 200 { // it consumed L2
			lossy = a
			break
		}
	}
	if lossy == nil {
		t.Fatal("no seed picked L2 — broken RNG plumbing")
	}
	err := lossy.Allocate(bitset.MaskOf(1), 400)
	if !errors.Is(err, ErrRejected) {
		t.Errorf("random-pick should reject L_U^2 after consuming L2, got %v", err)
	}

	// The equation allocator accepts both, regardless of order.
	eq, err := NewEquationAllocator(agg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eq.Allocate(bitset.MaskOf(0, 1), 800); err != nil {
		t.Errorf("equation allocator rejected L_U^1: %v", err)
	}
	if err := eq.Allocate(bitset.MaskOf(1), 400); err != nil {
		t.Errorf("equation allocator rejected L_U^2: %v", err)
	}
}

func TestFirstFitAndBestFit(t *testing.T) {
	agg := []int64{100, 500}
	ff := NewFirstFit(agg)
	if err := ff.Allocate(bitset.MaskOf(0, 1), 60); err != nil {
		t.Fatal(err)
	}
	if rem := ff.Remaining(); rem[0] != 40 || rem[1] != 500 {
		t.Errorf("first-fit remaining = %v", rem)
	}
	// First-fit skips licenses that cannot afford the count.
	if err := ff.Allocate(bitset.MaskOf(0, 1), 90); err != nil {
		t.Fatal(err)
	}
	if rem := ff.Remaining(); rem[0] != 40 || rem[1] != 410 {
		t.Errorf("first-fit skip remaining = %v", rem)
	}

	bf := NewBestFit(agg)
	if err := bf.Allocate(bitset.MaskOf(0, 1), 60); err != nil {
		t.Fatal(err)
	}
	if rem := bf.Remaining(); rem[0] != 100 || rem[1] != 440 {
		t.Errorf("best-fit remaining = %v", rem)
	}
}

func TestAllocatorRejection(t *testing.T) {
	for _, a := range []Allocator{
		NewFirstFit([]int64{10}),
		NewBestFit([]int64{10}),
		NewRandomPick([]int64{10}, 1),
	} {
		if err := a.Allocate(bitset.MaskOf(0), 11); !errors.Is(err, ErrRejected) {
			t.Errorf("%s: oversized request not rejected: %v", a.Name(), err)
		}
		if err := a.Allocate(bitset.MaskOf(0), 0); err == nil {
			t.Errorf("%s: zero count accepted", a.Name())
		}
		// Rejection must not mutate state.
		if err := a.Allocate(bitset.MaskOf(0), 10); err != nil {
			t.Errorf("%s: affordable request rejected after failed ones: %v", a.Name(), err)
		}
	}
}

func TestEquationAllocatorNeverOvercommits(t *testing.T) {
	// Whatever it accepts must keep every validation equation satisfied.
	r := rand.New(rand.NewSource(11))
	agg := []int64{300, 200, 250, 400}
	eq, err := NewEquationAllocator(agg)
	if err != nil {
		t.Fatal(err)
	}
	full := bitset.FullMask(4)
	for i := 0; i < 400; i++ {
		set := bitset.Mask(r.Int63()) & full
		if set.Empty() {
			continue
		}
		_ = eq.Allocate(set, int64(1+r.Intn(40))) // rejections are fine
	}
	res, err := eq.Tree().ValidateAll(agg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("equation allocator admitted a violation: %v", res.Violations)
	}
}

func TestEquationDominatesPickPolicies(t *testing.T) {
	// The equation policy is loss-free w.r.t. equations, so on any request
	// sequence it grants at least as many total counts as... not provable
	// per-sequence in general, but overwhelmingly in practice; we assert it
	// on random workloads as a regression guard against Headroom bugs.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(4)
		agg := make([]int64, n)
		for i := range agg {
			agg[i] = int64(100 + r.Intn(400))
		}
		var requests []logstore.Record
		for i := 0; i < 200; i++ {
			set := bitset.Mask(r.Int63()) & bitset.FullMask(n)
			if set.Empty() {
				continue
			}
			requests = append(requests, logstore.Record{Set: set, Count: int64(1 + r.Intn(30))})
		}
		eq, err := NewEquationAllocator(agg)
		if err != nil {
			t.Fatal(err)
		}
		_, grantedEq := Replay(eq, requests)
		_, grantedRnd := Replay(NewRandomPick(agg, int64(trial)), requests)
		if grantedRnd > grantedEq {
			t.Errorf("trial %d: random-pick granted %d > equation %d", trial, grantedRnd, grantedEq)
		}
	}
}

func randomRecords(r *rand.Rand, n, count int) []logstore.Record {
	full := bitset.FullMask(n)
	var out []logstore.Record
	for i := 0; i < count; i++ {
		set := bitset.Mask(r.Int63()) & full
		if set.Empty() {
			continue
		}
		out = append(out, logstore.Record{Set: set, Count: int64(1 + r.Intn(25))})
	}
	return out
}

func TestDirectValidateMatchesTreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		records := randomRecords(r, n, 150)
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(1200))
		}
		tree, err := vtree.BuildRecords(n, records)
		if err != nil {
			return false
		}
		want, err := tree.ValidateAll(a)
		if err != nil {
			return false
		}
		got, err := DirectValidate(n, records, a)
		if err != nil {
			return false
		}
		return resultsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSOSValidateMatchesTreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(11)
		records := randomRecords(r, n, 200)
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(1500))
		}
		tree, err := vtree.BuildRecords(n, records)
		if err != nil {
			return false
		}
		want, err := tree.ValidateAll(a)
		if err != nil {
			return false
		}
		got, err := SOSValidate(n, records, a)
		if err != nil {
			return false
		}
		return resultsEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func resultsEqual(a, b vtree.Result) bool {
	if a.Equations != b.Equations || len(a.Violations) != len(b.Violations) {
		return false
	}
	for i := range a.Violations {
		if a.Violations[i] != b.Violations[i] {
			return false
		}
	}
	return true
}

func TestOfflineValidatorErrors(t *testing.T) {
	recs := []logstore.Record{{Set: bitset.MaskOf(0), Count: 1}}
	if _, err := DirectValidate(-1, nil, nil); err == nil {
		t.Error("DirectValidate n=-1 accepted")
	}
	if _, err := DirectValidate(2, recs, []int64{1}); err == nil {
		t.Error("DirectValidate wrong arity accepted")
	}
	if _, err := DirectValidate(1, []logstore.Record{{Set: bitset.MaskOf(3), Count: 1}}, []int64{1}); err == nil {
		t.Error("DirectValidate out-of-universe record accepted")
	}
	if _, err := SOSValidate(27, nil, make([]int64, 27)); err == nil {
		t.Error("SOSValidate n=27 accepted")
	}
	if _, err := SOSValidate(2, recs, []int64{1}); err == nil {
		t.Error("SOSValidate wrong arity accepted")
	}
	if _, err := SOSValidate(1, []logstore.Record{{Set: bitset.MaskOf(3), Count: 1}}, []int64{1}); err == nil {
		t.Error("SOSValidate out-of-universe record accepted")
	}
	// n = 0 edge cases.
	if res, err := DirectValidate(0, nil, nil); err != nil || res.Equations != 0 {
		t.Errorf("DirectValidate(0) = %+v, %v", res, err)
	}
	if res, err := SOSValidate(0, nil, nil); err != nil || res.Equations != 0 {
		t.Errorf("SOSValidate(0) = %+v, %v", res, err)
	}
}

func TestReplayCounts(t *testing.T) {
	agg := []int64{50}
	ff := NewFirstFit(agg)
	requests := []logstore.Record{
		{Set: bitset.MaskOf(0), Count: 30},
		{Set: bitset.MaskOf(0), Count: 30}, // rejected: only 20 left
		{Set: bitset.MaskOf(0), Count: 20},
	}
	accepted, granted := Replay(ff, requests)
	if accepted != 2 || granted != 50 {
		t.Errorf("Replay = (%d, %d), want (2, 50)", accepted, granted)
	}
}

func TestNames(t *testing.T) {
	if NewFirstFit(nil).Name() != "first-fit" ||
		NewBestFit(nil).Name() != "best-fit" ||
		NewRandomPick(nil, 0).Name() != "random-pick" {
		t.Error("allocator names wrong")
	}
	eq, err := NewEquationAllocator([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if eq.Name() != "equation" {
		t.Error("equation name wrong")
	}
}
