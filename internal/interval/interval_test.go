package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestIsEmpty(t *testing.T) {
	if New(0, 5).IsEmpty() {
		t.Error("[0,5] reported empty")
	}
	if !New(5, 0).IsEmpty() {
		t.Error("[5,0] not reported empty")
	}
	if !Empty().IsEmpty() {
		t.Error("Empty() not empty")
	}
	if Point(3).IsEmpty() {
		t.Error("Point(3) reported empty")
	}
}

func TestLen(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int64
	}{
		{New(0, 0), 1},
		{New(1, 10), 10},
		{Empty(), 0},
		{New(-5, 5), 11},
	}
	for _, c := range cases {
		if got := c.iv.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestContainsPoint(t *testing.T) {
	iv := New(3, 7)
	for v, want := range map[int64]bool{2: false, 3: true, 5: true, 7: true, 8: false} {
		if got := iv.ContainsPoint(v); got != want {
			t.Errorf("ContainsPoint(%d) = %v, want %v", v, got, want)
		}
	}
	if Empty().ContainsPoint(0) {
		t.Error("empty interval contains a point")
	}
}

func TestContains(t *testing.T) {
	big, small := New(0, 100), New(10, 20)
	if !big.Contains(small) {
		t.Error("big should contain small")
	}
	if small.Contains(big) {
		t.Error("small should not contain big")
	}
	if !big.Contains(big) {
		t.Error("Contains should be reflexive")
	}
	if !big.Contains(Empty()) {
		t.Error("every interval contains the empty interval")
	}
	if Empty().Contains(small) {
		t.Error("empty interval contains a non-empty one")
	}
	if !Empty().Contains(Empty()) {
		t.Error("empty should contain empty")
	}
	// Partial overlap is not containment.
	if big.Contains(New(90, 110)) {
		t.Error("partial overlap treated as containment")
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	a, b := New(0, 10), New(5, 15)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping intervals reported disjoint")
	}
	if got := a.Intersect(b); !got.Equal(New(5, 10)) {
		t.Errorf("Intersect = %v, want [5,10]", got)
	}
	// Touching endpoints overlap in a closed-interval model.
	if !New(0, 5).Overlaps(New(5, 9)) {
		t.Error("closed intervals sharing an endpoint must overlap")
	}
	if New(0, 4).Overlaps(New(5, 9)) {
		t.Error("adjacent but disjoint intervals reported overlapping")
	}
	if a.Overlaps(Empty()) || Empty().Overlaps(a) {
		t.Error("empty interval overlaps something")
	}
	if got := New(0, 2).Intersect(New(5, 9)); !got.IsEmpty() {
		t.Errorf("Intersect disjoint = %v, want empty", got)
	}
}

func TestHull(t *testing.T) {
	if got := New(0, 2).Hull(New(10, 12)); !got.Equal(New(0, 12)) {
		t.Errorf("Hull = %v, want [0,12]", got)
	}
	if got := Empty().Hull(New(1, 2)); !got.Equal(New(1, 2)) {
		t.Errorf("Hull with empty = %v, want [1,2]", got)
	}
	if got := New(1, 2).Hull(Empty()); !got.Equal(New(1, 2)) {
		t.Errorf("Hull with empty = %v, want [1,2]", got)
	}
}

func TestEqualNormalizesEmpty(t *testing.T) {
	if !New(9, 2).Equal(Empty()) {
		t.Error("two empty intervals should be Equal")
	}
	if New(1, 2).Equal(New(1, 3)) {
		t.Error("different intervals reported Equal")
	}
}

func TestString(t *testing.T) {
	if got := New(3, 17).String(); got != "[3,17]" {
		t.Errorf("String = %q", got)
	}
	if got := Empty().String(); got != "∅" {
		t.Errorf("empty String = %q", got)
	}
}

func TestDateRoundTrip(t *testing.T) {
	coord := Date(2009, time.March, 10)
	if got := FormatDate(coord); got != "10/03/09" {
		t.Errorf("FormatDate = %q, want 10/03/09", got)
	}
	parsed, err := ParseDate("10/03/09")
	if err != nil {
		t.Fatal(err)
	}
	if parsed != coord {
		t.Errorf("ParseDate = %d, want %d", parsed, coord)
	}
}

func TestDateOrdering(t *testing.T) {
	// The paper's Example 1 period arithmetic must hold.
	a := MustDate("10/03/09")
	b := MustDate("20/03/09")
	if b-a != 10 {
		t.Errorf("20/03/09 - 10/03/09 = %d days, want 10", b-a)
	}
	// Crossing a month boundary.
	c := MustDate("25/03/09")
	d := MustDate("10/04/09")
	if d-c != 16 {
		t.Errorf("10/04/09 - 25/03/09 = %d days, want 16", d-c)
	}
}

func TestParseDateError(t *testing.T) {
	if _, err := ParseDate("2009-03-10"); err == nil {
		t.Error("expected error for ISO layout")
	}
	if _, err := ParseDate("32/01/09"); err == nil {
		t.Error("expected error for day 32")
	}
}

func TestDateRange(t *testing.T) {
	iv, err := DateRange("15/03/09", "25/03/09")
	if err != nil {
		t.Fatal(err)
	}
	if iv.Len() != 11 {
		t.Errorf("range length = %d days, want 11 (closed)", iv.Len())
	}
	if _, err := DateRange("25/03/09", "15/03/09"); err == nil {
		t.Error("reversed range must error")
	}
	if _, err := DateRange("bad", "15/03/09"); err == nil {
		t.Error("bad from date must error")
	}
	if _, err := DateRange("15/03/09", "bad"); err == nil {
		t.Error("bad to date must error")
	}
}

func TestPaperExample1Periods(t *testing.T) {
	// L_D^1 period contains L_U^1 period; L_D^2 contains it too.
	ld1 := MustDateRange("10/03/09", "20/03/09")
	ld2 := MustDateRange("15/03/09", "25/03/09")
	lu1 := MustDateRange("15/03/09", "19/03/09")
	if !ld1.Contains(lu1) || !ld2.Contains(lu1) {
		t.Error("L_U^1 period must be inside both L_D^1 and L_D^2")
	}
	// L_U^2 period [21..24/03] is inside L_D^2 only.
	lu2 := MustDateRange("21/03/09", "24/03/09")
	if ld1.Contains(lu2) {
		t.Error("L_U^2 period must not be inside L_D^1")
	}
	if !ld2.Contains(lu2) {
		t.Error("L_U^2 period must be inside L_D^2")
	}
}

func randIv(r *rand.Rand) Interval {
	lo := r.Int63n(200) - 100
	hi := lo + r.Int63n(50) - 5 // sometimes empty
	return Interval{Lo: lo, Hi: hi}
}

func TestIntervalLawsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randIv(r), randIv(r), randIv(r)
		// Intersection commutes and is contained in both operands.
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Contains(a.Intersect(b)) || !b.Contains(a.Intersect(b)) {
			return false
		}
		// Overlaps ⇔ non-empty intersection.
		if a.Overlaps(b) != !a.Intersect(b).IsEmpty() {
			return false
		}
		// Containment is transitive.
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		// Hull contains both operands.
		h := a.Hull(b)
		if !h.Contains(a) || !h.Contains(b) {
			return false
		}
		// Intersection associates.
		if !a.Intersect(b).Intersect(c).Equal(a.Intersect(b.Intersect(c))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
