// Package interval implements one-dimensional closed integer intervals, the
// geometric primitive behind range-valued instance constraints (validity
// period, resolution range, bandwidth range, ...).
//
// The paper represents every license as an M-dimensional hyper-rectangle;
// each range-valued constraint axis of that rectangle is an Interval. The
// two relations the geometric approach needs are exactly Contains (instance
// validation: an issued license's range must lie within the redistribution
// license's range) and Overlaps (overlap-graph edges: two licenses overlap
// iff every axis overlaps).
//
// Coordinates are int64. Calendar dates are mapped onto coordinates via
// the Date/ParseDate helpers (days since the Unix epoch), so a validity
// period like [10/03/09, 20/03/09] becomes an ordinary Interval.
package interval

import (
	"fmt"
	"time"
)

// Interval is a closed interval [Lo, Hi] over int64 coordinates.
// An interval with Lo > Hi is empty; Empty() is the canonical empty value.
type Interval struct {
	Lo, Hi int64
}

// New returns the closed interval [lo, hi]. If lo > hi the result is empty;
// callers that consider that a user error should check Valid themselves.
func New(lo, hi int64) Interval { return Interval{Lo: lo, Hi: hi} }

// Point returns the degenerate interval [v, v], used for single-valued
// instance constraints in usage licenses (e.g. an exact expiry date).
func Point(v int64) Interval { return Interval{Lo: v, Hi: v} }

// Empty returns a canonical empty interval.
func Empty() Interval { return Interval{Lo: 1, Hi: 0} }

// IsEmpty reports whether the interval contains no points.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Len returns the number of integer points in the interval (Hi−Lo+1),
// or 0 if empty. Note this is a count, not a Euclidean length.
func (iv Interval) Len() int64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// ContainsPoint reports whether v lies in the interval.
func (iv Interval) ContainsPoint(v int64) bool {
	return iv.Lo <= v && v <= iv.Hi
}

// Contains reports whether o is entirely inside iv. The empty interval is
// contained in every interval (vacuously), and contains only the empty one.
func (iv Interval) Contains(o Interval) bool {
	if o.IsEmpty() {
		return true
	}
	if iv.IsEmpty() {
		return false
	}
	return iv.Lo <= o.Lo && o.Hi <= iv.Hi
}

// Overlaps reports whether iv ∩ o is non-empty.
func (iv Interval) Overlaps(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	return iv.Lo <= o.Hi && o.Lo <= iv.Hi
}

// Intersect returns iv ∩ o (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	out := Interval{Lo: max64(iv.Lo, o.Lo), Hi: min64(iv.Hi, o.Hi)}
	if out.IsEmpty() {
		return Empty()
	}
	return out
}

// Hull returns the smallest interval containing both iv and o.
// The hull with an empty interval is the other interval.
func (iv Interval) Hull(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{Lo: min64(iv.Lo, o.Lo), Hi: max64(iv.Hi, o.Hi)}
}

// Equal reports whether the two intervals contain the same points.
// All empty intervals are equal regardless of representation.
func (iv Interval) Equal(o Interval) bool {
	if iv.IsEmpty() && o.IsEmpty() {
		return true
	}
	return iv.Lo == o.Lo && iv.Hi == o.Hi
}

// String renders like "[3,17]" or "∅".
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "∅"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// dateLayout matches the paper's dd/mm/yy license notation, e.g. "10/03/09".
const dateLayout = "02/01/06"

// secondsPerDay converts epoch seconds into epoch days.
const secondsPerDay = 24 * 60 * 60

// Date returns the coordinate (days since the Unix epoch, UTC) of the given
// calendar day, so that validity periods become integer intervals.
func Date(year int, month time.Month, day int) int64 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / secondsPerDay
}

// ParseDate parses the paper's dd/mm/yy notation ("10/03/09") into a
// coordinate. Two-digit years follow Go's reference-layout rule (69..99 →
// 19xx, otherwise 20xx), which matches the paper's 2009 examples.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse(dateLayout, s)
	if err != nil {
		return 0, fmt.Errorf("interval: parse date %q: %w", s, err)
	}
	return t.Unix() / secondsPerDay, nil
}

// MustDate is ParseDate for trusted literals; it panics on error.
func MustDate(s string) int64 {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// FormatDate renders a coordinate produced by Date/ParseDate back into
// dd/mm/yy notation.
func FormatDate(coord int64) string {
	t := time.Unix(coord*secondsPerDay, 0).UTC()
	return t.Format(dateLayout)
}

// DateRange builds the validity-period interval [from, to] out of two
// dd/mm/yy strings.
func DateRange(from, to string) (Interval, error) {
	lo, err := ParseDate(from)
	if err != nil {
		return Empty(), err
	}
	hi, err := ParseDate(to)
	if err != nil {
		return Empty(), err
	}
	if lo > hi {
		return Empty(), fmt.Errorf("interval: date range %s..%s is reversed", from, to)
	}
	return New(lo, hi), nil
}

// MustDateRange is DateRange for trusted literals; it panics on error.
func MustDateRange(from, to string) Interval {
	iv, err := DateRange(from, to)
	if err != nil {
		panic(err)
	}
	return iv
}
