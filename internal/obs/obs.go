// Package obs is a zero-dependency observability layer: an atomic metrics
// registry (counters, gauges, histograms with fixed latency buckets) with
// Prometheus text-format exposition, HTTP server middleware, and the typed
// AuditStats record the validator emits per run.
//
// The design goal is that instrumentation can be wired through the hot
// paths of the validator without taxing the uninstrumented configuration:
// every metric method is nil-safe (a no-op on a nil receiver) and performs
// no allocation, so packages expose plain metric-pointer hooks that stay
// nil until an Instrument call points them at a Registry. CLI tools that
// never instrument pay only an untaken nil-check branch per recording
// site — recording sites sit outside the per-equation loops, so the
// validate hot path itself is untouched either way.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
// All methods are nil-safe no-ops, so uninstrumented hooks cost nothing.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only grow).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic integer gauge.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an atomic float64 gauge (bits stored in a uint64), for
// ratios like the realized gain G.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets is the fixed latency bucket layout (seconds) every histogram
// in this codebase uses: validation phases span hundreds of nanoseconds
// (one sharded group) to tens of seconds (a 30-license undivided sweep),
// and HTTP handlers sit in the middle, so the bounds cover 1µs..10s in
// roughly half-decade steps.
var DefBuckets = []float64{
	1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	2.5e-3, 10e-3, 50e-3, 250e-3, 1, 2.5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations are atomic;
// bucket counts are stored non-cumulatively and accumulated at exposition
// time. The sum is kept in integer nanoseconds so Observe never needs a
// CAS loop. Each bucket retains the most recent exemplar stored through
// ObserveExemplar — the OpenMetrics-style metric→trace link.
type Histogram struct {
	upper     []float64 // ascending bucket upper bounds, seconds
	counts    []atomic.Int64
	inf       atomic.Int64
	count     atomic.Int64
	sumNanos  atomic.Int64
	exemplars []atomic.Pointer[exemplar] // len(upper)+1; last is +Inf
}

// exemplar is the stored form; Exemplar is the read-side view.
type exemplar struct {
	value     float64
	traceID   string
	unixNanos int64
}

// Exemplar is one retained observation with its trace identity: the
// handle that links a histogram bucket to /debug/traces.
type Exemplar struct {
	// Value is the observed value (seconds) and LE the upper bound of
	// the bucket it landed in (+Inf for the overflow bucket).
	Value float64
	LE    float64
	// TraceID is the hex trace ID active when the observation was made.
	TraceID string
	// UnixNanos is the wall clock at observation time.
	UnixNanos int64
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{
		upper:     upper,
		counts:    make([]atomic.Int64, len(upper)),
		exemplars: make([]atomic.Pointer[exemplar], len(upper)+1),
	}
}

// Observe records one observation of v seconds.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

// observe records v and returns the bucket index it landed in
// (len(upper) for the +Inf overflow bucket).
func (h *Histogram) observe(v float64) int {
	h.count.Add(1)
	h.sumNanos.Add(int64(v * 1e9))
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			return i
		}
	}
	h.inf.Add(1)
	return len(h.upper)
}

// ObserveExemplar records v and, when traceID is non-empty, retains it
// as the bucket's exemplar. With an empty traceID (an untraced request)
// it is exactly Observe: nil-safe and allocation-free, so instrumented
// hot paths pay nothing extra when tracing is off.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.observe(v)
	if traceID == "" {
		return
	}
	h.exemplars[i].Store(&exemplar{value: v, traceID: traceID, unixNanos: time.Now().UnixNano()})
}

// Exemplars returns the buckets' retained exemplars, lowest bucket
// first (nil on nil or when nothing was retained).
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		e := h.exemplars[i].Load()
		if e == nil {
			continue
		}
		le := math.Inf(1)
		if i < len(h.upper) {
			le = h.upper[i]
		}
		out = append(out, Exemplar{Value: e.value, LE: le, TraceID: e.traceID, UnixNanos: e.unixNanos})
	}
	return out
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values in seconds (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNanos.Load()) / 1e9
}

// Registry holds named metric families and renders them in Prometheus
// text format. Families expose in registration order; series within a
// family in creation order. Metric creation takes a lock; recording on
// the returned handles is lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family is one named metric family: a plain metric is a family with a
// single unlabelled series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []string
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	fg          *FloatGauge
	h           *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor returns the named family, creating it on first use, and
// panics when a name is re-registered with a different type or label set
// (a programming error, like prometheus.MustRegister).
func (r *Registry) familyFor(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...), byKey: make(map[string]*series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func (f *family) seriesFor(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q: %d label values for %d labels",
			f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.familyFor(name, help, "counter", nil).seriesFor(nil)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or fetches) an unlabelled integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.familyFor(name, help, "gauge", nil).seriesFor(nil)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// FloatGauge registers (or fetches) an unlabelled float gauge.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	s := r.familyFor(name, help, "gauge", nil).seriesFor(nil)
	if s.fg == nil {
		s.fg = &FloatGauge{}
	}
	return s.fg
}

// Histogram registers (or fetches) an unlabelled histogram with the given
// bucket upper bounds (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	s := r.familyFor(name, help, "histogram", nil).seriesFor(nil)
	if s.h == nil {
		s.h = newHistogram(buckets)
	}
	return s.h
}

// CounterVec is a counter family with labels.
type CounterVec struct {
	f *family
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.familyFor(name, help, "counter", labels)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve handles once at wiring time, not per recording.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	s := v.f.seriesFor(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// FloatGaugeVec is a float gauge family with labels.
type FloatGaugeVec struct {
	f *family
}

// FloatGaugeVec registers (or fetches) a labelled float gauge family.
func (r *Registry) FloatGaugeVec(name, help string, labels ...string) *FloatGaugeVec {
	return &FloatGaugeVec{f: r.familyFor(name, help, "gauge", labels)}
}

// With returns the gauge for the given label values, creating it on
// first use. Nil-safe: a nil vec returns a nil (no-op) gauge.
func (v *FloatGaugeVec) With(values ...string) *FloatGauge {
	if v == nil {
		return nil
	}
	s := v.f.seriesFor(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s.fg == nil {
		s.fg = &FloatGauge{}
	}
	return s.fg
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers (or fetches) a labelled histogram family with the
// given bucket upper bounds (DefBuckets when nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.familyFor(name, help, "histogram", labels), buckets: buckets}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	s := v.f.seriesFor(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s.h == nil {
		s.h = newHistogram(v.buckets)
	}
	return s.h
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range families {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range series {
		labels := formatLabels(f.labels, s.labelValues)
		switch {
		case s.c != nil:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labels, s.c.Value())
		case s.g != nil:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labels, s.g.Value())
		case s.fg != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(s.fg.Value()))
		case s.h != nil:
			s.h.write(b, f.name, f.labels, s.labelValues)
		}
	}
}

// write renders the histogram's cumulative _bucket series plus _sum and
// _count, merging the le label into any series labels. The merged
// slices are fresh copies — appending to the family's label slices in
// place could alias their backing arrays across concurrent writers.
func (h *Histogram) write(b *strings.Builder, name string, labelNames, labelValues []string) {
	leNames := make([]string, 0, len(labelNames)+1)
	leNames = append(append(leNames, labelNames...), "le")
	leValues := make([]string, len(labelValues)+1)
	copy(leValues, labelValues)
	var cum int64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		leValues[len(leValues)-1] = formatFloat(ub)
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, formatLabels(leNames, leValues), cum)
	}
	cum += h.inf.Load()
	leValues[len(leValues)-1] = "+Inf"
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, formatLabels(leNames, leValues), cum)
	plain := formatLabels(labelNames, labelValues)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, plain, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, plain, h.count.Load())
}

func formatLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// The escape replacers are package-level: building a Replacer compiles
// a lookup structure, which per-call construction would redo on every
// label of every scrape.
var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
