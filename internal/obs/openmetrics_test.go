package obs

import (
	"bufio"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (NaN|[+-]?Inf|[+-]?[0-9][^ ]*)`)

// labelPair matches one escaped label inside a label block.
var labelPair = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)

// unescapeLabel inverts the exposition escaping (\\, \", \n).
func unescapeLabel(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// TestLabelEscapingRoundTrip pins exposition hygiene: label values
// holding backslashes, quotes, and newlines must escape to a parseable
// single-line sample and unescape back to the original value.
func TestLabelEscapingRoundTrip(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("weird_total", `help with "quotes"`+"\nand a newline", "name")
	nasty := []string{
		`back\slash`,
		`quo"te`,
		"new\nline",
		`all\three" here` + "\n.",
	}
	for i, val := range nasty {
		v.With(val).Add(int64(i + 1))
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# HELP") {
			if strings.Count(line, "\n") > 0 {
				t.Fatalf("HELP line contains raw newline: %q", line)
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		pairs := labelPair.FindAllStringSubmatch(m[2], -1)
		if len(pairs) != 1 {
			t.Fatalf("label block %q: %d pairs, want 1", m[2], len(pairs))
		}
		val, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("value in %q: %v", line, err)
		}
		got[unescapeLabel(pairs[0][2])] = val
	}
	for i, val := range nasty {
		if got[val] != float64(i+1) {
			t.Errorf("round-trip lost series for %q: got %v, want %d (parsed: %v)", val, got[val], i+1, got)
		}
	}
}

// TestOpenMetricsExposition checks the OpenMetrics variant: counter
// metadata without the _total suffix, histogram exemplars attached to
// bucket lines, and the mandatory # EOF terminator.
func TestOpenMetricsExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "requests").Add(3)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 1})
	h.ObserveExemplar(0.005, "0123456789abcdef")
	h.ObserveExemplar(0.5, "fedcba9876543210")
	var out strings.Builder
	if err := reg.WriteOpenMetrics(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasSuffix(s, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", s)
	}
	for _, want := range []string{
		"# TYPE reqs counter",
		"reqs_total 3",
		`lat_seconds_bucket{le="0.01"} 1 # {trace_id="0123456789abcdef"} 0.005`,
		`lat_seconds_bucket{le="1"} 2 # {trace_id="fedcba9876543210"} 0.5`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("OpenMetrics exposition missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "# TYPE reqs_total") {
		t.Error("counter TYPE line kept the _total suffix")
	}
}

// TestHandlerContentNegotiation: default scrapes stay Prometheus text
// 0.0.4; an OpenMetrics Accept header or ?format=openmetrics switches.
func TestHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c").Inc()
	h := reg.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("default content type = %q", ct)
	}
	if strings.Contains(rec.Body.String(), "# EOF") {
		t.Error("default exposition carries the OpenMetrics terminator")
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("negotiated content type = %q", ct)
	}
	if !strings.HasSuffix(rec.Body.String(), "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=openmetrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("?format=openmetrics content type = %q", ct)
	}
}

// TestExemplars pins the exemplar contract: placement in the bucket the
// value lands in, last-write-wins per bucket, +Inf overflow, and the
// empty-trace fast path staying allocation-free.
func TestExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "", []float64{0.01, 1})
	h.ObserveExemplar(0.002, "aaa")
	h.ObserveExemplar(0.003, "bbb") // same bucket: replaces aaa
	h.ObserveExemplar(50, "ccc")    // overflow bucket
	h.ObserveExemplar(0.5, "")      // untraced: observation only

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2 buckets", ex)
	}
	if ex[0].TraceID != "bbb" || ex[0].LE != 0.01 || ex[0].Value != 0.003 {
		t.Errorf("bucket exemplar = %+v, want bbb@0.003 le=0.01", ex[0])
	}
	if ex[1].TraceID != "ccc" || !isInf(ex[1].LE) {
		t.Errorf("overflow exemplar = %+v, want ccc at le=+Inf", ex[1])
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4 (empty trace still observes)", h.Count())
	}

	if allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveExemplar(0.002, "")
	}); allocs != 0 {
		t.Errorf("untraced ObserveExemplar allocates %v per op, want 0", allocs)
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
	if nilH.Exemplars() != nil {
		t.Error("nil histogram exemplars not nil")
	}
}

func isInf(v float64) bool { return v > 1e300 }

// TestRuntimeSample sanity-checks the runtime collector: live process
// numbers and gauge materialisation.
func TestRuntimeSample(t *testing.T) {
	reg := NewRegistry()
	rt := NewRuntime(reg, func() int64 { return 7 })
	s := rt.Sample()
	if s.Goroutines < 1 {
		t.Errorf("goroutines = %d", s.Goroutines)
	}
	if s.HeapAllocBytes <= 0 || s.HeapSysBytes < s.HeapAllocBytes {
		t.Errorf("heap sample = %+v", s)
	}
	if s.WALFsyncBacklog != 7 {
		t.Errorf("wal backlog = %d, want 7", s.WALFsyncBacklog)
	}
	if last := rt.Last(); last.UnixNanos != s.UnixNanos {
		t.Errorf("Last() = %+v, want the sample just taken", last)
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"drm_runtime_goroutines", "drm_runtime_heap_alloc_bytes", "drm_wal_fsync_backlog 7"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
