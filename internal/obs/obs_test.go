package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only grow
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := reg.Gauge("g", "a gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %d, want 6", got)
	}
	fg := reg.FloatGauge("fg", "a float gauge")
	fg.Set(3.1)
	if got := fg.Value(); got != 3.1 {
		t.Errorf("float gauge = %v, want 3.1", got)
	}
	// Re-registration returns the same handle.
	if reg.Counter("c_total", "a counter") != c {
		t.Error("re-registered counter is a different handle")
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var fg *FloatGauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	fg.Set(2)
	h.Observe(0.1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || fg.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics report nonzero values")
	}
	var cv *CounterVec
	var hv *HistogramVec
	if cv.With("x") != nil || hv.With("x") != nil {
		t.Error("nil vec With returned non-nil metric")
	}
}

// TestNilHooksAllocationFree is the hook contract: recording on nil
// metrics — the uninstrumented configuration — must not allocate.
func TestNilHooksAllocationFree(t *testing.T) {
	var c *Counter
	var h *Histogram
	var g *Gauge
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(7)
		g.Inc()
		h.Observe(1e-3)
	})
	if allocs != 0 {
		t.Errorf("nil hooks allocate %v per record, want 0", allocs)
	}
}

// TestLiveHooksAllocationFree: instrumented recording is atomic-only.
func TestLiveHooksAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h_seconds", "", nil)
	g := reg.Gauge("g", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(7)
		g.Inc()
		h.Observe(1e-3)
	})
	if allocs != 0 {
		t.Errorf("live hooks allocate %v per record, want 0", allocs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got < 5.6 || got > 5.61 {
		t.Errorf("sum = %v, want ≈5.605", got)
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, out.String())
		}
	}
}

func TestVecSeries(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("req_total", "requests", "endpoint", "class")
	v.With("/a", "2xx").Add(3)
	v.With("/a", "5xx").Inc()
	v.With("/b", "2xx").Inc()
	if v.With("/a", "2xx").Value() != 3 {
		t.Error("vec series not stable across With calls")
	}
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`req_total{endpoint="/a",class="2xx"} 3`,
		`req_total{endpoint="/a",class="5xx"} 1`,
		`req_total{endpoint="/b",class="2xx"} 1`,
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, out.String())
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "")
	h := reg.Histogram("h_seconds", "", nil)
	v := reg.CounterVec("v_total", "", "l")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
				v.With(fmt.Sprint(i % 2)).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter = %d, histogram count = %d, want 8000", c.Value(), h.Count())
	}
	if v.With("0").Value()+v.With("1").Value() != 8000 {
		t.Error("vec lost increments")
	}
}

// promLine matches a Prometheus text-format sample line:
// name{label="v",...} value
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (NaN|[+-]?Inf|[+-]?[0-9][^ ]*)$`)

// CheckPrometheusText validates that every line of a text exposition is
// either a HELP/TYPE comment or a well-formed sample whose value parses,
// and that every sample's family was TYPE-declared first. It returns the
// number of sample lines. Shared by the drmserver /metrics test via the
// same logic re-implemented there; kept here to pin the writer.
func checkPrometheusText(t *testing.T, text string) int {
	t.Helper()
	typed := map[string]string{}
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("unknown metric type in %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(strings.TrimPrefix(m[3], "+"), 64); err != nil && m[3] != "+Inf" {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && typed[b] == "histogram" {
				base = b
			}
		}
		if _, ok := typed[base]; !ok {
			t.Errorf("sample %q precedes its TYPE declaration", line)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("drm_test_total", "a counter").Add(3)
	reg.Gauge("drm_test_inflight", "a gauge").Set(2)
	reg.FloatGauge("drm_test_gain", "eq 3").Set(3.1)
	reg.Histogram("drm_test_seconds", "latency", nil).Observe(0.004)
	v := reg.CounterVec("drm_test_req_total", `with "quotes" and \slashes`, "endpoint")
	v.With(`/v1/c/{content}/issue`).Inc()
	hv := reg.HistogramVec("drm_test_lat_seconds", "labelled latency", nil, "endpoint")
	hv.With("/v1/audit").Observe(0.2)

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if n := checkPrometheusText(t, out.String()); n < 10 {
		t.Errorf("only %d sample lines:\n%s", n, out.String())
	}
}

func TestNewLogger(t *testing.T) {
	var buf strings.Builder
	lg, err := NewLogger("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", 1)
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Errorf("json log output = %q", buf.String())
	}
	buf.Reset()
	lg, err = NewLogger("text", &buf)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Errorf("text log output = %q", buf.String())
	}
	if _, err := NewLogger("yaml", &buf); err == nil {
		t.Error("unknown format accepted")
	}
}
