package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMiddlewareOneObservationPerRequest pins the middleware contract:
// each request adds exactly one latency observation and one status-class
// increment for its endpoint, and the in-flight gauge returns to zero.
func TestMiddlewareOneObservationPerRequest(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	okHandler := m.Wrap("/v1/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	}))
	failHandler := m.Wrap("/v1/fail", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusConflict)
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		okHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/ok", nil))
	}
	rec := httptest.NewRecorder()
	failHandler.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/fail", nil))

	if got := m.requests.With("/v1/ok", "2xx").Value(); got != 3 {
		t.Errorf("ok 2xx count = %d, want 3", got)
	}
	if got := m.requests.With("/v1/fail", "4xx").Value(); got != 1 {
		t.Errorf("fail 4xx count = %d, want 1", got)
	}
	if got := m.latency.With("/v1/ok").Count(); got != 3 {
		t.Errorf("ok latency observations = %d, want 3", got)
	}
	if got := m.latency.With("/v1/fail").Count(); got != 1 {
		t.Errorf("fail latency observations = %d, want 1", got)
	}
	if got := m.inflight.Value(); got != 0 {
		t.Errorf("in-flight after completion = %d, want 0", got)
	}
}

// TestMiddlewareInflight observes the gauge from inside a handler.
func TestMiddlewareInflight(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	var seen int64
	h := m.Wrap("/v1/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = m.inflight.Value()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/x", nil))
	if seen != 1 {
		t.Errorf("in-flight inside handler = %d, want 1", seen)
	}
}

// TestNilHTTPMetricsWrap: a nil HTTPMetrics is a passthrough, so routes
// can be wired identically with observability off.
func TestNilHTTPMetricsWrap(t *testing.T) {
	var m *HTTPMetrics
	called := false
	h := m.Wrap("/v1/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { called = true }))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/x", nil))
	if !called {
		t.Error("wrapped handler not called through nil middleware")
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "help").Add(2)
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 2") {
		t.Errorf("body = %q", rec.Body.String())
	}
}
