package obs

import (
	"encoding/json"
	"io"
)

// AuditStats is the typed record of one offline validation run — the
// runtime counterpart of the paper's analytical quantities. The equation
// counts make eq. 3 observable: EquationsChecked is Σ_k (2^{N_k}−1),
// EquationsFull is 2^N−1 (a float because N may exceed 62), and
// GainRealized = EquationsFull / EquationsChecked is the gain the run
// actually achieved, which equals the theoretical G whenever every group
// is revalidated (and exceeds it when the dirty-group cache skips work).
//
// drmaudit/drmbench emit this document under -stats so runs can be
// compared across code revisions.
type AuditStats struct {
	// Licenses is N; LogRecords the number of issuance records replayed.
	Licenses   int `json:"licenses"`
	LogRecords int `json:"log_records"`
	// Groups is the number of disconnected overlap groups.
	Groups int `json:"groups"`

	// EquationsChecked counts equations actually evaluated this run;
	// clean groups served from the dirty-group cache contribute nothing.
	EquationsChecked int64 `json:"equations_checked"`
	// EquationsFull is 2^N−1, the undivided validator's workload.
	EquationsFull float64 `json:"equations_full"`
	// EquationsEliminated = EquationsFull − EquationsChecked: the work the
	// grouping removed.
	EquationsEliminated float64 `json:"equations_eliminated"`
	// GainTheoretical is eq. 3's G for the grouping.
	GainTheoretical float64 `json:"gain_theoretical"`
	// GainRealized is EquationsFull / EquationsChecked.
	GainRealized float64 `json:"gain_realized"`

	// ShardsUsed totals the intra-group mask shards across validated
	// groups (1 per group when serial).
	ShardsUsed int `json:"shards_used"`
	// GroupsRevalidated counts groups whose equations were re-evaluated;
	// CacheHits counts clean groups served from the per-group result
	// cache, CacheMisses the revalidated ones. Batch audits revalidate
	// everything; only incremental audits have hits.
	GroupsRevalidated int `json:"groups_revalidated"`
	CacheHits         int `json:"cache_hits"`
	CacheMisses       int `json:"cache_misses"`

	// Violations counts violated equations in the merged report.
	Violations int `json:"violations"`

	// Incomplete is true when the run was cut short by context
	// cancellation or deadline expiry; EquationsChecked then counts only
	// the masks actually scanned.
	Incomplete bool `json:"incomplete,omitempty"`

	// Phases records per-phase wall time in nanoseconds.
	Phases AuditPhases `json:"phases_ns"`
}

// AuditPhases decomposes an audit's wall time (nanoseconds) along the
// pipeline: log replay into the tree (build, the paper's C_T), overlap
// grouping, tree division (together D_T), flat-snapshot construction, and
// equation evaluation (V_T).
type AuditPhases struct {
	Build    int64 `json:"build"`
	Overlap  int64 `json:"overlap"`
	Divide   int64 `json:"divide"`
	Flatten  int64 `json:"flatten"`
	Validate int64 `json:"validate"`
}

// WriteJSON writes the stats as an indented JSON document.
func (s AuditStats) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
