package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// ParseLogLevel parses a -log-level flag value into a slog.Level:
// "debug", "info" (also ""), "warn", or "error".
func ParseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// NewLogger builds a slog.Logger writing to w in the given format:
// "text" (human-oriented key=value lines) or "json" (one JSON object per
// line, for log shippers). This is the -log-format flag's backend shared
// by the server and CLI tools. It logs at LevelInfo; use NewLeveledLogger
// to honour a -log-level flag.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	return NewLeveledLogger(format, "info", w)
}

// NewLeveledLogger is NewLogger with a minimum level ("debug", "info",
// "warn", "error"; "" means info). Debug-level records — per-request
// trace lines, span-level detail — are dropped by the handler unless the
// level says otherwise, so enabling them is a flag flip, not a code
// change.
func NewLeveledLogger(format, level string, w io.Writer) (*slog.Logger, error) {
	h, err := NewLogHandler(format, level, w)
	if err != nil {
		return nil, err
	}
	return slog.New(h), nil
}

// NewLogHandler builds just the slog.Handler of NewLeveledLogger, for
// callers that wrap it (the server composes trace.LogHandler around it
// so request-scoped records gain a trace_id).
func NewLogHandler(format, level string, w io.Writer) (slog.Handler, error) {
	lvl, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.NewTextHandler(w, opts), nil
	case "json":
		return slog.NewJSONHandler(w, opts), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
