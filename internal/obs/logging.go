package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger writing to w in the given format:
// "text" (human-oriented key=value lines) or "json" (one JSON object per
// line, for log shippers). This is the -log-format flag's backend shared
// by the server and CLI tools.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
