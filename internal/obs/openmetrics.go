package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteOpenMetrics renders every registered family in the OpenMetrics
// text format (version 1.0.0): counter families drop their _total
// suffix in metadata lines, histogram buckets carry their retained
// exemplars (`# {trace_id="..."} value timestamp`), and the exposition
// ends with the mandatory `# EOF`. The default /metrics response stays
// Prometheus text 0.0.4; clients opt in via Accept negotiation.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range families {
		f.writeOpenMetrics(&b)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeOpenMetrics(b *strings.Builder) {
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	// OpenMetrics names a counter family without the _total suffix; the
	// sample line keeps it.
	metaName := f.name
	if f.typ == "counter" {
		metaName = strings.TrimSuffix(metaName, "_total")
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", metaName, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", metaName, f.typ)
	for _, s := range series {
		labels := formatLabels(f.labels, s.labelValues)
		switch {
		case s.c != nil:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labels, s.c.Value())
		case s.g != nil:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labels, s.g.Value())
		case s.fg != nil:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(s.fg.Value()))
		case s.h != nil:
			s.h.writeOpenMetrics(b, f.name, f.labels, s.labelValues)
		}
	}
}

// writeOpenMetrics renders the histogram with per-bucket exemplar
// suffixes where one was retained.
func (h *Histogram) writeOpenMetrics(b *strings.Builder, name string, labelNames, labelValues []string) {
	leNames := make([]string, 0, len(labelNames)+1)
	leNames = append(append(leNames, labelNames...), "le")
	leValues := make([]string, len(labelValues)+1)
	copy(leValues, labelValues)
	writeBucket := func(i int, le string, cum int64) {
		leValues[len(leValues)-1] = le
		fmt.Fprintf(b, "%s_bucket%s %d", name, formatLabels(leNames, leValues), cum)
		if e := h.exemplars[i].Load(); e != nil {
			fmt.Fprintf(b, " # {trace_id=\"%s\"} %s %s",
				escapeLabel(e.traceID), formatFloat(e.value), openMetricsTS(e.unixNanos))
		}
		b.WriteByte('\n')
	}
	var cum int64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		writeBucket(i, formatFloat(ub), cum)
	}
	cum += h.inf.Load()
	writeBucket(len(h.upper), "+Inf", cum)
	plain := formatLabels(labelNames, labelValues)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, plain, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, plain, h.count.Load())
}

// openMetricsTS formats an exemplar timestamp as seconds with
// millisecond precision.
func openMetricsTS(unixNanos int64) string {
	return strconv.FormatFloat(float64(unixNanos)/1e9, 'f', 3, 64)
}

// FormatFloat renders v the way the exposition formats do, including
// "+Inf" — exported for status surfaces that print bucket bounds.
func FormatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return formatFloat(v)
}
