package obs

import (
	"os"
	"runtime"
	"sync"
	"time"
)

// RuntimeSample is one reading of the process-level signals /v1/status
// reports: Go runtime state (GC, heap, goroutines), file descriptors,
// and the WAL fsync backlog (appends not yet covered by a completed
// fsync — the durability lag an interval fsync policy accumulates).
type RuntimeSample struct {
	UnixNanos           int64   `json:"unix_ns"`
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes        uint64  `json:"heap_sys_bytes"`
	GCCycles            uint32  `json:"gc_cycles"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	LastGCPauseSeconds  float64 `json:"last_gc_pause_seconds"`
	// OpenFDs is read from /proc/self/fd; -1 where that is unavailable.
	OpenFDs         int   `json:"open_fds"`
	WALFsyncBacklog int64 `json:"wal_fsync_backlog"`
}

// Runtime samples process telemetry into gauges on demand; the server's
// telemetry ticker calls Sample periodically and /v1/status calls it
// per request for freshness. All methods are nil-safe.
type Runtime struct {
	// backlog reports the WAL fsync backlog (nil when no WAL).
	backlog func() int64

	mu   sync.Mutex
	last RuntimeSample

	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcCycles   *Gauge
	gcPause    *FloatGauge
	openFDs    *Gauge
	walBacklog *Gauge
}

// NewRuntime registers the drm_runtime_* gauges on reg and returns the
// collector. backlog may be nil.
func NewRuntime(reg *Registry, backlog func() int64) *Runtime {
	r := &Runtime{backlog: backlog}
	if reg != nil {
		r.goroutines = reg.Gauge("drm_runtime_goroutines", "Live goroutines.")
		r.heapAlloc = reg.Gauge("drm_runtime_heap_alloc_bytes", "Bytes of allocated heap objects.")
		r.heapSys = reg.Gauge("drm_runtime_heap_sys_bytes", "Bytes of heap obtained from the OS.")
		r.gcCycles = reg.Gauge("drm_runtime_gc_cycles_total", "Completed GC cycles.")
		r.gcPause = reg.FloatGauge("drm_runtime_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
		r.openFDs = reg.Gauge("drm_runtime_open_fds", "Open file descriptors (-1 when unreadable).")
		r.walBacklog = reg.Gauge("drm_wal_fsync_backlog", "WAL records appended but not yet covered by a completed fsync.")
	}
	return r
}

// Sample reads the runtime, updates the gauges, and returns the
// reading. Nil-safe (zero sample).
func (r *Runtime) Sample() RuntimeSample {
	if r == nil {
		return RuntimeSample{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		UnixNanos:           time.Now().UnixNano(),
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapSysBytes:        ms.HeapSys,
		GCCycles:            ms.NumGC,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
		OpenFDs:             countOpenFDs(),
	}
	if ms.NumGC > 0 {
		s.LastGCPauseSeconds = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	}
	if r.backlog != nil {
		s.WALFsyncBacklog = r.backlog()
	}
	r.goroutines.Set(int64(s.Goroutines))
	r.heapAlloc.Set(int64(s.HeapAllocBytes))
	r.heapSys.Set(int64(s.HeapSysBytes))
	r.gcCycles.Set(int64(s.GCCycles))
	r.gcPause.Set(s.GCPauseTotalSeconds)
	r.openFDs.Set(int64(s.OpenFDs))
	r.walBacklog.Set(s.WALFsyncBacklog)
	r.mu.Lock()
	r.last = s
	r.mu.Unlock()
	return s
}

// Last returns the most recent sample without re-reading the runtime
// (zero sample before the first Sample, or on nil).
func (r *Runtime) Last() RuntimeSample {
	if r == nil {
		return RuntimeSample{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// countOpenFDs counts entries in /proc/self/fd; -1 where the procfs
// view does not exist (non-Linux).
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir handle itself is open during the listing; do not count it.
	return len(ents) - 1
}
