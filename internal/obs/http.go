package obs

import (
	"net/http"
	"time"
)

// Handler serves the registry in Prometheus text format — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The response is already streaming; nothing useful to do.
			_ = err
		}
	})
}

// HTTPMetrics instruments HTTP handlers with the server's standard
// signals: per-endpoint request counts bucketed by status class, a
// per-endpoint latency histogram, and a server-wide in-flight gauge.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge
}

// NewHTTPMetrics registers the HTTP metric families on reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec("drm_http_requests_total",
			"HTTP requests served, by endpoint and status class.",
			"endpoint", "class"),
		latency: reg.HistogramVec("drm_http_request_seconds",
			"HTTP request latency by endpoint.", nil, "endpoint"),
		inflight: reg.Gauge("drm_http_inflight",
			"HTTP requests currently being served."),
	}
}

// statusClasses are the five Prometheus-conventional status classes;
// index is status/100 - 1.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// Wrap instruments next under the given endpoint label. Handles are
// resolved once per endpoint at wiring time, so the per-request cost is
// one gauge inc/dec, one histogram observation, and one counter inc —
// no map lookups. A nil receiver returns next unchanged.
func (m *HTTPMetrics) Wrap(endpoint string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	var classes [5]*Counter
	for i, c := range statusClasses {
		classes[i] = m.requests.With(endpoint, c)
	}
	latency := m.latency.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		defer m.inflight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		latency.ObserveSince(start)
		if i := sw.status/100 - 1; i >= 0 && i < len(classes) {
			classes[i].Inc()
		}
	})
}

// statusWriter captures the status code for class bucketing.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
