package obs

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// openMetricsContentType is what content-negotiated scrapes get;
// the default stays Prometheus text 0.0.4.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler serves the registry — mount it at GET /metrics. The default
// response is Prometheus text format 0.0.4; a client whose Accept
// header asks for application/openmetrics-text (or that passes
// ?format=openmetrics) gets the OpenMetrics rendering, which carries
// the histogram exemplars linking buckets to trace IDs.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") ||
			req.URL.Query().Get("format") == "openmetrics" {
			w.Header().Set("Content-Type", openMetricsContentType)
			if err := r.WriteOpenMetrics(w); err != nil {
				_ = err
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The response is already streaming; nothing useful to do.
			_ = err
		}
	})
}

// HTTPMetrics instruments HTTP handlers with the server's standard
// signals: per-endpoint request counts bucketed by status class, a
// per-endpoint latency histogram, and a server-wide in-flight gauge.
type HTTPMetrics struct {
	requests *CounterVec
	latency  *HistogramVec
	inflight *Gauge

	// ExemplarID extracts the active trace ID from a request context
	// (trace.IDFromContext in the server). When set, latency
	// observations on traced requests carry the trace as a bucket
	// exemplar; untraced requests ("" return) record plain. Set it at
	// wiring time, before handlers run.
	ExemplarID func(ctx context.Context) string

	mu      sync.Mutex
	wrapped map[string]*Histogram
}

// NewHTTPMetrics registers the HTTP metric families on reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec("drm_http_requests_total",
			"HTTP requests served, by endpoint and status class.",
			"endpoint", "class"),
		latency: reg.HistogramVec("drm_http_request_seconds",
			"HTTP request latency by endpoint.", nil, "endpoint"),
		inflight: reg.Gauge("drm_http_inflight",
			"HTTP requests currently being served."),
		wrapped: make(map[string]*Histogram),
	}
}

// statusClasses are the five Prometheus-conventional status classes;
// index is status/100 - 1.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// Wrap instruments next under the given endpoint label. Handles are
// resolved once per endpoint at wiring time, so the per-request cost is
// one gauge inc/dec, one histogram observation, and one counter inc —
// no map lookups. A nil receiver returns next unchanged.
func (m *HTTPMetrics) Wrap(endpoint string, next http.Handler) http.Handler {
	if m == nil {
		return next
	}
	var classes [5]*Counter
	for i, c := range statusClasses {
		classes[i] = m.requests.With(endpoint, c)
	}
	latency := m.latency.With(endpoint)
	m.mu.Lock()
	m.wrapped[endpoint] = latency
	m.mu.Unlock()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		defer m.inflight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		id := ""
		if m.ExemplarID != nil {
			id = m.ExemplarID(r.Context())
		}
		latency.ObserveExemplar(time.Since(start).Seconds(), id)
		if i := sw.status/100 - 1; i >= 0 && i < len(classes) {
			classes[i].Inc()
		}
	})
}

// Exemplars returns the retained latency exemplars of every wrapped
// endpoint, ordered by endpoint name — the metric→trace links
// /v1/status surfaces. Nil-safe.
func (m *HTTPMetrics) Exemplars() map[string][]Exemplar {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.wrapped))
	hists := make(map[string]*Histogram, len(m.wrapped))
	for e, h := range m.wrapped {
		endpoints = append(endpoints, e)
		hists[e] = h
	}
	m.mu.Unlock()
	sort.Strings(endpoints)
	out := make(map[string][]Exemplar, len(endpoints))
	for _, e := range endpoints {
		if ex := hists[e].Exemplars(); len(ex) > 0 {
			out[e] = ex
		}
	}
	return out
}

// statusWriter captures the status code for class bucketing.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
