// Verification: the audit-as-verifier inversion. With admission served
// from the cache, batch audits stop being the gatekeeper and become the
// invariant checker — after a clean audit the engine calls Verify, which
// rebuilds the slack state from the issuance log and cross-checks every
// cached count, table entry, and group minimum. Any mismatch means the
// incremental maintenance drifted from ground truth and surfaces as a
// KindHeadroomDivergence error plus drm_headroom_divergence_total.

package headroom

import (
	"context"
	"sort"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/logstore"
	"repro/internal/trace"
)

// ErrDivergence matches any cache-vs-log divergence found by Verify.
var ErrDivergence = drmerr.Sentinel(drmerr.KindHeadroomDivergence,
	"headroom: cache diverges from issuance log")

// VerifyResult summarises one verification pass.
type VerifyResult struct {
	// Skipped is true when in-flight reservations made the pass unsound
	// (records admitted but possibly not yet in the log); Pending holds
	// their count. Skipping is not an error: the next quiescent audit
	// verifies.
	Skipped bool  `json:"skipped"`
	Pending int64 `json:"pending"`
	// Groups and Entries count what was compared.
	Groups  int `json:"groups"`
	Entries int `json:"entries"`
}

// Verify rebuilds a shadow cache from the log and compares it against
// the live state: observed-set counts, dense slack tables (translated
// across coordinate orderings), and group minimums. The cache is locked
// exclusively for the duration, so a verified snapshot is consistent;
// admissions queue behind it. Divergence returns a typed error matching
// ErrDivergence.
func (c *Cache) Verify(ctx context.Context, log logstore.Store) (VerifyResult, error) {
	ctx, sp := trace.Start(ctx, "headroom.verify")
	res, err := c.verify(ctx, log)
	if sp != nil {
		sp.SetInt("entries", int64(res.Entries))
		if res.Skipped {
			sp.SetAttr("skipped", "pending")
		}
		sp.Fail(err)
		sp.End()
	}
	return res, err
}

func (c *Cache) verify(ctx context.Context, log logstore.Store) (VerifyResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p := c.pending.Load(); p > 0 {
		M.VerifySkipped.Inc()
		return VerifyResult{Skipped: true, Pending: p}, nil
	}
	shadow, err := buildMaxSpan(ctx, c.grouping, c.aggs, log, c.maxSpanBits)
	if err != nil {
		return VerifyResult{}, err
	}
	res := VerifyResult{Groups: len(c.groups)}
	for k, g := range c.groups {
		sg := shadow.groups[k]
		g.mu.Lock()
		err := c.verifyGroup(k, g, sg, &res)
		g.mu.Unlock()
		if err != nil {
			M.Divergence.Inc()
			return res, err
		}
	}
	M.Verifies.Inc()
	return res, nil
}

// verifyGroup compares one live group against its shadow. Caller holds
// c.mu and g.mu; sg is freshly built and unshared.
func (c *Cache) verifyGroup(k int, g, sg *group, res *VerifyResult) error {
	diverge := func(format string, args ...any) error {
		return drmerr.New(drmerr.KindHeadroomDivergence, "headroom.verify",
			"headroom: group %d diverges from log: "+format, append([]any{k}, args...)...)
	}
	if len(g.cnt) != len(sg.cnt) {
		return diverge("%d cached observed sets, log has %d", len(g.cnt), len(sg.cnt))
	}
	for set, n := range sg.cnt {
		res.Entries++
		if got := g.cnt[set]; got != n {
			return diverge("set %v cached count %d, log says %d", set, got, n)
		}
	}
	if len(g.xfer) != len(sg.xfer) {
		return diverge("%d cached transfer sets, log has %d", len(g.xfer), len(sg.xfer))
	}
	for set, n := range sg.xfer {
		res.Entries++
		if got := g.xfer[set]; got != n {
			return diverge("set %v cached transfer total %d, log says %d", set, got, n)
		}
	}
	if g.span != sg.span {
		return diverge("cached span %v, log implies %v", g.span, sg.span)
	}
	if g.dense != sg.dense {
		return diverge("cached mode dense=%v, log implies dense=%v", g.dense, sg.dense)
	}
	if g.dense {
		// Same span, possibly different coordinate orderings: compare by
		// translating every shadow entry through the global mask.
		if len(g.table) != len(sg.table) {
			return diverge("table size %d, want %d", len(g.table), len(sg.table))
		}
		for t := 1; t < len(sg.table); t++ {
			res.Entries++
			global := sg.expand(bitset.Mask(t))
			if got := g.table[g.spanCoord(global)]; got != sg.table[t] {
				return diverge("slack for %v cached %d, recomputed %d", global, got, sg.table[t])
			}
		}
		if got, want := g.minSlack.Load(), sg.minSlack.Load(); got != want {
			return diverge("min slack cached %d, recomputed %d", got, want)
		}
	} else {
		// Sparse minimums are exact when ≤ 0, which is all admission ever
		// reads of them (the deficit term).
		got, want := g.minSlack.Load(), sg.minSlack.Load()
		if min64(0, got) != min64(0, want) {
			return diverge("deficit cached %d, recomputed %d", min64(0, got), min64(0, want))
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// GroupSummary is the per-group view the drmserver debug endpoint and
// operators consume.
type GroupSummary struct {
	// Group is the overlap-component index; Members renders it in the
	// paper's one-based {…} notation; Size is N_k.
	Group   int    `json:"group"`
	Members string `json:"members"`
	Size    int    `json:"size"`
	// Mode is "dense" (slack table over the observed span) or "sparse"
	// (closure walk, span outgrew the table budget).
	Mode string `json:"mode"`
	// SpanBits and ObservedSets describe the pruning frontier; TableBytes
	// is the dense table's resident size.
	SpanBits     int   `json:"span_bits"`
	ObservedSets int   `json:"observed_sets"`
	TableBytes   int64 `json:"table_bytes"`
	// MinSlack is the group's tightest remaining slack (Unbounded when no
	// equation is active yet); Deficit = min(0, MinSlack) is what other
	// groups' admissions subtract.
	MinSlack  int64 `json:"min_slack"`
	Unbounded bool  `json:"unbounded,omitempty"`
	Deficit   int64 `json:"deficit"`
	// Rejections counts admissions this group refused over the cache's
	// lifetime.
	Rejections int64 `json:"rejections"`
}

// Summaries returns one summary per group, ordered by group index.
func (c *Cache) Summaries() []GroupSummary {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]GroupSummary, len(c.groups))
	for k, g := range c.groups {
		g.mu.Lock()
		mode := "dense"
		if !g.dense {
			mode = "sparse"
		}
		ms := g.minSlack.Load()
		s := GroupSummary{
			Group:        k,
			Members:      g.members.String(),
			Size:         g.members.Len(),
			Mode:         mode,
			SpanBits:     len(g.spanElems),
			ObservedSets: len(g.cnt),
			TableBytes:   int64(8 * len(g.table)),
			MinSlack:     ms,
			Unbounded:    ms == unbounded,
			Deficit:      min64(0, ms),
			Rejections:   g.rejections.Load(),
		}
		g.mu.Unlock()
		out[k] = s
	}
	return out
}

// SampleSets returns up to max observed belongs-to sets spread across
// groups, in ascending mask order — the sample audits re-derive headroom
// for when cross-checking the cache against their own trees.
func (c *Cache) SampleSets(max int) []bitset.Mask {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var all []bitset.Mask
	for _, g := range c.groups {
		g.mu.Lock()
		for set := range g.cnt {
			all = append(all, set)
		}
		g.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if max <= 0 || len(all) <= max {
		return all
	}
	// Stride-sample so the picks spread over the whole set range.
	out := make([]bitset.Mask, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, all[i*len(all)/max])
	}
	return out
}
