package headroom_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/headroom"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/vtree"
	"repro/internal/workload"
)

// oracleRoom recomputes headroom the pre-cache way: build the full
// validation tree from the log and walk every superset equation over the
// whole universe. The cache must agree with this exactly.
func oracleRoom(t *testing.T, n int, log logstore.Store, aggs []int64, set bitset.Mask) int64 {
	t.Helper()
	tree, err := vtree.Build(n, log)
	if err != nil {
		t.Fatalf("oracle tree: %v", err)
	}
	room, err := tree.Headroom(set, aggs)
	if err != nil {
		t.Fatalf("oracle headroom(%v): %v", set, err)
	}
	return room
}

// grouping2 is a hand-built two-group universe over 6 licenses.
func grouping2() overlap.Grouping {
	return overlap.Grouping{
		N: 6,
		Groups: []overlap.Group{
			{Members: bitset.MaskOf(0, 1, 2), Size: 3},
			{Members: bitset.MaskOf(3, 4, 5), Size: 3},
		},
	}
}

func memLog(t *testing.T, recs ...logstore.Record) *logstore.Mem {
	t.Helper()
	m := logstore.NewMem(len(recs))
	for _, r := range recs {
		if err := m.Append(r); err != nil {
			t.Fatalf("append %v: %v", r, err)
		}
	}
	return m
}

func TestEmptyLogHeadroomIsAggregateSum(t *testing.T) {
	aggs := []int64{10, 20, 30, 40, 50, 60}
	c, err := headroom.Build(context.Background(), grouping2(), aggs, memLog(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []bitset.Mask{bitset.MaskOf(0), bitset.MaskOf(1, 2), bitset.MaskOf(3, 4, 5)} {
		room, err := c.Headroom(set)
		if err != nil {
			t.Fatal(err)
		}
		want := oracleRoom(t, 6, memLog(t), aggs, set)
		if room != want {
			t.Errorf("Headroom(%v) = %d, oracle %d", set, room, want)
		}
	}
}

// observedSets collects the distinct belongs-to sets of a workload log.
func observedSets(recs []logstore.Record) []bitset.Mask {
	seen := map[bitset.Mask]bool{}
	var out []bitset.Mask
	for _, r := range recs {
		if !seen[r.Set] {
			seen[r.Set] = true
			out = append(out, r.Set)
		}
	}
	return out
}

// TestBuildMatchesTreeWalk checks the central equivalence on generated
// corpora: for every observed set and every singleton, the cached
// headroom equals the full-universe tree walk.
func TestBuildMatchesTreeWalk(t *testing.T) {
	for _, cfg := range []workload.Config{
		{N: 6, Groups: 2, Dims: 2, RecordsPerLicense: 30, Seed: 1},
		{N: 10, Groups: 3, Dims: 2, RecordsPerLicense: 40, Seed: 7},
		{N: 12, Groups: 4, Dims: 3, RecordsPerLicense: 25, Seed: 42},
	} {
		w := workload.MustGenerate(cfg)
		grouping := overlap.GroupsOf(w.Corpus)
		aggs := w.Corpus.Aggregates()
		log := w.Store()
		c, err := headroom.Build(context.Background(), grouping, aggs, log)
		if err != nil {
			t.Fatalf("N=%d: %v", cfg.N, err)
		}
		sets := observedSets(w.Records)
		for i := 0; i < cfg.N; i++ {
			sets = append(sets, bitset.MaskOf(i))
		}
		for _, set := range sets {
			room, err := c.Headroom(set)
			if err != nil {
				t.Fatalf("N=%d Headroom(%v): %v", cfg.N, set, err)
			}
			if want := oracleRoom(t, cfg.N, log, aggs, set); room != want {
				t.Errorf("N=%d seed=%d: Headroom(%v) = %d, oracle %d",
					cfg.N, cfg.Seed, set, room, want)
			}
		}
	}
}

// TestAdmitSequenceMatchesOracle drives a random admission sequence and
// checks every decision and every reported room against a tree rebuilt
// from scratch before each step.
func TestAdmitSequenceMatchesOracle(t *testing.T) {
	w := workload.MustGenerate(workload.Config{
		N: 10, Groups: 3, Dims: 2, RecordsPerLicense: 10, Seed: 3,
		// Budgets tight enough that the sequence drains some groups and
		// exercises rejections.
		AggregateLo: 1500, AggregateHi: 3000,
	})
	grouping := overlap.GroupsOf(w.Corpus)
	aggs := w.Corpus.Aggregates()
	log := w.Store()
	c, err := headroom.Build(context.Background(), grouping, aggs, log)
	if err != nil {
		t.Fatal(err)
	}
	sets := observedSets(w.Records)
	rng := rand.New(rand.NewSource(99))
	ctx := context.Background()
	admitted, rejected := 0, 0
	for step := 0; step < 200; step++ {
		set := sets[rng.Intn(len(sets))]
		count := int64(1 + rng.Intn(800))
		want := oracleRoom(t, 10, log, aggs, set)
		room, ok, err := c.Admit(ctx, set, count)
		if err != nil {
			t.Fatalf("step %d Admit(%v, %d): %v", step, set, count, err)
		}
		if room != want {
			t.Fatalf("step %d: Admit(%v, %d) room = %d, oracle %d", step, set, count, room, want)
		}
		if wantOK := count <= want; ok != wantOK {
			t.Fatalf("step %d: Admit(%v, %d) ok = %v, oracle room %d", step, set, count, ok, want)
		}
		if ok {
			admitted++
			if err := log.Append(logstore.Record{Set: set, Count: count}); err != nil {
				t.Fatal(err)
			}
			c.Confirm()
		} else {
			rejected++
		}
		if step%50 == 49 {
			res, err := c.Verify(ctx, log)
			if err != nil {
				t.Fatalf("step %d: Verify: %v", step, err)
			}
			if res.Skipped {
				t.Fatalf("step %d: Verify skipped with no pending admissions", step)
			}
		}
	}
	if admitted == 0 || rejected == 0 {
		t.Fatalf("sequence exercised only one outcome: admitted=%d rejected=%d", admitted, rejected)
	}
	if p := c.Pending(); p != 0 {
		t.Fatalf("pending = %d after confirmed sequence", p)
	}
}

// TestSpanGrowth admits sets that keep introducing unobserved licenses
// and checks the dense table grows without losing exactness.
func TestSpanGrowth(t *testing.T) {
	grouping := overlap.Grouping{N: 6, Groups: []overlap.Group{
		{Members: bitset.FullMask(6), Size: 6},
	}}
	aggs := []int64{100, 100, 100, 100, 100, 100}
	log := memLog(t)
	c, err := headroom.Build(context.Background(), grouping, aggs, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	steps := []bitset.Mask{
		bitset.MaskOf(0), bitset.MaskOf(1, 2), bitset.MaskOf(0, 3),
		bitset.MaskOf(4), bitset.MaskOf(2, 5),
	}
	lastSpan := 0
	for i, set := range steps {
		want := oracleRoom(t, 6, log, aggs, set)
		room, ok, err := c.Admit(ctx, set, 10)
		if err != nil || !ok {
			t.Fatalf("step %d Admit(%v): ok=%v err=%v", i, set, ok, err)
		}
		if room != want {
			t.Fatalf("step %d: room = %d, oracle %d", i, room, want)
		}
		if err := log.Append(logstore.Record{Set: set, Count: 10}); err != nil {
			t.Fatal(err)
		}
		c.Confirm()
		sum := c.Summaries()[0]
		if sum.Mode != "dense" {
			t.Fatalf("step %d: mode %q, want dense", i, sum.Mode)
		}
		if sum.SpanBits < lastSpan {
			t.Fatalf("step %d: span shrank %d → %d", i, lastSpan, sum.SpanBits)
		}
		lastSpan = sum.SpanBits
	}
	if lastSpan != 6 {
		t.Fatalf("final span = %d, want 6", lastSpan)
	}
	if _, err := c.Verify(ctx, log); err != nil {
		t.Fatalf("Verify after growth: %v", err)
	}
}

// TestSparseMode forces the closure-walk fallback with a tiny dense
// budget and checks it stays exact.
func TestSparseMode(t *testing.T) {
	grouping := overlap.Grouping{N: 5, Groups: []overlap.Group{
		{Members: bitset.FullMask(5), Size: 5},
	}}
	aggs := []int64{100, 200, 300, 400, 500}
	log := memLog(t,
		logstore.Record{Set: bitset.MaskOf(0), Count: 40},
		logstore.Record{Set: bitset.MaskOf(0, 1), Count: 30},
		logstore.Record{Set: bitset.MaskOf(2, 3), Count: 250},
		logstore.Record{Set: bitset.MaskOf(1, 4), Count: 60},
	)
	c, err := headroom.BuildMaxSpan(context.Background(), grouping, aggs, log, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mode := c.Summaries()[0].Mode; mode != "sparse" {
		t.Fatalf("mode = %q, want sparse (span 5 > budget 2)", mode)
	}
	for s := bitset.Mask(1); s < 1<<5; s++ {
		room, err := c.Headroom(s)
		if err != nil {
			t.Fatalf("Headroom(%v): %v", s, err)
		}
		if want := oracleRoom(t, 5, log, aggs, s); room != want {
			t.Errorf("sparse Headroom(%v) = %d, oracle %d", s, room, want)
		}
	}
	// Admissions still work and stay consistent with the log.
	ctx := context.Background()
	set := bitset.MaskOf(2, 3)
	want := oracleRoom(t, 5, log, aggs, set)
	room, ok, err := c.Admit(ctx, set, want)
	if err != nil || !ok || room != want {
		t.Fatalf("sparse Admit: room=%d ok=%v err=%v, want room=%d ok", room, ok, err, want)
	}
	if err := log.Append(logstore.Record{Set: set, Count: want}); err != nil {
		t.Fatal(err)
	}
	c.Confirm()
	if _, ok, _ := c.Admit(ctx, set, 1); ok {
		t.Fatal("admission above exhausted budget accepted in sparse mode")
	}
	if _, err := c.Verify(ctx, log); err != nil {
		t.Fatalf("Verify in sparse mode: %v", err)
	}
}

// TestSpanOverflowDuringAdmit grows a dense group past its budget at
// admission time and checks the sparse fallback keeps exact answers.
func TestSpanOverflowDuringAdmit(t *testing.T) {
	grouping := overlap.Grouping{N: 4, Groups: []overlap.Group{
		{Members: bitset.FullMask(4), Size: 4},
	}}
	aggs := []int64{50, 60, 70, 80}
	log := memLog(t)
	c, err := headroom.BuildMaxSpan(context.Background(), grouping, aggs, log, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, set := range []bitset.Mask{bitset.MaskOf(0), bitset.MaskOf(1), bitset.MaskOf(2, 3)} {
		want := oracleRoom(t, 4, log, aggs, set)
		room, ok, err := c.Admit(ctx, set, 5)
		if err != nil || !ok || room != want {
			t.Fatalf("step %d Admit(%v): room=%d ok=%v err=%v, oracle %d", i, set, room, ok, err, want)
		}
		if err := log.Append(logstore.Record{Set: set, Count: 5}); err != nil {
			t.Fatal(err)
		}
		c.Confirm()
	}
	if mode := c.Summaries()[0].Mode; mode != "sparse" {
		t.Fatalf("mode = %q after span overflow, want sparse", mode)
	}
	for s := bitset.Mask(1); s < 1<<4; s++ {
		room, err := c.Headroom(s)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleRoom(t, 4, log, aggs, s); room != want {
			t.Errorf("post-overflow Headroom(%v) = %d, oracle %d", s, room, want)
		}
	}
	if _, err := c.Verify(ctx, log); err != nil {
		t.Fatalf("Verify after overflow: %v", err)
	}
}

func TestTopUp(t *testing.T) {
	aggs := []int64{100, 100, 100, 100, 100, 100}
	log := memLog(t,
		logstore.Record{Set: bitset.MaskOf(0, 1), Count: 90},
		logstore.Record{Set: bitset.MaskOf(4), Count: 95},
	)
	c, err := headroom.Build(context.Background(), grouping2(), aggs, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.TopUp(1, 50); err != nil {
		t.Fatal(err)
	}
	aggs[1] += 50
	if err := c.TopUp(5, 25); err != nil { // outside any observed span
		t.Fatal(err)
	}
	aggs[5] += 25
	for s := bitset.Mask(1); s < 1<<6; s++ {
		if _, err := c.Headroom(s); err != nil {
			// Cross-group sets are invalid by construction; skip them.
			continue
		}
		room, _ := c.Headroom(s)
		if want := oracleRoom(t, 6, log, aggs, s); room != want {
			t.Errorf("post-topup Headroom(%v) = %d, oracle %d", s, room, want)
		}
	}
	if err := c.TopUp(9, 5); err == nil {
		t.Fatal("TopUp outside corpus succeeded")
	}
	if err := c.TopUp(0, 0); err == nil {
		t.Fatal("non-positive TopUp succeeded")
	}
}

// TestRelease rolls back an admitted-but-unlogged reservation and checks
// the cache returns to the exact pre-admission state, including a span
// that must shrink back.
func TestRelease(t *testing.T) {
	aggs := []int64{100, 100, 100, 100, 100, 100}
	log := memLog(t, logstore.Record{Set: bitset.MaskOf(0), Count: 10})
	c, err := headroom.Build(context.Background(), grouping2(), aggs, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The admitted set introduces licenses 1 and 2 into the span; the
	// failed append must roll that back too.
	set := bitset.MaskOf(1, 2)
	if _, ok, err := c.Admit(ctx, set, 30); err != nil || !ok {
		t.Fatalf("Admit: ok=%v err=%v", ok, err)
	}
	if p := c.Pending(); p != 1 {
		t.Fatalf("pending = %d after Admit, want 1", p)
	}
	if err := c.Release(set, 30); err != nil {
		t.Fatal(err)
	}
	if p := c.Pending(); p != 0 {
		t.Fatalf("pending = %d after Release, want 0", p)
	}
	if _, err := c.Verify(ctx, log); err != nil {
		t.Fatalf("Verify after Release: %v", err)
	}
	room, err := c.Headroom(bitset.MaskOf(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := oracleRoom(t, 6, log, aggs, bitset.MaskOf(1)); room != want {
		t.Fatalf("post-release Headroom = %d, oracle %d", room, want)
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	aggs := []int64{100, 100, 100, 100, 100, 100}
	log := memLog(t, logstore.Record{Set: bitset.MaskOf(0, 1), Count: 10})
	c, err := headroom.Build(context.Background(), grouping2(), aggs, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if res, err := c.Verify(ctx, log); err != nil || res.Skipped || res.Entries == 0 {
		t.Fatalf("clean Verify: res=%+v err=%v", res, err)
	}
	// A record appended behind the cache's back is exactly the corruption
	// Verify exists to catch.
	if err := log.Append(logstore.Record{Set: bitset.MaskOf(0), Count: 5}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Verify(ctx, log)
	if err == nil {
		t.Fatal("Verify missed a log record the cache never saw")
	}
	if !errors.Is(err, headroom.ErrDivergence) || !errors.Is(err, drmerr.ErrHeadroomDiverge) {
		t.Fatalf("divergence error %v does not match the sentinels", err)
	}
	if drmerr.KindOf(err) != drmerr.KindHeadroomDivergence {
		t.Fatalf("divergence kind = %v", drmerr.KindOf(err))
	}
}

func TestVerifySkipsWithPendingAdmissions(t *testing.T) {
	aggs := []int64{100, 100, 100, 100, 100, 100}
	log := memLog(t)
	c, err := headroom.Build(context.Background(), grouping2(), aggs, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, ok, err := c.Admit(ctx, bitset.MaskOf(3), 5); err != nil || !ok {
		t.Fatalf("Admit: ok=%v err=%v", ok, err)
	}
	res, err := c.Verify(ctx, log)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped || res.Pending != 1 {
		t.Fatalf("Verify with in-flight admission: res=%+v, want skipped with pending=1", res)
	}
}

func TestCrossGroupRecordFailsBuild(t *testing.T) {
	aggs := []int64{100, 100, 100, 100, 100, 100}
	log := memLog(t, logstore.Record{Set: bitset.MaskOf(1, 3), Count: 5})
	_, err := headroom.Build(context.Background(), grouping2(), aggs, log)
	if err == nil {
		t.Fatal("cross-group record accepted")
	}
	if drmerr.KindOf(err) != drmerr.KindCrossGroup {
		t.Fatalf("kind = %v, want cross_group", drmerr.KindOf(err))
	}
}

func TestAdmitInputValidation(t *testing.T) {
	aggs := []int64{100, 100, 100, 100, 100, 100}
	c, err := headroom.Build(context.Background(), grouping2(), aggs, memLog(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		set   bitset.Mask
		count int64
		kind  drmerr.Kind
	}{
		{0, 5, drmerr.KindInvalidInput},
		{bitset.MaskOf(0), 0, drmerr.KindInvalidInput},
		{bitset.MaskOf(0), -3, drmerr.KindInvalidInput},
		{bitset.MaskOf(7), 5, drmerr.KindCorpusMismatch},
		{bitset.MaskOf(1, 4), 5, drmerr.KindCrossGroup},
	}
	for _, tc := range cases {
		_, ok, err := c.Admit(ctx, tc.set, tc.count)
		if ok || err == nil {
			t.Fatalf("Admit(%v, %d) = ok=%v err=%v, want typed error", tc.set, tc.count, ok, err)
		}
		if drmerr.KindOf(err) != tc.kind {
			t.Errorf("Admit(%v, %d) kind = %v, want %v", tc.set, tc.count, drmerr.KindOf(err), tc.kind)
		}
	}
	if p := c.Pending(); p != 0 {
		t.Fatalf("rejected inputs left pending = %d", p)
	}
}

// TestRebuildAfterRegrouping re-routes retained counts under a coarser
// grouping (two groups merged into one) without replaying any log.
func TestRebuildAfterRegrouping(t *testing.T) {
	aggs := []int64{100, 100, 100, 100, 100, 100}
	log := memLog(t,
		logstore.Record{Set: bitset.MaskOf(0, 1), Count: 40},
		logstore.Record{Set: bitset.MaskOf(3, 4), Count: 70},
	)
	c, err := headroom.Build(context.Background(), grouping2(), aggs, log)
	if err != nil {
		t.Fatal(err)
	}
	merged := overlap.Grouping{N: 6, Groups: []overlap.Group{
		{Members: bitset.FullMask(6), Size: 6},
	}}
	if err := c.Rebuild(context.Background(), merged, aggs); err != nil {
		t.Fatal(err)
	}
	// Under one group, formerly cross-group sets become valid.
	for _, set := range []bitset.Mask{bitset.MaskOf(1, 4), bitset.MaskOf(0), bitset.MaskOf(3)} {
		room, err := c.Headroom(set)
		if err != nil {
			t.Fatalf("Headroom(%v) after rebuild: %v", set, err)
		}
		if want := oracleRoom(t, 6, log, aggs, set); room != want {
			t.Errorf("rebuilt Headroom(%v) = %d, oracle %d", set, room, want)
		}
	}
	if _, err := c.Verify(context.Background(), log); err != nil {
		t.Fatalf("Verify after rebuild: %v", err)
	}
}
