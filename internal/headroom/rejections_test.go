package headroom_test

import (
	"context"
	"testing"

	"repro/internal/bitset"
	"repro/internal/headroom"
)

// TestRejectionCounters pins the per-group rejection accounting behind
// the heavy-hitter ranking and /v1/headroom summaries: every refused
// Admit increments its group's counter, accepted ones don't, and the
// other group stays at zero.
func TestRejectionCounters(t *testing.T) {
	ctx := context.Background()
	aggs := []int64{10, 20, 30, 40, 50, 60}
	c, err := headroom.Build(ctx, grouping2(), aggs, memLog(t))
	if err != nil {
		t.Fatal(err)
	}
	set := bitset.MaskOf(0)
	// Two accepts, then exhaust, then two refused admissions.
	for i := 0; i < 2; i++ {
		if _, ok, err := c.Admit(ctx, set, 4); err != nil || !ok {
			t.Fatalf("admit %d: ok=%v err=%v", i, ok, err)
		}
		c.Confirm()
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := c.Admit(ctx, set, 100); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatalf("over-budget admit %d accepted", i)
		}
	}
	sums := c.Summaries()
	if len(sums) != 2 {
		t.Fatalf("groups = %d, want 2", len(sums))
	}
	if got := sums[0].Rejections; got != 2 {
		t.Errorf("group 0 rejections = %d, want 2", got)
	}
	if got := sums[1].Rejections; got != 0 {
		t.Errorf("group 1 rejections = %d, want 0", got)
	}
}
