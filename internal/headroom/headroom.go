// Package headroom maintains the per-group admission cache that turns
// online issuance from a full validation-tree walk into a bounded slack
// lookup.
//
// Background. An issuance with belongs-to set B is aggregate-valid iff
// its count fits under min over S ⊇ B of slack(S) = A[S] − C⟨S⟩
// (vtree.Headroom). Evaluated naively that is 2^(N−|B|) equations, each a
// tree walk — fine for batch audits, fatal on a serving hot path. Two
// observations make the cache cheap:
//
//  1. Group decomposition (Corollary 1.1). Instance-valid belongs-to
//     sets never span overlap groups, so C⟨S⟩ splits additively across
//     groups and the global minimum decomposes into
//
//	   Headroom(B) = localMin_k0(B) + Σ_{k≠k0} min(0, minSlack_k)
//
//     where k0 is B's group, localMin_k0(B) ranges over supersets of B
//     inside the group, and minSlack_k is the smallest slack of any
//     non-empty equation in group k. The deficit term is zero unless a
//     recovered log already violates another group, preserving exact
//     equivalence with the full-universe walk even then.
//
//  2. Observed-set pruning. A license that appears in no logged
//     belongs-to set can only raise A[S] when added to S, never C⟨S⟩.
//     The minimum is therefore attained inside B ∪ span, where span is
//     the union of the group's observed sets — the "walk the observed
//     set lattice" frontier. Each group keeps a dense slack table over
//     span coordinates (slack of every S ⊆ span), so an admission check
//     reads 2^(|span|−|B∩span|) array entries and an accepted append
//     decrements the same entries: no tree, no replay.
//
// Groups whose span outgrows MaxSpanBits fall back to an exact sparse
// mode that enumerates the union-closure of observed sets reachable from
// B — still exponentially cheaper than the full-universe walk, and
// metered separately (drm_headroom_slow_checks_total) so operators can
// see when a corpus has outgrown the dense table.
//
// Concurrency. Admission is Admit (check + reserve under the group
// lock), then the caller appends to its log and calls Confirm, or
// Release to roll back a failed append. The pending counter lets Verify
// (see verify.go) distinguish a quiescent cache from one with reserved
// but not-yet-logged records.
package headroom

import (
	"context"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/trace"
)

// DefaultMaxSpanBits bounds the dense per-group slack table: a group
// whose observed-set span exceeds this many licenses switches to the
// sparse closure walk. 20 bits caps a table at 2^20 entries (8 MiB).
const DefaultMaxSpanBits = 20

// unbounded is the minSlack of a group with no active equations.
const unbounded = int64(math.MaxInt64)

// Cache is the admission cache for one corpus. All methods are safe for
// concurrent use.
type Cache struct {
	// mu guards topology: grouping, aggs, and the groups slice. Admission
	// takes it shared; TopUp, Rebuild, and Verify take it exclusively.
	mu          sync.RWMutex
	maxSpanBits int
	n           int
	grouping    overlap.Grouping
	aggs        []int64
	groupOf     []int
	groups      []*group
	// pending counts admitted-but-unconfirmed reservations (records the
	// cache has applied that the issuance log may not hold yet).
	pending atomic.Int64
}

// group is one overlap component's slack state. minSlack is atomic so
// admissions in other groups read this group's deficit without taking
// its lock; everything else is guarded by mu.
type group struct {
	mu      sync.Mutex
	members bitset.Mask
	// cnt sums net counts (issues minus revokes and expiries) per
	// observed belongs-to set (global masks) — the compacted ledger
	// restricted to this group. It is the ground truth the dense table
	// is derived from, and what Rebuild reuses so corpus changes never
	// replay the log. Entries are always positive: a set whose net count
	// returns to zero is pruned, so the span matches what a fresh build
	// from the log derives.
	cnt map[bitset.Mask]int64
	// xfer sums cumulative transferred counts per set — lifecycle
	// bookkeeping the engine's transfer-cap policy reads. Transfers do
	// not move slack.
	xfer map[bitset.Mask]int64
	span bitset.Mask
	// spanElems maps span-coordinate bit → global license index, in
	// span-arrival order (so growing the span never remaps old bits);
	// coord is the inverse, -1 outside the span.
	spanElems []int
	coord     [bitset.MaxMaskElems]int8
	dense     bool
	// table[T] = A_span[T] − C⟨T⟩ for every span-coordinate mask T
	// (dense mode only); table[0] == 0.
	table []int64
	// minSlack is the smallest slack of any non-empty equation in the
	// group (exact in dense mode; in sparse mode exact whenever ≤ 0,
	// which is all the deficit term needs). unbounded when no equation
	// is active.
	minSlack atomic.Int64
	// rejections counts admissions this group turned away (count >
	// room) over the cache's lifetime — the per-group signal behind the
	// heavy-hitter rejection ranking and the /v1/headroom summaries.
	rejections atomic.Int64
}

// Build replays the issuance log into a fresh cache for the given
// grouping and aggregate array — the warm-up path, used both at first
// online issuance and when recovery reopens a corpus over a WAL
// (ForEach replays snapshot + tail). A record whose set spans groups
// cannot arise from instance-valid issuance and fails the build with a
// KindCrossGroup error.
func Build(ctx context.Context, grouping overlap.Grouping, aggs []int64, log logstore.Store) (*Cache, error) {
	return BuildMaxSpan(ctx, grouping, aggs, log, DefaultMaxSpanBits)
}

// BuildMaxSpan is Build with an explicit dense-table bound, exposed so
// tests (and memory-constrained callers) can force the sparse path.
func BuildMaxSpan(ctx context.Context, grouping overlap.Grouping, aggs []int64, log logstore.Store, maxSpanBits int) (*Cache, error) {
	ctx, sp := trace.Start(ctx, "headroom.build")
	c, err := buildMaxSpan(ctx, grouping, aggs, log, maxSpanBits)
	if sp != nil {
		sp.SetInt("groups", int64(grouping.NumGroups()))
		sp.Fail(err)
		sp.End()
	}
	return c, err
}

func buildMaxSpan(ctx context.Context, grouping overlap.Grouping, aggs []int64, log logstore.Store, maxSpanBits int) (*Cache, error) {
	c, err := newCache(grouping, aggs, maxSpanBits)
	if err != nil {
		return nil, err
	}
	records := 0
	err = logstore.ForEachContext(ctx, log, func(r logstore.Record) error {
		g, err := c.route(r.Set)
		if err != nil {
			return err
		}
		if eff := r.Effective(); eff != 0 {
			g.cnt[r.Set] += eff
		}
		if r.Kind == logstore.KindTransfer {
			g.xfer[r.Set] += r.Count
		}
		records++
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, g := range c.groups {
		// Sets whose net count returned to zero contribute to no
		// equation; prune them so the span (and hence the dense table
		// shape) is determined by the live counts alone.
		for set, n := range g.cnt {
			if n == 0 {
				delete(g.cnt, set)
			}
		}
		c.finalizeGroup(g)
	}
	M.Rebuilds.Inc()
	c.setShapeGauges()
	_ = records
	return c, nil
}

// newCache allocates the skeleton: groups, routing table, aggregate copy.
func newCache(grouping overlap.Grouping, aggs []int64, maxSpanBits int) (*Cache, error) {
	if err := grouping.Validate(); err != nil {
		return nil, drmerr.Wrap(drmerr.KindCorpusMismatch, "headroom.build", err)
	}
	if len(aggs) != grouping.N {
		return nil, drmerr.New(drmerr.KindCorpusMismatch, "headroom.build",
			"headroom: %d aggregates for %d licenses", len(aggs), grouping.N)
	}
	if maxSpanBits < 1 {
		maxSpanBits = 1
	}
	if maxSpanBits > bitset.MaxMaskElems {
		maxSpanBits = bitset.MaxMaskElems
	}
	c := &Cache{
		maxSpanBits: maxSpanBits,
		n:           grouping.N,
		grouping:    grouping,
		aggs:        append([]int64(nil), aggs...),
		groupOf:     make([]int, grouping.N),
		groups:      make([]*group, len(grouping.Groups)),
	}
	for k, gr := range grouping.Groups {
		g := &group{members: gr.Members, cnt: make(map[bitset.Mask]int64), xfer: make(map[bitset.Mask]int64)}
		g.minSlack.Store(unbounded)
		for i := range g.coord {
			g.coord[i] = -1
		}
		c.groups[k] = g
		gr.Members.ForEach(func(e int) bool {
			c.groupOf[e] = k
			return true
		})
	}
	return c, nil
}

// Rebuild re-derives every group's state for a changed corpus (new
// licenses, merged groups, changed aggregates) from the counts the cache
// already holds — no log replay. Observed sets are re-routed under the
// new grouping, so group merges and splits-by-growth are handled
// uniformly.
func (c *Cache) Rebuild(ctx context.Context, grouping overlap.Grouping, aggs []int64) error {
	_, sp := trace.Start(ctx, "headroom.rebuild")
	err := c.rebuild(grouping, aggs)
	if sp != nil {
		sp.SetInt("groups", int64(grouping.NumGroups()))
		sp.Fail(err)
		sp.End()
	}
	return err
}

func (c *Cache) rebuild(grouping overlap.Grouping, aggs []int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fresh, err := newCache(grouping, aggs, c.maxSpanBits)
	if err != nil {
		return err
	}
	for _, old := range c.groups {
		old.mu.Lock()
		for set, n := range old.cnt {
			if n == 0 {
				continue
			}
			g, err := fresh.route(set)
			if err != nil {
				old.mu.Unlock()
				return err
			}
			g.cnt[set] += n
		}
		for set, n := range old.xfer {
			g, err := fresh.route(set)
			if err != nil {
				old.mu.Unlock()
				return err
			}
			g.xfer[set] += n
		}
		old.mu.Unlock()
	}
	for _, g := range fresh.groups {
		fresh.finalizeGroup(g)
	}
	c.n = fresh.n
	c.grouping = fresh.grouping
	c.aggs = fresh.aggs
	c.groupOf = fresh.groupOf
	c.groups = fresh.groups
	M.Rebuilds.Inc()
	c.setShapeGauges()
	return nil
}

// route returns the group owning set, or a typed error if the set is
// outside the universe or spans groups. Callers hold at least c.mu.RLock.
func (c *Cache) route(set bitset.Mask) (*group, error) {
	if set.Empty() {
		return nil, drmerr.New(drmerr.KindInvalidInput, "headroom.route", "headroom: empty belongs-to set")
	}
	if !set.SubsetOf(bitset.FullMask(c.n)) {
		return nil, drmerr.New(drmerr.KindCorpusMismatch, "headroom.route",
			"headroom: set %v outside universe of %d licenses", set, c.n)
	}
	g := c.groups[c.groupOf[set.Min()]]
	if !set.SubsetOf(g.members) {
		return nil, drmerr.New(drmerr.KindCrossGroup, "headroom.route",
			"headroom: set %v spans overlap groups", set)
	}
	return g, nil
}

// aggSum is A[m]: the summed budgets of the licenses in m.
func (c *Cache) aggSum(m bitset.Mask) int64 {
	var total int64
	m.ForEach(func(e int) bool {
		total += c.aggs[e]
		return true
	})
	return total
}

// spanCoord compresses m ∩ span into span-coordinate bits.
func (g *group) spanCoord(m bitset.Mask) bitset.Mask {
	var out bitset.Mask
	m.Intersect(g.span).ForEach(func(e int) bool {
		out |= 1 << uint(g.coord[e])
		return true
	})
	return out
}

// expand is the inverse of spanCoord: span-coordinate mask → global mask.
func (g *group) expand(t bitset.Mask) bitset.Mask {
	var out bitset.Mask
	t.ForEach(func(b int) bool {
		out = out.With(g.spanElems[b])
		return true
	})
	return out
}

// finalizeGroup derives span, mode, table, and minSlack from g.cnt.
func (c *Cache) finalizeGroup(g *group) {
	for i := range g.coord {
		g.coord[i] = -1
	}
	g.span = 0
	for set := range g.cnt {
		g.span = g.span.Union(set)
	}
	g.spanElems = g.span.Elems()
	for p, e := range g.spanElems {
		g.coord[e] = int8(p)
	}
	g.dense = len(g.spanElems) <= c.maxSpanBits
	if g.dense {
		c.rebuildTable(g)
	} else {
		g.table = nil
		c.recomputeSparseMinSlack(g)
	}
}

// rebuildTable recomputes the dense slack table with one subset-sum
// (zeta) transform: O(2^|span| · |span|) regardless of how many records
// produced the counts.
func (c *Cache) rebuildTable(g *group) {
	size := 1 << uint(len(g.spanElems))
	// sub[T] accumulates C⟨T⟩: seed with the exact counts, then one zeta
	// pass turns point counts into subset-closed sums.
	sub := make([]int64, size)
	for set, n := range g.cnt {
		sub[g.spanCoord(set)] += n
	}
	for b := 0; b < len(g.spanElems); b++ {
		bit := 1 << uint(b)
		for t := 0; t < size; t++ {
			if t&bit != 0 {
				sub[t] += sub[t^bit]
			}
		}
	}
	// table[T] = A_span[T] − C⟨T⟩; A_span via the lowest-bit recurrence.
	table := make([]int64, size)
	min := unbounded
	for t := 1; t < size; t++ {
		low := t & -t
		table[t] = table[t^low] + c.aggs[g.spanElems[bits.TrailingZeros64(uint64(low))]]
	}
	for t := 1; t < size; t++ {
		table[t] -= sub[t]
		if table[t] < min {
			min = table[t]
		}
	}
	g.table = table
	g.minSlack.Store(min)
}

// slackSlow computes slack(S) = A[S] − C⟨S⟩ by scanning the observed
// counts — the sparse-mode equation evaluator.
func (c *Cache) slackSlow(g *group, s bitset.Mask) int64 {
	total := c.aggSum(s)
	for set, n := range g.cnt {
		if set.SubsetOf(s) {
			total -= n
		}
	}
	return total
}

// closureMin returns min slack(S) over the union-closure of observed
// sets reachable from start — exactly min over S ⊇ start of slack(S)
// when start is non-empty, since licenses outside every observed set
// only raise A[S]. With start == 0 it ranges over the non-empty unions
// of observed sets, which is where every negative slack lives. Each
// visited node counts one equation toward the metrics.
func (c *Cache) closureMin(g *group, start bitset.Mask) int64 {
	best := unbounded
	if !start.Empty() {
		best = c.slackSlow(g, start)
	}
	visited := map[bitset.Mask]bool{start: true}
	queue := []bitset.Mask{start}
	eqs := int64(1)
	for len(queue) > 0 {
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for set := range g.cnt {
			u := s.Union(set)
			if visited[u] {
				continue
			}
			visited[u] = true
			queue = append(queue, u)
			eqs++
			if slack := c.slackSlow(g, u); slack < best {
				best = slack
			}
		}
	}
	M.Equations.Add(eqs)
	return best
}

// recomputeSparseMinSlack refreshes minSlack for a sparse-mode group.
// The result is exact whenever it is ≤ 0 (see the minSlack field doc).
func (c *Cache) recomputeSparseMinSlack(g *group) {
	g.minSlack.Store(c.closureMin(g, 0))
}

// deficitExcept sums min(0, minSlack_k) over every group but skip — the
// cross-group correction that keeps cached headroom exactly equal to the
// full-universe walk when a recovered log already violates other groups.
func (c *Cache) deficitExcept(skip *group) int64 {
	var total int64
	for _, g := range c.groups {
		if g == skip {
			continue
		}
		if ms := g.minSlack.Load(); ms < 0 {
			total += ms
		}
	}
	return total
}

// localMinLocked returns min over S ⊇ set within the group of slack(S).
// Caller holds g.mu.
func (c *Cache) localMinLocked(g *group, set bitset.Mask) int64 {
	if !g.dense {
		M.SlowChecks.Inc()
		return c.closureMin(g, set)
	}
	// Licenses in set but outside the span contribute a fixed A offset;
	// the rest is a superset scan of the dense table.
	offset := c.aggSum(set.Diff(g.span))
	bs := g.spanCoord(set)
	best := g.table[bs]
	rem := bitset.Mask(len(g.table)-1) ^ bs
	rem.Subsets(func(extra bitset.Mask) bool {
		if v := g.table[bs|extra]; v < best {
			best = v
		}
		return true
	})
	M.Equations.Add(int64(1) << uint(rem.Len()))
	return offset + best
}

// Headroom returns the largest count issuable against set without
// violating any validation equation — the cached equivalent of
// vtree.Headroom over the full corpus. It does not reserve anything.
func (c *Cache) Headroom(set bitset.Mask) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, err := c.route(set)
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	local := c.localMinLocked(g, set)
	g.mu.Unlock()
	return saturatingAdd(local, c.deficitExcept(g)), nil
}

// saturatingAdd guards the unbounded sentinel against deficit overflow.
func saturatingAdd(a, b int64) int64 {
	if a == unbounded || b == unbounded {
		return unbounded
	}
	s := a + b
	if b < 0 && s > a { // underflow wrapped
		return math.MinInt64
	}
	return s
}

// Admit atomically checks and reserves one issuance: if count fits under
// the cached headroom for set, the group's slack entries are decremented
// in place and ok is true; otherwise nothing changes and the rejecting
// headroom is returned. After a successful Admit the caller must append
// the record to its log and call Confirm, or Release to undo a failed
// append. The check and the decrement run under one group lock, so
// concurrent admissions can never jointly overshoot a budget.
func (c *Cache) Admit(ctx context.Context, set bitset.Mask, count int64) (room int64, ok bool, err error) {
	start := time.Now()
	defer M.CheckSeconds.ObserveSince(start)
	M.Checks.Inc()
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, err := c.route(set)
	if err != nil {
		return 0, false, err
	}
	if count <= 0 {
		return 0, false, drmerr.New(drmerr.KindInvalidInput, "headroom.admit",
			"headroom: non-positive count %d", count)
	}
	g.mu.Lock()
	_, csp := trace.Start(ctx, "headroom.check")
	room = saturatingAdd(c.localMinLocked(g, set), c.deficitExcept(g))
	if csp != nil {
		csp.SetInt("headroom", room)
		csp.End()
	}
	if count > room {
		g.rejections.Add(1)
		g.mu.Unlock()
		M.Rejected.Inc()
		return room, false, nil
	}
	_, asp := trace.Start(ctx, "headroom.apply")
	c.applyLocked(g, set, count)
	if asp != nil {
		asp.SetInt("count", count)
		asp.End()
	}
	g.mu.Unlock()
	c.pending.Add(1)
	M.Admitted.Inc()
	return room, true, nil
}

// Confirm marks the most recent Admit as durably logged.
func (c *Cache) Confirm() { c.pending.Add(-1) }

// Pending returns the number of admitted-but-unconfirmed reservations.
func (c *Cache) Pending() int64 { return c.pending.Load() }

// applyLocked decrements slack for every equation S ⊇ set. Caller holds
// g.mu; set has already been validated by route.
func (c *Cache) applyLocked(g *group, set bitset.Mask, count int64) {
	g.cnt[set] += count
	if g.dense {
		c.growSpanLocked(g, set)
	}
	if !g.dense {
		g.span = g.span.Union(set)
		// Exact maintenance: the decremented equations are exactly the
		// supersets of set, whose new minimum the closure walk computes.
		if m := c.closureMin(g, set); m < g.minSlack.Load() {
			g.minSlack.Store(m)
		}
		return
	}
	bs := g.spanCoord(set)
	rem := bitset.Mask(len(g.table)-1) ^ bs
	written := g.table[bs] - count
	g.table[bs] = written
	min := written
	rem.Subsets(func(extra bitset.Mask) bool {
		t := bs | extra
		g.table[t] -= count
		if g.table[t] < min {
			min = g.table[t]
		}
		return true
	})
	M.Equations.Add(int64(1) << uint(rem.Len()))
	if min < g.minSlack.Load() {
		g.minSlack.Store(min)
	}
}

// growSpanLocked extends the dense span with set's unobserved licenses.
// Each new element doubles the table — newTable[T|bit] = table[T] +
// A[e], valid because no existing count contains e — until MaxSpanBits
// forces the sparse fallback. No replay, ever.
func (c *Cache) growSpanLocked(g *group, set bitset.Mask) {
	grow := set.Diff(g.span)
	if grow.Empty() {
		return
	}
	ok := true
	grow.ForEach(func(e int) bool {
		if len(g.spanElems) >= c.maxSpanBits {
			ok = false
			return false
		}
		bit := len(g.spanElems)
		old := g.table
		nt := make([]int64, 2*len(old))
		copy(nt, old)
		a := c.aggs[e]
		min := g.minSlack.Load()
		for t, v := range old {
			nv := v + a
			nt[len(old)+t] = nv
			if nv < min {
				min = nv
			}
		}
		g.table = nt
		g.minSlack.Store(min)
		g.spanElems = append(g.spanElems, e)
		g.coord[e] = int8(bit)
		g.span = g.span.With(e)
		M.SpanGrowths.Inc()
		return true
	})
	if !ok {
		// Span outgrew the dense budget: drop the table, keep the counts.
		// minSlack stays valid (it was exact; sparse mode only needs
		// exactness at ≤ 0).
		g.dense = false
		g.table = nil
		g.span = g.span.Union(set)
		set.Diff(bitset.MaskOf(g.spanElems...)).ForEach(func(e int) bool {
			g.coord[e] = int8(len(g.spanElems))
			g.spanElems = append(g.spanElems, e)
			return true
		})
		M.SpanOverflows.Inc()
	}
}

// Release rolls back an admitted-but-unlogged reservation (the log
// append failed): slack is restored and the reservation retired.
func (c *Cache) Release(set bitset.Mask, count int64) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, err := c.route(set)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer func() {
		g.mu.Unlock()
		c.pending.Add(-1)
	}()
	g.cnt[set] -= count
	if g.cnt[set] <= 0 {
		delete(g.cnt, set)
	}
	// Re-derive span, mode, table, and minimum from the surviving counts:
	// the rolled-back record may have been the only one observing some
	// license, and the span must shrink with it so the state matches what
	// a verification rebuild derives from the log. Release only runs when
	// a log append failed, so the full refinalize is off the hot path.
	c.finalizeGroup(g)
	return nil
}

// Hold registers an in-flight lifecycle mutation (a revoke, expiry, or
// transfer between its log append and the matching cache update) so
// Verify treats the cache as non-quiescent. Every Hold must be paired
// with a Confirm.
func (c *Cache) Hold() { c.pending.Add(1) }

// Credit applies a durably-logged debit record (revoke or expire) to
// the cache: the set's net count drops by count and slack for every
// equation S ⊇ set rises by count, mirroring the admission decrement
// path in place. Callers bracket the log append and the Credit with
// Hold/Confirm so Verify never observes the halfway state. A count
// exceeding the cached net count means the cache has diverged from the
// log (the store would have refused the append) and is reported as
// KindHeadroomDivergence.
func (c *Cache) Credit(ctx context.Context, set bitset.Mask, count int64) error {
	_, sp := trace.Start(ctx, "headroom.credit")
	err := c.credit(set, count)
	if sp != nil {
		sp.SetInt("count", count)
		sp.Fail(err)
		sp.End()
	}
	return err
}

func (c *Cache) credit(set bitset.Mask, count int64) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, err := c.route(set)
	if err != nil {
		return err
	}
	if count <= 0 {
		return drmerr.New(drmerr.KindInvalidInput, "headroom.credit",
			"headroom: non-positive credit %d", count)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.cnt[set]
	if count > cur {
		return drmerr.New(drmerr.KindHeadroomDivergence, "headroom.credit",
			"headroom: credit of %d against cached net count %d for set %v", count, cur, set)
	}
	if count == cur {
		// The set's net count returns to zero: prune it and re-derive
		// span, mode, table, and minimum, exactly like a rolled-back
		// reservation — a fresh build from the log would not observe the
		// set either. Debits are off the admission hot path, so the full
		// refinalize is acceptable here.
		delete(g.cnt, set)
		c.finalizeGroup(g)
		return nil
	}
	g.cnt[set] = cur - count
	if !g.dense {
		// Slacks only rose; the sparse minimum must be re-derived to stay
		// exact at ≤ 0.
		c.recomputeSparseMinSlack(g)
		return nil
	}
	bs := g.spanCoord(set)
	rem := bitset.Mask(len(g.table)-1) ^ bs
	g.table[bs] += count
	rem.Subsets(func(extra bitset.Mask) bool {
		g.table[bs|extra] += count
		return true
	})
	M.Equations.Add(int64(1) << uint(rem.Len()))
	// Increments can raise the minimum anywhere in the table, not just
	// among the touched entries; rescan for the exact value.
	min := unbounded
	for t := 1; t < len(g.table); t++ {
		if g.table[t] < min {
			min = g.table[t]
		}
	}
	g.minSlack.Store(min)
	return nil
}

// ApplyTransfer records a durably-logged transfer against the cache's
// per-set transfer totals. Slack is untouched — transfers move
// permissions between consumers, not against the corpus.
func (c *Cache) ApplyTransfer(set bitset.Mask, count int64) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, err := c.route(set)
	if err != nil {
		return err
	}
	if count <= 0 {
		return drmerr.New(drmerr.KindInvalidInput, "headroom.transfer",
			"headroom: non-positive transfer %d", count)
	}
	g.mu.Lock()
	g.xfer[set] += count
	g.mu.Unlock()
	return nil
}

// Transferred returns the cumulative transferred total for set (0 if
// the set routes but has no transfers) — the number the engine's
// transfer-cap policy compares against.
func (c *Cache) Transferred(set bitset.Mask) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, err := c.route(set)
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.xfer[set], nil
}

// NetCount returns the cached net outstanding count for set (exact-set
// count, not the subset-closed C⟨S⟩) — what revokes and transfers are
// bounded by.
func (c *Cache) NetCount(set bitset.Mask) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g, err := c.route(set)
	if err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cnt[set], nil
}

// TopUp raises license i's budget by extra, patching every affected
// slack entry in place. Budgets only rise, so dense tables update with
// one masked sweep; sparse groups refresh their minimum.
func (c *Cache) TopUp(i int, extra int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= c.n {
		return drmerr.New(drmerr.KindInvalidInput, "headroom.topup", "headroom: license %d outside corpus", i)
	}
	if extra <= 0 {
		return drmerr.New(drmerr.KindInvalidInput, "headroom.topup", "headroom: non-positive top-up %d", extra)
	}
	c.aggs[i] += extra
	g := c.groups[c.groupOf[i]]
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.span.Has(i) {
		// i appears in no observed set: no cached equation's slack moves
		// (A[S∖span] is summed from aggs at query time).
		return nil
	}
	if !g.dense {
		c.recomputeSparseMinSlack(g)
		return nil
	}
	bit := 1 << uint(g.coord[i])
	min := unbounded
	for t := 1; t < len(g.table); t++ {
		if t&bit != 0 {
			g.table[t] += extra
		}
		if g.table[t] < min {
			min = g.table[t]
		}
	}
	g.minSlack.Store(min)
	return nil
}

// N returns the number of licenses the cache spans.
func (c *Cache) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// setShapeGauges publishes group-count and table-size gauges. Caller
// holds c.mu (any mode).
func (c *Cache) setShapeGauges() {
	M.Groups.Set(int64(len(c.groups)))
	var bytes int64
	for _, g := range c.groups {
		bytes += int64(8 * len(g.table))
	}
	M.TableBytes.Set(bytes)
}

