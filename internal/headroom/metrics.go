package headroom

import "repro/internal/obs"

// M holds the package's metric hooks, nil until Instrument is called;
// obs metric methods are no-ops on nil receivers, so an uninstrumented
// cache records nothing and allocates nothing.
var M Metrics

// Metrics are the admission-cache signals: check outcomes and cost, the
// dense/sparse split, structural churn, and verification results.
type Metrics struct {
	// Checks counts admission checks; Admitted/Rejected split their
	// outcomes. SlowChecks counts the sparse (closure-walk) subset —
	// the cache-miss regime where the span outgrew the dense table.
	Checks     *obs.Counter
	Admitted   *obs.Counter
	Rejected   *obs.Counter
	SlowChecks *obs.Counter
	// Equations counts slack entries touched (read or written) — the
	// cached counterpart of drm_vtree_equations_checked_total.
	Equations *obs.Counter
	// SpanGrowths counts dense-table doublings; SpanOverflows counts
	// groups falling back to sparse mode; Rebuilds counts warm-ups and
	// corpus-change rebuilds.
	SpanGrowths   *obs.Counter
	SpanOverflows *obs.Counter
	Rebuilds      *obs.Counter
	// Verifies/VerifySkipped/Divergence cover the audit-as-verifier
	// pass; Divergence counting up is an invariant failure.
	Verifies      *obs.Counter
	VerifySkipped *obs.Counter
	Divergence    *obs.Counter
	// CheckSeconds is the wall time of one Admit (check + apply).
	CheckSeconds *obs.Histogram
	// Groups and TableBytes describe the cache shape after the last
	// (re)build.
	Groups     *obs.Gauge
	TableBytes *obs.Gauge
}

// Instrument registers the cache's metric families on reg and points
// the hooks at them.
func Instrument(reg *obs.Registry) {
	M = Metrics{
		Checks: reg.Counter("drm_headroom_checks_total",
			"Cached admission checks."),
		Admitted: reg.Counter("drm_headroom_admitted_total",
			"Admissions accepted by the headroom cache."),
		Rejected: reg.Counter("drm_headroom_rejected_total",
			"Admissions rejected by the headroom cache."),
		SlowChecks: reg.Counter("drm_headroom_slow_checks_total",
			"Admission checks served by the sparse closure walk (span outgrew the dense table)."),
		Equations: reg.Counter("drm_headroom_equations_total",
			"Cached slack entries read or decremented."),
		SpanGrowths: reg.Counter("drm_headroom_span_growths_total",
			"Dense slack-table doublings (a new license entered a group's observed span)."),
		SpanOverflows: reg.Counter("drm_headroom_span_overflows_total",
			"Groups that fell back from the dense table to the sparse closure walk."),
		Rebuilds: reg.Counter("drm_headroom_rebuilds_total",
			"Cache warm-ups and corpus-change rebuilds."),
		Verifies: reg.Counter("drm_headroom_verify_total",
			"Completed cache-vs-log verification passes."),
		VerifySkipped: reg.Counter("drm_headroom_verify_skipped_total",
			"Verification passes skipped because reservations were in flight."),
		Divergence: reg.Counter("drm_headroom_divergence_total",
			"Verification passes that found the cache diverging from the log."),
		CheckSeconds: reg.Histogram("drm_headroom_check_seconds",
			"Wall time of one cached admission (check + decrement).", nil),
		Groups: reg.Gauge("drm_headroom_groups",
			"Overlap groups tracked by the headroom cache."),
		TableBytes: reg.Gauge("drm_headroom_table_bytes",
			"Resident size of the dense slack tables."),
	}
}
