package vtree

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// randomRecords builds a seeded random log over n licenses.
func randomRecords(t *testing.T, n, count int, seed int64) []logstore.Record {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	out := make([]logstore.Record, 0, count)
	for i := 0; i < count; i++ {
		set := bitset.Mask(r.Int63()) & bitset.FullMask(n)
		if set.Empty() {
			set = bitset.MaskOf(r.Intn(n))
		}
		out = append(out, logstore.Record{Set: set, Count: int64(1 + r.Intn(50))})
	}
	return out
}

func TestFlattenShape(t *testing.T) {
	tree := MustNew(4)
	for _, r := range []logstore.Record{
		{Set: bitset.MaskOf(0, 2), Count: 5},
		{Set: bitset.MaskOf(1), Count: 3},
		{Set: bitset.MaskOf(0, 1, 3), Count: 7},
	} {
		if err := tree.InsertRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	f := tree.Flatten()
	if f.N() != 4 {
		t.Errorf("N = %d, want 4", f.N())
	}
	if f.Nodes() != tree.Stats().Nodes {
		t.Errorf("flat nodes = %d, pointer nodes = %d", f.Nodes(), tree.Stats().Nodes)
	}
	if f.label[0] != -1 || f.count[0] != 0 {
		t.Errorf("root sentinel = (L=%d, C=%d)", f.label[0], f.count[0])
	}
	// Children of every node must be contiguous and label-ascending.
	for i := range f.label {
		for j := f.childStart[i] + 1; j < f.childEnd[i]; j++ {
			if f.label[j] <= f.label[j-1] {
				t.Errorf("node %d: children labels not ascending: %v then %v", i, f.label[j-1], f.label[j])
			}
		}
	}
}

func TestFlatSumSubsetsMatchesPointer(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed + 100))
		n := 1 + r.Intn(16)
		tree, err := BuildRecords(n, randomRecords(t, n, 200, seed))
		if err != nil {
			t.Fatal(err)
		}
		f := tree.Flatten()
		full := bitset.FullMask(n)
		// Every mask for small n, random masks otherwise.
		if n <= 12 {
			for m := bitset.Mask(0); m <= full; m++ {
				if got, want := f.SumSubsets(m), tree.SumSubsets(m); got != want {
					t.Fatalf("seed %d n %d: flat SumSubsets(%v) = %d, pointer %d", seed, n, m, got, want)
				}
			}
		} else {
			for i := 0; i < 4096; i++ {
				m := bitset.Mask(r.Int63()) & full
				if got, want := f.SumSubsets(m), tree.SumSubsets(m); got != want {
					t.Fatalf("seed %d n %d: flat SumSubsets(%v) = %d, pointer %d", seed, n, m, got, want)
				}
			}
		}
	}
}

func TestFlatValidateShardedMatchesSerialPointer(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed + 900))
		n := 1 + r.Intn(14)
		tree, err := BuildRecords(n, randomRecords(t, n, 300, seed))
		if err != nil {
			t.Fatal(err)
		}
		// Tight budgets so a healthy fraction of equations violate.
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(2000))
		}
		want, err := tree.ValidateAll(a)
		if err != nil {
			t.Fatal(err)
		}
		f := tree.Flatten()
		for _, workers := range []int{1, 2, 3, 4, 7, 8, 16} {
			got, err := f.ValidateAllSharded(a, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Equations != want.Equations {
				t.Fatalf("seed %d n %d workers %d: equations %d, want %d",
					seed, n, workers, got.Equations, want.Equations)
			}
			if !violationsEqual(got.Violations, want.Violations) {
				t.Fatalf("seed %d n %d workers %d: violations diverge:\n got %v\nwant %v",
					seed, n, workers, got.Violations, want.Violations)
			}
			// Byte-identical reports: same rendering, not just same sets.
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Fatalf("seed %d n %d workers %d: reports render differently", seed, n, workers)
			}
		}
	}
}

func violationsEqual(a, b []Violation) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestFlatValidateShardedErrors(t *testing.T) {
	tree := MustNew(3)
	if err := tree.Insert(bitset.MaskOf(0), 1); err != nil {
		t.Fatal(err)
	}
	f := tree.Flatten()
	if _, err := f.ValidateAllSharded([]int64{1, 2}, 1); err == nil {
		t.Error("wrong aggregate length accepted")
	}
	if _, err := f.ValidateAllSharded([]int64{1, 2, 3}, 0); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestFlatWorkersBeyondMaskSpace(t *testing.T) {
	// More workers than masks: shard count must clamp to 2^n.
	tree := MustNew(2)
	if err := tree.Insert(bitset.MaskOf(0, 1), 9); err != nil {
		t.Fatal(err)
	}
	a := []int64{4, 4}
	want, err := tree.ValidateAll(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.Flatten().ValidateAllSharded(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equations != want.Equations || !violationsEqual(got.Violations, want.Violations) {
		t.Fatalf("clamped sharding diverges: got %+v want %+v", got, want)
	}
}

func TestFlattenSnapshotIsImmutable(t *testing.T) {
	tree := MustNew(3)
	if err := tree.Insert(bitset.MaskOf(0, 1), 4); err != nil {
		t.Fatal(err)
	}
	f := tree.Flatten()
	before := f.SumSubsets(bitset.FullMask(3))
	if err := tree.Insert(bitset.MaskOf(2), 10); err != nil {
		t.Fatal(err)
	}
	if got := f.SumSubsets(bitset.FullMask(3)); got != before {
		t.Errorf("snapshot changed after insert: %d -> %d", before, got)
	}
	if tree.Flatten().SumSubsets(bitset.FullMask(3)) != before+10 {
		t.Error("re-flatten missed the new record")
	}
}
