package vtree

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// FuzzTreeAgainstBruteForce feeds an arbitrary byte string interpreted as
// a sequence of (set, count) insertions into the validation tree and
// cross-checks C⟨S⟩, C[S], and Headroom against direct log computation.
func FuzzTreeAgainstBruteForce(f *testing.F) {
	f.Add([]byte{0x03, 0x05, 0x02, 0x01})
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0x01, 0x01, 0x80, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		tree := MustNew(n)
		var records []logstore.Record
		full := bitset.FullMask(n)
		for i := 0; i+1 < len(data); i += 2 {
			set := bitset.Mask(data[i]) & full
			count := int64(data[i+1])
			if set.Empty() || count == 0 {
				continue
			}
			if err := tree.Insert(set, count); err != nil {
				t.Fatalf("insert(%v, %d): %v", set, count, err)
			}
			records = append(records, logstore.Record{Set: set, Count: count})
		}
		// Probe a handful of sets derived from the input.
		probes := []bitset.Mask{full, bitset.MaskOf(0), bitset.MaskOf(1, 3, 5)}
		for i := 0; i+1 < len(data) && i < 8; i += 2 {
			if m := bitset.Mask(data[i]^data[i+1]) & full; !m.Empty() {
				probes = append(probes, m)
			}
		}
		for _, s := range probes {
			var wantSum, wantExact int64
			for _, r := range records {
				if r.Set.SubsetOf(s) {
					wantSum += r.Count
				}
				if r.Set == s {
					wantExact += r.Count
				}
			}
			if got := tree.SumSubsets(s); got != wantSum {
				t.Fatalf("SumSubsets(%v) = %d, want %d", s, got, wantSum)
			}
			if got := tree.Count(s); got != wantExact {
				t.Fatalf("Count(%v) = %d, want %d", s, got, wantExact)
			}
		}
		// Records round-trip.
		rebuilt, err := BuildRecords(n, tree.Records())
		if err != nil {
			t.Fatal(err)
		}
		if !rebuilt.Equal(tree) {
			t.Fatal("Records round-trip changed the tree")
		}
	})
}
