package vtree

import (
	"context"
	"testing"

	"repro/internal/trace"
)

// TestValidateAllocsEqualWithDisabledTracer is the acceptance gate for
// the span design: a process with tracing enabled but no span in the
// request context (an unsampled / untraced request) must run the sharded
// validate with exactly the allocations of a tracing-free process. The
// only permitted overhead is the context value lookup in trace.Start,
// which allocates nothing.
func TestValidateAllocsEqualWithDisabledTracer(t *testing.T) {
	f, a := metricsFixture(t)
	for _, workers := range []int{1, 4} {
		run := func() {
			if _, err := f.ValidateAllShardedContext(context.Background(), a, workers); err != nil {
				t.Fatal(err)
			}
		}
		base := testing.AllocsPerRun(20, run)

		// A live tracer exists in the process, but the context carries no
		// span — exactly an untraced request on a -trace-sample server.
		_ = trace.New(trace.Options{Capacity: 16})
		untraced := testing.AllocsPerRun(20, run)

		if untraced != base {
			t.Errorf("workers=%d: allocs per run: no tracer %v, untraced ctx %v — disabled tracing must add zero",
				workers, base, untraced)
		}
	}
}

// TestValidateTracedEmitsShardSpans is the positive control for the alloc
// test: with a span in the context, each shard records a vtree.shard span
// with its equation count, and the trace stays well-formed.
func TestValidateTracedEmitsShardSpans(t *testing.T) {
	f, a := metricsFixture(t)
	tr := trace.New(trace.Options{Capacity: 4})
	ctx, root := tr.Root(context.Background(), "test.validate")
	res, err := f.ValidateAllShardedContext(ctx, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	rec := tr.Get(root.TraceID())
	if rec == nil {
		t.Fatal("trace not retained")
	}
	var shards int
	var eqs int64
	for _, s := range rec.Spans {
		if s.Name != "vtree.shard" {
			continue
		}
		shards++
		if s.Parent != 1 {
			t.Errorf("shard span %d parented to %d, want root", s.ID, s.Parent)
		}
		for _, at := range s.Attrs {
			if at.Key == "equations" {
				var v int64
				for _, c := range at.Value {
					v = v*10 + int64(c-'0')
				}
				eqs += v
			}
		}
	}
	if shards == 0 {
		t.Fatal("no vtree.shard spans recorded")
	}
	if eqs != res.Equations {
		t.Errorf("shard spans account for %d equations, validate reports %d", eqs, res.Equations)
	}
}
