package vtree

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/logstore"
)

// snapshotHeader versions the snapshot format and records N so Load can
// rebuild the tree without external context.
type snapshotHeader struct {
	Version int `json:"version"`
	N       int `json:"n"`
}

const snapshotVersion = 1

// Save writes a snapshot of the tree to w: a JSON header line followed by
// the tree's compacted records as JSON lines. Snapshots are canonical —
// two equal trees produce identical snapshots.
func (t *Tree) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{Version: snapshotVersion, N: t.n}); err != nil {
		return fmt.Errorf("vtree: save header: %w", err)
	}
	for _, r := range t.Records() {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("vtree: save record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vtree: save flush: %w", err)
	}
	return nil
}

// Load reads a snapshot produced by Save and rebuilds the tree.
func Load(r io.Reader) (*Tree, error) {
	dec := json.NewDecoder(r)
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("vtree: load header: %w", err)
	}
	if h.Version != snapshotVersion {
		return nil, fmt.Errorf("vtree: unsupported snapshot version %d", h.Version)
	}
	t, err := New(h.N)
	if err != nil {
		return nil, err
	}
	for {
		var rec logstore.Record
		if err := dec.Decode(&rec); err == io.EOF {
			return t, nil
		} else if err != nil {
			return nil, fmt.Errorf("vtree: load record: %w", err)
		}
		if err := t.Insert(rec.Set, rec.Count); err != nil {
			return nil, err
		}
	}
}
