package vtree

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// benchRecords generates records confined to groups of the given size so
// tree shape resembles the §5 workloads.
func benchRecords(n, groupSize, count int, seed int64) []logstore.Record {
	r := rand.New(rand.NewSource(seed))
	numGroups := (n + groupSize - 1) / groupSize
	out := make([]logstore.Record, 0, count)
	for len(out) < count {
		g := r.Intn(numGroups)
		lo := g * groupSize
		hi := lo + groupSize
		if hi > n {
			hi = n
		}
		var set bitset.Mask
		for j := lo; j < hi; j++ {
			if r.Intn(3) == 0 {
				set = set.With(j)
			}
		}
		if set.Empty() {
			set = bitset.MaskOf(lo + r.Intn(hi-lo))
		}
		out = append(out, logstore.Record{Set: set, Count: int64(10 + r.Intn(21))})
	}
	return out
}

func BenchmarkInsert(b *testing.B) {
	for _, n := range []int{10, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			recs := benchRecords(n, 7, 4096, 1)
			tree := MustNew(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tree.InsertRecord(recs[i%len(recs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSumSubsets(b *testing.B) {
	for _, n := range []int{10, 20, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			recs := benchRecords(n, 7, 8192, 2)
			tree, err := BuildRecords(n, recs)
			if err != nil {
				b.Fatal(err)
			}
			full := bitset.FullMask(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.SumSubsets(full)
			}
		})
	}
}

// BenchmarkFlatSumSubsets measures the flat SoA walk against the pointer
// tree's (BenchmarkSumSubsets) on the same workloads.
func BenchmarkFlatSumSubsets(b *testing.B) {
	for _, n := range []int{10, 20, 35} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			recs := benchRecords(n, 7, 8192, 2)
			tree, err := BuildRecords(n, recs)
			if err != nil {
				b.Fatal(err)
			}
			flat := tree.Flatten()
			full := bitset.FullMask(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flat.SumSubsets(full)
			}
		})
	}
}

func BenchmarkValidateAll(b *testing.B) {
	for _, n := range []int{10, 14, 18} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			recs := benchRecords(n, 7, 8192, 3)
			tree, err := BuildRecords(n, recs)
			if err != nil {
				b.Fatal(err)
			}
			a := make([]int64, n)
			for i := range a {
				a[i] = 1 << 40 // no violations: measure pure evaluation
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tree.ValidateAll(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlatValidateAllSharded measures the flat validator across shard
// budgets. On one core the interesting number is the overhead of sharding
// (~1.0x); on multicore machines the sharded runs scale.
func BenchmarkFlatValidateAllSharded(b *testing.B) {
	for _, n := range []int{14, 18} {
		recs := benchRecords(n, n, 8192, 3) // one group: worst case for division
		tree, err := BuildRecords(n, recs)
		if err != nil {
			b.Fatal(err)
		}
		flat := tree.Flatten()
		a := make([]int64, n)
		for i := range a {
			a[i] = 1 << 40
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("N=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := flat.ValidateAllSharded(a, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkHeadroom(b *testing.B) {
	const n = 16
	recs := benchRecords(n, 8, 8192, 4)
	tree, err := BuildRecords(n, recs)
	if err != nil {
		b.Fatal(err)
	}
	a := make([]int64, n)
	for i := range a {
		a[i] = 1 << 40
	}
	base := bitset.MaskOf(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Headroom(base, a); err != nil {
			b.Fatal(err)
		}
	}
}
