package vtree

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/obs"
)

// metricsFixture builds a 12-license flat tree with a few hundred records.
func metricsFixture(tb testing.TB) (*FlatTree, []int64) {
	tb.Helper()
	const n = 12
	r := rand.New(rand.NewSource(7))
	t := MustNew(n)
	for i := 0; i < 300; i++ {
		set := bitset.Mask(r.Int63()) & bitset.FullMask(n)
		if set.Empty() {
			set = bitset.MaskOf(r.Intn(n))
		}
		if err := t.Insert(set, int64(1+r.Intn(20))); err != nil {
			tb.Fatal(err)
		}
	}
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(100000) // generous budgets: violation-free run
	}
	return t.Flatten(), a
}

// TestValidateAllocsEqualWithNilAndLiveHooks is the acceptance gate for
// the hook design: the serial validate hot path must allocate exactly the
// same with hooks nil (uninstrumented) as with a live registry — i.e. the
// instrumentation adds zero allocations, because recording is atomic-only
// and happens once per run.
func TestValidateAllocsEqualWithNilAndLiveHooks(t *testing.T) {
	f, a := metricsFixture(t)
	run := func() {
		if _, err := f.ValidateAllSharded(a, 1); err != nil {
			t.Fatal(err)
		}
	}
	M = Metrics{} // hooks nil
	base := testing.AllocsPerRun(20, run)

	reg := obs.NewRegistry()
	Instrument(reg)
	defer func() { M = Metrics{} }()
	live := testing.AllocsPerRun(20, run)

	if live != base {
		t.Errorf("allocs per run: nil hooks %v, live hooks %v — instrumentation must add zero", base, live)
	}
}

// TestShardCountMatchesValidate pins the exported ShardCount against the
// fan-out ValidateAllSharded actually uses (observed via the shard
// counter).
func TestShardCountMatchesValidate(t *testing.T) {
	f, a := metricsFixture(t)
	reg := obs.NewRegistry()
	Instrument(reg)
	defer func() { M = Metrics{} }()
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 1 << 20} {
		before := M.Shards.Value()
		if _, err := f.ValidateAllSharded(a, workers); err != nil {
			t.Fatal(err)
		}
		got := M.Shards.Value() - before
		if want := int64(ShardCount(f.N(), workers)); got != want {
			t.Errorf("workers=%d: observed %d shards, ShardCount says %d", workers, got, want)
		}
	}
}

// TestInstrumentedValidateCounters checks one sharded run records one
// observation and the full equation count.
func TestInstrumentedValidateCounters(t *testing.T) {
	f, a := metricsFixture(t)
	reg := obs.NewRegistry()
	Instrument(reg)
	defer func() { M = Metrics{} }()
	res, err := f.ValidateAllSharded(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := M.ValidateRuns.Value(); got != 1 {
		t.Errorf("validate runs = %d, want 1", got)
	}
	if got := M.ValidateSeconds.Count(); got != 1 {
		t.Errorf("validate seconds observations = %d, want 1", got)
	}
	if got := M.EquationsChecked.Value(); got != res.Equations {
		t.Errorf("equations counter = %d, report says %d", got, res.Equations)
	}
}

// BenchmarkValidateInstrumented quantifies the instrumentation overhead
// the acceptance criteria bound at 5%: compare against the hooks-nil
// sub-benchmark (the BenchmarkAblationIntraGroup shape at package level).
func BenchmarkValidateInstrumented(b *testing.B) {
	f, a := metricsFixture(b)
	b.Run("nil-hooks", func(b *testing.B) {
		M = Metrics{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.ValidateAllSharded(a, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live-hooks", func(b *testing.B) {
		reg := obs.NewRegistry()
		Instrument(reg)
		defer func() { M = Metrics{} }()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.ValidateAllSharded(a, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}
