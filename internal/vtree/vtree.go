// Package vtree implements the validation tree of Sachan et al. [10], the
// data structure the paper builds on and divides (§2.2).
//
// The tree is a prefix tree over belongs-to sets: a log record with set
// {L_D^a, L_D^b, ...} (indexes ascending) is inserted as the path
// root→a→b→... and its permission count is added to the final node. The
// count C stored at a node is therefore C[S] for the set S spelled by the
// node's root path — exactly fig 1.
//
// Two query operations matter:
//
//   - SumSubsets(S) computes C⟨S⟩ — the LHS of the validation equation for
//     set S, i.e. Σ C[S'] over all S' ⊆ S — with a pruned depth-first walk
//     that only descends through nodes labelled with members of S;
//   - ValidateAll runs Algorithm 2: all 2^N−1 validation equations
//     C⟨S⟩ ≤ A[S], reporting every violated set.
//
// Node indexes inside a tree are always dense zero-based corpus indexes
// [0, N). The geometric approach (internal/core) relabels divided trees so
// each keeps this invariant with its group-local N_k.
package vtree

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/logstore"
	"repro/internal/trace"
)

// Node is one validation-tree node: a license index, the count for the set
// spelled by the root path, and index-ordered children.
type Node struct {
	// L is the zero-based license index labelling this node.
	L int
	// C is the accumulated count for the path set ending here.
	C int64
	// Children are ordered by ascending L. Exposed for the divider in
	// internal/core; other callers should treat nodes as read-only.
	Children []*Node
}

// Tree is a validation tree over a corpus of n redistribution licenses.
type Tree struct {
	root *Node
	n    int
}

// New returns an empty validation tree over license indexes [0, n).
func New(n int) (*Tree, error) {
	if n < 0 || n > bitset.MaxMaskElems {
		return nil, fmt.Errorf("vtree: invalid license count %d", n)
	}
	return &Tree{root: &Node{L: -1}, n: n}, nil
}

// MustNew is New for trusted callers; it panics on error.
func MustNew(n int) *Tree {
	t, err := New(n)
	if err != nil {
		panic(err)
	}
	return t
}

// NewFromRoot wraps an existing root node (used by the divider when it
// relinks subtrees into per-group trees). The caller guarantees that all
// indexes below root are within [0, n).
func NewFromRoot(root *Node, n int) *Tree { return &Tree{root: root, n: n} }

// N returns the number of license indexes the tree spans.
func (t *Tree) N() int { return t.n }

// Root returns the root sentinel node (L == -1). Exposed for the divider.
func (t *Tree) Root() *Node { return t.root }

// Insert adds count to the node for the given belongs-to set, creating the
// path as needed — Algorithm 1 of the paper. The set must be non-empty and
// within [0, N); count must be positive.
func (t *Tree) Insert(set bitset.Mask, count int64) error {
	if set.Empty() {
		return drmerr.New(drmerr.KindInvalidInput, "vtree.insert", "vtree: insert with empty set")
	}
	if !set.SubsetOf(bitset.FullMask(t.n)) {
		return drmerr.New(drmerr.KindCorpusMismatch, "vtree.insert",
			"vtree: set %v outside universe of %d licenses", set, t.n)
	}
	if count <= 0 {
		return drmerr.New(drmerr.KindInvalidInput, "vtree.insert", "vtree: non-positive count %d", count)
	}
	return t.add(set, count)
}

// Add folds a signed count delta into the node for the given set — the
// lifecycle-ledger generalization of Insert. Revocation and expiry
// records contribute negative deltas; ledger soundness (debits never
// exceed credits per set, enforced at append time) keeps every net
// C[S] non-negative when replaying a sound log, so the validation
// equations C⟨S⟩ ≤ A[S] evaluated over net counts stay the paper's.
// A zero delta is a no-op.
func (t *Tree) Add(set bitset.Mask, delta int64) error {
	if delta == 0 {
		return nil
	}
	if set.Empty() {
		return drmerr.New(drmerr.KindInvalidInput, "vtree.insert", "vtree: insert with empty set")
	}
	if !set.SubsetOf(bitset.FullMask(t.n)) {
		return drmerr.New(drmerr.KindCorpusMismatch, "vtree.insert",
			"vtree: set %v outside universe of %d licenses", set, t.n)
	}
	return t.add(set, delta)
}

func (t *Tree) add(set bitset.Mask, delta int64) error {
	cur := t.root
	set.ForEach(func(e int) bool {
		cur = cur.child(e)
		return true
	})
	cur.C += delta
	return nil
}

// child returns the child labelled l, inserting it in index order if absent
// (steps 1–3 of Algorithm 1).
func (n *Node) child(l int) *Node {
	// Children are ordered; find the first child with L >= l.
	i := 0
	for i < len(n.Children) && n.Children[i].L < l {
		i++
	}
	if i < len(n.Children) && n.Children[i].L == l {
		return n.Children[i]
	}
	nc := &Node{L: l}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = nc
	return nc
}

// InsertRecord folds a ledger record's effective count into the tree:
// issues add, revokes and expiries subtract, transfers leave counts
// unchanged (they move permissions between consumers, not against the
// corpus).
func (t *Tree) InsertRecord(r logstore.Record) error {
	return t.Add(r.Set, r.Effective())
}

// Build replays an issuance log into a fresh tree over n licenses.
func Build(n int, log logstore.Store) (*Tree, error) {
	return BuildContext(context.Background(), n, log)
}

// BuildContext replays an issuance log into a fresh tree over n licenses,
// polling ctx between batches of records so replaying a large log is
// cancellable. A cancelled build returns a KindCancelled error (the
// partially built tree is discarded — unlike audits, a half-replayed tree
// has no sound partial interpretation).
func BuildContext(ctx context.Context, n int, log logstore.Store) (*Tree, error) {
	ctx, sp := trace.Start(ctx, "vtree.build")
	t, err := New(n)
	if err == nil {
		err = logstore.ForEachContext(ctx, log, t.InsertRecord)
	}
	if sp != nil {
		sp.SetInt("licenses", int64(n))
		sp.Fail(err)
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}

// BuildRecords replays a record slice into a fresh tree over n licenses.
func BuildRecords(n int, records []logstore.Record) (*Tree, error) {
	t, err := New(n)
	if err != nil {
		return nil, err
	}
	for _, r := range records {
		if err := t.InsertRecord(r); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// SumSubsets returns C⟨S⟩ = Σ_{S' ⊆ S, S' ≠ ∅} C[S'], the LHS of the
// validation equation for S (eq. 1). The walk descends only through
// children labelled with members of S; because children are index-ordered,
// it stops scanning a child list past max(S).
func (t *Tree) SumSubsets(s bitset.Mask) int64 {
	if s.Empty() {
		return 0
	}
	return sumSubsets(t.root, s, s.Max())
}

func sumSubsets(n *Node, s bitset.Mask, maxElem int) int64 {
	var total int64
	for _, c := range n.Children {
		if c.L > maxElem {
			break
		}
		if !s.Has(c.L) {
			continue
		}
		total += c.C
		total += sumSubsets(c, s, maxElem)
	}
	return total
}

// Count returns C[S] — the exact count stored for the set S (not the
// subset-closed sum), or 0 if the path does not exist.
func (t *Tree) Count(s bitset.Mask) int64 {
	cur := t.root
	ok := true
	s.ForEach(func(e int) bool {
		cur = cur.find(e)
		if cur == nil {
			ok = false
			return false
		}
		return true
	})
	if !ok || cur == t.root {
		return 0
	}
	return cur.C
}

// find returns the child labelled l, or nil.
func (n *Node) find(l int) *Node {
	for _, c := range n.Children {
		if c.L == l {
			return c
		}
		if c.L > l {
			return nil
		}
	}
	return nil
}

// Violation reports one failed validation equation: the set, its LHS C⟨S⟩,
// and its RHS A[S].
type Violation struct {
	Set bitset.Mask
	CV  int64 // LHS: aggregated issued counts
	AV  int64 // RHS: aggregated license budgets
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("set %v: issued %d > budget %d", v.Set, v.CV, v.AV)
}

// Result summarises a validation run.
type Result struct {
	// Equations is the number of validation equations evaluated.
	Equations int64
	// Violations lists every violated equation, in ascending set order.
	Violations []Violation
}

// OK reports whether no equation was violated.
func (r Result) OK() bool { return len(r.Violations) == 0 }

// ValidateAll runs Algorithm 2: it evaluates all 2^N−1 validation
// equations against the aggregate array a (a[j] is the budget of license j)
// and reports every violation. len(a) must equal N.
func (t *Tree) ValidateAll(a []int64) (Result, error) {
	if len(a) != t.n {
		return Result{}, fmt.Errorf("vtree: aggregate array has %d entries, want %d", len(a), t.n)
	}
	var res Result
	full := bitset.FullMask(t.n)
	for i := bitset.Mask(1); ; i++ {
		cv := t.SumSubsets(i)
		var av int64
		i.ForEach(func(e int) bool {
			av += a[e]
			return true
		})
		res.Equations++
		if cv > av {
			res.Violations = append(res.Violations, Violation{Set: i, CV: cv, AV: av})
		}
		if i == full {
			break
		}
	}
	return res, nil
}

// ValidateContaining evaluates only the equations whose set is a superset of
// base — the 2^(N−k) equations a newly issued license with belongs-to set
// base participates in (§2.1's online-validation complexity discussion).
func (t *Tree) ValidateContaining(base bitset.Mask, a []int64) (Result, error) {
	if len(a) != t.n {
		return Result{}, fmt.Errorf("vtree: aggregate array has %d entries, want %d", len(a), t.n)
	}
	if base.Empty() {
		return Result{}, errors.New("vtree: empty base set")
	}
	full := bitset.FullMask(t.n)
	if !base.SubsetOf(full) {
		return Result{}, fmt.Errorf("vtree: base %v outside universe of %d licenses", base, t.n)
	}
	var res Result
	check := func(s bitset.Mask) {
		cv := t.SumSubsets(s)
		var av int64
		s.ForEach(func(e int) bool {
			av += a[e]
			return true
		})
		res.Equations++
		if cv > av {
			res.Violations = append(res.Violations, Violation{Set: s, CV: cv, AV: av})
		}
	}
	rest := full.Diff(base)
	check(base)
	rest.Subsets(func(extra bitset.Mask) bool {
		check(base.Union(extra))
		return true
	})
	return res, nil
}

// Headroom returns the largest count that could be issued for an issued
// license with belongs-to set base without violating any validation
// equation: min over all S ⊇ base of A[S] − C⟨S⟩. Appending a record
// (base, c) raises C⟨S⟩ by c exactly for the supersets of base, so a new
// issuance is aggregate-valid iff c ≤ Headroom(base). A non-positive result
// means the log already violates some equation containing base.
func (t *Tree) Headroom(base bitset.Mask, a []int64) (int64, error) {
	if len(a) != t.n {
		return 0, fmt.Errorf("vtree: aggregate array has %d entries, want %d", len(a), t.n)
	}
	if base.Empty() {
		return 0, errors.New("vtree: empty base set")
	}
	full := bitset.FullMask(t.n)
	if !base.SubsetOf(full) {
		return 0, fmt.Errorf("vtree: base %v outside universe of %d licenses", base, t.n)
	}
	headroom := int64(math.MaxInt64)
	consider := func(s bitset.Mask) {
		var av int64
		s.ForEach(func(e int) bool {
			av += a[e]
			return true
		})
		if room := av - t.SumSubsets(s); room < headroom {
			headroom = room
		}
	}
	consider(base)
	full.Diff(base).Subsets(func(extra bitset.Mask) bool {
		consider(base.Union(extra))
		return true
	})
	// One aggregated hook update per query: consider ran once per superset
	// of base, i.e. 2^(N−|base|) times.
	M.EquationsChecked.Add(int64(1) << uint(full.Diff(base).Len()))
	return headroom, nil
}

// Stats describes the physical shape of a tree, for the fig 9/10 storage
// and construction-cost experiments.
type Stats struct {
	// Nodes counts all nodes excluding the root sentinel.
	Nodes int
	// MaxDepth is the longest root path (0 for an empty tree).
	MaxDepth int
	// Bytes estimates resident size: per-node fixed cost plus child-slice
	// backing arrays, mirroring this implementation's actual layout.
	Bytes int64
}

// nodeFixedBytes is the in-memory size of Node: L (8) + C (8) + slice
// header (24).
const nodeFixedBytes = 40

// Stats computes tree statistics with one walk.
func (t *Tree) Stats() Stats {
	var st Stats
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		st.Bytes += int64(8 * cap(n.Children)) // child pointer array
		for _, c := range n.Children {
			st.Nodes++
			st.Bytes += nodeFixedBytes
			walk(c, depth+1)
		}
	}
	st.Bytes += nodeFixedBytes // root sentinel
	walk(t.root, 0)
	return st
}

// Records exports the tree's (set, count) pairs — every node with C > 0 —
// in depth-first order. Rebuilding a tree from Records reproduces the tree
// exactly (the node set is determined by the record sets alone), which is
// how snapshots round-trip.
func (t *Tree) Records() []logstore.Record {
	var out []logstore.Record
	var walk func(n *Node, path bitset.Mask)
	walk = func(n *Node, path bitset.Mask) {
		if n.C > 0 {
			out = append(out, logstore.Record{Set: path, Count: n.C})
		}
		for _, c := range n.Children {
			walk(c, path.With(c.L))
		}
	}
	walk(t.root, 0)
	return out
}

// Merge adds every (set, count) record of other into t — the distributed-
// authority operation: two validators that observed disjoint slices of the
// issuance stream combine their trees before a joint audit. Both trees
// must span the same license universe. other is not modified. Merge is
// commutative and associative up to Tree.Equal.
func (t *Tree) Merge(other *Tree) error {
	if other.n != t.n {
		return fmt.Errorf("vtree: merging tree over %d licenses into one over %d", other.n, t.n)
	}
	for _, r := range other.Records() {
		if err := t.Insert(r.Set, r.Count); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two trees have identical structure and counts.
func (t *Tree) Equal(o *Tree) bool {
	if t.n != o.n {
		return false
	}
	return nodeEqual(t.root, o.root)
}

func nodeEqual(a, b *Node) bool {
	if a.L != b.L || a.C != b.C || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{root: cloneNode(t.root), n: t.n}
}

func cloneNode(n *Node) *Node {
	c := &Node{L: n.L, C: n.C}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = cloneNode(ch)
		}
	}
	return c
}

// String renders the tree in indented form for debugging, licenses printed
// one-based like the paper's figures.
func (t *Tree) String() string {
	var b strings.Builder
	b.WriteString("root\n")
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for _, c := range n.Children {
			fmt.Fprintf(&b, "%sL%d C=%d\n", strings.Repeat("  ", depth+1), c.L+1, c.C)
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}
