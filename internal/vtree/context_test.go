package vtree

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
)

func TestShardedContextCancelledScansNothing(t *testing.T) {
	// An already-cancelled context must be noticed at shard entry: zero
	// masks scanned, no violations, a KindCancelled error — and the same
	// snapshot revalidates identically under a fresh context.
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed + 500))
		n := 4 + r.Intn(10)
		tree, err := BuildRecords(n, randomRecords(t, n, 200, seed))
		if err != nil {
			t.Fatal(err)
		}
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(2000))
		}
		f := tree.Flatten()

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := f.ValidateAllShardedContext(ctx, a, 4)
		if !errors.Is(err, drmerr.ErrCancelled) {
			t.Fatalf("seed %d: err = %v, want ErrCancelled", seed, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("seed %d: context cause lost: %v", seed, err)
		}
		if res.Equations != 0 || len(res.Violations) != 0 {
			t.Errorf("seed %d: cancelled run scanned %d masks, %d violations; want 0, 0",
				seed, res.Equations, len(res.Violations))
		}

		want, err := tree.ValidateAll(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ValidateAllShardedContext(context.Background(), a, 4)
		if err != nil {
			t.Fatal(err)
		}
		if got.Equations != want.Equations || !violationsEqual(got.Violations, want.Violations) {
			t.Errorf("seed %d: post-cancel revalidation diverges: got %+v want %+v", seed, got, want)
		}
	}
}

func TestShardedContextMidRunDeadlineIsSound(t *testing.T) {
	// A deadline that may fire mid-walk must never manufacture a
	// violation: whatever subset of masks was scanned, every reported
	// violation also appears in the full run.
	n := 18
	tree, err := BuildRecords(n, randomRecords(t, n, 400, 7))
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(100 * (i + 1)) // tight: the full run has violations
	}
	f := tree.Flatten()
	want, err := f.ValidateAllSharded(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	fullBySet := map[bitset.Mask]Violation{}
	for _, v := range want.Violations {
		fullBySet[v.Set] = v
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Microsecond)
	defer cancel()
	res, rerr := f.ValidateAllShardedContext(ctx, a, 1)
	if rerr == nil {
		t.Skip("walk finished before the deadline; nothing to check")
	}
	if drmerr.KindOf(rerr) != drmerr.KindCancelled {
		t.Fatalf("err = %v, want KindCancelled", rerr)
	}
	if res.Equations >= want.Equations {
		t.Errorf("cut-short run claims %d masks of %d", res.Equations, want.Equations)
	}
	for _, v := range res.Violations {
		w, ok := fullBySet[v.Set]
		if !ok || !reflect.DeepEqual(v, w) {
			t.Errorf("spurious violation %+v in cut-short run", v)
		}
	}
}

func TestShardedContextTypedArgErrors(t *testing.T) {
	tree := MustNew(3)
	if err := tree.Insert(bitset.MaskOf(0), 1); err != nil {
		t.Fatal(err)
	}
	f := tree.Flatten()
	if _, err := f.ValidateAllShardedContext(context.Background(), []int64{1, 2}, 1); !errors.Is(err, drmerr.ErrCorpusMismatch) {
		t.Errorf("short aggregates err = %v, want ErrCorpusMismatch", err)
	}
	if _, err := f.ValidateAllShardedContext(context.Background(), []int64{1, 2, 3}, 0); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("zero workers err = %v, want ErrInvalidInput", err)
	}
}
