package vtree

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// table2 returns the paper's Table 2 log records (corpus indexes 0..4).
func table2() []logstore.Record {
	return []logstore.Record{
		{Set: bitset.MaskOf(0, 1), Count: 800},   // L_U^1
		{Set: bitset.MaskOf(1), Count: 400},      // L_U^2
		{Set: bitset.MaskOf(0, 1), Count: 40},    // L_U^3
		{Set: bitset.MaskOf(0, 1, 3), Count: 30}, // L_U^4
		{Set: bitset.MaskOf(2, 4), Count: 800},   // L_U^5
		{Set: bitset.MaskOf(4), Count: 20},       // L_U^6
	}
}

// example1Aggregates is A = (2000, 1000, 3000, 4000, 2000).
func example1Aggregates() []int64 {
	return []int64{2000, 1000, 3000, 4000, 2000}
}

func buildTable2(t *testing.T) *Tree {
	t.Helper()
	tr, err := BuildRecords(5, table2())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := New(65); err == nil {
		t.Error("n > 64 accepted")
	}
	if _, err := New(0); err != nil {
		t.Errorf("n = 0 rejected: %v", err)
	}
}

func TestInsertErrors(t *testing.T) {
	tr := MustNew(3)
	if err := tr.Insert(0, 5); err == nil {
		t.Error("empty set accepted")
	}
	if err := tr.Insert(bitset.MaskOf(3), 5); err == nil {
		t.Error("out-of-universe set accepted")
	}
	if err := tr.Insert(bitset.MaskOf(0), 0); err == nil {
		t.Error("zero count accepted")
	}
	if err := tr.Insert(bitset.MaskOf(0), -1); err == nil {
		t.Error("negative count accepted")
	}
}

func TestTable2Counts(t *testing.T) {
	// §2.1: "the value of C[{1,2}], C[{2}], C[{1,2,4}], C[{3,5}] and C[{5}]
	// will be 840, 400, 30, 800 and 20 respectively."
	tr := buildTable2(t)
	cases := []struct {
		set  bitset.Mask
		want int64
	}{
		{bitset.MaskOf(0, 1), 840},
		{bitset.MaskOf(1), 400},
		{bitset.MaskOf(0, 1, 3), 30},
		{bitset.MaskOf(2, 4), 800},
		{bitset.MaskOf(4), 20},
		{bitset.MaskOf(0), 0},       // no record for {L1} alone
		{bitset.MaskOf(0, 2), 0},    // cross-group set never logged
		{bitset.MaskOf(0, 1, 2), 0}, // absent path
	}
	for _, c := range cases {
		if got := tr.Count(c.set); got != c.want {
			t.Errorf("C[%v] = %d, want %d", c.set, got, c.want)
		}
	}
}

func TestTable2TreeShape(t *testing.T) {
	// Fig 1: nodes root→L1→L2 (840), root→L1→L2→L4 (30), root→L2 (400),
	// root→L3→L5 (800), root→L5 (20); plus zero-count interior nodes L1, L3.
	tr := buildTable2(t)
	st := tr.Stats()
	if st.Nodes != 7 {
		t.Errorf("nodes = %d, want 7 (fig 1)", st.Nodes)
	}
	if st.MaxDepth != 3 {
		t.Errorf("depth = %d, want 3", st.MaxDepth)
	}
	// Interior nodes hold zero counts.
	if got := tr.Count(bitset.MaskOf(2)); got != 0 {
		t.Errorf("C[{3}] = %d, want 0", got)
	}
}

func TestSumSubsetsExample2(t *testing.T) {
	// Example 2: equation for {L2,L3,L4} sums C over its 7 subsets; with
	// Table 2 only C[{2}]=400 is non-zero among them.
	tr := buildTable2(t)
	if got := tr.SumSubsets(bitset.MaskOf(1, 2, 3)); got != 400 {
		t.Errorf("C⟨{2,3,4}⟩ = %d, want 400", got)
	}
	// Full set: all records are subsets → total issued 2090.
	if got := tr.SumSubsets(bitset.FullMask(5)); got != 2090 {
		t.Errorf("C⟨S^5⟩ = %d, want 2090", got)
	}
	// {L1,L2}: 840 + 400 = 1240.
	if got := tr.SumSubsets(bitset.MaskOf(0, 1)); got != 1240 {
		t.Errorf("C⟨{1,2}⟩ = %d, want 1240", got)
	}
	if got := tr.SumSubsets(0); got != 0 {
		t.Errorf("C⟨∅⟩ = %d, want 0", got)
	}
}

// bruteSumSubsets computes C⟨S⟩ straight from the log.
func bruteSumSubsets(records []logstore.Record, s bitset.Mask) int64 {
	var total int64
	for _, r := range records {
		if r.Set.SubsetOf(s) {
			total += r.Count
		}
	}
	return total
}

func TestSumSubsetsMatchesBruteForceQuick(t *testing.T) {
	// DESIGN.md invariant 1.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		full := bitset.FullMask(n)
		var records []logstore.Record
		for i := 0; i < r.Intn(200); i++ {
			set := bitset.Mask(r.Int63()) & full
			if set.Empty() {
				set = bitset.MaskOf(r.Intn(n))
			}
			records = append(records, logstore.Record{Set: set, Count: int64(1 + r.Intn(30))})
		}
		tr, err := BuildRecords(n, records)
		if err != nil {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			s := bitset.Mask(r.Int63()) & full
			if tr.SumSubsets(s) != bruteSumSubsets(records, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValidateAllTable2OK(t *testing.T) {
	tr := buildTable2(t)
	res, err := tr.ValidateAll(example1Aggregates())
	if err != nil {
		t.Fatal(err)
	}
	if res.Equations != 31 {
		t.Errorf("equations = %d, want 2^5-1 = 31", res.Equations)
	}
	if !res.OK() {
		t.Errorf("Table 2 log should validate; violations: %v", res.Violations)
	}
}

func TestValidateAllDetectsViolation(t *testing.T) {
	tr := buildTable2(t)
	// Push {L2} over its budget: C⟨{2}⟩ becomes 400+700=1100 > 1000.
	if err := tr.Insert(bitset.MaskOf(1), 700); err != nil {
		t.Fatal(err)
	}
	res, err := tr.ValidateAll(example1Aggregates())
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("violation not detected")
	}
	// The violated sets must include {L2} itself.
	found := false
	for _, v := range res.Violations {
		if v.Set == bitset.MaskOf(1) {
			found = true
			if v.CV != 1100 || v.AV != 1000 {
				t.Errorf("violation = %+v, want CV=1100 AV=1000", v)
			}
		}
		// Every reported violation really violates.
		if v.CV <= v.AV {
			t.Errorf("non-violation reported: %+v", v)
		}
	}
	if !found {
		t.Errorf("{L2} not among violations: %v", res.Violations)
	}
}

func TestValidateAllWrongArity(t *testing.T) {
	tr := buildTable2(t)
	if _, err := tr.ValidateAll([]int64{1, 2}); err == nil {
		t.Error("wrong aggregate arity accepted")
	}
}

func TestValidateContaining(t *testing.T) {
	tr := buildTable2(t)
	a := example1Aggregates()
	res, err := tr.ValidateContaining(bitset.MaskOf(0, 1), a)
	if err != nil {
		t.Fatal(err)
	}
	// N=5, k=2 → 2^(5-2) = 8 equations.
	if res.Equations != 8 {
		t.Errorf("equations = %d, want 8", res.Equations)
	}
	if !res.OK() {
		t.Errorf("unexpected violations: %v", res.Violations)
	}
	// Every equation checked must contain the base: verify via a violation.
	if err := tr.Insert(bitset.MaskOf(1), 10_000); err != nil {
		t.Fatal(err)
	}
	res, err = tr.ValidateContaining(bitset.MaskOf(1), a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equations != 16 {
		t.Errorf("equations = %d, want 16", res.Equations)
	}
	if res.OK() {
		t.Error("violation not detected by ValidateContaining")
	}
	for _, v := range res.Violations {
		if !bitset.MaskOf(1).SubsetOf(v.Set) {
			t.Errorf("violation %v does not contain base", v.Set)
		}
	}
}

func TestValidateContainingErrors(t *testing.T) {
	tr := buildTable2(t)
	a := example1Aggregates()
	if _, err := tr.ValidateContaining(0, a); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := tr.ValidateContaining(bitset.MaskOf(7), a); err == nil {
		t.Error("out-of-universe base accepted")
	}
	if _, err := tr.ValidateContaining(bitset.MaskOf(0), []int64{1}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestValidateContainingAgreesWithFull(t *testing.T) {
	// The containing-equations subset of ValidateAll must agree exactly.
	r := rand.New(rand.NewSource(42))
	n := 7
	full := bitset.FullMask(n)
	var records []logstore.Record
	for i := 0; i < 300; i++ {
		set := bitset.Mask(r.Int63()) & full
		if set.Empty() {
			continue
		}
		records = append(records, logstore.Record{Set: set, Count: int64(1 + r.Intn(20))})
	}
	tr, err := BuildRecords(n, records)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(200 + r.Intn(300)) // tight budgets → some violations
	}
	fullRes, err := tr.ValidateAll(a)
	if err != nil {
		t.Fatal(err)
	}
	base := bitset.MaskOf(2, 4)
	sub, err := tr.ValidateContaining(base, a)
	if err != nil {
		t.Fatal(err)
	}
	want := map[bitset.Mask]Violation{}
	for _, v := range fullRes.Violations {
		if base.SubsetOf(v.Set) {
			want[v.Set] = v
		}
	}
	if len(sub.Violations) != len(want) {
		t.Fatalf("containing violations = %d, want %d", len(sub.Violations), len(want))
	}
	for _, v := range sub.Violations {
		w, ok := want[v.Set]
		if !ok || w.CV != v.CV || w.AV != v.AV {
			t.Errorf("mismatch at %v: got %+v want %+v", v.Set, v, w)
		}
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	tr := buildTable2(t)
	recs := tr.Records()
	back, err := BuildRecords(5, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(back) {
		t.Error("Records round-trip changed the tree")
	}
	// Insertion order must not matter.
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	back2, err := BuildRecords(5, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(back2) {
		t.Error("tree depends on insertion order")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := buildTable2(t)
	cp := tr.Clone()
	if !tr.Equal(cp) {
		t.Fatal("clone differs")
	}
	if err := cp.Insert(bitset.MaskOf(0), 5); err != nil {
		t.Fatal(err)
	}
	if tr.Equal(cp) {
		t.Error("mutating clone affected original")
	}
	if tr.Count(bitset.MaskOf(0)) != 0 {
		t.Error("original mutated")
	}
}

func TestEqualDifferentN(t *testing.T) {
	a, b := MustNew(3), MustNew(4)
	if a.Equal(b) {
		t.Error("trees over different N reported equal")
	}
}

func TestStatsEmptyTree(t *testing.T) {
	tr := MustNew(5)
	st := tr.Stats()
	if st.Nodes != 0 || st.MaxDepth != 0 {
		t.Errorf("empty tree stats = %+v", st)
	}
	if st.Bytes < nodeFixedBytes {
		t.Errorf("Bytes = %d, want at least root cost", st.Bytes)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	tr := buildTable2(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(back) {
		t.Error("snapshot round-trip changed the tree")
	}
	if back.N() != 5 {
		t.Errorf("N = %d, want 5", back.N())
	}
}

func TestSnapshotCanonical(t *testing.T) {
	tr := buildTable2(t)
	var b1, b2 bytes.Buffer
	if err := tr.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Clone().Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("equal trees produced different snapshots")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("")); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":99,"n":3}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1,"n":3}` + "\nbroken\n")); err == nil {
		t.Error("corrupt record accepted")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":1,"n":3}` + "\n" + `{"set":255,"count":1}` + "\n")); err == nil {
		t.Error("out-of-universe record accepted")
	}
}

func TestBuildFromStore(t *testing.T) {
	mem := logstore.NewMem(0)
	for _, r := range table2() {
		if err := mem.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := Build(5, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(buildTable2(t)) {
		t.Error("Build(store) differs from BuildRecords")
	}
}

func TestStringRendering(t *testing.T) {
	tr := MustNew(3)
	if err := tr.Insert(bitset.MaskOf(0, 2), 7); err != nil {
		t.Fatal(err)
	}
	got := tr.String()
	want := "root\n  L1 C=0\n    L3 C=7\n"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestValidateAllStressAgainstBruteForce(t *testing.T) {
	// Cross-check every equation against a direct log scan for a random
	// mid-size instance.
	r := rand.New(rand.NewSource(99))
	n := 9
	full := bitset.FullMask(n)
	var records []logstore.Record
	for i := 0; i < 500; i++ {
		set := bitset.Mask(r.Int63()) & full
		if set.Empty() {
			continue
		}
		records = append(records, logstore.Record{Set: set, Count: int64(1 + r.Intn(25))})
	}
	tr, err := BuildRecords(n, records)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(500 + r.Intn(1500))
	}
	res, err := tr.ValidateAll(a)
	if err != nil {
		t.Fatal(err)
	}
	violated := map[bitset.Mask]bool{}
	for _, v := range res.Violations {
		violated[v.Set] = true
	}
	for s := bitset.Mask(1); ; s++ {
		cv := bruteSumSubsets(records, s)
		var av int64
		s.ForEach(func(e int) bool { av += a[e]; return true })
		if (cv > av) != violated[s] {
			t.Fatalf("equation %v: brute (cv=%d av=%d) disagrees with ValidateAll", s, cv, av)
		}
		if s == full {
			break
		}
	}
}

func TestHeadroom(t *testing.T) {
	tr := buildTable2(t)
	a := example1Aggregates()
	// For base {L2}: the binding equation is {L2} itself:
	// A=1000, C⟨{2}⟩=400 → headroom 600. Larger supersets have more slack.
	room, err := tr.Headroom(bitset.MaskOf(1), a)
	if err != nil {
		t.Fatal(err)
	}
	if room != 600 {
		t.Errorf("Headroom({2}) = %d, want 600", room)
	}
	// Issuing exactly the headroom keeps everything valid; one more breaks.
	if err := tr.Insert(bitset.MaskOf(1), room); err != nil {
		t.Fatal(err)
	}
	res, err := tr.ValidateAll(a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("issuing headroom broke validation: %v", res.Violations)
	}
	if err := tr.Insert(bitset.MaskOf(1), 1); err != nil {
		t.Fatal(err)
	}
	res, err = tr.ValidateAll(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("issuing headroom+1 must violate")
	}
	room, err = tr.Headroom(bitset.MaskOf(1), a)
	if err != nil {
		t.Fatal(err)
	}
	if room != -1 {
		t.Errorf("post-violation headroom = %d, want -1", room)
	}
}

func TestHeadroomErrors(t *testing.T) {
	tr := buildTable2(t)
	a := example1Aggregates()
	if _, err := tr.Headroom(0, a); err == nil {
		t.Error("empty base accepted")
	}
	if _, err := tr.Headroom(bitset.MaskOf(9), a); err == nil {
		t.Error("out-of-universe base accepted")
	}
	if _, err := tr.Headroom(bitset.MaskOf(0), a[:2]); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestHeadroomMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		full := bitset.FullMask(n)
		var records []logstore.Record
		for i := 0; i < r.Intn(100); i++ {
			set := bitset.Mask(r.Int63()) & full
			if set.Empty() {
				continue
			}
			records = append(records, logstore.Record{Set: set, Count: int64(1 + r.Intn(40))})
		}
		tr, err := BuildRecords(n, records)
		if err != nil {
			return false
		}
		a := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(800))
		}
		base := bitset.Mask(r.Int63()) & full
		if base.Empty() {
			base = bitset.MaskOf(r.Intn(n))
		}
		got, err := tr.Headroom(base, a)
		if err != nil {
			return false
		}
		// Brute force: min over supersets of base.
		want := int64(1) << 62
		for s := bitset.Mask(1); ; s++ {
			if base.SubsetOf(s) {
				var av int64
				s.ForEach(func(e int) bool { av += a[e]; return true })
				if room := av - bruteSumSubsets(records, s); room < want {
					want = room
				}
			}
			if s == full {
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeCombinesLogs(t *testing.T) {
	recs := table2()
	// Split Table 2 between two authorities.
	a, err := BuildRecords(5, recs[:3])
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRecords(5, recs[3:])
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := buildTable2(t)
	if !a.Equal(want) {
		t.Error("merged tree differs from single-authority tree")
	}
	// b is untouched.
	if b.Count(bitset.MaskOf(0, 1)) != 0 {
		t.Error("Merge modified the source tree")
	}
}

func TestMergeErrorsAndLaws(t *testing.T) {
	a := MustNew(4)
	b := MustNew(5)
	if err := a.Merge(b); err == nil {
		t.Error("universe mismatch accepted")
	}
	// Commutativity on random splits.
	r := rand.New(rand.NewSource(12))
	var left, right []logstore.Record
	for i := 0; i < 100; i++ {
		rec := logstore.Record{
			Set:   bitset.Mask(1 + r.Intn(255)),
			Count: int64(1 + r.Intn(30)),
		}
		if r.Intn(2) == 0 {
			left = append(left, rec)
		} else {
			right = append(right, rec)
		}
	}
	l1, _ := BuildRecords(8, left)
	r1, _ := BuildRecords(8, right)
	if err := l1.Merge(r1); err != nil {
		t.Fatal(err)
	}
	l2, _ := BuildRecords(8, left)
	r2, _ := BuildRecords(8, right)
	if err := r2.Merge(l2); err != nil {
		t.Fatal(err)
	}
	if !l1.Equal(r2) {
		t.Error("Merge is not commutative")
	}
}
