package vtree

import "repro/internal/obs"

// M holds the package's metric hooks. Every field stays nil until
// Instrument wires the package to a registry; obs metric methods are
// no-ops on nil receivers, so the uninstrumented path records nothing and
// allocates nothing. Recording sites sit at run granularity (one flatten,
// one sharded validation, one headroom query), never inside the
// per-equation loops, so instrumentation cannot perturb the O(2^N) sweep.
//
// Instrument must be called before any concurrent use of the package
// (server startup, before serving), since M is a plain package variable.
var M Metrics

// Metrics are the validation-layer signals: snapshot construction cost,
// equation throughput, and shard fan-out.
type Metrics struct {
	// Flattens / FlattenSeconds cover Tree.Flatten.
	Flattens       *obs.Counter
	FlattenSeconds *obs.Histogram
	// ValidateRuns / ValidateSeconds cover FlatTree.ValidateAllSharded.
	ValidateRuns    *obs.Counter
	ValidateSeconds *obs.Histogram
	// EquationsChecked totals evaluated validation equations across
	// sharded runs and online headroom queries — the denominator of the
	// paper's realized gain.
	EquationsChecked *obs.Counter
	// Violations totals violated equations found.
	Violations *obs.Counter
	// Shards totals mask shards fanned out by sharded runs.
	Shards *obs.Counter
}

// Instrument registers the package's metric families on reg and points
// the hooks at them. Calling it again with another registry re-points
// them.
func Instrument(reg *obs.Registry) {
	M = Metrics{
		Flattens: reg.Counter("drm_flatten_total",
			"Validation-tree flat snapshots built."),
		FlattenSeconds: reg.Histogram("drm_flatten_seconds",
			"Wall time of one Tree.Flatten.", nil),
		ValidateRuns: reg.Counter("drm_validate_runs_total",
			"Sharded validation runs over flat trees."),
		ValidateSeconds: reg.Histogram("drm_validate_seconds",
			"Wall time of one sharded validation run.", nil),
		EquationsChecked: reg.Counter("drm_validate_equations_checked_total",
			"Validation equations evaluated (sharded runs + headroom queries)."),
		Violations: reg.Counter("drm_validate_violations_total",
			"Violated validation equations found."),
		Shards: reg.Counter("drm_validate_shards_total",
			"Intra-group mask shards fanned out by sharded runs."),
	}
}
