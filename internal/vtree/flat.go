package vtree

import (
	"context"
	"math/bits"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/trace"
)

// FlatTree is an immutable structure-of-arrays snapshot of a Tree, built
// once per audit by Flatten. The pointer tree is the right shape for
// incremental inserts (Algorithm 1), but evaluating 2^{N_k}−1 equations
// against it chases one heap pointer per visited node; the flat layout
// stores the same prefix tree as four parallel slices, so the pruned
// SumSubsets walk touches contiguous cache lines instead.
//
// Layout: nodes are numbered in breadth-first order with the root sentinel
// at slot 0 (label −1, count 0). The children of node i occupy the
// contiguous index range [childStart[i], childEnd[i]) and appear in
// ascending label order — the invariant the pruned walk's early break
// relies on, inherited directly from Node.Children ordering.
type FlatTree struct {
	n          int
	label      []int32
	count      []int64
	childStart []int32
	childEnd   []int32
}

// Flatten snapshots the tree into its structure-of-arrays form. The
// snapshot is immutable and safe for concurrent readers; later Inserts
// into t are not reflected (flatten again after mutating).
func (t *Tree) Flatten() *FlatTree {
	start := time.Now()
	total := 1
	var countNodes func(n *Node)
	countNodes = func(n *Node) {
		total += len(n.Children)
		for _, c := range n.Children {
			countNodes(c)
		}
	}
	countNodes(t.root)

	f := &FlatTree{
		n:          t.n,
		label:      make([]int32, total),
		count:      make([]int64, total),
		childStart: make([]int32, total),
		childEnd:   make([]int32, total),
	}
	f.label[0] = -1
	queue := make([]*Node, 1, total)
	queue[0] = t.root
	next := int32(1)
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		idx := int32(head)
		f.count[idx] = n.C
		f.childStart[idx] = next
		for _, c := range n.Children {
			f.label[next] = int32(c.L)
			queue = append(queue, c)
			next++
		}
		f.childEnd[idx] = next
	}
	M.Flattens.Inc()
	M.FlattenSeconds.ObserveSince(start)
	return f
}

// N returns the number of license indexes the snapshot spans.
func (f *FlatTree) N() int { return f.n }

// Nodes returns the node count excluding the root sentinel.
func (f *FlatTree) Nodes() int { return len(f.label) - 1 }

// SumSubsets returns C⟨S⟩ exactly like Tree.SumSubsets, walking the flat
// arrays instead of the pointer graph. Results are bit-identical: both
// walks sum the same node counts, and int64 addition is order-insensitive.
func (f *FlatTree) SumSubsets(s bitset.Mask) int64 {
	if s.Empty() {
		return 0
	}
	return f.sumSubsets(0, uint64(s), int32(s.Max()))
}

func (f *FlatTree) sumSubsets(idx int32, s uint64, maxElem int32) int64 {
	var total int64
	for i := f.childStart[idx]; i < f.childEnd[idx]; i++ {
		l := f.label[i]
		if l > maxElem {
			break
		}
		if s&(1<<uint(l)) == 0 {
			continue
		}
		total += f.count[i]
		if f.childStart[i] < f.childEnd[i] {
			total += f.sumSubsets(i, s, maxElem)
		}
	}
	return total
}

// ValidateAll runs Algorithm 2 over the snapshot, serially. It is
// ValidateAllSharded with a single worker.
func (f *FlatTree) ValidateAll(a []int64) (Result, error) {
	return f.ValidateAllSharded(a, 1)
}

// ctxPollMasks is how many masks a shard walker evaluates between
// context polls. Polling per mask would put a branch-plus-atomic-load in
// the innermost loop; every 4096 masks bounds cancellation latency to a
// few milliseconds of equation work while keeping the amortised overhead
// unmeasurable (the ablation benchmark budgets ≤2%).
const ctxPollMasks = 4096

// ShardCount returns the number of contiguous mask shards a sharded
// validation over n licenses fans out to under the given worker budget:
// the smallest power of two >= workers, capped at 2^n so every shard
// spans at least one mask. ValidateAllSharded uses exactly this count,
// and audit run-stats reuse it to report shards without re-running.
func ShardCount(n, workers int) int {
	if workers < 1 {
		workers = 1
	}
	shardBits := bits.Len(uint(workers - 1))
	if shardBits > n {
		shardBits = n
	}
	return 1 << uint(shardBits)
}

// ValidateAllSharded evaluates all 2^N−1 validation equations with the
// subset space partitioned across workers. The mask range [1, 2^N) is
// split by the top ⌈log₂ workers⌉ bits into equal contiguous shards, so
// each worker enumerates its own mask interval with zero coordination:
// no shared counters, no channel per equation, one violation buffer per
// shard merged and sorted at the end.
//
// Within a shard the RHS A[S] is maintained incrementally: stepping from
// mask m to m+1 clears m's trailing ones and sets one higher bit, so the
// running aggregate sum is patched from that delta instead of re-summed
// with a full bit iteration per equation — amortised O(1) budget updates
// across the 2^N sweep.
//
// The report is identical to ValidateAll's on the same snapshot: same
// equation count, same violations in ascending set order.
func (f *FlatTree) ValidateAllSharded(a []int64, workers int) (Result, error) {
	return f.ValidateAllShardedContext(context.Background(), a, workers)
}

// ValidateAllShardedContext is ValidateAllSharded under a context. Shard
// walkers poll ctx every ctxPollMasks masks; on cancellation or deadline
// expiry the partial Result — every equation evaluated so far, with any
// violations found — is returned together with a KindCancelled error
// wrapping ctx.Err(). Partial results are sound but incomplete: reported
// violations are real, Equations counts exactly the masks scanned.
func (f *FlatTree) ValidateAllShardedContext(ctx context.Context, a []int64, workers int) (Result, error) {
	if len(a) != f.n {
		return Result{}, drmerr.New(drmerr.KindCorpusMismatch, "vtree.validate",
			"vtree: aggregate array has %d entries, want %d", len(a), f.n)
	}
	if workers < 1 {
		return Result{}, drmerr.New(drmerr.KindInvalidInput, "vtree.validate",
			"vtree: workers = %d, want >= 1", workers)
	}
	if f.n == 0 {
		return Result{}, nil
	}
	start := time.Now()

	shards := ShardCount(f.n, workers)
	width := uint(f.n - bits.Len(uint(shards-1))) // masks per shard = 2^width

	results := make([]Result, shards)
	errs := make([]error, shards)
	if shards == 1 {
		sctx, sp := trace.Start(ctx, "vtree.shard")
		results[0], errs[0] = f.validateRange(sctx, a, 1, uint64(bitset.FullMask(f.n)))
		if sp != nil {
			sp.SetInt("shard", 0)
			sp.SetInt("equations", results[0].Equations)
			sp.Fail(errs[0])
			sp.End()
		}
	} else {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			first := uint64(s) << width
			last := first | (uint64(1)<<width - 1)
			if first == 0 {
				first = 1 // the empty set is not an equation
			}
			if first > last {
				continue // shard 0 spanned only the empty set
			}
			wg.Add(1)
			go func(s int, first, last uint64) {
				defer wg.Done()
				sctx, sp := trace.Start(ctx, "vtree.shard")
				results[s], errs[s] = f.validateRange(sctx, a, first, last)
				if sp != nil {
					sp.SetInt("shard", int64(s))
					sp.SetInt("equations", results[s].Equations)
					sp.Fail(errs[s])
					sp.End()
				}
			}(s, first, last)
		}
		wg.Wait()
	}

	var res Result
	var cut error
	for s, r := range results {
		res.Equations += r.Equations
		res.Violations = append(res.Violations, r.Violations...)
		if errs[s] != nil && cut == nil {
			cut = errs[s]
		}
	}
	// Shards cover ascending mask intervals and emit violations in mask
	// order, so the concatenation is already sorted; sort anyway to keep
	// the merge's contract independent of the shard layout.
	sort.Slice(res.Violations, func(i, j int) bool {
		return res.Violations[i].Set < res.Violations[j].Set
	})
	M.ValidateRuns.Inc()
	M.ValidateSeconds.ObserveSince(start)
	M.EquationsChecked.Add(res.Equations)
	M.Violations.Add(int64(len(res.Violations)))
	M.Shards.Add(int64(shards))
	return res, cut
}

// validateRange evaluates the equations for masks [first, last], both
// inclusive, with an incrementally maintained RHS. It polls ctx every
// ctxPollMasks masks and returns the partial result with a cancellation
// error when the context fires.
func (f *FlatTree) validateRange(ctx context.Context, a []int64, first, last uint64) (Result, error) {
	var res Result
	// Seed the running aggregate for the first mask with one direct sum.
	var av int64
	for w := first; w != 0; w &= w - 1 {
		av += a[bits.TrailingZeros64(w)]
	}
	poll := first // poll at entry, then every ctxPollMasks masks
	for m := first; ; m++ {
		if m >= poll {
			if err := ctx.Err(); err != nil {
				return res, drmerr.Wrap(drmerr.KindCancelled, "vtree.validate", err)
			}
			poll = m + ctxPollMasks
		}
		cv := f.sumSubsets(0, m, int32(63-bits.LeadingZeros64(m)))
		res.Equations++
		if cv > av {
			res.Violations = append(res.Violations, Violation{Set: bitset.Mask(m), CV: cv, AV: av})
		}
		if m == last {
			return res, nil
		}
		// m → m+1 clears the trailing ones and sets the next bit up.
		next := m + 1
		for w := m &^ next; w != 0; w &= w - 1 {
			av -= a[bits.TrailingZeros64(w)]
		}
		av += a[bits.TrailingZeros64(next&^m)]
	}
}
