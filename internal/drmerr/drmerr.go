// Package drmerr defines the typed error taxonomy of the validation
// pipeline. Every failure that crosses a package boundary — from log
// replay through tree division and equation evaluation up to the HTTP
// surface — is classified by a Kind, so callers dispatch with errors.Is
// against the kind sentinels (or errors.As against *Error) instead of
// matching message strings, and the server maps kinds to HTTP statuses
// mechanically.
//
// The taxonomy mirrors the failure modes the paper's model admits:
//
//   - KindViolation — an aggregate validation equation does not hold
//     (eq. 1's C⟨S⟩ > A[S]), or an online issuance would make one fail;
//   - KindInstanceInvalid — an issuance rectangle outside every
//     redistribution license (fig 2's L_U^2);
//   - KindCorpusMismatch — corpus, grouping, and aggregate shapes
//     disagree (caller wiring bug, not corrupt data);
//   - KindCrossGroup — a log record's belongs-to set spans overlap
//     groups, impossible under Corollary 1.1 for instance-validated
//     logs, so the log is corrupt or was never instance-validated;
//   - KindStoreCorrupt — the issuance log cannot be decoded or holds
//     structurally invalid records;
//   - KindCancelled — work abandoned because the caller's context was
//     cancelled before any partial result is worth returning;
//   - KindIncomplete — a deadline-bounded audit ran out of time: the
//     verified-so-far report is returned alongside the error;
//   - KindInvalidInput / KindNotFound — argument validation failures
//     and missing-entity lookups.
package drmerr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
)

// Kind classifies a pipeline failure for programmatic dispatch.
type Kind int

const (
	// KindUnknown is the zero Kind: an error outside the taxonomy.
	KindUnknown Kind = iota
	// KindViolation marks aggregate-constraint violations.
	KindViolation
	// KindInstanceInvalid marks issuances failing instance validation.
	KindInstanceInvalid
	// KindCorpusMismatch marks corpus/grouping/aggregate shape mismatches.
	KindCorpusMismatch
	// KindCrossGroup marks records whose belongs-to set spans groups.
	KindCrossGroup
	// KindStoreCorrupt marks undecodable or invalid persisted state.
	KindStoreCorrupt
	// KindCancelled marks work abandoned on context cancellation.
	KindCancelled
	// KindIncomplete marks deadline-bounded audits cut short; partial
	// results accompany the error.
	KindIncomplete
	// KindInvalidInput marks argument validation failures.
	KindInvalidInput
	// KindNotFound marks missing-entity lookups.
	KindNotFound
	// KindHeadroomDivergence marks an admission cache whose incremental
	// slack state disagrees with the slacks recomputed from the issuance
	// log — an invariant failure surfaced by the audit-as-verifier pass.
	KindHeadroomDivergence
	// KindUnavailable marks requests refused because the server cannot
	// serve them right now (graceful-shutdown drain window); retry
	// against another instance.
	KindUnavailable
	// KindLedgerUnsound marks lifecycle records that would break ledger
	// soundness: a revoke or expire whose count exceeds the set's net
	// outstanding credits. Like KindViolation it is a well-formed request
	// the current ledger state refuses, so it maps to 409.
	KindLedgerUnsound
	// KindReadOnly marks mutations refused because this instance is a
	// replication follower: writes must go to the leader. Maps to 403.
	KindReadOnly
	// KindReplicaLag marks a follower whose replication lag exceeds its
	// configured bound; load balancers should stop routing reads to it
	// until it catches up. Maps to 503.
	KindReplicaLag
)

// String returns the kind's wire name (the "kind" field of HTTP error
// bodies and structured logs).
func (k Kind) String() string {
	switch k {
	case KindViolation:
		return "violation"
	case KindInstanceInvalid:
		return "instance_invalid"
	case KindCorpusMismatch:
		return "corpus_mismatch"
	case KindCrossGroup:
		return "cross_group"
	case KindStoreCorrupt:
		return "store_corrupt"
	case KindCancelled:
		return "cancelled"
	case KindIncomplete:
		return "incomplete"
	case KindInvalidInput:
		return "invalid_input"
	case KindNotFound:
		return "not_found"
	case KindHeadroomDivergence:
		return "headroom_divergence"
	case KindUnavailable:
		return "unavailable"
	case KindLedgerUnsound:
		return "ledger_unsound"
	case KindReadOnly:
		return "read_only"
	case KindReplicaLag:
		return "replica_lag"
	default:
		return "unknown"
	}
}

// sentinel is a comparable kind marker. Package-level sentinels below are
// the targets callers pass to errors.Is; *Error values of the same kind
// match them without being identical.
type sentinel struct {
	kind Kind
	msg  string
}

func (s *sentinel) Error() string { return s.msg }

// Is matches other sentinels of the same kind, so package-local sentinels
// (e.g. engine.ErrInstanceInvalid) satisfy errors.Is against the package
// sentinels here and vice versa.
func (s *sentinel) Is(target error) bool {
	t, ok := target.(*sentinel)
	return ok && t.kind == s.kind
}

// Sentinel creates a named kind-carrying sentinel error. Packages use it
// for their own public error values (e.g. engine.ErrInstanceInvalid) so
// wrapping with %w preserves both the identity match and the kind.
func Sentinel(kind Kind, msg string) error { return &sentinel{kind: kind, msg: msg} }

// Kind sentinels: errors.Is(err, drmerr.ErrX) holds for any error in
// err's chain whose kind matches, however it was constructed.
var (
	ErrViolation       = Sentinel(KindViolation, "drm: aggregate constraint violated")
	ErrInstanceInvalid = Sentinel(KindInstanceInvalid, "drm: instance validation failed")
	ErrCorpusMismatch  = Sentinel(KindCorpusMismatch, "drm: corpus shape mismatch")
	ErrCrossGroup      = Sentinel(KindCrossGroup, "drm: record crosses overlap groups")
	ErrStoreCorrupt    = Sentinel(KindStoreCorrupt, "drm: store corrupt")
	ErrCancelled       = Sentinel(KindCancelled, "drm: operation cancelled")
	ErrAuditIncomplete = Sentinel(KindIncomplete, "drm: audit incomplete")
	ErrInvalidInput    = Sentinel(KindInvalidInput, "drm: invalid input")
	ErrNotFound        = Sentinel(KindNotFound, "drm: not found")
	ErrHeadroomDiverge = Sentinel(KindHeadroomDivergence, "drm: headroom cache diverges from log")
	ErrUnavailable     = Sentinel(KindUnavailable, "drm: service unavailable")
	ErrLedgerUnsound   = Sentinel(KindLedgerUnsound, "drm: lifecycle ledger unsound")
	ErrReadOnly        = Sentinel(KindReadOnly, "drm: instance is a read-only replica")
	ErrReplicaLag      = Sentinel(KindReplicaLag, "drm: replica lag exceeds bound")
)

// Error is a classified pipeline error: the Kind for dispatch, the
// operation that failed (package-qualified, e.g. "core.divide"), a
// human-readable message, and an optional wrapped cause.
type Error struct {
	Kind Kind
	Op   string
	Msg  string
	Err  error
}

// Error implements error.
func (e *Error) Error() string {
	switch {
	case e.Msg != "" && e.Err != nil:
		return e.Msg + ": " + e.Err.Error()
	case e.Msg != "":
		return e.Msg
	case e.Err != nil:
		return e.Op + ": " + e.Err.Error()
	default:
		return e.Op + ": " + e.Kind.String()
	}
}

// Unwrap exposes the cause, so context errors (context.Canceled,
// context.DeadlineExceeded) remain matchable through the chain.
func (e *Error) Unwrap() error { return e.Err }

// Is matches the kind sentinels: errors.Is(e, ErrCrossGroup) is true iff
// e.Kind == KindCrossGroup, regardless of how e was built.
func (e *Error) Is(target error) bool {
	if s, ok := target.(*sentinel); ok {
		return s.kind == e.Kind
	}
	return false
}

// New builds a classified error with a formatted message and no cause.
func New(kind Kind, op, format string, args ...any) error {
	return &Error{Kind: kind, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// Wrap classifies an existing error; nil stays nil. If err is already an
// *Error of the same kind it is returned unchanged, so layers can wrap
// defensively without stacking duplicate frames.
func Wrap(kind Kind, op string, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) && e.Kind == kind {
		return err
	}
	return &Error{Kind: kind, Op: op, Err: err}
}

// Wrapf classifies an existing error with a formatted message prefix;
// nil stays nil.
func Wrapf(kind Kind, op string, err error, format string, args ...any) error {
	if err == nil {
		return nil
	}
	return &Error{Kind: kind, Op: op, Msg: fmt.Sprintf(format, args...), Err: err}
}

// KindOf returns the kind of the outermost classified error in err's
// chain. Bare context errors classify as cancelled/incomplete so callers
// can pass raw ctx.Err() values through the same dispatch.
func KindOf(err error) Kind {
	for ; err != nil; err = errors.Unwrap(err) {
		switch v := err.(type) {
		case *Error:
			return v.Kind
		case *sentinel:
			return v.kind
		}
		if err == context.Canceled {
			return KindCancelled
		}
		if err == context.DeadlineExceeded {
			return KindIncomplete
		}
	}
	return KindUnknown
}

// Incomplete builds the audit-incomplete error for a run cut short by
// ctx: errors.Is matches ErrAuditIncomplete, and the context's own error
// stays matchable (context.Canceled vs context.DeadlineExceeded) so the
// HTTP layer can distinguish client cancellation from deadline expiry.
func Incomplete(op string, cause error) error {
	return &Error{Kind: KindIncomplete, Op: op,
		Msg: op + ": audit incomplete, returning verified-so-far results", Err: cause}
}

// IsCancellation reports whether err means "the context cut this short"
// in any form: a cancelled/incomplete kind or a bare context error.
func IsCancellation(err error) bool {
	switch KindOf(err) {
	case KindCancelled, KindIncomplete:
		return true
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// HTTPStatus maps an error to the taxonomy's HTTP status:
//
//	violation         → 409 Conflict
//	ledger unsound    → 409 Conflict
//	instance invalid  → 422 Unprocessable Entity
//	corpus mismatch   → 422 Unprocessable Entity
//	cross group       → 422 Unprocessable Entity
//	invalid input     → 400 Bad Request
//	not found         → 404 Not Found
//	cancelled         → 499 (client closed request)
//	read only         → 403 Forbidden (writes belong on the leader)
//	store corrupt     → 503 Service Unavailable
//	unavailable       → 503 Service Unavailable (drain window)
//	replica lag       → 503 Service Unavailable (follower behind bound)
//	incomplete        → 504 Gateway Timeout
//	headroom diverged → 500 Internal Server Error (integrity failure)
//	anything else     → 500 Internal Server Error
func HTTPStatus(err error) int {
	switch KindOf(err) {
	case KindViolation, KindLedgerUnsound:
		return http.StatusConflict
	case KindInstanceInvalid, KindCorpusMismatch, KindCrossGroup:
		return http.StatusUnprocessableEntity
	case KindInvalidInput:
		return http.StatusBadRequest
	case KindNotFound:
		return http.StatusNotFound
	case KindCancelled:
		return StatusClientClosedRequest
	case KindReadOnly:
		return http.StatusForbidden
	case KindStoreCorrupt, KindUnavailable, KindReplicaLag:
		return http.StatusServiceUnavailable
	case KindIncomplete:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// StatusClientClosedRequest is nginx's non-standard 499, the
// conventional status for requests abandoned by the client.
const StatusClientClosedRequest = 499
