package drmerr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindUnknown:         "unknown",
		KindViolation:       "violation",
		KindInstanceInvalid: "instance_invalid",
		KindCorpusMismatch:  "corpus_mismatch",
		KindCrossGroup:      "cross_group",
		KindStoreCorrupt:    "store_corrupt",
		KindCancelled:       "cancelled",
		KindIncomplete:      "incomplete",
		KindInvalidInput:    "invalid_input",
		KindNotFound:        "not_found",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestErrorsIsMatchesByKind(t *testing.T) {
	err := New(KindCrossGroup, "core.route", "record %v crosses groups", 3)
	if !errors.Is(err, ErrCrossGroup) {
		t.Error("New(KindCrossGroup) does not match ErrCrossGroup")
	}
	if errors.Is(err, ErrViolation) {
		t.Error("cross-group error matches ErrViolation")
	}
	// Wrapping with %w keeps the kind matchable.
	wrapped := fmt.Errorf("outer: %w", err)
	if !errors.Is(wrapped, ErrCrossGroup) {
		t.Error("kind lost through fmt.Errorf wrapping")
	}
	// errors.As recovers the typed error with Op intact.
	var e *Error
	if !errors.As(wrapped, &e) || e.Op != "core.route" {
		t.Errorf("errors.As = %+v", e)
	}
}

func TestSentinelCrossMatch(t *testing.T) {
	// A package-local sentinel of the same kind matches the taxonomy
	// sentinel (and vice versa), so engine.ErrInstanceInvalid callers and
	// drmerr.ErrInstanceInvalid callers agree.
	local := Sentinel(KindInstanceInvalid, "engine: issuance fails instance-based validation")
	if !errors.Is(local, ErrInstanceInvalid) {
		t.Error("local sentinel does not match taxonomy sentinel")
	}
	wrapped := fmt.Errorf("%w: rect outside every license", local)
	if !errors.Is(wrapped, local) {
		t.Error("identity match lost through wrapping")
	}
	if !errors.Is(wrapped, ErrInstanceInvalid) {
		t.Error("kind match lost through wrapping")
	}
}

func TestWrapIsIdempotentPerKind(t *testing.T) {
	base := New(KindStoreCorrupt, "logstore.read", "bad line")
	if again := Wrap(KindStoreCorrupt, "catalog.load", base); again != base {
		t.Error("same-kind Wrap stacked a duplicate frame")
	}
	other := Wrap(KindIncomplete, "core.audit", base)
	if other == base || KindOf(other) != KindIncomplete {
		t.Error("cross-kind Wrap did not reclassify")
	}
	if Wrap(KindViolation, "x", nil) != nil {
		t.Error("Wrap(nil) != nil")
	}
}

func TestKindOfContextErrors(t *testing.T) {
	if KindOf(context.Canceled) != KindCancelled {
		t.Error("bare context.Canceled not classified")
	}
	if KindOf(context.DeadlineExceeded) != KindIncomplete {
		t.Error("bare context.DeadlineExceeded not classified")
	}
	if KindOf(errors.New("plain")) != KindUnknown {
		t.Error("plain error classified")
	}
	if KindOf(nil) != KindUnknown {
		t.Error("nil classified")
	}
	// The chain walk finds a kind behind fmt wrapping.
	deep := fmt.Errorf("a: %w", fmt.Errorf("b: %w", ErrNotFound))
	if KindOf(deep) != KindNotFound {
		t.Errorf("KindOf(deep) = %v", KindOf(deep))
	}
}

func TestIncompletePreservesCause(t *testing.T) {
	err := Incomplete("core.audit", context.DeadlineExceeded)
	if !errors.Is(err, ErrAuditIncomplete) {
		t.Error("Incomplete does not match ErrAuditIncomplete")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("deadline cause lost")
	}
	if !IsCancellation(err) {
		t.Error("IsCancellation(incomplete) = false")
	}
	if IsCancellation(New(KindViolation, "x", "v")) {
		t.Error("violation counted as cancellation")
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{New(KindViolation, "op", "v"), http.StatusConflict},
		{New(KindInstanceInvalid, "op", "v"), http.StatusUnprocessableEntity},
		{New(KindCorpusMismatch, "op", "v"), http.StatusUnprocessableEntity},
		{New(KindCrossGroup, "op", "v"), http.StatusUnprocessableEntity},
		{New(KindInvalidInput, "op", "v"), http.StatusBadRequest},
		{New(KindNotFound, "op", "v"), http.StatusNotFound},
		{New(KindStoreCorrupt, "op", "v"), http.StatusServiceUnavailable},
		{Incomplete("op", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{Wrap(KindCancelled, "op", context.Canceled), StatusClientClosedRequest},
		{errors.New("plain"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
