package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/drmerr"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/trace"
)

// auditSession is the shared lifecycle of one audit run, unifying what
// Auditor and IncrementalAuditor used to duplicate: the flatten/validate
// phase timing, the run-stats assembly, and the metric publication. The
// two auditors differ only in which trees they hand to run (all of them
// vs the dirty subset) and in how they fold the result back into their
// own state (timings vs the per-group cache).
type auditSession struct {
	licenses   int
	logRecords int
	grouping   overlap.Grouping
	workers    int
	// batch marks a full-pipeline audit (log replay included), which is
	// the only kind with a build phase to observe.
	batch bool

	flatten  time.Duration
	validate time.Duration
}

func newAuditSession(licenses, logRecords int, gr overlap.Grouping, workers int) *auditSession {
	if workers < 1 {
		workers = 1
	}
	return &auditSession{licenses: licenses, logRecords: logRecords, grouping: gr, workers: workers}
}

// run flattens and validates trees under ctx, recording the two phase
// durations. The returned report and error follow
// ValidateParallelContext's contract: on cancellation or deadline expiry
// the verified-so-far report comes back with an error matching
// drmerr.ErrAuditIncomplete.
func (s *auditSession) run(ctx context.Context, trees []*GroupTree) (Report, error) {
	start := time.Now()
	_, fsp := trace.Start(ctx, "core.flatten")
	for _, gt := range trees {
		if ctx.Err() != nil {
			break // ValidateParallelContext reports the cancellation
		}
		gt.Flat()
	}
	s.flatten = time.Since(start)
	if fsp != nil {
		fsp.SetInt("groups", int64(len(trees)))
		fsp.End()
	}

	start = time.Now()
	vctx, vsp := trace.Start(ctx, "core.validate")
	rep, err := ValidateParallelContext(vctx, trees, s.workers)
	s.validate = time.Since(start)
	if vsp != nil {
		vsp.SetInt("groups", int64(len(trees)))
		vsp.SetInt("workers", int64(s.workers))
		vsp.Fail(err)
		vsp.End()
	}
	return rep, err
}

// incomplete reports whether err is the audit-incomplete outcome (as
// opposed to a genuine failure, which callers propagate without stats).
func incomplete(err error) bool { return errors.Is(err, drmerr.ErrAuditIncomplete) }

// finish assembles the typed run record and publishes the audit-layer
// metrics. checked is the number of equations evaluated this run;
// revalidated counts groups whose full equation space was re-verified,
// hits the clean groups served from cache. An incomplete run (cut short
// by its context) additionally bumps the incomplete-audit counter.
func (s *auditSession) finish(rep Report, checked int64, shards, revalidated, hits int,
	phases obs.AuditPhases, wasIncomplete bool) obs.AuditStats {
	st := buildAuditStats(s.licenses, s.logRecords, s.grouping, rep,
		checked, shards, revalidated, hits, phases)
	st.Incomplete = wasIncomplete
	M.AuditRuns.Inc()
	if wasIncomplete {
		M.AuditsIncomplete.Inc()
	}
	M.GroupsRevalidated.Add(int64(revalidated))
	M.CacheMisses.Add(int64(revalidated))
	M.CacheHits.Add(int64(hits))
	M.Gain.Set(st.GainRealized)
	if s.batch {
		M.PhaseBuild.Observe(time.Duration(phases.Build).Seconds())
	}
	M.PhaseOverlap.Observe(time.Duration(phases.Overlap).Seconds())
	M.PhaseDivide.Observe(time.Duration(phases.Divide).Seconds())
	M.PhaseFlatten.Observe(time.Duration(phases.Flatten).Seconds())
	M.PhaseValidate.Observe(time.Duration(phases.Validate).Seconds())
	return st
}
