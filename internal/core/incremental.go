package core

import (
	"context"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

// IncrementalAuditor maintains the divided per-group validation trees as
// issuance records stream in, instead of rebuilding and re-dividing on
// every audit the way the batch Auditor does. It extends the paper's
// offline design in two directions the authors leave open:
//
//   - records are routed straight into their group's tree (the group is
//     determined by any member of the belongs-to set — Corollary 1.1
//     guarantees all members agree), so an audit is always ready;
//   - audits are dirty-group incremental: only groups that received
//     records (or budget top-ups) since the last audit are revalidated,
//     and clean groups reuse their cached vtree.Result — sound because
//     groups are independent (Theorem 2), so nothing outside a group can
//     change its equations' truth;
//   - corpus growth is handled by Rebase, which regroups and re-divides
//     using only the trees' compacted records, never the raw log.
//
// IncrementalAuditor is not safe for concurrent use.
type IncrementalAuditor struct {
	corpus   *license.Corpus
	grouping overlap.Grouping
	trees    []*GroupTree
	// groupOf and position map a global license index to its group and
	// its local index within that group's tree.
	groupOf  []int
	position []int
	records  int

	// Workers bounds the parallelism of one Audit (two-level: groups ×
	// intra-group shards, exactly like ValidateParallel). 1, the default,
	// validates serially.
	Workers int

	// dirty[k] marks group k as having changed since its cached result;
	// cached[k] is valid iff !dirty[k].
	dirty  []bool
	cached []vtree.Result

	// overlapTime/divideTime are the last rebuild's grouping and
	// tree-construction durations, reported in run stats.
	overlapTime time.Duration
	divideTime  time.Duration
	stats       obs.AuditStats
}

// NewIncrementalAuditor prepares empty per-group trees for the corpus.
func NewIncrementalAuditor(corpus *license.Corpus) (*IncrementalAuditor, error) {
	ia := &IncrementalAuditor{corpus: corpus, Workers: 1}
	if err := ia.rebuild(nil); err != nil {
		return nil, err
	}
	return ia, nil
}

// rebuild recomputes grouping and divided trees, replaying any existing
// records (given with GLOBAL masks).
func (ia *IncrementalAuditor) rebuild(records []logstore.Record) error {
	n := ia.corpus.Len()
	start := time.Now()
	ia.grouping = overlap.GroupsOf(ia.corpus)
	ia.overlapTime = time.Since(start)
	start = time.Now()
	defer func() { ia.divideTime = time.Since(start) }()
	ia.groupOf = make([]int, n)
	ia.position = make([]int, n)
	ia.trees = ia.trees[:0]
	agg := ia.corpus.Aggregates()
	for k, g := range ia.grouping.Groups {
		gt := &GroupTree{
			Group:         g,
			Tree:          vtree.MustNew(g.Size),
			Aggregates:    make([]int64, 0, g.Size),
			localToGlobal: make([]int, 0, g.Size),
		}
		p := 0
		g.Members.ForEach(func(j int) bool {
			ia.groupOf[j] = k
			ia.position[j] = p
			gt.Aggregates = append(gt.Aggregates, agg[j])
			gt.localToGlobal = append(gt.localToGlobal, j)
			p++
			return true
		})
		ia.trees = append(ia.trees, gt)
	}
	ia.dirty = make([]bool, len(ia.trees))
	for k := range ia.dirty {
		ia.dirty[k] = true // nothing cached yet
	}
	ia.cached = make([]vtree.Result, len(ia.trees))
	ia.records = 0
	for _, r := range records {
		if err := ia.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// route translates a global belongs-to mask into (group, local mask). It
// fails if the mask spans groups (impossible for instance-validated logs).
func (ia *IncrementalAuditor) route(set bitset.Mask) (int, bitset.Mask, error) {
	if set.Empty() {
		return 0, 0, drmerr.New(drmerr.KindInvalidInput, "core.route", "core: empty belongs-to set")
	}
	if !set.SubsetOf(bitset.FullMask(ia.corpus.Len())) {
		return 0, 0, drmerr.New(drmerr.KindCorpusMismatch, "core.route",
			"core: set %v outside corpus of %d licenses", set, ia.corpus.Len())
	}
	k := ia.groupOf[set.Min()]
	if !set.SubsetOf(ia.grouping.Groups[k].Members) {
		return 0, 0, drmerr.New(drmerr.KindCrossGroup, "core.route",
			"core: record %v crosses groups (Corollary 1.1 violation)", set)
	}
	var local bitset.Mask
	set.ForEach(func(j int) bool {
		local = local.With(ia.position[j])
		return true
	})
	return k, local, nil
}

// Append routes one lifecycle record into its group tree, applying its
// signed effective count (issues add, revokes/expires subtract,
// transfers are aggregate-neutral but still dirty the group — the
// cumulative transfer totals some policies audit changed).
func (ia *IncrementalAuditor) Append(r logstore.Record) error {
	k, local, err := ia.route(r.Set)
	if err != nil {
		return err
	}
	if err := ia.trees[k].Tree.Add(local, r.Effective()); err != nil {
		return err
	}
	ia.trees[k].invalidateFlat()
	ia.dirty[k] = true
	ia.records++
	return nil
}

// Records returns the number of records appended since the last rebuild.
func (ia *IncrementalAuditor) Records() int { return ia.records }

// Grouping returns the current grouping.
func (ia *IncrementalAuditor) Grouping() overlap.Grouping { return ia.grouping }

// Trees returns the live per-group trees (read-only use).
func (ia *IncrementalAuditor) Trees() []*GroupTree { return ia.trees }

// Gain returns eq. 3 for the current grouping.
func (ia *IncrementalAuditor) Gain() float64 { return Gain(ia.grouping) }

// DirtyGroups returns the indexes of groups that changed since their last
// validation — the set the next Audit will actually revalidate.
func (ia *IncrementalAuditor) DirtyGroups() []int {
	var out []int
	for k, d := range ia.dirty {
		if d {
			out = append(out, k)
		}
	}
	return out
}

// Audit validates the dirty group trees, reuses cached results for clean
// ones, and merges the report (global masks). A fully clean auditor costs
// only the merge; a fully dirty one costs the same as a batch Validate.
// Workers bounds the parallelism across the dirty groups and their
// intra-group shards. It is AuditContext with a background context.
func (ia *IncrementalAuditor) Audit() (Report, error) {
	return ia.AuditContext(context.Background())
}

// AuditContext is Audit under a context. A run cut short by cancellation
// or deadline expiry returns the verified-so-far report with an error
// matching drmerr.ErrAuditIncomplete; dirty groups whose walk did not
// finish STAY dirty (their partial result is reported but never cached),
// so a later audit with a fresh context completes exactly the missing
// work and produces the same report an uninterrupted audit would have.
func (ia *IncrementalAuditor) AuditContext(ctx context.Context) (Report, error) {
	var dirtyTrees []*GroupTree
	var dirtyIdx []int
	for k, gt := range ia.trees {
		if ia.dirty[k] {
			dirtyTrees = append(dirtyTrees, gt)
			dirtyIdx = append(dirtyIdx, k)
		}
	}
	s := newAuditSession(ia.corpus.Len(), ia.records, ia.grouping, ia.Workers)
	var checked int64
	var wasIncomplete, ran bool
	var revalidated int
	results := make([]vtree.Result, len(ia.trees))
	copy(results, ia.cached)
	if len(dirtyTrees) > 0 {
		ran = true
		rep, err := s.run(ctx, dirtyTrees)
		if err != nil && !incomplete(err) {
			return Report{}, err
		}
		wasIncomplete = err != nil
		checked = rep.Equations
		for i, k := range dirtyIdx {
			// Only a fully verified group may be cached and marked
			// clean; an interrupted walk's partial result still feeds
			// this merge but is recomputed next audit.
			if rep.Completeness[i].Complete {
				ia.cached[k] = rep.PerGroup[i]
				ia.dirty[k] = false
				revalidated++
			}
			results[k] = rep.PerGroup[i]
		}
	}
	merged := merge(ia.trees, results)

	hits := len(ia.trees) - len(dirtyTrees)
	var flatten, validate time.Duration
	if ran {
		flatten, validate = s.flatten, s.validate
	}
	ia.stats = s.finish(merged, checked, shardsUsed(dirtyTrees, s.workers),
		revalidated, hits,
		obs.AuditPhases{
			Overlap:  ia.overlapTime.Nanoseconds(),
			Divide:   ia.divideTime.Nanoseconds(),
			Flatten:  flatten.Nanoseconds(),
			Validate: validate.Nanoseconds(),
		}, wasIncomplete)
	if wasIncomplete {
		return merged, drmerr.Incomplete("core.audit", ctx.Err())
	}
	return merged, nil
}

// LastStats returns the typed run record of the last Audit (zero before
// the first). A fully clean auditor reports zero equations checked
// (GainRealized is 0 by convention when nothing ran); GroupsRevalidated
// and CacheHits show where the work went.
func (ia *IncrementalAuditor) LastStats() obs.AuditStats { return ia.stats }

// AuditGroup validates a single group — the cheap path when only one
// group received new records since the last audit. A clean group returns
// its cached result without re-walking the tree.
func (ia *IncrementalAuditor) AuditGroup(k int) (vtree.Result, error) {
	return ia.AuditGroupContext(context.Background(), k)
}

// AuditGroupContext is AuditGroup under a context. A walk cut short
// returns the partial result with an ErrAuditIncomplete-matching error;
// the group stays dirty so the next call redoes it in full.
func (ia *IncrementalAuditor) AuditGroupContext(ctx context.Context, k int) (vtree.Result, error) {
	if k < 0 || k >= len(ia.trees) {
		return vtree.Result{}, drmerr.New(drmerr.KindNotFound, "core.audit",
			"core: group %d out of range [0,%d)", k, len(ia.trees))
	}
	if !ia.dirty[k] {
		M.CacheHits.Inc()
		return ia.cached[k], nil
	}
	res, err := ia.trees[k].Flat().ValidateAllShardedContext(ctx, ia.trees[k].Aggregates, 1)
	if err != nil {
		if drmerr.IsCancellation(err) {
			return res, drmerr.Incomplete("core.audit", ctx.Err())
		}
		return vtree.Result{}, err
	}
	M.CacheMisses.Inc()
	M.GroupsRevalidated.Inc()
	ia.cached[k] = res
	ia.dirty[k] = false
	return res, nil
}

// Headroom returns the largest count issuable against the belongs-to set
// without violating any equation — evaluated inside the set's group only
// (2^{N_k−|set|} equations instead of 2^{N−|set|}).
func (ia *IncrementalAuditor) Headroom(set bitset.Mask) (int64, error) {
	k, local, err := ia.route(set)
	if err != nil {
		return 0, err
	}
	return ia.trees[k].Tree.Headroom(local, ia.trees[k].Aggregates)
}

// TopUp mirrors a corpus budget increase into the cached per-group
// aggregate arrays, so subsequent Audit/Headroom calls see the new budget
// without a Rebase. Call corpus.TopUp first (or use engine.Distributor,
// which does both).
func (ia *IncrementalAuditor) TopUp(j int, extra int64) error {
	if j < 0 || j >= ia.corpus.Len() {
		return drmerr.New(drmerr.KindNotFound, "core.topup",
			"core: top-up index %d outside corpus of %d", j, ia.corpus.Len())
	}
	if extra <= 0 {
		return drmerr.New(drmerr.KindInvalidInput, "core.topup",
			"core: top-up of %d; budgets only grow", extra)
	}
	ia.trees[ia.groupOf[j]].Aggregates[ia.position[j]] += extra
	// The group's RHS changed, so its cached validation result is stale.
	ia.dirty[ia.groupOf[j]] = true
	return nil
}

// Rebase incorporates a grown corpus: it re-groups, re-divides, and
// re-routes the existing records (compacted from the current trees). The
// auditor must have been built over the same corpus value that grew —
// license indexes must be stable.
func (ia *IncrementalAuditor) Rebase() error {
	var records []logstore.Record
	for _, gt := range ia.trees {
		for _, r := range gt.Tree.Records() {
			records = append(records, logstore.Record{Set: gt.ToGlobal(r.Set), Count: r.Count})
		}
	}
	return ia.rebuild(records)
}
