package core

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

// IncrementalAuditor maintains the divided per-group validation trees as
// issuance records stream in, instead of rebuilding and re-dividing on
// every audit the way the batch Auditor does. It extends the paper's
// offline design in two directions the authors leave open:
//
//   - records are routed straight into their group's tree (the group is
//     determined by any member of the belongs-to set — Corollary 1.1
//     guarantees all members agree), so an audit is always ready;
//   - corpus growth is handled by Rebase, which regroups and re-divides
//     using only the trees' compacted records, never the raw log.
//
// IncrementalAuditor is not safe for concurrent use.
type IncrementalAuditor struct {
	corpus   *license.Corpus
	grouping overlap.Grouping
	trees    []*GroupTree
	// groupOf and position map a global license index to its group and
	// its local index within that group's tree.
	groupOf  []int
	position []int
	records  int
}

// NewIncrementalAuditor prepares empty per-group trees for the corpus.
func NewIncrementalAuditor(corpus *license.Corpus) (*IncrementalAuditor, error) {
	ia := &IncrementalAuditor{corpus: corpus}
	if err := ia.rebuild(nil); err != nil {
		return nil, err
	}
	return ia, nil
}

// rebuild recomputes grouping and divided trees, replaying any existing
// records (given with GLOBAL masks).
func (ia *IncrementalAuditor) rebuild(records []logstore.Record) error {
	n := ia.corpus.Len()
	ia.grouping = overlap.GroupsOf(ia.corpus)
	ia.groupOf = make([]int, n)
	ia.position = make([]int, n)
	ia.trees = ia.trees[:0]
	agg := ia.corpus.Aggregates()
	for k, g := range ia.grouping.Groups {
		gt := &GroupTree{
			Group:         g,
			Tree:          vtree.MustNew(g.Size),
			Aggregates:    make([]int64, 0, g.Size),
			localToGlobal: make([]int, 0, g.Size),
		}
		p := 0
		g.Members.ForEach(func(j int) bool {
			ia.groupOf[j] = k
			ia.position[j] = p
			gt.Aggregates = append(gt.Aggregates, agg[j])
			gt.localToGlobal = append(gt.localToGlobal, j)
			p++
			return true
		})
		ia.trees = append(ia.trees, gt)
	}
	ia.records = 0
	for _, r := range records {
		if err := ia.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// route translates a global belongs-to mask into (group, local mask). It
// fails if the mask spans groups (impossible for instance-validated logs).
func (ia *IncrementalAuditor) route(set bitset.Mask) (int, bitset.Mask, error) {
	if set.Empty() {
		return 0, 0, fmt.Errorf("core: empty belongs-to set")
	}
	if !set.SubsetOf(bitset.FullMask(ia.corpus.Len())) {
		return 0, 0, fmt.Errorf("core: set %v outside corpus of %d licenses", set, ia.corpus.Len())
	}
	k := ia.groupOf[set.Min()]
	if !set.SubsetOf(ia.grouping.Groups[k].Members) {
		return 0, 0, fmt.Errorf("core: record %v crosses groups (Corollary 1.1 violation)", set)
	}
	var local bitset.Mask
	set.ForEach(func(j int) bool {
		local = local.With(ia.position[j])
		return true
	})
	return k, local, nil
}

// Append routes one issuance record into its group tree.
func (ia *IncrementalAuditor) Append(r logstore.Record) error {
	k, local, err := ia.route(r.Set)
	if err != nil {
		return err
	}
	if err := ia.trees[k].Tree.Insert(local, r.Count); err != nil {
		return err
	}
	ia.records++
	return nil
}

// Records returns the number of records appended since the last rebuild.
func (ia *IncrementalAuditor) Records() int { return ia.records }

// Grouping returns the current grouping.
func (ia *IncrementalAuditor) Grouping() overlap.Grouping { return ia.grouping }

// Trees returns the live per-group trees (read-only use).
func (ia *IncrementalAuditor) Trees() []*GroupTree { return ia.trees }

// Gain returns eq. 3 for the current grouping.
func (ia *IncrementalAuditor) Gain() float64 { return Gain(ia.grouping) }

// Audit validates every group tree and merges the report (global masks).
func (ia *IncrementalAuditor) Audit() (Report, error) { return Validate(ia.trees) }

// AuditGroup validates a single group — the cheap path when only one
// group received new records since the last audit.
func (ia *IncrementalAuditor) AuditGroup(k int) (vtree.Result, error) {
	if k < 0 || k >= len(ia.trees) {
		return vtree.Result{}, fmt.Errorf("core: group %d out of range [0,%d)", k, len(ia.trees))
	}
	return ia.trees[k].Tree.ValidateAll(ia.trees[k].Aggregates)
}

// Headroom returns the largest count issuable against the belongs-to set
// without violating any equation — evaluated inside the set's group only
// (2^{N_k−|set|} equations instead of 2^{N−|set|}).
func (ia *IncrementalAuditor) Headroom(set bitset.Mask) (int64, error) {
	k, local, err := ia.route(set)
	if err != nil {
		return 0, err
	}
	return ia.trees[k].Tree.Headroom(local, ia.trees[k].Aggregates)
}

// TopUp mirrors a corpus budget increase into the cached per-group
// aggregate arrays, so subsequent Audit/Headroom calls see the new budget
// without a Rebase. Call corpus.TopUp first (or use engine.Distributor,
// which does both).
func (ia *IncrementalAuditor) TopUp(j int, extra int64) error {
	if j < 0 || j >= ia.corpus.Len() {
		return fmt.Errorf("core: top-up index %d outside corpus of %d", j, ia.corpus.Len())
	}
	if extra <= 0 {
		return fmt.Errorf("core: top-up of %d; budgets only grow", extra)
	}
	ia.trees[ia.groupOf[j]].Aggregates[ia.position[j]] += extra
	return nil
}

// Rebase incorporates a grown corpus: it re-groups, re-divides, and
// re-routes the existing records (compacted from the current trees). The
// auditor must have been built over the same corpus value that grew —
// license indexes must be stable.
func (ia *IncrementalAuditor) Rebase() error {
	var records []logstore.Record
	for _, gt := range ia.trees {
		for _, r := range gt.Tree.Records() {
			records = append(records, logstore.Record{Set: gt.ToGlobal(r.Set), Count: r.Count})
		}
	}
	return ia.rebuild(records)
}
