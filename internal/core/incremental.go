package core

import (
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

// IncrementalAuditor maintains the divided per-group validation trees as
// issuance records stream in, instead of rebuilding and re-dividing on
// every audit the way the batch Auditor does. It extends the paper's
// offline design in two directions the authors leave open:
//
//   - records are routed straight into their group's tree (the group is
//     determined by any member of the belongs-to set — Corollary 1.1
//     guarantees all members agree), so an audit is always ready;
//   - audits are dirty-group incremental: only groups that received
//     records (or budget top-ups) since the last audit are revalidated,
//     and clean groups reuse their cached vtree.Result — sound because
//     groups are independent (Theorem 2), so nothing outside a group can
//     change its equations' truth;
//   - corpus growth is handled by Rebase, which regroups and re-divides
//     using only the trees' compacted records, never the raw log.
//
// IncrementalAuditor is not safe for concurrent use.
type IncrementalAuditor struct {
	corpus   *license.Corpus
	grouping overlap.Grouping
	trees    []*GroupTree
	// groupOf and position map a global license index to its group and
	// its local index within that group's tree.
	groupOf  []int
	position []int
	records  int

	// Workers bounds the parallelism of one Audit (two-level: groups ×
	// intra-group shards, exactly like ValidateParallel). 1, the default,
	// validates serially.
	Workers int

	// dirty[k] marks group k as having changed since its cached result;
	// cached[k] is valid iff !dirty[k].
	dirty  []bool
	cached []vtree.Result

	// overlapTime/divideTime are the last rebuild's grouping and
	// tree-construction durations, reported in run stats.
	overlapTime time.Duration
	divideTime  time.Duration
	stats       obs.AuditStats
}

// NewIncrementalAuditor prepares empty per-group trees for the corpus.
func NewIncrementalAuditor(corpus *license.Corpus) (*IncrementalAuditor, error) {
	ia := &IncrementalAuditor{corpus: corpus, Workers: 1}
	if err := ia.rebuild(nil); err != nil {
		return nil, err
	}
	return ia, nil
}

// rebuild recomputes grouping and divided trees, replaying any existing
// records (given with GLOBAL masks).
func (ia *IncrementalAuditor) rebuild(records []logstore.Record) error {
	n := ia.corpus.Len()
	start := time.Now()
	ia.grouping = overlap.GroupsOf(ia.corpus)
	ia.overlapTime = time.Since(start)
	start = time.Now()
	defer func() { ia.divideTime = time.Since(start) }()
	ia.groupOf = make([]int, n)
	ia.position = make([]int, n)
	ia.trees = ia.trees[:0]
	agg := ia.corpus.Aggregates()
	for k, g := range ia.grouping.Groups {
		gt := &GroupTree{
			Group:         g,
			Tree:          vtree.MustNew(g.Size),
			Aggregates:    make([]int64, 0, g.Size),
			localToGlobal: make([]int, 0, g.Size),
		}
		p := 0
		g.Members.ForEach(func(j int) bool {
			ia.groupOf[j] = k
			ia.position[j] = p
			gt.Aggregates = append(gt.Aggregates, agg[j])
			gt.localToGlobal = append(gt.localToGlobal, j)
			p++
			return true
		})
		ia.trees = append(ia.trees, gt)
	}
	ia.dirty = make([]bool, len(ia.trees))
	for k := range ia.dirty {
		ia.dirty[k] = true // nothing cached yet
	}
	ia.cached = make([]vtree.Result, len(ia.trees))
	ia.records = 0
	for _, r := range records {
		if err := ia.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// route translates a global belongs-to mask into (group, local mask). It
// fails if the mask spans groups (impossible for instance-validated logs).
func (ia *IncrementalAuditor) route(set bitset.Mask) (int, bitset.Mask, error) {
	if set.Empty() {
		return 0, 0, fmt.Errorf("core: empty belongs-to set")
	}
	if !set.SubsetOf(bitset.FullMask(ia.corpus.Len())) {
		return 0, 0, fmt.Errorf("core: set %v outside corpus of %d licenses", set, ia.corpus.Len())
	}
	k := ia.groupOf[set.Min()]
	if !set.SubsetOf(ia.grouping.Groups[k].Members) {
		return 0, 0, fmt.Errorf("core: record %v crosses groups (Corollary 1.1 violation)", set)
	}
	var local bitset.Mask
	set.ForEach(func(j int) bool {
		local = local.With(ia.position[j])
		return true
	})
	return k, local, nil
}

// Append routes one issuance record into its group tree.
func (ia *IncrementalAuditor) Append(r logstore.Record) error {
	k, local, err := ia.route(r.Set)
	if err != nil {
		return err
	}
	if err := ia.trees[k].Tree.Insert(local, r.Count); err != nil {
		return err
	}
	ia.trees[k].invalidateFlat()
	ia.dirty[k] = true
	ia.records++
	return nil
}

// Records returns the number of records appended since the last rebuild.
func (ia *IncrementalAuditor) Records() int { return ia.records }

// Grouping returns the current grouping.
func (ia *IncrementalAuditor) Grouping() overlap.Grouping { return ia.grouping }

// Trees returns the live per-group trees (read-only use).
func (ia *IncrementalAuditor) Trees() []*GroupTree { return ia.trees }

// Gain returns eq. 3 for the current grouping.
func (ia *IncrementalAuditor) Gain() float64 { return Gain(ia.grouping) }

// DirtyGroups returns the indexes of groups that changed since their last
// validation — the set the next Audit will actually revalidate.
func (ia *IncrementalAuditor) DirtyGroups() []int {
	var out []int
	for k, d := range ia.dirty {
		if d {
			out = append(out, k)
		}
	}
	return out
}

// Audit validates the dirty group trees, reuses cached results for clean
// ones, and merges the report (global masks). A fully clean auditor costs
// only the merge; a fully dirty one costs the same as a batch Validate.
// Workers bounds the parallelism across the dirty groups and their
// intra-group shards.
func (ia *IncrementalAuditor) Audit() (Report, error) {
	var dirtyTrees []*GroupTree
	var dirtyIdx []int
	for k, gt := range ia.trees {
		if ia.dirty[k] {
			dirtyTrees = append(dirtyTrees, gt)
			dirtyIdx = append(dirtyIdx, k)
		}
	}
	workers := ia.Workers
	if workers < 1 {
		workers = 1
	}
	var checked int64
	var flatten, validate time.Duration
	if len(dirtyTrees) > 0 {
		start := time.Now()
		for _, gt := range dirtyTrees {
			gt.Flat()
		}
		flatten = time.Since(start)
		start = time.Now()
		rep, err := ValidateParallel(dirtyTrees, workers)
		validate = time.Since(start)
		if err != nil {
			return Report{}, err
		}
		checked = rep.Equations
		for i, k := range dirtyIdx {
			ia.cached[k] = rep.PerGroup[i]
			ia.dirty[k] = false
		}
	}
	results := make([]vtree.Result, len(ia.trees))
	copy(results, ia.cached)
	merged := merge(ia.trees, results)

	hits := len(ia.trees) - len(dirtyTrees)
	ia.stats = buildAuditStats(ia.corpus.Len(), ia.records, ia.grouping, merged,
		checked, shardsUsed(dirtyTrees, workers), len(dirtyTrees), hits,
		obs.AuditPhases{
			Overlap:  ia.overlapTime.Nanoseconds(),
			Divide:   ia.divideTime.Nanoseconds(),
			Flatten:  flatten.Nanoseconds(),
			Validate: validate.Nanoseconds(),
		})
	M.AuditRuns.Inc()
	M.GroupsRevalidated.Add(int64(len(dirtyTrees)))
	M.CacheMisses.Add(int64(len(dirtyTrees)))
	M.CacheHits.Add(int64(hits))
	M.Gain.Set(ia.stats.GainRealized)
	M.PhaseOverlap.Observe(ia.overlapTime.Seconds())
	M.PhaseDivide.Observe(ia.divideTime.Seconds())
	M.PhaseFlatten.Observe(flatten.Seconds())
	M.PhaseValidate.Observe(validate.Seconds())
	return merged, nil
}

// LastStats returns the typed run record of the last Audit (zero before
// the first). A fully clean auditor reports zero equations checked
// (GainRealized is 0 by convention when nothing ran); GroupsRevalidated
// and CacheHits show where the work went.
func (ia *IncrementalAuditor) LastStats() obs.AuditStats { return ia.stats }

// AuditGroup validates a single group — the cheap path when only one
// group received new records since the last audit. A clean group returns
// its cached result without re-walking the tree.
func (ia *IncrementalAuditor) AuditGroup(k int) (vtree.Result, error) {
	if k < 0 || k >= len(ia.trees) {
		return vtree.Result{}, fmt.Errorf("core: group %d out of range [0,%d)", k, len(ia.trees))
	}
	if !ia.dirty[k] {
		M.CacheHits.Inc()
		return ia.cached[k], nil
	}
	res, err := ia.trees[k].Flat().ValidateAllSharded(ia.trees[k].Aggregates, 1)
	if err != nil {
		return vtree.Result{}, err
	}
	M.CacheMisses.Inc()
	M.GroupsRevalidated.Inc()
	ia.cached[k] = res
	ia.dirty[k] = false
	return res, nil
}

// Headroom returns the largest count issuable against the belongs-to set
// without violating any equation — evaluated inside the set's group only
// (2^{N_k−|set|} equations instead of 2^{N−|set|}).
func (ia *IncrementalAuditor) Headroom(set bitset.Mask) (int64, error) {
	k, local, err := ia.route(set)
	if err != nil {
		return 0, err
	}
	return ia.trees[k].Tree.Headroom(local, ia.trees[k].Aggregates)
}

// TopUp mirrors a corpus budget increase into the cached per-group
// aggregate arrays, so subsequent Audit/Headroom calls see the new budget
// without a Rebase. Call corpus.TopUp first (or use engine.Distributor,
// which does both).
func (ia *IncrementalAuditor) TopUp(j int, extra int64) error {
	if j < 0 || j >= ia.corpus.Len() {
		return fmt.Errorf("core: top-up index %d outside corpus of %d", j, ia.corpus.Len())
	}
	if extra <= 0 {
		return fmt.Errorf("core: top-up of %d; budgets only grow", extra)
	}
	ia.trees[ia.groupOf[j]].Aggregates[ia.position[j]] += extra
	// The group's RHS changed, so its cached validation result is stale.
	ia.dirty[ia.groupOf[j]] = true
	return nil
}

// Rebase incorporates a grown corpus: it re-groups, re-divides, and
// re-routes the existing records (compacted from the current trees). The
// auditor must have been built over the same corpus value that grew —
// license indexes must be stable.
func (ia *IncrementalAuditor) Rebase() error {
	var records []logstore.Record
	for _, gt := range ia.trees {
		for _, r := range gt.Tree.Records() {
			records = append(records, logstore.Record{Set: gt.ToGlobal(r.Set), Count: r.Count})
		}
	}
	return ia.rebuild(records)
}
