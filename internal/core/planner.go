package core

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/drmerr"
	"repro/internal/vtree"
)

// Strategy selects how one group's validation equations are evaluated.
// All strategies compute identical results (property-tested); they differ
// only in cost profile:
//
//   - StrategyTree — the paper's Algorithm 2 over the group's validation
//     tree: no extra memory, cost ≈ equations × tree-walk;
//   - StrategySOS — the sum-over-subsets DP: O(N_k·2^{N_k}) time and
//     O(2^{N_k}) memory, the fastest when the group's distinct logged
//     sets approach 2^{N_k};
//   - StrategyDirect — per-equation scans over the compacted records:
//     best for tiny groups where building anything is overhead.
type Strategy int

const (
	// StrategyTree evaluates with the divided validation tree.
	StrategyTree Strategy = iota
	// StrategySOS evaluates with the subset-sum dynamic program.
	StrategySOS
	// StrategyDirect evaluates by scanning compacted records per equation.
	StrategyDirect
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyTree:
		return "tree"
	case StrategySOS:
		return "sos"
	case StrategyDirect:
		return "direct"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// GroupPlan is the planner's choice for one group.
type GroupPlan struct {
	// Group indexes the GroupTree slice.
	Group int
	// Strategy is the chosen evaluator.
	Strategy Strategy
	// Cost is the model's unit-less estimate for the chosen strategy
	// (comparable only within one group).
	Cost float64
}

// sosMemoryCapBits bounds StrategySOS's 2^N table (must not exceed the
// evaluator's own cap).
const sosMemoryCapBits = 26

// Plan chooses an evaluation strategy per group with a simple cost model
// measured in "record/node touches":
//
//	tree:   2^{N_k} × (N_k + nodes/2)   (per-equation pruned walk)
//	sos:    2^{N_k} × (N_k + 2) + nodes (transform + sweep)
//	direct: 2^{N_k} × (records + N_k)   (per-equation scan)
//
// where nodes is the group tree's node count and records its distinct
// logged sets. Constants are deliberately crude — the point is picking the
// right asymptotic regime, and the ablation benchmark shows the regimes
// differ by orders of magnitude at the extremes.
func Plan(trees []*GroupTree) []GroupPlan {
	plans := make([]GroupPlan, len(trees))
	for k, gt := range trees {
		n := gt.Tree.N()
		eqs := float64(int64(1)<<uint(n) - 1)
		nodes := float64(gt.Tree.Stats().Nodes)
		records := float64(len(gt.Tree.Records()))

		costTree := eqs * (float64(n) + nodes/2)
		costSOS := eqs*(float64(n)+2) + nodes
		costDirect := eqs * (records + float64(n))

		best := GroupPlan{Group: k, Strategy: StrategyTree, Cost: costTree}
		if costDirect < best.Cost {
			best = GroupPlan{Group: k, Strategy: StrategyDirect, Cost: costDirect}
		}
		if n <= sosMemoryCapBits && costSOS < best.Cost {
			best = GroupPlan{Group: k, Strategy: StrategySOS, Cost: costSOS}
		}
		plans[k] = best
	}
	return plans
}

// ValidateWithPlan evaluates every group with its planned strategy and
// merges the results exactly like Validate.
func ValidateWithPlan(trees []*GroupTree, plans []GroupPlan) (Report, error) {
	return ValidateWithPlanContext(context.Background(), trees, plans)
}

// ValidateWithPlanContext is ValidateWithPlan under a context. The
// planner's baseline evaluators run whole groups atomically, so ctx is
// polled between groups: cancellation returns the groups verified so far
// (Completeness marks the rest unscanned) and an error matching
// drmerr.ErrAuditIncomplete.
func ValidateWithPlanContext(ctx context.Context, trees []*GroupTree, plans []GroupPlan) (Report, error) {
	if len(plans) != len(trees) {
		return Report{}, drmerr.New(drmerr.KindInvalidInput, "core.plan",
			"core: %d plans for %d groups", len(plans), len(trees))
	}
	results := make([]vtree.Result, len(trees))
	for k, gt := range trees {
		if cerr := ctx.Err(); cerr != nil {
			return merge(trees, results), drmerr.Incomplete("core.plan", cerr)
		}
		var res vtree.Result
		var err error
		switch plans[k].Strategy {
		case StrategyTree:
			res, err = gt.Tree.ValidateAll(gt.Aggregates)
		case StrategySOS:
			res, err = baseline.SOSValidate(gt.Tree.N(), gt.Tree.Records(), gt.Aggregates)
		case StrategyDirect:
			res, err = baseline.DirectValidate(gt.Tree.N(), gt.Tree.Records(), gt.Aggregates)
		default:
			err = drmerr.New(drmerr.KindInvalidInput, "core.plan",
				"core: unknown strategy %v", plans[k].Strategy)
		}
		if err != nil {
			return Report{}, fmt.Errorf("core: group %d (%v): %w", k+1, plans[k].Strategy, err)
		}
		results[k] = res
	}
	return merge(trees, results), nil
}
