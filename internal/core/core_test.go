package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

// example1Setup builds the paper's running example: corpus, Table 2 tree,
// grouping, and aggregates.
func example1Setup(t *testing.T) (*license.Example1, *vtree.Tree, overlap.Grouping, []int64) {
	t.Helper()
	ex := license.NewExample1()
	tree := vtree.MustNew(5)
	for _, e := range ex.Log {
		if err := tree.Insert(e.Set, e.Count); err != nil {
			t.Fatal(err)
		}
	}
	gr := overlap.GroupsOf(ex.Corpus)
	return ex, tree, gr, ex.Corpus.Aggregates()
}

func TestDivideExample1Shape(t *testing.T) {
	// Fig 4/5: two trees; tree 1 holds the {L1,L2,(L4)} branches, tree 2
	// the {L3,L5} branches with indexes 3,5 remapped to 1,2.
	_, tree, gr, a := example1Setup(t)
	original := tree.Clone()
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("divided into %d trees, want 2", len(trees))
	}

	t1, t2 := trees[0], trees[1]
	if t1.Tree.N() != 3 || t2.Tree.N() != 2 {
		t.Errorf("tree sizes = %d,%d, want 3,2", t1.Tree.N(), t2.Tree.N())
	}
	// A_1 = (2000, 1000, 4000): budgets of L1, L2, L4.
	wantA1 := []int64{2000, 1000, 4000}
	for i, w := range wantA1 {
		if t1.Aggregates[i] != w {
			t.Errorf("A_1[%d] = %d, want %d", i, t1.Aggregates[i], w)
		}
	}
	// A_2 = (3000, 2000): budgets of L3, L5.
	if t2.Aggregates[0] != 3000 || t2.Aggregates[1] != 2000 {
		t.Errorf("A_2 = %v, want [3000 2000]", t2.Aggregates)
	}

	// Tree 1 counts with local indexes: {L1,L2}→{0,1}: 840; {L2}→{1}: 400;
	// {L1,L2,L4}→{0,1,2}: 30.
	if got := t1.Tree.Count(bitset.MaskOf(0, 1)); got != 840 {
		t.Errorf("tree1 C[{0,1}] = %d, want 840", got)
	}
	if got := t1.Tree.Count(bitset.MaskOf(1)); got != 400 {
		t.Errorf("tree1 C[{1}] = %d, want 400", got)
	}
	if got := t1.Tree.Count(bitset.MaskOf(0, 1, 2)); got != 30 {
		t.Errorf("tree1 C[{0,1,2}] = %d, want 30", got)
	}
	// Tree 2: fig 5 remaps indexes 3,5 → 1,2 (locally 0,1):
	// {L3,L5}: 800; {L5}: 20.
	if got := t2.Tree.Count(bitset.MaskOf(0, 1)); got != 800 {
		t.Errorf("tree2 C[{0,1}] = %d, want 800", got)
	}
	if got := t2.Tree.Count(bitset.MaskOf(1)); got != 20 {
		t.Errorf("tree2 C[{1}] = %d, want 20", got)
	}

	// Fig 10's storage claim: total node count unchanged by division.
	var nodes int
	for _, gt := range trees {
		nodes += gt.Tree.Stats().Nodes
	}
	if want := original.Stats().Nodes; nodes != want {
		t.Errorf("divided trees hold %d nodes, original %d", nodes, want)
	}
}

func TestToGlobal(t *testing.T) {
	_, tree, gr, a := example1Setup(t)
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	// Tree 2 local {0,1} is global {L3,L5} = {2,4}.
	if got := trees[1].ToGlobal(bitset.MaskOf(0, 1)); got != bitset.MaskOf(2, 4) {
		t.Errorf("ToGlobal = %v, want {3,5}", got)
	}
	// Tree 1 local {2} is global {L4} = {3}.
	if got := trees[0].ToGlobal(bitset.MaskOf(2)); got != bitset.MaskOf(3) {
		t.Errorf("ToGlobal = %v, want {4}", got)
	}
}

func TestDivideErrors(t *testing.T) {
	_, tree, gr, a := example1Setup(t)
	if _, err := Divide(tree, gr, a[:3]); err == nil {
		t.Error("short aggregate array accepted")
	}
	badGr := overlap.Grouping{N: 4, Groups: gr.Groups}
	if _, err := Divide(tree, badGr, a[:4]); err == nil {
		t.Error("mismatched grouping N accepted")
	}
	invalid := overlap.Grouping{N: 5, Groups: []overlap.Group{{Members: bitset.MaskOf(0), Size: 1}}}
	if _, err := Divide(tree, invalid, a); err == nil {
		t.Error("non-partition grouping accepted")
	}
}

func TestDivideDetectsCrossGroupRecord(t *testing.T) {
	// A record spanning both groups contradicts Corollary 1.1; Divide must
	// refuse rather than silently mis-validate.
	_, tree, gr, a := example1Setup(t)
	if err := tree.Insert(bitset.MaskOf(0, 2), 10); err != nil { // {L1,L3}
		t.Fatal(err)
	}
	if _, err := Divide(tree, gr, a); err == nil {
		t.Error("cross-group record accepted")
	}
}

func TestValidateExample1(t *testing.T) {
	_, tree, gr, a := example1Setup(t)
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(trees)
	if err != nil {
		t.Fatal(err)
	}
	// (2^3-1) + (2^2-1) = 10 equations instead of 31.
	if rep.Equations != 10 {
		t.Errorf("equations = %d, want 10", rep.Equations)
	}
	if !rep.OK() {
		t.Errorf("unexpected violations: %v", rep.Violations)
	}
}

func TestPaperExampleGain(t *testing.T) {
	// §4.2: "the approximate gain in this case would be
	// (2^5−1)/((2^3−1)+(2^2−1)) = 3.1 times."
	_, _, gr, _ := example1Setup(t)
	if got := EquationCount(gr); got != 10 {
		t.Errorf("EquationCount = %d, want 10", got)
	}
	if got := Gain(gr); math.Abs(got-3.1) > 0.001 {
		t.Errorf("Gain = %v, want 3.1", got)
	}
}

func TestGainBounds(t *testing.T) {
	// G = 1 when one group holds everything; G = (2^N−1)/N when all are
	// isolated.
	one := overlap.Grouping{N: 6, Groups: []overlap.Group{{Members: bitset.FullMask(6), Size: 6}}}
	if got := Gain(one); got != 1 {
		t.Errorf("single-group gain = %v, want 1", got)
	}
	iso := overlap.Grouping{N: 6}
	for i := 0; i < 6; i++ {
		iso.Groups = append(iso.Groups, overlap.Group{Members: bitset.MaskOf(i), Size: 1})
	}
	want := (math.Pow(2, 6) - 1) / 6
	if got := Gain(iso); math.Abs(got-want) > 1e-9 {
		t.Errorf("isolated gain = %v, want %v", got, want)
	}
	if got := Gain(overlap.Grouping{N: 0}); got != 1 {
		t.Errorf("empty gain = %v, want 1", got)
	}
}

func TestFullEquationCountLargeN(t *testing.T) {
	if got := FullEquationCount(3); got != 7 {
		t.Errorf("FullEquationCount(3) = %v", got)
	}
	// Must not overflow for N = 64.
	if got := FullEquationCount(64); got < 1e19 {
		t.Errorf("FullEquationCount(64) = %v", got)
	}
}

func TestGroupedMatchesFullValidation(t *testing.T) {
	// DESIGN.md invariant 3 on the running example with an injected
	// violation: both validators report the same violated sets.
	ex, tree, gr, a := example1Setup(t)
	_ = ex
	if err := tree.Insert(bitset.MaskOf(2, 4), 5000); err != nil { // blow {L3,L5}
		t.Fatal(err)
	}
	full := tree.Clone()
	fullRes, err := full.ValidateAll(a)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(trees)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || fullRes.OK() {
		t.Fatal("violation not detected")
	}
	// Every grouped violation must appear in the full run with identical
	// CV/AV.
	fullBySet := map[bitset.Mask]vtree.Violation{}
	for _, v := range fullRes.Violations {
		fullBySet[v.Set] = v
	}
	for _, v := range rep.Violations {
		w, ok := fullBySet[v.Set]
		if !ok {
			t.Errorf("grouped-only violation %v", v)
			continue
		}
		if w.CV != v.CV || w.AV != v.AV {
			t.Errorf("violation %v: grouped %+v, full %+v", v.Set, v, w)
		}
	}
	// Every full violation that stays within one group must be reported by
	// the grouped validator. (Cross-group full violations are implied by
	// within-group ones — Theorem 2 — and are intentionally not re-listed.)
	grouped := map[bitset.Mask]bool{}
	for _, v := range rep.Violations {
		grouped[v.Set] = true
	}
	for _, v := range fullRes.Violations {
		inOneGroup := false
		for _, g := range gr.Groups {
			if v.Set.SubsetOf(g.Members) {
				inOneGroup = true
			}
		}
		if inOneGroup && !grouped[v.Set] {
			t.Errorf("full violation %v missed by grouped validator", v.Set)
		}
	}
}

// randomGroupedInstance generates a corpus-free random instance: a grouping
// with planted group structure and a log whose records each stay within one
// group (as Corollary 1.1 guarantees for real logs).
func randomGroupedInstance(r *rand.Rand) (overlap.Grouping, []logstore.Record, []int64) {
	numGroups := 1 + r.Intn(4)
	var groups []overlap.Group
	n := 0
	for k := 0; k < numGroups && n < 12; k++ {
		size := 1 + r.Intn(4)
		if n+size > 12 {
			size = 12 - n
		}
		var m bitset.Mask
		for i := 0; i < size; i++ {
			m = m.With(n + i)
		}
		groups = append(groups, overlap.Group{Members: m, Size: size})
		n += size
	}
	gr := overlap.Grouping{N: n, Groups: groups}

	var records []logstore.Record
	for i := 0; i < 100+r.Intn(200); i++ {
		g := groups[r.Intn(len(groups))]
		sub := bitset.Mask(r.Int63()) & g.Members
		if sub.Empty() {
			sub = bitset.MaskOf(g.Members.Min())
		}
		records = append(records, logstore.Record{Set: sub, Count: int64(1 + r.Intn(30))})
	}
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(100 + r.Intn(2000)) // tight enough to violate sometimes
	}
	return gr, records, a
}

func TestGroupedMatchesFullQuick(t *testing.T) {
	// The main soundness property over random instances: within-group
	// violation sets agree exactly between grouped and full validation,
	// and the grouped validator never reports cross-group sets.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gr, records, a := randomGroupedInstance(r)
		tree, err := vtree.BuildRecords(gr.N, records)
		if err != nil {
			return false
		}
		fullRes, err := tree.Clone().ValidateAll(a)
		if err != nil {
			return false
		}
		trees, err := Divide(tree, gr, a)
		if err != nil {
			return false
		}
		rep, err := Validate(trees)
		if err != nil {
			return false
		}
		if rep.Equations != EquationCount(gr) {
			return false
		}
		groupedBySet := map[bitset.Mask]vtree.Violation{}
		for _, v := range rep.Violations {
			groupedBySet[v.Set] = v
		}
		seen := 0
		for _, v := range fullRes.Violations {
			within := false
			for _, g := range gr.Groups {
				if v.Set.SubsetOf(g.Members) {
					within = true
					break
				}
			}
			if !within {
				continue // implied by within-group equations
			}
			seen++
			g, ok := groupedBySet[v.Set]
			if !ok || g.CV != v.CV || g.AV != v.AV {
				return false
			}
		}
		return seen == len(rep.Violations)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDividePreservesRecordsQuick(t *testing.T) {
	// DESIGN.md invariant 5: merging divided trees' records (translated to
	// global indexes) reproduces the original tree.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gr, records, a := randomGroupedInstance(r)
		tree, err := vtree.BuildRecords(gr.N, records)
		if err != nil {
			return false
		}
		original := tree.Clone()
		trees, err := Divide(tree, gr, a)
		if err != nil {
			return false
		}
		var back []logstore.Record
		for _, gt := range trees {
			for _, rec := range gt.Tree.Records() {
				back = append(back, logstore.Record{Set: gt.ToGlobal(rec.Set), Count: rec.Count})
			}
		}
		rebuilt, err := vtree.BuildRecords(gr.N, back)
		if err != nil {
			return false
		}
		return rebuilt.Equal(original)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		gr, records, a := randomGroupedInstance(r)
		tree, err := vtree.BuildRecords(gr.N, records)
		if err != nil {
			t.Fatal(err)
		}
		trees, err := Divide(tree, gr, a)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Validate(trees)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			par, err := ValidateParallel(trees, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Equations != serial.Equations || len(par.Violations) != len(serial.Violations) {
				t.Fatalf("parallel(%d) diverges: %+v vs %+v", workers, par, serial)
			}
			for i := range par.Violations {
				if par.Violations[i] != serial.Violations[i] {
					t.Fatalf("violation %d differs", i)
				}
			}
		}
	}
	if _, err := ValidateParallel(nil, 0); err == nil {
		t.Error("workers=0 accepted")
	}
}

func TestAuditorEndToEnd(t *testing.T) {
	ex := license.NewExample1()
	log := logstore.NewMem(len(ex.Log))
	for _, e := range ex.Log {
		if err := log.Append(logstore.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	aud, err := NewAuditor(ex.Corpus, log)
	if err != nil {
		t.Fatal(err)
	}
	if aud.Grouping().NumGroups() != 2 {
		t.Errorf("groups = %d, want 2", aud.Grouping().NumGroups())
	}
	if got := aud.Gain(); math.Abs(got-3.1) > 0.001 {
		t.Errorf("Gain = %v, want 3.1", got)
	}
	rep, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Equations != 10 {
		t.Errorf("report = %+v", rep)
	}
	// Parallel path.
	aud.Workers = 4
	rep2, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Equations != rep.Equations {
		t.Error("parallel audit diverges")
	}
	tm := aud.Timings()
	if tm.Validation <= 0 {
		t.Error("validation timing not recorded")
	}
	if tm.DT() != tm.Grouping+tm.Division {
		t.Error("DT arithmetic wrong")
	}
}
