// Package core implements the paper's contribution (§3–§4): removal of
// redundant validation equations by dividing the validation tree along the
// disconnected groups of the license overlap graph.
//
// The pipeline is:
//
//  1. group the corpus with internal/overlap (Algorithm 3);
//  2. divide the validation tree into one tree per group (Algorithm 4) —
//     children of the original root are *relinked*, not copied, so no new
//     nodes are allocated beyond the g root sentinels (the fig 10 storage
//     claim);
//  3. rewrite node indexes to dense group-local indexes and derive the
//     per-group aggregate arrays A_k (Algorithm 5);
//  4. validate each group tree independently with Algorithm 2 over a
//     flattened snapshot (vtree.FlatTree.ValidateAllSharded) — optionally
//     in parallel across groups and across mask shards within a group —
//     and map the violated sets back to global corpus indexes.
//
// Soundness rests on Theorems 1–2: cross-group sets always have zero
// counts, so every equation spanning ≥2 groups is implied by the per-group
// equations. Equation count drops from 2^N−1 to Σ_k (2^{N_k}−1); the
// theoretical gain G of eq. 3 is computed by Gain.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vtree"
)

// GroupTree is one divided validation tree: the paper's k-th tree with
// root_k, dense local indexes [0, N_k), and aggregate array A_k.
type GroupTree struct {
	// Group is the overlap component this tree covers (global indexes).
	Group overlap.Group
	// Tree is the per-group validation tree over local indexes.
	Tree *vtree.Tree
	// Aggregates is A_k: Aggregates[p] is the budget of the license with
	// local index p.
	Aggregates []int64
	// localToGlobal maps local index p to the global corpus index
	// (the inverse of the paper's position_k array).
	localToGlobal []int
	// flat caches the flattened snapshot of Tree for the duration of one
	// audit; it is dropped whenever Tree mutates (see invalidateFlat).
	flat *vtree.FlatTree
}

// Flat returns the flattened structure-of-arrays snapshot of the group
// tree, building it on first use. The first call after a mutation is not
// safe for concurrent use — Validate/ValidateParallel flatten every group
// up front, before fanning out, so workers only ever read the cache.
func (gt *GroupTree) Flat() *vtree.FlatTree {
	if gt.flat == nil {
		gt.flat = gt.Tree.Flatten()
	}
	return gt.flat
}

// invalidateFlat drops the cached snapshot after Tree mutates.
func (gt *GroupTree) invalidateFlat() { gt.flat = nil }

// ToGlobal translates a local-index mask from this group's tree back into
// global corpus indexes.
func (gt *GroupTree) ToGlobal(local bitset.Mask) bitset.Mask {
	var out bitset.Mask
	local.ForEach(func(p int) bool {
		out = out.With(gt.localToGlobal[p])
		return true
	})
	return out
}

// Divide splits t into one validation tree per group — Algorithms 4 and 5.
//
// Children of t's root are relinked into the new trees and their subtree
// indexes rewritten in place, so t is CONSUMED: it must not be used
// afterwards (Clone it first if you need to keep it). No nodes are copied;
// only the g new root sentinels are allocated.
//
// a is the global aggregate array (a[j] = budget of license j); len(a) must
// equal t.N(), and the grouping must partition [0, t.N()).
//
// A log record whose set spans two groups contradicts Corollary 1.1 — it
// cannot arise from instance-valid issuance — and makes the division
// unsound, so Divide detects any such branch and returns an error naming
// the offending license.
func Divide(t *vtree.Tree, gr overlap.Grouping, a []int64) ([]*GroupTree, error) {
	n := t.N()
	if gr.N != n {
		return nil, drmerr.New(drmerr.KindCorpusMismatch, "core.divide",
			"core: grouping over %d licenses, tree over %d", gr.N, n)
	}
	if len(a) != n {
		return nil, drmerr.New(drmerr.KindCorpusMismatch, "core.divide",
			"core: aggregate array has %d entries, want %d", len(a), n)
	}
	if err := gr.Validate(); err != nil {
		return nil, err
	}

	// Algorithm 5 prologue: position_k and A_k for every group, computed
	// once over the global index space. position[j] is the local index of
	// license j within its own group.
	position := make([]int, n)
	out := make([]*GroupTree, len(gr.Groups))
	for k, g := range gr.Groups {
		gt := &GroupTree{
			Group:         g,
			Aggregates:    make([]int64, 0, g.Size),
			localToGlobal: make([]int, 0, g.Size),
		}
		p := 0
		g.Members.ForEach(func(j int) bool {
			position[j] = p
			gt.Aggregates = append(gt.Aggregates, a[j])
			gt.localToGlobal = append(gt.localToGlobal, j)
			p++
			return true
		})
		out[k] = gt
	}

	// Algorithm 4: route each child of the original root to its group's
	// new root. Children arrive index-ordered and stay index-ordered within
	// each group because group-local order is inherited from global order.
	roots := make([]*vtree.Node, len(gr.Groups))
	for k := range roots {
		roots[k] = &vtree.Node{L: -1}
	}
	for _, child := range t.Root().Children {
		k := gr.GroupOf(child.L)
		roots[k].Children = append(roots[k].Children, child)
	}

	// Algorithm 5 main step: rewrite subtree indexes to local ones,
	// verifying that every node in group k's tree belongs to group k.
	for k, gt := range out {
		if err := relabel(roots[k], gr, k, position); err != nil {
			return nil, err
		}
		gt.Tree = vtree.NewFromRoot(roots[k], gt.Group.Size)
	}
	return out, nil
}

// relabel rewrites L fields under root to group-local indexes, failing on
// any node from a foreign group.
func relabel(root *vtree.Node, gr overlap.Grouping, k int, position []int) error {
	for _, c := range root.Children {
		if !gr.Groups[k].Members.Has(c.L) {
			return drmerr.New(drmerr.KindCrossGroup, "core.divide",
				"core: log record crosses groups: license %d in group-%d tree (impossible under Corollary 1.1 — corrupt or non-instance-validated log)", c.L+1, k+1)
		}
		c.L = position[c.L]
		if err := relabel(c, gr, k, position); err != nil {
			return err
		}
	}
	return nil
}

// Report is the outcome of a grouped validation run.
type Report struct {
	// Equations is the total number of equations evaluated. For a
	// complete run this is Σ_k (2^{N_k}−1); a deadline-bounded run cut
	// short counts only the masks actually scanned.
	Equations int64
	// Violations lists every violated equation with GLOBAL license masks,
	// ordered by ascending set.
	Violations []vtree.Violation
	// PerGroup holds each group's raw result (local masks), index-aligned
	// with the GroupTree slice.
	PerGroup []vtree.Result
	// Completeness reports per-group coverage, index-aligned with the
	// GroupTree slice. Group independence (Theorem 2) is what makes a
	// partial audit well-defined: every fully scanned group's verdict is
	// final regardless of the groups the deadline cut off.
	Completeness []GroupCompleteness
}

// GroupCompleteness is one group's equation-space coverage in a run.
type GroupCompleteness struct {
	// Group indexes the GroupTree slice.
	Group int `json:"group"`
	// MasksScanned counts equations evaluated for this group; MasksTotal
	// is the full 2^{N_k}−1 space.
	MasksScanned int64 `json:"masks_scanned"`
	MasksTotal   int64 `json:"masks_total"`
	// Complete reports MasksScanned == MasksTotal.
	Complete bool `json:"complete"`
}

// OK reports whether no equation was violated.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// Complete reports whether every group's equation space was fully
// checked. Runs that returned a nil error are always complete; runs that
// returned ErrAuditIncomplete are not.
func (r Report) Complete() bool {
	for _, c := range r.Completeness {
		if !c.Complete {
			return false
		}
	}
	return true
}

// GroupsComplete counts the groups whose equation space was fully
// checked.
func (r Report) GroupsComplete() int {
	n := 0
	for _, c := range r.Completeness {
		if c.Complete {
			n++
		}
	}
	return n
}

// Validate runs Algorithm 2 on every group tree serially and merges the
// results, mapping violated sets back to global indexes. The evaluation
// itself goes through the flat-tree backend; reports are identical to the
// pointer-tree walk (property-tested).
func Validate(trees []*GroupTree) (Report, error) {
	return ValidateParallel(trees, 1)
}

// ValidateParallel runs the grouped validation on up to workers
// goroutines with a two-level parallelism budget:
//
//   - across groups, min(workers, len(trees)) worker goroutines drain a
//     group channel (groups are independent by Theorem 2);
//   - within a group, the worker budget is split proportionally to each
//     group's equation count (2^{N_k}−1) and the group's flat tree is
//     evaluated with FlatTree.ValidateAllSharded over that many shards.
//
// The proportional split is what keeps the grouping win from collapsing:
// with one dominant group the old per-group parallelism degenerated to a
// single goroutine; now that group receives (nearly) the whole budget and
// saturates all cores. Results are identical to Validate's.
func ValidateParallel(trees []*GroupTree, workers int) (Report, error) {
	return ValidateParallelContext(context.Background(), trees, workers)
}

// ValidateParallelContext is ValidateParallel under a context. When ctx
// is cancelled or its deadline expires mid-run, the verified-so-far
// report is returned together with an error matching
// drmerr.ErrAuditIncomplete (wrapping ctx.Err()): every violation in it
// is real, Report.Completeness says which groups were fully checked, and
// groups the deadline cut off contribute only the masks they scanned.
// With an already-expired context the report covers zero groups.
func ValidateParallelContext(ctx context.Context, trees []*GroupTree, workers int) (Report, error) {
	if workers < 1 {
		return Report{}, drmerr.New(drmerr.KindInvalidInput, "core.validate",
			"core: workers = %d, want >= 1", workers)
	}
	start := time.Now()
	results := make([]vtree.Result, len(trees))
	// Flatten serially, once per audit, so the concurrent phase only
	// reads; poll ctx between groups so an expired deadline skips both
	// the flatten and the walk.
	for _, gt := range trees {
		if ctx.Err() != nil {
			return merge(trees, results), drmerr.Incomplete("core.validate", ctx.Err())
		}
		gt.Flat()
	}
	budgets := shardBudgets(trees, workers)
	errs := make([]error, len(trees))
	validateGroup := func(k int) {
		if err := ctx.Err(); err != nil {
			errs[k] = drmerr.Wrap(drmerr.KindCancelled, "core.validate", err)
			return
		}
		gt := trees[k]
		gctx, sp := trace.Start(ctx, "core.group")
		results[k], errs[k] = gt.Flat().ValidateAllShardedContext(gctx, gt.Aggregates, budgets[k])
		if sp != nil {
			sp.SetInt("group", int64(k+1))
			sp.SetInt("licenses", int64(len(gt.Aggregates)))
			sp.SetInt("equations", results[k].Equations)
			sp.Fail(errs[k])
			sp.End()
		}
	}

	groupWorkers := workers
	if groupWorkers > len(trees) {
		groupWorkers = len(trees)
	}
	if groupWorkers <= 1 {
		for k := range trees {
			validateGroup(k)
		}
	} else {
		groups := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < groupWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := range groups {
					validateGroup(k)
				}
			}()
		}
		for k := range trees {
			groups <- k
		}
		close(groups)
		wg.Wait()
	}
	cut := false
	for k, err := range errs {
		if err == nil {
			continue
		}
		if drmerr.IsCancellation(err) {
			cut = true
			continue
		}
		return Report{}, fmt.Errorf("core: group %d: %w", k+1, err)
	}
	M.GroupedRuns.Inc()
	M.GroupedSeconds.ObserveSince(start)
	rep := merge(trees, results)
	if cut {
		return rep, drmerr.Incomplete("core.validate", ctx.Err())
	}
	return rep, nil
}

// shardBudgets splits the worker budget across groups proportionally to
// their equation counts, with at least one shard each. Group k's share of
// the 2^{N_k}−1 equations is computed in floating point so a 60-license
// group does not overflow the weights.
func shardBudgets(trees []*GroupTree, workers int) []int {
	budgets := make([]int, len(trees))
	for k := range budgets {
		budgets[k] = 1
	}
	if workers <= 1 || len(trees) == 0 {
		return budgets
	}
	weights := make([]float64, len(trees))
	var total float64
	for k, gt := range trees {
		weights[k] = math.Pow(2, float64(gt.Tree.N())) - 1
		total += weights[k]
	}
	if total <= 0 {
		return budgets
	}
	for k := range budgets {
		b := int(math.Round(float64(workers) * weights[k] / total))
		if b < 1 {
			b = 1
		}
		if b > workers {
			b = workers
		}
		budgets[k] = b
	}
	return budgets
}

// merge lifts per-group results to a global report. Completeness falls
// out of the counts alone: a group is complete iff its result evaluated
// all 2^{N_k}−1 equations (cached results from clean groups always are).
func merge(trees []*GroupTree, results []vtree.Result) Report {
	rep := Report{PerGroup: results, Completeness: make([]GroupCompleteness, len(results))}
	for k, res := range results {
		total := int64(1)<<uint(trees[k].Tree.N()) - 1
		rep.Completeness[k] = GroupCompleteness{
			Group:        k,
			MasksScanned: res.Equations,
			MasksTotal:   total,
			Complete:     res.Equations == total,
		}
		rep.Equations += res.Equations
		for _, v := range res.Violations {
			rep.Violations = append(rep.Violations, vtree.Violation{
				Set: trees[k].ToGlobal(v.Set),
				CV:  v.CV,
				AV:  v.AV,
			})
		}
	}
	sort.Slice(rep.Violations, func(i, j int) bool {
		return rep.Violations[i].Set < rep.Violations[j].Set
	})
	return rep
}

// EquationCount returns Σ_k (2^{N_k} − 1), the number of equations the
// grouped validator evaluates.
func EquationCount(gr overlap.Grouping) int64 {
	var total int64
	for _, g := range gr.Groups {
		total += int64(1)<<uint(g.Size) - 1
	}
	return total
}

// FullEquationCount returns 2^N − 1 as a float64 (N can exceed 62), the
// equation count of the undivided validator.
func FullEquationCount(n int) float64 {
	return math.Pow(2, float64(n)) - 1
}

// Gain computes the paper's eq. 3: G ≈ (2^N − 1) / Σ_k (2^{N_k} − 1).
// It is 1 for a single group and (2^N−1)/N when every license is isolated.
func Gain(gr overlap.Grouping) float64 {
	denom := float64(EquationCount(gr))
	if denom == 0 {
		return 1
	}
	return FullEquationCount(gr.N) / denom
}
