package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/vtree"
)

// cancelledCtx returns a context that is already cancelled.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestAuditContextExpiredDeadline(t *testing.T) {
	// An audit whose deadline has already passed must return promptly with
	// ErrAuditIncomplete, zero groups complete, and zero equations checked
	// — never a spurious verdict.
	aud := example1Auditor(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep, err := aud.AuditContext(ctx)
	if !errors.Is(err, drmerr.ErrAuditIncomplete) {
		t.Fatalf("err = %v, want ErrAuditIncomplete", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want the context cause preserved", err)
	}
	if drmerr.KindOf(err) != drmerr.KindIncomplete {
		t.Errorf("KindOf = %v, want KindIncomplete", drmerr.KindOf(err))
	}
	if rep.Complete() || rep.GroupsComplete() != 0 {
		t.Errorf("GroupsComplete = %d (complete=%v), want 0", rep.GroupsComplete(), rep.Complete())
	}
	if rep.Equations != 0 {
		t.Errorf("Equations = %d, want 0 for an already-expired deadline", rep.Equations)
	}
	if len(rep.Completeness) != 2 {
		t.Errorf("Completeness has %d groups, want 2", len(rep.Completeness))
	}
	for _, gc := range rep.Completeness {
		if gc.Complete || gc.MasksScanned != 0 {
			t.Errorf("group %d: %+v, want unscanned", gc.Group, gc)
		}
	}
	if len(rep.Violations) != 0 {
		t.Errorf("spurious violations: %v", rep.Violations)
	}
	if !aud.Stats().Incomplete {
		t.Error("stats record not marked incomplete")
	}
}

func TestAuditContextBackgroundMatchesAudit(t *testing.T) {
	// AuditContext(Background) and the legacy Audit must be byte-for-byte
	// identical — Audit is a thin wrapper.
	aud := example1Auditor(t)
	want, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	got, err := aud.AuditContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AuditContext diverges from Audit:\n got %+v\nwant %+v", got, want)
	}
	if !want.Complete() || want.GroupsComplete() != 2 {
		t.Errorf("uncancelled audit not complete: %+v", want.Completeness)
	}
}

func TestAuditorResumeAfterCancel(t *testing.T) {
	// Cancelling an audit must not poison the auditor: a later audit with
	// a fresh context produces exactly the uncancelled report.
	aud := example1Auditor(t)
	want, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aud.AuditContext(cancelledCtx()); !errors.Is(err, drmerr.ErrAuditIncomplete) {
		t.Fatalf("cancelled audit err = %v", err)
	}
	got, err := aud.AuditContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed audit diverges:\n got %+v\nwant %+v", got, want)
	}
}

// example1Incremental builds an incremental auditor with the Table 2 log
// already routed in.
func example1Incremental(t *testing.T) *IncrementalAuditor {
	t.Helper()
	ex := license.NewExample1()
	ia, err := NewIncrementalAuditor(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex.Log {
		if err := ia.Append(logstore.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	return ia
}

func TestIncrementalCancelKeepsGroupsDirty(t *testing.T) {
	// A cancelled incremental audit must not cache partial results: every
	// unfinished group stays dirty, and resuming with a fresh context
	// yields the same report an uninterrupted audit would have.
	ia := example1Incremental(t)
	if got := len(ia.DirtyGroups()); got != 2 {
		t.Fatalf("dirty groups before = %d, want 2", got)
	}
	rep, err := ia.AuditContext(cancelledCtx())
	if !errors.Is(err, drmerr.ErrAuditIncomplete) {
		t.Fatalf("err = %v, want ErrAuditIncomplete", err)
	}
	if rep.GroupsComplete() != 0 || len(rep.Violations) != 0 {
		t.Errorf("partial report = %+v, want nothing verified", rep)
	}
	if got := len(ia.DirtyGroups()); got != 2 {
		t.Errorf("dirty groups after cancel = %d, want 2 (partials must not be cached)", got)
	}

	want, err := example1Auditor(t).Audit()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ia.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed incremental audit diverges:\n got %+v\nwant %+v", got, want)
	}
	if len(ia.DirtyGroups()) != 0 {
		t.Errorf("groups still dirty after complete audit: %v", ia.DirtyGroups())
	}
}

func TestAuditGroupContextCancelled(t *testing.T) {
	ia := example1Incremental(t)
	if _, err := ia.AuditGroupContext(cancelledCtx(), 0); !errors.Is(err, drmerr.ErrAuditIncomplete) {
		t.Fatalf("err = %v, want ErrAuditIncomplete", err)
	}
	if got := len(ia.DirtyGroups()); got != 2 {
		t.Errorf("dirty groups = %d, want 2 (cancelled group stays dirty)", got)
	}
	res, err := ia.AuditGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equations != 7 { // 2^3-1 for the {L1,L2,L4} group
		t.Errorf("group 0 equations = %d, want 7", res.Equations)
	}
}

func TestTypedErrorsAcrossCore(t *testing.T) {
	ia := example1Incremental(t)
	if err := ia.Append(logstore.Record{Set: 0, Count: 1}); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("empty set err = %v, want ErrInvalidInput", err)
	}
	if err := ia.Append(logstore.Record{Set: bitset.MaskOf(7), Count: 1}); !errors.Is(err, drmerr.ErrCorpusMismatch) {
		t.Errorf("out-of-corpus err = %v, want ErrCorpusMismatch", err)
	}
	// {L1,L3} spans the two groups — impossible under Corollary 1.1.
	if err := ia.Append(logstore.Record{Set: bitset.MaskOf(0, 2), Count: 1}); !errors.Is(err, drmerr.ErrCrossGroup) {
		t.Errorf("cross-group err = %v, want ErrCrossGroup", err)
	}
	if _, err := ia.AuditGroup(99); !errors.Is(err, drmerr.ErrNotFound) {
		t.Errorf("out-of-range group err = %v, want ErrNotFound", err)
	}
	if err := ia.TopUp(-1, 10); !errors.Is(err, drmerr.ErrNotFound) {
		t.Errorf("bad top-up index err = %v, want ErrNotFound", err)
	}
	if err := ia.TopUp(0, 0); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("non-positive top-up err = %v, want ErrInvalidInput", err)
	}

	// Divide's shape errors classify as corpus mismatches.
	ex, tree, gr, a := example1Setup(t)
	_ = ex
	if _, err := Divide(tree, gr, a[:3]); !errors.Is(err, drmerr.ErrCorpusMismatch) {
		t.Errorf("short aggregates err = %v, want ErrCorpusMismatch", err)
	}
	if _, err := ValidateParallel(nil, 0); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("workers=0 err = %v, want ErrInvalidInput", err)
	}
}

func TestCancelledValidationSoundQuick(t *testing.T) {
	// Property (over random grouped instances): a validation run under an
	// already-cancelled context returns promptly with zero masks scanned
	// and no violations — never a spurious one — and re-running the same
	// trees with a fresh context reproduces the uncancelled report
	// exactly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gr, records, a := randomGroupedInstance(r)
		tree, err := vtree.BuildRecords(gr.N, records)
		if err != nil {
			return false
		}
		trees, err := Divide(tree, gr, a)
		if err != nil {
			return false
		}
		partial, err := ValidateParallelContext(cancelledCtx(), trees, 3)
		if !errors.Is(err, drmerr.ErrAuditIncomplete) {
			return false
		}
		if partial.Equations != 0 || len(partial.Violations) != 0 || partial.GroupsComplete() != 0 {
			return false
		}
		want, err := ValidateParallel(trees, 3)
		if err != nil {
			return false
		}
		got, err := ValidateParallelContext(context.Background(), trees, 3)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidateWithPlanContextCancelled(t *testing.T) {
	_, tree, gr, a := example1Setup(t)
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	plans := Plan(trees)
	rep, err := ValidateWithPlanContext(cancelledCtx(), trees, plans)
	if !errors.Is(err, drmerr.ErrAuditIncomplete) {
		t.Fatalf("err = %v, want ErrAuditIncomplete", err)
	}
	if rep.GroupsComplete() != 0 {
		t.Errorf("GroupsComplete = %d, want 0", rep.GroupsComplete())
	}
	want, err := ValidateWithPlan(trees, plans)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateWithPlanContext(context.Background(), trees, plans)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("planned validation diverges under Background context")
	}
}
