package core

import (
	"strings"
	"testing"

	"repro/internal/bitset"
)

// explainSetup builds Example 1's divided trees with an extra violating
// record on {L2}.
func explainSetup(t *testing.T, extra int64) []*GroupTree {
	t.Helper()
	_, tree, gr, a := example1Setup(t)
	if extra > 0 {
		if err := tree.Insert(bitset.MaskOf(1), extra); err != nil {
			t.Fatal(err)
		}
	}
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	return trees
}

func TestExplainSatisfiedEquation(t *testing.T) {
	trees := explainSetup(t, 0)
	e, err := Explain(trees, bitset.MaskOf(0, 1)) // {L1,L2}
	if err != nil {
		t.Fatal(err)
	}
	if e.Violated() {
		t.Error("satisfied equation reported violated")
	}
	// C⟨{1,2}⟩ = C[{1,2}] + C[{2}] = 840 + 400.
	if e.CV != 1240 || e.AV != 3000 || e.Deficit != -1760 {
		t.Errorf("explanation = CV %d AV %d deficit %d", e.CV, e.AV, e.Deficit)
	}
	if len(e.Contributions) != 2 {
		t.Fatalf("contributions = %v", e.Contributions)
	}
	// Descending count order: {L1,L2}:840 then {L2}:400.
	if e.Contributions[0].Set != bitset.MaskOf(0, 1) || e.Contributions[0].Count != 840 {
		t.Errorf("contributions[0] = %+v", e.Contributions[0])
	}
	if e.Contributions[1].Set != bitset.MaskOf(1) || e.Contributions[1].Count != 400 {
		t.Errorf("contributions[1] = %+v", e.Contributions[1])
	}
	if len(e.Budgets) != 2 || e.Budgets[0].Aggregate != 2000 || e.Budgets[1].Aggregate != 1000 {
		t.Errorf("budgets = %+v", e.Budgets)
	}
	if e.Remediation() != 0 {
		t.Errorf("remediation = %d, want 0", e.Remediation())
	}
}

func TestExplainViolatedEquation(t *testing.T) {
	trees := explainSetup(t, 700) // C⟨{2}⟩ = 1100 > 1000
	e, err := Explain(trees, bitset.MaskOf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Violated() || e.Deficit != 100 {
		t.Errorf("deficit = %d, want 100", e.Deficit)
	}
	if e.Remediation() != 100 {
		t.Errorf("remediation = %d, want 100", e.Remediation())
	}
	s := e.String()
	if !strings.Contains(s, "VIOLATED") || !strings.Contains(s, "A[{2}] = 1000") {
		t.Errorf("String = %q", s)
	}
	// Explanation must be consistent with the group's second tree too.
	e2, err := Explain(trees, bitset.MaskOf(2, 4)) // {L3,L5} in group 2
	if err != nil {
		t.Fatal(err)
	}
	if e2.Group != 1 || e2.CV != 820 || e2.AV != 5000 {
		t.Errorf("group-2 explanation = %+v", e2)
	}
}

func TestExplainErrors(t *testing.T) {
	trees := explainSetup(t, 0)
	if _, err := Explain(trees, 0); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Explain(trees, bitset.MaskOf(0, 2)); err == nil {
		t.Error("cross-group set accepted")
	}
	if _, err := Explain(trees, bitset.MaskOf(9)); err == nil {
		t.Error("out-of-corpus set accepted")
	}
}

func TestExplainReportMatchesViolations(t *testing.T) {
	trees := explainSetup(t, 700)
	rep, err := Validate(trees)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("expected violations")
	}
	exps, err := ExplainReport(trees, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(rep.Violations) {
		t.Fatalf("explanations = %d, violations = %d", len(exps), len(rep.Violations))
	}
	for i, e := range exps {
		v := rep.Violations[i]
		if e.Set != v.Set || e.CV != v.CV || e.AV != v.AV {
			t.Errorf("explanation %d (%v) disagrees with violation (%v)", i, e, v)
		}
		if !e.Violated() {
			t.Errorf("explanation %d not violated", i)
		}
		// Contribution totals reconstruct the LHS exactly.
		var sum int64
		for _, c := range e.Contributions {
			sum += c.Count
			if !c.Set.SubsetOf(e.Set) {
				t.Errorf("contribution %v outside %v", c.Set, e.Set)
			}
		}
		if sum != e.CV {
			t.Errorf("contributions sum to %d, CV = %d", sum, e.CV)
		}
	}
}

func TestTopContributors(t *testing.T) {
	trees := explainSetup(t, 0)
	e, err := Explain(trees, bitset.MaskOf(0, 1, 3)) // whole group 1
	if err != nil {
		t.Fatal(err)
	}
	top := e.TopContributors(1)
	if len(top) != 1 || top[0].Count != 840 {
		t.Errorf("top = %+v", top)
	}
	if got := e.TopContributors(99); len(got) != len(e.Contributions) {
		t.Errorf("overshoot TopContributors = %d", len(got))
	}
}
