package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/vtree"
	"repro/internal/workload"
)

func TestIncrementalMatchesBatchOnExample1(t *testing.T) {
	ex := license.NewExample1()
	ia, err := NewIncrementalAuditor(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex.Log {
		if err := ia.Append(logstore.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	if ia.Records() != len(ex.Log) {
		t.Errorf("Records = %d, want %d", ia.Records(), len(ex.Log))
	}
	rep, err := ia.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Equations != 10 {
		t.Errorf("report = %+v", rep)
	}

	// Batch pipeline on the same data must agree.
	store := logstore.NewMem(0)
	for _, e := range ex.Log {
		if err := store.Append(logstore.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := NewAuditor(ex.Corpus, store)
	if err != nil {
		t.Fatal(err)
	}
	batchRep, err := batch.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if batchRep.Equations != rep.Equations || len(batchRep.Violations) != len(rep.Violations) {
		t.Errorf("incremental %+v vs batch %+v", rep, batchRep)
	}
}

func TestIncrementalRejectsBadRecords(t *testing.T) {
	ex := license.NewExample1()
	ia, err := NewIncrementalAuditor(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	if err := ia.Append(logstore.Record{Set: 0, Count: 5}); err == nil {
		t.Error("empty set accepted")
	}
	if err := ia.Append(logstore.Record{Set: bitset.MaskOf(9), Count: 5}); err == nil {
		t.Error("out-of-corpus set accepted")
	}
	// {L1, L3} crosses the two groups.
	if err := ia.Append(logstore.Record{Set: bitset.MaskOf(0, 2), Count: 5}); err == nil {
		t.Error("cross-group record accepted")
	}
}

func TestIncrementalHeadroom(t *testing.T) {
	ex := license.NewExample1()
	ia, err := NewIncrementalAuditor(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex.Log {
		if err := ia.Append(logstore.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	// Same binding equation as the global Headroom test: {L2} has 600 left.
	room, err := ia.Headroom(bitset.MaskOf(1))
	if err != nil {
		t.Fatal(err)
	}
	if room != 600 {
		t.Errorf("Headroom({2}) = %d, want 600", room)
	}
	// Group-local headroom must agree with whole-corpus headroom, since
	// cross-group equations can never bind (their sets' counts are all
	// within-group anyway).
	full, err := vtree.BuildRecords(5, toRecords(ex.Log))
	if err != nil {
		t.Fatal(err)
	}
	globalRoom, err := full.Headroom(bitset.MaskOf(1), ex.Corpus.Aggregates())
	if err != nil {
		t.Fatal(err)
	}
	if room != globalRoom {
		t.Errorf("group-local headroom %d != global %d", room, globalRoom)
	}
}

func toRecords(entries []license.LogEntry) []logstore.Record {
	out := make([]logstore.Record, len(entries))
	for i, e := range entries {
		out[i] = logstore.Record{Set: e.Set, Count: e.Count}
	}
	return out
}

func TestIncrementalAuditGroup(t *testing.T) {
	ex := license.NewExample1()
	ia, err := NewIncrementalAuditor(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Blow only group 2 ({L3, L5}).
	if err := ia.Append(logstore.Record{Set: bitset.MaskOf(2, 4), Count: 99999}); err != nil {
		t.Fatal(err)
	}
	res1, err := ia.AuditGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.OK() {
		t.Errorf("group 1 should be clean: %v", res1.Violations)
	}
	res2, err := ia.AuditGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.OK() {
		t.Error("group 2 violation missed")
	}
	if _, err := ia.AuditGroup(5); err == nil {
		t.Error("out-of-range group accepted")
	}
}

func TestIncrementalRebaseAfterCorpusGrowth(t *testing.T) {
	// Start with L1, L2 (one group), log some issuance, then acquire a
	// disjoint L3 and a bridging L4; Rebase must re-route existing records
	// and keep audits consistent with a from-scratch batch run.
	schema := geometry.MustSchema(geometry.Axis{Name: "x", Kind: geometry.KindInterval})
	mk := func(name string, lo, hi int64, agg int64) *license.License {
		return &license.License{
			Name: name, Kind: license.Redistribution, Content: "K",
			Permission: license.Play,
			Rect:       geometry.MustRect(schema, geometry.IntervalValue(interval.New(lo, hi))),
			Aggregate:  agg,
		}
	}
	corpus := license.NewCorpus(schema)
	corpus.MustAdd(mk("L1", 0, 10, 100))
	corpus.MustAdd(mk("L2", 5, 15, 100))
	ia, err := NewIncrementalAuditor(corpus)
	if err != nil {
		t.Fatal(err)
	}
	var all []logstore.Record
	add := func(set bitset.Mask, count int64) {
		t.Helper()
		r := logstore.Record{Set: set, Count: count}
		if err := ia.Append(r); err != nil {
			t.Fatal(err)
		}
		all = append(all, r)
	}
	add(bitset.MaskOf(0, 1), 40)
	add(bitset.MaskOf(0), 10)

	// Disjoint acquisition: groups 1 → 2.
	corpus.MustAdd(mk("L3", 100, 110, 100))
	if err := ia.Rebase(); err != nil {
		t.Fatal(err)
	}
	if ia.Grouping().NumGroups() != 2 {
		t.Fatalf("groups after L3 = %d, want 2", ia.Grouping().NumGroups())
	}
	add(bitset.MaskOf(2), 25)

	// Bridging acquisition: groups 2 → 1.
	corpus.MustAdd(mk("L4", 8, 105, 100))
	if err := ia.Rebase(); err != nil {
		t.Fatal(err)
	}
	if ia.Grouping().NumGroups() != 1 {
		t.Fatalf("groups after L4 = %d, want 1", ia.Grouping().NumGroups())
	}
	rep, err := ia.Audit()
	if err != nil {
		t.Fatal(err)
	}

	// Batch over the full log and final corpus must agree.
	store := logstore.NewMem(0)
	for _, r := range all {
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	batch, err := NewAuditor(corpus, store)
	if err != nil {
		t.Fatal(err)
	}
	batchRep, err := batch.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Equations != batchRep.Equations || len(rep.Violations) != len(batchRep.Violations) {
		t.Errorf("incremental %+v vs batch %+v", rep, batchRep)
	}
}

func TestIncrementalMatchesBatchQuick(t *testing.T) {
	// Random workloads: incremental and batch audits agree exactly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := workload.Config{
			N:                 1 + r.Intn(12),
			Groups:            1 + r.Intn(4),
			Seed:              seed,
			RecordsPerLicense: 30,
			// Tight budgets so violations occur.
			AggregateLo: 50, AggregateHi: 400,
			CountLo: 10, CountHi: 30,
		}
		w, err := workload.Generate(cfg)
		if err != nil {
			return false
		}
		ia, err := NewIncrementalAuditor(w.Corpus)
		if err != nil {
			return false
		}
		for _, rec := range w.Records {
			if err := ia.Append(rec); err != nil {
				return false
			}
		}
		incRep, err := ia.Audit()
		if err != nil {
			return false
		}
		batch, err := NewAuditor(w.Corpus, w.Store())
		if err != nil {
			return false
		}
		batchRep, err := batch.Audit()
		if err != nil {
			return false
		}
		if incRep.Equations != batchRep.Equations ||
			len(incRep.Violations) != len(batchRep.Violations) {
			return false
		}
		for i := range incRep.Violations {
			if incRep.Violations[i] != batchRep.Violations[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalTopUp(t *testing.T) {
	ex := license.NewExample1()
	ia, err := NewIncrementalAuditor(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Violate {L2}: 1100 > 1000.
	if err := ia.Append(logstore.Record{Set: bitset.MaskOf(1), Count: 1100}); err != nil {
		t.Fatal(err)
	}
	rep, err := ia.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("violation missed")
	}
	// Remediate via the cached aggregates (corpus + auditor in lockstep).
	if err := ex.Corpus.TopUp(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := ia.TopUp(1, 100); err != nil {
		t.Fatal(err)
	}
	rep, err = ia.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("still violated after top-up: %v", rep.Violations)
	}
	if err := ia.TopUp(1, 0); err == nil {
		t.Error("zero top-up accepted")
	}
	if err := ia.TopUp(99, 5); err == nil {
		t.Error("bad index accepted")
	}
}
