package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
	"repro/internal/logstore"
)

// Explanation decomposes one validation equation C⟨S⟩ ≤ A[S] into its
// parts, so an operator can see *why* a set is violated (or how close it
// is): which logged belongs-to sets contribute to the LHS, and which
// license budgets make up the RHS. All masks are global corpus indexes.
type Explanation struct {
	// Set is the equation's license set S.
	Set bitset.Mask
	// Group is the index of the overlap group containing S.
	Group int
	// CV and AV are the equation's two sides.
	CV, AV int64
	// Deficit is CV − AV: positive means violated.
	Deficit int64
	// Contributions lists the non-zero C[S'] terms of the LHS, S' ⊆ S,
	// in descending count order — the issuances to claw back first.
	Contributions []logstore.Record
	// Budgets lists each member license's aggregate constraint — the
	// budgets to top up.
	Budgets []LicenseBudget
}

// LicenseBudget is one RHS term of an explained equation.
type LicenseBudget struct {
	// Index is the global corpus index of the license.
	Index int
	// Aggregate is its budget A[j].
	Aggregate int64
}

// Violated reports whether the explained equation is violated.
func (e Explanation) Violated() bool { return e.Deficit > 0 }

// String renders a compact operator-facing summary.
func (e Explanation) String() string {
	var b strings.Builder
	verdict := "satisfied"
	if e.Violated() {
		verdict = "VIOLATED"
	}
	fmt.Fprintf(&b, "equation %v: issued %d vs budget %d (%s, margin %d)\n",
		e.Set, e.CV, e.AV, verdict, e.AV-e.CV)
	for _, c := range e.Contributions {
		fmt.Fprintf(&b, "  C[%v] = %d\n", c.Set, c.Count)
	}
	for _, bd := range e.Budgets {
		fmt.Fprintf(&b, "  A[{%d}] = %d\n", bd.Index+1, bd.Aggregate)
	}
	return b.String()
}

// Explain decomposes the validation equation for the given GLOBAL set
// over divided trees. The set must be non-empty and confined to a single
// group (cross-group sets have identically-zero LHS terms and are exactly
// the redundant equations the method removes; asking to explain one is a
// caller bug worth surfacing).
func Explain(trees []*GroupTree, set bitset.Mask) (Explanation, error) {
	if set.Empty() {
		return Explanation{}, fmt.Errorf("core: explain of empty set")
	}
	for k, gt := range trees {
		if !set.Intersects(gt.Group.Members) {
			continue
		}
		if !set.SubsetOf(gt.Group.Members) {
			return Explanation{}, fmt.Errorf(
				"core: set %v spans groups; its equation is redundant (Theorem 2) — explain its per-group projections instead", set)
		}
		return explainInGroup(gt, k, set), nil
	}
	return Explanation{}, fmt.Errorf("core: set %v outside every group", set)
}

// explainInGroup builds the explanation from group k's tree.
func explainInGroup(gt *GroupTree, k int, set bitset.Mask) Explanation {
	// Translate to the tree's local indexes.
	var local bitset.Mask
	pos := make(map[int]int, set.Len())
	for p, j := range gt.localToGlobal {
		pos[j] = p
	}
	set.ForEach(func(j int) bool {
		local = local.With(pos[j])
		return true
	})

	e := Explanation{Set: set, Group: k}
	for _, rec := range gt.Tree.Records() {
		if !rec.Set.SubsetOf(local) {
			continue
		}
		e.CV += rec.Count
		e.Contributions = append(e.Contributions, logstore.Record{
			Set:   gt.ToGlobal(rec.Set),
			Count: rec.Count,
		})
	}
	sort.Slice(e.Contributions, func(i, j int) bool {
		if e.Contributions[i].Count != e.Contributions[j].Count {
			return e.Contributions[i].Count > e.Contributions[j].Count
		}
		return e.Contributions[i].Set < e.Contributions[j].Set
	})
	local.ForEach(func(p int) bool {
		e.AV += gt.Aggregates[p]
		e.Budgets = append(e.Budgets, LicenseBudget{
			Index:     gt.localToGlobal[p],
			Aggregate: gt.Aggregates[p],
		})
		return true
	})
	e.Deficit = e.CV - e.AV
	return e
}

// ExplainReport explains every violation in a report, in report order.
func ExplainReport(trees []*GroupTree, rep Report) ([]Explanation, error) {
	out := make([]Explanation, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		e, err := Explain(trees, v.Set)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Remediation suggests the minimal additional budget per member license
// that would satisfy the equation if granted to ANY single member (since
// the RHS sums member budgets, a deficit d is cured by adding d to any
// one member's aggregate). Returns zero for satisfied equations.
func (e Explanation) Remediation() int64 {
	if e.Deficit <= 0 {
		return 0
	}
	return e.Deficit
}

// TopContributors returns the n largest LHS contributions (fewer if the
// equation has fewer non-zero terms).
func (e Explanation) TopContributors(n int) []logstore.Record {
	if n > len(e.Contributions) {
		n = len(e.Contributions)
	}
	return e.Contributions[:n]
}
