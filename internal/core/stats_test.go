package core

import (
	"testing"

	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/vtree"
)

// example1Auditor builds the batch auditor over the paper's fig 3 corpus
// and Table 2 log.
func example1Auditor(t *testing.T) *Auditor {
	t.Helper()
	ex := license.NewExample1()
	store := logstore.NewMem(0)
	for _, e := range ex.Log {
		if err := store.Append(logstore.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	aud, err := NewAuditor(ex.Corpus, store)
	if err != nil {
		t.Fatal(err)
	}
	return aud
}

// TestBatchAuditStats pins the AuditStats record on the paper's example:
// a batch audit revalidates everything, so the realized gain must equal
// eq. 3's theoretical G (31/10 = 3.1).
func TestBatchAuditStats(t *testing.T) {
	aud := example1Auditor(t)
	rep, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	st := aud.Stats()
	if st.Licenses != 5 || st.Groups != 2 || st.LogRecords != 6 {
		t.Errorf("stats shape = %+v", st)
	}
	if st.EquationsChecked != rep.Equations || st.EquationsChecked != 10 {
		t.Errorf("equations checked = %d, want %d", st.EquationsChecked, rep.Equations)
	}
	if st.EquationsFull != 31 || st.EquationsEliminated != 21 {
		t.Errorf("full = %v eliminated = %v, want 31 / 21", st.EquationsFull, st.EquationsEliminated)
	}
	if st.GainRealized != st.GainTheoretical {
		t.Errorf("realized gain %v != theoretical %v on a full revalidation",
			st.GainRealized, st.GainTheoretical)
	}
	if st.GainRealized != aud.Gain() {
		t.Errorf("realized gain %v != auditor gain %v", st.GainRealized, aud.Gain())
	}
	if st.GroupsRevalidated != 2 || st.CacheHits != 0 || st.CacheMisses != 2 {
		t.Errorf("cache economy = %+v", st)
	}
	if st.ShardsUsed < 2 {
		t.Errorf("shards used = %d, want >= one per group", st.ShardsUsed)
	}
	if st.Violations != 0 {
		t.Errorf("violations = %d on the clean Table 2 log", st.Violations)
	}
	if st.Phases.Validate < 0 || st.Phases.Build < 0 {
		t.Errorf("negative phase timings: %+v", st.Phases)
	}
}

// TestIncrementalAuditStats exercises the dirty-group economy: first
// audit revalidates everything, a clean re-audit is all cache hits, and a
// single append dirties exactly one group.
func TestIncrementalAuditStats(t *testing.T) {
	ex := license.NewExample1()
	ia, err := NewIncrementalAuditor(ex.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex.Log {
		if err := ia.Append(logstore.Record{Set: e.Set, Count: e.Count}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ia.Audit(); err != nil {
		t.Fatal(err)
	}
	st := ia.LastStats()
	if st.GroupsRevalidated != 2 || st.CacheHits != 0 {
		t.Errorf("first audit stats = %+v", st)
	}
	if st.EquationsChecked != 10 || st.GainRealized != st.GainTheoretical {
		t.Errorf("first audit equations/gain = %+v", st)
	}

	// Clean re-audit: all groups served from cache, nothing checked.
	if _, err := ia.Audit(); err != nil {
		t.Fatal(err)
	}
	st = ia.LastStats()
	if st.GroupsRevalidated != 0 || st.CacheHits != 2 || st.EquationsChecked != 0 {
		t.Errorf("clean audit stats = %+v", st)
	}
	if st.ShardsUsed != 0 {
		t.Errorf("clean audit fanned out %d shards", st.ShardsUsed)
	}

	// One record into group {3,5} (global licenses 3 and 5, mask bits 2/4)
	// dirties exactly that group.
	if err := ia.Append(logstore.Record{Set: 0b00100, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ia.Audit(); err != nil {
		t.Fatal(err)
	}
	st = ia.LastStats()
	if st.GroupsRevalidated != 1 || st.CacheHits != 1 {
		t.Errorf("dirty-one audit stats = %+v", st)
	}
	if st.EquationsChecked != 3 { // group {3,5}: 2^2−1
		t.Errorf("equations checked = %d, want 3", st.EquationsChecked)
	}
	// Partial revalidation realizes MORE gain than eq 3 promises.
	if st.GainRealized <= st.GainTheoretical {
		t.Errorf("partial audit gain %v not above theoretical %v",
			st.GainRealized, st.GainTheoretical)
	}
}

// TestInstrumentedAuditMovesCounters wires a registry and checks the
// audit-layer counters move and expose with the expected names.
func TestInstrumentedAuditMovesCounters(t *testing.T) {
	reg := obs.NewRegistry()
	vtree.Instrument(reg)
	Instrument(reg)
	defer func() { vtree.M, M = vtree.Metrics{}, Metrics{} }()

	aud := example1Auditor(t)
	if _, err := aud.Audit(); err != nil {
		t.Fatal(err)
	}
	if got := M.AuditRuns.Value(); got != 1 {
		t.Errorf("audit runs = %d, want 1", got)
	}
	if got := M.GroupsRevalidated.Value(); got != 2 {
		t.Errorf("groups revalidated = %d, want 2", got)
	}
	if got := vtree.M.EquationsChecked.Value(); got != 10 {
		t.Errorf("equations checked counter = %d, want 10", got)
	}
	if got := M.Gain.Value(); got < 3.09 || got > 3.11 {
		t.Errorf("gain gauge = %v, want 3.1", got)
	}
	if got := vtree.M.Flattens.Value(); got != 2 {
		t.Errorf("flattens = %d, want one per group", got)
	}
}

// TestShardsUsedMatchesValidateFanOut pins the stats-side shard
// accounting against vtree's ShardCount for a dominant-group budget.
func TestShardsUsedMatchesValidateFanOut(t *testing.T) {
	aud := example1Auditor(t)
	aud.Workers = 4
	if _, err := aud.Audit(); err != nil {
		t.Fatal(err)
	}
	budgets := shardBudgets(aud.Trees(), 4)
	want := 0
	for k, gt := range aud.Trees() {
		want += vtree.ShardCount(gt.Tree.N(), budgets[k])
	}
	if got := aud.Stats().ShardsUsed; got != want {
		t.Errorf("shards used = %d, want %d", got, want)
	}
}
