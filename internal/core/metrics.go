package core

import (
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

// M holds the package's metric hooks, nil until Instrument is called —
// obs metric methods are no-ops on nil receivers, so the uninstrumented
// validator records nothing and allocates nothing. Recording happens once
// per grouped run or audit, never per equation. Instrument must run
// before concurrent use (server startup).
var M Metrics

// Metrics are the audit-layer signals: grouped-run throughput, per-phase
// cost decomposition (the runtime form of the paper's C_T/D_T/V_T), the
// dirty-group cache economy, and the realized gain G.
type Metrics struct {
	// GroupedRuns / GroupedSeconds cover Validate/ValidateParallel.
	GroupedRuns    *obs.Counter
	GroupedSeconds *obs.Histogram
	// AuditRuns counts Auditor/IncrementalAuditor audits.
	AuditRuns *obs.Counter
	// AuditsIncomplete counts audits cut short by context cancellation
	// or deadline expiry (they still count in AuditRuns).
	AuditsIncomplete *obs.Counter
	// GroupsRevalidated, CacheHits, CacheMisses track the dirty-group
	// result cache: a hit is a clean group served from cache, a miss a
	// group whose equations were re-evaluated.
	GroupsRevalidated *obs.Counter
	CacheHits         *obs.Counter
	CacheMisses       *obs.Counter
	// Gain is the realized gain G of the last audit.
	Gain *obs.FloatGauge
	// Phase histograms decompose audit wall time (one series per phase of
	// drm_audit_phase_seconds).
	PhaseBuild    *obs.Histogram
	PhaseOverlap  *obs.Histogram
	PhaseDivide   *obs.Histogram
	PhaseFlatten  *obs.Histogram
	PhaseValidate *obs.Histogram
}

// Instrument registers the package's metric families on reg and points
// the hooks at them.
func Instrument(reg *obs.Registry) {
	phases := reg.HistogramVec("drm_audit_phase_seconds",
		"Audit wall time decomposed by pipeline phase.", nil, "phase")
	M = Metrics{
		GroupedRuns: reg.Counter("drm_grouped_validate_runs_total",
			"Grouped validation runs (Validate/ValidateParallel)."),
		GroupedSeconds: reg.Histogram("drm_grouped_validate_seconds",
			"Wall time of one grouped validation run.", nil),
		AuditRuns: reg.Counter("drm_audit_runs_total",
			"Offline audits (batch and incremental)."),
		AuditsIncomplete: reg.Counter("drm_audit_incomplete_total",
			"Audits cut short by context cancellation or deadline expiry."),
		GroupsRevalidated: reg.Counter("drm_audit_groups_revalidated_total",
			"Groups whose equations were re-evaluated by audits."),
		CacheHits: reg.Counter("drm_audit_cache_hits_total",
			"Clean groups served from the per-group result cache."),
		CacheMisses: reg.Counter("drm_audit_cache_misses_total",
			"Groups revalidated because their cached result was stale or absent."),
		Gain: reg.FloatGauge("drm_audit_gain",
			"Realized gain G of the last audit (eq 3 denominator measured)."),
		PhaseBuild:    phases.With("build"),
		PhaseOverlap:  phases.With("overlap"),
		PhaseDivide:   phases.With("divide"),
		PhaseFlatten:  phases.With("flatten"),
		PhaseValidate: phases.With("validate"),
	}
}

// shardsUsed returns the total number of intra-group mask shards a
// ValidateParallel call over trees fans out to: the per-group worker
// budgets rounded up to vtree's power-of-two shard counts. It mirrors the
// run deterministically so stats never have to thread counts out of the
// worker goroutines.
func shardsUsed(trees []*GroupTree, workers int) int {
	budgets := shardBudgets(trees, workers)
	total := 0
	for k, gt := range trees {
		total += vtree.ShardCount(gt.Tree.N(), budgets[k])
	}
	return total
}

// buildAuditStats assembles the typed run record shared by the batch and
// incremental auditors. checked is the number of equations actually
// evaluated this run (cached groups excluded); rep is the merged report.
func buildAuditStats(licenses, logRecords int, gr overlap.Grouping, rep Report,
	checked int64, shards, revalidated, hits int, phases obs.AuditPhases) obs.AuditStats {
	full := FullEquationCount(licenses)
	realized := 0.0
	if checked > 0 {
		realized = full / float64(checked)
	}
	return obs.AuditStats{
		Licenses:            licenses,
		LogRecords:          logRecords,
		Groups:              gr.NumGroups(),
		EquationsChecked:    checked,
		EquationsFull:       full,
		EquationsEliminated: full - float64(checked),
		GainTheoretical:     Gain(gr),
		GainRealized:        realized,
		ShardsUsed:          shards,
		GroupsRevalidated:   revalidated,
		CacheHits:           hits,
		CacheMisses:         revalidated,
		Violations:          len(rep.Violations),
		Phases:              phases,
	}
}
