package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vtree"
)

func TestStrategyString(t *testing.T) {
	if StrategyTree.String() != "tree" || StrategySOS.String() != "sos" ||
		StrategyDirect.String() != "direct" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy name wrong")
	}
}

func TestPlanShape(t *testing.T) {
	trees := explainSetup(t, 0)
	plans := Plan(trees)
	if len(plans) != len(trees) {
		t.Fatalf("plans = %d, want %d", len(plans), len(trees))
	}
	for k, p := range plans {
		if p.Group != k {
			t.Errorf("plan %d has group %d", k, p.Group)
		}
		if p.Cost <= 0 {
			t.Errorf("plan %d cost = %v", k, p.Cost)
		}
	}
}

func TestPlanPrefersDirectForSparseGroups(t *testing.T) {
	// Example 1's groups have very few records relative to 2^{N_k}; the
	// per-equation scan (or the tree) should win, never SOS-with-big-table.
	trees := explainSetup(t, 0)
	for _, p := range Plan(trees) {
		if p.Strategy == StrategySOS {
			// SOS costs eqs×(n+2)+nodes vs direct eqs×(records+n): with
			// records ≤ 3, direct is cheaper. If the model says otherwise
			// something drifted.
			t.Errorf("group %d planned SOS on a 3-record group", p.Group)
		}
	}
}

func TestValidateWithPlanMatchesValidateQuick(t *testing.T) {
	// All strategies, as chosen by the planner, agree with the default
	// tree validation — violations, counts and all.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gr, records, a := randomGroupedInstance(r)
		tree, err := vtree.BuildRecords(gr.N, records)
		if err != nil {
			return false
		}
		trees, err := Divide(tree, gr, a)
		if err != nil {
			return false
		}
		want, err := Validate(trees)
		if err != nil {
			return false
		}
		got, err := ValidateWithPlan(trees, Plan(trees))
		if err != nil {
			return false
		}
		if got.Equations != want.Equations || len(got.Violations) != len(want.Violations) {
			return false
		}
		for i := range got.Violations {
			if got.Violations[i] != want.Violations[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidateWithPlanAllStrategiesAgree(t *testing.T) {
	// Force each strategy on every group of a random instance.
	r := rand.New(rand.NewSource(77))
	gr, records, a := randomGroupedInstance(r)
	tree, err := vtree.BuildRecords(gr.N, records)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	var reports []Report
	for _, s := range []Strategy{StrategyTree, StrategySOS, StrategyDirect} {
		plans := make([]GroupPlan, len(trees))
		for k := range plans {
			plans[k] = GroupPlan{Group: k, Strategy: s}
		}
		rep, err := ValidateWithPlan(trees, plans)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		reports = append(reports, rep)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Equations != reports[0].Equations ||
			len(reports[i].Violations) != len(reports[0].Violations) {
			t.Fatalf("strategy %d diverges: %+v vs %+v", i, reports[i], reports[0])
		}
		for j := range reports[i].Violations {
			if reports[i].Violations[j] != reports[0].Violations[j] {
				t.Fatalf("strategy %d violation %d differs", i, j)
			}
		}
	}
}

func TestValidateWithPlanErrors(t *testing.T) {
	trees := explainSetup(t, 0)
	if _, err := ValidateWithPlan(trees, nil); err == nil {
		t.Error("plan arity mismatch accepted")
	}
	bad := make([]GroupPlan, len(trees))
	for k := range bad {
		bad[k] = GroupPlan{Group: k, Strategy: Strategy(9)}
	}
	if _, err := ValidateWithPlan(trees, bad); err == nil {
		t.Error("unknown strategy accepted")
	}
}
