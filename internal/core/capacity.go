package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/bitset"
)

// CapacityRow reports the issuance capacity left against one
// redistribution license: how many more counts could be granted to
// licenses that belong to {j} alone, given every equation of its group.
type CapacityRow struct {
	// Index is the global corpus index; Group its overlap group.
	Index, Group int
	// Budget is A[j].
	Budget int64
	// Consumed is C[{j}] — counts already attributed to exactly {j}.
	Consumed int64
	// Headroom is the group-local equation headroom for base {j}: the
	// largest count a new {j}-only issuance could carry.
	Headroom int64
}

// GroupUtilization aggregates one group's budget consumption.
type GroupUtilization struct {
	// Group indexes the GroupTree slice.
	Group int
	// Members is the group's license set (global indexes).
	Members bitset.Mask
	// Budget is A[S] for the whole group; Consumed is C⟨S⟩.
	Budget, Consumed int64
}

// Utilization returns Consumed/Budget in [0, ∞) (0 for empty budgets).
func (g GroupUtilization) Utilization() float64 {
	if g.Budget == 0 {
		return 0
	}
	return float64(g.Consumed) / float64(g.Budget)
}

// CapacityReport is the operator-facing "how much can we still sell"
// summary the validation equations imply.
type CapacityReport struct {
	Rows   []CapacityRow
	Groups []GroupUtilization
}

// Capacity computes per-license headrooms and per-group utilization over
// divided trees. Cost is one group-local Headroom per license —
// Σ_k N_k·2^{N_k−1} equation evaluations, the same regime as an audit.
func Capacity(trees []*GroupTree) (CapacityReport, error) {
	var rep CapacityReport
	for k, gt := range trees {
		full := bitset.FullMask(gt.Tree.N())
		var budget int64
		for _, a := range gt.Aggregates {
			budget += a
		}
		rep.Groups = append(rep.Groups, GroupUtilization{
			Group:    k,
			Members:  gt.Group.Members,
			Budget:   budget,
			Consumed: gt.Tree.SumSubsets(full),
		})
		for p, j := range gt.localToGlobal {
			room, err := gt.Tree.Headroom(bitset.MaskOf(p), gt.Aggregates)
			if err != nil {
				return CapacityReport{}, fmt.Errorf("core: capacity of license %d: %w", j+1, err)
			}
			rep.Rows = append(rep.Rows, CapacityRow{
				Index:    j,
				Group:    k,
				Budget:   gt.Aggregates[p],
				Consumed: gt.Tree.Count(bitset.MaskOf(p)),
				Headroom: room,
			})
		}
	}
	return rep, nil
}

// Write renders the report as aligned text tables.
func (rep CapacityReport) Write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "license\tgroup\tbudget\tconsumed(exact)\theadroom\t")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "L%d\t%d\t%d\t%d\t%d\t\n",
			r.Index+1, r.Group+1, r.Budget, r.Consumed, r.Headroom)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 4, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "group\tmembers\tbudget\tconsumed\tutilization\t")
	for _, g := range rep.Groups {
		fmt.Fprintf(tw, "%d\t%v\t%d\t%d\t%.1f%%\t\n",
			g.Group+1, g.Members, g.Budget, g.Consumed, 100*g.Utilization())
	}
	return tw.Flush()
}
