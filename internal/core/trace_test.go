package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/drmerr"
	"repro/internal/logstore"
	"repro/internal/trace"
)

// tracedAudit runs an Example 1 audit under a live tracer root with the
// given (possibly cancelled) context and returns the retained trace.
func tracedAudit(t *testing.T, ctx context.Context) (*trace.TraceRecord, error) {
	t.Helper()
	aud := example1Auditor(t) // construction under a healthy context
	tr := trace.New(trace.Options{Capacity: 4})
	ctx, root := tr.Root(ctx, "test.audit")
	_, err := aud.AuditContext(ctx)
	root.End()
	rec := tr.Get(root.TraceID())
	if rec == nil {
		t.Fatal("audit trace not retained")
	}
	return rec, err
}

// assertWellFormed checks the structural invariants every retained trace
// must satisfy, complete or partial: unique span IDs, parents that
// resolve in-trace, exactly one root, and ended (non-negative duration)
// spans throughout.
func assertWellFormed(t *testing.T, rec *trace.TraceRecord) {
	t.Helper()
	seen := map[uint64]bool{}
	roots := 0
	for _, s := range rec.Spans {
		if seen[s.ID] {
			t.Errorf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
		if s.Duration < 0 {
			t.Errorf("span %d (%s) has negative duration %d", s.ID, s.Name, s.Duration)
		}
	}
	for _, s := range rec.Spans {
		if s.Parent == 0 {
			roots++
			continue
		}
		if !seen[s.Parent] {
			t.Errorf("span %d (%s): parent %d not in trace", s.ID, s.Name, s.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("%d root spans, want 1", roots)
	}
}

func spanByName(rec *trace.TraceRecord, name string) (trace.SpanRecord, bool) {
	for _, s := range rec.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return trace.SpanRecord{}, false
}

// TestAuditTraceComplete pins the span tree of a clean full audit:
// flatten and validate phases under the root, one core.group span per
// group, shard spans under those.
func TestAuditTraceComplete(t *testing.T) {
	rec, err := tracedAudit(t, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormed(t, rec)
	if rec.Error {
		t.Error("clean audit trace marked as error")
	}
	for _, want := range []string{"core.flatten", "core.validate", "core.group", "vtree.shard"} {
		if _, ok := spanByName(rec, want); !ok {
			t.Errorf("span %q missing from audit trace", want)
		}
	}
	groups := 0
	for _, s := range rec.Spans {
		if s.Name == "core.group" {
			groups++
		}
	}
	if groups != 2 {
		t.Errorf("core.group spans = %d, want 2 (Example 1 has two groups)", groups)
	}
}

// TestAuditTraceCancelledPartial is the satellite acceptance test: a
// deadline-cut audit must still produce a structurally well-formed
// (partial) trace — every started span ended, parents resolved, the
// validate phase marked failed — so the operator can see exactly where
// the deadline landed.
func TestAuditTraceCancelledPartial(t *testing.T) {
	rec, err := tracedAudit(t, cancelledCtx())
	if !errors.Is(err, drmerr.ErrAuditIncomplete) {
		t.Fatalf("err = %v, want ErrAuditIncomplete", err)
	}
	assertWellFormed(t, rec)
	vsp, ok := spanByName(rec, "core.validate")
	if !ok {
		t.Fatal("partial trace has no core.validate span")
	}
	if vsp.Error == "" {
		t.Error("cut validate span carries no error")
	}
	// The root ends after the cut, so it is recorded last and the record
	// is complete despite the cancellation.
	if last := rec.Spans[len(rec.Spans)-1]; last.ID != 1 {
		t.Errorf("last recorded span is %d (%s), want the root", last.ID, last.Name)
	}
}

// TestIncrementalAuditTracesDirtyGroupsOnly checks the incremental
// auditor's traced validate touches only the dirty group.
func TestIncrementalAuditTracesDirtyGroupsOnly(t *testing.T) {
	inc := example1Incremental(t)
	if _, err := inc.Audit(); err != nil { // settle: all groups clean
		t.Fatal(err)
	}
	if err := inc.Append(logstore.Record{Set: 0b00001, Count: 1}); err != nil { // dirty group {1,2}
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Capacity: 4})
	ctx, root := tr.Root(context.Background(), "test.incremental")
	if _, err := inc.AuditContext(ctx); err != nil {
		t.Fatal(err)
	}
	root.End()
	rec := tr.Get(root.TraceID())
	if rec == nil {
		t.Fatal("incremental audit trace not retained")
	}
	assertWellFormed(t, rec)
	groups := 0
	for _, s := range rec.Spans {
		if s.Name == "core.group" {
			groups++
		}
	}
	if groups != 1 {
		t.Errorf("core.group spans = %d, want 1 (only the dirty group revalidates)", groups)
	}
}
