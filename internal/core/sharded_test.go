package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/vtree"
	"repro/internal/workload"
)

// randomShardInstance plants 1–5 groups over up to 16 licenses and a log
// confined to single groups (Corollary 1.1), with budgets tight enough
// that a healthy fraction of runs violate equations.
func randomShardInstance(r *rand.Rand) (overlap.Grouping, []logstore.Record, []int64) {
	const maxN = 16
	numGroups := 1 + r.Intn(5)
	var groups []overlap.Group
	n := 0
	for k := 0; k < numGroups && n < maxN; k++ {
		size := 1 + r.Intn(6)
		if n+size > maxN {
			size = maxN - n
		}
		var m bitset.Mask
		for i := 0; i < size; i++ {
			m = m.With(n + i)
		}
		groups = append(groups, overlap.Group{Members: m, Size: size})
		n += size
	}
	gr := overlap.Grouping{N: n, Groups: groups}

	var records []logstore.Record
	for i := 0; i < 150+r.Intn(300); i++ {
		g := groups[r.Intn(len(groups))]
		sub := bitset.Mask(r.Int63()) & g.Members
		if sub.Empty() {
			sub = bitset.MaskOf(g.Members.Min())
		}
		records = append(records, logstore.Record{Set: sub, Count: int64(1 + r.Intn(30))})
	}
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(50 + r.Intn(3000))
	}
	return gr, records, a
}

// serialPointerReport is the pre-flat reference implementation: Algorithm 2
// on every group's pointer tree, merged exactly like Validate.
func serialPointerReport(t *testing.T, trees []*GroupTree) Report {
	t.Helper()
	results := make([]vtree.Result, len(trees))
	for k, gt := range trees {
		res, err := gt.Tree.ValidateAll(gt.Aggregates)
		if err != nil {
			t.Fatalf("group %d: %v", k, err)
		}
		results[k] = res
	}
	return merge(trees, results)
}

// reportString renders a report fully, so equality is byte-level: equation
// counts, violation sets, CV/AV values, and per-group results.
func reportString(rep Report) string { return fmt.Sprintf("%+v", rep) }

func TestShardedMatchesSerialPointerProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		gr, records, a := randomShardInstance(r)
		tree, err := vtree.BuildRecords(gr.N, records)
		if err != nil {
			t.Fatal(err)
		}
		trees, err := Divide(tree, gr, a)
		if err != nil {
			t.Fatal(err)
		}
		want := serialPointerReport(t, trees)
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got, err := ValidateParallel(trees, workers)
			if err != nil {
				t.Fatal(err)
			}
			if reportString(got) != reportString(want) {
				t.Fatalf("seed %d workers %d: sharded report diverges from serial pointer report\n got %s\nwant %s",
					seed, workers, reportString(got), reportString(want))
			}
		}
		// Validate is the workers=1 path and must agree too.
		got, err := Validate(trees)
		if err != nil {
			t.Fatal(err)
		}
		if reportString(got) != reportString(want) {
			t.Fatalf("seed %d: Validate diverges from serial pointer report", seed)
		}
	}
}

func TestShardBudgetsDominantGroup(t *testing.T) {
	// One 14-license group next to two singletons: the dominant group must
	// receive essentially the whole budget, the singletons one shard each.
	r := rand.New(rand.NewSource(42))
	var gr overlap.Grouping
	gr.N = 16
	gr.Groups = []overlap.Group{
		{Members: bitset.FullMask(14), Size: 14},
		{Members: bitset.MaskOf(14), Size: 1},
		{Members: bitset.MaskOf(15), Size: 1},
	}
	var records []logstore.Record
	for i := 0; i < 50; i++ {
		set := bitset.Mask(r.Int63()) & bitset.FullMask(14)
		if set.Empty() {
			set = bitset.MaskOf(0)
		}
		records = append(records, logstore.Record{Set: set, Count: 5})
	}
	a := make([]int64, 16)
	for i := range a {
		a[i] = 1 << 30
	}
	tree, err := vtree.BuildRecords(gr.N, records)
	if err != nil {
		t.Fatal(err)
	}
	trees, err := Divide(tree, gr, a)
	if err != nil {
		t.Fatal(err)
	}
	budgets := shardBudgets(trees, 8)
	if budgets[0] < 7 {
		t.Errorf("dominant group got %d of 8 workers", budgets[0])
	}
	if budgets[1] != 1 || budgets[2] != 1 {
		t.Errorf("singleton budgets = %d, %d, want 1, 1", budgets[1], budgets[2])
	}
}

// TestDirtyAuditMatchesFullReaudit drives an IncrementalAuditor through
// arbitrary interleavings of appends, top-ups, and audits, checking after
// every audit that the dirty-group report is byte-identical to a full
// batch re-audit over the same records and budgets.
func TestDirtyAuditMatchesFullReaudit(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed + 7))
		cfg := workload.Default(10 + int(seed))
		cfg.Seed = seed
		cfg.Groups = 1 + r.Intn(5)
		cfg.RecordsPerLicense = 40
		w, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ia, err := NewIncrementalAuditor(w.Corpus)
		if err != nil {
			t.Fatal(err)
		}
		ia.Workers = 1 + r.Intn(4)

		var appended []logstore.Record
		next := 0
		fullReaudit := func() Report {
			tree, err := vtree.BuildRecords(w.Corpus.Len(), appended)
			if err != nil {
				t.Fatal(err)
			}
			agg := make([]int64, w.Corpus.Len())
			copy(agg, w.Corpus.Aggregates())
			// Mirror any top-ups already applied to the live auditor.
			for j := range agg {
				k, p := ia.groupOf[j], ia.position[j]
				agg[j] = ia.trees[k].Aggregates[p]
			}
			trees, err := Divide(tree, ia.grouping, agg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Validate(trees)
			if err != nil {
				t.Fatal(err)
			}
			return rep
		}

		for round := 0; round < 8; round++ {
			// Append a random chunk (possibly empty: audit of a clean state).
			chunk := r.Intn(len(w.Records) / 4)
			for i := 0; i < chunk && next < len(w.Records); i++ {
				if err := ia.Append(w.Records[next]); err != nil {
					t.Fatal(err)
				}
				appended = append(appended, w.Records[next])
				next++
			}
			if r.Intn(3) == 0 {
				j := r.Intn(w.Corpus.Len())
				if err := ia.TopUp(j, int64(1+r.Intn(500))); err != nil {
					t.Fatal(err)
				}
			}
			got, err := ia.Audit()
			if err != nil {
				t.Fatal(err)
			}
			want := fullReaudit()
			if reportString(got) != reportString(want) {
				t.Fatalf("seed %d round %d: dirty audit diverges from full re-audit\n got %s\nwant %s",
					seed, round, reportString(got), reportString(want))
			}
			if len(ia.DirtyGroups()) != 0 {
				t.Fatalf("seed %d round %d: groups still dirty after audit: %v", seed, round, ia.DirtyGroups())
			}
			// A second audit with nothing dirty must serve the cache and agree.
			again, err := ia.Audit()
			if err != nil {
				t.Fatal(err)
			}
			if reportString(again) != reportString(got) {
				t.Fatalf("seed %d round %d: clean re-audit diverges from cached report", seed, round)
			}
		}
	}
}

func TestDirtyTrackingMarksOnlyTouchedGroups(t *testing.T) {
	cfg := workload.Default(12)
	cfg.Groups = 3
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ia, err := NewIncrementalAuditor(w.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ia.Audit(); err != nil {
		t.Fatal(err)
	}
	if got := ia.DirtyGroups(); len(got) != 0 {
		t.Fatalf("dirty after initial audit: %v", got)
	}
	// Route one record; only its group may become dirty.
	rec := w.Records[0]
	if err := ia.Append(rec); err != nil {
		t.Fatal(err)
	}
	k := ia.groupOf[rec.Set.Min()]
	if got := ia.DirtyGroups(); len(got) != 1 || got[0] != k {
		t.Fatalf("dirty groups after one append = %v, want [%d]", got, k)
	}
	// TopUp dirties the budget's group as well.
	if _, err := ia.Audit(); err != nil {
		t.Fatal(err)
	}
	j := w.Corpus.Len() - 1
	if err := ia.TopUp(j, 100); err != nil {
		t.Fatal(err)
	}
	if got := ia.DirtyGroups(); len(got) != 1 || got[0] != ia.groupOf[j] {
		t.Fatalf("dirty groups after top-up = %v, want [%d]", got, ia.groupOf[j])
	}
}
