package core

import (
	"fmt"
	"time"

	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/overlap"
	"repro/internal/vtree"
)

// Auditor bundles the full offline aggregate-validation pipeline:
// log replay → validation tree → overlap grouping → tree division →
// per-group validation. It also records how long each stage took, which is
// what the paper's fig 7/9 cost decomposition (C_T, D_T, V_T) measures.
type Auditor struct {
	corpus   *license.Corpus
	grouping overlap.Grouping
	trees    []*GroupTree

	// Workers bounds validation parallelism with a two-level budget —
	// across groups and across mask shards inside each group (see
	// ValidateParallel). 1 (the default) reproduces the paper's serial
	// algorithm exactly; any setting produces the identical report.
	Workers int

	timings Timings
}

// Timings records per-stage wall-clock durations of the last Prepare/Audit.
type Timings struct {
	// Construction is C_T: building the undivided validation tree from
	// the log.
	Construction time.Duration
	// Grouping is the overlap-graph + component-finding time (part of the
	// paper's D_T).
	Grouping time.Duration
	// Division is the tree division + index modification time (the rest
	// of D_T).
	Division time.Duration
	// Validation is V_T: evaluating all per-group equations.
	Validation time.Duration
}

// DT returns the paper's D_T: grouping plus division.
func (t Timings) DT() time.Duration { return t.Grouping + t.Division }

// NewAuditor prepares an auditor for the corpus by replaying the log and
// dividing the resulting tree. The log must only contain belongs-to sets
// over the corpus' indexes.
func NewAuditor(corpus *license.Corpus, log logstore.Store) (*Auditor, error) {
	a := &Auditor{corpus: corpus, Workers: 1}
	if err := a.prepare(log); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Auditor) prepare(log logstore.Store) error {
	start := time.Now()
	tree, err := vtree.Build(a.corpus.Len(), log)
	if err != nil {
		return fmt.Errorf("core: building validation tree: %w", err)
	}
	a.timings.Construction = time.Since(start)

	start = time.Now()
	a.grouping = overlap.GroupsOf(a.corpus)
	a.timings.Grouping = time.Since(start)

	start = time.Now()
	trees, err := Divide(tree, a.grouping, a.corpus.Aggregates())
	if err != nil {
		return err
	}
	a.timings.Division = time.Since(start)
	a.trees = trees
	return nil
}

// Grouping returns the overlap grouping of the corpus.
func (a *Auditor) Grouping() overlap.Grouping { return a.grouping }

// Trees returns the divided per-group validation trees.
func (a *Auditor) Trees() []*GroupTree { return a.trees }

// Gain returns the theoretical gain of eq. 3 for this corpus.
func (a *Auditor) Gain() float64 { return Gain(a.grouping) }

// Timings returns stage durations of the last Prepare/Audit.
func (a *Auditor) Timings() Timings { return a.timings }

// Audit runs the grouped validation and returns the merged report.
func (a *Auditor) Audit() (Report, error) {
	start := time.Now()
	workers := a.Workers
	if workers < 1 {
		workers = 1
	}
	rep, err := ValidateParallel(a.trees, workers)
	a.timings.Validation = time.Since(start)
	return rep, err
}
