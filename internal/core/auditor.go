package core

import (
	"context"
	"math"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vtree"
)

// Auditor bundles the full offline aggregate-validation pipeline:
// log replay → validation tree → overlap grouping → tree division →
// per-group validation. It also records how long each stage took, which is
// what the paper's fig 7/9 cost decomposition (C_T, D_T, V_T) measures.
type Auditor struct {
	corpus     *license.Corpus
	grouping   overlap.Grouping
	trees      []*GroupTree
	logRecords int

	// Workers bounds validation parallelism with a two-level budget —
	// across groups and across mask shards inside each group (see
	// ValidateParallel). 1 (the default) reproduces the paper's serial
	// algorithm exactly; any setting produces the identical report.
	Workers int

	timings Timings
	stats   obs.AuditStats
}

// Timings records per-stage wall-clock durations of the last Prepare/Audit.
type Timings struct {
	// Construction is C_T: building the undivided validation tree from
	// the log.
	Construction time.Duration
	// Grouping is the overlap-graph + component-finding time (part of the
	// paper's D_T).
	Grouping time.Duration
	// Division is the tree division + index modification time (the rest
	// of D_T).
	Division time.Duration
	// Flatten is the flat-snapshot construction time of the last Audit
	// (the SoA layout the sharded walk reads).
	Flatten time.Duration
	// Validation is V_T: evaluating all per-group equations.
	Validation time.Duration
}

// DT returns the paper's D_T: grouping plus division.
func (t Timings) DT() time.Duration { return t.Grouping + t.Division }

// NewAuditor prepares an auditor for the corpus by replaying the log and
// dividing the resulting tree. The log must only contain belongs-to sets
// over the corpus' indexes.
func NewAuditor(corpus *license.Corpus, log logstore.Store) (*Auditor, error) {
	return NewAuditorContext(context.Background(), corpus, log)
}

// NewAuditorContext is NewAuditor under a context: the log replay — the
// paper's C_T, linear in the log but the dominant cost on huge logs — is
// cancellable. A cancelled preparation returns a KindCancelled error and
// no auditor.
func NewAuditorContext(ctx context.Context, corpus *license.Corpus, log logstore.Store) (*Auditor, error) {
	a := &Auditor{corpus: corpus, Workers: 1}
	if err := a.prepare(ctx, log); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Auditor) prepare(ctx context.Context, log logstore.Store) error {
	a.logRecords = log.Len()
	start := time.Now()
	bctx, bsp := trace.Start(ctx, "core.build")
	tree, err := vtree.BuildContext(bctx, a.corpus.Len(), log)
	if bsp != nil {
		bsp.SetInt("records", int64(a.logRecords))
		bsp.Fail(err)
		bsp.End()
	}
	if err != nil {
		return drmerr.Wrapf(drmerr.KindOf(err), "core.prepare", err, "core: building validation tree")
	}
	a.timings.Construction = time.Since(start)

	start = time.Now()
	_, osp := trace.Start(ctx, "core.overlap")
	a.grouping = overlap.GroupsOf(a.corpus)
	a.timings.Grouping = time.Since(start)
	if osp != nil {
		osp.SetInt("groups", int64(len(a.grouping.Groups)))
		osp.End()
	}

	start = time.Now()
	_, dsp := trace.Start(ctx, "core.divide")
	trees, err := Divide(tree, a.grouping, a.corpus.Aggregates())
	if dsp != nil {
		dsp.Fail(err)
		dsp.End()
	}
	if err != nil {
		return err
	}
	a.timings.Division = time.Since(start)
	a.trees = trees
	return nil
}

// Grouping returns the overlap grouping of the corpus.
func (a *Auditor) Grouping() overlap.Grouping { return a.grouping }

// Trees returns the divided per-group validation trees.
func (a *Auditor) Trees() []*GroupTree { return a.trees }

// Gain returns the theoretical gain of eq. 3 for this corpus.
func (a *Auditor) Gain() float64 { return Gain(a.grouping) }

// Timings returns stage durations of the last Prepare/Audit.
func (a *Auditor) Timings() Timings { return a.timings }

// Stats returns the typed run record of the last Audit (zero before the
// first Audit). A batch audit revalidates every group, so GainRealized
// equals the grouping's theoretical G.
func (a *Auditor) Stats() obs.AuditStats { return a.stats }

// Audit runs the grouped validation and returns the merged report. It is
// AuditContext with a background context.
func (a *Auditor) Audit() (Report, error) {
	return a.AuditContext(context.Background())
}

// AuditContext runs the grouped validation under ctx. On cancellation or
// deadline expiry it returns the verified-so-far report together with an
// error matching drmerr.ErrAuditIncomplete: Report.Completeness records
// which groups were fully checked, and every reported violation is real
// (Theorem 2 — groups are independent, so a fully scanned group's
// verdict does not depend on the groups the deadline cut off). With no
// deadline the report is identical to Audit's.
func (a *Auditor) AuditContext(ctx context.Context) (Report, error) {
	s := newAuditSession(a.corpus.Len(), a.logRecords, a.grouping, a.Workers)
	s.batch = true
	rep, err := s.run(ctx, a.trees)
	a.timings.Flatten = s.flatten
	a.timings.Validation = s.validate
	if err != nil && !incomplete(err) {
		return rep, err
	}
	a.stats = s.finish(rep, rep.Equations, shardsUsed(a.trees, s.workers),
		rep.GroupsComplete(), 0, a.phases(), err != nil)
	return rep, err
}

// MinSlack returns the smallest slack A[S] − C⟨S⟩ over the group's
// non-empty local sets, recomputed directly from the divided tree —
// negative iff the group holds at least one violated equation. The walk
// is 2^{N_k} equations; it exists for audit-side cross-checks, not hot
// paths.
func (gt *GroupTree) MinSlack() int64 {
	min := int64(math.MaxInt64)
	full := bitset.FullMask(gt.Tree.N())
	for s := bitset.Mask(1); ; s++ {
		var av int64
		s.ForEach(func(e int) bool {
			av += gt.Aggregates[e]
			return true
		})
		if slack := av - gt.Tree.SumSubsets(s); slack < min {
			min = slack
		}
		if s == full {
			break
		}
	}
	return min
}

// ToLocal translates a global-index mask into this group's local
// indexes; it fails if any member is outside the group.
func (gt *GroupTree) ToLocal(global bitset.Mask) (bitset.Mask, error) {
	if !global.SubsetOf(gt.Group.Members) {
		return 0, drmerr.New(drmerr.KindCrossGroup, "core.tolocal",
			"core: set %v spans overlap groups", global)
	}
	var out bitset.Mask
	var err error
	global.ForEach(func(e int) bool {
		for p, ge := range gt.localToGlobal {
			if ge == e {
				out = out.With(p)
				return true
			}
		}
		err = drmerr.New(drmerr.KindCorpusMismatch, "core.tolocal",
			"core: license %d missing from group", e)
		return false
	})
	return out, err
}

// Headroom recomputes the admissible count for belongs-to set from this
// audit's own divided trees: the set's group contributes its local
// superset minimum, every other group contributes min(0, MinSlack) — the
// same decomposition the headroom cache serves from memory, derived here
// independently so audits can cross-check cached admissions. Cost is
// exponential in the group sizes; callers bound it (see
// engine.AuditContext's sampling).
func (a *Auditor) Headroom(set bitset.Mask) (int64, error) {
	if set.Empty() {
		return 0, drmerr.New(drmerr.KindInvalidInput, "core.headroom", "core: empty belongs-to set")
	}
	k := a.grouping.GroupOf(set.Min())
	if k < 0 {
		return 0, drmerr.New(drmerr.KindCorpusMismatch, "core.headroom",
			"core: set %v outside corpus", set)
	}
	gt := a.trees[k]
	local, err := gt.ToLocal(set)
	if err != nil {
		return 0, err
	}
	room, err := gt.Tree.Headroom(local, gt.Aggregates)
	if err != nil {
		return 0, err
	}
	for j, other := range a.trees {
		if j == k {
			continue
		}
		if ms := other.MinSlack(); ms < 0 {
			room += ms
		}
	}
	return room, nil
}

// phases converts the timing decomposition to the stats record's form.
func (a *Auditor) phases() obs.AuditPhases {
	return obs.AuditPhases{
		Build:    a.timings.Construction.Nanoseconds(),
		Overlap:  a.timings.Grouping.Nanoseconds(),
		Divide:   a.timings.Division.Nanoseconds(),
		Flatten:  a.timings.Flatten.Nanoseconds(),
		Validate: a.timings.Validation.Nanoseconds(),
	}
}
