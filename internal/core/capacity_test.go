package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bitset"
)

func TestCapacityExample1(t *testing.T) {
	trees := explainSetup(t, 0) // Table 2 log, no extra violation
	rep, err := Capacity(trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 || len(rep.Groups) != 2 {
		t.Fatalf("report shape: %d rows, %d groups", len(rep.Rows), len(rep.Groups))
	}
	byIndex := map[int]CapacityRow{}
	for _, r := range rep.Rows {
		byIndex[r.Index] = r
	}
	// L2: budget 1000, exact consumption C[{2}]=400, headroom 600 (its own
	// equation binds; verified against vtree's Headroom tests).
	l2 := byIndex[1]
	if l2.Budget != 1000 || l2.Consumed != 400 || l2.Headroom != 600 {
		t.Errorf("L2 row = %+v", l2)
	}
	// L1: nothing attributed to exactly {L1}; headroom bounded by the
	// {L1} equation: 2000 - C⟨{1}⟩ = 2000.
	l1 := byIndex[0]
	if l1.Consumed != 0 || l1.Headroom != 1160 {
		// Binding equation for {L1}: min over supersets within group 1:
		// {1}: 2000-0; {1,2}: 3000-1240 = 1760; {1,4}: 6000-870...
		// wait: C⟨{1,2}⟩ = 840+400 = 1240 → 1760. {1,2,4}: 7000-1270 = 5730.
		// {1,4}: 6000 - (840? no: subsets of {1,4} are {1},{4},{1,4}: 0).
		// So headroom = min(2000, 1760, 5730, 6000) = 1760.
		if l1.Headroom != 1760 {
			t.Errorf("L1 row = %+v (want headroom 1760)", l1)
		}
	}
	// Group totals: group 1 (L1,L2,L4) budget 7000, consumed 1270;
	// group 2 (L3,L5) budget 5000, consumed 820.
	g1, g2 := rep.Groups[0], rep.Groups[1]
	if g1.Budget != 7000 || g1.Consumed != 1270 {
		t.Errorf("group 1 = %+v", g1)
	}
	if g2.Budget != 5000 || g2.Consumed != 820 {
		t.Errorf("group 2 = %+v", g2)
	}
	if g1.Members != bitset.MaskOf(0, 1, 3) {
		t.Errorf("group 1 members = %v", g1.Members)
	}
	wantUtil := float64(1270) / 7000
	if got := g1.Utilization(); got < wantUtil-1e-9 || got > wantUtil+1e-9 {
		t.Errorf("utilization = %v, want %v", got, wantUtil)
	}
}

func TestCapacityHeadroomIsExact(t *testing.T) {
	// Issuing exactly the reported headroom must stay valid; one more must
	// violate. (Checks against the group trees directly.)
	trees := explainSetup(t, 0)
	rep, err := Capacity(trees)
	if err != nil {
		t.Fatal(err)
	}
	row := rep.Rows[1] // L2, local index 1 in group 1
	gt := trees[row.Group]
	if err := gt.Tree.Insert(bitset.MaskOf(1), row.Headroom); err != nil {
		t.Fatal(err)
	}
	res, err := gt.Tree.ValidateAll(gt.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Errorf("issuing headroom violated: %v", res.Violations)
	}
	if err := gt.Tree.Insert(bitset.MaskOf(1), 1); err != nil {
		t.Fatal(err)
	}
	res, err = gt.Tree.ValidateAll(gt.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Error("headroom+1 did not violate")
	}
}

func TestCapacityWrite(t *testing.T) {
	trees := explainSetup(t, 0)
	rep, err := Capacity(trees)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"license", "headroom", "utilization", "L2", "{1,2,4}"} {
		if !strings.Contains(out, want) {
			t.Errorf("capacity rendering missing %q:\n%s", want, out)
		}
	}
}

func TestGroupUtilizationZeroBudget(t *testing.T) {
	g := GroupUtilization{Budget: 0, Consumed: 0}
	if g.Utilization() != 0 {
		t.Error("zero-budget utilization should be 0")
	}
}
