package simulate

import (
	"testing"

	"repro/internal/engine"
)

func TestNormalizeDefaultsAndErrors(t *testing.T) {
	c := Config{}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Tiers != 2 || c.Width != 3 || c.Contents != 2 || c.Days != 30 {
		t.Errorf("defaults = %+v", c)
	}
	bad := Config{Tiers: -1}
	if err := bad.Normalize(); err == nil {
		t.Error("negative tiers accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Tiers: 2, Width: 2, Contents: 1, Days: 5, Requests: 50, AuditEvery: 2, Seed: 3}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Distributors) != len(r2.Distributors) {
		t.Fatal("distributor counts differ")
	}
	for i := range r1.Distributors {
		if r1.Distributors[i] != r2.Distributors[i] {
			t.Errorf("report %d differs: %+v vs %+v", i, r1.Distributors[i], r2.Distributors[i])
		}
	}
}

func TestRunOnlineNeverViolates(t *testing.T) {
	res, err := Run(Config{
		Tiers: 2, Width: 3, Contents: 2, Days: 10, Requests: 300,
		AuditEvery: 3, Mode: engine.ModeOnline, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditViolations != 0 {
		t.Errorf("online run produced %d violations", res.AuditViolations)
	}
	if res.Audits == 0 {
		t.Error("no audits ran")
	}
	issued := 0
	for _, d := range res.Distributors {
		issued += d.Stats.Issued
		if d.Violations != 0 {
			t.Errorf("%s/%s has %d final violations", d.Name, d.Content, d.Violations)
		}
		if d.Licenses < 1 || d.Groups < 1 || d.Groups > d.Licenses {
			t.Errorf("%s/%s shape: %d licenses, %d groups", d.Name, d.Content, d.Licenses, d.Groups)
		}
		if d.Gain < 1 {
			t.Errorf("%s/%s gain %v < 1", d.Name, d.Content, d.Gain)
		}
	}
	if issued == 0 {
		t.Error("simulation issued nothing")
	}
}

func TestRunCoversAllTiers(t *testing.T) {
	res, err := Run(Config{Tiers: 3, Width: 2, Contents: 1, Days: 4, Requests: 100, AuditEvery: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tiersSeen := map[string]bool{}
	for _, d := range res.Distributors {
		tiersSeen[d.Name[:5]] = true // "tierK"
	}
	if !tiersSeen["tier1"] {
		t.Error("tier 1 missing from reports")
	}
	// Lower tiers can legitimately miss out if delegation windows failed,
	// but with this seed they should exist; guard the common case.
	if len(tiersSeen) < 2 {
		t.Errorf("only tiers %v active — delegation broken?", tiersSeen)
	}
}

func TestRunOfflineAccumulatesPressure(t *testing.T) {
	// Offline mode with heavy traffic must eventually log violations —
	// otherwise the offline/online distinction does nothing.
	res, err := Run(Config{
		Tiers: 1, Width: 1, Contents: 1, GrantsPerDistributor: 2,
		Days: 60, Requests: 400, AuditEvery: 30,
		Mode: engine.ModeOffline, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditViolations == 0 {
		t.Error("offline run with heavy traffic produced no violations")
	}
}

func TestTimelineRecordsEveryAuditDay(t *testing.T) {
	res, err := Run(Config{Tiers: 1, Width: 1, Contents: 1, Days: 9, Requests: 20, AuditEvery: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Audit days: 3, 6, 9 (day 9 is also the final day, not duplicated).
	if len(res.Timeline) != 3 {
		t.Fatalf("timeline = %+v", res.Timeline)
	}
	for i, day := range []int{3, 6, 9} {
		if res.Timeline[i].Day != day {
			t.Errorf("timeline[%d].Day = %d, want %d", i, res.Timeline[i].Day, day)
		}
		if res.Timeline[i].Corpora == 0 {
			t.Errorf("timeline[%d] audited no corpora", i)
		}
	}
	// Totals agree with the per-point sums.
	sum := 0
	for _, p := range res.Timeline {
		sum += p.Violations
	}
	if sum != res.AuditViolations {
		t.Errorf("timeline sums to %d, result says %d", sum, res.AuditViolations)
	}
}

func TestRunDeterministicMultiContent(t *testing.T) {
	// Guards against map-iteration nondeterminism: multiple contents per
	// distributor must still replay identically.
	cfg := Config{Tiers: 2, Width: 2, Contents: 3, Days: 4, Requests: 80, AuditEvery: 2, Seed: 13}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Distributors) != len(r2.Distributors) {
		t.Fatal("distributor counts differ")
	}
	for i := range r1.Distributors {
		if r1.Distributors[i] != r2.Distributors[i] {
			t.Errorf("report %d differs: %+v vs %+v", i, r1.Distributors[i], r2.Distributors[i])
		}
	}
}
