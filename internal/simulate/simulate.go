// Package simulate runs deterministic multi-tier distribution scenarios —
// the paper's §1 setting at system scale: an owner grants redistribution
// licenses per content to tier-1 distributors; each tier delegates slices
// of its budgets downstream; consumers hit the bottom tier with usage
// requests; the validation authority audits every corpus periodically with
// the geometric validator.
//
// The simulator exists to exercise the whole stack (geometry, R-tree
// instance validation, online headroom, logging, grouping, divided-tree
// audits) under sustained load, and to let cmd/drmsim report how the
// pieces behave together. Everything is seeded: identical configs produce
// identical runs.
package simulate

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/engine"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/region"
)

// Config parameterises a scenario. Zero fields take the documented
// defaults via Normalize.
type Config struct {
	// Tiers is the distribution depth below the owner (1 = distributors
	// only, 2 = distributors + sub-distributors, ...). Default 2.
	Tiers int
	// Width is the number of distributors per tier. Default 3.
	Width int
	// Contents is the number of content items. Default 2.
	Contents int
	// GrantsPerDistributor is how many redistribution licenses tier-1
	// distributors receive per content. Default 3.
	GrantsPerDistributor int
	// Days is the simulated duration; each day the bottom tier receives
	// Requests usage requests. Defaults 30 and 200.
	Days, Requests int
	// AuditEvery audits all corpora every that many days. Default 10.
	AuditEvery int
	// Mode selects online or offline aggregate validation. Default online.
	Mode engine.Mode
	// Seed drives the PRNG.
	Seed int64
}

// Normalize fills defaults and rejects unusable values.
func (c *Config) Normalize() error {
	if c.Tiers == 0 {
		c.Tiers = 2
	}
	if c.Width == 0 {
		c.Width = 3
	}
	if c.Contents == 0 {
		c.Contents = 2
	}
	if c.GrantsPerDistributor == 0 {
		c.GrantsPerDistributor = 3
	}
	if c.Days == 0 {
		c.Days = 30
	}
	if c.Requests == 0 {
		c.Requests = 200
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 10
	}
	for name, v := range map[string]int{
		"Tiers": c.Tiers, "Width": c.Width, "Contents": c.Contents,
		"GrantsPerDistributor": c.GrantsPerDistributor, "Days": c.Days,
		"Requests": c.Requests, "AuditEvery": c.AuditEvery,
	} {
		if v < 1 {
			return fmt.Errorf("simulate: %s = %d, want >= 1", name, v)
		}
	}
	return nil
}

// DistributorReport summarises one corpus at the end of a run.
type DistributorReport struct {
	// Name is "tier<k>/d<i>"; Content the content item.
	Name, Content string
	// Licenses and Groups describe the corpus.
	Licenses, Groups int
	// Stats carries issuance counters.
	Stats engine.Stats
	// Gain is eq. 3's theoretical gain at the final audit.
	Gain float64
	// Violations counts violated equations at the final audit (always 0
	// in online mode).
	Violations int
}

// AuditPoint is one scheduled audit day's aggregate outcome.
type AuditPoint struct {
	// Day is the simulated day the audits ran.
	Day int
	// Corpora is how many corpora were audited; Violations sums their
	// violated equations.
	Corpora, Violations int
}

// Result is a finished run.
type Result struct {
	Config Config
	// Audits counts audit passes; AuditViolations sums violated equations
	// across them.
	Audits, AuditViolations int
	// Timeline records each scheduled audit day in order.
	Timeline []AuditPoint
	// Distributors holds the final per-corpus reports, grant order.
	Distributors []DistributorReport
}

// Run executes the scenario.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tax := region.World()
	schema, err := geometry.NewSchema(
		geometry.Axis{Name: "period", Kind: geometry.KindInterval},
		geometry.Axis{Name: "region", Kind: geometry.KindSet, Universe: tax.NumLeaves()},
	)
	if err != nil {
		return nil, err
	}

	continents := []string{"Asia", "Europe", "America", "Africa", "Oceania"}
	// grantRect builds a license window: a period slice of the simulated
	// year and 1-2 continents.
	grantRect := func() geometry.Rect {
		lo := int64(rng.Intn(300))
		hi := lo + 30 + int64(rng.Intn(120))
		names := []string{continents[rng.Intn(len(continents))]}
		if rng.Intn(2) == 0 {
			names = append(names, continents[rng.Intn(len(continents))])
		}
		set, err := tax.Resolve(names...)
		if err != nil {
			panic(err) // continents are fixture constants
		}
		return geometry.MustRect(schema,
			geometry.IntervalValue(interval.New(lo, hi)),
			geometry.SetValue(set))
	}

	// tiers[t][i] is distributor i at tier t (0-based tiers below owner);
	// each holds one corpus per content it was granted.
	type dist struct {
		name    string
		corpora map[string]*engine.Distributor
		// contents keeps deterministic iteration order over corpora.
		contents []string
	}
	tiers := make([][]*dist, cfg.Tiers)
	for t := range tiers {
		tiers[t] = make([]*dist, cfg.Width)
		for i := range tiers[t] {
			tiers[t][i] = &dist{
				name:    fmt.Sprintf("tier%d/d%d", t+1, i+1),
				corpora: make(map[string]*engine.Distributor),
			}
		}
	}
	corpusOf := func(d *dist, content string) *engine.Distributor {
		e, ok := d.corpora[content]
		if !ok {
			e = engine.NewDistributor(d.name, schema, cfg.Mode, logstore.NewMem(0))
			d.corpora[content] = e
			d.contents = append(d.contents, content)
			sort.Strings(d.contents)
		}
		return e
	}

	// Owner grants to tier 1.
	var grantOrder []*engine.Distributor
	seen := map[*engine.Distributor]bool{}
	track := func(e *engine.Distributor) {
		if !seen[e] {
			seen[e] = true
			grantOrder = append(grantOrder, e)
		}
	}
	for c := 0; c < cfg.Contents; c++ {
		content := fmt.Sprintf("content-%d", c+1)
		for _, d := range tiers[0] {
			for g := 0; g < cfg.GrantsPerDistributor; g++ {
				e := corpusOf(d, content)
				_, err := e.AddRedistribution(&license.License{
					Name:       fmt.Sprintf("%s/%s/G%d", d.name, content, g+1),
					Kind:       license.Redistribution,
					Content:    content,
					Permission: license.Play,
					Rect:       grantRect(),
					Aggregate:  3000 + int64(rng.Intn(5000)),
				})
				if err != nil {
					return nil, err
				}
				track(e)
			}
		}
	}

	// Each tier delegates one slice per corpus to the tier below.
	for t := 1; t < cfg.Tiers; t++ {
		for i, d := range tiers[t] {
			parent := tiers[t-1][i%cfg.Width]
			for _, content := range parent.contents {
				pe := parent.corpora[content]
				sub, err := delegate(rng, pe)
				if err != nil {
					continue // parent exhausted or no room: realistic, skip
				}
				e := corpusOf(d, content)
				if _, err := e.AddRedistribution(sub); err != nil {
					return nil, err
				}
				track(e)
			}
		}
	}

	// Daily consumer traffic against the bottom tier, audits on schedule.
	res := &Result{Config: cfg}
	bottom := tiers[cfg.Tiers-1]
	for day := 1; day <= cfg.Days; day++ {
		for q := 0; q < cfg.Requests; q++ {
			d := bottom[rng.Intn(len(bottom))]
			if len(d.corpora) == 0 {
				continue
			}
			// Random corpus of this distributor, in deterministic order.
			e := d.corpora[d.contents[rng.Intn(len(d.contents))]]
			rect, ok := usageRect(rng, e)
			if !ok {
				continue
			}
			_, _ = e.Issue(license.Usage, rect, int64(10+rng.Intn(21)))
		}
		if day%cfg.AuditEvery == 0 || day == cfg.Days {
			point := AuditPoint{Day: day}
			for _, e := range grantOrder {
				rep, _, err := e.Audit(1)
				if err != nil {
					return nil, err
				}
				res.Audits++
				res.AuditViolations += len(rep.Violations)
				point.Corpora++
				point.Violations += len(rep.Violations)
			}
			res.Timeline = append(res.Timeline, point)
		}
	}

	// Final per-corpus reports.
	for _, e := range grantOrder {
		rep, aud, err := e.Audit(1)
		if err != nil {
			return nil, err
		}
		res.Distributors = append(res.Distributors, DistributorReport{
			Name:       e.Name(),
			Content:    e.Corpus().License(0).Content,
			Licenses:   e.Corpus().Len(),
			Groups:     aud.Grouping().NumGroups(),
			Stats:      e.Stats(),
			Gain:       aud.Gain(),
			Violations: len(rep.Violations),
		})
	}
	return res, nil
}

// delegate issues a sub-redistribution license from a parent corpus: a
// shrunken window of a random parent license with a slice of the
// remaining budget.
func delegate(rng *rand.Rand, parent *engine.Distributor) (*license.License, error) {
	rect, ok := usageRect(rng, parent)
	if !ok {
		return nil, fmt.Errorf("simulate: no delegable window")
	}
	return parent.Issue(license.Redistribution, rect, 500+int64(rng.Intn(1000)))
}

// usageRect samples a rectangle inside a random license of the corpus:
// a sub-period and a leaf region.
func usageRect(rng *rand.Rand, e *engine.Distributor) (geometry.Rect, bool) {
	c := e.Corpus()
	if c.Len() == 0 {
		return geometry.Rect{}, false
	}
	l := c.License(rng.Intn(c.Len()))
	iv := l.Rect.Value(0).Interval()
	lo := iv.Lo + rng.Int63n(iv.Hi-iv.Lo+1)
	hi := lo + rng.Int63n(iv.Hi-lo+1)
	leaves := l.Rect.Value(1).Set().Elems()
	set := l.Rect.Value(1).Set().Clone()
	// Shrink to a single leaf region, like real usage licenses.
	keep := leaves[rng.Intn(len(leaves))]
	for _, e := range leaves {
		if e != keep {
			set.Remove(e)
		}
	}
	return geometry.MustRect(l.Rect.Schema(),
		geometry.IntervalValue(interval.New(lo, hi)),
		geometry.SetValue(set)), true
}
