package forecast

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
	"repro/internal/overlap"
	"repro/internal/workload"
)

func TestTimelineExample1(t *testing.T) {
	// Example 1 expiries (epoch-day Hi): L1 20/03, L2 25/03, L3 30/03,
	// L4 15/04, L5 10/04 — five distinct waves.
	ex := license.NewExample1()
	steps, err := Timeline(ex.Corpus, "period")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 { // initial + 5 waves
		t.Fatalf("steps = %d, want 6", len(steps))
	}
	s0 := steps[0]
	if s0.Active != bitset.FullMask(5) || len(s0.Groups) != 2 || s0.Equations != 10 {
		t.Errorf("initial step = %+v", s0)
	}
	if !s0.Expired.Empty() {
		t.Error("initial step has expiries")
	}

	// Wave 1: L1 (the group-1 cut vertex) expires → {L2} and {L4} split.
	s1 := steps[1]
	if s1.Expired != bitset.MaskOf(0) {
		t.Errorf("wave 1 expired = %v, want {1}", s1.Expired)
	}
	if len(s1.Groups) != 3 || !s1.Split {
		t.Errorf("wave 1: groups=%d split=%v, want 3/true", len(s1.Groups), s1.Split)
	}
	// Equations: {2},{4} singletons (1 each) + {3,5} (3) = 5.
	if s1.Equations != 5 {
		t.Errorf("wave 1 equations = %d, want 5", s1.Equations)
	}

	// Wave 2: L2 expires — a singleton group vanishes, no split.
	s2 := steps[2]
	if s2.Split {
		t.Error("wave 2 flagged as split")
	}
	if len(s2.Groups) != 2 {
		t.Errorf("wave 2 groups = %d, want 2 ({4} and {3,5})", len(s2.Groups))
	}

	// Final wave: everything expired.
	last := steps[len(steps)-1]
	if !last.Active.Empty() || len(last.Groups) != 0 || last.Equations != 0 {
		t.Errorf("final step = %+v", last)
	}

	// Equations must be non-increasing across the whole timeline.
	for i := 1; i < len(steps); i++ {
		if steps[i].Equations > steps[i-1].Equations {
			t.Errorf("equations rose at step %d: %d > %d",
				i, steps[i].Equations, steps[i-1].Equations)
		}
	}
}

func TestTimelineSplitMatchesCutVertices(t *testing.T) {
	// Property: a single-license expiry wave splits iff that license is a
	// cut vertex of the current active overlap graph (or ends a group).
	w := workload.MustGenerate(workload.Config{N: 14, Groups: 3, Seed: 17, RecordsPerLicense: 1})
	steps, err := Timeline(w.Corpus, "c0")
	if err != nil {
		t.Fatal(err)
	}
	adj := overlap.BuildAdjacency(w.Corpus)
	for i := 1; i < len(steps); i++ {
		prev, cur := steps[i-1], steps[i]
		if cur.Expired.Len() != 1 {
			continue // multi-expiry waves have compound effects
		}
		v := cur.Expired.Min()
		// Restrict the adjacency to the previous active set and check
		// whether v is a cut vertex there.
		n := len(adj)
		sub := make(overlap.Adjacency, n)
		for r := range sub {
			sub[r] = make([]bool, n)
			for c := 0; c < n; c++ {
				sub[r][c] = adj[r][c] && prev.Active.Has(r) && prev.Active.Has(c)
			}
		}
		wantSplit := overlap.CutLicenses(sub).Has(v)
		if cur.Split != wantSplit {
			t.Errorf("step %d (expire L%d): split=%v, cut-vertex=%v",
				i, v+1, cur.Split, wantSplit)
		}
	}
}

func TestTimelineErrors(t *testing.T) {
	ex := license.NewExample1()
	if _, err := Timeline(ex.Corpus, "nope"); err == nil {
		t.Error("unknown axis accepted")
	}
	if _, err := Timeline(ex.Corpus, "region"); err == nil {
		t.Error("set axis accepted")
	}
	schema := geometry.MustSchema(geometry.Axis{Name: "x", Kind: geometry.KindInterval})
	if _, err := Timeline(license.NewCorpus(schema), "x"); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestTimelineSharedExpiry(t *testing.T) {
	// Licenses sharing an expiry coordinate lapse in one wave.
	schema := geometry.MustSchema(geometry.Axis{Name: "x", Kind: geometry.KindInterval})
	c := license.NewCorpus(schema)
	mk := func(lo, hi int64) *license.License {
		return &license.License{
			Name: "L", Kind: license.Redistribution, Content: "K",
			Permission: license.Play,
			Rect:       geometry.MustRect(schema, geometry.IntervalValue(interval.New(lo, hi))),
			Aggregate:  10,
		}
	}
	c.MustAdd(mk(0, 50))
	c.MustAdd(mk(10, 50)) // same expiry as L1
	c.MustAdd(mk(20, 80))
	steps, err := Timeline(c, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 { // initial + wave(50) + wave(80)
		t.Fatalf("steps = %d, want 3", len(steps))
	}
	if steps[1].Expired != bitset.MaskOf(0, 1) {
		t.Errorf("wave 1 expired = %v, want {1,2}", steps[1].Expired)
	}
	if steps[2].Expired != bitset.MaskOf(2) {
		t.Errorf("wave 2 expired = %v, want {3}", steps[2].Expired)
	}
}
