// Package forecast projects how the validation plan evolves as
// redistribution licenses expire.
//
// A license whose validity period has lapsed can no longer admit new
// issuances; once every log record attributable to it has been audited it
// drops out of the *active* corpus. Expiry therefore only ever shrinks
// groups — sometimes splitting them (exactly when the expiring license is
// a cut vertex of its overlap group, see overlap.CutLicenses) — so the
// number of validation equations Σ(2^{N_k}−1) falls monotonically and
// eq. 3's gain rises. Timeline computes that trajectory: one step per
// distinct expiry time, with the active set, grouping, equation count,
// and gain after each wave of expiries.
//
// The validation authority uses this to schedule audits (run the
// expensive ones after a group-splitting expiry) and the owner to see
// which licenses hold expensive groups together.
package forecast

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/license"
	"repro/internal/overlap"
)

// Step is the validation plan after all licenses expiring at Time lapse.
type Step struct {
	// Time is the expiry coordinate (e.g. an epoch day for date axes).
	Time int64
	// Expired lists the licenses lapsing exactly at Time.
	Expired bitset.Mask
	// Active is the remaining license set.
	Active bitset.Mask
	// Groups is the grouping of the active set (masks use GLOBAL corpus
	// indexes).
	Groups []bitset.Mask
	// Equations is Σ(2^{N_k}−1) over the active groups.
	Equations int64
	// Gain is eq. 3 evaluated for the active set: (2^|Active|−1) / Equations.
	Gain float64
	// Split reports whether this expiry wave increased the group count
	// relative to the previous step (net of wholly-expired groups).
	Split bool
}

// Timeline computes expiry steps for the corpus along the named interval
// axis. Step 0 is the initial plan (Time = one before the earliest expiry,
// nothing expired); subsequent steps follow expiry order. Licenses sharing
// an expiry coordinate lapse together.
func Timeline(c *license.Corpus, axisName string) ([]Step, error) {
	axis, ok := c.Schema().AxisIndex(axisName)
	if !ok {
		return nil, fmt.Errorf("forecast: schema has no axis %q", axisName)
	}
	if c.Schema().Axis(axis).Kind != geometry.KindInterval {
		return nil, fmt.Errorf("forecast: axis %q is not an interval axis", axisName)
	}
	n := c.Len()
	if n == 0 {
		return nil, fmt.Errorf("forecast: empty corpus")
	}

	// Group licenses by expiry coordinate (the axis interval's Hi).
	expiries := make(map[int64]bitset.Mask)
	for i := 0; i < n; i++ {
		hi := c.License(i).Rect.Value(axis).Interval().Hi
		expiries[hi] = expiries[hi].With(i)
	}
	times := make([]int64, 0, len(expiries))
	for t := range expiries {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	adj := overlap.BuildMaskAdjacency(c)
	active := bitset.FullMask(n)
	steps := make([]Step, 0, len(times)+1)
	initial := planFor(adj, active)
	initial.Time = times[0] - 1
	steps = append(steps, initial)

	prevGroups := len(initial.Groups)
	for _, t := range times {
		expired := expiries[t]
		active = active.Diff(expired)
		step := planFor(adj, active)
		step.Time = t
		step.Expired = expired
		// A split happened if the survivors of previously-connected
		// licenses now form more groups: compare against the previous
		// step's group count minus groups that vanished entirely.
		vanished := 0
		for _, g := range steps[len(steps)-1].Groups {
			if g.SubsetOf(expired) {
				vanished++
			}
		}
		step.Split = len(step.Groups) > prevGroups-vanished
		steps = append(steps, step)
		prevGroups = len(step.Groups)
	}
	return steps, nil
}

// planFor computes the grouping restricted to the active set.
func planFor(adj overlap.MaskAdjacency, active bitset.Mask) Step {
	step := Step{Active: active}
	var assigned bitset.Mask
	active.ForEach(func(i int) bool {
		if assigned.Has(i) {
			return true
		}
		members := bitset.MaskOf(i)
		frontier := bitset.MaskOf(i)
		for !frontier.Empty() {
			var next bitset.Mask
			frontier.ForEach(func(v int) bool {
				next = next.Union(adj[v].Intersect(active))
				return true
			})
			frontier = next.Diff(members)
			members = members.Union(next)
		}
		assigned = assigned.Union(members)
		step.Groups = append(step.Groups, members)
		return true
	})
	for _, g := range step.Groups {
		step.Equations += int64(1)<<uint(g.Len()) - 1
	}
	if step.Equations > 0 {
		step.Gain = core.FullEquationCount(active.Len()) / float64(step.Equations)
	} else {
		step.Gain = 1
	}
	return step
}
