package rel

import (
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/license"
	"repro/internal/overlap"
	"repro/internal/region"
)

func paperDialect(t *testing.T) (*Dialect, *geometry.Schema) {
	t.Helper()
	d, s, err := PaperDialect(region.World())
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestParseLicensePaperNotation(t *testing.T) {
	d, _ := paperDialect(t)
	// Verbatim from Example 1.
	l, err := d.ParseLicense("L_D^1", license.Redistribution,
		"(K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)")
	if err != nil {
		t.Fatal(err)
	}
	if l.Content != "K" || l.Permission != license.Play || l.Aggregate != 2000 {
		t.Errorf("parsed license = %+v", l)
	}
	// The parsed rectangle must equal the fixture's.
	ex := license.NewExample1()
	if !rectEqualByString(l.Rect, ex.Corpus.License(0).Rect) {
		t.Errorf("rect = %s, want %s", l.Rect, ex.Corpus.License(0).Rect)
	}
}

func rectEqualByString(a, b geometry.Rect) bool { return a.String() == b.String() }

func TestParseCorpusExample1Equivalence(t *testing.T) {
	// The whole Example 1 corpus expressed in the paper's own notation
	// must reproduce the fixture's grouping and belongs-to behaviour.
	d, _ := paperDialect(t)
	src := `
# Example 1 of Sachan et al. 2010
L_D^1: (K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)
L_D^2: (K; Play; T=[15/03/09, 25/03/09], R=[Asia];         A=1000)
L_D^3: (K; Play; T=[15/03/09, 30/03/09], R=[America];      A=3000)
L_D^4: (K; Play; T=[15/03/09, 15/04/09], R=[Europe];       A=4000)
L_D^5: (K; Play; T=[25/03/09, 10/04/09], R=[America];      A=2000)
`
	corpus, err := d.ParseCorpus(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if corpus.Len() != 5 {
		t.Fatalf("parsed %d licenses, want 5", corpus.Len())
	}
	gr := overlap.GroupsOf(corpus)
	if gr.String() != "[{1,2,4} {3,5}]" {
		t.Errorf("grouping = %v, want [{1,2,4} {3,5}]", gr)
	}
	// Usage rectangle from the paper: L_U^1 belongs to {L1, L2}.
	u, err := d.ParseLicense("L_U^1", license.Usage,
		"(K; Play; T=[15/03/09, 19/03/09], R=[India]; A=800)")
	if err != nil {
		t.Fatal(err)
	}
	belongs := corpus.BelongsTo(u.Rect)
	if len(belongs) != 2 || belongs[0] != 0 || belongs[1] != 1 {
		t.Errorf("BelongsTo = %v, want [0 1]", belongs)
	}
}

func TestParseScalarAndIntCoordinates(t *testing.T) {
	schema := geometry.MustSchema(geometry.Axis{Name: "res", Kind: geometry.KindInterval})
	d, err := NewDialect(schema, nil, "Q")
	if err != nil {
		t.Fatal(err)
	}
	// Scalar shorthand: Q=1080 ≡ [1080, 1080].
	l, err := d.ParseLicense("L", license.Usage, "(K; Play; Q=1080; A=5)")
	if err != nil {
		t.Fatal(err)
	}
	iv := l.Rect.Value(0).Interval()
	if iv.Lo != 1080 || iv.Hi != 1080 {
		t.Errorf("scalar parsed as %v", iv)
	}
	// Plain integer range.
	l, err = d.ParseLicense("L", license.Usage, "(K; Play; Q=[480, 1080]; A=5)")
	if err != nil {
		t.Fatal(err)
	}
	iv = l.Rect.Value(0).Interval()
	if iv.Lo != 480 || iv.Hi != 1080 {
		t.Errorf("range parsed as %v", iv)
	}
}

func TestParseSetWithoutTaxonomy(t *testing.T) {
	schema := geometry.MustSchema(geometry.Axis{Name: "r", Kind: geometry.KindSet, Universe: 8})
	d, err := NewDialect(schema, nil, "R")
	if err != nil {
		t.Fatal(err)
	}
	l, err := d.ParseLicense("L", license.Usage, "(K; Play; R=[0, 3, 7]; A=5)")
	if err != nil {
		t.Fatal(err)
	}
	set := l.Rect.Value(0).Set()
	if set.Len() != 3 || !set.Has(0) || !set.Has(3) || !set.Has(7) {
		t.Errorf("set parsed as %v", set)
	}
}

func TestParseErrors(t *testing.T) {
	d, _ := paperDialect(t)
	cases := map[string]string{
		"no parens":        `K; Play; T=[1,2], R=[Asia]; A=5`,
		"wrong arity":      `(K; Play; A=5)`,
		"empty content":    `(; Play; T=[1,2], R=[Asia]; A=5)`,
		"empty permission": `(K; ; T=[1,2], R=[Asia]; A=5)`,
		"unknown tag":      `(K; Play; T=[1,2], Z=[Asia]; A=5)`,
		"tag twice":        `(K; Play; T=[1,2], T=[3,4], R=[Asia]; A=5)`,
		"missing axis":     `(K; Play; T=[1,2]; A=5)`,
		"not tag=value":    `(K; Play; T[1,2], R=[Asia]; A=5)`,
		"bad coord":        `(K; Play; T=[x,2], R=[Asia]; A=5)`,
		"reversed range":   `(K; Play; T=[9,2], R=[Asia]; A=5)`,
		"three coords":     `(K; Play; T=[1,2,3], R=[Asia]; A=5)`,
		"unknown region":   `(K; Play; T=[1,2], R=[Narnia]; A=5)`,
		"bad aggregate":    `(K; Play; T=[1,2], R=[Asia]; A=lots)`,
		"no aggregate tag": `(K; Play; T=[1,2], R=[Asia]; 5)`,
		"negative agg":     `(K; Play; T=[1,2], R=[Asia]; A=-5)`,
		"open bracket":     `(K; Play; T=[1,2, R=[Asia]; A=5)`,
	}
	for name, expr := range cases {
		if _, err := d.ParseLicense("L", license.Usage, expr); err == nil {
			t.Errorf("%s: accepted %q", name, expr)
		}
	}
}

func TestParseCorpusErrors(t *testing.T) {
	d, _ := paperDialect(t)
	if _, err := d.ParseCorpus(strings.NewReader("no colon here")); err == nil {
		t.Error("missing colon accepted")
	}
	if _, err := d.ParseCorpus(strings.NewReader("L: (K; Play; T=[1,2]; A=5)")); err == nil {
		t.Error("bad license accepted")
	}
	// Mixed content across one corpus is rejected by Corpus.Add.
	src := `
L1: (K;  Play; T=[1,2], R=[Asia]; A=5)
L2: (K2; Play; T=[1,2], R=[Asia]; A=5)
`
	if _, err := d.ParseCorpus(strings.NewReader(src)); err == nil {
		t.Error("mixed-content corpus accepted")
	}
}

func TestNewDialectErrors(t *testing.T) {
	schema := geometry.MustSchema(geometry.Axis{Name: "x", Kind: geometry.KindInterval})
	if _, err := NewDialect(schema, nil); err == nil {
		t.Error("missing tags accepted")
	}
	if _, err := NewDialect(schema, nil, ""); err == nil {
		t.Error("empty tag accepted")
	}
	two := geometry.MustSchema(
		geometry.Axis{Name: "x", Kind: geometry.KindInterval},
		geometry.Axis{Name: "y", Kind: geometry.KindInterval},
	)
	if _, err := NewDialect(two, nil, "T", "t"); err == nil {
		t.Error("case-duplicate tags accepted")
	}
}

func TestFormatLicenseRoundTrip(t *testing.T) {
	d, _ := paperDialect(t)
	exprs := []string{
		"(K; Play; T=[14313, 14323], R=[Asia, Europe]; A=2000)",
		"(K; Play; T=[14318, 14328], R=[Asia]; A=1000)",
		"(K; Copy; T=[0, 5], R=[India, Japan]; A=77)",
	}
	for _, expr := range exprs {
		l, err := d.ParseLicense("L", license.Redistribution, expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		got := d.FormatLicense(l)
		// Re-parse the formatted form; it must produce the same rectangle
		// and metadata (FormatLicense normalises whitespace and region
		// naming, so compare semantically).
		back, err := d.ParseLicense("L", license.Redistribution, got)
		if err != nil {
			t.Fatalf("re-parse %q: %v", got, err)
		}
		if !rectEqualByString(l.Rect, back.Rect) || l.Aggregate != back.Aggregate ||
			l.Permission != back.Permission || l.Content != back.Content {
			t.Errorf("round-trip changed %q -> %q", expr, got)
		}
	}
}

func TestFormatUsesTaxonomyNames(t *testing.T) {
	d, _ := paperDialect(t)
	l, err := d.ParseLicense("L", license.Redistribution,
		"(K; Play; T=[1, 2], R=[Asia]; A=9)")
	if err != nil {
		t.Fatal(err)
	}
	got := d.FormatLicense(l)
	if !strings.Contains(got, "R=[Asia]") {
		t.Errorf("FormatLicense = %q, want R=[Asia]", got)
	}
	if !strings.Contains(got, "Play") {
		t.Errorf("FormatLicense = %q, want title-case permission", got)
	}
}

func TestSplitTopRespectsBrackets(t *testing.T) {
	parts := splitTop("a=[1,2], b=[3,4]", ',')
	if len(parts) != 2 {
		t.Fatalf("splitTop = %q", parts)
	}
	if strings.TrimSpace(parts[0]) != "a=[1,2]" || strings.TrimSpace(parts[1]) != "b=[3,4]" {
		t.Errorf("splitTop = %q", parts)
	}
}

func TestFormatAsDates(t *testing.T) {
	d, _ := paperDialect(t) // PaperDialect enables date rendering on T
	l, err := d.ParseLicense("L", license.Redistribution,
		"(K; Play; T=[10/03/09, 20/03/09], R=[Asia]; A=9)")
	if err != nil {
		t.Fatal(err)
	}
	got := d.FormatLicense(l)
	if !strings.Contains(got, "T=[10/03/09, 20/03/09]") {
		t.Errorf("FormatLicense = %q, want dd/mm/yy dates", got)
	}
	// Re-parse must reproduce the same rectangle.
	back, err := d.ParseLicense("L", license.Redistribution, got)
	if err != nil {
		t.Fatal(err)
	}
	if !rectEqualByString(l.Rect, back.Rect) {
		t.Errorf("date round-trip changed the rectangle: %q", got)
	}
}

func TestFormatAsDatesErrors(t *testing.T) {
	d, _ := paperDialect(t)
	if err := d.FormatAsDates("Z"); err == nil {
		t.Error("unknown tag accepted")
	}
	if err := d.FormatAsDates("R"); err == nil {
		t.Error("set axis accepted as date axis")
	}
}
