package rel

import (
	"testing"

	"repro/internal/license"
	"repro/internal/region"
)

// FuzzParseLicense checks that arbitrary expressions never panic the
// parser, and that every accepted expression round-trips through
// FormatLicense → ParseLicense with identical semantics.
func FuzzParseLicense(f *testing.F) {
	seeds := []string{
		"(K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)",
		"(K; Play; T=[15/03/09, 25/03/09], R=[Asia]; A=1000)",
		"(K; Copy; T=5, R=[India, Japan]; A=1)",
		"(K; Play; T=[1,2]; A=5)",
		"(;;;)",
		"()",
		"(K; Play; T=[1,2], R=[Asia]; A=99999999999999999999)",
		"(K; Play; T=[2,1], R=[Asia]; A=5)",
		"K; Play; T=[1,2], R=[Asia]; A=5",
		"(K; Play; T=[[1,2]], R=[Asia]; A=5)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	d, _, err := PaperDialect(region.World())
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		l, err := d.ParseLicense("F", license.Redistribution, expr)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted licenses must be structurally valid...
		if err := l.Validate(); err != nil {
			t.Fatalf("parser accepted invalid license %q: %v", expr, err)
		}
		// ...and round-trip through the printer.
		back, err := d.ParseLicense("F", license.Redistribution, d.FormatLicense(l))
		if err != nil {
			t.Fatalf("formatted form of %q does not re-parse: %v", expr, err)
		}
		if l.Rect.String() != back.Rect.String() ||
			l.Aggregate != back.Aggregate ||
			l.Content != back.Content ||
			l.Permission != back.Permission {
			t.Fatalf("round-trip changed %q: %v vs %v", expr, l, back)
		}
	})
}
