// Package rel implements a small rights-expression language: the paper's
// own license notation, parsed into the library's license model.
//
// The paper writes licenses as
//
//	(K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)
//
// — content K, permission Play, instance-based constraints T (a date
// range) and R (a region list), and aggregate constraint A. This package
// parses exactly that shape, generalised to any schema:
//
//   - interval axes accept [lo, hi] with either raw int64 coordinates or
//     dd/mm/yy dates (mixing is an error);
//   - a bare value v is shorthand for the degenerate range [v, v];
//   - set axes accept [Name1, Name2, ...] resolved against a region
//     taxonomy (or, without a taxonomy, raw leaf ordinals).
//
// A Dialect binds constraint letters (T, R, ...) to schema axes and
// carries the taxonomy; Parser then turns license lines into Licenses.
// Lines starting with '#' and blank lines are ignored, so a corpus can be
// kept in a readable .rel file (see ParseCorpus).
package rel

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
	"repro/internal/region"
)

// Dialect maps the notation onto a schema: which constraint tag (e.g. "T")
// denotes which axis, and how set axes resolve names.
type Dialect struct {
	schema *geometry.Schema
	// tagAxis maps upper-cased constraint tags to axis positions.
	tagAxis map[string]int
	// tax resolves set-axis member names; may be nil (raw ordinals).
	tax *region.Taxonomy
	// dateAxis marks interval axes whose coordinates FormatLicense
	// renders as dd/mm/yy dates.
	dateAxis []bool
}

// NewDialect binds tags to schema axes in order: tags[i] names axis i.
func NewDialect(schema *geometry.Schema, tax *region.Taxonomy, tags ...string) (*Dialect, error) {
	if len(tags) != schema.Dims() {
		return nil, fmt.Errorf("rel: %d tags for %d axes", len(tags), schema.Dims())
	}
	d := &Dialect{
		schema:   schema,
		tagAxis:  make(map[string]int, len(tags)),
		tax:      tax,
		dateAxis: make([]bool, len(tags)),
	}
	for i, tag := range tags {
		key := strings.ToUpper(strings.TrimSpace(tag))
		if key == "" {
			return nil, fmt.Errorf("rel: empty tag for axis %d", i)
		}
		if _, dup := d.tagAxis[key]; dup {
			return nil, fmt.Errorf("rel: duplicate tag %q", tag)
		}
		d.tagAxis[key] = i
	}
	return d, nil
}

// PaperDialect returns the dialect of the paper's examples: a "period"
// interval axis tagged T and a "region" set axis tagged R over the given
// taxonomy.
func PaperDialect(tax *region.Taxonomy) (*Dialect, *geometry.Schema, error) {
	schema, err := geometry.NewSchema(
		geometry.Axis{Name: "period", Kind: geometry.KindInterval},
		geometry.Axis{Name: "region", Kind: geometry.KindSet, Universe: tax.NumLeaves()},
	)
	if err != nil {
		return nil, nil, err
	}
	d, err := NewDialect(schema, tax, "T", "R")
	if err != nil {
		return nil, nil, err
	}
	if err := d.FormatAsDates("T"); err != nil {
		return nil, nil, err
	}
	return d, schema, nil
}

// GenericDialect derives a dialect for an arbitrary schema: the paper
// dialect (with date rendering and the given taxonomy) when the schema
// matches it, otherwise upper-cased axis names as tags with raw set
// ordinals. It is what the CLI tools use to render any corpus in the
// notation.
func GenericDialect(schema *geometry.Schema, tax *region.Taxonomy) (*Dialect, error) {
	if tax != nil && schema.Dims() == 2 {
		a0, a1 := schema.Axis(0), schema.Axis(1)
		if a0.Name == "period" && a0.Kind == geometry.KindInterval &&
			a1.Name == "region" && a1.Kind == geometry.KindSet &&
			a1.Universe == tax.NumLeaves() {
			d, err := NewDialect(schema, tax, "T", "R")
			if err != nil {
				return nil, err
			}
			if err := d.FormatAsDates("T"); err != nil {
				return nil, err
			}
			return d, nil
		}
	}
	tags := make([]string, schema.Dims())
	for i := range tags {
		tags[i] = strings.ToUpper(schema.Axis(i).Name)
	}
	return NewDialect(schema, nil, tags...)
}

// FormatAsDates marks interval axes (by tag) whose coordinates should be
// rendered as dd/mm/yy dates by FormatLicense. Parsing is unaffected —
// both raw integers and dates are always accepted.
func (d *Dialect) FormatAsDates(tags ...string) error {
	for _, tag := range tags {
		axis, ok := d.tagAxis[strings.ToUpper(strings.TrimSpace(tag))]
		if !ok {
			return fmt.Errorf("rel: unknown tag %q", tag)
		}
		if d.schema.Axis(axis).Kind != geometry.KindInterval {
			return fmt.Errorf("rel: tag %q is not an interval axis", tag)
		}
		d.dateAxis[axis] = true
	}
	return nil
}

// Schema returns the bound schema.
func (d *Dialect) Schema() *geometry.Schema { return d.schema }

// ParseLicense parses one license expression like
//
//	(K; Play; T=[10/03/09, 20/03/09], R=[Asia, Europe]; A=2000)
//
// into a License of the given kind. The name is attached as-is.
func (d *Dialect) ParseLicense(name string, kind license.Kind, expr string) (*license.License, error) {
	body := strings.TrimSpace(expr)
	if !strings.HasPrefix(body, "(") || !strings.HasSuffix(body, ")") {
		return nil, fmt.Errorf("rel: %s: expression must be parenthesised", name)
	}
	body = body[1 : len(body)-1]
	parts := splitTop(body, ';')
	if len(parts) != 4 {
		return nil, fmt.Errorf("rel: %s: want 4 ';'-separated sections (K; P; constraints; A), got %d", name, len(parts))
	}
	content := strings.TrimSpace(parts[0])
	if content == "" {
		return nil, fmt.Errorf("rel: %s: empty content", name)
	}
	perm := license.Permission(strings.ToLower(strings.TrimSpace(parts[1])))
	if perm == "" {
		return nil, fmt.Errorf("rel: %s: empty permission", name)
	}

	rect, err := d.parseConstraints(name, parts[2])
	if err != nil {
		return nil, err
	}

	aggExpr := strings.TrimSpace(parts[3])
	if !strings.HasPrefix(strings.ToUpper(aggExpr), "A") {
		return nil, fmt.Errorf("rel: %s: aggregate section %q must be A=<count>", name, aggExpr)
	}
	eq := strings.IndexByte(aggExpr, '=')
	if eq < 0 {
		return nil, fmt.Errorf("rel: %s: aggregate section %q must be A=<count>", name, aggExpr)
	}
	agg, err := strconv.ParseInt(strings.TrimSpace(aggExpr[eq+1:]), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("rel: %s: aggregate: %w", name, err)
	}

	l := &license.License{
		Name:       name,
		Kind:       kind,
		Content:    content,
		Permission: perm,
		Rect:       rect,
		Aggregate:  agg,
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("rel: %w", err)
	}
	return l, nil
}

// parseConstraints parses "T=[a,b], R=[x,y]" into a rectangle. Every axis
// of the schema must be constrained exactly once.
func (d *Dialect) parseConstraints(name, s string) (geometry.Rect, error) {
	vals := make([]geometry.Value, d.schema.Dims())
	seen := make([]bool, d.schema.Dims())
	for _, item := range splitTop(s, ',') {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		eq := strings.IndexByte(item, '=')
		if eq < 0 {
			return geometry.Rect{}, fmt.Errorf("rel: %s: constraint %q is not tag=value", name, item)
		}
		tag := strings.ToUpper(strings.TrimSpace(item[:eq]))
		axis, ok := d.tagAxis[tag]
		if !ok {
			return geometry.Rect{}, fmt.Errorf("rel: %s: unknown constraint tag %q", name, tag)
		}
		if seen[axis] {
			return geometry.Rect{}, fmt.Errorf("rel: %s: constraint %q given twice", name, tag)
		}
		seen[axis] = true
		v, err := d.parseValue(axis, strings.TrimSpace(item[eq+1:]))
		if err != nil {
			return geometry.Rect{}, fmt.Errorf("rel: %s: %s: %w", name, tag, err)
		}
		vals[axis] = v
	}
	for i, ok := range seen {
		if !ok {
			return geometry.Rect{}, fmt.Errorf("rel: %s: axis %q unconstrained", name, d.schema.Axis(i).Name)
		}
	}
	return geometry.NewRect(d.schema, vals...)
}

// parseValue parses one axis value: "[a, b]" / bare scalar for intervals,
// "[Name, ...]" for sets.
func (d *Dialect) parseValue(axis int, s string) (geometry.Value, error) {
	ax := d.schema.Axis(axis)
	var items []string
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return geometry.Value{}, fmt.Errorf("unterminated bracket in %q", s)
		}
		for _, it := range strings.Split(s[1:len(s)-1], ",") {
			items = append(items, strings.TrimSpace(it))
		}
	} else {
		items = []string{strings.TrimSpace(s)}
	}
	switch ax.Kind {
	case geometry.KindInterval:
		switch len(items) {
		case 1:
			v, err := parseCoord(items[0])
			if err != nil {
				return geometry.Value{}, err
			}
			return geometry.IntervalValue(interval.Point(v)), nil
		case 2:
			lo, err := parseCoord(items[0])
			if err != nil {
				return geometry.Value{}, err
			}
			hi, err := parseCoord(items[1])
			if err != nil {
				return geometry.Value{}, err
			}
			if lo > hi {
				return geometry.Value{}, fmt.Errorf("reversed range [%s, %s]", items[0], items[1])
			}
			return geometry.IntervalValue(interval.New(lo, hi)), nil
		default:
			return geometry.Value{}, fmt.Errorf("interval wants 1 or 2 values, got %d", len(items))
		}
	case geometry.KindSet:
		if d.tax != nil {
			set, err := d.tax.Resolve(items...)
			if err != nil {
				return geometry.Value{}, err
			}
			if set.Universe() != ax.Universe {
				return geometry.Value{}, fmt.Errorf("taxonomy universe %d does not match axis universe %d",
					set.Universe(), ax.Universe)
			}
			return geometry.SetValue(set), nil
		}
		set := bitset.NewSet(ax.Universe)
		for _, it := range items {
			e, err := strconv.Atoi(it)
			if err != nil {
				return geometry.Value{}, fmt.Errorf("set member %q: %w (no taxonomy bound)", it, err)
			}
			if e < 0 || e >= ax.Universe {
				return geometry.Value{}, fmt.Errorf("set member %d outside universe %d", e, ax.Universe)
			}
			set.Add(e)
		}
		return geometry.SetValue(set), nil
	}
	return geometry.Value{}, fmt.Errorf("unsupported axis kind %v", ax.Kind)
}

// parseCoord accepts a raw int64 or a dd/mm/yy date.
func parseCoord(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return v, nil
	}
	if v, err := interval.ParseDate(s); err == nil {
		return v, nil
	}
	return 0, fmt.Errorf("coordinate %q is neither an integer nor a dd/mm/yy date", s)
}

// splitTop splits s on sep, ignoring separators inside brackets.
func splitTop(s string, sep byte) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// ParseCorpus reads a .rel corpus file: one license per line in the form
//
//	<name>: (K; Play; T=[...], R=[...]; A=2000)
//
// with '#' comments and blank lines ignored. All licenses are parsed as
// redistribution licenses into one corpus over the dialect's schema.
func (d *Dialect) ParseCorpus(r io.Reader) (*license.Corpus, error) {
	c := license.NewCorpus(d.schema)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("rel: line %d: want '<name>: (...)'", lineNo)
		}
		name := strings.TrimSpace(line[:colon])
		l, err := d.ParseLicense(name, license.Redistribution, line[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("rel: line %d: %w", lineNo, err)
		}
		if _, err := c.Add(l); err != nil {
			return nil, fmt.Errorf("rel: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rel: reading corpus: %w", err)
	}
	return c, nil
}

// FormatLicense renders a license back into the paper notation, resolving
// set axes through the taxonomy when one is bound. It is the inverse of
// ParseLicense up to whitespace.
func (d *Dialect) FormatLicense(l *license.License) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(l.Content)
	b.WriteString("; ")
	// Permission is title-cased like the paper's "Play".
	p := string(l.Permission)
	if p != "" {
		p = strings.ToUpper(p[:1]) + p[1:]
	}
	b.WriteString(p)
	b.WriteString("; ")
	tags := make([]string, d.schema.Dims())
	for tag, axis := range d.tagAxis {
		tags[axis] = tag
	}
	for i := 0; i < d.schema.Dims(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tags[i])
		b.WriteByte('=')
		v := l.Rect.Value(i)
		if v.Kind() == geometry.KindInterval {
			iv := v.Interval()
			if d.dateAxis[i] {
				fmt.Fprintf(&b, "[%s, %s]", interval.FormatDate(iv.Lo), interval.FormatDate(iv.Hi))
			} else {
				fmt.Fprintf(&b, "[%d, %d]", iv.Lo, iv.Hi)
			}
		} else if d.tax != nil {
			b.WriteString("[" + strings.Join(d.tax.Describe(v.Set()), ", ") + "]")
		} else {
			b.WriteString(v.Set().String())
		}
	}
	fmt.Fprintf(&b, "; A=%d)", l.Aggregate)
	return b.String()
}
