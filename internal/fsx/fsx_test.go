package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Errorf("content = %q, want %q", got, "v1")
	}

	// Overwrites replace the whole file.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "version two")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "version two" {
		t.Errorf("content after overwrite = %q", got)
	}
}

func TestWriteFileAtomicWriteErrorLeavesTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.json")
	if err := os.WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "intact" {
		t.Errorf("target clobbered: %q", got)
	}
	// No temp litter.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing dir accepted")
	}
}
