// Package fsx provides the crash-safe filesystem idioms the durable
// stores share. Writing a file "atomically" on POSIX needs three steps
// beyond temp-file-plus-rename: fsync the temp file before the rename
// (otherwise the rename can be durable while the content is not, leaving
// an empty or truncated file after power loss), rename over the target,
// then fsync the parent directory (otherwise the rename itself may not
// survive). catalog corpus installs and wal snapshot installs both go
// through WriteFileAtomic so neither can vanish or tear on power loss.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic durably installs a file at path: write writes the
// content to a temp file in the same directory, which is fsynced, closed,
// renamed over path, and made durable with a parent-directory fsync.
// On any error the temp file is removed and the target is untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fsx: temp file: %w", err)
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("fsx: sync temp file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fsx: close temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("fsx: installing %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making previously renamed/created/removed
// entries durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsx: open dir %s: %w", dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("fsx: sync dir %s: %w", dir, err)
	}
	return d.Close()
}
