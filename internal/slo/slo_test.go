package slo

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestService wires a Service whose trackers all run on one fake
// clock, so burn math is deterministic.
func newTestService(reg *obs.Registry, obj Objectives, clk *fakeClock) *Service {
	return NewService(reg, obj, TrackerConfig{
		Window: WindowConfig{now: clk.now},
		Burn:   BurnConfig{now: clk.now},
	})
}

// TestBurnRateOracle drives a known bad ratio through the server
// tracker and checks every window's burn rate against the closed form
// badRatio/(1−target).
func TestBurnRateOracle(t *testing.T) {
	clk := &fakeClock{ns: int64(3000 * time.Hour)}
	obj := Objectives{Availability: 0.999, LatencyTarget: 0.99, LatencyThreshold: 250 * time.Millisecond}
	s := newTestService(nil, obj, clk)
	ep := s.Endpoint("GET /x")

	// 1000 requests in the current slot: 20 availability-bad (2%),
	// 100 latency-bad (10%).
	for i := 0; i < 1000; i++ {
		d := 10 * time.Millisecond
		if i < 100 {
			d = 400 * time.Millisecond
		}
		ep.Observe(d, i < 20)
	}
	st := s.Refresh()
	if len(st.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(st.Objectives))
	}
	avail, lat := st.Objectives[0], st.Objectives[1]
	if avail.Name != "availability" || lat.Name != "latency" {
		t.Fatalf("objective order = %s, %s", avail.Name, lat.Name)
	}
	// All traffic is inside every horizon, so each window sees the same
	// ratio.
	for _, w := range avail.Windows {
		wantRatio := 0.02
		wantBurn := wantRatio / (1 - 0.999)
		if math.Abs(w.BadRatio-wantRatio) > 1e-12 || math.Abs(w.BurnRate-wantBurn) > 1e-9 {
			t.Errorf("availability %s: ratio %v burn %v, want %v, %v",
				w.Window, w.BadRatio, w.BurnRate, wantRatio, wantBurn)
		}
		if w.Requests != 1000 || w.Bad != 20 {
			t.Errorf("availability %s: %d/%d, want 20/1000", w.Window, w.Bad, w.Requests)
		}
	}
	for _, w := range lat.Windows {
		wantBurn := 0.1 / (1 - 0.99)
		if math.Abs(w.BurnRate-wantBurn) > 1e-9 {
			t.Errorf("latency %s: burn %v, want %v", w.Window, w.BurnRate, wantBurn)
		}
	}
	// Availability burns at 20×: both the 5m+1h page (>14.4) and the
	// 30m+6h ticket (>6) fire. Latency burns at 10×: ticket only.
	if !avail.Alerts[0].Firing || !avail.Alerts[1].Firing {
		t.Errorf("availability alerts = %+v, want both firing", avail.Alerts)
	}
	if lat.Alerts[0].Firing || !lat.Alerts[1].Firing {
		t.Errorf("latency alerts = %+v, want page quiet, ticket firing", lat.Alerts)
	}
	if avail.BudgetRemaining >= 0 {
		t.Errorf("availability budget remaining = %v, want negative (overspent)", avail.BudgetRemaining)
	}
}

// TestAlertNeedsBothWindows pins the multi-window AND: a burst that is
// hot in the short window but cold in the long one must not page.
func TestAlertNeedsBothWindows(t *testing.T) {
	clk := &fakeClock{ns: int64(3000 * time.Hour)}
	obj := Objectives{Availability: 0.999}
	s := newTestService(nil, obj, clk)
	ep := s.Endpoint("GET /x")

	// An hour of clean traffic...
	for i := 0; i < 119; i++ {
		for j := 0; j < 100; j++ {
			ep.Observe(time.Millisecond, false)
		}
		clk.advance(30 * time.Second)
	}
	// ...then one 30s slot of 100%-bad requests. The 5m window runs hot
	// (100/1000 = 10% bad, burn 100×) but the 1h window stays under the
	// page line (100/12000 ≈ 0.83%, burn ≈ 8.3×).
	for j := 0; j < 100; j++ {
		ep.Observe(time.Millisecond, true)
	}
	clk.advance(30 * time.Second)
	st := s.Refresh()
	avail := st.Objectives[0]
	var burn5m, burn1h float64
	for _, w := range avail.Windows {
		switch w.Window {
		case "5m":
			burn5m = w.BurnRate
		case "1h":
			burn1h = w.BurnRate
		}
	}
	if burn5m <= 14.4 {
		t.Fatalf("5m burn = %v, want > 14.4 (test setup)", burn5m)
	}
	if burn1h > 14.4 {
		t.Fatalf("1h burn = %v, want <= 14.4 (test setup)", burn1h)
	}
	if avail.Alerts[0].Firing {
		t.Errorf("page fires on a short burst: 5m=%v 1h=%v", burn5m, burn1h)
	}
}

// TestRefreshGauges checks Refresh materialises the drm_slo_* series
// with the evaluated values.
func TestRefreshGauges(t *testing.T) {
	clk := &fakeClock{ns: int64(3000 * time.Hour)}
	reg := obs.NewRegistry()
	obj := Objectives{Availability: 0.999, LatencyTarget: 0.99, LatencyThreshold: 100 * time.Millisecond}
	s := newTestService(reg, obj, clk)
	s.Endpoint("GET /a").Observe(time.Millisecond, false)
	s.Endpoint("GET /a").Observe(200*time.Millisecond, true)
	s.Entry("K/play").Observe(time.Millisecond, false)
	s.Refresh()

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`drm_slo_burn_rate{objective="availability",window="5m"}`,
		`drm_slo_burn_rate{objective="latency",window="6h"}`,
		`drm_slo_alert_firing{objective="availability",severity="page"}`,
		`drm_slo_error_budget_remaining{objective="latency"}`,
		`drm_slo_window_requests{scope="server",name="all"} 2`,
		`drm_slo_window_requests{scope="endpoint",name="GET /a"} 2`,
		`drm_slo_window_requests{scope="entry",name="K/play"} 1`,
		`drm_slo_window_error_rate{scope="endpoint",name="GET /a"} 0.5`,
		`drm_slo_window_latency_seconds{scope="endpoint",name="GET /a",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEndpointCascadeEntryIsolation: endpoint observations roll up into
// the server scope; entry observations don't (no double counting).
func TestEndpointCascadeEntryIsolation(t *testing.T) {
	clk := &fakeClock{ns: int64(3000 * time.Hour)}
	s := newTestService(nil, Objectives{Availability: 0.999}, clk)
	s.Endpoint("GET /a").Observe(time.Millisecond, false)
	s.Endpoint("GET /b").Observe(time.Millisecond, true)
	s.Entry("K/play").Observe(time.Millisecond, true)

	server := s.server.Burn(5 * time.Minute)
	if server.Total != 2 || server.BadAvail != 1 {
		t.Errorf("server scope = %+v, want 2 total, 1 bad (entries must not cascade)", server)
	}
	if got := s.Endpoint("GET /a").Burn(5 * time.Minute).Total; got != 1 {
		t.Errorf("endpoint a total = %d, want 1", got)
	}
}

// TestDisabledObjectives: zero targets evaluate to no objectives and a
// zero threshold reports 0 so callers skip exemplar retention.
func TestDisabledObjectives(t *testing.T) {
	clk := &fakeClock{ns: int64(3000 * time.Hour)}
	s := newTestService(nil, Objectives{}, clk)
	s.Endpoint("GET /a").Observe(time.Millisecond, true)
	st := s.Refresh()
	if len(st.Objectives) != 0 {
		t.Errorf("objectives = %+v, want none", st.Objectives)
	}
	if got := s.LatencyThreshold(); got != 0 {
		t.Errorf("threshold = %v, want 0", got)
	}
	var nilS *Service
	if nilS.LatencyThreshold() != 0 || nilS.Hitters() != nil {
		t.Error("nil Service accessors not nil-safe")
	}
	if st := nilS.Refresh(); len(st.Objectives) != 0 {
		t.Error("nil Refresh not zero")
	}
}

// TestStatusJSONSafe: a 100%-target objective (zero budget) with bad
// traffic must still marshal (no bare +Inf anywhere).
func TestStatusJSONSafe(t *testing.T) {
	clk := &fakeClock{ns: int64(3000 * time.Hour)}
	s := newTestService(nil, Objectives{Availability: 1.0}, clk)
	// Overflow-bucket observation too, so quantile clamping is exercised.
	s.Endpoint("GET /a").Observe(time.Hour, true)
	st := s.Refresh()
	if _, err := json.Marshal(st); err != nil {
		t.Fatalf("status not JSON-encodable: %v", err)
	}
	if p99 := st.Endpoints[0].P99Seconds; math.IsInf(p99, +1) {
		t.Errorf("p99 = +Inf leaked into the DTO")
	}
}
