package slo

import (
	"sort"
	"sync"
	"time"
)

// TopK is a space-saving (Misra–Gries) heavy-hitter sketch: it tracks at
// most k weighted items exactly for the heavy ones and with a bounded
// overestimate for the rest. When a new item arrives at capacity it
// replaces the current minimum, inheriting its weight as the error
// floor — the classic guarantee that any item with true weight above
// total/k is present, and every reported weight overestimates the true
// one by at most its Overcount.
//
// The sketch is O(k) memory and O(k) worst-case per update (the min
// scan on replacement); k is small (≤64), so a linear scan beats
// heap bookkeeping. All methods are nil-safe.
type TopK struct {
	mu  sync.Mutex
	cap int
	m   map[string]*tkEntry
}

type tkEntry struct {
	weight    int64
	overcount int64
}

// NewTopK returns a sketch holding at most k items (k < 1 → 16).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 16
	}
	return &TopK{cap: k, m: make(map[string]*tkEntry, k)}
}

// Add charges weight w (ignored when ≤ 0) to item.
func (t *TopK) Add(item string, w int64) {
	if t == nil || w <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[item]; ok {
		e.weight += w
		return
	}
	if len(t.m) < t.cap {
		t.m[item] = &tkEntry{weight: w}
		return
	}
	// Replace the minimum-weight occupant; the newcomer inherits its
	// weight as an upper bound on how much of the reported weight could
	// belong to evicted items.
	var minItem string
	var minE *tkEntry
	for it, e := range t.m {
		if minE == nil || e.weight < minE.weight {
			minItem, minE = it, e
		}
	}
	delete(t.m, minItem)
	t.m[item] = &tkEntry{weight: minE.weight + w, overcount: minE.weight}
}

// HitterCount is one sketch row: Weight overestimates the item's true
// weight by at most Overcount.
type HitterCount struct {
	Item      string `json:"item"`
	Weight    int64  `json:"weight"`
	Overcount int64  `json:"overcount,omitempty"`
}

// Top returns the tracked items sorted by descending weight (ties by
// item name, for stable output). Nil-safe.
func (t *TopK) Top() []HitterCount {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]HitterCount, 0, len(t.m))
	for item, e := range t.m {
		out = append(out, HitterCount{Item: item, Weight: e.weight, Overcount: e.overcount})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Hitters bundles the heavy-hitter sketches the engine feeds per
// issuance: catalog entries and overlap groups, each ranked by request
// count, cumulative latency, and headroom rejections. All methods are
// nil-safe, so the engine hook costs one pointer compare when unset.
type Hitters struct {
	entryRequests *TopK
	entryLatency  *TopK
	entryRejects  *TopK
	groupRequests *TopK
	groupLatency  *TopK
	groupRejects  *TopK
}

// NewHitters builds the six sketches, each holding k items.
func NewHitters(k int) *Hitters {
	return &Hitters{
		entryRequests: NewTopK(k),
		entryLatency:  NewTopK(k),
		entryRejects:  NewTopK(k),
		groupRequests: NewTopK(k),
		groupLatency:  NewTopK(k),
		groupRejects:  NewTopK(k),
	}
}

// ObserveIssue charges one issuance to its entry and overlap group:
// request count 1, latency d, and a rejection when the admission check
// said no. Nil-safe.
func (h *Hitters) ObserveIssue(entry, group string, d time.Duration, rejected bool) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	h.entryRequests.Add(entry, 1)
	h.entryLatency.Add(entry, ns)
	h.groupRequests.Add(group, 1)
	h.groupLatency.Add(group, ns)
	if rejected {
		h.entryRejects.Add(entry, 1)
		h.groupRejects.Add(group, 1)
	}
}

// HitterTables ranks one dimension (entries or groups) three ways.
type HitterTables struct {
	ByRequests   []HitterCount `json:"by_requests"`
	ByLatencyNS  []HitterCount `json:"by_latency_ns"`
	ByRejections []HitterCount `json:"by_rejections"`
}

// HittersSnapshot is the full heavy-hitter view /v1/status serves.
type HittersSnapshot struct {
	Entries HitterTables `json:"entries"`
	Groups  HitterTables `json:"groups"`
}

// Snapshot returns the current rankings (zero value on nil).
func (h *Hitters) Snapshot() HittersSnapshot {
	if h == nil {
		return HittersSnapshot{}
	}
	return HittersSnapshot{
		Entries: HitterTables{
			ByRequests:   h.entryRequests.Top(),
			ByLatencyNS:  h.entryLatency.Top(),
			ByRejections: h.entryRejects.Top(),
		},
		Groups: HitterTables{
			ByRequests:   h.groupRequests.Top(),
			ByLatencyNS:  h.groupLatency.Top(),
			ByRejections: h.groupRejects.Top(),
		},
	}
}
