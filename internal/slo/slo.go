package slo

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Objectives are the service-level objectives the server evaluates.
// Targets are fractions (0.999 = "99.9%"); a zero target disables that
// objective.
type Objectives struct {
	// Availability is the target fraction of requests answered without a
	// server fault (non-5xx).
	Availability float64
	// LatencyTarget is the target fraction of requests finishing under
	// LatencyThreshold.
	LatencyTarget float64
	// LatencyThreshold is the latency SLO boundary; requests at or over
	// it burn the latency error budget (and have their traces retained,
	// so exemplars stay resolvable). 0 disables the latency objective.
	LatencyThreshold time.Duration
}

// DefaultObjectives: 99.9% availability, 99% of requests under 250ms.
func DefaultObjectives() Objectives {
	return Objectives{
		Availability:     0.999,
		LatencyTarget:    0.99,
		LatencyThreshold: 250 * time.Millisecond,
	}
}

// burnHorizons are the four windows every objective is evaluated over.
var burnHorizons = []struct {
	name string
	d    time.Duration
}{
	{"5m", 5 * time.Minute},
	{"30m", 30 * time.Minute},
	{"1h", time.Hour},
	{"6h", 6 * time.Hour},
}

// AlertRule is one multi-window burn-rate alert: it fires when both the
// short and the long window burn faster than Threshold — the
// short window for responsiveness, the long one to suppress blips.
type AlertRule struct {
	Severity  string
	Short     time.Duration
	Long      time.Duration
	Threshold float64
}

// DefaultAlerts are the canonical SRE pairs: a fast page (5m+1h at
// 14.4× — exhausting a 30-day budget in ~2 days) and a slow ticket
// (30m+6h at 6×).
var DefaultAlerts = []AlertRule{
	{Severity: "page", Short: 5 * time.Minute, Long: time.Hour, Threshold: 14.4},
	{Severity: "ticket", Short: 30 * time.Minute, Long: 6 * time.Hour, Threshold: 6},
}

// TrackerConfig shapes one Tracker's windows.
type TrackerConfig struct {
	// Window is the short percentile window (default 12×10s).
	Window WindowConfig
	// Burn is the long burn-rate ring (default 30s×6h).
	Burn BurnConfig
	// SlowThreshold marks an observation latency-bad when ≥ it (0: no
	// latency tracking in the burn ring).
	SlowThreshold time.Duration
}

// Tracker is the per-scope recording unit: a short latency window for
// "right now" percentiles plus a long burn ring for SLO math. Observe
// is nil-safe, lock-free, and allocation-free; a parent tracker (the
// server-wide scope) is cascaded into automatically.
type Tracker struct {
	parent *Tracker
	slow   time.Duration
	lat    *LatencyWindow
	burn   *BurnWindow
}

// NewTracker builds a tracker from cfg.
func NewTracker(cfg TrackerConfig) *Tracker {
	return &Tracker{
		slow: cfg.SlowThreshold,
		lat:  NewLatencyWindow(cfg.Window),
		burn: NewBurnWindow(cfg.Burn),
	}
}

// Observe records one request: latency and whether the server faulted.
func (t *Tracker) Observe(d time.Duration, isErr bool) {
	for ; t != nil; t = t.parent {
		slow := t.slow > 0 && d >= t.slow
		t.lat.Observe(d.Seconds(), isErr)
		t.burn.Record(isErr, slow)
	}
}

// Latency returns the short-window snapshot (zero on nil).
func (t *Tracker) Latency() LatencySnapshot {
	if t == nil {
		return LatencySnapshot{}
	}
	return t.lat.Snapshot()
}

// Burn returns the counts inside one burn horizon (zero on nil).
func (t *Tracker) Burn(horizon time.Duration) BurnCounts {
	if t == nil {
		return BurnCounts{}
	}
	return t.burn.Counts(horizon)
}

// WindowBurn is one horizon's worth of burn math for an objective.
type WindowBurn struct {
	Window   string  `json:"window"`
	Requests int64   `json:"requests"`
	Bad      int64   `json:"bad"`
	BadRatio float64 `json:"bad_ratio"`
	// BurnRate is BadRatio divided by the error budget (1−target): 1.0
	// burns the budget exactly at its sustainable rate.
	BurnRate float64 `json:"burn_rate"`
}

// AlertStatus is one multi-window rule's current verdict.
type AlertStatus struct {
	Severity    string  `json:"severity"`
	ShortWindow string  `json:"short_window"`
	LongWindow  string  `json:"long_window"`
	Threshold   float64 `json:"threshold"`
	Firing      bool    `json:"firing"`
}

// ObjectiveStatus is one objective's full evaluation.
type ObjectiveStatus struct {
	Name   string  `json:"name"` // "availability" or "latency"
	Target float64 `json:"target"`
	// ThresholdSeconds is the latency boundary (latency objective only).
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`
	// BudgetRemaining is the fraction of the 6h error budget left
	// (1 − badRatio₆ₕ/budget; negative when overspent).
	BudgetRemaining float64       `json:"budget_remaining"`
	Windows         []WindowBurn  `json:"windows"`
	Alerts          []AlertStatus `json:"alerts"`
}

func horizonName(d time.Duration) string {
	for _, h := range burnHorizons {
		if h.d == d {
			return h.name
		}
	}
	return d.String()
}

// evaluate runs the burn-rate math for one objective over t's ring.
// bad selects which bad counter the objective consumes.
func evaluate(t *Tracker, name string, target float64, threshold time.Duration, bad func(BurnCounts) int64) ObjectiveStatus {
	budget := 1 - target
	st := ObjectiveStatus{Name: name, Target: target, BudgetRemaining: 1}
	if threshold > 0 {
		st.ThresholdSeconds = threshold.Seconds()
	}
	burnAt := make(map[string]float64, len(burnHorizons))
	for _, h := range burnHorizons {
		c := t.Burn(h.d)
		wb := WindowBurn{Window: h.name, Requests: c.Total, Bad: bad(c)}
		if c.Total > 0 {
			wb.BadRatio = float64(wb.Bad) / float64(c.Total)
		}
		if budget > 0 {
			wb.BurnRate = wb.BadRatio / budget
		} else if wb.BadRatio > 0 {
			// A zero error budget (target 100%) burns infinitely fast;
			// keep the value finite so the status stays JSON-encodable.
			wb.BurnRate = math.MaxFloat64
		}
		burnAt[h.name] = wb.BurnRate
		st.Windows = append(st.Windows, wb)
		if h.name == "6h" {
			st.BudgetRemaining = 1 - wb.BurnRate
		}
	}
	for _, r := range DefaultAlerts {
		st.Alerts = append(st.Alerts, AlertStatus{
			Severity:    r.Severity,
			ShortWindow: horizonName(r.Short),
			LongWindow:  horizonName(r.Long),
			Threshold:   r.Threshold,
			Firing:      burnAt[horizonName(r.Short)] > r.Threshold && burnAt[horizonName(r.Long)] > r.Threshold,
		})
	}
	return st
}

// ScopeWindow is one scope's short-window summary, the per-endpoint /
// per-entry row of /v1/status. Quantiles landing in the +Inf overflow
// bucket are clamped to the top finite bucket bound (the histogram
// cannot resolve beyond it).
type ScopeWindow struct {
	Name          string  `json:"name"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	ErrorRate     float64 `json:"error_rate"`
	P50Seconds    float64 `json:"p50_seconds"`
	P95Seconds    float64 `json:"p95_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
	WindowSeconds float64 `json:"window_seconds"`
}

func clampQuantile(s LatencySnapshot, q float64) float64 {
	v := s.Quantile(q)
	if math.IsInf(v, +1) {
		if len(s.Upper) > 0 {
			return s.Upper[len(s.Upper)-1]
		}
		return 0
	}
	return v
}

func scopeWindow(name string, t *Tracker) ScopeWindow {
	s := t.Latency()
	return ScopeWindow{
		Name:          name,
		Requests:      s.Count,
		Errors:        s.Errors,
		ErrorRate:     s.ErrorRate(),
		P50Seconds:    clampQuantile(s, 0.50),
		P95Seconds:    clampQuantile(s, 0.95),
		P99Seconds:    clampQuantile(s, 0.99),
		WindowSeconds: t.lat.WindowSeconds(),
	}
}

// Status is the machine-readable SLO state: GET /v1/slo returns it
// verbatim, GET /v1/status embeds it.
type Status struct {
	Objectives []ObjectiveStatus `json:"objectives"`
	Endpoints  []ScopeWindow     `json:"endpoints"`
	Entries    []ScopeWindow     `json:"entries,omitempty"`
}

// Service owns the server's SLO state: a server-wide tracker the
// objectives are evaluated over, per-endpoint and per-entry trackers for
// windowed percentiles, the heavy-hitter sketches, and the drm_slo_*
// gauge handles Refresh maintains.
type Service struct {
	obj     Objectives
	cfg     TrackerConfig
	server  *Tracker
	hitters *Hitters

	mu        sync.Mutex
	endpoints map[string]*Tracker
	entries   map[string]*Tracker

	burnG   *obs.FloatGaugeVec
	alertG  *obs.FloatGaugeVec
	budgetG *obs.FloatGaugeVec
	reqG    *obs.FloatGaugeVec
	errG    *obs.FloatGaugeVec
	quantG  *obs.FloatGaugeVec
}

// NewService registers the drm_slo_* families on reg and returns the
// service. cfg's SlowThreshold is forced to the objectives' latency
// threshold so burn math and windowed tracking agree.
func NewService(reg *obs.Registry, obj Objectives, cfg TrackerConfig) *Service {
	cfg.SlowThreshold = obj.LatencyThreshold
	s := &Service{
		obj:       obj,
		cfg:       cfg,
		server:    NewTracker(cfg),
		hitters:   NewHitters(32),
		endpoints: make(map[string]*Tracker),
		entries:   make(map[string]*Tracker),
	}
	if reg != nil {
		s.burnG = reg.FloatGaugeVec("drm_slo_burn_rate",
			"Error-budget burn rate per objective and window (1.0 = sustainable).",
			"objective", "window")
		s.alertG = reg.FloatGaugeVec("drm_slo_alert_firing",
			"1 when the multi-window burn-rate alert is firing.",
			"objective", "severity")
		s.budgetG = reg.FloatGaugeVec("drm_slo_error_budget_remaining",
			"Fraction of the 6h error budget left per objective.",
			"objective")
		s.reqG = reg.FloatGaugeVec("drm_slo_window_requests",
			"Requests inside the sliding window, per scope.",
			"scope", "name")
		s.errG = reg.FloatGaugeVec("drm_slo_window_error_rate",
			"Error rate inside the sliding window, per scope.",
			"scope", "name")
		s.quantG = reg.FloatGaugeVec("drm_slo_window_latency_seconds",
			"Sliding-window latency quantiles, per scope.",
			"scope", "name", "quantile")
	}
	return s
}

// Objectives returns the configured objectives.
func (s *Service) Objectives() Objectives { return s.obj }

// LatencyThreshold returns the latency SLO boundary (0 when disabled or
// on nil) — the retention bar for exemplar traces.
func (s *Service) LatencyThreshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.obj.LatencyThreshold
}

// Hitters returns the heavy-hitter sketches (nil-safe).
func (s *Service) Hitters() *Hitters {
	if s == nil {
		return nil
	}
	return s.hitters
}

// Endpoint returns (creating on first use) the tracker for one route
// pattern. Endpoint observations cascade into the server-wide tracker
// the objectives are evaluated over.
func (s *Service) Endpoint(name string) *Tracker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.endpoints[name]
	if !ok {
		t = NewTracker(s.cfg)
		t.parent = s.server
		s.endpoints[name] = t
	}
	return t
}

// Entry returns (creating on first use) the tracker for one catalog
// entry ("content/permission"). Entry observations do not cascade — the
// endpoint layer already counts every request once.
func (s *Service) Entry(name string) *Tracker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.entries[name]
	if !ok {
		t = NewTracker(s.cfg)
		s.entries[name] = t
	}
	return t
}

func snapshotScopes(m map[string]*Tracker) []ScopeWindow {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ScopeWindow, 0, len(names))
	for _, name := range names {
		out = append(out, scopeWindow(name, m[name]))
	}
	return out
}

// Refresh re-evaluates every objective and scope, updates the drm_slo_*
// gauges, and returns the full status. Called from the telemetry ticker
// and from the /metrics, /v1/slo, and /v1/status handlers so scrapes
// always see current window math. Nil-safe (zero Status).
func (s *Service) Refresh() Status {
	if s == nil {
		return Status{}
	}
	var st Status
	if s.obj.Availability > 0 {
		st.Objectives = append(st.Objectives, evaluate(s.server, "availability",
			s.obj.Availability, 0, func(c BurnCounts) int64 { return c.BadAvail }))
	}
	if s.obj.LatencyTarget > 0 && s.obj.LatencyThreshold > 0 {
		st.Objectives = append(st.Objectives, evaluate(s.server, "latency",
			s.obj.LatencyTarget, s.obj.LatencyThreshold, func(c BurnCounts) int64 { return c.BadSlow }))
	}
	s.mu.Lock()
	endpoints := make(map[string]*Tracker, len(s.endpoints))
	for k, v := range s.endpoints {
		endpoints[k] = v
	}
	entries := make(map[string]*Tracker, len(s.entries))
	for k, v := range s.entries {
		entries[k] = v
	}
	s.mu.Unlock()
	st.Endpoints = snapshotScopes(endpoints)
	st.Entries = snapshotScopes(entries)

	for _, o := range st.Objectives {
		for _, w := range o.Windows {
			s.burnG.With(o.Name, w.Window).Set(w.BurnRate)
		}
		for _, a := range o.Alerts {
			v := 0.0
			if a.Firing {
				v = 1
			}
			s.alertG.With(o.Name, a.Severity).Set(v)
		}
		s.budgetG.With(o.Name).Set(o.BudgetRemaining)
	}
	server := scopeWindow("all", s.server)
	s.setScopeGauges("server", server)
	for _, w := range st.Endpoints {
		s.setScopeGauges("endpoint", w)
	}
	for _, w := range st.Entries {
		s.setScopeGauges("entry", w)
	}
	return st
}

func (s *Service) setScopeGauges(scope string, w ScopeWindow) {
	s.reqG.With(scope, w.Name).Set(float64(w.Requests))
	s.errG.With(scope, w.Name).Set(w.ErrorRate)
	s.quantG.With(scope, w.Name, "0.5").Set(w.P50Seconds)
	s.quantG.With(scope, w.Name, "0.95").Set(w.P95Seconds)
	s.quantG.With(scope, w.Name, "0.99").Set(w.P99Seconds)
}
