// Package slo turns the cumulative signals of internal/obs into
// operational ones: sliding-window latency histograms (windowed
// p50/p95/p99 and error rate per endpoint and per catalog entry),
// multi-window burn-rate SLO evaluation (the 5m/1h fast page and
// 30m/6h slow ticket of SRE practice), and space-saving top-K
// heavy-hitter sketches over catalog entries and overlap groups.
//
// The package follows the obs discipline: zero third-party imports,
// nil-safe recording methods, and no allocation on the hot recording
// path — windows are rings of fixed-size sub-window slots holding only
// atomics, recycled in place by epoch comparison, so Observe never
// allocates and never takes a lock.
package slo

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// slotEmpty marks a slot that has never held a sub-window. It can never
// equal a real epoch index (epochs count sub-windows since the Unix
// epoch, which is non-negative for any plausible clock).
const slotEmpty = math.MinInt64

// WindowConfig shapes a sliding latency window.
type WindowConfig struct {
	// SubWindow is the granularity of the ring; observations land in the
	// slot covering now/SubWindow. Default 10s.
	SubWindow time.Duration
	// SubWindows is the ring length; the window spans
	// SubWindows×SubWindow (including the current partial sub-window).
	// Default 12 — a 2-minute window at the default granularity.
	SubWindows int
	// Buckets are the histogram upper bounds in seconds
	// (obs.DefBuckets when nil).
	Buckets []float64

	// now returns wall-clock nanoseconds; tests inject a fake clock so
	// windowed quantiles are oracle-exact. Nil means time.Now.
	now func() int64
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.SubWindow <= 0 {
		c.SubWindow = 10 * time.Second
	}
	if c.SubWindows <= 0 {
		c.SubWindows = 12
	}
	if c.Buckets == nil {
		c.Buckets = obs.DefBuckets
	}
	if c.now == nil {
		c.now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// latencySlot is one sub-window of a LatencyWindow: everything atomic so
// recording is lock-free. Slot recycling (a new epoch claiming the ring
// position) races benignly with concurrent observers — an observation
// landing exactly on a sub-window boundary can be zeroed by the
// recycler. The loss is bounded to the boundary instant and the window
// is a monitoring estimate, not an accounting ledger.
type latencySlot struct {
	epoch    atomic.Int64
	count    atomic.Int64
	errs     atomic.Int64
	sumNanos atomic.Int64
	buckets  []atomic.Int64 // len(upper)+1; last is +Inf
}

func (s *latencySlot) reset() {
	s.count.Store(0)
	s.errs.Store(0)
	s.sumNanos.Store(0)
	for i := range s.buckets {
		s.buckets[i].Store(0)
	}
}

// LatencyWindow is a sliding-window latency histogram: a ring of
// fixed-bucket sub-windows. Observe is lock-free and allocation-free;
// Snapshot aggregates the slots still inside the window.
type LatencyWindow struct {
	sub   int64 // sub-window length, nanoseconds
	upper []float64
	slots []latencySlot
	now   func() int64
}

// NewLatencyWindow builds a window from cfg (zero value → 12×10s ring
// over obs.DefBuckets).
func NewLatencyWindow(cfg WindowConfig) *LatencyWindow {
	cfg = cfg.withDefaults()
	upper := append([]float64(nil), cfg.Buckets...)
	w := &LatencyWindow{
		sub:   int64(cfg.SubWindow),
		upper: upper,
		slots: make([]latencySlot, cfg.SubWindows),
		now:   cfg.now,
	}
	for i := range w.slots {
		w.slots[i].epoch.Store(slotEmpty)
		w.slots[i].buckets = make([]atomic.Int64, len(upper)+1)
	}
	return w
}

// slot returns the ring slot for the current sub-window, recycling a
// stale occupant in place. Lock-free: the epoch CAS elects one recycler.
func (w *LatencyWindow) slot() *latencySlot {
	e := w.now() / w.sub
	s := &w.slots[int(e%int64(len(w.slots)))]
	for {
		cur := s.epoch.Load()
		if cur == e {
			return s
		}
		if s.epoch.CompareAndSwap(cur, e) {
			s.reset()
			return s
		}
	}
}

// Observe records one request: v seconds of latency and whether it
// failed. Nil-safe and allocation-free.
func (w *LatencyWindow) Observe(v float64, isErr bool) {
	if w == nil {
		return
	}
	s := w.slot()
	s.count.Add(1)
	if isErr {
		s.errs.Add(1)
	}
	s.sumNanos.Add(int64(v * 1e9))
	s.buckets[w.bucketIdx(v)].Add(1)
}

func (w *LatencyWindow) bucketIdx(v float64) int {
	for i, ub := range w.upper {
		if v <= ub {
			return i
		}
	}
	return len(w.upper)
}

// LatencySnapshot is the aggregate of every live sub-window: totals plus
// non-cumulative per-bucket counts (Buckets[len(Upper)] is the +Inf
// overflow bucket).
type LatencySnapshot struct {
	Count      int64
	Errors     int64
	SumSeconds float64
	Upper      []float64
	Buckets    []int64
}

// Snapshot aggregates the slots whose epoch falls inside the window
// (the current sub-window plus the SubWindows−1 before it). A slot
// recycled mid-read is skipped: its data belonged to an expired
// sub-window. Nil-safe (zero snapshot).
func (w *LatencyWindow) Snapshot() LatencySnapshot {
	if w == nil {
		return LatencySnapshot{}
	}
	cur := w.now() / w.sub
	oldest := cur - int64(len(w.slots)) + 1
	snap := LatencySnapshot{Upper: w.upper, Buckets: make([]int64, len(w.upper)+1)}
	tmp := make([]int64, len(w.upper)+1)
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < oldest || e > cur {
			continue
		}
		count := s.count.Load()
		errs := s.errs.Load()
		sum := s.sumNanos.Load()
		for j := range s.buckets {
			tmp[j] = s.buckets[j].Load()
		}
		if s.epoch.Load() != e { // recycled under us; data was expired
			continue
		}
		snap.Count += count
		snap.Errors += errs
		snap.SumSeconds += float64(sum) / 1e9
		for j, b := range tmp {
			snap.Buckets[j] += b
		}
	}
	return snap
}

// WindowSeconds returns the span the window covers, in seconds (0 on
// nil).
func (w *LatencyWindow) WindowSeconds() float64 {
	if w == nil {
		return 0
	}
	return time.Duration(w.sub * int64(len(w.slots))).Seconds()
}

// Quantile returns the q-quantile (0 < q ≤ 1) as the smallest bucket
// upper bound whose cumulative count reaches ceil(q×Count) — the exact
// definition the oracle tests recompute. Observations beyond the last
// finite bucket yield +Inf; an empty snapshot yields 0.
func (s LatencySnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			if i < len(s.Upper) {
				return s.Upper[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// ErrorRate returns Errors/Count (0 when empty).
func (s LatencySnapshot) ErrorRate() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Errors) / float64(s.Count)
}

// burnSlot is one sub-window of a BurnWindow: request totals plus two
// bad counts — availability failures (5xx) and latency failures
// (slower than the SLO threshold).
type burnSlot struct {
	epoch    atomic.Int64
	total    atomic.Int64
	badAvail atomic.Int64
	badSlow  atomic.Int64
}

func (s *burnSlot) reset() {
	s.total.Store(0)
	s.badAvail.Store(0)
	s.badSlow.Store(0)
}

// BurnWindow counts good/bad requests over a long ring of coarse
// sub-windows so one structure answers every burn-rate horizon (5m, 30m,
// 1h, 6h) by partial aggregation. Default 720×30s = 6h.
type BurnWindow struct {
	sub   int64
	slots []burnSlot
	now   func() int64
}

// BurnConfig shapes a BurnWindow.
type BurnConfig struct {
	// SubWindow is the ring granularity (default 30s); every burn
	// horizon is rounded down to a whole number of sub-windows.
	SubWindow time.Duration
	// Span is the longest horizon the ring can answer (default 6h).
	Span time.Duration

	now func() int64
}

func (c BurnConfig) withDefaults() BurnConfig {
	if c.SubWindow <= 0 {
		c.SubWindow = 30 * time.Second
	}
	if c.Span <= 0 {
		c.Span = 6 * time.Hour
	}
	if c.Span < c.SubWindow {
		c.Span = c.SubWindow
	}
	if c.now == nil {
		c.now = func() int64 { return time.Now().UnixNano() }
	}
	return c
}

// NewBurnWindow builds a burn ring from cfg (zero value → 30s×720).
func NewBurnWindow(cfg BurnConfig) *BurnWindow {
	cfg = cfg.withDefaults()
	n := int(cfg.Span / cfg.SubWindow)
	if n < 1 {
		n = 1
	}
	w := &BurnWindow{sub: int64(cfg.SubWindow), slots: make([]burnSlot, n), now: cfg.now}
	for i := range w.slots {
		w.slots[i].epoch.Store(slotEmpty)
	}
	return w
}

func (w *BurnWindow) slot() *burnSlot {
	e := w.now() / w.sub
	s := &w.slots[int(e%int64(len(w.slots)))]
	for {
		cur := s.epoch.Load()
		if cur == e {
			return s
		}
		if s.epoch.CompareAndSwap(cur, e) {
			s.reset()
			return s
		}
	}
}

// Record counts one request into the current sub-window. Nil-safe,
// lock-free, allocation-free.
func (w *BurnWindow) Record(badAvail, badSlow bool) {
	if w == nil {
		return
	}
	s := w.slot()
	s.total.Add(1)
	if badAvail {
		s.badAvail.Add(1)
	}
	if badSlow {
		s.badSlow.Add(1)
	}
}

// BurnCounts are the request totals inside one burn horizon.
type BurnCounts struct {
	Total    int64
	BadAvail int64
	BadSlow  int64
}

// Counts aggregates the slots inside the given horizon (rounded down to
// whole sub-windows, clamped to [1 sub-window, ring span]). Nil-safe.
func (w *BurnWindow) Counts(horizon time.Duration) BurnCounts {
	if w == nil {
		return BurnCounts{}
	}
	n := int64(horizon) / w.sub
	if n < 1 {
		n = 1
	}
	if n > int64(len(w.slots)) {
		n = int64(len(w.slots))
	}
	cur := w.now() / w.sub
	oldest := cur - n + 1
	var out BurnCounts
	for i := range w.slots {
		s := &w.slots[i]
		e := s.epoch.Load()
		if e < oldest || e > cur {
			continue
		}
		total := s.total.Load()
		badAvail := s.badAvail.Load()
		badSlow := s.badSlow.Load()
		if s.epoch.Load() != e {
			continue
		}
		out.Total += total
		out.BadAvail += badAvail
		out.BadSlow += badSlow
	}
	return out
}
