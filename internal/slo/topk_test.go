package slo

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestTopKHeavyItemPresent pins the space-saving guarantee: any item
// with true weight above total/k is in the sketch, and its reported
// weight brackets the true one (true ≤ reported ≤ true + overcount).
func TestTopKHeavyItemPresent(t *testing.T) {
	const k = 8
	tk := NewTopK(k)
	rng := rand.New(rand.NewSource(1))
	truth := map[string]int64{}
	var total int64
	add := func(item string, w int64) {
		tk.Add(item, w)
		truth[item] += w
		total += w
	}
	// One dominant item drowned in a long tail of singletons.
	for i := 0; i < 5000; i++ {
		if i%5 == 0 {
			add("hot", 1)
		} else {
			add(fmt.Sprintf("cold-%d", rng.Intn(2000)), 1)
		}
	}
	top := tk.Top()
	if len(top) > k {
		t.Fatalf("sketch holds %d items, cap %d", len(top), k)
	}
	var hot *HitterCount
	for i := range top {
		if top[i].Item == "hot" {
			hot = &top[i]
		}
	}
	if hot == nil {
		t.Fatalf("heavy item (weight %d of %d, > total/k) missing from sketch", truth["hot"], total)
	}
	if hot.Weight < truth["hot"] {
		t.Errorf("reported weight %d under true weight %d (space-saving never undercounts)", hot.Weight, truth["hot"])
	}
	if hot.Weight-hot.Overcount > truth["hot"] {
		t.Errorf("weight %d − overcount %d exceeds true weight %d", hot.Weight, hot.Overcount, truth["hot"])
	}
}

func TestTopKOrderingAndNilSafety(t *testing.T) {
	tk := NewTopK(4)
	tk.Add("b", 5)
	tk.Add("a", 5)
	tk.Add("c", 9)
	tk.Add("ignored", 0)
	tk.Add("ignored", -3)
	top := tk.Top()
	if len(top) != 3 || top[0].Item != "c" || top[1].Item != "a" || top[2].Item != "b" {
		t.Errorf("Top() = %+v, want c, then a/b by name", top)
	}
	var nilTK *TopK
	nilTK.Add("x", 1)
	if nilTK.Top() != nil {
		t.Error("nil TopK not inert")
	}
}

func TestHittersSnapshot(t *testing.T) {
	h := NewHitters(4)
	h.ObserveIssue("K/play", "K#g0", 2*time.Millisecond, false)
	h.ObserveIssue("K/play", "K#g0", 3*time.Millisecond, true)
	h.ObserveIssue("L/copy", "L#g1", 10*time.Millisecond, false)
	s := h.Snapshot()
	if got := s.Entries.ByRequests[0]; got.Item != "K/play" || got.Weight != 2 {
		t.Errorf("entries by requests = %+v, want K/play ×2", got)
	}
	if got := s.Entries.ByLatencyNS[0]; got.Item != "L/copy" || got.Weight != 10*time.Millisecond.Nanoseconds() {
		t.Errorf("entries by latency = %+v, want L/copy 10ms", got)
	}
	if got := s.Entries.ByRejections; len(got) != 1 || got[0].Item != "K/play" {
		t.Errorf("entries by rejections = %+v, want only K/play", got)
	}
	if got := s.Groups.ByRequests[0]; got.Item != "K#g0" || got.Weight != 2 {
		t.Errorf("groups by requests = %+v, want K#g0 ×2", got)
	}
	var nilH *Hitters
	if snap := nilH.Snapshot(); snap.Entries.ByRequests != nil {
		t.Error("nil Hitters snapshot not zero")
	}
}
