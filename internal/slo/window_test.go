package slo

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// fakeClock is an injectable nanosecond clock for oracle-exact window
// tests.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64              { return c.ns }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

// oracleQuantile recomputes the snapshot's quantile definition from a
// raw observation list: smallest bucket upper bound whose cumulative
// count reaches ceil(q·n), +Inf past the last finite bucket.
func oracleQuantile(obs []float64, upper []float64, q float64) float64 {
	if len(obs) == 0 {
		return 0
	}
	counts := make([]int64, len(upper)+1)
	for _, v := range obs {
		i := 0
		for ; i < len(upper); i++ {
			if v <= upper[i] {
				break
			}
		}
		counts[i]++
	}
	rank := int64(math.Ceil(q * float64(len(obs))))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(upper) {
				return upper[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

func TestLatencyWindowOracle(t *testing.T) {
	clk := &fakeClock{ns: int64(1000 * time.Hour)}
	upper := []float64{0.001, 0.01, 0.1, 1}
	w := NewLatencyWindow(WindowConfig{
		SubWindow:  10 * time.Second,
		SubWindows: 6,
		Buckets:    upper,
		now:        clk.now,
	})

	rng := rand.New(rand.NewSource(42))
	var live []float64 // observations still inside the 60s window
	var liveErrs int64
	// Fill 4 sub-windows, spaced 10s apart, all inside the window.
	for sw := 0; sw < 4; sw++ {
		for i := 0; i < 50; i++ {
			v := math.Pow(10, -3+3*rng.Float64()) // 1ms..1s log-uniform
			isErr := i%10 == 0
			w.Observe(v, isErr)
			live = append(live, v)
			if isErr {
				liveErrs++
			}
		}
		clk.advance(10 * time.Second)
	}

	snap := w.Snapshot()
	if snap.Count != int64(len(live)) {
		t.Fatalf("Count = %d, want %d", snap.Count, len(live))
	}
	if snap.Errors != liveErrs {
		t.Fatalf("Errors = %d, want %d", snap.Errors, liveErrs)
	}
	var sum float64
	for _, v := range live {
		sum += v
	}
	if math.Abs(snap.SumSeconds-sum) > 1e-6 {
		t.Errorf("SumSeconds = %v, want %v", snap.SumSeconds, sum)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		want := oracleQuantile(live, upper, q)
		if got := snap.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, oracle says %v", q, got, want)
		}
	}
	wantRate := float64(liveErrs) / float64(len(live))
	if got := snap.ErrorRate(); math.Abs(got-wantRate) > 1e-12 {
		t.Errorf("ErrorRate = %v, want %v", got, wantRate)
	}
}

func TestLatencyWindowExpiry(t *testing.T) {
	clk := &fakeClock{ns: int64(1000 * time.Hour)}
	w := NewLatencyWindow(WindowConfig{
		SubWindow:  10 * time.Second,
		SubWindows: 3,
		Buckets:    []float64{1},
		now:        clk.now,
	})
	w.Observe(0.5, true)
	clk.advance(10 * time.Second)
	w.Observe(0.5, false)
	w.Observe(0.5, false)

	// Both sub-windows live: 3 observations.
	if got := w.Snapshot().Count; got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
	// Advance so the first sub-window (and its error) falls out.
	clk.advance(20 * time.Second)
	snap := w.Snapshot()
	if snap.Count != 2 || snap.Errors != 0 {
		t.Fatalf("after expiry: Count = %d Errors = %d, want 2, 0", snap.Count, snap.Errors)
	}
	// Advance past the whole window: empty.
	clk.advance(time.Hour)
	snap = w.Snapshot()
	if snap.Count != 0 {
		t.Fatalf("after full expiry: Count = %d, want 0", snap.Count)
	}
	if got := snap.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}

	// Ring reuse: a slot recycled long after expiry holds only new data.
	w.Observe(2, false) // overflow bucket
	snap = w.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("after reuse: Count = %d, want 1", snap.Count)
	}
	if got := snap.Quantile(0.5); !math.IsInf(got, +1) {
		t.Errorf("overflow Quantile = %v, want +Inf", got)
	}
}

func TestBurnWindowOracle(t *testing.T) {
	clk := &fakeClock{ns: int64(2000 * time.Hour)}
	w := NewBurnWindow(BurnConfig{SubWindow: 30 * time.Second, Span: time.Hour, now: clk.now})

	type rec struct {
		epoch              int64
		total, avail, slow int64
	}
	var all []rec
	rng := rand.New(rand.NewSource(7))
	// One hour of traffic, one batch per 30s slot.
	for i := 0; i < 120; i++ {
		r := rec{epoch: clk.ns / int64(30*time.Second)}
		for j := 0; j < 5+rng.Intn(10); j++ {
			badAvail := rng.Intn(10) == 0
			badSlow := rng.Intn(5) == 0
			w.Record(badAvail, badSlow)
			r.total++
			if badAvail {
				r.avail++
			}
			if badSlow {
				r.slow++
			}
		}
		all = append(all, r)
		clk.advance(30 * time.Second)
	}
	// The clock now sits at the start of a fresh (empty) sub-window.
	cur := clk.ns / int64(30*time.Second)
	for _, horizon := range []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour} {
		n := int64(horizon / (30 * time.Second))
		oldest := cur - n + 1
		var want BurnCounts
		for _, r := range all {
			if r.epoch >= oldest && r.epoch <= cur {
				want.Total += r.total
				want.BadAvail += r.avail
				want.BadSlow += r.slow
			}
		}
		if got := w.Counts(horizon); got != want {
			t.Errorf("Counts(%v) = %+v, oracle says %+v", horizon, got, want)
		}
	}
}

// TestWindowZeroAlloc pins the hot-path discipline: recording into live
// windows and into nil ones allocates nothing.
func TestWindowZeroAlloc(t *testing.T) {
	w := NewLatencyWindow(WindowConfig{})
	b := NewBurnWindow(BurnConfig{})
	tr := NewTracker(TrackerConfig{SlowThreshold: 250 * time.Millisecond})
	var nilW *LatencyWindow
	var nilB *BurnWindow
	var nilT *Tracker
	var nilH *Hitters
	cases := map[string]func(){
		"LatencyWindow.Observe":     func() { w.Observe(0.003, false) },
		"BurnWindow.Record":         func() { b.Record(false, true) },
		"Tracker.Observe":           func() { tr.Observe(3*time.Millisecond, false) },
		"nil LatencyWindow.Observe": func() { nilW.Observe(0.003, false) },
		"nil BurnWindow.Record":     func() { nilB.Record(false, false) },
		"nil Tracker.Observe":       func() { nilT.Observe(time.Millisecond, false) },
		"nil Hitters.ObserveIssue":  func() { nilH.ObserveIssue("e", "g", time.Millisecond, false) },
	}
	for name, fn := range cases {
		if got := testing.AllocsPerRun(200, fn); got != 0 {
			t.Errorf("%s allocates %v per op, want 0", name, got)
		}
	}
}

// TestWindowConcurrent hammers one window from several goroutines (run
// with -race); totals must come out exact because the fake clock never
// crosses a sub-window boundary.
func TestWindowConcurrent(t *testing.T) {
	clk := &fakeClock{ns: int64(500 * time.Hour)}
	w := NewLatencyWindow(WindowConfig{now: clk.now})
	const gs, per = 8, 1000
	done := make(chan struct{})
	for g := 0; g < gs; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				w.Observe(0.002, i%2 == 0)
			}
		}()
	}
	for g := 0; g < gs; g++ {
		<-done
	}
	snap := w.Snapshot()
	if snap.Count != gs*per {
		t.Fatalf("Count = %d, want %d", snap.Count, gs*per)
	}
	if snap.Errors != gs*per/2 {
		t.Fatalf("Errors = %d, want %d", snap.Errors, gs*per/2)
	}
}

// TestQuantileEdges pins the rank definition on a tiny exact case.
func TestQuantileEdges(t *testing.T) {
	s := LatencySnapshot{
		Count:   10,
		Upper:   []float64{1, 2, 3},
		Buckets: []int64{5, 4, 1, 0},
	}
	// ceil(0.5*10)=5 → first bucket; ceil(0.51*10)=6 → second;
	// ceil(0.99*10)=10 → third.
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 1}, {0.51, 2}, {0.9, 2}, {0.91, 3}, {1.0, 3}} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}
