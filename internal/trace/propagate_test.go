package trace

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{Capacity: 8})
	ctx, root := tr.Root(context.Background(), "req")
	_, child := Start(ctx, "phase")
	cctx := context.WithValue(ctx, spanKey{}, child)

	h := http.Header{}
	Inject(cctx, h)
	v := h.Get(Header)
	if v == "" {
		t.Fatal("Inject set no traceparent")
	}
	if want := FormatTraceparent(child); v != want {
		t.Fatalf("header %q, want %q", v, want)
	}
	if len(v) != 55 {
		t.Fatalf("traceparent %q not 55 chars", v)
	}

	rp, ok := Extract(h)
	if !ok {
		t.Fatalf("Extract rejected %q", v)
	}
	if got := formatTraceID(rp.TraceID); got != root.TraceID() {
		t.Fatalf("extracted trace %s, want %s", got, root.TraceID())
	}
	if got := formatTraceID(rp.SpanID); got != formatTraceID(child.id) {
		t.Fatalf("extracted span %s, want the injecting span %s", got, formatTraceID(child.id))
	}
	child.End()
	root.End()
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-00000000000000000123456789abcdef-00000000000000ab-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header %q rejected", valid)
	}
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", valid[:54]},
		{"version 00 with trailing field", valid + "-extra"},
		{"bad dash positions", strings.ReplaceAll(valid, "-", "_")},
		{"uppercase hex", strings.ToUpper(valid)},
		{"non-hex trace id", "00-0000000000000000012345678gabcdef-00000000000000ab-01"},
		{"non-hex span id", "00-00000000000000000123456789abcdef-000000000000zzab-01"},
		{"non-hex version", "zz-00000000000000000123456789abcdef-00000000000000ab-01"},
		{"non-hex flags", "00-00000000000000000123456789abcdef-00000000000000ab-0x"},
		{"non-hex high half", "00-zzzzzzzzzzzzzzzz0123456789abcdef-00000000000000ab-01"},
		{"zero trace id", "00-00000000000000000000000000000000-00000000000000ab-01"},
		{"zero low half", "00-01234567890000000000000000000000-00000000000000ab-01"},
		{"zero span id", "00-00000000000000000123456789abcdef-0000000000000000-01"},
		{"reserved version ff", "ff-00000000000000000123456789abcdef-00000000000000ab-01"},
		{"future version bad suffix", "01-00000000000000000123456789abcdef-00000000000000ab-01x"},
	}
	for _, c := range cases {
		if rp, ok := ParseTraceparent(c.in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted as %+v", c.name, c.in, rp)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Future versions may carry extra dash-separated fields past the
	// fixed prefix; the fixed prefix still parses.
	in := "01-00000000000000000123456789abcdef-00000000000000ab-01-futurefield"
	rp, ok := ParseTraceparent(in)
	if !ok {
		t.Fatalf("future-version header %q rejected", in)
	}
	if formatTraceID(rp.TraceID) != "0123456789abcdef" || formatTraceID(rp.SpanID) != "00000000000000ab" {
		t.Fatalf("parsed %+v", rp)
	}
	// The high 64 bits are ignored but must still be hex.
	in2 := "00-deadbeefdeadbeef0123456789abcdef-00000000000000ab-01"
	if rp2, ok := ParseTraceparent(in2); !ok || rp2.TraceID != rp.TraceID {
		t.Fatalf("high-half bits changed the parse: %+v ok=%v", rp2, ok)
	}
}

func TestRootRemoteContinuesTrace(t *testing.T) {
	tr := New(Options{Capacity: 8})
	rp := RemoteParent{TraceID: 0xabc123, SpanID: 0x77}
	ctx, root := tr.RootRemote(context.Background(), "POST /v1/issue", rp)
	if root == nil {
		t.Fatal("no root span")
	}
	if got, want := root.TraceID(), formatTraceID(rp.TraceID); got != want {
		t.Fatalf("trace id %s, want upstream %s", got, want)
	}
	_, child := Start(ctx, "engine.issue")
	child.End()
	root.End()

	rec := tr.Get(formatTraceID(rp.TraceID))
	if rec == nil {
		t.Fatal("remote-rooted trace not retained")
	}
	if !rec.Remote {
		t.Fatal("record not marked remote")
	}
	if want := formatTraceID(rp.SpanID); rec.RemoteParent != want {
		t.Fatalf("remote parent %q, want %q", rec.RemoteParent, want)
	}
	var attrs map[string]string
	for _, sp := range rec.Spans {
		if sp.ID == 1 {
			attrs = map[string]string{}
			for _, a := range sp.Attrs {
				attrs[a.Key] = a.Value
			}
		}
	}
	if attrs["remote"] != "true" || attrs["remote_parent"] != formatTraceID(rp.SpanID) {
		t.Fatalf("root attrs %v missing remote/remote_parent", attrs)
	}
}

func TestRootRemoteZeroTraceIDFallsBackToLocal(t *testing.T) {
	tr := New(Options{Capacity: 8})
	_, root := tr.RootRemote(context.Background(), "req", RemoteParent{})
	if root == nil {
		t.Fatal("no root span")
	}
	root.End()
	rec := tr.Get(root.TraceID())
	if rec == nil || rec.Remote {
		t.Fatalf("zero remote parent must mint a local root, got %+v", rec)
	}
}

func TestPropagationMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	Instrument(reg)
	defer func() { M = Metrics{} }()

	tr := New(Options{Capacity: 8})
	ctx, root := tr.Root(context.Background(), "req")
	h := http.Header{}
	Inject(ctx, h)
	if _, ok := Extract(h); !ok {
		t.Fatal("round-trip extract failed")
	}
	h.Set(Header, "garbage")
	if _, ok := Extract(h); ok {
		t.Fatal("garbage extracted")
	}
	root.End()

	if got := M.RemoteInjected.Value(); got != 1 {
		t.Errorf("injected = %d, want 1", got)
	}
	if got := M.RemoteExtracted.Value(); got != 1 {
		t.Errorf("extracted = %d, want 1", got)
	}
	if got := M.RemoteMalformed.Value(); got != 1 {
		t.Errorf("malformed = %d, want 1", got)
	}
}

// TestUntracedPropagationZeroAlloc pins the invariant that untraced
// request paths pay nothing: Inject on a spanless context and Extract
// on a header without a traceparent allocate zero.
func TestUntracedPropagationZeroAlloc(t *testing.T) {
	ctx := context.Background()
	h := http.Header{"Content-Type": []string{"application/json"}}
	allocs := testing.AllocsPerRun(1000, func() {
		Inject(ctx, h)
		if _, ok := Extract(h); ok {
			t.Fatal("extracted from empty header")
		}
	})
	if allocs != 0 {
		t.Errorf("untraced Inject+Extract allocate %v per run, want 0", allocs)
	}
}

func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-00000000000000000123456789abcdef-00000000000000ab-01")
	f.Add("00-0000000000000000ffffffffffffffff-ffffffffffffffff-00")
	f.Add("01-00000000000000000123456789abcdef-00000000000000ab-01-x")
	f.Add("ff-00000000000000000123456789abcdef-00000000000000ab-01")
	f.Add("")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		rp, ok := ParseTraceparent(s)
		if !ok {
			return
		}
		if rp.TraceID == 0 || rp.SpanID == 0 {
			t.Fatalf("accepted zero ids from %q: %+v", s, rp)
		}
		// Every accepted value re-formats to a header that parses to the
		// same identity (the high half and flags are normalised away).
		canon := "00-0000000000000000" + formatTraceID(rp.TraceID) + "-" + formatTraceID(rp.SpanID) + "-01"
		rp2, ok2 := ParseTraceparent(canon)
		if !ok2 || rp2 != rp {
			t.Fatalf("canonical re-parse of %q → %q gave %+v ok=%v", s, canon, rp2, ok2)
		}
	})
}
