package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeRoundTrips(t *testing.T) {
	tr := New(Options{Capacity: 8})
	ctx, root := tr.Root(context.Background(), "http.issue")
	actx, audit := Start(ctx, "engine.audit")
	for i := 0; i < 3; i++ {
		_, sh := Start(actx, "vtree.shard")
		sh.SetInt("shard", int64(i))
		sh.End()
	}
	audit.End()
	_, wal := Start(ctx, "wal.append")
	wal.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	n, err := DecodeChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip failed: %v\n%s", err, buf.String())
	}
	if n != 6 {
		t.Fatalf("decoded %d X events, want 6", n)
	}
	out := buf.String()
	if !strings.Contains(out, "process_name") {
		t.Fatal("missing process_name metadata event")
	}
	if !strings.Contains(out, root.TraceID()) {
		t.Fatal("trace id missing from process name")
	}
}

func TestAssignLanesNesting(t *testing.T) {
	// Hand-built tree: root [0,100]; children A [10,40] and B [50,90]
	// (non-overlapping: may share a lane); B's children C [55,70] and
	// D [60,80] overlap: must get distinct lanes.
	spans := []SpanRecord{
		{ID: 3, Parent: 2, Name: "C", Start: 55, Duration: 15},
		{ID: 4, Parent: 2, Name: "D", Start: 60, Duration: 20},
		{ID: 5, Parent: 1, Name: "A", Start: 10, Duration: 30},
		{ID: 2, Parent: 1, Name: "B", Start: 50, Duration: 40},
		{ID: 1, Parent: 0, Name: "root", Start: 0, Duration: 100},
	}
	lanes := assignLanes(spans)
	lane := map[string]int{}
	for i, sp := range spans {
		lane[sp.Name] = lanes[i]
	}
	if lane["A"] != lane["B"] {
		t.Fatalf("non-overlapping siblings should share a lane: A=%d B=%d", lane["A"], lane["B"])
	}
	if lane["A"] == lane["root"] {
		t.Fatal("children must not share the root's lane")
	}
	if lane["C"] == lane["D"] {
		t.Fatal("overlapping siblings must not share a lane")
	}
	if lane["C"] == lane["B"] || lane["D"] == lane["B"] {
		t.Fatal("children must not share their parent's lane")
	}
}

func TestDecodeChromeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":            `{"traceEvents": [}`,
		"missing traceEvents": `{"events": []}`,
		"missing name":        `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"ts":1,"dur":1}]}`,
		"X missing dur":       `{"traceEvents":[{"name":"s","ph":"X","pid":0,"tid":0,"ts":1}]}`,
		"negative dur":        `{"traceEvents":[{"name":"s","ph":"X","pid":0,"tid":0,"ts":1,"dur":-5}]}`,
		"unknown phase":       `{"traceEvents":[{"name":"s","ph":"Q","pid":0}]}`,
	}
	for name, doc := range cases {
		if _, err := DecodeChrome(strings.NewReader(doc)); err == nil {
			t.Fatalf("%s: validator accepted malformed doc", name)
		}
	}
	// And a well-formed minimal doc passes.
	ok := `{"traceEvents":[{"name":"p","ph":"M","pid":0},{"name":"s","ph":"X","pid":0,"tid":0,"ts":1,"dur":2}]}`
	n, err := DecodeChrome(strings.NewReader(ok))
	if err != nil || n != 1 {
		t.Fatalf("minimal doc rejected: n=%d err=%v", n, err)
	}
}

func TestWriteChromeProcessesMergesFragments(t *testing.T) {
	// Two fragments of one distributed trace: the router's and the
	// leader's, sharing a trace ID, merged into one doc with one pid
	// lane per process.
	router := New(Options{Capacity: 4})
	_, rroot := router.Root(context.Background(), "POST /v1/issue")
	rroot.End()
	id := rroot.TraceID()

	leader := New(Options{Capacity: 4})
	rp, ok := ParseTraceparent("00-0000000000000000" + id + "-0000000000000001-01")
	if !ok {
		t.Fatal("test traceparent invalid")
	}
	lctx, lroot := leader.RootRemote(context.Background(), "POST /v1/issue", rp)
	_, child := Start(lctx, "engine.issue")
	child.End()
	lroot.End()

	var buf bytes.Buffer
	err := WriteChromeProcesses(&buf, []ProcessTrace{
		{Process: "router", Trace: router.Get(id)},
		{Process: "leader", Trace: leader.Get(id)},
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := DecodeChromeStats(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("merged doc invalid: %v\n%s", err, buf.String())
	}
	if stats.Processes != 2 {
		t.Fatalf("merged doc has %d process lanes, want 2", stats.Processes)
	}
	if stats.DurationEvents != 3 {
		t.Fatalf("merged doc has %d X events, want 3", stats.DurationEvents)
	}
	out := buf.String()
	for _, want := range []string{"router", "leader", id} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged doc missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeProcessesSkipsNilFragments(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeProcesses(&buf, []ProcessTrace{{Process: "ghost"}}); err != nil {
		t.Fatal(err)
	}
	stats, err := DecodeChromeStats(bytes.NewReader(buf.Bytes()))
	if err != nil || stats.DurationEvents != 0 || stats.Processes != 0 {
		t.Fatalf("nil fragment leaked events: %+v err=%v", stats, err)
	}
}

func TestChromeEventArgsCarryAttrsAndError(t *testing.T) {
	rec := &TraceRecord{
		ID: "00000000000000aa", Name: "r", Spans: []SpanRecord{
			{ID: 1, Name: "r", Start: 0, Duration: 10,
				Attrs: []Attr{{Key: "group", Value: "3"}}, Error: "boom"},
		},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, []*TraceRecord{rec}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string            `json:"ph"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			found = true
			if ev.Args["group"] != "3" || ev.Args["error"] != "boom" {
				t.Fatalf("args = %+v", ev.Args)
			}
		}
	}
	if !found {
		t.Fatal("no X event emitted")
	}
}
