package trace

import (
	"context"
	"log/slog"
)

// logHandler decorates a slog.Handler so every record logged with a
// span-carrying context gains a trace_id attribute. It lives here (not
// in internal/obs) because obs must not import trace: trace→obs is the
// package-dependency direction this repo allows, and log correlation
// needs IDFromContext.
type logHandler struct {
	inner slog.Handler
}

// LogHandler wraps h so records logged via context.Context carrying an
// active span are annotated with trace_id=<hex>. Records logged with an
// untraced context pass through untouched.
func LogHandler(h slog.Handler) slog.Handler {
	return &logHandler{inner: h}
}

func (h *logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := IDFromContext(ctx); id != "" {
		rec = rec.Clone()
		rec.AddAttrs(slog.String("trace_id", id))
	}
	return h.inner.Handle(ctx, rec)
}

func (h *logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *logHandler) WithGroup(name string) slog.Handler {
	return &logHandler{inner: h.inner.WithGroup(name)}
}
