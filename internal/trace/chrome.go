package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file maps retained traces onto the Chrome Trace Event Format
// (the JSON Perfetto and chrome://tracing load natively):
//
//   - each trace becomes one "process" (pid = its index), named by an
//     "M"/process_name metadata event carrying the trace ID and root name;
//   - each span becomes an "X" (complete) event with ts/dur in
//     microseconds on the absolute Unix timeline;
//   - the "thread" (tid) is a synthetic lane assignment: Chrome nests
//     same-tid events purely by time containment, so siblings may share
//     a lane only when they do not overlap — concurrent siblings (shard
//     fan-out) get fresh lanes so none is swallowed by another.

// chromeEvent is one Trace Event Format entry.
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"`
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChrome writes the traces as a Chrome Trace Event Format JSON
// document, one process lane per trace.
func WriteChrome(w io.Writer, traces []*TraceRecord) error {
	pts := make([]ProcessTrace, len(traces))
	for i, tr := range traces {
		pts[i] = ProcessTrace{Trace: tr}
	}
	return WriteChromeProcesses(w, pts)
}

// ProcessTrace is one fragment of a (possibly distributed) trace: the
// span tree one process retained, tagged with that process's name so the
// merged document shows which node each lane belongs to.
type ProcessTrace struct {
	// Process names the node the fragment came from ("router",
	// "leader:9090", ...). Empty means unlabelled — the lane is named by
	// the fragment's root span alone, preserving WriteChrome's output.
	Process string
	Trace   *TraceRecord
}

// WriteChromeProcesses writes trace fragments as one Chrome Trace Event
// Format document with one process lane (pid) per fragment. For a
// distributed trace the fragments share a trace ID but come from
// different processes; Perfetto then renders router/leader/follower as
// separate named lanes on a single timeline.
func WriteChromeProcesses(w io.Writer, fragments []ProcessTrace) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}}
	for pid, pt := range fragments {
		tr := pt.Trace
		if tr == nil {
			continue
		}
		name := fmt.Sprintf("%s trace=%s", tr.Name, tr.ID)
		if pt.Process != "" {
			name = fmt.Sprintf("%s %s trace=%s", pt.Process, tr.Name, tr.ID)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pid,
			Args:  map[string]string{"name": name},
		})
		lanes := assignLanes(tr.Spans)
		for i, sp := range tr.Spans {
			ev := chromeEvent{
				Name:  sp.Name,
				Phase: "X",
				TS:    float64(sp.Start) / 1e3,
				Dur:   float64(sp.Duration) / 1e3,
				PID:   pid,
				TID:   lanes[i],
			}
			if len(sp.Attrs) > 0 || sp.Error != "" {
				ev.Args = make(map[string]string, len(sp.Attrs)+1)
				for _, a := range sp.Attrs {
					ev.Args[a.Key] = a.Value
				}
				if sp.Error != "" {
					ev.Args["error"] = sp.Error
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	return json.NewEncoder(w).Encode(doc)
}

// assignLanes maps each span (by index into spans) to a tid lane such
// that Chrome's containment-based nesting reconstructs the real parent
// links. Children of one parent are laid out start-ordered: each child
// shares the previous sibling's lane if it starts at/after that sibling
// ends, otherwise it opens a fresh lane. Children never share the
// parent's own lane (the parent's X event already fills it).
func assignLanes(spans []SpanRecord) []int {
	lanes := make([]int, len(spans))
	idxByID := make(map[uint64]int, len(spans))
	for i, sp := range spans {
		idxByID[sp.ID] = i
	}
	children := make(map[uint64][]int, len(spans))
	var roots []int
	for i, sp := range spans {
		if _, ok := idxByID[sp.Parent]; sp.Parent != 0 && ok {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	nextLane := 0

	var placeChildren func(parentIdx int)
	placeChildren = func(parentIdx int) {
		kids := children[spans[parentIdx].ID]
		sort.Slice(kids, func(a, b int) bool { return spans[kids[a]].Start < spans[kids[b]].Start })
		childLane := -1
		var childEnd int64
		for _, k := range kids {
			if childLane < 0 || spans[k].Start < childEnd {
				childLane = nextLane
				nextLane++
			}
			lanes[k] = childLane
			childEnd = spans[k].Start + spans[k].Duration
			placeChildren(k)
		}
	}

	sort.Slice(roots, func(a, b int) bool { return spans[roots[a]].Start < spans[roots[b]].Start })
	for _, r := range roots {
		lanes[r] = nextLane
		nextLane++
		placeChildren(r)
	}
	return lanes
}

// ChromeStats summarises a validated Chrome Trace Event document.
type ChromeStats struct {
	// DurationEvents is the number of "X" (complete) events.
	DurationEvents int
	// Processes is the number of distinct pid lanes — for a merged
	// distributed trace, the number of contributing processes.
	Processes int
}

// DecodeChrome validates that r contains a parseable Chrome Trace Event
// Format document and returns the number of duration ("X") events. It is
// the CI validator for -trace output files: zero third-party tools, just
// shape checks — an object with a traceEvents array whose entries carry
// name/ph/pid, with ts/dur/tid present on every X event.
func DecodeChrome(r io.Reader) (int, error) {
	stats, err := DecodeChromeStats(r)
	return stats.DurationEvents, err
}

// DecodeChromeStats is DecodeChrome plus lane accounting: it also counts
// the distinct pid values so callers can assert a merged document really
// carries fragments from multiple processes.
func DecodeChromeStats(r io.Reader) (ChromeStats, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return ChromeStats{}, fmt.Errorf("trace: read chrome file: %w", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  *string  `json:"name"`
			Phase *string  `json:"ph"`
			TS    *float64 `json:"ts"`
			Dur   *float64 `json:"dur"`
			PID   *int     `json:"pid"`
			TID   *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return ChromeStats{}, fmt.Errorf("trace: not a chrome trace document: %w", err)
	}
	if doc.TraceEvents == nil {
		return ChromeStats{}, fmt.Errorf("trace: chrome document missing traceEvents array")
	}
	var stats ChromeStats
	pids := make(map[int]struct{})
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || ev.Phase == nil || ev.PID == nil {
			return ChromeStats{}, fmt.Errorf("trace: event %d missing name/ph/pid", i)
		}
		pids[*ev.PID] = struct{}{}
		switch *ev.Phase {
		case "X":
			if ev.TS == nil || ev.Dur == nil || ev.TID == nil {
				return ChromeStats{}, fmt.Errorf("trace: X event %d (%s) missing ts/dur/tid", i, *ev.Name)
			}
			if *ev.Dur < 0 {
				return ChromeStats{}, fmt.Errorf("trace: X event %d (%s) has negative dur", i, *ev.Name)
			}
			stats.DurationEvents++
		case "M":
			// metadata: name/ph/pid suffice
		default:
			return ChromeStats{}, fmt.Errorf("trace: event %d has unsupported phase %q", i, *ev.Phase)
		}
	}
	stats.Processes = len(pids)
	return stats, nil
}
