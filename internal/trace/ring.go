package trace

import (
	"sort"
	"sync"
)

// ringShards is the number of independently locked ring segments the
// retained-trace buffer is split into. Retention is off the request's
// critical path (it happens once per sampled trace, at root End), so the
// sharding exists to keep concurrent root-span completions from
// contending on one mutex, not to make the hot path lock-free.
const ringShards = 8

// ringShard is one fixed-capacity overwrite ring of retained traces.
type ringShard struct {
	mu        sync.Mutex
	buf       []*TraceRecord
	next      int // next write position
	evictions int64
}

// retain stores a finalised trace, evicting the oldest entry in its
// shard when full. The shard is chosen by trace-ID hash so retention
// load spreads evenly.
func (t *Tracer) retain(rec *TraceRecord) {
	// The trace ID is already splitmix64-mixed; its low bits are fine
	// shard selectors. Parse the tail hex digit instead of re-hashing.
	sh := &t.shards[hashID(rec.ID)%ringShards]
	sh.mu.Lock()
	if sh.buf[sh.next] != nil {
		sh.evictions++
		M.RingEvictions.Inc()
	}
	sh.buf[sh.next] = rec
	sh.next = (sh.next + 1) % len(sh.buf)
	sh.mu.Unlock()
}

// hashID folds the hex trace ID into a shard selector (FNV-1a).
func hashID(id string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

// TraceSummary is one index entry for the /debug/traces listing.
type TraceSummary struct {
	ID       string `json:"trace_id"`
	Name     string `json:"name"`
	Start    int64  `json:"start_unix_ns"`
	Duration int64  `json:"duration_ns"`
	Error    bool   `json:"error"`
	Spans    int    `json:"spans"`
}

// Traces returns summaries of every retained trace, newest first. Nil
// tracers return nil.
func (t *Tracer) Traces() []TraceSummary {
	if t == nil {
		return nil
	}
	var out []TraceSummary
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.buf {
			if rec == nil {
				continue
			}
			out = append(out, TraceSummary{
				ID:       rec.ID,
				Name:     rec.Name,
				Start:    rec.Start,
				Duration: rec.Duration,
				Error:    rec.Error,
				Spans:    len(rec.Spans),
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	return out
}

// Get returns the retained trace with the given hex ID, or nil.
func (t *Tracer) Get(id string) *TraceRecord {
	if t == nil {
		return nil
	}
	sh := &t.shards[hashID(id)%ringShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, rec := range sh.buf {
		if rec != nil && rec.ID == id {
			return rec
		}
	}
	return nil
}

// Snapshot returns every retained trace, newest first — the input for
// Chrome export from the CLIs.
func (t *Tracer) Snapshot() []*TraceRecord {
	if t == nil {
		return nil
	}
	var out []*TraceRecord
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.buf {
			if rec != nil {
				out = append(out, rec)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	return out
}

// Evictions reports how many retained traces were overwritten by newer
// ones (0 on nil).
func (t *Tracer) Evictions() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += sh.evictions
		sh.mu.Unlock()
	}
	return n
}
