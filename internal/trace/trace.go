// Package trace is a zero-dependency, context-propagated span tracer for
// the validation pipeline — the per-request causality layer the aggregate
// metrics of internal/obs cannot provide. Metrics say an audit was slow;
// a trace says WHICH group, shard, or WAL fsync made one specific request
// slow.
//
// The design follows internal/obs: no third-party imports, nil-safe
// everywhere, and zero allocations on the uninstrumented path. A request
// is traced only when a root span was started for it (Tracer.Root); every
// layer below calls Start(ctx, name), which is a single context lookup
// returning a nil span when the request is untraced — all Span methods
// are no-ops on nil, so untraced requests pay one pointer compare per
// instrumentation site and allocate nothing.
//
// Completed traces are tail-sampled: the decision to keep a trace is made
// when its root span ends, with the whole span tree in hand. Every error
// trace, plus any trace whose root latency meets the policy's slow
// threshold, is retained in full in a bounded lock-sharded ring buffer;
// the rest are counted and dropped. Retained traces are served by the
// /debug/traces handlers (http.go) and export to Chrome Trace Event JSON
// (chrome.go) that loads directly in Perfetto or chrome://tracing.
package trace

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's memory: spans started beyond the
// cap are counted in TraceRecord.Truncated and not recorded. 4096 covers
// a full audit fan-out (groups × shards) with room to spare.
const maxSpansPerTrace = 4096

// Attr is one key-value span annotation. Values are strings; SetInt
// formats integers at record time (only on traced requests).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is one finished span as stored in a retained trace. IDs are
// trace-local (the root span is always ID 1, parent 0).
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Start is wall-clock nanoseconds since the Unix epoch; Duration is
	// the span's length in nanoseconds.
	Start    int64  `json:"start_unix_ns"`
	Duration int64  `json:"duration_ns"`
	Attrs    []Attr `json:"attrs,omitempty"`
	Error    string `json:"error,omitempty"`
}

// TraceRecord is one completed, retained trace: the root's identity plus
// every recorded span in end order (the root is always last).
type TraceRecord struct {
	ID       string `json:"trace_id"`
	Name     string `json:"name"`
	Start    int64  `json:"start_unix_ns"`
	Duration int64  `json:"duration_ns"`
	Error    bool   `json:"error"`
	// Remote marks a trace whose ID was extracted from an upstream
	// traceparent header rather than minted here: this record is one
	// process's fragment of a distributed trace, and RemoteParent is the
	// upstream span (hex) the local root logically hangs under.
	Remote       bool         `json:"remote,omitempty"`
	RemoteParent string       `json:"remote_parent,omitempty"`
	Spans        []SpanRecord `json:"spans"`
	// Truncated counts spans dropped by the per-trace cap (0 normally).
	Truncated int `json:"truncated_spans,omitempty"`
}

// Policy is the tail-sampling rule applied when a root span ends.
type Policy struct {
	// ErrorsOnly retains only traces whose span tree recorded an error.
	ErrorsOnly bool
	// Slow retains any trace whose root duration is >= Slow (0 retains
	// everything). Ignored when ErrorsOnly is set; error traces are
	// always retained.
	Slow time.Duration
}

// ParsePolicy parses a -trace-sample flag value:
//
//	off          tracing disabled (callers should not construct a Tracer)
//	all          retain every trace (equivalent to slow=0)
//	error        retain only error traces
//	slow=<dur>   retain error traces plus traces at least <dur> long
//
// The boolean reports whether tracing is enabled at all.
func ParsePolicy(s string) (Policy, bool, error) {
	switch {
	case s == "off":
		return Policy{}, false, nil
	case s == "all":
		return Policy{}, true, nil
	case s == "error":
		return Policy{ErrorsOnly: true}, true, nil
	case strings.HasPrefix(s, "slow="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "slow="))
		if err != nil || d < 0 {
			// "slow=0" must parse: ParseDuration accepts a bare "0".
			return Policy{}, false, fmt.Errorf("trace: bad sample policy %q (want slow=<duration>)", s)
		}
		return Policy{Slow: d}, true, nil
	default:
		return Policy{}, false, fmt.Errorf("trace: unknown sample policy %q (want off, all, error, or slow=<duration>)", s)
	}
}

// Options configure a Tracer. The zero value retains every trace in a
// 256-trace ring.
type Options struct {
	// Capacity is the total number of retained traces the ring holds
	// before evicting the oldest. Default 256.
	Capacity int
	// Policy is the tail-sampling rule.
	Policy Policy
}

// Tracer mints trace and span IDs, owns the retained-trace ring, and
// applies the tail-sampling policy. All methods are safe for concurrent
// use and nil-safe: a nil *Tracer starts no spans, so instrumented code
// runs uninstrumented without branches beyond a nil check.
type Tracer struct {
	policy Policy
	seed   uint64
	ctr    atomic.Uint64

	shards [ringShards]ringShard

	sampled atomic.Int64
	dropped atomic.Int64
}

// New builds a Tracer with the given options.
func New(o Options) *Tracer {
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	per := (o.Capacity + ringShards - 1) / ringShards
	t := &Tracer{policy: o.Policy, seed: uint64(time.Now().UnixNano()) | 1}
	for i := range t.shards {
		t.shards[i].buf = make([]*TraceRecord, per)
	}
	return t
}

// mintTraceID derives a well-mixed 64-bit trace ID from the creation-time
// seed and an atomic counter (splitmix64), so IDs are unique within a
// process and do not collide trivially across restarts.
func (t *Tracer) mintTraceID() uint64 {
	z := t.seed + t.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Root starts a new trace with a root span. On a nil Tracer it returns
// ctx unchanged and a nil span. The returned context carries the span;
// layers below pick it up with Start.
func (t *Tracer) Root(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	b := &builder{t: t, id: t.mintTraceID(), start: time.Now()}
	b.nextSpan = 1
	s := &Span{b: b, id: 1, name: name, start: b.start}
	M.SpansStarted.Inc()
	return context.WithValue(ctx, spanKey{}, s), s
}

// RootRemote starts a root span that continues an upstream trace: the
// trace ID comes from the extracted traceparent instead of being minted
// locally, so the fragments retained on both sides of the wire share
// one ID and can be merged into a single cross-process document. The
// root records remote=true and the upstream span ID (the parent link
// lives in another process's ring, so it is an attribute, not a Parent
// field — every span's Parent still resolves locally). A zero remote
// trace ID falls back to a locally minted root.
func (t *Tracer) RootRemote(ctx context.Context, name string, rp RemoteParent) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if rp.TraceID == 0 {
		return t.Root(ctx, name)
	}
	b := &builder{t: t, id: rp.TraceID, start: time.Now(), remote: true, remoteParent: rp.SpanID}
	b.nextSpan = 1
	s := &Span{b: b, id: 1, name: name, start: b.start}
	s.attrs = append(s.attrs,
		Attr{Key: "remote", Value: "true"},
		Attr{Key: "remote_parent", Value: formatTraceID(rp.SpanID)})
	M.SpansStarted.Inc()
	return context.WithValue(ctx, spanKey{}, s), s
}

// spanKey is the context key the active span travels under.
type spanKey struct{}

// SpanFromContext returns the active span, or nil when the request is
// untraced. The lookup allocates nothing.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// IDFromContext returns the active trace's hex ID, or "" when untraced —
// the value handlers put in error bodies and log lines.
func IDFromContext(ctx context.Context) string {
	if s := SpanFromContext(ctx); s != nil {
		return s.TraceID()
	}
	return ""
}

// Start begins a child span of the active span in ctx and returns a
// context carrying it. When ctx carries no span (the request is untraced,
// or tracing is off), it returns ctx unchanged and a nil span — the
// zero-allocation path every instrumentation site takes by default.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.b.startSpan(parent.id, name)
	if s == nil {
		return ctx, nil // per-trace span cap reached
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Span is one live span. It is owned by the goroutine that started it:
// SetAttr/SetInt/Fail/End must not be called concurrently on the same
// span (start one span per goroutine instead — the fan-out layers do).
// All methods are no-ops on a nil receiver.
type Span struct {
	b      *builder
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	errMsg string
	ended  bool
}

// TraceID returns the hex trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return formatTraceID(s.b.id)
}

func formatTraceID(id uint64) string {
	var buf [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

// SetAttr annotates the span with a key-value pair. Callers paying a
// non-trivial cost to build the value should guard with `if sp != nil`
// so untraced requests skip the construction entirely.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(v, 10)})
}

// Retain forces the tail sampler to keep this span's trace regardless
// of policy — the hook the SLO layer uses so latency observations that
// crossed the SLO threshold always have a resolvable trace behind their
// exemplars, even under an errors-only sampling policy.
func (s *Span) Retain() {
	if s == nil {
		return
	}
	s.b.mu.Lock()
	s.b.keep = true
	s.b.mu.Unlock()
}

// Fail marks the span (and therefore the whole trace) as an error; error
// traces are always retained by the sampler. A nil err is ignored.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
	s.b.markErr()
}

// End finishes the span, recording it into its trace. Ending the root
// span finalises the trace: the tail-sampling decision runs and, when
// retained, the trace enters the ring. End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.b.record(s, time.Since(s.start))
}

// builder accumulates one trace's finished spans. Spans of a trace may
// end on different goroutines (shard fan-out), so recording takes the
// builder lock; span structs themselves stay single-owner.
type builder struct {
	t     *Tracer
	id    uint64
	start time.Time

	// remote / remoteParent carry the RootRemote provenance into the
	// finalised TraceRecord; set once at construction, never mutated.
	remote       bool
	remoteParent uint64

	mu        sync.Mutex
	nextSpan  uint64
	spans     []SpanRecord
	truncated int
	err       bool
	keep      bool
	done      bool
}

// startSpan mints a child span, or nil when the per-trace cap is hit or
// the trace already finalised (a straggler after the root ended).
func (b *builder) startSpan(parent uint64, name string) *Span {
	b.mu.Lock()
	if b.done || b.nextSpan >= maxSpansPerTrace {
		if !b.done {
			b.truncated++
		}
		b.mu.Unlock()
		return nil
	}
	b.nextSpan++
	id := b.nextSpan
	b.mu.Unlock()
	M.SpansStarted.Inc()
	return &Span{b: b, id: id, parent: parent, name: name, start: time.Now()}
}

func (b *builder) markErr() {
	b.mu.Lock()
	b.err = true
	b.mu.Unlock()
}

// record appends a finished span; the root span (ID 1) finalises the
// trace and hands it to the sampler.
func (b *builder) record(s *Span, d time.Duration) {
	b.mu.Lock()
	if b.done {
		b.mu.Unlock()
		return
	}
	rec := SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start.UnixNano(),
		Duration: d.Nanoseconds(),
		Attrs:    s.attrs,
		Error:    s.errMsg,
	}
	b.spans = append(b.spans, rec)
	if s.id != 1 {
		b.mu.Unlock()
		return
	}
	b.done = true
	isErr := b.err || s.errMsg != ""
	forced := b.keep
	spans := b.spans
	truncated := b.truncated
	b.mu.Unlock()

	t := b.t
	keep := isErr || forced // Retain overrides any policy
	if !t.policy.ErrorsOnly && d >= t.policy.Slow {
		keep = true
	}
	if !keep {
		t.dropped.Add(1)
		M.TracesDropped.Inc()
		return
	}
	t.sampled.Add(1)
	M.TracesSampled.Inc()
	trec := &TraceRecord{
		ID:        formatTraceID(b.id),
		Name:      s.name,
		Start:     b.start.UnixNano(),
		Duration:  d.Nanoseconds(),
		Error:     isErr,
		Remote:    b.remote,
		Spans:     spans,
		Truncated: truncated,
	}
	if b.remote {
		trec.RemoteParent = formatTraceID(b.remoteParent)
	}
	t.retain(trec)
}

// Sampled returns the number of traces retained so far (0 on nil).
func (t *Tracer) Sampled() int64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Dropped returns the number of completed traces the sampler discarded
// (0 on nil).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
