// Cross-process context propagation: the W3C Trace Context traceparent
// header carries one trace's identity over HTTP, so a request routed
// through the cluster (router → leader, follower → leader) produces one
// span tree per process that all share a single trace ID instead of a
// disconnected tree per hop.
//
// The wire format is the W3C one —
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// — with this package's 64-bit trace IDs occupying the low half of the
// 128-bit field (the high half is zero on inject and ignored on
// extract). Parsing is strict: wrong length, non-lowercase-hex fields,
// a zero trace or span ID, or the reserved version ff are all rejected
// and counted in drm_trace_remote_malformed_total.
//
// Like everything in this package, propagation is nil-safe and free on
// the untraced path: Inject on a context without a span and Extract on
// a request without the header are single map lookups that allocate
// nothing.
package trace

import (
	"context"
	"net/http"
)

// Header is the propagation header name as sent on the wire.
const Header = "traceparent"

// canonicalHeader is the net/http canonical form — incoming request
// headers are stored under it, so direct map access skips the
// CanonicalMIMEHeaderKey allocation Get would pay for a lowercase name.
const canonicalHeader = "Traceparent"

// RemoteParent is the identity extracted from an upstream traceparent:
// the trace to continue and the span the local root hangs under
// (logically — the link is recorded as the root's remote_parent
// attribute, since the upstream span lives in another process's ring).
type RemoteParent struct {
	TraceID uint64
	SpanID  uint64
}

// FormatTraceparent renders the span's identity as a traceparent value
// ("" on nil — untraced requests propagate nothing).
func FormatTraceparent(s *Span) string {
	if s == nil {
		return ""
	}
	return "00-0000000000000000" + formatTraceID(s.b.id) + "-" + formatTraceID(s.id) + "-01"
}

// Inject stamps the active span's traceparent onto h (a request or
// response header). Untraced contexts inject nothing and allocate
// nothing.
func Inject(ctx context.Context, h http.Header) {
	s := SpanFromContext(ctx)
	if s == nil {
		return
	}
	h.Set(canonicalHeader, FormatTraceparent(s))
	M.RemoteInjected.Inc()
}

// Extract reads and validates the traceparent header from h. A missing
// header reports false without counting anything (the common untraced
// case, allocation-free); a present-but-malformed one counts in
// drm_trace_remote_malformed_total and also reports false, so a bad
// upstream degrades to a locally rooted trace instead of an error.
func Extract(h http.Header) (RemoteParent, bool) {
	vals := h[canonicalHeader]
	if len(vals) == 0 {
		return RemoteParent{}, false
	}
	rp, ok := ParseTraceparent(vals[0])
	if !ok {
		M.RemoteMalformed.Inc()
		return RemoteParent{}, false
	}
	M.RemoteExtracted.Inc()
	return rp, true
}

// ParseTraceparent validates s against the W3C grammar and returns the
// embedded identity. Beyond the spec it requires the low 64 bits of the
// trace ID to be non-zero — that half is this package's whole trace
// identity, and an all-zero ID would alias every untraced request.
func ParseTraceparent(s string) (RemoteParent, bool) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-xxxxxxxxxxxxxxxx-xx
	// 0  3                                36               53
	const fixedLen = 55
	if len(s) < fixedLen {
		return RemoteParent{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return RemoteParent{}, false
	}
	version, ok := parseHex(s[0:2])
	if !ok || version == 0xff {
		return RemoteParent{}, false
	}
	switch {
	case version == 0 && len(s) != fixedLen:
		// Version 00 has no trailing fields.
		return RemoteParent{}, false
	case version != 0 && len(s) > fixedLen && s[fixedLen] != '-':
		// Future versions may append "-<extra>"; anything else is junk.
		return RemoteParent{}, false
	}
	if _, ok := parseHex(s[3:19]); !ok { // high 64 bits: validated, ignored
		return RemoteParent{}, false
	}
	traceID, ok := parseHex(s[19:35])
	if !ok || traceID == 0 {
		return RemoteParent{}, false
	}
	spanID, ok := parseHex(s[36:52])
	if !ok || spanID == 0 {
		return RemoteParent{}, false
	}
	if _, ok := parseHex(s[53:55]); !ok { // flags: validated, ignored
		return RemoteParent{}, false
	}
	return RemoteParent{TraceID: traceID, SpanID: spanID}, true
}

// parseHex decodes up to 16 lowercase hex digits without allocating.
// Uppercase is rejected: the W3C grammar is lowercase-only.
func parseHex(s string) (uint64, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}
