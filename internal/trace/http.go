package trace

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves the retained-trace ring over HTTP:
//
//	GET /debug/traces            index of retained traces (newest first)
//	GET /debug/traces/{id}       full span tree of one trace as JSON
//	GET /debug/traces/{id}?format=chrome
//	                             same trace as Chrome Trace Event JSON
//	GET /debug/traces?format=chrome
//	                             every retained trace in one Chrome doc
//
// Mount it at "/debug/traces" and "/debug/traces/" on a mux. A nil
// Tracer yields 404s for everything, so the handler can be mounted
// unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/debug/traces")
		rest = strings.Trim(rest, "/")
		switch {
		case rest == "" && r.URL.Query().Get("format") == "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="traces.json"`)
			_ = WriteChrome(w, t.Snapshot())
		case rest == "":
			w.Header().Set("Content-Type", "application/json")
			idx := struct {
				Sampled   int64          `json:"traces_sampled_total"`
				Dropped   int64          `json:"traces_dropped_total"`
				Evictions int64          `json:"ring_evictions_total"`
				Traces    []TraceSummary `json:"traces"`
			}{t.Sampled(), t.Dropped(), t.Evictions(), t.Traces()}
			if idx.Traces == nil {
				idx.Traces = []TraceSummary{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(idx)
		default:
			rec := t.Get(rest)
			if rec == nil {
				http.Error(w, "trace not found (evicted or never sampled)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if r.URL.Query().Get("format") == "chrome" {
				_ = WriteChrome(w, []*TraceRecord{rec})
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rec)
		}
	})
}
