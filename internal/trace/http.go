package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/drmerr"
)

// httpError is the standard typed error body every endpoint in this
// repo returns: {error, kind, trace_id}. The trace handler adds ring
// accounting to 404s so a caller can tell an evicted trace from one
// that was never sampled.
type httpError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
	// TraceID is empty here: debug-plane requests are not themselves
	// traced, and the looked-up ID already appears in Error.
	TraceID string `json:"trace_id,omitempty"`
	// Evicted/Sampled snapshot the ring counters on a 404. If
	// Evicted is 0 the ID was never sampled; otherwise it may have
	// been sampled and then overwritten by newer traces.
	Evicted *int64 `json:"ring_evictions_total,omitempty"`
	Sampled *int64 `json:"traces_sampled_total,omitempty"`
}

func writeHTTPError(w http.ResponseWriter, status int, body httpError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// Handler serves the retained-trace ring over HTTP:
//
//	GET /debug/traces            index of retained traces (newest first)
//	GET /debug/traces/{id}       full span tree of one trace as JSON
//	GET /debug/traces/{id}?format=chrome
//	                             same trace as Chrome Trace Event JSON
//	GET /debug/traces?format=chrome
//	                             every retained trace in one Chrome doc
//
// Mount it at "/debug/traces" and "/debug/traces/" on a mux. A nil
// Tracer yields 404s for everything, so the handler can be mounted
// unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			writeHTTPError(w, http.StatusNotFound, httpError{
				Error: "tracing disabled",
				Kind:  drmerr.KindNotFound.String(),
			})
			return
		}
		if r.Method != http.MethodGet {
			writeHTTPError(w, http.StatusMethodNotAllowed, httpError{
				Error: "method not allowed",
			})
			return
		}
		rest := strings.TrimPrefix(r.URL.Path, "/debug/traces")
		rest = strings.Trim(rest, "/")
		switch {
		case rest == "" && r.URL.Query().Get("format") == "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="traces.json"`)
			_ = WriteChrome(w, t.Snapshot())
		case rest == "":
			w.Header().Set("Content-Type", "application/json")
			idx := struct {
				Sampled   int64          `json:"traces_sampled_total"`
				Dropped   int64          `json:"traces_dropped_total"`
				Evictions int64          `json:"ring_evictions_total"`
				Traces    []TraceSummary `json:"traces"`
			}{t.Sampled(), t.Dropped(), t.Evictions(), t.Traces()}
			if idx.Traces == nil {
				idx.Traces = []TraceSummary{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(idx)
		default:
			rec := t.Get(rest)
			if rec == nil {
				evicted, sampled := t.Evictions(), t.Sampled()
				reason := "never sampled"
				if evicted > 0 {
					reason = "evicted or never sampled"
				}
				writeHTTPError(w, http.StatusNotFound, httpError{
					Error:   fmt.Sprintf("trace %s not retained (%s)", rest, reason),
					Kind:    drmerr.KindNotFound.String(),
					Evicted: &evicted,
					Sampled: &sampled,
				})
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if r.URL.Query().Get("format") == "chrome" {
				_ = WriteChrome(w, []*TraceRecord{rec})
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rec)
		}
	})
}
