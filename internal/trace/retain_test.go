package trace

import (
	"context"
	"testing"
	"time"
)

// TestRetainOverridesPolicy pins the force-retention contract the SLO
// exemplar layer relies on: a fast, error-free trace that the sampling
// policy would drop is kept once any of its spans calls Retain.
func TestRetainOverridesPolicy(t *testing.T) {
	tr := New(Options{Capacity: 8, Policy: Policy{ErrorsOnly: true}})

	// Control: without Retain, the clean fast trace is dropped.
	_, sp := tr.Root(context.Background(), "dropped")
	sp.End()
	if got := len(tr.Traces()); got != 0 {
		t.Fatalf("policy-dropped trace retained: %d traces", got)
	}

	_, sp = tr.Root(context.Background(), "kept")
	sp.Retain()
	sp.End()
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("retained traces = %d, want 1", len(traces))
	}
	if traces[0].Name != "kept" {
		t.Errorf("retained trace root = %q", traces[0].Name)
	}
}

// TestRetainFromChildSpan: retention set on a child marks the whole
// trace (the builder is shared), matching how the HTTP middleware
// retains via whichever span the context carries.
func TestRetainFromChildSpan(t *testing.T) {
	tr := New(Options{Capacity: 8, Policy: Policy{Slow: time.Hour}})
	ctx, root := tr.Root(context.Background(), "root")
	_, child := Start(ctx, "child")
	child.Retain()
	child.End()
	root.End()
	if got := len(tr.Traces()); got != 1 {
		t.Fatalf("retained traces = %d, want 1", got)
	}
}

// TestRetainNilSafe: Retain on a nil span (untraced request) is a no-op.
func TestRetainNilSafe(t *testing.T) {
	var sp *Span
	sp.Retain()
	sp = SpanFromContext(context.Background())
	sp.Retain()
}
