package trace

import "repro/internal/obs"

// Metrics holds the package's nil-safe instrumentation hooks, following
// the internal/obs convention: every field is nil until Instrument is
// called, and all hook methods no-op on nil, so uninstrumented binaries
// pay nothing.
type Metrics struct {
	// SpansStarted counts spans started across all traces (sampled or
	// not): drm_trace_spans_started_total.
	SpansStarted *obs.Counter
	// TracesSampled counts completed traces retained by tail-sampling:
	// drm_trace_traces_sampled_total.
	TracesSampled *obs.Counter
	// TracesDropped counts completed traces discarded by the policy:
	// drm_trace_traces_dropped_total.
	TracesDropped *obs.Counter
	// RingEvictions counts retained traces overwritten by newer ones:
	// drm_trace_ring_evictions_total.
	RingEvictions *obs.Counter
	// RemoteExtracted counts requests whose traceparent header parsed
	// and seeded a remote-parent root: drm_trace_remote_extracted_total.
	RemoteExtracted *obs.Counter
	// RemoteInjected counts traceparent headers stamped onto outgoing
	// requests/responses: drm_trace_remote_injected_total.
	RemoteInjected *obs.Counter
	// RemoteMalformed counts traceparent headers that were present but
	// failed validation: drm_trace_remote_malformed_total.
	RemoteMalformed *obs.Counter
}

// M is the package-level hook set, zero-valued (all nil) by default.
var M Metrics

// Instrument registers the package's metrics on reg and activates the
// hooks. Call once at startup (engine.InstrumentAll does).
func Instrument(reg *obs.Registry) {
	M = Metrics{
		SpansStarted:    reg.Counter("drm_trace_spans_started_total", "Spans started across all traces."),
		TracesSampled:   reg.Counter("drm_trace_traces_sampled_total", "Completed traces retained by tail-sampling."),
		TracesDropped:   reg.Counter("drm_trace_traces_dropped_total", "Completed traces discarded by the sampling policy."),
		RingEvictions:   reg.Counter("drm_trace_ring_evictions_total", "Retained traces overwritten by newer ones."),
		RemoteExtracted: reg.Counter("drm_trace_remote_extracted_total", "Incoming traceparent headers parsed into remote-parent roots."),
		RemoteInjected:  reg.Counter("drm_trace_remote_injected_total", "Traceparent headers stamped onto outgoing requests."),
		RemoteMalformed: reg.Counter("drm_trace_remote_malformed_total", "Traceparent headers present but rejected by validation."),
	}
}
