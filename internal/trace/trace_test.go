package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		enabled bool
		wantErr bool
		policy  Policy
	}{
		{"off", false, false, Policy{}},
		{"all", true, false, Policy{}},
		{"error", true, false, Policy{ErrorsOnly: true}},
		{"slow=0", true, false, Policy{Slow: 0}},
		{"slow=250ms", true, false, Policy{Slow: 250 * time.Millisecond}},
		{"slow=-1s", false, true, Policy{}},
		{"slow=banana", false, true, Policy{}},
		{"sometimes", false, true, Policy{}},
	}
	for _, c := range cases {
		p, enabled, err := ParsePolicy(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("ParsePolicy(%q) err=%v wantErr=%v", c.in, err, c.wantErr)
		}
		if err != nil {
			continue
		}
		if enabled != c.enabled || p != c.policy {
			t.Fatalf("ParsePolicy(%q) = %+v enabled=%v; want %+v enabled=%v", c.in, p, enabled, c.policy, c.enabled)
		}
	}
}

func TestNilTracerAndNilSpanAreSafe(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.Root(context.Background(), "r")
	if root != nil {
		t.Fatal("nil tracer minted a span")
	}
	ctx2, sp := Start(ctx, "child")
	if sp != nil || ctx2 != ctx {
		t.Fatal("Start on untraced ctx must return ctx unchanged and nil span")
	}
	// All nil-span methods must be no-ops.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 7)
	sp.Fail(errors.New("x"))
	sp.End()
	if got := sp.TraceID(); got != "" {
		t.Fatalf("nil span TraceID = %q", got)
	}
	if IDFromContext(ctx) != "" {
		t.Fatal("IDFromContext on untraced ctx must be empty")
	}
	if tr.Traces() != nil || tr.Get("x") != nil || tr.Snapshot() != nil {
		t.Fatal("nil tracer ring reads must be empty")
	}
	if tr.Sampled() != 0 || tr.Dropped() != 0 || tr.Evictions() != 0 {
		t.Fatal("nil tracer counters must be zero")
	}
}

func TestRootChildSpanTreeRetained(t *testing.T) {
	tr := New(Options{Capacity: 8}) // Policy zero value: slow=0, retain all
	ctx, root := tr.Root(context.Background(), "req")
	if root == nil {
		t.Fatal("no root span")
	}
	id := root.TraceID()
	if len(id) != 16 {
		t.Fatalf("trace id %q not 16 hex chars", id)
	}
	if IDFromContext(ctx) != id {
		t.Fatal("IDFromContext mismatch")
	}

	cctx, child := Start(ctx, "phase")
	child.SetAttr("group", "3")
	child.SetInt("licenses", 42)
	_, grand := Start(cctx, "shard")
	grand.End()
	child.End()
	root.End()
	root.End() // idempotent

	if tr.Sampled() != 1 {
		t.Fatalf("sampled = %d, want 1", tr.Sampled())
	}
	rec := tr.Get(id)
	if rec == nil {
		t.Fatal("trace not retained")
	}
	if rec.Error {
		t.Fatal("trace wrongly marked error")
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range rec.Spans {
		byName[s.Name] = s
	}
	if byName["req"].ID != 1 || byName["req"].Parent != 0 {
		t.Fatalf("root span ids wrong: %+v", byName["req"])
	}
	if byName["phase"].Parent != byName["req"].ID {
		t.Fatal("child parent link broken")
	}
	if byName["shard"].Parent != byName["phase"].ID {
		t.Fatal("grandchild parent link broken")
	}
	wantAttrs := []Attr{{Key: "group", Value: "3"}, {Key: "licenses", Value: "42"}}
	if got := byName["phase"].Attrs; len(got) != 2 || got[0] != wantAttrs[0] || got[1] != wantAttrs[1] {
		t.Fatalf("attrs = %+v, want %+v", got, wantAttrs)
	}
	// Root must be the last recorded span (end order).
	if rec.Spans[len(rec.Spans)-1].Name != "req" {
		t.Fatal("root is not last in end order")
	}
}

func TestTailSamplingPolicies(t *testing.T) {
	t.Run("errors retained under ErrorsOnly", func(t *testing.T) {
		tr := New(Options{Capacity: 8, Policy: Policy{ErrorsOnly: true}})

		_, ok := tr.Root(context.Background(), "fine")
		ok.End()
		if tr.Sampled() != 0 || tr.Dropped() != 1 {
			t.Fatalf("clean trace retained under error policy: sampled=%d dropped=%d", tr.Sampled(), tr.Dropped())
		}

		ctx, bad := tr.Root(context.Background(), "bad")
		_, sp := Start(ctx, "inner")
		sp.Fail(errors.New("boom"))
		sp.End()
		bad.End()
		if tr.Sampled() != 1 {
			t.Fatal("error trace not retained")
		}
		rec := tr.Get(bad.TraceID())
		if rec == nil || !rec.Error {
			t.Fatalf("error trace record wrong: %+v", rec)
		}
		var inner SpanRecord
		for _, s := range rec.Spans {
			if s.Name == "inner" {
				inner = s
			}
		}
		if inner.Error != "boom" {
			t.Fatalf("inner span error = %q", inner.Error)
		}
	})

	t.Run("slow threshold", func(t *testing.T) {
		tr := New(Options{Capacity: 8, Policy: Policy{Slow: time.Hour}})
		_, fast := tr.Root(context.Background(), "fast")
		fast.End()
		if tr.Sampled() != 0 || tr.Dropped() != 1 {
			t.Fatal("fast trace retained under slow=1h")
		}
		// Errors bypass the latency threshold.
		_, bad := tr.Root(context.Background(), "bad")
		bad.Fail(errors.New("x"))
		bad.End()
		if tr.Sampled() != 1 {
			t.Fatal("error trace dropped under slow policy")
		}
	})
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{Capacity: ringShards}) // one slot per shard
	for i := 0; i < 10*ringShards; i++ {
		_, sp := tr.Root(context.Background(), "r")
		sp.End()
	}
	if tr.Sampled() != 10*ringShards {
		t.Fatalf("sampled = %d", tr.Sampled())
	}
	got := len(tr.Traces())
	if got > ringShards {
		t.Fatalf("ring holds %d traces, capacity %d", got, ringShards)
	}
	if tr.Evictions() != tr.Sampled()-int64(got) {
		t.Fatalf("evictions=%d sampled=%d held=%d", tr.Evictions(), tr.Sampled(), got)
	}
}

func TestSpanCapTruncates(t *testing.T) {
	tr := New(Options{Capacity: 4})
	ctx, root := tr.Root(context.Background(), "big")
	for i := 0; i < maxSpansPerTrace+100; i++ {
		_, sp := Start(ctx, "s")
		sp.End()
	}
	root.End()
	rec := tr.Get(root.TraceID())
	if rec == nil {
		t.Fatal("trace not retained")
	}
	if len(rec.Spans) != maxSpansPerTrace {
		t.Fatalf("got %d spans, want cap %d", len(rec.Spans), maxSpansPerTrace)
	}
	if rec.Truncated != 101 {
		// cap counts the root too: root is span 1, so cap-1 children fit.
		t.Fatalf("truncated = %d, want 101", rec.Truncated)
	}
}

// TestConcurrentSpansRace is the -race hammer: many goroutines fan out
// spans on shared traces concurrently; afterwards every retained trace
// must have exactly the expected spans with resolvable parent IDs and no
// duplicates.
func TestConcurrentSpansRace(t *testing.T) {
	const traces = 16
	const workers = 8
	const spansPerWorker = 25
	// Shard assignment hashes the random trace ID, so any shard may see
	// all 16 traces in the worst case; size the ring so no distribution
	// can evict (the eviction path has its own deterministic test).
	tr := New(Options{Capacity: traces * ringShards})
	var wg sync.WaitGroup
	ids := make([]string, traces)
	for i := 0; i < traces; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := tr.Root(context.Background(), "req")
			ids[i] = root.TraceID()
			var inner sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				inner.Add(1)
				go func() {
					defer inner.Done()
					for s := 0; s < spansPerWorker; s++ {
						sctx, sp := Start(ctx, fmt.Sprintf("w%d.s%d", w, s))
						_, leaf := Start(sctx, "leaf")
						leaf.End()
						sp.End()
					}
				}()
			}
			inner.Wait()
			root.End()
		}()
	}
	wg.Wait()

	if tr.Sampled() != traces {
		t.Fatalf("sampled = %d, want %d", tr.Sampled(), traces)
	}
	wantSpans := 1 + workers*spansPerWorker*2
	for _, id := range ids {
		rec := tr.Get(id)
		if rec == nil {
			t.Fatalf("trace %s lost", id)
		}
		if len(rec.Spans) != wantSpans {
			t.Fatalf("trace %s has %d spans, want %d", id, len(rec.Spans), wantSpans)
		}
		seen := map[uint64]bool{}
		for _, s := range rec.Spans {
			if seen[s.ID] {
				t.Fatalf("trace %s: duplicate span id %d", id, s.ID)
			}
			seen[s.ID] = true
		}
		for _, s := range rec.Spans {
			if s.Parent == 0 {
				if s.ID != 1 {
					t.Fatalf("trace %s: non-root span %d has no parent", id, s.ID)
				}
				continue
			}
			if !seen[s.Parent] {
				t.Fatalf("trace %s: span %d parent %d unresolved", id, s.ID, s.Parent)
			}
		}
	}
}

func TestLateSpanAfterRootEndIgnored(t *testing.T) {
	tr := New(Options{Capacity: 4})
	ctx, root := tr.Root(context.Background(), "r")
	_, straggler := Start(ctx, "straggler")
	root.End()
	straggler.End() // after finalisation: must not panic or mutate the record
	if _, sp := Start(ctx, "postmortem"); sp != nil {
		t.Fatal("Start after root end minted a span")
	}
	rec := tr.Get(root.TraceID())
	if len(rec.Spans) != 1 {
		t.Fatalf("late span leaked into record: %d spans", len(rec.Spans))
	}
}

func TestMetricsHooks(t *testing.T) {
	defer func() { M = Metrics{} }()
	reg := obs.NewRegistry()
	Instrument(reg)
	tr := New(Options{Capacity: ringShards, Policy: Policy{ErrorsOnly: true}})
	ctx, sp := tr.Root(context.Background(), "drop-me")
	_, c := Start(ctx, "c")
	c.End()
	sp.End()
	_, bad := tr.Root(context.Background(), "keep-me")
	bad.Fail(errors.New("x"))
	bad.End()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"drm_trace_spans_started_total 3",
		"drm_trace_traces_sampled_total 1",
		"drm_trace_traces_dropped_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	tr := New(Options{Capacity: 8})
	ctx, root := tr.Root(context.Background(), "req")
	_, sp := Start(ctx, "inner")
	sp.End()
	root.End()
	id := root.TraceID()

	t.Run("index", func(t *testing.T) {
		rr := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
		if rr.Code != 200 {
			t.Fatalf("status %d", rr.Code)
		}
		var idx struct {
			Traces []TraceSummary `json:"traces"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &idx); err != nil {
			t.Fatal(err)
		}
		if len(idx.Traces) != 1 || idx.Traces[0].ID != id || idx.Traces[0].Spans != 2 {
			t.Fatalf("index = %+v", idx.Traces)
		}
	})

	t.Run("by id", func(t *testing.T) {
		rr := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/"+id, nil))
		if rr.Code != 200 {
			t.Fatalf("status %d", rr.Code)
		}
		var rec TraceRecord
		if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.ID != id || len(rec.Spans) != 2 {
			t.Fatalf("record = %+v", rec)
		}
	})

	t.Run("chrome format", func(t *testing.T) {
		rr := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/"+id+"?format=chrome", nil))
		if rr.Code != 200 {
			t.Fatalf("status %d", rr.Code)
		}
		n, err := DecodeChrome(rr.Body)
		if err != nil {
			t.Fatal(err)
		}
		if n != 2 {
			t.Fatalf("chrome doc has %d X events, want 2", n)
		}
	})

	t.Run("missing id 404s with typed body", func(t *testing.T) {
		rr := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces/deadbeefdeadbeef", nil))
		if rr.Code != 404 {
			t.Fatalf("status %d, want 404", rr.Code)
		}
		var body struct {
			Error   string `json:"error"`
			Kind    string `json:"kind"`
			Evicted *int64 `json:"ring_evictions_total"`
			Sampled *int64 `json:"traces_sampled_total"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("404 body not JSON: %v\n%s", err, rr.Body.String())
		}
		if body.Kind != "not_found" {
			t.Fatalf("kind %q, want not_found", body.Kind)
		}
		if !strings.Contains(body.Error, "never sampled") {
			t.Fatalf("error %q should say never sampled (no evictions yet)", body.Error)
		}
		if body.Evicted == nil || *body.Evicted != 0 || body.Sampled == nil || *body.Sampled != 1 {
			t.Fatalf("ring accounting missing: %+v", body)
		}
	})

	t.Run("nil tracer 404s", func(t *testing.T) {
		var nilTr *Tracer
		rr := httptest.NewRecorder()
		nilTr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
		if rr.Code != 404 {
			t.Fatalf("status %d, want 404", rr.Code)
		}
	})
}

func TestLogHandlerAddsTraceID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(LogHandler(slog.NewJSONHandler(&buf, nil)))
	tr := New(Options{Capacity: 4})
	ctx, sp := tr.Root(context.Background(), "r")

	logger.InfoContext(ctx, "traced line")
	logger.InfoContext(context.Background(), "untraced line")
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["trace_id"] != sp.TraceID() {
		t.Fatalf("trace_id = %v, want %s", first["trace_id"], sp.TraceID())
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Fatal("untraced line gained a trace_id")
	}
}
