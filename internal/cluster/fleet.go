// Fleet aggregation: the router is the one process that knows every
// peer, so it serves the two cluster-wide operator views —
//
//	GET /v1/cluster/traces/{id}   every process's fragment of one
//	                              distributed trace, merged into a
//	                              single Chrome Trace Event document
//	                              with one lane per process
//	GET /v1/cluster/status        every peer's /v1/status, folded into
//	                              one topology + SLO + lag pane
//	                              (?format=text for the terminal)
//
// Both fan out concurrently with a per-peer timeout and degrade rather
// than fail: an unreachable peer becomes a reported error row (status)
// or a peer_errors entry (traces), never a 5xx for the whole sweep.

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/drmerr"
	"repro/internal/trace"
)

// fanout runs call once per ring peer, concurrently, each under its own
// FanoutTimeout-bounded context, and waits for all of them.
func (rt *Router) fanout(ctx context.Context, call func(ctx context.Context, peer string)) {
	M.Fanouts.Inc()
	var wg sync.WaitGroup
	for _, p := range rt.ring.Peers() {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.FanoutTimeout)
			defer cancel()
			call(pctx, peer)
		}(p)
	}
	wg.Wait()
}

// fetchTrace pulls one peer's retained fragment of trace id. A 404 is
// not an error — most traces touch a subset of the fleet — it just
// means this peer holds no fragment.
func (rt *Router) fetchTrace(ctx context.Context, peer, id string) (*trace.TraceRecord, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/debug/traces/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var rec trace.TraceRecord
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			return nil, fmt.Errorf("decoding trace fragment: %w", err)
		}
		return &rec, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("peer answered %s", resp.Status)
	}
}

// HandleClusterTrace merges every process's fragment of one distributed
// trace. The router's own ring is consulted via cfg.LocalTrace, every
// peer via GET /debug/traces/{id}. The default response is a merged
// Chrome Trace Event document (one pid lane per process, loadable in
// Perfetto); ?format=json returns the raw fragments plus any per-peer
// fan-out errors instead.
func (rt *Router) HandleClusterTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if id == "" {
		writeErr(r.Context(), w, drmerr.New(drmerr.KindInvalidInput, "cluster.fleet",
			"cluster: trace id missing"))
		return
	}

	localName := rt.cfg.LocalName
	if localName == "" {
		localName = RoleRouter
	}
	var frags []trace.ProcessTrace
	if rt.cfg.LocalTrace != nil {
		if rec := rt.cfg.LocalTrace(id); rec != nil {
			frags = append(frags, trace.ProcessTrace{Process: localName, Trace: rec})
		}
	}

	var mu sync.Mutex
	var remote []trace.ProcessTrace
	peerErrs := map[string]string{}
	rt.fanout(r.Context(), func(ctx context.Context, peer string) {
		rec, err := rt.fetchTrace(ctx, peer, id)
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err != nil:
			M.FanoutPeerErrors.Inc()
			peerErrs[peer] = err.Error()
		case rec != nil:
			remote = append(remote, trace.ProcessTrace{Process: peer, Trace: rec})
		}
	})
	// Fan-out completion order is racy; fix the lane order (local first,
	// then peers by address) so repeated fetches render identically.
	sort.Slice(remote, func(i, j int) bool { return remote[i].Process < remote[j].Process })
	frags = append(frags, remote...)

	if len(frags) == 0 {
		writeJSON(w, http.StatusNotFound, struct {
			Error      string            `json:"error"`
			Kind       string            `json:"kind"`
			PeerErrors map[string]string `json:"peer_errors,omitempty"`
		}{
			Error:      fmt.Sprintf("cluster: trace %s retained by no reachable process", id),
			Kind:       drmerr.KindNotFound.String(),
			PeerErrors: peerErrs,
		})
		return
	}

	if r.URL.Query().Get("format") == "json" {
		type fragmentDoc struct {
			Process string             `json:"process"`
			Trace   *trace.TraceRecord `json:"trace"`
		}
		out := struct {
			TraceID    string            `json:"trace_id"`
			Fragments  []fragmentDoc     `json:"fragments"`
			PeerErrors map[string]string `json:"peer_errors,omitempty"`
		}{TraceID: id, PeerErrors: peerErrs}
		for _, f := range frags {
			out.Fragments = append(out.Fragments, fragmentDoc{Process: f.Process, Trace: f.Trace})
		}
		writeJSON(w, http.StatusOK, out)
		return
	}

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf(`attachment; filename="trace-%s.json"`, id))
	_ = trace.WriteChromeProcesses(w, frags)
}

// FleetPeer is one peer's row of the fleet status pane: reachability,
// role topology, replication lag, and the peer's worst SLO signals.
type FleetPeer struct {
	Addr      string `json:"addr"`
	Reachable bool   `json:"reachable"`
	// Error explains an unreachable peer; the role fields then fall back
	// to the prober's last view rather than vanishing.
	Error         string  `json:"error,omitempty"`
	Role          string  `json:"role,omitempty"`
	Ready         bool    `json:"ready"`
	Draining      bool    `json:"draining,omitempty"`
	Mode          string  `json:"mode,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	LogRecords    int     `json:"log_records,omitempty"`
	Seq           uint64  `json:"seq,omitempty"`
	LagSeqs       int64   `json:"lag_seqs,omitempty"`
	LagSeconds    float64 `json:"lag_seconds,omitempty"`
	Promoted      bool    `json:"promoted,omitempty"`
	// WorstBurnRate is the peer's maximum SLO burn rate across all
	// objectives and windows; MinBudgetRemaining the scarcest budget.
	WorstBurnRate      float64  `json:"worst_burn_rate,omitempty"`
	MinBudgetRemaining *float64 `json:"min_budget_remaining,omitempty"`
	// FiringAlerts lists "objective/severity" for every firing rule.
	FiringAlerts []string `json:"firing_alerts,omitempty"`
}

// FleetSummary is the one-line rollup over all peers.
type FleetSummary struct {
	Peers         int     `json:"peers"`
	Reachable     int     `json:"reachable"`
	Leaders       int     `json:"leaders"`
	Followers     int     `json:"followers"`
	Ready         int     `json:"ready"`
	MaxLagSeqs    int64   `json:"max_lag_seqs"`
	WorstBurnRate float64 `json:"worst_burn_rate"`
	FiringAlerts  int     `json:"firing_alerts"`
}

// FleetStatus is the /v1/cluster/status body.
type FleetStatus struct {
	Role    string       `json:"role"`
	Summary FleetSummary `json:"summary"`
	Peers   []FleetPeer  `json:"peers"`
}

// peerStatusDoc decodes the slice of a peer's /v1/status the fleet view
// aggregates; unknown fields are ignored so peers can grow their status
// body without breaking older routers.
type peerStatusDoc struct {
	Service struct {
		Mode          string  `json:"mode"`
		Draining      bool    `json:"draining"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		LogRecords    int     `json:"log_records"`
	} `json:"service"`
	Replication *struct {
		Role       string  `json:"role"`
		Ready      bool    `json:"ready"`
		Seq        uint64  `json:"seq"`
		LagSeqs    int64   `json:"lag_seqs"`
		LagSeconds float64 `json:"lag_seconds"`
		Promoted   bool    `json:"promoted"`
	} `json:"replication"`
	SLO struct {
		Objectives []struct {
			Name            string  `json:"name"`
			BudgetRemaining float64 `json:"budget_remaining"`
			Windows         []struct {
				Window   string  `json:"window"`
				BurnRate float64 `json:"burn_rate"`
			} `json:"windows"`
			Alerts []struct {
				Severity string `json:"severity"`
				Firing   bool   `json:"firing"`
			} `json:"alerts"`
		} `json:"objectives"`
	} `json:"slo"`
}

// fetchPeerStatus builds one peer's fleet row. An unreachable peer is a
// row with Reachable=false and the prober's last role view, never an
// error for the sweep.
func (rt *Router) fetchPeerStatus(ctx context.Context, peer string) FleetPeer {
	fp := FleetPeer{Addr: peer}
	fill := func(reason string) {
		fp.Error = reason
		rt.mu.RLock()
		if st, ok := rt.state[peer]; ok {
			fp.Role, fp.Ready = st.Role, st.Ready
			fp.Seq, fp.LagSeqs = st.Seq, st.LagSeqs
		}
		rt.mu.RUnlock()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/status", nil)
	if err != nil {
		fill(err.Error())
		return fp
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		M.FanoutPeerErrors.Inc()
		fill(err.Error())
		return fp
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		M.FanoutPeerErrors.Inc()
		fill("status answered " + resp.Status)
		return fp
	}
	var doc peerStatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		M.FanoutPeerErrors.Inc()
		fill(err.Error())
		return fp
	}

	fp.Reachable = true
	fp.Mode = doc.Service.Mode
	fp.Draining = doc.Service.Draining
	fp.UptimeSeconds = doc.Service.UptimeSeconds
	fp.LogRecords = doc.Service.LogRecords
	if rep := doc.Replication; rep != nil {
		fp.Role, fp.Ready = rep.Role, rep.Ready
		fp.Seq, fp.LagSeqs, fp.LagSeconds = rep.Seq, rep.LagSeqs, rep.LagSeconds
		fp.Promoted = rep.Promoted
	} else {
		// A peer predating the role wiring: treat like the prober does.
		fp.Role, fp.Ready = RoleStandalone, !doc.Service.Draining
	}
	for _, o := range doc.SLO.Objectives {
		b := o.BudgetRemaining
		if fp.MinBudgetRemaining == nil || b < *fp.MinBudgetRemaining {
			fp.MinBudgetRemaining = &b
		}
		for _, w := range o.Windows {
			if w.BurnRate > fp.WorstBurnRate {
				fp.WorstBurnRate = w.BurnRate
			}
		}
		for _, a := range o.Alerts {
			if a.Firing {
				fp.FiringAlerts = append(fp.FiringAlerts, o.Name+"/"+a.Severity)
			}
		}
	}
	return fp
}

// FleetView sweeps every peer's /v1/status and folds the rows (in ring
// order) into one FleetStatus.
func (rt *Router) FleetView(ctx context.Context) FleetStatus {
	var mu sync.Mutex
	rows := map[string]FleetPeer{}
	rt.fanout(ctx, func(ctx context.Context, peer string) {
		fp := rt.fetchPeerStatus(ctx, peer)
		mu.Lock()
		rows[peer] = fp
		mu.Unlock()
	})

	st := FleetStatus{Role: RoleRouter}
	for _, p := range rt.ring.Peers() {
		fp := rows[p]
		st.Peers = append(st.Peers, fp)
		st.Summary.Peers++
		if fp.Reachable {
			st.Summary.Reachable++
		}
		switch fp.Role {
		case RoleLeader, RoleStandalone:
			st.Summary.Leaders++
		case RoleFollower:
			st.Summary.Followers++
		}
		if fp.Ready {
			st.Summary.Ready++
		}
		if fp.LagSeqs > st.Summary.MaxLagSeqs {
			st.Summary.MaxLagSeqs = fp.LagSeqs
		}
		if fp.WorstBurnRate > st.Summary.WorstBurnRate {
			st.Summary.WorstBurnRate = fp.WorstBurnRate
		}
		st.Summary.FiringAlerts += len(fp.FiringAlerts)
	}
	return st
}

// HandleClusterStatus serves the fleet pane: JSON by default,
// ?format=text (or an Accept preferring text/plain) for the terminal.
func (rt *Router) HandleClusterStatus(w http.ResponseWriter, r *http.Request) {
	st := rt.FleetView(r.Context())
	if r.URL.Query().Get("format") == "text" ||
		strings.HasPrefix(r.Header.Get("Accept"), "text/plain") {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, renderFleetText(st))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// renderFleetText is the terminal rendering of the fleet pane.
func renderFleetText(st FleetStatus) string {
	var b strings.Builder
	s := st.Summary
	fmt.Fprintf(&b, "fleet: %d peers (%d reachable), %d leaders, %d followers, %d ready\n",
		s.Peers, s.Reachable, s.Leaders, s.Followers, s.Ready)
	fmt.Fprintf(&b, "worst burn %.2f, firing alerts %d, max lag %d seqs\n\n",
		s.WorstBurnRate, s.FiringAlerts, s.MaxLagSeqs)
	fmt.Fprintf(&b, "  %-28s %-11s %-5s %8s %8s %6s  %s\n",
		"PEER", "ROLE", "READY", "SEQ", "LAG", "BURN", "NOTES")
	for _, p := range st.Peers {
		ready := "no"
		if p.Ready {
			ready = "yes"
		}
		var notes []string
		if !p.Reachable {
			notes = append(notes, "UNREACHABLE: "+p.Error)
		}
		if p.Draining {
			notes = append(notes, "draining")
		}
		if p.Promoted {
			notes = append(notes, "promoted")
		}
		notes = append(notes, p.FiringAlerts...)
		fmt.Fprintf(&b, "  %-28s %-11s %-5s %8d %8d %6.2f  %s\n",
			p.Addr, p.Role, ready, p.Seq, p.LagSeqs, p.WorstBurnRate,
			strings.Join(notes, ", "))
	}
	return b.String()
}
