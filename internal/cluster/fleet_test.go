package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// tracedWith is a minimal stand-in for the server's tracing middleware:
// extract an upstream traceparent if present, root a span, run next.
// An empty name mirrors the router's catch-all (named per request).
func tracedWith(tr *trace.Tracer, name string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := name
		if n == "" {
			n = r.Method + " " + r.URL.Path
		}
		var ctx context.Context
		var sp *trace.Span
		if rp, ok := trace.Extract(r.Header); ok {
			ctx, sp = tr.RootRemote(r.Context(), n, rp)
		} else {
			ctx, sp = tr.Root(r.Context(), n)
		}
		next.ServeHTTP(w, r.WithContext(ctx))
		sp.End()
	})
}

// TestRouterTracePropagationE2E is the cross-process tracing e2e: a
// traced request through the router must retain a fragment with ONE
// trace ID in both the router's and the peer's rings, and the merged
// /v1/cluster/traces/{id} document must carry both process lanes.
func TestRouterTracePropagationE2E(t *testing.T) {
	// "Leader" process: its own tracer, extract middleware, debug ring.
	leaderTracer := trace.New(trace.Options{Capacity: 16})
	lmux := http.NewServeMux()
	lmux.HandleFunc("/v1/repl/role", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, RoleInfo{Role: RoleLeader, Ready: true})
	})
	lmux.Handle("/debug/traces/", leaderTracer.Handler())
	lmux.Handle("/", tracedWith(leaderTracer, "", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			_, sp := trace.Start(r.Context(), "engine.issue")
			sp.End()
			io.WriteString(w, "leader")
		})))
	leader := httptest.NewServer(lmux)
	defer leader.Close()

	// "Router" process: its own tracer, the catch-all proxies, the fleet
	// endpoints merge.
	routerTracer := trace.New(trace.Options{Capacity: 16})
	rt := newTestRouter(t, RouterConfig{
		Peers:      []string{leader.URL},
		LocalName:  "router",
		LocalTrace: routerTracer.Get,
	})
	fmux := http.NewServeMux()
	fmux.HandleFunc("GET /v1/cluster/traces/{id}", rt.HandleClusterTrace)
	fmux.Handle("/", tracedWith(routerTracer, "", rt))
	front := httptest.NewServer(fmux)
	defer front.Close()

	resp, err := http.Post(front.URL+"/v1/c/alpha/usage/issue", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "leader" {
		t.Fatalf("proxied request: status %d body %q", resp.StatusCode, body)
	}

	sums := routerTracer.Traces()
	if len(sums) != 1 {
		t.Fatalf("router retained %d traces, want 1", len(sums))
	}
	id := sums[0].ID

	// The SAME trace id is retained on both sides of the wire.
	rrec := routerTracer.Get(id)
	lrec := leaderTracer.Get(id)
	if rrec == nil || lrec == nil {
		t.Fatalf("trace %s retained router=%v leader=%v, want both", id, rrec != nil, lrec != nil)
	}
	if rrec.Remote {
		t.Fatal("router fragment wrongly marked remote (it minted the id)")
	}
	if !lrec.Remote || lrec.RemoteParent == "" {
		t.Fatalf("leader fragment not marked remote: %+v", lrec)
	}
	var forward *trace.SpanRecord
	for i := range rrec.Spans {
		if rrec.Spans[i].Name == "router.forward" {
			forward = &rrec.Spans[i]
		}
	}
	if forward == nil {
		t.Fatalf("router fragment has no router.forward span: %+v", rrec.Spans)
	}

	// Merged document: two process lanes, validated by the same decoder
	// tracecheck uses.
	resp, err = http.Get(front.URL + "/v1/cluster/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merged trace status %d", resp.StatusCode)
	}
	stats, err := trace.DecodeChromeStats(resp.Body)
	if err != nil {
		t.Fatalf("merged doc invalid: %v", err)
	}
	if stats.Processes < 2 {
		t.Fatalf("merged doc has %d process lanes, want >= 2", stats.Processes)
	}

	// format=json exposes the raw fragments.
	resp, err = http.Get(front.URL + "/v1/cluster/traces/" + id + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var frag struct {
		TraceID   string `json:"trace_id"`
		Fragments []struct {
			Process string             `json:"process"`
			Trace   *trace.TraceRecord `json:"trace"`
		} `json:"fragments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&frag); err != nil {
		t.Fatal(err)
	}
	if frag.TraceID != id || len(frag.Fragments) != 2 {
		t.Fatalf("fragment doc %+v, want 2 fragments of %s", frag, id)
	}
	if frag.Fragments[0].Process != "router" {
		t.Fatalf("local fragment not first: %q", frag.Fragments[0].Process)
	}

	// An unknown id is a typed 404.
	resp, err = http.Get(front.URL + "/v1/cluster/traces/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", resp.StatusCode)
	}
	var e struct {
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Kind != "not_found" {
		t.Fatalf("unknown trace body kind %q err %v", e.Kind, err)
	}
}

// TestRouterRedirectStampsTraceparent: the 307 path carries the span
// context on the response so a client following the redirect can
// continue the trace.
func TestRouterRedirectStampsTraceparent(t *testing.T) {
	peer := fakePeer(t, "peer", &RoleInfo{Role: RoleLeader, Ready: true})
	rt := newTestRouter(t, RouterConfig{Peers: []string{peer.URL}, Redirect: true})
	tr := trace.New(trace.Options{Capacity: 4})

	ctx, sp := tr.Root(context.Background(), "req")
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/c/alpha/usage/corpus", nil).WithContext(ctx)
	rt.ServeHTTP(rr, req)
	sp.End()
	if rr.Code != http.StatusTemporaryRedirect {
		t.Fatalf("status %d, want 307", rr.Code)
	}
	tp := rr.Header().Get(trace.Header)
	if tp == "" {
		t.Fatal("307 response carries no traceparent")
	}
	rp, ok := trace.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("307 traceparent %q invalid", tp)
	}
	if !strings.Contains(tp, sp.TraceID()) {
		t.Fatalf("traceparent %q does not carry trace %s", tp, sp.TraceID())
	}
	if rp.SpanID == 0 {
		t.Fatalf("parsed remote parent %+v has no span id", rp)
	}
}

// TestRouterProxyErrorTypedBody: a dead peer behind a healthy probe
// yields the standard typed error body with the trace id, fails the
// forward span, and counts in the per-peer proxy-error metric.
func TestRouterProxyErrorTypedBody(t *testing.T) {
	Instrument(obs.NewRegistry())
	defer func() { M = Metrics{} }()

	peer := fakePeer(t, "doomed", &RoleInfo{Role: RoleLeader, Ready: true})
	rt := newTestRouter(t, RouterConfig{Peers: []string{peer.URL}})
	tr := trace.New(trace.Options{Capacity: 4})
	front := httptest.NewServer(tracedWith(tr, "", rt))
	defer front.Close()

	peer.Close() // probed healthy, now gone: the proxy round-trip fails

	resp, err := http.Post(front.URL+"/v1/c/alpha/usage/issue", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var body errBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("proxy error body not JSON: %v", err)
	}
	if body.Kind != "unavailable" || body.Error == "" {
		t.Fatalf("body %+v, want kind unavailable", body)
	}
	if body.TraceID == "" {
		t.Fatal("proxy error body carries no trace_id")
	}
	rec := tr.Get(body.TraceID)
	if rec == nil {
		t.Fatal("failed forward's trace not retained")
	}
	var failed bool
	for _, sp := range rec.Spans {
		if sp.Name == "router.forward" && sp.Error != "" {
			failed = true
		}
	}
	if !failed {
		t.Fatalf("router.forward span not failed: %+v", rec.Spans)
	}
	if got := M.RouterProxyErrors.With(peer.URL).Value(); got != 1 {
		t.Fatalf("proxy errors for %s = %d, want 1", peer.URL, got)
	}
}

// statusPeer serves a canned /v1/status document plus the role probe.
func statusPeer(t *testing.T, role RoleInfo, doc any) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/role", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, role)
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, doc)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRouterFleetStatusAggregation: /v1/cluster/status folds reachable
// peers' status docs into topology + lag + SLO rollups, and reports
// unreachable peers instead of failing the sweep.
func TestRouterFleetStatusAggregation(t *testing.T) {
	leaderDoc := map[string]any{
		"service":     map[string]any{"mode": "corpus", "uptime_seconds": 12.5, "log_records": 100},
		"replication": map[string]any{"role": "leader", "ready": true, "seq": 42},
		"slo": map[string]any{"objectives": []any{map[string]any{
			"name": "availability", "budget_remaining": 0.9,
			"windows": []any{map[string]any{"window": "5m", "burn_rate": 0.4}},
			"alerts":  []any{map[string]any{"severity": "page", "firing": false}},
		}}},
	}
	followerDoc := map[string]any{
		"service":     map[string]any{"mode": "corpus", "uptime_seconds": 11.0, "log_records": 98},
		"replication": map[string]any{"role": "follower", "ready": true, "seq": 40, "lag_seqs": 2, "lag_seconds": 0.5},
		"slo": map[string]any{"objectives": []any{map[string]any{
			"name": "availability", "budget_remaining": 0.1,
			"windows": []any{map[string]any{"window": "5m", "burn_rate": 2.5}},
			"alerts":  []any{map[string]any{"severity": "page", "firing": true}},
		}}},
	}
	lp := statusPeer(t, RoleInfo{Role: RoleLeader, Ready: true, Seq: 42}, leaderDoc)
	fp := statusPeer(t, RoleInfo{Role: RoleFollower, Ready: true, Seq: 40, LagSeqs: 2}, followerDoc)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt := newTestRouter(t, RouterConfig{Peers: []string{lp.URL, fp.URL, deadURL}})
	st := rt.FleetView(context.Background())

	s := st.Summary
	if s.Peers != 3 || s.Reachable != 2 {
		t.Fatalf("summary %+v, want 3 peers 2 reachable", s)
	}
	if s.Leaders != 1 || s.Followers != 1 || s.Ready != 2 {
		t.Fatalf("summary topology %+v", s)
	}
	if s.MaxLagSeqs != 2 {
		t.Fatalf("max lag %d, want 2", s.MaxLagSeqs)
	}
	if s.WorstBurnRate != 2.5 {
		t.Fatalf("worst burn %v, want 2.5", s.WorstBurnRate)
	}
	if s.FiringAlerts != 1 {
		t.Fatalf("firing alerts %d, want 1", s.FiringAlerts)
	}

	byAddr := map[string]FleetPeer{}
	for _, p := range st.Peers {
		byAddr[p.Addr] = p
	}
	if p := byAddr[lp.URL]; !p.Reachable || p.Role != RoleLeader || p.Seq != 42 || p.LogRecords != 100 {
		t.Fatalf("leader row %+v", p)
	}
	if p := byAddr[fp.URL]; !p.Reachable || p.LagSeqs != 2 ||
		len(p.FiringAlerts) != 1 || p.FiringAlerts[0] != "availability/page" {
		t.Fatalf("follower row %+v", p)
	}
	if p := byAddr[deadURL]; p.Reachable || p.Error == "" {
		t.Fatalf("dead row %+v, want unreachable with error", p)
	}

	// The HTTP handler: JSON default, text pane on ?format=text.
	rr := httptest.NewRecorder()
	rt.HandleClusterStatus(rr, httptest.NewRequest(http.MethodGet, "/v1/cluster/status", nil))
	var round FleetStatus
	if err := json.NewDecoder(rr.Body).Decode(&round); err != nil {
		t.Fatal(err)
	}
	if round.Role != RoleRouter || round.Summary != s {
		t.Fatalf("handler JSON %+v", round)
	}
	rr = httptest.NewRecorder()
	rt.HandleClusterStatus(rr, httptest.NewRequest(http.MethodGet, "/v1/cluster/status?format=text", nil))
	text := rr.Body.String()
	for _, want := range []string{"3 peers (2 reachable)", "UNREACHABLE", "leader", "follower", "availability/page"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text pane missing %q:\n%s", want, text)
		}
	}
}

// TestFollowerFetchInjectsTraceparent: a traced follower's WAL fetch
// carries its repl.fetch span to the leader; an untraced follower sends
// no header.
func TestFollowerFetchInjectsTraceparent(t *testing.T) {
	var got string
	calls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/wal", func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(trace.Header)
		calls++
		writeJSON(w, http.StatusOK, ShipResponse{})
	})
	leader := httptest.NewServer(mux)
	defer leader.Close()

	store, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	tr := trace.New(trace.Options{Capacity: 4})
	f, err := NewFollower(FollowerConfig{Leader: leader.URL, Store: store, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.FetchOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || got == "" {
		t.Fatalf("leader saw %d calls, traceparent %q — want an injected header", calls, got)
	}
	if _, ok := trace.ParseTraceparent(got); !ok {
		t.Fatalf("injected traceparent %q invalid", got)
	}
	sums := tr.Traces()
	if len(sums) != 1 || sums[0].Name != "repl.fetch" {
		t.Fatalf("follower retained %+v, want one repl.fetch trace", sums)
	}
	rec := tr.Get(sums[0].ID)
	if rec == nil {
		t.Fatal("repl.fetch trace not in ring")
	}
	wire := "00-0000000000000000" + sums[0].ID + "-"
	if !strings.HasPrefix(got, wire) {
		t.Fatalf("header %q does not carry the retained trace id %s", got, sums[0].ID)
	}

	// Untraced follower: no header on the wire.
	got = ""
	f2, err := NewFollower(FollowerConfig{Leader: leader.URL, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.FetchOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Fatalf("untraced fetch sent traceparent %q", got)
	}
}
