// Router: a stateless front tier that maps each request's catalog key
// onto the consistent-hash ring and forwards it to the owning shard —
// a reverse proxy by default, a 307 redirect when the operator prefers
// clients to follow ownership themselves. A background prober keeps a
// role/health view of every peer (GET /v1/repl/role; a 404 is a peer
// predating the cluster subsystem, treated as a ready leader), and
// routing is role-aware: mutations only ever land on healthy leaders,
// reads on any healthy, ready peer, with the ring's successor order as
// the fallback path around an unhealthy owner.

package cluster

import (
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/drmerr"
	"repro/internal/trace"
)

// DefaultFanoutTimeout bounds each per-peer call inside a fleet
// aggregation sweep when the config does not.
const DefaultFanoutTimeout = 2 * time.Second

// RouterConfig wires a router to its peer set.
type RouterConfig struct {
	// Peers are the shard base URLs (e.g. "http://10.0.0.1:8080").
	Peers []string
	// Vnodes per peer on the ring (DefaultVnodes when <= 0).
	Vnodes int
	// Client issues the health probes (http.DefaultClient when nil).
	Client *http.Client
	// ProbeInterval paces the background prober (2s when <= 0).
	ProbeInterval time.Duration
	// Redirect answers 307 with the owner's URL instead of proxying.
	Redirect bool
	// FanoutTimeout bounds each per-peer call of a fleet aggregation
	// sweep — /v1/cluster/status and /v1/cluster/traces degrade to
	// reporting a peer unreachable instead of hanging on it
	// (DefaultFanoutTimeout when <= 0).
	FanoutTimeout time.Duration
	// LocalName labels the router's own trace fragment in merged
	// cross-process documents ("router" is a good choice).
	LocalName string
	// LocalTrace looks a trace up in the router's own retained ring so
	// the router's fragment joins the merged document; nil routers merge
	// peer fragments only.
	LocalTrace func(id string) *trace.TraceRecord
}

// PeerStatus is one row of the router's health view (the /v1/cluster
// body).
type PeerStatus struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Role    string `json:"role"`
	Ready   bool   `json:"ready"`
	Seq     uint64 `json:"seq"`
	LagSeqs int64  `json:"lag_seqs,omitempty"`
	// LastProbeUnix is when this row was last refreshed (0 = never).
	LastProbeUnix int64  `json:"last_probe_unix"`
	Error         string `json:"error,omitempty"`
}

// Router routes requests to the peer owning their catalog key.
type Router struct {
	cfg  RouterConfig
	ring *Ring

	mu      sync.RWMutex
	state   map[string]*PeerStatus
	proxies map[string]*httputil.ReverseProxy

	stop chan struct{}
	done chan struct{}
}

// NewRouter builds a router over the configured peers. Peers start
// unprobed (unhealthy); call ProbeAll or Start before serving.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, drmerr.New(drmerr.KindInvalidInput, "cluster.router",
			"cluster: router needs at least one peer")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.FanoutTimeout <= 0 {
		cfg.FanoutTimeout = DefaultFanoutTimeout
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Vnodes),
		state:   make(map[string]*PeerStatus),
		proxies: make(map[string]*httputil.ReverseProxy),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		p = strings.TrimRight(p, "/")
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, drmerr.New(drmerr.KindInvalidInput, "cluster.router",
				"cluster: peer %q is not an absolute URL", p)
		}
		rt.ring.Add(p)
		rt.state[p] = &PeerStatus{Addr: p}
		proxy := httputil.NewSingleHostReverseProxy(u)
		peer := p
		proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			// Resolved lazily: Instrument may run after NewRouter.
			M.RouterProxyErrors.With(peer).Inc()
			werr := drmerr.Wrap(drmerr.KindUnavailable, "cluster.router", err)
			// r is the outbound clone, so its context still carries the
			// forward span minted in ServeHTTP.
			trace.SpanFromContext(r.Context()).Fail(werr)
			writeErr(r.Context(), w, werr)
		}
		rt.proxies[p] = proxy
	}
	return rt, nil
}

// KeyForPath extracts the routing key from a request path: catalog
// routes ("/v1/c/{content}/{perm}/...") key on the content/permission
// pair — the unit consistent hashing shards — and every other path
// shares the empty key, so single-corpus deployments route as one
// shard.
func KeyForPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/v1/c/")
	if !ok {
		return ""
	}
	parts := strings.SplitN(rest, "/", 3)
	if len(parts) < 2 {
		return ""
	}
	return parts[0] + "/" + parts[1]
}

// mutating reports whether the request must land on a leader.
func mutating(r *http.Request) bool {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodOptions:
		return false
	}
	return true
}

// Route picks the owning peer for the request, walking the ring's
// successor order past peers that are unhealthy (or, for mutations,
// not leaders).
func (rt *Router) Route(r *http.Request) (string, bool) {
	key := KeyForPath(r.URL.Path)
	needLeader := mutating(r)
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.OwnerWhere(key, func(peer string) bool {
		st, ok := rt.state[peer]
		if !ok || !st.Healthy {
			return false
		}
		if needLeader {
			return st.Role == RoleLeader || st.Role == RoleStandalone
		}
		return st.Ready
	})
}

// ServeHTTP forwards the request to its owner (proxy or 307), answering
// a typed 503 when no eligible peer exists. When the request is traced,
// a "router.forward" child span covers the round-trip and its context is
// injected as a traceparent header — onto the forwarded request when
// proxying, onto the response when redirecting — so the downstream
// fragment continues this trace ID.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	peer, ok := rt.Route(r)
	if !ok {
		M.RouterNoPeer.Inc()
		writeErr(r.Context(), w, drmerr.New(drmerr.KindUnavailable, "cluster.router",
			"cluster: no healthy peer for %s %s", r.Method, r.URL.Path))
		return
	}
	ctx, sp := trace.Start(r.Context(), "router.forward")
	sp.SetAttr("peer", peer)
	if key := KeyForPath(r.URL.Path); key != "" {
		sp.SetAttr("key", key)
	}
	if rt.cfg.Redirect {
		M.RouterRedirects.Inc()
		trace.Inject(ctx, w.Header())
		sp.End()
		http.Redirect(w, r, peer+r.URL.RequestURI(), http.StatusTemporaryRedirect)
		return
	}
	M.RouterForwards.Inc()
	rt.mu.RLock()
	proxy := rt.proxies[peer]
	rt.mu.RUnlock()
	if sp != nil {
		r = r.WithContext(ctx)
	}
	trace.Inject(ctx, r.Header)
	proxy.ServeHTTP(w, r)
	sp.End()
}

// Peers returns the current health view, in ring-membership order.
func (rt *Router) Peers() []PeerStatus {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]PeerStatus, 0, len(rt.state))
	for _, p := range rt.ring.Peers() {
		out = append(out, *rt.state[p])
	}
	return out
}

// Ready reports whether at least one healthy leader is routable.
func (rt *Router) Ready() bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for _, st := range rt.state {
		if st.Healthy && (st.Role == RoleLeader || st.Role == RoleStandalone) {
			return true
		}
	}
	return false
}

// ProbeAll refreshes every peer's health row once, concurrently.
func (rt *Router) ProbeAll() {
	var wg sync.WaitGroup
	for _, p := range rt.ring.Peers() {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			rt.probe(peer)
		}(p)
	}
	wg.Wait()
}

func (rt *Router) probe(peer string) {
	M.Probes.Inc()
	st := PeerStatus{Addr: peer, LastProbeUnix: time.Now().Unix()}
	resp, err := rt.cfg.Client.Get(peer + "/v1/repl/role")
	switch {
	case err != nil:
		M.ProbeFailures.Inc()
		st.Error = err.Error()
	case resp.StatusCode == http.StatusNotFound:
		// A peer predating the cluster subsystem: standalone, so it
		// accepts writes and serves reads.
		resp.Body.Close()
		st.Healthy, st.Ready, st.Role = true, true, RoleStandalone
	case resp.StatusCode != http.StatusOK:
		resp.Body.Close()
		M.ProbeFailures.Inc()
		st.Error = "probe answered " + resp.Status
	default:
		var info RoleInfo
		err := decodeBody(resp, &info)
		if err != nil {
			M.ProbeFailures.Inc()
			st.Error = err.Error()
			break
		}
		st.Healthy = true
		st.Role = info.Role
		st.Ready = info.Ready
		st.Seq = info.Seq
		st.LagSeqs = info.LagSeqs
	}
	rt.mu.Lock()
	rt.state[peer] = &st
	rt.mu.Unlock()
}

// Start runs the background prober until Stop; the first sweep runs
// before Start returns so the router is immediately routable.
func (rt *Router) Start() {
	rt.ProbeAll()
	go func() {
		defer close(rt.done)
		tick := time.NewTicker(rt.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-rt.stop:
				return
			case <-tick.C:
				rt.ProbeAll()
			}
		}
	}()
}

// Stop halts the background prober.
func (rt *Router) Stop() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
		<-rt.done
	}
}

// HandleCluster serves the router's health view.
func (rt *Router) HandleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Role  string       `json:"role"`
		Peers []PeerStatus `json:"peers"`
	}{Role: RoleRouter, Peers: rt.Peers()})
}
