package cluster

import "repro/internal/obs"

// M holds the package's metric hooks, nil until Instrument is called;
// obs metric methods are no-ops on nil receivers, so uninstrumented
// clusters record nothing.
var M Metrics

// Metrics are the replication and routing signals.
type Metrics struct {
	// Leader side: frames (records) and raw bytes shipped to followers,
	// bootstrap documents served, and per-fetch serve latency — the
	// histogram retains exemplars linking buckets to repl.ship spans.
	ShippedFrames    *obs.Counter
	ShippedBytes     *obs.Counter
	BootstrapsServed *obs.Counter
	ShipSeconds      *obs.Histogram
	// Follower side: fetch round-trips and failures, round-trip latency,
	// records applied, re-bootstraps after compaction outran the cursor,
	// and the current lag gauges.
	Fetches        *obs.Counter
	FetchErrors    *obs.Counter
	FetchSeconds   *obs.Histogram
	AppliedRecords *obs.Counter
	Rebootstraps   *obs.Counter
	LagSeqs        *obs.Gauge
	LagSeconds     *obs.FloatGauge
	// Promotions counts follower→leader flips.
	Promotions *obs.Counter
	// Router side: proxied and redirected requests, proxy transport
	// errors by peer, requests with no eligible peer, and probe outcomes.
	RouterForwards    *obs.Counter
	RouterRedirects   *obs.Counter
	RouterProxyErrors *obs.CounterVec
	RouterNoPeer      *obs.Counter
	Probes            *obs.Counter
	ProbeFailures     *obs.Counter
	// Fleet fan-out: /v1/cluster/{status,traces} aggregation sweeps and
	// the per-peer calls within them that failed.
	Fanouts          *obs.Counter
	FanoutPeerErrors *obs.Counter
}

// Instrument registers the cluster metric families on reg and points
// the hooks at them.
func Instrument(reg *obs.Registry) {
	M = Metrics{
		ShippedFrames: reg.Counter("drm_repl_shipped_frames_total",
			"WAL records shipped to followers."),
		ShippedBytes: reg.Counter("drm_repl_shipped_bytes_total",
			"Raw WAL segment bytes shipped to followers."),
		BootstrapsServed: reg.Counter("drm_repl_bootstraps_served_total",
			"Bootstrap documents (snapshot + watermark prefix) served."),
		ShipSeconds: reg.Histogram("drm_repl_ship_seconds",
			"Leader-side wall time of one WAL fetch (exemplars link to repl.ship spans).", nil),
		Fetches: reg.Counter("drm_repl_fetch_total",
			"Follower fetch round-trips."),
		FetchErrors: reg.Counter("drm_repl_fetch_errors_total",
			"Follower fetch round-trips that failed."),
		FetchSeconds: reg.Histogram("drm_repl_fetch_seconds",
			"Follower-side wall time of one fetch round-trip.", nil),
		AppliedRecords: reg.Counter("drm_repl_applied_records_total",
			"Shipped records ingested and applied by this follower."),
		Rebootstraps: reg.Counter("drm_repl_rebootstrap_total",
			"Follower re-bootstraps after leader compaction outran the cursor."),
		LagSeqs: reg.Gauge("drm_repl_lag_seqs",
			"Replication lag in sequence numbers (leader durable - local durable)."),
		LagSeconds: reg.FloatGauge("drm_repl_lag_seconds",
			"Seconds since the follower's last successful fetch."),
		Promotions: reg.Counter("drm_repl_promotions_total",
			"Follower-to-leader promotions."),
		RouterForwards: reg.Counter("drm_router_forward_total",
			"Requests proxied to their owning shard."),
		RouterRedirects: reg.Counter("drm_router_redirect_total",
			"Requests answered with a 307 to their owning shard."),
		RouterProxyErrors: reg.CounterVec("drm_router_proxy_errors_total",
			"Proxy round-trips that failed after routing, by peer.", "peer"),
		RouterNoPeer: reg.Counter("drm_router_no_peer_total",
			"Requests refused because no eligible peer was routable."),
		Probes: reg.Counter("drm_router_probe_total",
			"Peer health probes issued."),
		ProbeFailures: reg.Counter("drm_router_probe_failures_total",
			"Peer health probes that failed."),
		Fanouts: reg.Counter("drm_router_fanout_total",
			"Fleet aggregation sweeps (/v1/cluster/status, /v1/cluster/traces)."),
		FanoutPeerErrors: reg.Counter("drm_router_fanout_peer_errors_total",
			"Per-peer calls within a fleet fan-out that failed."),
	}
}
