// Leader side of log shipping: thin HTTP handlers over the WAL's ship
// API. ReadFrames only ever serves fsync-covered whole frames, so a
// torn leader tail is invisible to followers by construction — the
// acked ⊆ shipped ⊆ durable invariant costs nothing here.

package cluster

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/trace"
	"repro/internal/wal"
)

// DefaultMaxBytes is the per-fetch frame window when the client does
// not ask for one: large enough to amortise round-trips, small enough
// that a catch-up follower streams rather than buffers the whole log.
const DefaultMaxBytes = 1 << 20

// Leader serves a WAL store's replication endpoints.
type Leader struct {
	store *wal.Store
	// maxBytes caps the frame window of one fetch regardless of what the
	// client requests.
	maxBytes int
}

// NewLeader wraps store for serving; maxBytes <= 0 means
// DefaultMaxBytes.
func NewLeader(store *wal.Store, maxBytes int) *Leader {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Leader{store: store, maxBytes: maxBytes}
}

// Mount registers the replication routes on mux. The role route is NOT
// mounted — the server composes RoleInfo itself (it knows about
// draining and readiness) — so Mount stays usable in tests and tools.
func (l *Leader) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/repl/wal", l.HandleWAL)
	mux.HandleFunc("GET /v1/repl/snapshot", l.HandleSnapshot)
}

// HandleWAL serves one frame window past the requested watermark.
func (l *Leader) HandleWAL(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ctx, sp := trace.Start(r.Context(), "repl.ship")
	cur, err := parseCursor(r)
	if err != nil {
		if sp != nil {
			sp.Fail(err)
			sp.End()
		}
		writeErr(ctx, w, err)
		return
	}
	maxBytes := l.maxBytes
	if s := r.URL.Query().Get("max_bytes"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 && n < maxBytes {
			maxBytes = n
		}
	}
	batch, err := l.store.ReadFrames(cur, maxBytes)
	if sp != nil {
		sp.SetAttr("cursor", cur.String())
		sp.SetInt("records", int64(batch.Records))
		sp.SetInt("bytes", int64(len(batch.Data)))
		sp.Fail(err)
		sp.End()
	}
	if err != nil {
		writeErr(ctx, w, err)
		return
	}
	M.ShippedFrames.Add(int64(batch.Records))
	M.ShippedBytes.Add(int64(len(batch.Data)))
	if M.ShipSeconds != nil {
		M.ShipSeconds.ObserveExemplar(time.Since(start).Seconds(), trace.IDFromContext(ctx))
	}
	writeJSON(w, http.StatusOK, ShipResponse{Batch: batch, LeaderSeq: l.store.SyncedSeq()})
}

// HandleSnapshot serves the bootstrap document a fresh (or compacted-
// past) follower installs before tailing.
func (l *Leader) HandleSnapshot(w http.ResponseWriter, r *http.Request) {
	ctx, sp := trace.Start(r.Context(), "repl.bootstrap")
	doc, err := l.store.Bootstrap()
	if sp != nil {
		sp.Fail(err)
		sp.End()
	}
	if err != nil {
		writeErr(ctx, w, err)
		return
	}
	M.BootstrapsServed.Inc()
	writeJSON(w, http.StatusOK, doc)
}

// Role composes the leader's role-probe body.
func (l *Leader) Role(ready bool) RoleInfo {
	return RoleInfo{Role: RoleLeader, Ready: ready, Seq: l.store.SyncedSeq()}
}
