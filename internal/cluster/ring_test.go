package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("content-%04d/usage", i)
	}
	return keys
}

// TestRingEveryKeyHasExactlyOneOwner: ownership is total and stable —
// every key maps to an owner, repeated lookups agree, and the owner is
// a member peer.
func TestRingEveryKeyHasExactlyOneOwner(t *testing.T) {
	r := NewRing(0)
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	for _, p := range peers {
		r.Add(p)
	}
	members := make(map[string]bool)
	for _, p := range r.Peers() {
		members[p] = true
	}
	counts := make(map[string]int)
	for _, k := range testKeys(10000) {
		owner, ok := r.Owner(k)
		if !ok {
			t.Fatalf("key %q has no owner", k)
		}
		if !members[owner] {
			t.Fatalf("key %q owned by non-member %q", k, owner)
		}
		again, _ := r.Owner(k)
		if again != owner {
			t.Fatalf("key %q owner unstable: %q then %q", k, owner, again)
		}
		counts[owner]++
	}
	// Virtual nodes keep the shares roughly uniform: no peer owns more
	// than twice its fair share.
	fair := 10000 / len(peers)
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("peer %s owns no keys", p)
		}
		if c > 2*fair {
			t.Fatalf("peer %s owns %d of 10000 keys (fair share %d)", p, c, fair)
		}
	}
}

// TestRingAddRemapsAtMostFairShare: adding a peer moves keys only TO
// the new peer (no shuffling between existing peers), and the moved
// fraction stays near K/(n+1) — bounded here by K/n, the acceptance
// bound.
func TestRingAddRemapsAtMostFairShare(t *testing.T) {
	const K = 10000
	keys := testKeys(K)
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(0)
	for _, p := range peers {
		r.Add(p)
	}
	before := make(map[string]string, K)
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	const added = "http://e:1"
	r.Add(added)
	moved := 0
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != added {
			t.Fatalf("key %q moved %q → %q, not to the added peer", k, before[k], after)
		}
	}
	if bound := K / len(peers); moved > bound {
		t.Fatalf("adding a peer moved %d of %d keys, want <= K/n = %d", moved, K, bound)
	}
	if moved == 0 {
		t.Fatal("adding a peer moved no keys")
	}
	// Removing it restores the exact prior assignment.
	r.Remove(added)
	for _, k := range keys {
		if owner, _ := r.Owner(k); owner != before[k] {
			t.Fatalf("key %q owner %q after remove, want %q", k, owner, before[k])
		}
	}
}

// TestRingOwnerWhereFallsToSuccessor: an ineligible owner is skipped in
// successor order; keys owned by eligible peers do not move.
func TestRingOwnerWhereFallsToSuccessor(t *testing.T) {
	r := NewRing(0)
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, p := range peers {
		r.Add(p)
	}
	down := "http://b:1"
	up := func(p string) bool { return p != down }
	for _, k := range testKeys(2000) {
		owner, _ := r.Owner(k)
		routed, ok := r.OwnerWhere(k, up)
		if !ok {
			t.Fatalf("key %q unroutable with one peer down", k)
		}
		if routed == down {
			t.Fatalf("key %q routed to the down peer", k)
		}
		if owner != down && routed != owner {
			t.Fatalf("key %q moved %q → %q though its owner is up", k, owner, routed)
		}
	}
	if _, ok := r.OwnerWhere("anything", func(string) bool { return false }); ok {
		t.Fatal("OwnerWhere found an owner with no eligible peers")
	}
}

func TestRingEmptyAndKeyForPath(t *testing.T) {
	if _, ok := NewRing(0).Owner("k"); ok {
		t.Fatal("empty ring returned an owner")
	}
	cases := map[string]string{
		"/v1/c/film-7/usage/issue":  "film-7/usage",
		"/v1/c/film-7/usage":        "film-7/usage",
		"/v1/c/film-7":              "",
		"/v1/issue":                 "",
		"/v1/contents":              "",
		"/v1/c/a%20b/redist/corpus": "a%20b/redist",
	}
	for path, want := range cases {
		if got := KeyForPath(path); got != want {
			t.Fatalf("KeyForPath(%q) = %q, want %q", path, got, want)
		}
	}
}
