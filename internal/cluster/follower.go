// Follower side of log shipping: a fetch loop that tails the leader's
// WAL from the local durable watermark, ingests each window byte for
// byte (wal.IngestFrames), and hands the decoded records to an apply
// callback so the serving layer keeps its derived state — stats and the
// headroom admission cache — warm without replaying the log. A follower
// whose cursor fell below the leader's snapshot watermark (410 Gone)
// re-bootstraps: it fetches the leader's snapshot + watermark prefix
// and asks the server to rebuild its store from it.
//
// Promotion drains the loop — the in-flight fetch finishes, one final
// best-effort catch-up runs — and then the store is simply appendable:
// the mirror is byte-identical to the leader's durable prefix, so the
// promoted follower continues the same log.

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drmerr"
	"repro/internal/logstore"
	"repro/internal/trace"
	"repro/internal/wal"
)

// FollowerConfig wires a follower to its leader and its serving layer.
type FollowerConfig struct {
	// Leader is the leader's base URL (e.g. "http://10.0.0.1:8080").
	Leader string
	// Client is the HTTP client for fetches (http.DefaultClient when nil).
	Client *http.Client
	// Store is the local WAL mirror, already opened (recovery replayed).
	Store *wal.Store
	// MaxBytes caps one fetch window (DefaultMaxBytes when <= 0).
	MaxBytes int
	// Interval paces the fetch loop (time.Second when <= 0).
	Interval time.Duration
	// MaxLagSeqs / MaxLagAge bound the lag beyond which ReadyErr reports
	// the follower unready (0 disables each bound).
	MaxLagSeqs int64
	MaxLagAge  time.Duration
	// Apply folds freshly ingested records into derived state
	// (engine.Distributor.ApplyReplicated on the server); may be nil.
	Apply func(ctx context.Context, recs []logstore.Record)
	// Reset rebuilds the local mirror from a leader bootstrap document
	// after compaction outran the cursor: close the old store, reinstall
	// (see ReinstallStore), rebuild derived state, return the new store.
	// Nil followers fail the fetch instead of re-bootstrapping.
	Reset func(ctx context.Context, doc *wal.BootstrapDoc) (*wal.Store, error)
	// OnError observes fetch-loop errors (nil ignores them).
	OnError func(err error)
	// Tracer, when set, roots a "repl.fetch" span around each fetch
	// round-trip and injects it into the leader calls, so the leader's
	// repl.ship/repl.bootstrap spans join the follower's trace ID.
	Tracer *trace.Tracer
}

// Lag is a follower's distance behind its leader.
type Lag struct {
	// Seqs is leader durable seq minus local durable seq (>= 0).
	Seqs int64 `json:"seqs"`
	// Seconds is the wall time since the last successful fetch.
	Seconds float64 `json:"seconds"`
	// LeaderSeq / LocalSeq are the raw sequence numbers behind Seqs.
	LeaderSeq uint64 `json:"leader_seq"`
	LocalSeq  uint64 `json:"local_seq"`
}

// Follower tails one leader. Safe for concurrent use: fetches are
// serialised, lag reads are lock-free.
type Follower struct {
	cfg FollowerConfig

	fetchMu sync.Mutex // serialises FetchOnce/Sync/rebootstrap

	mu     sync.RWMutex
	store  *wal.Store
	cursor wal.Cursor

	leaderSeq atomic.Uint64
	lastFetch atomic.Int64 // UnixNano of the last successful fetch
	promoted  atomic.Bool

	stop chan struct{}
	done chan struct{}
}

// NewFollower builds a follower positioned at its store's durable
// watermark.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Store == nil {
		return nil, drmerr.New(drmerr.KindInvalidInput, "cluster.follower",
			"cluster: follower needs an open WAL store")
	}
	if cfg.Leader == "" {
		return nil, drmerr.New(drmerr.KindInvalidInput, "cluster.follower",
			"cluster: follower needs a leader URL")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	f := &Follower{
		cfg:    cfg,
		store:  cfg.Store,
		cursor: cfg.Store.DurableCursor(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	f.lastFetch.Store(time.Now().UnixNano())
	f.leaderSeq.Store(f.cursor.Seq)
	return f, nil
}

// Store returns the current local mirror (it changes across a
// re-bootstrap).
func (f *Follower) Store() *wal.Store {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.store
}

// Lag returns the current lag estimate.
func (f *Follower) Lag() Lag {
	f.mu.RLock()
	local := f.cursor.Seq
	f.mu.RUnlock()
	leader := f.leaderSeq.Load()
	var seqs int64
	if leader > local {
		seqs = int64(leader - local)
	}
	return Lag{
		Seqs:      seqs,
		Seconds:   time.Since(time.Unix(0, f.lastFetch.Load())).Seconds(),
		LeaderSeq: leader,
		LocalSeq:  local,
	}
}

// ReadyErr reports nil while the follower is within its lag bounds, and
// a KindReplicaLag error once either configured bound is exceeded.
func (f *Follower) ReadyErr() error {
	lag := f.Lag()
	if f.cfg.MaxLagSeqs > 0 && lag.Seqs > f.cfg.MaxLagSeqs {
		return drmerr.New(drmerr.KindReplicaLag, "cluster.follower",
			"cluster: replica %d seqs behind leader (bound %d)", lag.Seqs, f.cfg.MaxLagSeqs)
	}
	if f.cfg.MaxLagAge > 0 && lag.Seconds > f.cfg.MaxLagAge.Seconds() {
		return drmerr.New(drmerr.KindReplicaLag, "cluster.follower",
			"cluster: last successful fetch %.1fs ago (bound %s)", lag.Seconds, f.cfg.MaxLagAge)
	}
	return nil
}

// Role composes the follower's role-probe body.
func (f *Follower) Role() RoleInfo {
	if f.promoted.Load() {
		return RoleInfo{Role: RoleLeader, Ready: true, Seq: f.Store().SyncedSeq()}
	}
	lag := f.Lag()
	return RoleInfo{
		Role:       RoleFollower,
		Ready:      f.ReadyErr() == nil,
		Seq:        lag.LocalSeq,
		LagSeqs:    lag.Seqs,
		LagSeconds: lag.Seconds,
		Leader:     f.cfg.Leader,
	}
}

// Promoted reports whether Promote has run.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// FetchOnce runs one fetch round-trip: at most one window of frames is
// ingested and applied. It returns the number of records ingested; 0
// with a nil error means caught up. With a Tracer configured, the
// round-trip runs under a "repl.fetch" root span whose context getJSON
// injects into the leader calls — the root lives here, not in
// fetchLocked, so a 410-triggered re-bootstrap plus the retry fetch
// stay one trace.
func (f *Follower) FetchOnce(ctx context.Context) (int, error) {
	f.fetchMu.Lock()
	defer f.fetchMu.Unlock()
	ctx, sp := f.cfg.Tracer.Root(ctx, "repl.fetch")
	n, err := f.fetchLocked(ctx)
	if sp != nil {
		sp.SetInt("records", int64(n))
		sp.Fail(err)
		sp.End()
	}
	return n, err
}

func (f *Follower) fetchLocked(ctx context.Context) (int, error) {
	f.mu.RLock()
	store, cur := f.store, f.cursor
	f.mu.RUnlock()

	u := fmt.Sprintf("%s/v1/repl/wal?segment=%d&offset=%d&seq=%d&max_bytes=%d",
		f.cfg.Leader, cur.Segment, cur.Offset, cur.Seq, f.cfg.MaxBytes)
	M.Fetches.Inc()
	start := time.Now()
	var resp ShipResponse
	status, err := f.getJSON(ctx, u, &resp)
	if err != nil {
		M.FetchErrors.Inc()
		return 0, err
	}
	if status == http.StatusGone {
		// The leader compacted past our cursor: the tail we need no
		// longer exists as segments. Rebuild from its snapshot, then
		// fetch again so progress (and the leader seq) stay current.
		if err := f.rebootstrapLocked(ctx); err != nil {
			return 0, err
		}
		return f.fetchLocked(ctx)
	}
	if status != http.StatusOK {
		M.FetchErrors.Inc()
		return 0, drmerr.New(drmerr.KindUnavailable, "cluster.fetch",
			"cluster: leader answered %d for %s", status, cur)
	}
	if M.FetchSeconds != nil {
		M.FetchSeconds.Observe(time.Since(start).Seconds())
	}

	batch := resp.Batch
	next := batch.Next
	var recs []logstore.Record
	if len(batch.Data) > 0 {
		// Ingest from batch.Start, not our cursor: ReadFrames may have
		// advanced across a sealed-segment boundary before finding data.
		got, r, err := store.IngestFrames(batch.Start, batch.Data)
		if err != nil {
			M.FetchErrors.Inc()
			return 0, err
		}
		if got != next {
			M.FetchErrors.Inc()
			return 0, drmerr.New(drmerr.KindStoreCorrupt, "cluster.fetch",
				"cluster: ingest landed at %s, leader said %s", got, next)
		}
		recs = r
		M.AppliedRecords.Add(int64(len(recs)))
	}
	f.mu.Lock()
	f.cursor = next
	f.mu.Unlock()
	f.leaderSeq.Store(resp.LeaderSeq)
	f.lastFetch.Store(time.Now().UnixNano())
	f.observeLag()
	if len(recs) > 0 && f.cfg.Apply != nil {
		f.cfg.Apply(ctx, recs)
	}
	return len(recs), nil
}

// Sync drains the leader: fetches until a round-trip ingests nothing
// and the cursor has reached the leader's durable seq.
func (f *Follower) Sync(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return drmerr.Wrap(drmerr.KindCancelled, "cluster.sync", err)
		}
		n, err := f.FetchOnce(ctx)
		if err != nil {
			return err
		}
		f.mu.RLock()
		cur := f.cursor
		f.mu.RUnlock()
		if n == 0 && cur.Seq >= f.leaderSeq.Load() {
			return nil
		}
	}
}

// Run is the fetch loop: a Sync per interval tick until ctx is done or
// Promote drains it. Always call Run at most once.
func (f *Follower) Run(ctx context.Context) {
	defer close(f.done)
	tick := time.NewTicker(f.cfg.Interval)
	defer tick.Stop()
	for {
		if err := f.Sync(ctx); err != nil && ctx.Err() == nil && f.cfg.OnError != nil {
			f.cfg.OnError(err)
		}
		select {
		case <-ctx.Done():
			return
		case <-f.stop:
			return
		case <-tick.C:
		}
	}
}

// Promote flips the follower to leader: the fetch loop is drained (the
// in-flight fetch completes), one final best-effort catch-up runs —
// best-effort because the usual reason to promote is a dead leader —
// and the promoted flag flips. The caller then clears its distributor's
// read-only gate and starts serving writes; the mirror store is already
// appendable and byte-identical to the leader's durable prefix.
func (f *Follower) Promote(ctx context.Context) Lag {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	if ctx != nil {
		_ = f.Sync(ctx) // best-effort final catch-up
	}
	f.promoted.Store(true)
	M.Promotions.Inc()
	return f.Lag()
}

// Done is closed when Run exits.
func (f *Follower) Done() <-chan struct{} { return f.done }

// rebootstrapLocked fetches the leader's bootstrap document and hands
// it to the Reset callback, repositioning at the new store's watermark.
func (f *Follower) rebootstrapLocked(ctx context.Context) error {
	if f.cfg.Reset == nil {
		return drmerr.New(drmerr.KindUnavailable, "cluster.bootstrap",
			"cluster: cursor compacted away and no Reset callback configured")
	}
	var doc wal.BootstrapDoc
	status, err := f.getJSON(ctx, f.cfg.Leader+"/v1/repl/snapshot", &doc)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return drmerr.New(drmerr.KindUnavailable, "cluster.bootstrap",
			"cluster: leader answered %d for bootstrap", status)
	}
	ns, err := f.cfg.Reset(ctx, &doc)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.store = ns
	f.cursor = ns.DurableCursor()
	f.mu.Unlock()
	M.Rebootstraps.Inc()
	return nil
}

func (f *Follower) observeLag() {
	lag := f.Lag()
	M.LagSeqs.Set(lag.Seqs)
	M.LagSeconds.Set(lag.Seconds)
}

// getJSON GETs url and decodes a JSON body into v for 200 responses;
// other statuses return with the body drained and v untouched.
func (f *Follower) getJSON(ctx context.Context, url string, v any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	trace.Inject(ctx, req.Header)
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return resp.StatusCode, drmerr.Wrap(drmerr.KindStoreCorrupt, "cluster.fetch", err)
	}
	return resp.StatusCode, nil
}

// ReinstallStore wipes dir, installs the bootstrap document, and opens
// a fresh store over it — the storage half of a Reset callback (the
// serving layer still rebuilds its distributor over the new store).
func ReinstallStore(dir string, doc *wal.BootstrapDoc, opts wal.Options) (*wal.Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return nil, err
		}
	}
	if err := wal.InstallBootstrap(dir, doc); err != nil {
		return nil, err
	}
	return wal.Open(dir, opts)
}

// ParseMaxLag parses a -max-lag flag value: a bare integer is a
// sequence-distance bound, a Go duration is a wall-time bound since the
// last successful fetch, and "0" disables both.
func ParseMaxLag(s string) (seqs int64, age time.Duration, err error) {
	if s == "" || s == "0" {
		return 0, 0, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return 0, 0, fmt.Errorf("cluster: max-lag %d, want >= 0", n)
		}
		return n, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: max-lag %q is neither a sequence count nor a duration", s)
	}
	if d < 0 {
		return 0, 0, fmt.Errorf("cluster: max-lag %s, want >= 0", d)
	}
	return 0, d, nil
}
