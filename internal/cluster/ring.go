// Package cluster scales the validation service out horizontally with
// two cooperating mechanisms. A consistent-hash ring with virtual nodes
// maps catalog keys (content/permission pairs) onto a static peer list,
// so a stateless router in front of the shards forwards each request to
// the peer owning its key — and adding a peer remaps only ~K/n keys
// instead of reshuffling everything. Within a shard, a log-shipping
// replication protocol streams the leader's WAL to followers byte for
// byte (wal.ReadFrames / wal.IngestFrames): followers recover through
// the ordinary replay path, serve read-only audits and headroom with a
// warm cache, report their lag, and can be promoted to leader after the
// fetch loop drains — the verified failover path.
//
// The package deliberately does not import internal/engine: the server
// hands it apply callbacks, and engine.InstrumentAll can register this
// package's metrics without an import cycle.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is the virtual-node count per peer. 128 vnodes keeps
// the per-peer share of the key space within a few percent of uniform
// for small clusters while the ring stays a few KiB.
const DefaultVnodes = 128

// Ring is a consistent-hash ring over a peer set: each peer is hashed
// onto the ring at vnodes points (FNV-1a of "peer#i"), and a key is
// owned by the first vnode clockwise from the key's hash. Safe for
// concurrent use; Add/Remove rebuild the sorted point list.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	peers  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing returns an empty ring with the given virtual-node count per
// peer (DefaultVnodes when v <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, peers: make(map[string]struct{})}
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts peer's virtual nodes; adding a present peer is a no-op.
func (r *Ring) Add(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[peer]; ok {
		return
	}
	r.peers[peer] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hashKey(fmt.Sprintf("%s#%d", peer, i)), peer})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes peer's virtual nodes; removing an absent peer is a
// no-op.
func (r *Ring) Remove(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[peer]; !ok {
		return
	}
	delete(r.peers, peer)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.peer != peer {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Peers returns the member peers, sorted.
func (r *Ring) Peers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.peers))
	for p := range r.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of member peers.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.peers)
}

// Owner returns the peer owning key: the first vnode at or clockwise
// from the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (peer string, ok bool) {
	return r.OwnerWhere(key, nil)
}

// OwnerWhere returns the first owner clockwise from key's hash whose
// peer satisfies eligible (every peer, when eligible is nil). Distinct
// vnodes of one ineligible peer are skipped as a unit, so the fallback
// order is the successor-peer order the ring already defines — the
// property routing uses to steer around an unhealthy owner without
// remapping healthy keys.
func (r *Ring) OwnerWhere(key string, eligible func(peer string) bool) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.points)
	if n == 0 {
		return "", false
	}
	h := hashKey(key)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h }) % n
	seen := make(map[string]struct{}, len(r.peers))
	for i := 0; i < n; i++ {
		p := r.points[(start+i)%n].peer
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		if eligible == nil || eligible(p) {
			return p, true
		}
	}
	return "", false
}
