// Replication wire protocol: the leader exposes three read-only HTTP
// endpoints a follower polls —
//
//	GET /v1/repl/wal?segment=S&offset=O&seq=Q[&max_bytes=N]
//	    → ShipResponse: the next window of durable WAL frames past the
//	      (segment, offset, seq) watermark, raw segment bytes base64'd
//	      by encoding/json, plus the leader's durable seq for lag math.
//	      410 Gone when the cursor fell below the snapshot watermark
//	      (segments compacted away): re-bootstrap.
//	GET /v1/repl/snapshot
//	    → wal.BootstrapDoc: snapshot JSON + watermark segment prefix,
//	      everything a fresh follower needs to start tailing.
//	GET /v1/repl/role
//	    → RoleInfo: which role this peer plays and, for followers, how
//	      far behind it is. Routers probe this; a 404 means a peer
//	      predating the cluster subsystem, treated as a ready leader.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/drmerr"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Role names for RoleInfo.Role.
const (
	RoleLeader     = "leader"
	RoleFollower   = "follower"
	RoleRouter     = "router"
	RoleStandalone = "standalone"
)

// ShipResponse is one WAL fetch round-trip: the frame window and the
// leader's durable sequence number at serve time (the follower's lag
// reference).
type ShipResponse struct {
	Batch     wal.Batch `json:"batch"`
	LeaderSeq uint64    `json:"leader_seq"`
}

// RoleInfo is the role-probe body every cluster peer serves at
// /v1/repl/role.
type RoleInfo struct {
	// Role is one of the Role* constants.
	Role string `json:"role"`
	// Ready mirrors /v1/readyz: followers beyond their lag bound and
	// draining peers report false.
	Ready bool `json:"ready"`
	// Seq is the peer's durable WAL sequence number (0 without a WAL).
	Seq uint64 `json:"seq"`
	// LagSeqs / LagSeconds quantify a follower's distance behind its
	// leader: sequence numbers not yet applied, and wall time since the
	// last successful fetch.
	LagSeqs    int64   `json:"lag_seqs,omitempty"`
	LagSeconds float64 `json:"lag_seconds,omitempty"`
	// Leader is the follower's leader URL (empty on other roles).
	Leader string `json:"leader,omitempty"`
}

// errBody matches the server's structured error shape: a message, the
// drmerr taxonomy kind when the error carries one, and the request's
// trace ID when tracing is on — the handle a caller quotes against
// /debug/traces/{id} (or /v1/cluster/traces/{id} for routed requests).
type errBody struct {
	Error   string `json:"error"`
	Kind    string `json:"kind,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps err to its HTTP status — 410 Gone for wal.ErrCompacted
// (the re-bootstrap signal), the drmerr taxonomy mapping otherwise —
// with a structured body stamped with ctx's trace ID.
func writeErr(ctx context.Context, w http.ResponseWriter, err error) {
	status := drmerr.HTTPStatus(err)
	if errors.Is(err, wal.ErrCompacted) {
		status = http.StatusGone
	}
	b := errBody{Error: err.Error(), TraceID: trace.IDFromContext(ctx)}
	if k := drmerr.KindOf(err); k != drmerr.KindUnknown {
		b.Kind = k.String()
	}
	writeJSON(w, status, b)
}

// decodeBody decodes a JSON response body into v and closes it.
func decodeBody(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// parseCursor decodes the watermark query parameters of a WAL fetch.
func parseCursor(r *http.Request) (wal.Cursor, error) {
	q := r.URL.Query()
	seg, err := strconv.ParseUint(q.Get("segment"), 10, 64)
	if err != nil {
		return wal.Cursor{}, drmerr.New(drmerr.KindInvalidInput, "cluster.ship",
			"cluster: bad segment %q", q.Get("segment"))
	}
	off, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil {
		return wal.Cursor{}, drmerr.New(drmerr.KindInvalidInput, "cluster.ship",
			"cluster: bad offset %q", q.Get("offset"))
	}
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		return wal.Cursor{}, drmerr.New(drmerr.KindInvalidInput, "cluster.ship",
			"cluster: bad seq %q", q.Get("seq"))
	}
	return wal.Cursor{Segment: seg, Offset: off, Seq: seq}, nil
}
