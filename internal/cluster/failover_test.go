package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/drmerr"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The failover property test extends the WAL crash-injection harness
// across the wire: a leader appends under a byte budget until the
// injected "power cut", a follower tails it over real HTTP handlers the
// whole time, drains the durable prefix after the crash, and is
// promoted. The promoted follower must satisfy the same invariant the
// single-node recovery sweep proves —
//
//	acked ⊆ recovered ⊆ attempted
//
// — with records a byte-exact prefix of the workload and an audit
// report identical to an uninterrupted in-memory store holding the same
// prefix.

var errFailCrash = errors.New("cluster_test: injected crash")

// failBudget / failFile mirror the wal package's crash harness: writes
// pass through until the shared byte budget trips, then the disk is
// gone.
type failBudget struct {
	mu        sync.Mutex
	remaining int64
	tripped   bool
	written   int64
}

type failFile struct {
	f *os.File
	b *failBudget
}

func (c *failFile) Write(p []byte) (int, error) {
	c.b.mu.Lock()
	defer c.b.mu.Unlock()
	if c.b.tripped {
		return 0, errFailCrash
	}
	n := len(p)
	if int64(n) > c.b.remaining {
		n = int(c.b.remaining)
		c.b.tripped = true
	}
	c.b.remaining -= int64(n)
	if n > 0 {
		if _, err := c.f.Write(p[:n]); err != nil {
			return 0, err
		}
		c.b.written += int64(n)
	}
	if c.b.tripped {
		return n, errFailCrash
	}
	return n, nil
}

func (c *failFile) Sync() error {
	c.b.mu.Lock()
	tripped := c.b.tripped
	c.b.mu.Unlock()
	if tripped {
		return errFailCrash
	}
	return c.f.Sync()
}

func (c *failFile) Close() error { return c.f.Close() }

func failHook(b *failBudget) func(string, int) (wal.SegFile, error) {
	return func(path string, flag int) (wal.SegFile, error) {
		f, err := os.OpenFile(path, flag, 0o644)
		if err != nil {
			return nil, err
		}
		return &failFile{f: f, b: b}, nil
	}
}

func failoverWorkload(t *testing.T) (*license.Corpus, []logstore.Record) {
	t.Helper()
	cfg := workload.Default(8)
	cfg.RecordsPerLicense = 8
	w, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w.Corpus, w.Records
}

func report(t *testing.T, corpus *license.Corpus, log logstore.Store) core.Report {
	t.Helper()
	aud, err := core.NewAuditor(corpus, log)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := aud.Audit()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func records(t *testing.T, s logstore.Store) []logstore.Record {
	t.Helper()
	var out []logstore.Record
	if err := s.ForEach(func(r logstore.Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

// leaderServer mounts the replication handlers over store.
func leaderServer(t *testing.T, store *wal.Store) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	NewLeader(store, 0).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// measureLeaderBytes runs the workload with an unlimited budget and
// returns the total bytes written — the injection sweep range.
func measureLeaderBytes(t *testing.T, opts wal.Options, recs []logstore.Record) int64 {
	t.Helper()
	b := &failBudget{remaining: math.MaxInt64}
	opts.OpenSegFile = failHook(b)
	s, err := wal.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return b.written
}

func TestFailoverAckedSubsetOfPromoted(t *testing.T) {
	corpus, recs := failoverWorkload(t)
	opts := wal.Options{SegmentBytes: 16 + 5*24} // ~5 v1 frames per segment
	total := measureLeaderBytes(t, opts, recs)
	step := total / 24
	if step < 1 {
		step = 1
	}
	root := t.TempDir()
	ctx := context.Background()
	swept := 0
	for off := int64(0); off <= total; off += step {
		swept++
		ldir := filepath.Join(root, fmt.Sprintf("leader-%06d", off))
		fdir := filepath.Join(root, fmt.Sprintf("follower-%06d", off))
		b := &failBudget{remaining: off}
		inj := opts
		inj.OpenSegFile = failHook(b)
		lstore, err := wal.Open(ldir, inj)
		if err != nil {
			if !errors.Is(err, errFailCrash) {
				t.Fatalf("offset %d: open: %v", off, err)
			}
			continue // crashed before the first append could be attempted
		}
		srv := leaderServer(t, lstore)
		fstore, err := wal.Open(fdir, opts)
		if err != nil {
			t.Fatal(err)
		}
		var applied []logstore.Record
		f, err := NewFollower(FollowerConfig{
			Leader:   srv.URL,
			Store:    fstore,
			MaxBytes: 128, // small windows: many round-trips per segment
			Apply: func(_ context.Context, rs []logstore.Record) {
				applied = append(applied, rs...)
			},
		})
		if err != nil {
			t.Fatal(err)
		}

		// The leader appends toward its crash while the follower tails
		// mid-batch, like a production fetch loop interleaving with
		// writes.
		acked, attempted := 0, 0
		for i, r := range recs {
			attempted++
			if err := lstore.Append(r); err != nil {
				if !errors.Is(err, errFailCrash) {
					t.Fatalf("offset %d: append: %v", off, err)
				}
				break
			}
			acked++
			if i%5 == 0 {
				if _, err := f.FetchOnce(ctx); err != nil {
					t.Fatalf("offset %d: mid-batch fetch: %v", off, err)
				}
			}
		}

		// The leader's write path is dead; its durable bytes are still
		// readable. Drain them, then the leader disappears for good and
		// the follower is promoted.
		if err := f.Sync(ctx); err != nil {
			t.Fatalf("offset %d: post-crash drain: %v", off, err)
		}
		srv.Close()
		f.Promote(ctx) // final best-effort catch-up against a dead leader
		if !f.Promoted() || f.Role().Role != RoleLeader {
			t.Fatalf("offset %d: follower not promoted", off)
		}

		got := records(t, fstore)
		n := len(got)
		if n < acked {
			t.Fatalf("offset %d: promoted follower lost synced records: %d < acked %d", off, n, acked)
		}
		if n > attempted {
			t.Fatalf("offset %d: promoted follower invented records: %d > attempted %d", off, n, attempted)
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("offset %d: record %d not a workload prefix", off, i)
			}
		}
		if len(applied) != n {
			t.Fatalf("offset %d: apply callback saw %d records, store holds %d", off, len(applied), n)
		}
		mem := logstore.NewMem(n)
		for _, r := range recs[:n] {
			if err := mem.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(report(t, corpus, fstore), report(t, corpus, mem)) {
			t.Fatalf("offset %d: promoted follower's audit differs from uninterrupted store with %d records", off, n)
		}
		// The promoted follower continues the same log.
		if err := fstore.Append(recs[0]); err != nil {
			t.Fatalf("offset %d: append after promotion: %v", off, err)
		}
		if err := fstore.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if swept < 20 {
		t.Fatalf("swept only %d injection offsets, want >= 20", swept)
	}
}

// TestFollowerLagAndReadiness: lag is leader-durable minus local, the
// readiness gate trips past -max-lag, and a full sync clears it.
func TestFollowerLagAndReadiness(t *testing.T) {
	_, recs := failoverWorkload(t)
	opts := wal.Options{SegmentBytes: 16 + 8*24}
	lstore, err := wal.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer lstore.Close()
	for _, r := range recs[:10] {
		if err := lstore.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	srv := leaderServer(t, lstore)
	fstore, err := wal.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fstore.Close()
	f, err := NewFollower(FollowerConfig{
		Leader: srv.URL, Store: fstore,
		MaxBytes:   2 * 24, // two records per round-trip
		MaxLagSeqs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f.FetchOnce(ctx); err != nil {
		t.Fatal(err)
	}
	lag := f.Lag()
	if lag.LeaderSeq != 10 || lag.LocalSeq != 2 || lag.Seqs != 8 {
		t.Fatalf("lag after one window = %+v, want leader 10, local 2", lag)
	}
	err = f.ReadyErr()
	if drmerr.KindOf(err) != drmerr.KindReplicaLag {
		t.Fatalf("ReadyErr %d behind with bound 3: %v, want replica_lag", lag.Seqs, err)
	}
	role := f.Role()
	if role.Role != RoleFollower || role.Ready || role.LagSeqs != 8 {
		t.Fatalf("role while lagging = %+v", role)
	}
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadyErr(); err != nil {
		t.Fatalf("ReadyErr after sync: %v", err)
	}
	if lag := f.Lag(); lag.Seqs != 0 || lag.LocalSeq != 10 {
		t.Fatalf("lag after sync = %+v", lag)
	}
}

// TestFollowerRebootstrapAfterCompaction: a leader that snapshots and
// compacts past a dormant follower's cursor answers 410; the follower
// rebuilds from the bootstrap document via its Reset callback and
// converges to the same records.
func TestFollowerRebootstrapAfterCompaction(t *testing.T) {
	_, recs := failoverWorkload(t)
	opts := wal.Options{SegmentBytes: 16 + 4*24}
	lstore, err := wal.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer lstore.Close()
	for _, r := range recs[:20] {
		if err := lstore.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lstore.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := lstore.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[20:30] {
		if err := lstore.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	srv := leaderServer(t, lstore)

	fdir := t.TempDir()
	fstore, err := wal.Open(fdir, opts)
	if err != nil {
		t.Fatal(err)
	}
	resets := 0
	f, err := NewFollower(FollowerConfig{
		Leader: srv.URL, Store: fstore,
		Reset: func(_ context.Context, doc *wal.BootstrapDoc) (*wal.Store, error) {
			resets++
			if err := fstore.Close(); err != nil {
				return nil, err
			}
			ns, err := ReinstallStore(fdir, doc, opts)
			if err == nil {
				fstore = ns
			}
			return ns, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resets != 1 {
		t.Fatalf("resets = %d, want exactly 1", resets)
	}
	if f.Store() != fstore {
		t.Fatal("follower still points at the pre-bootstrap store")
	}
	// Compaction folded the snapshot prefix into per-set counts; the
	// tail past the watermark must match record for record, and the
	// aggregate picture must match the full workload prefix.
	if got, want := sums(records(t, fstore)), sums(recs[:30]); !reflect.DeepEqual(got, want) {
		t.Fatalf("per-set sums after re-bootstrap diverge: %v != %v", got, want)
	}
	if got, want := fstore.Seq(), lstore.Seq(); got != want {
		t.Fatalf("seq after re-bootstrap = %d, leader %d", got, want)
	}
}

// sums aggregates counts per (set, kind) — the audit-relevant view
// that survives compaction.
func sums(recs []logstore.Record) map[string]int64 {
	out := make(map[string]int64)
	for _, r := range recs {
		out[fmt.Sprintf("%v/%d", r.Set, r.Kind)] += r.Count
	}
	return out
}
