package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakePeer is a shard stub: it answers the role probe with the given
// info (or 404 to play a legacy standalone) and echoes its name on
// every other route.
func fakePeer(t *testing.T, name string, role *RoleInfo) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/role", func(w http.ResponseWriter, r *http.Request) {
		if role == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, role)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Peer", name)
		io.WriteString(w, name)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newTestRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeAll()
	return rt
}

// TestRouterRoleAwareRouting: mutations land only on leaders (legacy
// 404-probe peers count as leaders), reads may land on ready followers,
// and the ring's assignment is respected for healthy owners.
func TestRouterRoleAwareRouting(t *testing.T) {
	leader := fakePeer(t, "leader", &RoleInfo{Role: RoleLeader, Ready: true})
	follower := fakePeer(t, "follower", &RoleInfo{Role: RoleFollower, Ready: true})
	legacy := fakePeer(t, "legacy", nil)
	rt := newTestRouter(t, RouterConfig{Peers: []string{leader.URL, follower.URL, legacy.URL}})

	writers := map[string]bool{leader.URL: true, legacy.URL: true}
	readers := map[string]bool{leader.URL: true, follower.URL: true, legacy.URL: true}
	for i := 0; i < 50; i++ {
		path := "/v1/c/content-" + strings.Repeat("x", i%7) + "/usage/issue"
		wr := httptest.NewRequest(http.MethodPost, path, nil)
		peer, ok := rt.Route(wr)
		if !ok || !writers[peer] {
			t.Fatalf("write %s routed to %q (ok=%v), want a leader", path, peer, ok)
		}
		rr := httptest.NewRequest(http.MethodGet, path, nil)
		peer, ok = rt.Route(rr)
		if !ok || !readers[peer] {
			t.Fatalf("read %s routed to %q (ok=%v), want a ready peer", path, peer, ok)
		}
	}
	if !rt.Ready() {
		t.Fatal("router with healthy leaders reports not ready")
	}
}

// TestRouterProxiesToOwner: the proxied response is the owner's, and
// the same key keeps hitting the same peer.
func TestRouterProxiesToOwner(t *testing.T) {
	a := fakePeer(t, "peer-a", &RoleInfo{Role: RoleLeader, Ready: true})
	b := fakePeer(t, "peer-b", &RoleInfo{Role: RoleLeader, Ready: true})
	rt := newTestRouter(t, RouterConfig{Peers: []string{a.URL, b.URL}})
	front := httptest.NewServer(rt)
	defer front.Close()

	got := make(map[string]string)
	for _, key := range []string{"alpha/usage", "beta/usage", "gamma/usage"} {
		var first string
		for i := 0; i < 3; i++ {
			resp, err := http.Get(front.URL + "/v1/c/" + key + "/corpus")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("key %s: status %d", key, resp.StatusCode)
			}
			if first == "" {
				first = string(body)
			} else if string(body) != first {
				t.Fatalf("key %s flapped between %q and %q", key, first, body)
			}
		}
		got[key] = first
	}
	for key, peer := range got {
		if peer != "peer-a" && peer != "peer-b" {
			t.Fatalf("key %s answered by %q", key, peer)
		}
	}
}

// TestRouterRedirectAndFailover: redirect mode answers 307 with the
// owner's URL; an unhealthy owner is routed around via the successor;
// all peers down yields a typed 503.
func TestRouterRedirectAndFailover(t *testing.T) {
	a := fakePeer(t, "peer-a", &RoleInfo{Role: RoleLeader, Ready: true})
	b := fakePeer(t, "peer-b", &RoleInfo{Role: RoleLeader, Ready: true})
	rt := newTestRouter(t, RouterConfig{Peers: []string{a.URL, b.URL}, Redirect: true})
	front := httptest.NewServer(rt)
	defer front.Close()
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	resp, err := client.Get(front.URL + "/v1/c/alpha/usage/audit?workers=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect mode answered %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc != a.URL+"/v1/c/alpha/usage/audit?workers=2" && loc != b.URL+"/v1/c/alpha/usage/audit?workers=2" {
		t.Fatalf("Location = %q, not an owner URL with the query preserved", loc)
	}
	ownerURL := strings.TrimSuffix(loc, "/v1/c/alpha/usage/audit?workers=2")

	// Kill the owner: its probe now fails, the successor takes over.
	if ownerURL == a.URL {
		a.Close()
	} else {
		b.Close()
	}
	rt.ProbeAll()
	resp, err = client.Get(front.URL + "/v1/c/alpha/usage/audit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("after owner death: %d, want 307 to the successor", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); strings.HasPrefix(got, ownerURL) {
		t.Fatalf("after owner death still redirected to it: %q", got)
	}

	// Kill the survivor too: typed 503.
	a.Close()
	b.Close()
	rt.ProbeAll()
	resp, err = client.Get(front.URL + "/v1/c/alpha/usage/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no peers: %d, want 503", resp.StatusCode)
	}
	var body errBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Kind != "unavailable" {
		t.Fatalf("no peers: kind %q, want unavailable", body.Kind)
	}
	if rt.Ready() {
		t.Fatal("router with no peers reports ready")
	}
}

// TestRouterClusterView: /v1/cluster lists every peer with its probed
// role.
func TestRouterClusterView(t *testing.T) {
	leader := fakePeer(t, "leader", &RoleInfo{Role: RoleLeader, Ready: true, Seq: 42})
	follower := fakePeer(t, "follower", &RoleInfo{Role: RoleFollower, Ready: false, LagSeqs: 7})
	rt := newTestRouter(t, RouterConfig{Peers: []string{leader.URL, follower.URL}})

	rec := httptest.NewRecorder()
	rt.HandleCluster(rec, httptest.NewRequest(http.MethodGet, "/v1/cluster", nil))
	var view struct {
		Role  string       `json:"role"`
		Peers []PeerStatus `json:"peers"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Role != RoleRouter || len(view.Peers) != 2 {
		t.Fatalf("cluster view role=%q peers=%d", view.Role, len(view.Peers))
	}
	byAddr := make(map[string]PeerStatus)
	for _, p := range view.Peers {
		byAddr[p.Addr] = p
	}
	if p := byAddr[leader.URL]; !p.Healthy || p.Role != RoleLeader || p.Seq != 42 {
		t.Fatalf("leader row %+v", p)
	}
	if p := byAddr[follower.URL]; !p.Healthy || p.Role != RoleFollower || p.Ready || p.LagSeqs != 7 {
		t.Fatalf("follower row %+v", p)
	}
	// A lagging follower must not serve reads.
	rr := httptest.NewRequest(http.MethodGet, "/v1/c/k/usage/corpus", nil)
	for i := 0; i < 20; i++ {
		peer, ok := rt.Route(rr)
		if !ok || peer == follower.URL {
			t.Fatalf("read routed to unready follower (peer=%q ok=%v)", peer, ok)
		}
	}
}
