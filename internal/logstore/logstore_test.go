package logstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func TestRecordValidate(t *testing.T) {
	if err := (Record{Set: bitset.MaskOf(0), Count: 5}).Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if err := (Record{Set: 0, Count: 5}).Validate(); err == nil {
		t.Error("empty set accepted")
	}
	if err := (Record{Set: bitset.MaskOf(0), Count: 0}).Validate(); err == nil {
		t.Error("zero count accepted")
	}
	if err := (Record{Set: bitset.MaskOf(0), Count: -3}).Validate(); err == nil {
		t.Error("negative count accepted")
	}
}

func TestMemAppendAndReplay(t *testing.T) {
	m := NewMem(4)
	recs := []Record{
		{Set: bitset.MaskOf(0, 1), Count: 800},
		{Set: bitset.MaskOf(1), Count: 400},
	}
	for _, r := range recs {
		if err := m.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
	got, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if got[i] != r {
			t.Errorf("record %d = %+v, want %+v", i, got[i], r)
		}
	}
	if err := m.Append(Record{}); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestMemForEachStopsOnError(t *testing.T) {
	m := NewMem(0)
	for i := 0; i < 5; i++ {
		if err := m.Append(Record{Set: bitset.MaskOf(i), Count: 1}); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := os.ErrClosed
	n := 0
	err := m.ForEach(func(Record) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel || n != 3 {
		t.Errorf("ForEach stopped after %d with %v", n, err)
	}
}

func TestCompact(t *testing.T) {
	in := []Record{
		{Set: bitset.MaskOf(0, 1), Count: 800},
		{Set: bitset.MaskOf(1), Count: 400},
		{Set: bitset.MaskOf(0, 1), Count: 40},
	}
	out := Compact(in)
	if len(out) != 2 {
		t.Fatalf("Compact len = %d, want 2", len(out))
	}
	// Ordered by mask: {2}=0b10 < {1,2}=0b11.
	if out[0].Set != bitset.MaskOf(1) || out[0].Count != 400 {
		t.Errorf("out[0] = %+v", out[0])
	}
	if out[1].Set != bitset.MaskOf(0, 1) || out[1].Count != 840 {
		t.Errorf("out[1] = %+v", out[1])
	}
}

func TestCompactPreservesTotalQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var in []Record
		var total int64
		for i := 0; i < r.Intn(50); i++ {
			c := int64(1 + r.Intn(100))
			in = append(in, Record{Set: bitset.Mask(1 + r.Intn(255)), Count: c})
			total += c
		}
		var got int64
		for _, rec := range Compact(in) {
			got += rec.Count
		}
		return got == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Set: bitset.MaskOf(0, 1), Count: 800},
		{Set: bitset.MaskOf(4), Count: 20},
	}
	for _, r := range want {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// ForEach flushes implicitly.
	var got []Record
	if err := s.ForEach(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("replay = %+v, want %+v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileReopenCountsExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(Record{Set: bitset.MaskOf(i), Count: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("reopened Len = %d, want 3", s2.Len())
	}
	if err := s2.Append(Record{Set: bitset.MaskOf(9), Count: 2}); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 4 {
		t.Errorf("Len after append = %d, want 4", s2.Len())
	}
	recs, err := Collect(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("Collect = %d records, want 4", len(recs))
	}
}

func TestFileRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(Record{Set: 0, Count: 1}); err == nil {
		t.Error("invalid record accepted")
	}
	if s.Len() != 0 {
		t.Error("invalid record counted")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	err := Read(bytes.NewBufferString("{\"set\":3,\"count\":5}\nnot json\n"),
		func(Record) error { return nil })
	if err == nil {
		t.Error("corrupt log accepted")
	}
	// Structurally invalid records are also rejected.
	err = Read(bytes.NewBufferString("{\"set\":0,\"count\":5}\n"),
		func(Record) error { return nil })
	if err == nil {
		t.Error("empty-set record accepted")
	}
}

func TestWriteAllThenRead(t *testing.T) {
	recs := []Record{
		{Set: bitset.MaskOf(0), Count: 1},
		{Set: bitset.MaskOf(0, 2), Count: 7},
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := Read(&buf, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("round-trip = %+v", got)
	}
}

func TestWriteAllRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []Record{{Set: 0, Count: 1}}); err == nil {
		t.Error("invalid record written")
	}
}

func TestFileMemEquivalenceQuick(t *testing.T) {
	// Property: a File store replays exactly what a Mem store holds after
	// the same appends (invariant 9 in DESIGN.md).
	dir := t.TempDir()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		path := filepath.Join(dir, "q.jsonl")
		os.Remove(path)
		fs, err := OpenFile(path)
		if err != nil {
			return false
		}
		defer fs.Close()
		mem := NewMem(0)
		for i := 0; i < 1+r.Intn(40); i++ {
			rec := Record{Set: bitset.Mask(1 + r.Intn(1<<10)), Count: int64(1 + r.Intn(30))}
			if mem.Append(rec) != nil || fs.Append(rec) != nil {
				return false
			}
		}
		got, err := Collect(fs)
		if err != nil {
			return false
		}
		want := mem.Records()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCompactFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 100 records over 3 distinct sets.
	sets := []bitset.Mask{bitset.MaskOf(0, 1), bitset.MaskOf(1), bitset.MaskOf(2)}
	var total int64
	for i := 0; i < 100; i++ {
		c := int64(1 + i%7)
		if err := s.Append(Record{Set: sets[i%3], Count: c}); err != nil {
			t.Fatal(err)
		}
		total += c
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	before, after, err := CompactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if before != 100 || after != 3 {
		t.Errorf("compacted %d → %d, want 100 → 3", before, after)
	}
	// Totals preserved, per set.
	var back []Record
	if err := ReadFile(path, func(r Record) error { back = append(back, r); return nil }); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range back {
		sum += r.Count
	}
	if sum != total {
		t.Errorf("total = %d, want %d", sum, total)
	}
	// The compacted log can be appended to again.
	s2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Errorf("reopened Len = %d, want 3", s2.Len())
	}
}

func TestCompactFileErrors(t *testing.T) {
	if _, _, err := CompactFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CompactFile(path); err == nil {
		t.Error("corrupt log accepted")
	}
}
