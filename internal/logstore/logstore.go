// Package logstore implements the offline issuance log of §2.1 (Table 2).
//
// Aggregate validation is done offline: every time the distributor issues a
// license, the validation authority appends a record holding the belongs-to
// set of redistribution licenses (as a corpus-index mask) and the issued
// permission count. The validation tree is later built by replaying the log.
//
// Two stores are provided: Mem (in-memory, the benchmark substrate) and
// File (JSON-lines on disk with buffered appends, the durable substrate the
// CLI tools and the engine use). Both implement Store.
package logstore

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/drmerr"
)

// Record is one issuance log row: Table 2's (Set, Set Counts) pair.
type Record struct {
	// Set is the belongs-to set of the issued license as a corpus-index
	// mask (the paper's S column).
	Set bitset.Mask `json:"set"`
	// Count is the issued permission count (the paper's C column).
	Count int64 `json:"count"`
}

// Validate checks structural well-formedness of a record.
func (r Record) Validate() error {
	if r.Set.Empty() {
		return errors.New("logstore: record with empty belongs-to set")
	}
	if r.Count <= 0 {
		return fmt.Errorf("logstore: record with non-positive count %d", r.Count)
	}
	return nil
}

// Store is an append-only issuance log.
type Store interface {
	// Append adds one record. Implementations validate the record.
	Append(Record) error
	// Len returns the number of records appended so far.
	Len() int
	// ForEach replays all records in append order, stopping at the first
	// error returned by fn.
	ForEach(fn func(Record) error) error
}

// replayPollRecords is how many records ForEachContext replays between
// context polls: frequent enough that cancelling a multi-million-record
// replay takes microseconds, rare enough to stay off the per-record path.
const replayPollRecords = 1024

// ForEachContext replays s under a context, polling ctx every
// replayPollRecords records. A cancelled replay stops with a
// KindCancelled error wrapping ctx.Err(). It is the context-aware replay
// every pipeline layer (vtree.BuildContext, the auditors) goes through;
// Store implementations themselves stay context-free.
func ForEachContext(ctx context.Context, s Store, fn func(Record) error) error {
	if err := ctx.Err(); err != nil {
		return drmerr.Wrap(drmerr.KindCancelled, "logstore.replay", err)
	}
	n := 0
	return s.ForEach(func(r Record) error {
		if n++; n%replayPollRecords == 0 {
			if err := ctx.Err(); err != nil {
				return drmerr.Wrap(drmerr.KindCancelled, "logstore.replay", err)
			}
		}
		return fn(r)
	})
}

// Mem is an in-memory Store. The zero value is ready to use.
// Mem is not safe for concurrent use; wrap it if you need that.
type Mem struct {
	records []Record
}

// NewMem returns an empty in-memory store with the given capacity hint.
func NewMem(capacity int) *Mem {
	return &Mem{records: make([]Record, 0, capacity)}
}

// Append implements Store.
func (m *Mem) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return drmerr.Wrap(drmerr.KindInvalidInput, "logstore.append", err)
	}
	m.records = append(m.records, r)
	M.Appends.Inc()
	return nil
}

// Len implements Store.
func (m *Mem) Len() int { return len(m.records) }

// ForEach implements Store.
func (m *Mem) ForEach(fn func(Record) error) error {
	for _, r := range m.records {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Records returns the backing slice; callers must not modify it.
func (m *Mem) Records() []Record { return m.records }

// Compact merges records with identical belongs-to sets, summing counts, and
// returns the merged records ordered by set mask. The validation tree does
// the same aggregation implicitly; Compact exists so persisted logs and
// network payloads stay small.
func Compact(records []Record) []Record {
	sums := make(map[bitset.Mask]int64, len(records))
	for _, r := range records {
		sums[r.Set] += r.Count
	}
	out := make([]Record, 0, len(sums))
	for set, count := range sums {
		out = append(out, Record{Set: set, Count: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Set < out[j].Set })
	return out
}

// CompactFile rewrites a JSONL log file with its records compacted (one
// record per distinct belongs-to set, counts summed, ordered by set).
// Validation semantics are unchanged — the validation tree aggregates
// identical sets anyway — but long-lived logs shrink by orders of
// magnitude, since at most 2^{N_k}−1 distinct sets exist per group. The
// rewrite is atomic (temp file + rename); the file must not be open in a
// live File store. It returns the record counts before and after.
func CompactFile(path string) (before, after int, err error) {
	var records []Record
	if err := ReadFile(path, func(r Record) error {
		records = append(records, r)
		return nil
	}); err != nil {
		return 0, 0, err
	}
	compacted := Compact(records)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".log-compact-*")
	if err != nil {
		return 0, 0, fmt.Errorf("logstore: temp file: %w", err)
	}
	if err := WriteAll(tmp, compacted); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, fmt.Errorf("logstore: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, fmt.Errorf("logstore: installing %s: %w", path, err)
	}
	return len(records), len(compacted), nil
}

// File is a durable Store appending JSON lines to a file. Records are
// buffered; call Flush (or Close) to force them to the OS.
//
// An internal mutex serialises appends and flushes, so concurrent readers
// (ForEach flushes before replaying) are safe with each other — the
// pattern drmserver's read-locked audit endpoints rely on. Interleaving
// Append with ForEach is still the caller's problem: a replay running
// concurrently with appends sees an unspecified prefix of them.
type File struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
	n   int
}

// OpenFile opens (creating if needed) a JSONL log at path and counts the
// existing records so Len is correct for pre-existing logs.
func OpenFile(path string) (*File, error) {
	n, err := countRecords(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logstore: open %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	return &File{f: f, w: w, enc: json.NewEncoder(w), n: n}, nil
}

func countRecords(path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("logstore: open %s: %w", path, err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n, sc.Err()
}

// Append implements Store.
func (s *File) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return drmerr.Wrap(drmerr.KindInvalidInput, "logstore.append", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(r); err != nil {
		return fmt.Errorf("logstore: append: %w", err)
	}
	s.n++
	M.Appends.Inc()
	return nil
}

// Len implements Store.
func (s *File) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Flush forces buffered records to the OS.
func (s *File) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *File) flushLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("logstore: flush: %w", err)
	}
	M.Flushes.Inc()
	return nil
}

// Close flushes and closes the underlying file. The store is unusable
// afterwards.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("logstore: close: %w", err)
	}
	return nil
}

// ForEach implements Store by re-reading the file. Buffered records are
// flushed first so the replay sees everything appended so far.
func (s *File) ForEach(fn func(Record) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	return ReadFile(s.f.Name(), fn)
}

// ReadFile replays a JSONL log file produced by File (or WriteAll).
func ReadFile(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("logstore: open %s: %w", path, err)
	}
	defer f.Close()
	return Read(f, fn)
}

// Read replays JSONL records from r. Undecodable input and structurally
// invalid persisted records surface as KindStoreCorrupt errors — a log
// that fails replay is corrupt state, not a caller mistake.
func Read(r io.Reader, fn func(Record) error) error {
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return drmerr.Wrapf(drmerr.KindStoreCorrupt, "logstore.read", err, "logstore: decode")
		}
		if err := rec.Validate(); err != nil {
			return drmerr.Wrap(drmerr.KindStoreCorrupt, "logstore.read", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// WriteAll writes records as JSONL to w — the bulk counterpart of File for
// workload generators.
func WriteAll(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := r.Validate(); err != nil {
			return err
		}
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("logstore: encode: %w", err)
		}
	}
	return bw.Flush()
}

// Collect replays a store into a slice.
func Collect(s Store) ([]Record, error) {
	out := make([]Record, 0, s.Len())
	err := s.ForEach(func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
