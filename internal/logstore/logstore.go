// Package logstore implements the offline issuance log of §2.1 (Table 2).
//
// Aggregate validation is done offline: every time the distributor issues a
// license, the validation authority appends a record holding the belongs-to
// set of redistribution licenses (as a corpus-index mask) and the issued
// permission count. The validation tree is later built by replaying the log.
//
// Two stores are provided: Mem (in-memory, the benchmark substrate) and
// File (JSON-lines on disk with buffered appends, the durable substrate the
// CLI tools and the engine use). Both implement Store.
package logstore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/trace"
)

// Record is one lifecycle ledger row. The original model held only
// Table 2's (Set, Set Counts) pair — an append-only issuance log — and
// that remains the zero-Kind case: a kindless record is an issue, so
// pre-lifecycle JSONL logs and WAL segments replay unchanged. The
// generalized ledger adds revocation, expiry, and transfer records whose
// signed contributions to the net consumed count come from Effective.
type Record struct {
	// Kind classifies the lifecycle event. The zero value is KindIssue
	// and is omitted on the wire, so plain issue records keep their
	// pre-lifecycle encoding byte for byte.
	Kind Kind `json:"kind,omitempty"`
	// Set is the belongs-to set of the license as a corpus-index mask
	// (the paper's S column).
	Set bitset.Mask `json:"set"`
	// Count is the permission count the event carries (the paper's C
	// column). It is always positive; the sign of the ledger movement is
	// determined by Kind (see Effective).
	Count int64 `json:"count"`
	// Meta carries optional per-record lifecycle metadata. Its fields
	// are inlined into the JSON encoding and omitted when zero.
	Meta
}

// Meta is the lifecycle metadata a record may carry.
type Meta struct {
	// Expiry is the unix-seconds instant at which the issued permissions
	// lapse (0 = never). Only issue records carry it — the expiry
	// sweeper turns due buckets into expire records that name the same
	// instant, so the ledger can retire the matching bucket.
	Expiry int64 `json:"expiry,omitempty"`
}

// Effective returns the record's signed contribution to the net consumed
// count C⟨S⟩: +Count for issues, −Count for revokes and expiries, and 0
// for transfers, which move permissions between consumers without
// changing the total consumed against the set.
func (r Record) Effective() int64 {
	switch r.Kind {
	case KindRevoke, KindExpire:
		return -r.Count
	case KindTransfer:
		return 0
	default:
		return r.Count
	}
}

// Validate checks structural well-formedness of a record. Failures are
// typed KindInvalidInput so the HTTP layer maps malformed ledger bodies
// to a structured 400; replay paths re-wrap them as KindStoreCorrupt.
func (r Record) Validate() error {
	const op = "logstore.record"
	if !r.Kind.Valid() {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"logstore: record with unknown kind %d", uint8(r.Kind))
	}
	if r.Set.Empty() {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"logstore: %s record with empty belongs-to set", r.Kind)
	}
	if r.Count <= 0 {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"logstore: %s record with non-positive count %d", r.Kind, r.Count)
	}
	if r.Expiry < 0 {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"logstore: %s record with negative expiry %d", r.Kind, r.Expiry)
	}
	if r.Expiry != 0 && r.Kind != KindIssue && r.Kind != KindExpire {
		return drmerr.New(drmerr.KindInvalidInput, op,
			"logstore: %s record cannot carry expiry metadata", r.Kind)
	}
	return nil
}

// Store is an append-only issuance log.
type Store interface {
	// Append adds one record. Implementations validate the record.
	Append(Record) error
	// Len returns the number of records appended so far.
	Len() int
	// ForEach replays all records in append order, stopping at the first
	// error returned by fn.
	ForEach(fn func(Record) error) error
}

// Durable is a Store backed by persistent media: Flush pushes buffered
// records toward the OS, Close releases the backing resources. Both
// *File (JSONL) and *wal.Store (segmented checksummed WAL) implement it;
// catalog entries hold their logs through this interface so the two
// backends interchange.
type Durable interface {
	Store
	Flush() error
	Close() error
}

// ContextAppender is implemented by stores whose appends accept a
// context, so tracing (and any future per-append deadline handling) can
// reach inside the append path — *wal.Store records append and fsync
// spans this way. The base Store interface stays context-free: most
// implementations have no blocking inside Append worth cancelling.
type ContextAppender interface {
	AppendContext(ctx context.Context, r Record) error
}

// AppendContext appends r to s, threading ctx into the store when it
// implements ContextAppender. For plain stores it wraps the append in a
// "logstore.append" span so traced requests still see where log time
// went. Untraced contexts add no allocations.
func AppendContext(ctx context.Context, s Store, r Record) error {
	if ca, ok := s.(ContextAppender); ok {
		return ca.AppendContext(ctx, r)
	}
	_, sp := trace.Start(ctx, "logstore.append")
	err := s.Append(r)
	if sp != nil {
		sp.Fail(err)
		sp.End()
	}
	return err
}

// replayPollRecords is how many records ForEachContext replays between
// context polls: frequent enough that cancelling a multi-million-record
// replay takes microseconds, rare enough to stay off the per-record path.
const replayPollRecords = 1024

// ForEachContext replays s under a context, polling ctx every
// replayPollRecords records. A cancelled replay stops with a
// KindCancelled error wrapping ctx.Err(). It is the context-aware replay
// every pipeline layer (vtree.BuildContext, the auditors) goes through;
// Store implementations themselves stay context-free.
func ForEachContext(ctx context.Context, s Store, fn func(Record) error) error {
	if err := ctx.Err(); err != nil {
		return drmerr.Wrap(drmerr.KindCancelled, "logstore.replay", err)
	}
	_, sp := trace.Start(ctx, "logstore.replay")
	n := 0
	err := s.ForEach(func(r Record) error {
		if n++; n%replayPollRecords == 0 {
			if err := ctx.Err(); err != nil {
				return drmerr.Wrap(drmerr.KindCancelled, "logstore.replay", err)
			}
		}
		return fn(r)
	})
	if sp != nil {
		sp.SetInt("records", int64(n))
		sp.Fail(err)
		sp.End()
	}
	return err
}

// Mem is an in-memory Store. The zero value is ready to use. Mem is
// safe for concurrent use: appends serialise behind a mutex, and ForEach
// iterates a snapshot of the record slice taken under it, so a replay
// concurrent with appends sees a consistent prefix (the engine's
// concurrent issuance path relies on this).
type Mem struct {
	mu      sync.RWMutex
	ledger  Ledger
	records []Record
}

// NewMem returns an empty in-memory store with the given capacity hint.
func NewMem(capacity int) *Mem {
	return &Mem{records: make([]Record, 0, capacity)}
}

// Append implements Store. Appends that would break ledger soundness
// (a debit exceeding the set's net outstanding credits) are refused
// with a KindLedgerUnsound error and leave the store unchanged.
func (m *Mem) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return drmerr.Wrap(drmerr.KindInvalidInput, "logstore.append", err)
	}
	m.mu.Lock()
	if err := m.ledger.Admit(r); err != nil {
		m.mu.Unlock()
		return err
	}
	m.ledger.Apply(r)
	m.records = append(m.records, r)
	m.mu.Unlock()
	M.Appends.Inc()
	return nil
}

// LedgerSnapshot implements LedgerReader.
func (m *Mem) LedgerSnapshot() *Ledger {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ledger.Clone()
}

// Len implements Store.
func (m *Mem) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.records)
}

// ForEach implements Store. The iteration runs over a snapshot taken at
// call time; records appended concurrently are not visited.
func (m *Mem) ForEach(fn func(Record) error) error {
	m.mu.RLock()
	recs := m.records
	m.mu.RUnlock()
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// Records returns a snapshot of the backing slice; callers must not
// modify it.
func (m *Mem) Records() []Record {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.records
}

// Compact reduces a record sequence to its canonical ledger form: per
// set, one plain issue holding the non-expiring net count, one issue per
// surviving TTL bucket (ordered by expiry), and one transfer carrying
// the cumulative transferred total. Replaying the compacted sequence
// rebuilds the same net counts, due-expiry schedule, and transfer
// totals as the original — debits consume the non-expiring pool first
// and then the latest-expiring buckets, matching how Ledger.Due
// allocates budget to the earliest buckets — so audits and snapshot
// recovery are unchanged by compaction. For pure-issue logs this is the
// original behavior: one record per distinct set, counts summed,
// ordered by set mask.
func Compact(records []Record) []Record {
	led := LedgerOf(records)
	return led.Canonical()
}

// CompactFile rewrites a JSONL log file with its records compacted (one
// record per distinct belongs-to set, counts summed, ordered by set).
// Validation semantics are unchanged — the validation tree aggregates
// identical sets anyway — but long-lived logs shrink by orders of
// magnitude, since at most 2^{N_k}−1 distinct sets exist per group. The
// rewrite is atomic (temp file + rename); the file must not be open in a
// live File store. It returns the record counts before and after.
func CompactFile(path string) (before, after int, err error) {
	var records []Record
	if err := ReadFile(path, func(r Record) error {
		records = append(records, r)
		return nil
	}); err != nil {
		return 0, 0, err
	}
	compacted := Compact(records)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".log-compact-*")
	if err != nil {
		return 0, 0, fmt.Errorf("logstore: temp file: %w", err)
	}
	if err := WriteAll(tmp, compacted); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, fmt.Errorf("logstore: closing temp file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, 0, fmt.Errorf("logstore: installing %s: %w", path, err)
	}
	return len(records), len(compacted), nil
}

// File is a durable Store appending JSON lines to a file. Records are
// buffered; call Flush (or Close) to force them to the OS.
//
// An internal mutex serialises appends and flushes, so concurrent readers
// (ForEach flushes before replaying) are safe with each other — the
// pattern drmserver's read-locked audit endpoints rely on. Interleaving
// Append with ForEach is still the caller's problem: a replay running
// concurrently with appends sees an unspecified prefix of them.
type File struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	enc    *json.Encoder
	n      int
	ledger Ledger
}

// OpenFile opens (creating if needed) a JSONL log at path, decoding the
// existing records so Len is correct for pre-existing logs. A log whose
// tail was torn by a crash (trailing bytes that do not decode into a
// valid record) is rejected with a KindStoreCorrupt error carrying a
// *CorruptError that names the byte offset — callers repair it explicitly
// with RepairFile (or drmaudit -repair) rather than silently appending
// after garbage.
func OpenFile(path string) (*File, error) {
	n, _, led, err := scanFile(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logstore: open %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	return &File{f: f, w: w, enc: json.NewEncoder(w), n: n, ledger: led}, nil
}

// CorruptError reports undecodable bytes in a JSONL log: everything
// before Offset decodes into valid records, the bytes at Offset do not.
// Torn reports whether the damage is a torn tail (no valid record follows
// the bad bytes, the shape a crashed append leaves) — repairable by
// truncating at Offset — as opposed to mid-log corruption, where valid
// records after the bad region would be lost by truncation.
type CorruptError struct {
	Path string
	// Offset is the byte offset of the first undecodable content;
	// Records counts the valid records before it.
	Offset  int64
	Records int
	Torn    bool
	Err     error
}

// Error implements error.
func (e *CorruptError) Error() string {
	shape := "mid-log corruption"
	if e.Torn {
		shape = "torn tail"
	}
	return fmt.Sprintf("logstore: %s: %s at byte offset %d (%d valid records before it): %v",
		e.Path, shape, e.Offset, e.Records, e.Err)
}

// Unwrap exposes the decode failure.
func (e *CorruptError) Unwrap() error { return e.Err }

// scanFile decodes every record in a JSONL log, returning the record
// count, the byte offset just past the last valid record, and the
// rebuilt lifecycle ledger. Undecodable content — including records
// that would break ledger soundness — yields a KindStoreCorrupt error
// wrapping a *CorruptError; a missing file is an empty log. Note the
// limits of JSONL self-checking: a tail torn at a byte position that
// still parses as a valid record (e.g. a count cut from 800 to 80) is
// undetectable here — the CRC-framed internal/wal backend exists for
// exactly that reason.
func scanFile(path string) (n int, validEnd int64, led Ledger, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, Ledger{}, nil
	}
	if err != nil {
		return 0, 0, Ledger{}, fmt.Errorf("logstore: open %s: %w", path, err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	for {
		var rec Record
		derr := dec.Decode(&rec)
		if derr == io.EOF {
			return n, validEnd, led, nil
		}
		if derr == nil {
			derr = rec.Validate()
		}
		if derr == nil {
			derr = led.Observe(rec)
		}
		if derr != nil {
			torn, terr := tailBeyondRepair(f, validEnd)
			if terr != nil {
				return 0, 0, Ledger{}, terr
			}
			cerr := &CorruptError{Path: path, Offset: validEnd, Records: n, Torn: torn, Err: derr}
			return 0, 0, Ledger{}, drmerr.Wrap(drmerr.KindStoreCorrupt, "logstore.open", cerr)
		}
		n++
		validEnd = dec.InputOffset()
	}
}

// tailBeyondRepair classifies the undecodable region starting at off:
// true means it is a torn tail (no later line decodes into a valid
// record, so truncating at off loses nothing), false means valid records
// follow the damage and truncation would drop them.
func tailBeyondRepair(f *os.File, off int64) (torn bool, err error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return false, fmt.Errorf("logstore: seek: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	first := true
	for sc.Scan() {
		if first {
			// The first line is (part of) the bad region itself.
			first = false
			continue
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) == nil && rec.Validate() == nil {
			return false, nil
		}
	}
	if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
		return false, fmt.Errorf("logstore: scanning tail: %w", err)
	}
	return true, nil
}

// RepairFile truncates a torn tail off a JSONL log, returning the number
// of bytes removed. A clean log is left untouched (0, nil). Mid-log
// corruption — valid records after the damaged region — is refused with
// the scan's KindStoreCorrupt error, since truncating there would drop
// real records. The truncation is fsynced so a repair survives power
// loss.
func RepairFile(path string) (removed int64, err error) {
	_, _, _, serr := scanFile(path)
	if serr == nil {
		return 0, nil
	}
	var cerr *CorruptError
	if !errors.As(serr, &cerr) || !cerr.Torn {
		return 0, serr
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("logstore: open %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("logstore: stat %s: %w", path, err)
	}
	if err := f.Truncate(cerr.Offset); err != nil {
		return 0, fmt.Errorf("logstore: truncate %s: %w", path, err)
	}
	// InputOffset stops just past the JSON value, before the newline the
	// writer emitted; restore it so appends start on a fresh line.
	if cerr.Offset > 0 {
		if _, err := f.WriteAt([]byte("\n"), cerr.Offset); err != nil {
			return 0, fmt.Errorf("logstore: terminating %s: %w", path, err)
		}
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("logstore: sync %s: %w", path, err)
	}
	removed = fi.Size() - cerr.Offset
	if cerr.Offset > 0 {
		removed-- // the newline written back
	}
	if removed < 0 {
		removed = 0
	}
	return removed, nil
}

// Append implements Store. Like Mem, soundness-breaking debits are
// refused with a KindLedgerUnsound error before anything is written.
func (s *File) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return drmerr.Wrap(drmerr.KindInvalidInput, "logstore.append", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ledger.Admit(r); err != nil {
		return err
	}
	if err := s.enc.Encode(r); err != nil {
		return fmt.Errorf("logstore: append: %w", err)
	}
	s.ledger.Apply(r)
	s.n++
	M.Appends.Inc()
	return nil
}

// LedgerSnapshot implements LedgerReader. Buffered records are already
// reflected: the ledger is maintained at append time.
func (s *File) LedgerSnapshot() *Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.Clone()
}

// Len implements Store.
func (s *File) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Flush forces buffered records to the OS.
func (s *File) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *File) flushLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("logstore: flush: %w", err)
	}
	M.Flushes.Inc()
	return nil
}

// Close flushes and closes the underlying file. The store is unusable
// afterwards.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("logstore: close: %w", err)
	}
	return nil
}

// ForEach implements Store by re-reading the file. Buffered records are
// flushed first so the replay sees everything appended so far.
func (s *File) ForEach(fn func(Record) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	return ReadFile(s.f.Name(), fn)
}

// ReadFile replays a JSONL log file produced by File (or WriteAll).
// Undecodable content is classified exactly like OpenFile: the returned
// KindStoreCorrupt error carries a *CorruptError naming the byte offset
// and whether the damage is a repairable torn tail.
func ReadFile(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("logstore: open %s: %w", path, err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var validEnd int64
	var led Ledger
	n := 0
	for {
		var rec Record
		derr := dec.Decode(&rec)
		if derr == io.EOF {
			return nil
		}
		if derr == nil {
			derr = rec.Validate()
		}
		if derr == nil {
			derr = led.Observe(rec)
		}
		if derr != nil {
			torn, terr := tailBeyondRepair(f, validEnd)
			if terr != nil {
				return terr
			}
			cerr := &CorruptError{Path: path, Offset: validEnd, Records: n, Torn: torn, Err: derr}
			return drmerr.Wrap(drmerr.KindStoreCorrupt, "logstore.read", cerr)
		}
		if err := fn(rec); err != nil {
			return err
		}
		n++
		validEnd = dec.InputOffset()
	}
}

// Read replays JSONL records from r. Undecodable input, structurally
// invalid persisted records, and soundness-breaking sequences surface
// as KindStoreCorrupt errors — a log that fails replay is corrupt
// state, not a caller mistake.
func Read(r io.Reader, fn func(Record) error) error {
	dec := json.NewDecoder(r)
	var led Ledger
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return nil
		} else if err != nil {
			return drmerr.Wrapf(drmerr.KindStoreCorrupt, "logstore.read", err, "logstore: decode")
		}
		if err := rec.Validate(); err != nil {
			return drmerr.Wrap(drmerr.KindStoreCorrupt, "logstore.read", err)
		}
		if err := led.Observe(rec); err != nil {
			return drmerr.Wrap(drmerr.KindStoreCorrupt, "logstore.read", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// WriteAll writes records as JSONL to w — the bulk counterpart of File
// for workload generators. The sequence must be sound (every debit
// covered by prior credits), since an unsound log would be refused on
// replay.
func WriteAll(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var led Ledger
	for _, r := range records {
		if err := r.Validate(); err != nil {
			return err
		}
		if err := led.Observe(r); err != nil {
			return err
		}
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("logstore: encode: %w", err)
		}
	}
	return bw.Flush()
}

// Collect replays a store into a slice.
func Collect(s Store) ([]Record, error) {
	out := make([]Record, 0, s.Len())
	err := s.ForEach(func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
