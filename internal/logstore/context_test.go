package logstore

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/bitset"
	"repro/internal/drmerr"
)

func TestForEachContextCancelled(t *testing.T) {
	m := NewMem(0)
	for i := 0; i < 5; i++ {
		if err := m.Append(Record{Set: bitset.MaskOf(i % 3), Count: 1}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visited := 0
	err := ForEachContext(ctx, m, func(Record) error { visited++; return nil })
	if !errors.Is(err, drmerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("context cause lost: %v", err)
	}
	if visited != 0 {
		t.Errorf("visited %d records under a cancelled context, want 0", visited)
	}
}

func TestForEachContextBackgroundVisitsAll(t *testing.T) {
	m := NewMem(0)
	for i := 0; i < 7; i++ {
		if err := m.Append(Record{Set: bitset.MaskOf(i % 4), Count: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	visited := 0
	if err := ForEachContext(context.Background(), m, func(Record) error { visited++; return nil }); err != nil {
		t.Fatal(err)
	}
	if visited != 7 {
		t.Errorf("visited %d, want 7", visited)
	}
}

func TestReadCorruptIsTyped(t *testing.T) {
	err := Read(bytes.NewBufferString("{\"set\":3,\"count\":5}\nnot json\n"),
		func(Record) error { return nil })
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Errorf("decode err = %v, want ErrStoreCorrupt", err)
	}
	err = Read(bytes.NewBufferString("{\"set\":0,\"count\":5}\n"),
		func(Record) error { return nil })
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Errorf("invalid-record err = %v, want ErrStoreCorrupt", err)
	}
}

func TestAppendInvalidIsTyped(t *testing.T) {
	if err := NewMem(0).Append(Record{}); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("Mem append err = %v, want ErrInvalidInput", err)
	}
}
