package logstore

import (
	"bytes"
	"testing"
)

// FuzzRead checks the JSONL log reader never panics and that accepted
// logs round-trip through WriteAll → Read byte-identically (the format is
// canonical).
func FuzzRead(f *testing.F) {
	f.Add([]byte("{\"set\":3,\"count\":800}\n{\"set\":2,\"count\":400}\n"))
	f.Add([]byte(""))
	f.Add([]byte("{\"set\":0,\"count\":1}\n"))
	f.Add([]byte("{\"set\":1,\"count\":-5}\n"))
	f.Add([]byte("not json"))
	f.Add([]byte("{\"set\":18446744073709551615,\"count\":1}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var records []Record
		if err := Read(bytes.NewReader(data), func(r Record) error {
			records = append(records, r)
			return nil
		}); err != nil {
			return
		}
		// Every record delivered to the callback is valid.
		for _, r := range records {
			if err := r.Validate(); err != nil {
				t.Fatalf("reader delivered invalid record %+v: %v", r, err)
			}
		}
		var out bytes.Buffer
		if err := WriteAll(&out, records); err != nil {
			t.Fatalf("accepted records do not re-encode: %v", err)
		}
		var back []Record
		if err := Read(&out, func(r Record) error {
			back = append(back, r)
			return nil
		}); err != nil {
			t.Fatalf("re-encoded log does not decode: %v", err)
		}
		if len(back) != len(records) {
			t.Fatalf("round-trip changed record count: %d vs %d", len(back), len(records))
		}
		for i := range back {
			if back[i] != records[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, back[i], records[i])
			}
		}
	})
}
