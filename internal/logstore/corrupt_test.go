package logstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/drmerr"
)

// writeLog writes a JSONL log with the given lines (no trailing newline
// handling — lines carry their own).
func writeLog(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "issue.log.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const threeRecords = "{\"set\":3,\"count\":800}\n{\"set\":2,\"count\":400}\n{\"set\":5,\"count\":100}\n"

func TestOpenFileTornTail(t *testing.T) {
	// A crashed append leaves a half-written line at the end.
	path := writeLog(t, threeRecords+"{\"set\":7,\"cou")
	_, err := OpenFile(path)
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("err = %v, want store corrupt", err)
	}
	var cerr *CorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	// The decoder's offset stops just past the last valid JSON value,
	// before its trailing newline.
	if cerr.Offset != int64(len(threeRecords)-1) {
		t.Errorf("Offset = %d, want %d", cerr.Offset, len(threeRecords)-1)
	}
	if cerr.Records != 3 {
		t.Errorf("Records = %d, want 3", cerr.Records)
	}
	if !cerr.Torn {
		t.Error("Torn = false, want true (no valid records after damage)")
	}
	if !strings.Contains(err.Error(), "byte offset") {
		t.Errorf("error does not name the byte offset: %v", err)
	}
}

func TestOpenFileMidLogCorruption(t *testing.T) {
	// Damage in the middle with valid records after it: not repairable by
	// truncation.
	path := writeLog(t, "{\"set\":3,\"count\":800}\n???garbage???\n{\"set\":2,\"count\":400}\n")
	_, err := OpenFile(path)
	var cerr *CorruptError
	if !errors.As(err, &cerr) {
		t.Fatalf("err = %v, want *CorruptError", err)
	}
	if cerr.Torn {
		t.Error("Torn = true, want false (valid records follow the damage)")
	}
	if cerr.Records != 1 {
		t.Errorf("Records = %d, want 1", cerr.Records)
	}
	// RepairFile must refuse: truncating would drop the trailing record.
	if _, rerr := RepairFile(path); !errors.Is(rerr, drmerr.ErrStoreCorrupt) {
		t.Errorf("RepairFile on mid-log corruption: err = %v, want store corrupt", rerr)
	}
}

func TestOpenFileInvalidRecordIsCorrupt(t *testing.T) {
	// Structurally valid JSON that fails Record.Validate is corruption
	// too: the log never contains such rows by construction.
	path := writeLog(t, "{\"set\":3,\"count\":800}\n{\"set\":0,\"count\":5}\n")
	_, err := OpenFile(path)
	if !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("err = %v, want store corrupt", err)
	}
}

func TestRepairFileTornTail(t *testing.T) {
	path := writeLog(t, threeRecords+"{\"set\":7,\"cou")
	removed, err := RepairFile(path)
	if err != nil {
		t.Fatalf("RepairFile: %v", err)
	}
	if removed != int64(len("{\"set\":7,\"cou")) {
		t.Errorf("removed = %d, want %d", removed, len("{\"set\":7,\"cou"))
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile after repair: %v", err)
	}
	defer f.Close()
	if f.Len() != 3 {
		t.Errorf("Len after repair = %d, want 3", f.Len())
	}
	// Appends after repair land on a fresh line.
	if err := f.Append(Record{Set: 9, Count: 7}); err != nil {
		t.Fatal(err)
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := ReadFile(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatalf("re-read after repair+append: %v", err)
	}
	if len(got) != 4 || got[3] != (Record{Set: 9, Count: 7}) {
		t.Errorf("records after repair+append = %+v", got)
	}
}

func TestRepairFileCleanLogUntouched(t *testing.T) {
	path := writeLog(t, threeRecords)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := RepairFile(path)
	if err != nil || removed != 0 {
		t.Fatalf("RepairFile on clean log = %d, %v; want 0, nil", removed, err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("RepairFile modified a clean log")
	}
}

func TestCompactFileTornTailFailsCleanly(t *testing.T) {
	content := threeRecords + "{\"set\":7,\"cou"
	path := writeLog(t, content)
	if _, _, err := CompactFile(path); !errors.Is(err, drmerr.ErrStoreCorrupt) {
		t.Fatalf("CompactFile on torn log: err = %v, want store corrupt", err)
	}
	// The damaged file is left exactly as it was — no partial rewrite, no
	// temp-file litter.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != content {
		t.Error("CompactFile modified the damaged log")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after failed compaction, want 1", len(entries))
	}
}

// TestOpenFileTruncatedAtEveryOffset is the JSONL analogue of the WAL
// crash sweep: a valid log cut at every byte offset must either open with
// a record-count prefix or fail with a typed, repairable torn-tail error —
// and after RepairFile it must always open.
func TestOpenFileTruncatedAtEveryOffset(t *testing.T) {
	full := []byte(threeRecords + "{\"set\":6,\"count\":123}\n")
	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, "log.jsonl")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := OpenFile(path)
		if err == nil {
			if f.Len() > 4 {
				t.Fatalf("cut %d: invented records: Len = %d", cut, f.Len())
			}
			f.Close()
			continue
		}
		var cerr *CorruptError
		if !errors.Is(err, drmerr.ErrStoreCorrupt) || !errors.As(err, &cerr) {
			t.Fatalf("cut %d: err = %v, want typed *CorruptError", cut, err)
		}
		if !cerr.Torn {
			t.Fatalf("cut %d: truncation classified as mid-log corruption", cut)
		}
		if _, err := RepairFile(path); err != nil {
			t.Fatalf("cut %d: RepairFile: %v", cut, err)
		}
		f, err = OpenFile(path)
		if err != nil {
			t.Fatalf("cut %d: OpenFile after repair: %v", cut, err)
		}
		f.Close()
	}
}

// FuzzReadFile feeds arbitrary file contents — truncated logs, garbage,
// blank lines — to the file-level reader: it must never panic, and every
// record it delivers before failing must be valid.
func FuzzReadFile(f *testing.F) {
	f.Add([]byte(threeRecords))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(threeRecords + "{\"set\":7,\"cou"))
	f.Add([]byte("{\"set\":3,\"count\":800}\n???\n{\"set\":2,\"count\":400}\n"))
	f.Add([]byte("not json at all"))
	f.Add([]byte("{\"set\":0,\"count\":0}\n"))
	f.Add([]byte("{\"set\":1,\"count\":1}")) // no trailing newline: still one record
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var records []Record
		err := ReadFile(path, func(r Record) error {
			records = append(records, r)
			return nil
		})
		for _, r := range records {
			if r.Validate() != nil {
				t.Fatalf("ReadFile delivered invalid record %+v", r)
			}
		}
		if err != nil {
			return
		}
		// An accepted log opens, scans to the same count, and needs no
		// repair.
		fl, oerr := OpenFile(path)
		if oerr != nil {
			t.Fatalf("ReadFile accepted but OpenFile rejected: %v", oerr)
		}
		if fl.Len() != len(records) {
			t.Fatalf("OpenFile Len = %d, ReadFile saw %d", fl.Len(), len(records))
		}
		fl.Close()
		if removed, rerr := RepairFile(path); rerr != nil || removed != 0 {
			t.Fatalf("clean log repaired: removed=%d err=%v", removed, rerr)
		}
	})
}
