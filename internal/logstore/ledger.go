package logstore

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/drmerr"
)

// Kind classifies a lifecycle ledger record. The zero value is
// KindIssue so pre-lifecycle (kindless) records decode as issues.
type Kind uint8

const (
	// KindIssue credits Count permissions against the record's set —
	// the original issuance-log row.
	KindIssue Kind = iota
	// KindRevoke debits Count permissions: a refund or takedown of
	// previously issued licenses.
	KindRevoke
	// KindExpire debits Count permissions whose TTL lapsed; the record's
	// Expiry names the bucket being retired so the ledger can match it
	// against the issues that opened it.
	KindExpire
	// KindTransfer moves Count permissions between consumers. It leaves
	// the net consumed count unchanged; the ledger tracks the cumulative
	// transferred total so the engine can enforce transfer caps.
	KindTransfer

	numKinds
)

// Valid reports whether k is a known lifecycle kind.
func (k Kind) Valid() bool { return k < numKinds }

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindIssue:
		return "issue"
	case KindRevoke:
		return "revoke"
	case KindExpire:
		return "expire"
	case KindTransfer:
		return "transfer"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind maps a wire name back to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "issue":
		return KindIssue, nil
	case "revoke":
		return KindRevoke, nil
	case "expire":
		return KindExpire, nil
	case "transfer":
		return KindTransfer, nil
	default:
		return 0, drmerr.New(drmerr.KindInvalidInput, "logstore.kind",
			"logstore: unknown record kind %q", s)
	}
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if !k.Valid() {
		return nil, fmt.Errorf("logstore: cannot encode unknown kind %d", uint8(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a wire name; an empty string is KindIssue for
// symmetry with the omitted field.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("logstore: kind: %w", err)
	}
	if s == "" {
		*k = KindIssue
		return nil
	}
	v, err := ParseKind(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// bucketKey identifies a TTL bucket: the set issued against and the
// instant its permissions lapse.
type bucketKey struct {
	set    bitset.Mask
	expiry int64
}

// Ledger is the running lifecycle state of a record sequence: per-set
// net outstanding counts (credits minus debits), per-(set, expiry)
// outstanding TTL buckets, and cumulative transfer totals. Every store
// maintains one and consults Admit before appending, which is what
// makes the soundness condition — cumulative debits per set never
// exceed cumulative credits — an append-time invariant rather than an
// audit-time discovery. The zero value is an empty ledger.
//
// Ledger itself is not goroutine-safe; stores guard it with their own
// locks and hand out copies via Clone.
type Ledger struct {
	net     map[bitset.Mask]int64
	buckets map[bucketKey]int64
	xfer    map[bitset.Mask]int64
}

// LedgerOf replays records into a fresh ledger without soundness
// checks — the form used for rebuilding state from sequences that were
// already admitted record by record.
func LedgerOf(records []Record) *Ledger {
	l := &Ledger{}
	for _, r := range records {
		l.Apply(r)
	}
	return l
}

// Admit checks that appending r preserves ledger soundness. It assumes
// r passed Validate. Violations are typed KindLedgerUnsound.
func (l *Ledger) Admit(r Record) error {
	const op = "logstore.ledger"
	switch r.Kind {
	case KindRevoke, KindExpire:
		if net := l.net[r.Set]; r.Count > net {
			return drmerr.New(drmerr.KindLedgerUnsound, op,
				"logstore: %s of %d exceeds net outstanding %d for set %v",
				r.Kind, r.Count, net, r.Set)
		}
		if r.Kind == KindExpire && r.Expiry != 0 {
			if out := l.buckets[bucketKey{r.Set, r.Expiry}]; r.Count > out {
				return drmerr.New(drmerr.KindLedgerUnsound, op,
					"logstore: expire of %d exceeds outstanding %d in bucket (set %v, expiry %d)",
					r.Count, out, r.Set, r.Expiry)
			}
		}
	}
	return nil
}

// Apply folds r into the ledger. Call Admit first; applying an
// unadmitted debit can drive counts negative.
func (l *Ledger) Apply(r Record) {
	switch r.Kind {
	case KindIssue:
		l.addNet(r.Set, r.Count)
		if r.Expiry != 0 {
			l.addBucket(bucketKey{r.Set, r.Expiry}, r.Count)
		}
	case KindRevoke:
		l.addNet(r.Set, -r.Count)
	case KindExpire:
		l.addNet(r.Set, -r.Count)
		if r.Expiry != 0 {
			l.addBucket(bucketKey{r.Set, r.Expiry}, -r.Count)
		}
	case KindTransfer:
		if l.xfer == nil {
			l.xfer = make(map[bitset.Mask]int64)
		}
		l.xfer[r.Set] += r.Count
	}
}

// unapply reverses Apply — the rollback primitive batch appends use
// when a later record in the batch fails admission.
func (l *Ledger) unapply(r Record) {
	switch r.Kind {
	case KindIssue:
		l.addNet(r.Set, -r.Count)
		if r.Expiry != 0 {
			l.addBucket(bucketKey{r.Set, r.Expiry}, -r.Count)
		}
	case KindRevoke:
		l.addNet(r.Set, r.Count)
	case KindExpire:
		l.addNet(r.Set, r.Count)
		if r.Expiry != 0 {
			l.addBucket(bucketKey{r.Set, r.Expiry}, r.Count)
		}
	case KindTransfer:
		if l.xfer[r.Set] -= r.Count; l.xfer[r.Set] == 0 {
			delete(l.xfer, r.Set)
		}
	}
}

// ObserveAll admits and applies records atomically: either every
// record folds in (debits may consume credits earlier in the same
// batch), or the ledger is left unchanged and the first admission
// error is returned.
func (l *Ledger) ObserveAll(recs []Record) error {
	for i, r := range recs {
		if err := l.Admit(r); err != nil {
			for j := i - 1; j >= 0; j-- {
				l.unapply(recs[j])
			}
			return err
		}
		l.Apply(r)
	}
	return nil
}

// Observe is Admit followed by Apply.
func (l *Ledger) Observe(r Record) error {
	if err := l.Admit(r); err != nil {
		return err
	}
	l.Apply(r)
	return nil
}

func (l *Ledger) addNet(set bitset.Mask, delta int64) {
	if l.net == nil {
		l.net = make(map[bitset.Mask]int64)
	}
	if l.net[set] += delta; l.net[set] == 0 {
		delete(l.net, set)
	}
}

func (l *Ledger) addBucket(k bucketKey, delta int64) {
	if l.buckets == nil {
		l.buckets = make(map[bucketKey]int64)
	}
	if l.buckets[k] += delta; l.buckets[k] == 0 {
		delete(l.buckets, k)
	}
}

// Net returns the set's net outstanding count (credits − debits).
func (l *Ledger) Net(set bitset.Mask) int64 { return l.net[set] }

// Transferred returns the set's cumulative transferred total.
func (l *Ledger) Transferred(set bitset.Mask) int64 { return l.xfer[set] }

// Clone returns an independent deep copy.
func (l *Ledger) Clone() *Ledger {
	c := &Ledger{}
	if len(l.net) > 0 {
		c.net = make(map[bitset.Mask]int64, len(l.net))
		for k, v := range l.net {
			c.net[k] = v
		}
	}
	if len(l.buckets) > 0 {
		c.buckets = make(map[bucketKey]int64, len(l.buckets))
		for k, v := range l.buckets {
			c.buckets[k] = v
		}
	}
	if len(l.xfer) > 0 {
		c.xfer = make(map[bitset.Mask]int64, len(l.xfer))
		for k, v := range l.xfer {
			c.xfer[k] = v
		}
	}
	return c
}

// setBuckets returns the set's TTL buckets ordered by expiry ascending.
func (l *Ledger) setBuckets(set bitset.Mask) []bucketKey {
	var keys []bucketKey
	for k := range l.buckets {
		if k.set == set {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].expiry < keys[j].expiry })
	return keys
}

// sets returns every set the ledger knows about (net, bucket, or
// transfer state), ordered by mask.
func (l *Ledger) sets() []bitset.Mask {
	seen := make(map[bitset.Mask]bool, len(l.net)+len(l.xfer))
	for s := range l.net {
		seen[s] = true
	}
	for s := range l.xfer {
		seen[s] = true
	}
	for k := range l.buckets {
		seen[k.set] = true
	}
	out := make([]bitset.Mask, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Due returns the expire records for every TTL bucket due at or before
// now (unix seconds), clamped so cumulative expiries never exceed a
// set's net outstanding count — revokes may already have consumed part
// of a bucket. Budget is allocated to the earliest buckets first, the
// same rule Canonical uses, so sweeping before or after a compaction
// retires identical amounts. Applying the returned records in order is
// always sound. Records are ordered by set, then expiry.
func (l *Ledger) Due(now int64) []Record {
	var out []Record
	for _, set := range l.sets() {
		budget := l.net[set]
		for _, k := range l.setBuckets(set) {
			take := l.buckets[k]
			if take > budget {
				take = budget
			}
			budget -= take
			if take > 0 && k.expiry <= now {
				out = append(out, Record{Kind: KindExpire, Set: set, Count: take, Meta: Meta{Expiry: k.expiry}})
			}
		}
	}
	return out
}

// Canonical emits the ledger's canonical record sequence: per set
// (ordered by mask), one plain issue holding the non-expiring net
// count, one TTL'd issue per surviving bucket (expiry ascending, each
// clamped by the earliest-first budget rule), and one transfer carrying
// the cumulative transferred total. Replaying the result rebuilds an
// equal ledger.
func (l *Ledger) Canonical() []Record {
	out := make([]Record, 0, len(l.net)+len(l.buckets)+len(l.xfer))
	for _, set := range l.sets() {
		budget := l.net[set]
		keys := l.setBuckets(set)
		takes := make([]int64, len(keys))
		for i, k := range keys {
			take := l.buckets[k]
			if take > budget {
				take = budget
			}
			budget -= take
			takes[i] = take
		}
		if budget > 0 {
			out = append(out, Record{Set: set, Count: budget})
		}
		for i, k := range keys {
			if takes[i] > 0 {
				out = append(out, Record{Set: set, Count: takes[i], Meta: Meta{Expiry: k.expiry}})
			}
		}
		if x := l.xfer[set]; x > 0 {
			out = append(out, Record{Kind: KindTransfer, Set: set, Count: x})
		}
	}
	return out
}

// LedgerReader is implemented by stores that expose a snapshot of their
// lifecycle ledger state. The engine's expiry sweeper and transfer-cap
// policy read it; all three bundled stores (Mem, File, wal.Store)
// implement it.
type LedgerReader interface {
	// LedgerSnapshot returns an independent copy of the store's current
	// ledger, safe to read without further locking.
	LedgerSnapshot() *Ledger
}
