package logstore

import "repro/internal/obs"

// M holds the package's metric hooks, nil until Instrument is called; obs
// metric methods are no-ops on nil receivers, so uninstrumented stores
// record nothing and allocate nothing.
var M Metrics

// Metrics are the issuance-log signals: append throughput and durability
// flushes.
type Metrics struct {
	// Appends counts records appended across all stores (Mem and File).
	Appends *obs.Counter
	// Flushes counts explicit File flushes (ForEach replays flush too).
	Flushes *obs.Counter
}

// Instrument registers the log-store metric families on reg and points
// the hooks at them.
func Instrument(reg *obs.Registry) {
	M = Metrics{
		Appends: reg.Counter("drm_log_appends_total",
			"Issuance records appended to log stores."),
		Flushes: reg.Counter("drm_log_flushes_total",
			"Explicit flushes of durable log files."),
	}
}
