// Package rtree implements an R-tree over license hyper-rectangles — the
// spatial index behind fast instance-based validation.
//
// Instance validation (§3.1, and the MPML architecture of the paper's [9])
// asks: given an issued license's rectangle q, which redistribution
// licenses' rectangles fully contain q? A linear scan is O(N·M); the R-tree
// prunes by minimum bounding rectangles. Containment search is sound
// because an entry containing q forces every ancestor MBR to contain q, so
// subtrees whose MBR does not contain q cannot hold answers.
//
// The tree is a classic Guttman R-tree with quadratic split, generalised to
// the mixed interval/set axes of geometry.Rect (MBR = axis-wise hull).
package rtree

import (
	"fmt"

	"repro/internal/geometry"
)

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 8

// Tree is an R-tree mapping rectangles to integer payloads (license
// indexes). The zero value is not usable; call New.
type Tree struct {
	schema     *geometry.Schema
	root       *node
	maxEntries int
	minEntries int
	size       int
}

// entry is one slot of a node: a bounding rectangle plus either a child
// (internal nodes) or a payload id (leaves).
type entry struct {
	rect  geometry.Rect
	child *node
	id    int
}

type node struct {
	leaf    bool
	entries []entry
}

// New returns an empty R-tree over the schema. maxEntries bounds node
// fan-out; values < 4 are raised to DefaultMaxEntries.
func New(schema *geometry.Schema, maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = DefaultMaxEntries
	}
	return &Tree{
		schema:     schema,
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
	}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Insert adds a rectangle with its payload id. Empty rectangles are
// rejected: they cannot contain anything and would only pollute MBRs.
func (t *Tree) Insert(r geometry.Rect, id int) error {
	if r.IsZero() || r.Schema() != t.schema {
		return fmt.Errorf("rtree: rect schema mismatch")
	}
	if r.Empty() {
		return fmt.Errorf("rtree: empty rectangle for id %d", id)
	}
	t.insert(entry{rect: r, id: id})
	t.size++
	return nil
}

func (t *Tree) insert(e entry) {
	leaf, path := t.chooseLeaf(e.rect)
	leaf.entries = append(leaf.entries, e)
	// Split upward while nodes overflow.
	n := leaf
	for i := len(path) - 1; ; i-- {
		if len(n.entries) <= t.maxEntries {
			break
		}
		left, right := t.split(n)
		if i < 0 {
			// n was the root: grow the tree.
			t.root = &node{
				leaf: false,
				entries: []entry{
					{rect: mbr(left), child: left},
					{rect: mbr(right), child: right},
				},
			}
			return
		}
		parent := path[i]
		// Replace n's entry with left, append right.
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = entry{rect: mbr(left), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry{rect: mbr(right), child: right})
		n = parent
	}
	// Refresh MBRs along the path.
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j].rect = mbr(n)
				break
			}
		}
		n = parent
	}
}

// chooseLeaf descends by least enlargement, returning the leaf and the
// root→leaf path of internal nodes above it.
func (t *Tree) chooseLeaf(r geometry.Rect) (*node, []*node) {
	var path []*node
	n := t.root
	for !n.leaf {
		path = append(path, n)
		best := 0
		bestEnl := n.entries[0].rect.Enlargement(r)
		for i := 1; i < len(n.entries); i++ {
			if enl := n.entries[i].rect.Enlargement(r); enl < bestEnl {
				best, bestEnl = i, enl
			}
		}
		// Growing the chosen entry's MBR now keeps ancestors consistent.
		n.entries[best].rect = n.entries[best].rect.Bound(r)
		n = n.entries[best].child
	}
	return n, path
}

// mbr computes a node's bounding rectangle.
func mbr(n *node) geometry.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Bound(e.rect)
	}
	return r
}

// split performs Guttman's quadratic split on an overflowing node,
// returning the two replacement nodes.
func (t *Tree) split(n *node) (*node, *node) {
	entries := n.entries
	// Pick the seed pair wasting the most area if grouped together.
	seedA, seedB := 0, 1
	var worst int64 = -1
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].rect.Enlargement(entries[j].rect) +
				entries[j].rect.Enlargement(entries[i].rect)
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	left := &node{leaf: n.leaf, entries: []entry{entries[seedA]}}
	right := &node{leaf: n.leaf, entries: []entry{entries[seedB]}}
	leftMBR, rightMBR := entries[seedA].rect, entries[seedB].rect

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force assignment if one side must absorb everything left to
		// reach minEntries.
		if len(left.entries)+len(rest) == t.minEntries {
			for _, e := range rest {
				left.entries = append(left.entries, e)
				leftMBR = leftMBR.Bound(e.rect)
			}
			break
		}
		if len(right.entries)+len(rest) == t.minEntries {
			for _, e := range rest {
				right.entries = append(right.entries, e)
				rightMBR = rightMBR.Bound(e.rect)
			}
			break
		}
		// Pick the entry with the strongest preference.
		bestIdx, bestDiff, toLeft := 0, int64(-1), true
		for i, e := range rest {
			dl := leftMBR.Enlargement(e.rect)
			dr := rightMBR.Enlargement(e.rect)
			diff := dl - dr
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff, toLeft = i, diff, dl < dr
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if toLeft {
			left.entries = append(left.entries, e)
			leftMBR = leftMBR.Bound(e.rect)
		} else {
			right.entries = append(right.entries, e)
			rightMBR = rightMBR.Bound(e.rect)
		}
	}
	return left, right
}

// SearchContaining returns the ids of all entries whose rectangle fully
// contains q — the instance-validation query. Results are in no particular
// order.
func (t *Tree) SearchContaining(q geometry.Rect) []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if !e.rect.Contains(q) {
				continue
			}
			if n.leaf {
				out = append(out, e.id)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return out
}

// SearchOverlapping returns the ids of all entries whose rectangle overlaps
// q on every axis — the overlap-graph edge query.
func (t *Tree) SearchOverlapping(q geometry.Rect) []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			if !e.rect.Overlaps(q) {
				continue
			}
			if n.leaf {
				out = append(out, e.id)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
	return out
}

// Depth returns the tree height (1 for a lone leaf root).
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		d++
	}
	return d
}

// checkInvariants walks the tree verifying structural invariants; tests use
// it. It returns a description of the first violation found, or "".
func (t *Tree) checkInvariants() string {
	var count int
	var walk func(n *node, depth int) (int, string)
	walk = func(n *node, depth int) (int, string) {
		if n != t.root && len(n.entries) == 0 {
			return 0, "empty non-root node"
		}
		if len(n.entries) > t.maxEntries {
			return 0, fmt.Sprintf("node with %d > max %d entries", len(n.entries), t.maxEntries)
		}
		if n.leaf {
			count += len(n.entries)
			return depth, ""
		}
		leafDepth := -1
		for _, e := range n.entries {
			if e.child == nil {
				return 0, "internal entry without child"
			}
			if !e.rect.Contains(mbr(e.child)) {
				return 0, "entry MBR does not cover child"
			}
			d, msg := walk(e.child, depth+1)
			if msg != "" {
				return 0, msg
			}
			if leafDepth == -1 {
				leafDepth = d
			} else if leafDepth != d {
				return 0, "leaves at different depths"
			}
		}
		return leafDepth, ""
	}
	if _, msg := walk(t.root, 0); msg != "" {
		return msg
	}
	if count != t.size {
		return fmt.Sprintf("size %d but %d leaf entries", t.size, count)
	}
	return ""
}
