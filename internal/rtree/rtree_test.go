package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
)

func schema2D() *geometry.Schema {
	return geometry.MustSchema(
		geometry.Axis{Name: "x", Kind: geometry.KindInterval},
		geometry.Axis{Name: "y", Kind: geometry.KindInterval},
	)
}

func box(s *geometry.Schema, x0, x1, y0, y1 int64) geometry.Rect {
	return geometry.MustRect(s,
		geometry.IntervalValue(interval.New(x0, x1)),
		geometry.IntervalValue(interval.New(y0, y1)))
}

func TestInsertAndSearchSmall(t *testing.T) {
	s := schema2D()
	tr := New(s, 0) // raised to default
	rects := []geometry.Rect{
		box(s, 0, 10, 0, 10),
		box(s, 5, 15, 5, 15),
		box(s, 100, 110, 100, 110),
	}
	for i, r := range rects {
		if err := tr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	q := box(s, 6, 9, 6, 9) // inside 0 and 1
	got := tr.SearchContaining(q)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("SearchContaining = %v, want [0 1]", got)
	}
	ov := tr.SearchOverlapping(box(s, 8, 12, 8, 12))
	sort.Ints(ov)
	if len(ov) != 2 || ov[0] != 0 || ov[1] != 1 {
		t.Errorf("SearchOverlapping = %v, want [0 1]", ov)
	}
	if got := tr.SearchContaining(box(s, 200, 201, 200, 201)); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
	if msg := tr.checkInvariants(); msg != "" {
		t.Errorf("invariant broken: %s", msg)
	}
}

func TestInsertErrors(t *testing.T) {
	s := schema2D()
	tr := New(s, 8)
	if err := tr.Insert(geometry.Rect{}, 0); err == nil {
		t.Error("zero rect accepted")
	}
	other := schema2D()
	if err := tr.Insert(box(other, 0, 1, 0, 1), 0); err == nil {
		t.Error("foreign-schema rect accepted")
	}
	empty := geometry.MustRect(s,
		geometry.IntervalValue(interval.Empty()),
		geometry.IntervalValue(interval.New(0, 1)))
	if err := tr.Insert(empty, 0); err == nil {
		t.Error("empty rect accepted")
	}
}

// linearContaining is the oracle the R-tree must agree with.
func linearContaining(rects []geometry.Rect, q geometry.Rect) []int {
	var out []int
	for i, r := range rects {
		if r.Contains(q) {
			out = append(out, i)
		}
	}
	return out
}

func linearOverlapping(rects []geometry.Rect, q geometry.Rect) []int {
	var out []int
	for i, r := range rects {
		if r.Overlaps(q) {
			out = append(out, i)
		}
	}
	return out
}

func randBox(r *rand.Rand, s *geometry.Schema) geometry.Rect {
	x0 := r.Int63n(500)
	y0 := r.Int63n(500)
	return box(s, x0, x0+r.Int63n(80), y0, y0+r.Int63n(80))
}

func TestSearchMatchesLinearQuick(t *testing.T) {
	// DESIGN.md invariant 7: R-tree == linear scan, splits included.
	s := schema2D()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(s, 4) // small fan-out to force deep trees
		var rects []geometry.Rect
		for i := 0; i < 150; i++ {
			b := randBox(r, s)
			rects = append(rects, b)
			if err := tr.Insert(b, i); err != nil {
				return false
			}
		}
		if msg := tr.checkInvariants(); msg != "" {
			t.Logf("invariant: %s", msg)
			return false
		}
		for trial := 0; trial < 25; trial++ {
			q := randBox(r, s)
			got := tr.SearchContaining(q)
			want := linearContaining(rects, q)
			if !sameSet(got, want) {
				return false
			}
			got = tr.SearchOverlapping(q)
			want = linearOverlapping(rects, q)
			if !sameSet(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDepthGrows(t *testing.T) {
	s := schema2D()
	tr := New(s, 4)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if err := tr.Insert(randBox(r, s), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Depth() < 3 {
		t.Errorf("depth = %d after 200 inserts with fan-out 4", tr.Depth())
	}
	if msg := tr.checkInvariants(); msg != "" {
		t.Errorf("invariant broken: %s", msg)
	}
}

func TestMixedAxesWithExample1(t *testing.T) {
	// The R-tree must answer the paper's instance-validation queries over
	// the mixed interval+set schema.
	ex := license.NewExample1()
	tr := New(ex.Schema, 4)
	for i := 0; i < ex.Corpus.Len(); i++ {
		if err := tr.Insert(ex.Corpus.License(i).Rect, i); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.SearchContaining(ex.Usage1.Rect)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("L_U^1 containment = %v, want [0 1]", got)
	}
	got = tr.SearchContaining(ex.Usage2.Rect)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("L_U^2 containment = %v, want [1]", got)
	}
}

func TestMixedAxesQuick(t *testing.T) {
	// Random rectangles over interval+set axes: R-tree equals linear scan.
	tax := 12
	s := geometry.MustSchema(
		geometry.Axis{Name: "t", Kind: geometry.KindInterval},
		geometry.Axis{Name: "r", Kind: geometry.KindSet, Universe: tax},
	)
	mk := func(r *rand.Rand) geometry.Rect {
		lo := r.Int63n(200)
		set := bitset.NewSet(tax)
		for i := 0; i < tax; i++ {
			if r.Intn(3) == 0 {
				set.Add(i)
			}
		}
		if set.Empty() {
			set.Add(r.Intn(tax))
		}
		return geometry.MustRect(s,
			geometry.IntervalValue(interval.New(lo, lo+r.Int63n(50))),
			geometry.SetValue(set))
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New(s, 5)
		var rects []geometry.Rect
		for i := 0; i < 80; i++ {
			b := mk(r)
			rects = append(rects, b)
			if err := tr.Insert(b, i); err != nil {
				return false
			}
		}
		for trial := 0; trial < 15; trial++ {
			q := mk(r)
			if !sameSet(tr.SearchContaining(q), linearContaining(rects, q)) {
				return false
			}
			if !sameSet(tr.SearchOverlapping(q), linearOverlapping(rects, q)) {
				return false
			}
		}
		return tr.checkInvariants() == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearchContainingRTreeVsLinear(b *testing.B) {
	s := schema2D()
	r := rand.New(rand.NewSource(1))
	const n = 5000
	tr := New(s, 16)
	rects := make([]geometry.Rect, n)
	for i := range rects {
		rects[i] = randBox(r, s)
		if err := tr.Insert(rects[i], i); err != nil {
			b.Fatal(err)
		}
	}
	queries := make([]geometry.Rect, 64)
	for i := range queries {
		queries[i] = randBox(r, s)
	}
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.SearchContaining(queries[i%len(queries)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			linearContaining(rects, queries[i%len(queries)])
		}
	})
}
