package region

import (
	"encoding/json"
	"fmt"
	"io"
)

// The taxonomy wire format is a single JSON document listing regions with
// their parents, in an order where parents precede children (the natural
// order a Builder produces). It lets deployments ship their own market
// hierarchies instead of the built-in World().

const taxonomyCodecVersion = 1

type taxonomyDoc struct {
	Version int         `json:"version"`
	Root    string      `json:"root"`
	Regions []regionDoc `json:"regions"`
}

type regionDoc struct {
	Name   string `json:"name"`
	Parent string `json:"parent"`
}

// WriteJSON serialises the taxonomy. The node-id order of a Taxonomy
// already guarantees parents precede children, so the document rebuilds
// with a plain Builder replay.
func (t *Taxonomy) WriteJSON(w io.Writer) error {
	doc := taxonomyDoc{Version: taxonomyCodecVersion, Root: t.names[0]}
	for id := 1; id < len(t.names); id++ {
		doc.Regions = append(doc.Regions, regionDoc{
			Name:   t.names[id],
			Parent: t.names[t.parent[id]],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("region: encode taxonomy: %w", err)
	}
	return nil
}

// ReadJSON rebuilds a taxonomy written by WriteJSON.
func ReadJSON(r io.Reader) (*Taxonomy, error) {
	var doc taxonomyDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("region: decode taxonomy: %w", err)
	}
	if doc.Version != taxonomyCodecVersion {
		return nil, fmt.Errorf("region: unsupported taxonomy version %d", doc.Version)
	}
	if doc.Root == "" {
		return nil, fmt.Errorf("region: taxonomy without a root")
	}
	b := NewBuilder(doc.Root)
	for _, rd := range doc.Regions {
		if err := b.Add(rd.Parent, rd.Name); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
