package region

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestWorldBasics(t *testing.T) {
	w := World()
	if w.NumLeaves() == 0 {
		t.Fatal("World has no leaves")
	}
	if _, ok := w.Lookup("Asia"); !ok {
		t.Error("Asia not found")
	}
	if _, ok := w.Lookup("asia"); !ok {
		t.Error("lookup must be case-insensitive")
	}
	if _, ok := w.Lookup("Atlantis"); ok {
		t.Error("unknown region resolved")
	}
	root, _ := w.Lookup("World")
	if w.Parent(root) != -1 {
		t.Error("root parent should be -1")
	}
	asia, _ := w.Lookup("Asia")
	if w.Parent(asia) != root {
		t.Error("Asia's parent should be World")
	}
	if w.IsLeaf(asia) {
		t.Error("Asia should be internal")
	}
	india, _ := w.Lookup("India")
	if !w.IsLeaf(india) {
		t.Error("India should be a leaf")
	}
}

func TestLeafSetsAreHierarchical(t *testing.T) {
	w := World()
	asia, _ := w.Lookup("Asia")
	india, _ := w.Lookup("India")
	root, _ := w.Lookup("World")
	if !w.Leaves(india).SubsetOf(w.Leaves(asia)) {
		t.Error("India's leaves not within Asia's")
	}
	if !w.Leaves(asia).SubsetOf(w.Leaves(root)) {
		t.Error("Asia's leaves not within World's")
	}
	if w.Leaves(root).Len() != w.NumLeaves() {
		t.Errorf("root covers %d leaves, want all %d", w.Leaves(root).Len(), w.NumLeaves())
	}
}

func TestSiblingsDisjoint(t *testing.T) {
	w := World()
	asia, _ := w.Lookup("Asia")
	europe, _ := w.Lookup("Europe")
	if w.Leaves(asia).Intersects(w.Leaves(europe)) {
		t.Error("Asia and Europe leaf sets must be disjoint")
	}
}

func TestResolvePaperExample(t *testing.T) {
	w := World()
	// R=[Asia, Europe] must contain R=[India]: the paper's L_U^1 vs L_D^1.
	rd, err := w.Resolve("Asia", "Europe")
	if err != nil {
		t.Fatal(err)
	}
	ru := w.MustResolve("India")
	if !ru.SubsetOf(rd) {
		t.Error("[India] must be contained in [Asia,Europe]")
	}
	// R=[Japan] vs R=[Asia]: L_U^2 belongs to L_D^2.
	if !w.MustResolve("Japan").SubsetOf(w.MustResolve("Asia")) {
		t.Error("[Japan] must be contained in [Asia]")
	}
	// [America] does not overlap [Asia, Europe]: group separation in fig 2.
	if w.MustResolve("America").Intersects(rd) {
		t.Error("[America] must not overlap [Asia,Europe]")
	}
}

func TestResolveUnknown(t *testing.T) {
	w := World()
	if _, err := w.Resolve("Asia", "Narnia"); err == nil {
		t.Error("expected error for unknown region")
	}
}

func TestDescribeRoundTrip(t *testing.T) {
	w := World()
	for _, names := range [][]string{
		{"Asia"},
		{"Asia", "Europe"},
		{"India", "Japan"},
		{"World"},
		{"India", "Germany", "USA"},
	} {
		s := w.MustResolve(names...)
		desc := w.Describe(s)
		// Re-resolving the description must reproduce the same leaf set.
		back := w.MustResolve(desc...)
		if !back.Equal(s) {
			t.Errorf("Describe(%v) = %v does not round-trip", names, desc)
		}
	}
}

func TestDescribeUsesInternalNames(t *testing.T) {
	w := World()
	s := w.MustResolve("Asia")
	desc := w.Describe(s)
	if len(desc) != 1 || desc[0] != "Asia" {
		t.Errorf("Describe(Asia leaves) = %v, want [Asia]", desc)
	}
	all := w.MustResolve("World")
	if d := w.Describe(all); len(d) != 1 || d[0] != "World" {
		t.Errorf("Describe(all) = %v, want [World]", d)
	}
}

func TestDescribeSorted(t *testing.T) {
	w := World()
	desc := w.Describe(w.MustResolve("Japan", "Germany", "India"))
	if !sort.StringsAreSorted(desc) {
		t.Errorf("Describe output %v not sorted", desc)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("Root")
	if err := b.Add("Nope", "X"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := b.Add("Root", "X"); err != nil {
		t.Fatal(err)
	}
	if err := b.Add("Root", "x"); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
}

func TestSingleNodeTaxonomy(t *testing.T) {
	tax := NewBuilder("Solo").Build()
	if tax.NumLeaves() != 1 {
		t.Errorf("NumLeaves = %d, want 1 (root is the only leaf)", tax.NumLeaves())
	}
	id, _ := tax.Lookup("Solo")
	if !tax.IsLeaf(id) {
		t.Error("childless root should be a leaf")
	}
	if got := tax.LeafName(0); got != "Solo" {
		t.Errorf("LeafName(0) = %q", got)
	}
}

func TestLeafOrdinalNames(t *testing.T) {
	w := World()
	india, _ := w.Lookup("India")
	ord := w.Leaves(india).Elems()[0]
	if got := w.LeafName(ord); got != "India" {
		t.Errorf("LeafName(%d) = %q, want India", ord, got)
	}
}

func TestTaxonomyJSONRoundTrip(t *testing.T) {
	w := World()
	var buf bytes.Buffer
	if err := w.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRegions() != w.NumRegions() || back.NumLeaves() != w.NumLeaves() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			back.NumRegions(), back.NumLeaves(), w.NumRegions(), w.NumLeaves())
	}
	// Leaf sets must be identical for every region, so constraints keep
	// their semantics across the wire.
	for id := 0; id < w.NumRegions(); id++ {
		name := w.Name(id)
		id2, ok := back.Lookup(name)
		if !ok {
			t.Fatalf("region %q lost", name)
		}
		if !back.Leaves(id2).Equal(w.Leaves(id)) {
			t.Errorf("region %q leaf set changed", name)
		}
	}
	// And re-encoding is canonical.
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := w.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Error("taxonomy encoding is not canonical")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"not json":    `{`,
		"bad version": `{"version":9,"root":"W","regions":[]}`,
		"no root":     `{"version":1,"regions":[]}`,
		"orphan":      `{"version":1,"root":"W","regions":[{"name":"X","parent":"Nope"}]}`,
		"duplicate":   `{"version":1,"root":"W","regions":[{"name":"X","parent":"W"},{"name":"x","parent":"W"}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
