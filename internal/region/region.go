// Package region implements the hierarchical region universe behind
// set-valued instance constraints ("region allowed for distribution").
//
// The paper's licenses carry constraints like R = [Asia, Europe] on
// redistribution licenses and R = [India] on usage licenses; [India] must be
// recognised as contained in [Asia, Europe]. We model this with a taxonomy
// tree (world → continents → countries → ...). Every region resolves to the
// set of taxonomy *leaves* under it, and constraint semantics become plain
// set algebra over leaf bitsets:
//
//   - containment: leaves(usage) ⊆ leaves(redistribution)
//   - overlap:     leaves(a) ∩ leaves(b) ≠ ∅
//
// which is exactly what the geometric axes in internal/geometry need.
package region

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitset"
)

// Taxonomy is an immutable region hierarchy. Build one with NewBuilder; the
// zero value is unusable.
type Taxonomy struct {
	names    []string       // node id → canonical name
	index    map[string]int // lower-cased name → node id
	parent   []int          // node id → parent id (-1 for root)
	children [][]int        // node id → child ids
	leafBits []bitset.Set   // node id → set of leaf ordinals under the node
	leafOrd  []int          // node id → leaf ordinal, or -1 for internal nodes
	numLeaf  int
}

// Builder accumulates parent→child edges and produces a Taxonomy.
type Builder struct {
	names  []string
	index  map[string]int
	parent []int
}

// NewBuilder returns a Builder whose root region has the given name
// (typically "World").
func NewBuilder(root string) *Builder {
	b := &Builder{index: make(map[string]int)}
	b.names = append(b.names, root)
	b.parent = append(b.parent, -1)
	b.index[strings.ToLower(root)] = 0
	return b
}

// Add registers child under parent. Region names are case-insensitive and
// must be globally unique. It returns an error if parent is unknown or child
// already exists.
func (b *Builder) Add(parent, child string) error {
	p, ok := b.index[strings.ToLower(parent)]
	if !ok {
		return fmt.Errorf("region: unknown parent %q", parent)
	}
	key := strings.ToLower(child)
	if _, dup := b.index[key]; dup {
		return fmt.Errorf("region: duplicate region %q", child)
	}
	b.index[key] = len(b.names)
	b.names = append(b.names, child)
	b.parent = append(b.parent, p)
	return nil
}

// MustAdd is Add for trusted literals; it panics on error.
func (b *Builder) MustAdd(parent, child string) {
	if err := b.Add(parent, child); err != nil {
		panic(err)
	}
}

// Build freezes the hierarchy into a Taxonomy.
func (b *Builder) Build() *Taxonomy {
	n := len(b.names)
	t := &Taxonomy{
		names:    append([]string(nil), b.names...),
		index:    make(map[string]int, n),
		parent:   append([]int(nil), b.parent...),
		children: make([][]int, n),
		leafBits: make([]bitset.Set, n),
		leafOrd:  make([]int, n),
	}
	for k, v := range b.index {
		t.index[k] = v
	}
	for id := 1; id < n; id++ {
		p := t.parent[id]
		t.children[p] = append(t.children[p], id)
	}
	// Assign leaf ordinals in node-id order (stable across runs).
	for id := 0; id < n; id++ {
		t.leafOrd[id] = -1
		if len(t.children[id]) == 0 {
			t.leafOrd[id] = t.numLeaf
			t.numLeaf++
		}
	}
	// Compute leaf sets bottom-up. Children always have larger ids than
	// parents (Builder appends), so a reverse scan suffices.
	for id := n - 1; id >= 0; id-- {
		s := bitset.NewSet(t.numLeaf)
		if t.leafOrd[id] >= 0 {
			s.Add(t.leafOrd[id])
		}
		for _, c := range t.children[id] {
			s = s.Union(t.leafBits[c])
		}
		t.leafBits[id] = s
	}
	return t
}

// NumLeaves returns the number of leaf regions, i.e. the universe width of
// the leaf bitsets.
func (t *Taxonomy) NumLeaves() int { return t.numLeaf }

// NumRegions returns the total number of regions (internal and leaf).
func (t *Taxonomy) NumRegions() int { return len(t.names) }

// Lookup resolves a region name (case-insensitive) to its node id.
func (t *Taxonomy) Lookup(name string) (int, bool) {
	id, ok := t.index[strings.ToLower(name)]
	return id, ok
}

// Name returns the canonical name of a node id.
func (t *Taxonomy) Name(id int) string { return t.names[id] }

// Parent returns the parent node id, or -1 for the root.
func (t *Taxonomy) Parent(id int) int { return t.parent[id] }

// Children returns the child node ids of id. The returned slice must not be
// modified.
func (t *Taxonomy) Children(id int) []int { return t.children[id] }

// IsLeaf reports whether id has no children.
func (t *Taxonomy) IsLeaf(id int) bool { return t.leafOrd[id] >= 0 }

// Leaves returns the set of leaf ordinals under the region id. The returned
// set is shared; callers must not mutate it.
func (t *Taxonomy) Leaves(id int) bitset.Set { return t.leafBits[id] }

// LeafName returns the canonical name of the leaf with the given ordinal.
func (t *Taxonomy) LeafName(ord int) string {
	for id, o := range t.leafOrd {
		if o == ord {
			return t.names[id]
		}
	}
	return fmt.Sprintf("leaf#%d", ord)
}

// Resolve maps a list of region names to the union of their leaf sets — the
// canonical constraint value for "R = [Asia, Europe]"-style constraints.
func (t *Taxonomy) Resolve(names ...string) (bitset.Set, error) {
	out := bitset.NewSet(t.numLeaf)
	for _, name := range names {
		id, ok := t.Lookup(name)
		if !ok {
			return bitset.Set{}, fmt.Errorf("region: unknown region %q", name)
		}
		out = out.Union(t.leafBits[id])
	}
	return out, nil
}

// MustResolve is Resolve for trusted literals; it panics on error.
func (t *Taxonomy) MustResolve(names ...string) bitset.Set {
	s, err := t.Resolve(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Describe renders a leaf set back into the shortest list of region names
// covering it exactly: whenever all leaves under an internal node are
// present, the node's name is used instead of its leaves. Useful for logs
// and error messages.
func (t *Taxonomy) Describe(s bitset.Set) []string {
	if s.Universe() != t.numLeaf {
		return []string{s.String()}
	}
	var names []string
	var walk func(id int)
	walk = func(id int) {
		if t.leafBits[id].SubsetOf(s) && !t.leafBits[id].Empty() {
			names = append(names, t.names[id])
			return
		}
		for _, c := range t.children[id] {
			if t.leafBits[c].Intersects(s) {
				walk(c)
			}
		}
	}
	walk(0)
	sort.Strings(names)
	return names
}

// World returns a compact default taxonomy with the regions used by the
// paper's examples (Asia ⊃ India, Japan; Europe; America) plus enough extra
// leaves to exercise wide constraints in tests and workloads.
func World() *Taxonomy {
	b := NewBuilder("World")
	b.MustAdd("World", "Asia")
	b.MustAdd("World", "Europe")
	b.MustAdd("World", "America")
	b.MustAdd("World", "Africa")
	b.MustAdd("World", "Oceania")

	b.MustAdd("Asia", "India")
	b.MustAdd("Asia", "Japan")
	b.MustAdd("Asia", "China")
	b.MustAdd("Asia", "Singapore")
	b.MustAdd("Asia", "Korea")

	b.MustAdd("Europe", "Germany")
	b.MustAdd("Europe", "France")
	b.MustAdd("Europe", "UK")
	b.MustAdd("Europe", "Spain")
	b.MustAdd("Europe", "Italy")

	b.MustAdd("America", "USA")
	b.MustAdd("America", "Canada")
	b.MustAdd("America", "Brazil")
	b.MustAdd("America", "Mexico")

	b.MustAdd("Africa", "Egypt")
	b.MustAdd("Africa", "Nigeria")
	b.MustAdd("Africa", "SouthAfrica")

	b.MustAdd("Oceania", "Australia")
	b.MustAdd("Oceania", "NewZealand")
	return b.Build()
}
