package engine

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/vtree"
	"repro/internal/wal"
	"repro/internal/workload"
)

// TestLifecycleInterleavingEquivalence is the keystone property of the
// typed lifecycle ledger: under random interleavings of plain and
// TTL-carrying issuance, revocation, transfers, expiry sweeps, batch
// audits, WAL snapshots, and crash-recovery, two equivalences must hold
// at every step:
//
//  1. cached headroom admission ≡ a fresh full audit of the net ledger —
//     the validation tree rebuilt from the log (signed effective counts)
//     reports exactly the headroom the incrementally-maintained cache
//     serves admission from;
//  2. recovered state ≡ uninterrupted state — a distributor warmed from
//     the reopened WAL (snapshot + tail) answers every headroom,
//     net-count, and transfer-total query identically to the one that
//     never went away.
//
// Debits the ledger would make unsound (revoking more than is
// outstanding) must be refused with a typed ledger_unsound error, and
// over-the-outstanding transfers with a violation. Run under -race in CI.
func TestLifecycleInterleavingEquivalence(t *testing.T) {
	for _, seed := range []int64{2, 7, 13} {
		t.Logf("seed %d", seed)
		w := workload.MustGenerate(workload.Config{
			N: 8, Groups: 3, Dims: 2, RecordsPerLicense: 2,
			AggregateLo: 1500, AggregateHi: 3000, Seed: seed,
		})
		dir := filepath.Join(t.TempDir(), "wal")
		store, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { store.Close() }()
		build := func(log logstore.Store) *Distributor {
			d := NewDistributor("prop", w.Schema, ModeOnline, log)
			for _, l := range w.Corpus.Licenses() {
				cp := *l
				if _, err := d.AddRedistribution(&cp); err != nil {
					t.Fatal(err)
				}
			}
			return d
		}
		d := build(store)
		rng := rand.New(rand.NewSource(seed*13 + 3))
		ctx := context.Background()
		now := int64(1_000_000) // logical clock for TTLs and sweeps
		var issued, revokes, unsound, transfers, overdrawn, sweeps, swept, audits, snapshots, recoveries int

		// headroomCheck asserts equivalence 1 for one belongs-to set.
		headroomCheck := func(step int, set bitset.Mask) int64 {
			tree, err := vtree.Build(w.Corpus.Len(), store)
			if err != nil {
				t.Fatal(err)
			}
			want, err := tree.Headroom(set, d.Corpus().Aggregates())
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.HeadroomContext(ctx, set)
			if err != nil {
				t.Fatalf("step %d: HeadroomContext(%v): %v", step, set, err)
			}
			if got != want {
				t.Fatalf("step %d: cached headroom(%v) = %d, fresh net-ledger audit says %d",
					step, set, got, want)
			}
			return want
		}

		for step := 0; step < 240; step++ {
			rect := w.Corpus.License(rng.Intn(w.Corpus.Len())).Rect
			set := d.BelongsTo(rect)
			if set.Empty() {
				t.Fatalf("step %d: corpus rect outside corpus", step)
			}
			net := store.LedgerSnapshot().Net(set)
			switch op := rng.Intn(20); {
			case op < 9: // issue (plain or TTL)
				count := int64(1 + rng.Intn(300))
				room := headroomCheck(step, set)
				var err error
				if rng.Intn(3) == 0 {
					_, err = d.IssueTTLContext(ctx, license.Usage, rect, count, now+int64(1+rng.Intn(50)))
				} else {
					_, err = d.IssueContext(ctx, license.Usage, rect, count)
				}
				if count <= room {
					if err != nil {
						t.Fatalf("step %d: issue(%v, %d) rejected with headroom %d: %v",
							step, set, count, room, err)
					}
					issued++
				} else if !errors.Is(err, ErrAggregateExhausted) {
					t.Fatalf("step %d: issue(%v, %d) err = %v, want exhaustion (headroom %d)",
						step, set, count, err, room)
				}
			case op < 12: // revoke, sometimes deliberately past the net count
				count := int64(1 + rng.Intn(200))
				_, err := d.RevokeContext(ctx, rect, count)
				if count <= net {
					if err != nil {
						t.Fatalf("step %d: revoke(%v, %d) with net %d: %v", step, set, count, net, err)
					}
					revokes++
					headroomCheck(step, set)
				} else {
					if drmerr.KindOf(err) != drmerr.KindLedgerUnsound {
						t.Fatalf("step %d: revoke(%v, %d) past net %d: err = %v, want ledger_unsound",
							step, set, count, net, err)
					}
					unsound++
				}
			case op < 14: // transfer, sometimes past the outstanding bound
				count := int64(1 + rng.Intn(200))
				if rng.Intn(4) == 0 {
					count = net + int64(1+rng.Intn(50))
				}
				_, err := d.TransferContext(ctx, rect, count)
				if count <= net {
					if err != nil {
						t.Fatalf("step %d: transfer(%v, %d) with net %d: %v", step, set, count, net, err)
					}
					transfers++
					headroomCheck(step, set) // transfers are aggregate-neutral
				} else {
					if drmerr.KindOf(err) != drmerr.KindViolation {
						t.Fatalf("step %d: transfer(%v, %d) past net %d: err = %v, want violation",
							step, set, count, net, err)
					}
					overdrawn++
				}
			case op < 16: // advance the clock and sweep expiries
				now += int64(rng.Intn(40))
				due := store.LedgerSnapshot().Due(now)
				var wantRecords int
				var wantCounts int64
				for _, r := range due {
					wantRecords++
					wantCounts += r.Count
				}
				res, err := d.ExpireSweep(ctx, time.Unix(now, 0))
				if err != nil {
					t.Fatalf("step %d: expire sweep at %d: %v", step, now, err)
				}
				if res.Records != wantRecords || res.Counts != wantCounts {
					t.Fatalf("step %d: sweep debited %d records / %d counts, schedule said %d / %d",
						step, res.Records, res.Counts, wantRecords, wantCounts)
				}
				if left := store.LedgerSnapshot().Due(now); len(left) != 0 {
					t.Fatalf("step %d: %d buckets still due after sweep", step, len(left))
				}
				sweeps++
				swept += res.Records
			case op < 17: // audit: clean, and the cache verifies against the net ledger
				rep, _, err := d.Audit(1)
				if err != nil {
					t.Fatalf("step %d: audit: %v", step, err)
				}
				if !rep.OK() {
					t.Fatalf("step %d: audit found violations in an online-guarded log: %+v",
						step, rep.Violations)
				}
				audits++
			case op < 18: // snapshot: compact the signed history
				if _, err := store.Snapshot(); err != nil {
					t.Fatalf("step %d: snapshot: %v", step, err)
				}
				snapshots++
			default: // crash-recover: reopen the WAL, rebuild, compare everything
				type state struct {
					room, net, xfer int64
				}
				pre := make(map[bitset.Mask]state)
				for i := 0; i < w.Corpus.Len(); i++ {
					s := d.BelongsTo(w.Corpus.License(i).Rect)
					room, err := d.HeadroomContext(ctx, s)
					if err != nil {
						t.Fatal(err)
					}
					led := store.LedgerSnapshot()
					pre[s] = state{room: room, net: led.Net(s), xfer: led.Transferred(s)}
				}
				if err := store.Close(); err != nil {
					t.Fatalf("step %d: close: %v", step, err)
				}
				store, err = wal.Open(dir, wal.Options{})
				if err != nil {
					t.Fatalf("step %d: reopen: %v", step, err)
				}
				d = build(store)
				if err := d.WarmHeadroom(ctx); err != nil {
					t.Fatalf("step %d: warm after recovery: %v", step, err)
				}
				led := store.LedgerSnapshot()
				for s, want := range pre {
					room, err := d.HeadroomContext(ctx, s)
					if err != nil {
						t.Fatal(err)
					}
					if room != want.room || led.Net(s) != want.net || led.Transferred(s) != want.xfer {
						t.Fatalf("step %d: recovered state for %v = (room %d, net %d, xfer %d), uninterrupted was (%d, %d, %d)",
							step, s, room, led.Net(s), led.Transferred(s), want.room, want.net, want.xfer)
					}
				}
				recoveries++
			}
		}
		rep, _, err := d.Audit(1)
		if err != nil || !rep.OK() {
			t.Fatalf("final audit: ok=%v err=%v", rep.OK(), err)
		}
		if issued == 0 || revokes == 0 || unsound == 0 || transfers == 0 ||
			overdrawn == 0 || sweeps == 0 || swept == 0 || audits == 0 ||
			snapshots == 0 || recoveries == 0 {
			t.Fatalf("interleaving did not exercise all ops: issued=%d revokes=%d unsound=%d transfers=%d overdrawn=%d sweeps=%d swept=%d audits=%d snapshots=%d recoveries=%d",
				issued, revokes, unsound, transfers, overdrawn, sweeps, swept, audits, snapshots, recoveries)
		}
	}
}
