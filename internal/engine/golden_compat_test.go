package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bitset"
	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/wal"
)

// updateGolden regenerates the checked-in v1 (kindless) log artifacts
// and the golden audit report. Run `go test ./internal/engine
// -run TestV1KindlessLogCompat -update-golden` ONLY when the fixture
// record set itself changes — the artifacts are frozen at the
// pre-lifecycle wire formats, and every future revision of the ledger
// must keep replaying them unchanged.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite the v1 kindless log artifacts and golden audit report")

// v1CompatRecords is the frozen fixture: plain kindless issuances over
// the Example 1 corpus (groups {L1,L2,L4} and {L3,L5}), including one
// aggregate violation so the golden report is non-trivial.
func v1CompatRecords() []logstore.Record {
	return []logstore.Record{
		{Set: bitset.MaskOf(0, 1), Count: 840},
		{Set: bitset.MaskOf(1), Count: 400},
		{Set: bitset.MaskOf(0, 1, 3), Count: 230},
		{Set: bitset.MaskOf(2, 4), Count: 555},
		{Set: bitset.MaskOf(2), Count: 99999}, // violates every equation containing L3
		{Set: bitset.MaskOf(3), Count: 17},
		{Set: bitset.MaskOf(0, 1), Count: 60},
	}
}

// goldenReport is the stable audit-report rendering the compatibility
// check compares byte-for-byte.
type goldenReport struct {
	OK         bool     `json:"ok"`
	Equations  int64    `json:"equations"`
	Groups     int      `json:"groups"`
	Violations []string `json:"violations"`
}

// auditGolden replays one store through an offline distributor over the
// Example 1 corpus and renders the canonical report bytes.
func auditGolden(t *testing.T, store logstore.Store) []byte {
	t.Helper()
	ex := license.NewExample1()
	d := NewDistributor("compat", ex.Schema, ModeOffline, store)
	for i := 0; i < ex.Corpus.Len(); i++ {
		cp := *ex.Corpus.License(i)
		if _, err := d.AddRedistribution(&cp); err != nil {
			t.Fatal(err)
		}
	}
	rep, aud, err := d.AuditContext(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	out := goldenReport{
		OK:         rep.OK(),
		Equations:  rep.Equations,
		Groups:     aud.Grouping().NumGroups(),
		Violations: []string{},
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// copyTree copies the checked-in artifact (file or directory) into a
// scratch dir, so replays never mutate testdata.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	fi, err := os.Stat(src)
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir() {
		b, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		copyTree(t, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
	}
}

// TestV1KindlessLogCompat is the backward-compatibility golden test:
// pre-lifecycle logs — a kindless JSONL file and a v1 WAL segment whose
// frames carry no kind byte — must replay as implicit issues and audit
// to byte-identical reports, now and under every future ledger change.
func TestV1KindlessLogCompat(t *testing.T) {
	td := filepath.Join("testdata", "v1compat")
	jsonlPath := filepath.Join(td, "issued.jsonl")
	walDir := filepath.Join(td, "wal")
	goldenPath := filepath.Join(td, "audit_report.golden.json")

	if *updateGolden {
		regenerateV1Artifacts(t, td, jsonlPath, walDir, goldenPath)
	}

	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	// The JSONL artifact must stay kindless — plain issues serialize
	// exactly as the pre-lifecycle encoder wrote them.
	rawJSONL, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(rawJSONL, []byte(`"kind"`)) {
		t.Fatal("v1 JSONL artifact contains a kind key; it must stay kindless")
	}

	scratch := t.TempDir()
	jsonlCopy := filepath.Join(scratch, "issued.jsonl")
	copyTree(t, jsonlPath, jsonlCopy)
	fileStore, err := logstore.OpenFile(jsonlCopy)
	if err != nil {
		t.Fatal(err)
	}
	defer fileStore.Close()
	fromJSONL := auditGolden(t, fileStore)

	walCopy := filepath.Join(scratch, "wal")
	copyTree(t, walDir, walCopy)
	walStore, err := wal.Open(walCopy, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer walStore.Close()
	if n := walStore.Len(); n != len(v1CompatRecords()) {
		t.Fatalf("v1 WAL replayed %d records, want %d", n, len(v1CompatRecords()))
	}
	fromWAL := auditGolden(t, walStore)

	if !bytes.Equal(fromJSONL, fromWAL) {
		t.Errorf("JSONL and WAL replays audit differently:\nJSONL:\n%s\nWAL:\n%s", fromJSONL, fromWAL)
	}
	if !bytes.Equal(fromJSONL, golden) {
		t.Errorf("JSONL replay diverges from golden report:\ngot:\n%s\nwant:\n%s", fromJSONL, golden)
	}
	if !bytes.Equal(fromWAL, golden) {
		t.Errorf("WAL replay diverges from golden report:\ngot:\n%s\nwant:\n%s", fromWAL, golden)
	}
}

// regenerateV1Artifacts rewrites the artifacts. Plain issue records
// still encode bit-for-bit as the v1 formats (kindless JSONL objects,
// 24-byte WAL frames) — asserted here so -update-golden can never
// silently freeze a v2 encoding as "v1".
func regenerateV1Artifacts(t *testing.T, td, jsonlPath, walDir, goldenPath string) {
	t.Helper()
	if err := os.RemoveAll(td); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(td, 0o755); err != nil {
		t.Fatal(err)
	}
	recs := v1CompatRecords()

	fileStore, err := logstore.OpenFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := fileStore.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fileStore.Close(); err != nil {
		t.Fatal(err)
	}

	walStore, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := walStore.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := walStore.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := logstore.OpenFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, auditGolden(t, reopened), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	t.Log("v1 compatibility artifacts regenerated")
}
