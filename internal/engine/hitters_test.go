package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/license"
	"repro/internal/slo"
)

// TestHeavyHitterAttribution pins the engine→slo hook: accepted and
// aggregate-rejected issuances are charged to the distributor entry and
// to a stable overlap-group label; instance-invalid requests (no
// belongs-to set, hence no group) are not charged.
func TestHeavyHitterAttribution(t *testing.T) {
	old := Hitters
	Hitters = slo.NewHitters(8)
	t.Cleanup(func() { Hitters = old })

	ex, d := ex1Distributor(t, ModeOnline)
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 10); err != nil {
		t.Fatalf("accept: %v", err)
	}
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 10); err != nil {
		t.Fatalf("accept: %v", err)
	}
	// Exhaust the aggregate budget: a rejected issuance must land in the
	// rejection sketch.
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 1_000_000); err == nil {
		t.Fatal("oversized issuance accepted")
	}

	s := Hitters.Snapshot()
	if len(s.Entries.ByRequests) == 0 || s.Entries.ByRequests[0].Item != "D1" {
		t.Fatalf("entries by requests = %+v, want D1", s.Entries.ByRequests)
	}
	if got := s.Entries.ByRequests[0].Weight; got != 3 {
		t.Errorf("entry request weight = %d, want 3 (2 accepts + 1 aggregate reject)", got)
	}
	if len(s.Entries.ByRejections) != 1 || s.Entries.ByRejections[0].Weight != 1 {
		t.Errorf("entries by rejections = %+v, want D1 ×1", s.Entries.ByRejections)
	}
	if len(s.Groups.ByRequests) != 1 {
		t.Fatalf("groups by requests = %+v, want one group label", s.Groups.ByRequests)
	}
	g := s.Groups.ByRequests[0]
	if !strings.HasPrefix(g.Item, "D1#g") {
		t.Errorf("group label = %q, want D1#g<root>", g.Item)
	}
	if g.Weight != 3 {
		t.Errorf("group request weight = %d, want 3", g.Weight)
	}
	if len(s.Groups.ByRejections) != 1 || s.Groups.ByRejections[0].Item != g.Item {
		t.Errorf("groups by rejections = %+v, want %q", s.Groups.ByRejections, g.Item)
	}

	// Stability: the same set must map to the same group label.
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 10); err != nil {
		t.Fatalf("post-reject accept: %v", err)
	}
	s = Hitters.Snapshot()
	if len(s.Groups.ByRequests) != 1 || s.Groups.ByRequests[0].Weight != 4 {
		t.Errorf("group label unstable across issuances: %+v", s.Groups.ByRequests)
	}
}

// TestHittersHookNilIsFree: with the hook unset, issuance runs exactly
// as before (no sketch, no panic).
func TestHittersHookNil(t *testing.T) {
	old := Hitters
	Hitters = nil
	t.Cleanup(func() { Hitters = old })
	ex, d := ex1Distributor(t, ModeOnline)
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 5); err != nil {
		t.Fatal(err)
	}
}

// TestRecordHitterNilHookZeroAlloc extends the alloc-equality gate to
// the heavy-hitter path: an uninstrumented process (hook unset) pays one
// pointer compare and zero allocations per issuance decision.
func TestRecordHitterNilHookZeroAlloc(t *testing.T) {
	old := Hitters
	Hitters = nil
	t.Cleanup(func() { Hitters = old })
	ex, d := ex1Distributor(t, ModeOnline)
	set := d.BelongsTo(ex.Usage1.Rect)
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		d.recordHitter(set, start, false)
	}); allocs != 0 {
		t.Errorf("uninstrumented recordHitter allocates %v per op, want 0", allocs)
	}
}
