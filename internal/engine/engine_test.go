package engine

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/geometry"
	"repro/internal/interval"
	"repro/internal/license"
	"repro/internal/logstore"
)

// ex1Distributor wires the paper's Example 1 corpus into a distributor.
func ex1Distributor(t *testing.T, mode Mode) (*license.Example1, *Distributor) {
	t.Helper()
	ex := license.NewExample1()
	d := NewDistributor("D1", ex.Schema, mode, logstore.NewMem(0))
	for i := 0; i < ex.Corpus.Len(); i++ {
		l := ex.Corpus.License(i)
		copy := *l
		if _, err := d.AddRedistribution(&copy); err != nil {
			t.Fatal(err)
		}
	}
	return ex, d
}

func TestIssueInstanceValidation(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOffline)
	// L_U^1 belongs to {L1,L2}: accepted.
	u1, err := d.Issue(license.Usage, ex.Usage1.Rect, 800)
	if err != nil {
		t.Fatalf("L_U^1 rejected: %v", err)
	}
	if u1.Kind != license.Usage || u1.Aggregate != 800 {
		t.Errorf("issued license = %+v", u1)
	}
	// A rectangle outside every license (like fig 2's L_U^2 example of
	// instance invalidity): rejected with ErrInstanceInvalid.
	far := geometry.MustRect(ex.Schema,
		geometry.IntervalValue(interval.MustDateRange("01/01/20", "02/01/20")),
		geometry.SetValue(ex.Taxonomy.MustResolve("India")),
	)
	if _, err := d.Issue(license.Usage, far, 10); !errors.Is(err, ErrInstanceInvalid) {
		t.Errorf("far issuance error = %v, want ErrInstanceInvalid", err)
	}
	st := d.Stats()
	if st.Issued != 1 || st.RejectedInstance != 1 || st.IssuedCounts != 800 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIssueCountValidation(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOffline)
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, -5); err == nil {
		t.Error("negative count accepted")
	}
}

func TestIssueWithoutLicenses(t *testing.T) {
	ex := license.NewExample1()
	d := NewDistributor("empty", ex.Schema, ModeOffline, logstore.NewMem(0))
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 10); !errors.Is(err, ErrInstanceInvalid) {
		t.Errorf("err = %v, want ErrInstanceInvalid", err)
	}
}

func TestOnlineModeEnforcesAggregates(t *testing.T) {
	// Example 1's sequence in online mode: both issuances accepted (the
	// equation policy), then exhaustion is rejected.
	ex, d := ex1Distributor(t, ModeOnline)
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 800); err != nil {
		t.Fatalf("L_U^1 rejected: %v", err)
	}
	if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 400); err != nil {
		t.Fatalf("L_U^2 rejected: %v", err)
	}
	// {L2}'s headroom is now 1000-400-... L_U^1 consumed {L1,L2} jointly:
	// headroom for {L2} = A{2} - C⟨{2}⟩ = 1000 - 400 = 600, but the
	// equation for {L1,L2} binds: 3000 - 1200 = 1800. So 600 left for {L2}.
	if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 601); !errors.Is(err, ErrAggregateExhausted) {
		t.Errorf("over-issuance error = %v, want ErrAggregateExhausted", err)
	}
	if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 600); err != nil {
		t.Errorf("exact headroom rejected: %v", err)
	}
	st := d.Stats()
	if st.Issued != 3 || st.RejectedAggregate != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The audit of an online-mode log must be clean by construction.
	rep, _, err := d.Audit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("online log audits dirty: %v", rep.Violations)
	}
}

func TestOfflineAuditFindsViolations(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOffline)
	// Offline mode happily logs over-issuance...
	for i := 0; i < 3; i++ {
		if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 400); err != nil {
			t.Fatal(err)
		}
	}
	// ...and the audit catches it: C⟨{2}⟩ = 1200 > 1000.
	rep, aud, err := d.Audit(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("audit missed the violation")
	}
	if aud.Grouping().NumGroups() != 2 {
		t.Errorf("groups = %d, want 2", aud.Grouping().NumGroups())
	}
	if rep.Equations != 10 {
		t.Errorf("equations = %d, want 10", rep.Equations)
	}
}

func TestIncrementalGroupTracking(t *testing.T) {
	ex := license.NewExample1()
	d := NewDistributor("D", ex.Schema, ModeOffline, logstore.NewMem(0))
	counts := []int{1, 1, 2, 2, 2} // groups after adding L1..L5 in order
	for i := 0; i < ex.Corpus.Len(); i++ {
		l := *ex.Corpus.License(i)
		if _, err := d.AddRedistribution(&l); err != nil {
			t.Fatal(err)
		}
		if got := d.NumGroups(); got != counts[i] {
			t.Errorf("after L%d: groups = %d, want %d", i+1, got, counts[i])
		}
	}
}

func TestBelongsToMask(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOffline)
	set := d.BelongsTo(ex.Usage1.Rect)
	if set.String() != "{1,2}" {
		t.Errorf("BelongsTo = %v, want {1,2}", set)
	}
}

func TestNetworkRouting(t *testing.T) {
	ex := license.NewExample1()
	net := NewNetwork(ex.Schema, ModeOffline)
	l1 := *ex.Corpus.License(0)
	d, err := net.Grant("acme", &l1)
	if err != nil {
		t.Fatal(err)
	}
	if net.Distributor("acme", "K", license.Play) != d {
		t.Error("lookup after grant failed")
	}
	if net.Distributor("acme", "K2", license.Play) != nil {
		t.Error("lookup of unknown content succeeded")
	}
	if net.Distributor("other", "K", license.Play) != nil {
		t.Error("lookup of unknown distributor succeeded")
	}
	// Second grant reuses the same corpus.
	l2 := *ex.Corpus.License(1)
	d2, err := net.Grant("acme", &l2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Error("second grant created a new distributor")
	}
	if d.Corpus().Len() != 2 {
		t.Errorf("corpus len = %d, want 2", d.Corpus().Len())
	}
	if len(net.Distributors()) != 1 {
		t.Errorf("distributors = %d, want 1", len(net.Distributors()))
	}
}

func TestNetworkAuditAll(t *testing.T) {
	ex := license.NewExample1()
	net := NewNetwork(ex.Schema, ModeOffline)
	var d *Distributor
	for i := 0; i < ex.Corpus.Len(); i++ {
		l := *ex.Corpus.License(i)
		var err error
		d, err = net.Grant("acme", &l)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 800); err != nil {
		t.Fatal(err)
	}
	reports, err := net.AuditAll(2)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := reports[d]
	if !ok {
		t.Fatal("no report for distributor")
	}
	if !rep.OK() {
		t.Errorf("violations: %v", rep.Violations)
	}
}

func TestOnlineNeverProducesDirtyLog(t *testing.T) {
	// Fuzzish end-to-end: random issuance pressure in online mode must
	// always leave an audit-clean log (DESIGN.md invariant 2's engine
	// half: only instance-valid, equation-valid records are logged).
	ex, d := ex1Distributor(t, ModeOnline)
	r := rand.New(rand.NewSource(4))
	rects := []geometry.Rect{ex.Usage1.Rect, ex.Usage2.Rect}
	for i := 0; i < 300; i++ {
		_, _ = d.Issue(license.Usage, rects[r.Intn(len(rects))], int64(1+r.Intn(120)))
	}
	rep, _, err := d.Audit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("online mode let a violation through: %v", rep.Violations)
	}
	if d.Stats().RejectedAggregate == 0 {
		t.Error("test exerted no aggregate pressure")
	}
}

func TestSubRedistributionIssuance(t *testing.T) {
	// A distributor can issue redistribution licenses to sub-distributors;
	// they consume aggregate counts exactly like usage licenses.
	ex, d := ex1Distributor(t, ModeOnline)
	sub, err := d.Issue(license.Redistribution, ex.Usage1.Rect, 500)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Kind != license.Redistribution {
		t.Errorf("kind = %v", sub.Kind)
	}
	// The sub-license can seed a downstream distributor.
	d2 := NewDistributor("D2", ex.Schema, ModeOnline, logstore.NewMem(0))
	if _, err := d2.AddRedistribution(sub); err != nil {
		t.Fatal(err)
	}
	// Downstream issuance within the sub-license works...
	if _, err := d2.Issue(license.Usage, ex.Usage1.Rect, 500); err != nil {
		t.Fatal(err)
	}
	// ...and is bounded by the delegated 500 counts.
	if _, err := d2.Issue(license.Usage, ex.Usage1.Rect, 1); !errors.Is(err, ErrAggregateExhausted) {
		t.Errorf("err = %v, want ErrAggregateExhausted", err)
	}
}

func TestModeString(t *testing.T) {
	if ModeOffline.String() != "offline" || ModeOnline.String() != "online" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestTopUpRestoresHeadroom(t *testing.T) {
	// The remediation loop: exhaust a license online, top it up, and the
	// previously rejected issuance now succeeds.
	ex, d := ex1Distributor(t, ModeOnline)
	if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 1000); err != nil { // drain {L2}
		t.Fatal(err)
	}
	if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 100); !errors.Is(err, ErrAggregateExhausted) {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	if err := d.TopUp(1, 100); err != nil { // top up L2
		t.Fatal(err)
	}
	if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 100); err != nil {
		t.Errorf("post-top-up issuance rejected: %v", err)
	}
	// And the audit sees the raised budget too.
	rep, _, err := d.Audit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("audit dirty after top-up: %v", rep.Violations)
	}
	if err := d.TopUp(9, 5); err == nil {
		t.Error("bad index accepted")
	}
}

func TestDistributorName(t *testing.T) {
	ex := license.NewExample1()
	d := NewDistributor("named", ex.Schema, ModeOffline, logstore.NewMem(0))
	if d.Name() != "named" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestAddRedistributionRejectsBadLicense(t *testing.T) {
	ex := license.NewExample1()
	d := NewDistributor("d", ex.Schema, ModeOffline, logstore.NewMem(0))
	u := *ex.Usage1 // usage kind is not a redistribution license
	if _, err := d.AddRedistribution(&u); err == nil {
		t.Error("usage license accepted as redistribution")
	}
}
