package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/geometry"
	"repro/internal/license"
)

// lifecycleFixture wires Example 1 into a distributor and returns the
// usage rectangle (belongs to {L1,L2}), its belongs-to set, and the
// starting headroom for that set. Lifecycle deltas are exact: issuing n
// against S lowers headroom(S) by exactly n (every equation V ⊇ S gains
// n on its LHS), revoking/expiring n raises it by n, transfers leave it.
func lifecycleFixture(t *testing.T, mode Mode) (*Distributor, geometry.Rect, bitset.Mask, int64) {
	t.Helper()
	ex, d := ex1Distributor(t, mode)
	rect := ex.Usage1.Rect
	set := d.BelongsTo(rect)
	if set.Empty() {
		t.Fatal("usage rect outside corpus")
	}
	room, err := d.HeadroomContext(context.Background(), set)
	if err != nil {
		t.Fatal(err)
	}
	return d, rect, set, room
}

func TestRevokeFreesHeadroom(t *testing.T) {
	d, rect, set, room0 := lifecycleFixture(t, ModeOnline)
	ctx := context.Background()
	if _, err := d.IssueContext(ctx, license.Usage, rect, 600); err != nil {
		t.Fatal(err)
	}
	if room, _ := d.HeadroomContext(ctx, set); room != room0-600 {
		t.Fatalf("headroom after issue = %d, want %d", room, room0-600)
	}
	if _, err := d.RevokeContext(ctx, rect, 250); err != nil {
		t.Fatal(err)
	}
	if room, _ := d.HeadroomContext(ctx, set); room != room0-350 {
		t.Fatalf("headroom after revoke = %d, want %d", room, room0-350)
	}
	// Revoking past the outstanding 350 is refused by the store's
	// soundness gate with a typed 409 kind.
	if _, err := d.RevokeContext(ctx, rect, 500); drmerr.KindOf(err) != drmerr.KindLedgerUnsound {
		t.Fatalf("over-revoke err = %v, want ledger_unsound", err)
	}
	st := d.Stats()
	if st.Revoked != 1 || st.RevokedCounts != 250 {
		t.Fatalf("stats = %+v, want 1 revoke of 250", st)
	}
}

func TestTransferCapAndOutstandingBound(t *testing.T) {
	d, rect, set, room0 := lifecycleFixture(t, ModeOnline)
	ctx := context.Background()
	if _, err := d.IssueContext(ctx, license.Usage, rect, 500); err != nil {
		t.Fatal(err)
	}
	// Transfers past the outstanding count are violations.
	if _, err := d.TransferContext(ctx, rect, 501); drmerr.KindOf(err) != drmerr.KindViolation {
		t.Fatalf("over-outstanding transfer err = %v, want violation", err)
	}
	d.SetTransferCap(300)
	if _, err := d.TransferContext(ctx, rect, 200); err != nil {
		t.Fatal(err)
	}
	// Cumulative total 200 + 150 would exceed the cap of 300.
	if _, err := d.TransferContext(ctx, rect, 150); !errors.Is(err, ErrTransferCapExceeded) {
		t.Fatalf("capped transfer err = %v, want ErrTransferCapExceeded", err)
	}
	// Transfers are aggregate-neutral: headroom is unchanged by them.
	if room, _ := d.HeadroomContext(ctx, set); room != room0-500 {
		t.Fatalf("headroom after transfers = %d, want %d", room, room0-500)
	}
	st := d.Stats()
	if st.Transferred != 1 || st.TransferredCounts != 200 {
		t.Fatalf("stats = %+v, want 1 transfer of 200", st)
	}
}

func TestExpireSweepDebitsDueBuckets(t *testing.T) {
	d, rect, set, room0 := lifecycleFixture(t, ModeOnline)
	ctx := context.Background()
	base := time.Now().Unix()
	if _, err := d.IssueTTLContext(ctx, license.Usage, rect, 100, base+10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.IssueTTLContext(ctx, license.Usage, rect, 50, base+100); err != nil {
		t.Fatal(err)
	}
	if _, err := d.IssueContext(ctx, license.Usage, rect, 25); err != nil {
		t.Fatal(err)
	}
	if room, _ := d.HeadroomContext(ctx, set); room != room0-175 {
		t.Fatalf("headroom before sweep = %d, want %d", room, room0-175)
	}
	// Sweep past the first expiry only.
	res, err := d.ExpireSweep(ctx, time.Unix(base+10, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1 || res.Counts != 100 {
		t.Fatalf("sweep = %+v, want 1 record of 100", res)
	}
	if room, _ := d.HeadroomContext(ctx, set); room != room0-75 {
		t.Fatalf("headroom after sweep = %d, want %d", room, room0-75)
	}
	// A second sweep at the same moment finds nothing due.
	res, err = d.ExpireSweep(ctx, time.Unix(base+10, 0))
	if err != nil || res.Records != 0 {
		t.Fatalf("repeat sweep = %+v, %v; want empty", res, err)
	}
	st := d.Stats()
	if st.Expired != 1 || st.ExpiredCounts != 100 {
		t.Fatalf("stats = %+v, want 1 expiry of 100", st)
	}
}

func TestOfflineLifecycleOnlyLogs(t *testing.T) {
	d, rect, set, room0 := lifecycleFixture(t, ModeOffline)
	ctx := context.Background()
	if _, err := d.IssueContext(ctx, license.Usage, rect, 400); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RevokeContext(ctx, rect, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TransferContext(ctx, rect, 100); err != nil {
		t.Fatal(err)
	}
	// Offline skips the cap: policy is audited in batch, not at append.
	d.SetTransferCap(1)
	if _, err := d.TransferContext(ctx, rect, 100); err != nil {
		t.Fatal(err)
	}
	// The store's soundness gate still holds offline: net is 250.
	if _, err := d.RevokeContext(ctx, rect, 1000); drmerr.KindOf(err) != drmerr.KindLedgerUnsound {
		t.Fatalf("offline over-revoke err = %v, want ledger_unsound", err)
	}
	// A headroom query replays the net log.
	if room, err := d.HeadroomContext(ctx, set); err != nil || room != room0-250 {
		t.Fatalf("offline headroom = %d, %v; want %d", room, err, room0-250)
	}
	rep, _, err := d.Audit(1)
	if err != nil || !rep.OK() {
		t.Fatalf("offline audit: ok=%v err=%v", rep.OK(), err)
	}
}
