package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/license"
)

// TestStatsUnderConcurrentIssue hammers online issuance from many
// goroutines while a reader polls Stats, then reconciles the counters
// against per-goroutine tallies. Stats counters are atomics; this test
// (run with -race in CI) is the regression guard for the lock-discipline
// gap the old int-field stats had, where Issued and IssuedCounts were
// updated non-atomically and reads could tear.
func TestStatsUnderConcurrentIssue(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOnline)
	const workers = 8
	const iters = 60

	var accepted, acceptedCounts, rejectedAgg atomic.Int64
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
				st := d.Stats()
				if st.Issued < 0 || st.IssuedCounts < 0 {
					t.Error("torn stats read")
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rect := ex.Usage1.Rect
				if (g+i)%2 == 0 {
					rect = ex.Usage2.Rect
				}
				count := int64(1 + (g+i)%3)
				_, err := d.Issue(license.Usage, rect, count)
				switch {
				case err == nil:
					accepted.Add(1)
					acceptedCounts.Add(count)
				default:
					rejectedAgg.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	st := d.Stats()
	if int64(st.Issued) != accepted.Load() {
		t.Errorf("Issued = %d, workers accepted %d", st.Issued, accepted.Load())
	}
	if st.IssuedCounts != acceptedCounts.Load() {
		t.Errorf("IssuedCounts = %d, workers issued %d", st.IssuedCounts, acceptedCounts.Load())
	}
	if int64(st.RejectedAggregate) != rejectedAgg.Load() {
		t.Errorf("RejectedAggregate = %d, workers saw %d", st.RejectedAggregate, rejectedAgg.Load())
	}
	// The log must hold exactly the accepted records: admission reserves
	// before appending, so concurrent acceptances can never overshoot.
	if got := d.log.Len(); int64(got) != accepted.Load() {
		t.Errorf("log holds %d records, %d accepted", got, accepted.Load())
	}
	rep, _, err := d.Audit(1)
	if err != nil {
		t.Fatalf("audit after hammer: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("online hammer produced a dirty log: %+v", rep.Violations)
	}
}
