package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/drmerr"
	"repro/internal/license"
	"repro/internal/logstore"
)

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestIssueContextCancelled(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOnline)
	if _, err := d.IssueContext(cancelledCtx(), license.Usage, ex.Usage1.Rect, 10); !errors.Is(err, drmerr.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if st := d.Stats(); st.Issued != 0 {
		t.Errorf("cancelled issuance was logged: %+v", st)
	}
	// The distributor is unharmed: the same request succeeds afterwards.
	if _, err := d.IssueContext(context.Background(), license.Usage, ex.Usage1.Rect, 10); err != nil {
		t.Fatalf("post-cancel issuance failed: %v", err)
	}
}

func TestIssueTypedErrors(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOffline)
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 0); !errors.Is(err, drmerr.ErrInvalidInput) {
		t.Errorf("zero count err = %v, want ErrInvalidInput", err)
	}
	// The engine sentinel and the taxonomy sentinel agree on kind.
	empty := NewDistributor("empty", ex.Schema, ModeOffline, logstore.NewMem(0))
	_, err := empty.Issue(license.Usage, ex.Usage1.Rect, 5)
	if !errors.Is(err, ErrInstanceInvalid) || !errors.Is(err, drmerr.ErrInstanceInvalid) {
		t.Errorf("err = %v, want both ErrInstanceInvalid sentinels", err)
	}
}

func TestAuditContextDeadlineAndResume(t *testing.T) {
	ex, d := ex1Distributor(t, ModeOffline)
	if _, err := d.Issue(license.Usage, ex.Usage1.Rect, 800); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Issue(license.Usage, ex.Usage2.Rect, 400); err != nil {
		t.Fatal(err)
	}
	want, _, err := d.Audit(1)
	if err != nil {
		t.Fatal(err)
	}
	// An already-expired deadline is noticed during the log replay, before
	// any auditor exists — that surfaces as a cancellation, not a partial
	// report (there is nothing verified-so-far to return).
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, aud, err := d.AuditContext(ctx, 1)
	if err == nil || !drmerr.IsCancellation(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if aud != nil {
		t.Error("cancelled preparation returned an auditor")
	}
	got, _, err := d.AuditContext(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed audit diverges:\n got %+v\nwant %+v", got, want)
	}
}
