package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/drmerr"
	"repro/internal/license"
	"repro/internal/logstore"
)

// ex1Replica builds a follower-shaped distributor: the same Example 1
// corpus over its own log store, warmed and flagged read-only.
func ex1Replica(t *testing.T, ex *license.Example1) (*Distributor, logstore.Store) {
	t.Helper()
	log := logstore.NewMem(0)
	d := NewDistributor("D1-replica", ex.Schema, ModeOnline, log)
	for i := 0; i < ex.Corpus.Len(); i++ {
		l := ex.Corpus.License(i)
		cp := *l
		if _, err := d.AddRedistribution(&cp); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WarmHeadroom(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.SetReadOnly(true)
	return d, log
}

// TestReadOnlyRefusesMutations checks every mutation path is gated with
// the typed replica error while reads keep working, and that promotion
// (clearing the gate) restores writes without a rebuild.
func TestReadOnlyRefusesMutations(t *testing.T) {
	d, rect, set, room0 := lifecycleFixture(t, ModeOnline)
	ctx := context.Background()
	d.SetReadOnly(true)
	if _, err := d.IssueContext(ctx, license.Usage, rect, 10); !errors.Is(err, drmerr.ErrReadOnly) {
		t.Fatalf("issue on replica: err = %v, want read_only", err)
	}
	if _, err := d.RevokeContext(ctx, rect, 1); drmerr.KindOf(err) != drmerr.KindReadOnly {
		t.Fatalf("revoke on replica: err = %v, want read_only", err)
	}
	if _, err := d.TransferContext(ctx, rect, 1); drmerr.KindOf(err) != drmerr.KindReadOnly {
		t.Fatalf("transfer on replica: err = %v, want read_only", err)
	}
	if _, err := d.ExpireSweep(ctx, time.Now()); drmerr.KindOf(err) != drmerr.KindReadOnly {
		t.Fatalf("sweep on replica: err = %v, want read_only", err)
	}
	// Reads stay live.
	if room, err := d.HeadroomContext(ctx, set); err != nil || room != room0 {
		t.Fatalf("headroom on replica = %d (%v), want %d", room, err, room0)
	}
	if rep, _, err := d.Audit(1); err != nil || !rep.OK() {
		t.Fatalf("audit on replica: ok=%v err=%v", rep.OK(), err)
	}
	// Promotion: the gate clears and the first write needs no warm-up.
	d.SetReadOnly(false)
	if _, err := d.IssueContext(ctx, license.Usage, rect, 10); err != nil {
		t.Fatalf("issue after promotion: %v", err)
	}
}

// TestApplyReplicatedKeepsStateWarm drives a leader and a mirror side by
// side: every leader mutation is appended to the mirror's log (what
// wal.IngestFrames does in production) and folded in via
// ApplyReplicated. The mirror's cached headroom, stats, and audit must
// match the leader's at every step without ever replaying the log.
func TestApplyReplicatedKeepsStateWarm(t *testing.T) {
	ex, leader := ex1Distributor(t, ModeOnline)
	leader.SetTransferCap(0)
	follower, flog := ex1Replica(t, ex)
	ctx := context.Background()
	rect := ex.Usage1.Rect
	set := leader.BelongsTo(rect)

	replicate := func(recs ...logstore.Record) {
		t.Helper()
		for _, r := range recs {
			if err := flog.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		follower.ApplyReplicated(ctx, recs)
	}
	checkParity := func(stage string) {
		t.Helper()
		lr, err := leader.HeadroomContext(ctx, set)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := follower.HeadroomContext(ctx, set)
		if err != nil {
			t.Fatal(err)
		}
		if lr != fr {
			t.Fatalf("%s: follower headroom %d, leader %d", stage, fr, lr)
		}
		if ls, fs := leader.Stats(), follower.Stats(); ls != fs {
			t.Fatalf("%s: follower stats %+v, leader %+v", stage, fs, ls)
		}
	}

	expiry := time.Now().Add(time.Hour).Unix()
	if _, err := leader.IssueContext(ctx, license.Usage, rect, 600); err != nil {
		t.Fatal(err)
	}
	replicate(logstore.Record{Set: set, Count: 600})
	checkParity("after issue")

	if _, err := leader.IssueTTLContext(ctx, license.Usage, rect, 50, expiry); err != nil {
		t.Fatal(err)
	}
	replicate(logstore.Record{Kind: logstore.KindIssue, Set: set, Count: 50, Meta: logstore.Meta{Expiry: expiry}})
	checkParity("after ttl issue")

	if _, err := leader.RevokeContext(ctx, rect, 250); err != nil {
		t.Fatal(err)
	}
	replicate(logstore.Record{Kind: logstore.KindRevoke, Set: set, Count: 250})
	checkParity("after revoke")

	if _, err := leader.TransferContext(ctx, rect, 100); err != nil {
		t.Fatal(err)
	}
	replicate(logstore.Record{Kind: logstore.KindTransfer, Set: set, Count: 100})
	checkParity("after transfer")

	// The audit's verifier pass proves the incrementally maintained cache
	// still equals the log-derived truth on the mirror.
	if rep, _, err := follower.Audit(1); err != nil || !rep.OK() {
		t.Fatalf("mirror audit: ok=%v err=%v", rep.OK(), err)
	}
	// Promote and issue the counts freed by the revoke: cache continuity.
	follower.SetReadOnly(false)
	if _, err := follower.IssueContext(ctx, license.Usage, rect, 200); err != nil {
		t.Fatalf("post-promotion issue: %v", err)
	}
}
