package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/license"
	"repro/internal/logstore"
	"repro/internal/vtree"
	"repro/internal/workload"
)

// TestCachedAdmissionEquivalentToFullAudit is the equivalence property
// behind the headroom cache: under random interleavings of issuance,
// batch audits, corpus top-ups, and recovery (a fresh distributor warmed
// from the same log), every cached admission decision — accept/reject
// and the reported headroom — must agree with a full validation tree
// rebuilt from the log immediately before the issuance. Audits along the
// way double as the cache's own verifier (engine wires Verify plus a
// sampled cross-check into every clean audit), so a divergence fails the
// audit step too. Run under -race in CI.
func TestCachedAdmissionEquivalentToFullAudit(t *testing.T) {
	for _, seed := range []int64{1, 5, 11} {
		t.Logf("seed %d", seed)
		w := workload.MustGenerate(workload.Config{
			N: 8, Groups: 3, Dims: 2, RecordsPerLicense: 2,
			AggregateLo: 1200, AggregateHi: 2500, Seed: seed,
		})
		log := logstore.NewMem(0)
		build := func() *Distributor {
			d := NewDistributor("prop", w.Schema, ModeOnline, log)
			for _, l := range w.Corpus.Licenses() {
				cp := *l
				if _, err := d.AddRedistribution(&cp); err != nil {
					t.Fatal(err)
				}
			}
			return d
		}
		d := build()
		topups := make([]int64, w.Corpus.Len())
		rng := rand.New(rand.NewSource(seed*7 + 1))
		ctx := context.Background()
		accepted, rejected, audits, recoveries := 0, 0, 0, 0
		for step := 0; step < 220; step++ {
			switch op := rng.Intn(20); {
			case op < 15: // issue
				rect := w.Corpus.License(rng.Intn(w.Corpus.Len())).Rect
				count := int64(1 + rng.Intn(400))
				set := d.BelongsTo(rect)
				if set.Empty() {
					t.Fatalf("step %d: corpus rect outside corpus", step)
				}
				tree, err := vtree.Build(w.Corpus.Len(), log)
				if err != nil {
					t.Fatal(err)
				}
				want, err := tree.Headroom(set, d.Corpus().Aggregates())
				if err != nil {
					t.Fatal(err)
				}
				got, err := d.HeadroomContext(ctx, set)
				if err != nil {
					t.Fatalf("step %d: HeadroomContext(%v): %v", step, set, err)
				}
				if got != want {
					t.Fatalf("step %d: cached headroom(%v) = %d, fresh audit %d", step, set, got, want)
				}
				_, err = d.IssueContext(ctx, license.Usage, rect, count)
				if count <= want {
					if err != nil {
						t.Fatalf("step %d: issue(%v, %d) rejected with headroom %d: %v",
							step, set, count, want, err)
					}
					accepted++
				} else {
					if !errors.Is(err, ErrAggregateExhausted) {
						t.Fatalf("step %d: issue(%v, %d) err = %v, want exhaustion (headroom %d)",
							step, set, count, err, want)
					}
					rejected++
				}
			case op < 17: // audit: clean report, and the cache verifies
				rep, _, err := d.Audit(1)
				if err != nil {
					t.Fatalf("step %d: audit: %v", step, err)
				}
				if !rep.OK() {
					t.Fatalf("step %d: audit found violations in an online-guarded log: %+v",
						step, rep.Violations)
				}
				audits++
			case op < 18: // top-up
				i := rng.Intn(w.Corpus.Len())
				extra := int64(100 + rng.Intn(400))
				if err := d.TopUp(i, extra); err != nil {
					t.Fatalf("step %d: topup: %v", step, err)
				}
				topups[i] += extra
			default: // recover: fresh distributor over the same log
				d = build()
				for i, extra := range topups {
					if extra > 0 {
						if err := d.TopUp(i, extra); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := d.WarmHeadroom(ctx); err != nil {
					t.Fatalf("step %d: warm after recovery: %v", step, err)
				}
				recoveries++
			}
		}
		rep, _, err := d.Audit(1)
		if err != nil || !rep.OK() {
			t.Fatalf("final audit: ok=%v err=%v", rep.OK(), err)
		}
		if accepted == 0 || rejected == 0 || audits == 0 || recoveries == 0 {
			t.Fatalf("interleaving did not exercise all ops: accepted=%d rejected=%d audits=%d recoveries=%d",
				accepted, rejected, audits, recoveries)
		}
	}
}
