// Lifecycle operations: the issuance log generalised into a typed
// ledger lets a distributor take counts back out of circulation (revoke),
// age them out on a schedule (expire), and re-home them without changing
// the aggregate picture (transfer). Every operation is WAL-durable —
// appended through the same logstore.Store as issuances, so the store's
// append-time soundness check (cumulative debits never exceed cumulative
// credits per belongs-to set) is the final arbiter — and, in ModeOnline,
// mirrored into the headroom cache in place so freed counts become
// admissible immediately without a log replay.
//
// Ordering on the online path matches issuance, inverted: Hold marks the
// cache in-flight (verification passes skip instead of reading a state
// the log hasn't caught up with), the record is appended durably, then
// the cache is credited and the hold confirmed. An append failure leaves
// the cache untouched; a cache failure after a durable append marks the
// cache stale (next use replays the log) and surfaces as divergence.

package engine

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/drmerr"
	"repro/internal/geometry"
	"repro/internal/logstore"
	"repro/internal/trace"
)

// ErrTransferCapExceeded marks a transfer that would push a set's
// cumulative transfer total past the distributor's configured cap.
var ErrTransferCapExceeded = drmerr.Sentinel(drmerr.KindViolation,
	"engine: transfer would exceed the distributor's transfer cap")

// SetTransferCap bounds the cumulative per-set transfer total (0 =
// unlimited, the default). The cap is engine policy layered over the
// ledger: it compares against totals the ledger preserves across
// compaction, and applies only where the cache is consulted (ModeOnline).
func (d *Distributor) SetTransferCap(cap int64) { d.transferCap.Store(cap) }

// TransferCap returns the configured cumulative transfer cap.
func (d *Distributor) TransferCap() int64 { return d.transferCap.Load() }

// Revoke takes count permissions for rect's belongs-to set back out of
// circulation. It is RevokeContext with a background context.
func (d *Distributor) Revoke(rect geometry.Rect, count int64) (bitset.Mask, error) {
	return d.RevokeContext(context.Background(), rect, count)
}

// RevokeContext appends a revoke record for rect's belongs-to set. The
// store refuses (ErrLedgerUnsound, 409) a revoke that would drive the
// set's net count negative. In ModeOnline the freed counts are credited
// back into the headroom cache in place, so they are immediately
// admissible to new issuances.
func (d *Distributor) RevokeContext(ctx context.Context, rect geometry.Rect, count int64) (bitset.Mask, error) {
	start := time.Now()
	ctx, sp := trace.Start(ctx, "engine.revoke")
	set, err := d.debitContext(ctx, logstore.KindRevoke, rect, count, 0)
	if sp != nil {
		sp.SetAttr("distributor", d.name)
		sp.SetInt("count", count)
		sp.Fail(err)
		sp.End()
	}
	if err == nil {
		d.revoked.Add(1)
		d.revokedCounts.Add(count)
		M.Revoked.Inc()
		M.RevokedCounts.Add(count)
		if M.LifecycleSeconds != nil {
			M.LifecycleSeconds.ObserveSince(start)
		}
	}
	return set, err
}

// debitContext is the shared revoke/expire path: instance-resolve the
// set (revoke only — expire records arrive with their set precomputed
// from the ledger), append the debit durably, then credit the cache.
func (d *Distributor) debitContext(ctx context.Context, kind logstore.Kind, rect geometry.Rect, count, expiry int64) (bitset.Mask, error) {
	if err := ctx.Err(); err != nil {
		return 0, drmerr.Wrap(drmerr.KindCancelled, "engine.lifecycle", err)
	}
	if err := d.readOnlyErr("engine.lifecycle"); err != nil {
		return 0, err
	}
	if d.corpus.Len() == 0 {
		return 0, drmerr.New(drmerr.KindInstanceInvalid, "engine.lifecycle",
			"engine: distributor %s holds no redistribution licenses", d.name)
	}
	if count <= 0 {
		return 0, drmerr.New(drmerr.KindInvalidInput, "engine.lifecycle",
			"engine: non-positive count %d", count)
	}
	set := d.BelongsTo(rect)
	if set.Empty() {
		return 0, drmerr.New(drmerr.KindInstanceInvalid, "engine.lifecycle",
			"engine: %s not contained in any redistribution license", rect)
	}
	rec := logstore.Record{Kind: kind, Set: set, Count: count, Meta: logstore.Meta{Expiry: expiry}}
	return set, d.appendDebit(ctx, rec)
}

// appendDebit durably appends one revoke/expire record and credits the
// headroom cache. Caller has validated rec's fields.
func (d *Distributor) appendDebit(ctx context.Context, rec logstore.Record) error {
	if d.mode != ModeOnline {
		if err := logstore.AppendContext(ctx, d.log, rec); err != nil {
			return err
		}
		d.markStale()
		return nil
	}
	cache, err := d.ensureCache(ctx)
	if err != nil {
		return err
	}
	cache.Hold()
	if err := logstore.AppendContext(ctx, d.log, rec); err != nil {
		cache.Confirm()
		return err
	}
	if err := cache.Credit(ctx, rec.Set, rec.Count); err != nil {
		// The debit is durable; the cache refused to mirror it, which
		// means it had drifted from the log. Replay on next use and
		// surface the divergence.
		cache.Confirm()
		d.markStale()
		return err
	}
	cache.Confirm()
	return nil
}

// markStale flags the cache as behind the log (next use replays).
func (d *Distributor) markStale() {
	d.mu.Lock()
	if d.cache != nil {
		d.cacheStale = true
	}
	d.mu.Unlock()
}

// Transfer re-homes count permissions for rect's belongs-to set to
// another party. It is TransferContext with a background context.
func (d *Distributor) Transfer(rect geometry.Rect, count int64) (bitset.Mask, error) {
	return d.TransferContext(context.Background(), rect, count)
}

// TransferContext appends a transfer record for rect's belongs-to set.
// Transfers are aggregate-neutral — they change who holds permissions,
// not how many are outstanding — so the net counts the audit validates
// are untouched. In ModeOnline two policy checks gate the append: the
// transfer must not exceed the set's current net outstanding count, and
// must not push the set's cumulative transfer total past the configured
// cap (ErrTransferCapExceeded). In ModeOffline transfers are only
// logged, matching the paper's operating point where policy is audited
// in batch.
func (d *Distributor) TransferContext(ctx context.Context, rect geometry.Rect, count int64) (bitset.Mask, error) {
	start := time.Now()
	ctx, sp := trace.Start(ctx, "engine.transfer")
	set, err := d.transferContext(ctx, rect, count)
	if sp != nil {
		sp.SetAttr("distributor", d.name)
		sp.SetInt("count", count)
		sp.Fail(err)
		sp.End()
	}
	if err == nil {
		d.transferred.Add(1)
		d.transferredCounts.Add(count)
		M.Transferred.Inc()
		M.TransferredCounts.Add(count)
		if M.LifecycleSeconds != nil {
			M.LifecycleSeconds.ObserveSince(start)
		}
	}
	return set, err
}

func (d *Distributor) transferContext(ctx context.Context, rect geometry.Rect, count int64) (bitset.Mask, error) {
	if err := ctx.Err(); err != nil {
		return 0, drmerr.Wrap(drmerr.KindCancelled, "engine.transfer", err)
	}
	if err := d.readOnlyErr("engine.transfer"); err != nil {
		return 0, err
	}
	if d.corpus.Len() == 0 {
		return 0, drmerr.New(drmerr.KindInstanceInvalid, "engine.transfer",
			"engine: distributor %s holds no redistribution licenses", d.name)
	}
	if count <= 0 {
		return 0, drmerr.New(drmerr.KindInvalidInput, "engine.transfer",
			"engine: non-positive count %d", count)
	}
	set := d.BelongsTo(rect)
	if set.Empty() {
		return 0, drmerr.New(drmerr.KindInstanceInvalid, "engine.transfer",
			"engine: %s not contained in any redistribution license", rect)
	}
	rec := logstore.Record{Kind: logstore.KindTransfer, Set: set, Count: count}
	if d.mode != ModeOnline {
		if err := logstore.AppendContext(ctx, d.log, rec); err != nil {
			return 0, err
		}
		d.markStale()
		return set, nil
	}
	cache, err := d.ensureCache(ctx)
	if err != nil {
		return 0, err
	}
	cache.Hold()
	defer cache.Confirm()
	net, err := cache.NetCount(set)
	if err != nil {
		return 0, err
	}
	if count > net {
		return 0, drmerr.New(drmerr.KindViolation, "engine.transfer",
			"engine: transfer of %d exceeds the %d outstanding for %v", count, net, set)
	}
	if cap := d.transferCap.Load(); cap > 0 {
		cur, err := cache.Transferred(set)
		if err != nil {
			return 0, err
		}
		if cur+count > cap {
			d.rejectedAggregate.Add(1)
			M.TransferRejected.Inc()
			return 0, fmt.Errorf("%w: %d already transferred for %v, cap %d",
				ErrTransferCapExceeded, cur, set, cap)
		}
	}
	if err := logstore.AppendContext(ctx, d.log, rec); err != nil {
		return 0, err
	}
	if err := cache.ApplyTransfer(set, count); err != nil {
		d.markStale()
		return 0, err
	}
	return set, nil
}

// SweepResult summarises one expiry sweep.
type SweepResult struct {
	// Records is the number of expire records appended; Counts sums the
	// permission counts they debited.
	Records int   `json:"records"`
	Counts  int64 `json:"counts"`
}

// ExpireSweep debits every TTL bucket due at or before now: it reads the
// store's ledger snapshot, derives the due schedule (earliest-first,
// clamped by net outstanding counts so over-revoked buckets never expire
// below zero), and appends one expire record per due bucket. Sweeps are
// serialised; concurrent issuances interleave safely because each expire
// is re-checked by the store's soundness gate at append. It is the
// background sweeper's tick and the /v1/expire handler's body.
func (d *Distributor) ExpireSweep(ctx context.Context, now time.Time) (SweepResult, error) {
	ctx, sp := trace.Start(ctx, "engine.expire_sweep")
	res, err := d.expireSweep(ctx, now)
	if sp != nil {
		sp.SetAttr("distributor", d.name)
		sp.SetInt("records", int64(res.Records))
		sp.SetInt("counts", res.Counts)
		sp.Fail(err)
		sp.End()
	}
	M.Sweeps.Inc()
	return res, err
}

func (d *Distributor) expireSweep(ctx context.Context, now time.Time) (SweepResult, error) {
	d.sweepMu.Lock()
	defer d.sweepMu.Unlock()
	if err := ctx.Err(); err != nil {
		return SweepResult{}, drmerr.Wrap(drmerr.KindCancelled, "engine.expire", err)
	}
	if err := d.readOnlyErr("engine.expire"); err != nil {
		return SweepResult{}, err
	}
	lr, ok := d.log.(logstore.LedgerReader)
	if !ok {
		return SweepResult{}, drmerr.New(drmerr.KindInvalidInput, "engine.expire",
			"engine: log store %T exposes no ledger; expiry needs one", d.log)
	}
	due := lr.LedgerSnapshot().Due(now.Unix())
	var res SweepResult
	for _, rec := range due {
		if err := ctx.Err(); err != nil {
			return res, drmerr.Wrap(drmerr.KindCancelled, "engine.expire", err)
		}
		if err := d.appendDebit(ctx, rec); err != nil {
			return res, err
		}
		res.Records++
		res.Counts += rec.Count
		d.expired.Add(1)
		d.expiredCounts.Add(rec.Count)
		M.Expired.Inc()
		M.ExpiredCounts.Add(rec.Count)
	}
	return res, nil
}
